package dpn_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun smoke-tests every runnable example with small
// parameters, so the examples cannot rot as the library evolves. Each
// case checks a fragment of the expected output.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds; skipped with -short")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"quickstart", []string{"run", "./examples/quickstart"},
			[]string{"1\n", "100"}},
		{"fibonacci", []string{"run", "./examples/fibonacci", "-n", "10"},
			[]string{"55"}},
		{"fibonacci-selfremove", []string{"run", "./examples/fibonacci", "-n", "10", "-selfremove"},
			[]string{"55"}},
		{"primes", []string{"run", "./examples/primes", "-n", "10"},
			[]string{"29"}},
		{"primes-below-recursive", []string{"run", "./examples/primes", "-n", "50", "-below", "-recursive"},
			[]string{"47"}},
		{"sqrt", []string{"run", "./examples/sqrt", "-x", "9"},
			[]string{"network sqrt(9) = 3"}},
		{"hamming", []string{"run", "./examples/hamming", "-n", "20", "-capacity", "16"},
			[]string{"36", "deadlocks resolved"}},
		{"factor", []string{"run", "./examples/factor", "-bits", "128", "-workers", "3", "-servers", "2"},
			[]string{"FOUND after", "elapsed"}},
		{"imageblocks", []string{"run", "./examples/imageblocks", "-w", "128", "-h", "96", "-workers", "3", "-servers", "1"},
			[]string{"identical to the reference"}},
		{"migrate", []string{"run", "./examples/migrate", "-n", "200"},
			[]string{"migrating the relay", "verified 200 elements in order"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command("go", tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", tc.args, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
