// Primes: the Sieve of Eratosthenes as a self-modifying process
// network (Figures 7–8). The Sift process inserts a new Modulo filter
// into the running graph for every prime it discovers; the inserted
// process takes over Sift's input channel exactly where Sift left off,
// so no element is lost or repeated.
//
// The example also demonstrates the paper's two termination styles
// (§3.4):
//
//   - "first N primes": the *sink* carries the iteration limit; when it
//     stops, the poison propagates upstream and every Modulo, the Sift,
//     and the integer source stop almost immediately.
//
//   - "primes below N" (-below): the *source* carries the limit; the
//     sieve drains all data already in flight before the cascade of
//     end-of-stream closings reaches the sink, so nothing is computed
//     in vain.
//
//     go run ./examples/primes [-n 25] [-below] [-recursive]
package main

import (
	"flag"
	"fmt"
	"log"

	"dpn/internal/core"
	"dpn/internal/graphs"
)

func main() {
	n := flag.Int64("n", 25, "prime count (or bound with -below)")
	below := flag.Bool("below", false, "compute all primes below n instead of the first n")
	recursive := flag.Bool("recursive", false, "use the recursive Sift of Figure 7 (the process replaces itself) instead of the iterative Sift of Figure 8")
	flag.Parse()

	mode := graphs.SieveIterative
	if *recursive {
		mode = graphs.SieveRecursive
	}
	net := core.NewNetwork()
	var sink interface{ Values() []int64 }
	if *below {
		sink = graphs.SieveBounded(net, *n, mode)
	} else {
		sink = graphs.SieveFirstN(net, *n, mode)
	}
	if err := net.Wait(); err != nil {
		log.Fatal(err)
	}
	for _, v := range sink.Values() {
		fmt.Println(v)
	}
}
