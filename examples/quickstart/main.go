// Quickstart: the Producer→Worker→Consumer pipeline of Figure 1,
// written against the public API from scratch.
//
// A process network is a set of processes connected by FIFO channels.
// Channels carry bytes; reads block until data arrives (Kahn's rule,
// which makes the computation determinate) and writes block while the
// buffer is full (which keeps scheduling fair). Each process runs in
// its own goroutine; when a process stops, its channels close and
// termination cascades through the graph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"

	"dpn/internal/core"
	"dpn/internal/token"
)

// producer writes the integers 1..N to its output channel.
type producer struct {
	N   int64
	Out *core.WritePort
	i   int64
}

// Step is called repeatedly by the runtime (the paper's
// IterativeProcess.step). Returning io.EOF stops the process normally.
func (p *producer) Step(env *core.Env) error {
	if p.i >= p.N {
		return io.EOF
	}
	p.i++
	return token.NewWriter(p.Out).WriteInt64(p.i)
}

// worker squares every element.
type worker struct {
	In  *core.ReadPort
	Out *core.WritePort
}

func (w *worker) Step(env *core.Env) error {
	v, err := token.NewReader(w.In).ReadInt64()
	if err != nil {
		return err // io.EOF after the producer finishes: normal stop
	}
	return token.NewWriter(w.Out).WriteInt64(v * v)
}

// consumer prints what it receives.
type consumer struct {
	In *core.ReadPort
}

func (c *consumer) Step(env *core.Env) error {
	v, err := token.NewReader(c.In).ReadInt64()
	if err != nil {
		return err
	}
	fmt.Println(v)
	return nil
}

func main() {
	net := core.NewNetwork()

	// Two channels wire the three processes into a pipeline.
	pw := net.NewChannel("producer→worker", 0)
	wc := net.NewChannel("worker→consumer", 0)

	net.Spawn(&producer{N: 10, Out: pw.Writer()})
	net.Spawn(&worker{In: pw.Reader(), Out: wc.Writer()})
	net.Spawn(&consumer{In: wc.Reader()})

	// Wait blocks until the cascade of channel closings has stopped
	// every process.
	if err := net.Wait(); err != nil {
		log.Fatal(err)
	}
}
