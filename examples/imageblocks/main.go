// Imageblocks: the paper's §5 motivating example — "an image can be
// divided into 16x16 blocks of pixels that are compressed
// independently with the results collected and written in order to an
// image file."
//
// A synthetic grayscale image is split into 16×16 blocks by the
// generic Producer; Workers — optionally shipped to in-process compute
// servers — compress each block (quantize + RLE); the Consumer
// receives the compressed blocks *in block order* (the indexed merge
// guarantees it, §5) and reassembles the image. The result is compared
// against a sequential reference: identical, demonstrating determinacy
// on a realistic workload.
//
//	go run ./examples/imageblocks [-w 512 -h 512] [-workers 4] [-servers 2] [-quant 16]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"dpn/internal/blockcodec"
	"dpn/internal/meta"
	"dpn/internal/server"
	"dpn/internal/wire"
)

func main() {
	w := flag.Int("w", 512, "image width")
	h := flag.Int("h", 512, "image height")
	workers := flag.Int("workers", 4, "compression workers")
	servers := flag.Int("servers", 2, "compute servers to spread the workers over (0 = all local)")
	quant := flag.Int("quant", 16, "quantization levels")
	flag.Parse()

	img := blockcodec.Synthetic(*w, *h, 42)
	blocks := blockcodec.Split(img, 16)
	fmt.Printf("image %dx%d → %d blocks\n", *w, *h, len(blocks))

	// Sequential reference (and reference compression ratio).
	raw, comp := 0, 0
	var refBlocks []blockcodec.Block
	seqStart := time.Now()
	for _, b := range blocks {
		c := blockcodec.Compress(b, *quant)
		raw += len(b.Pix)
		comp += c.CompressedSize()
		dec, err := blockcodec.Decompress(c)
		if err != nil {
			log.Fatal(err)
		}
		refBlocks = append(refBlocks, dec)
	}
	seqTime := time.Since(seqStart)
	ref, err := blockcodec.Assemble(*w, *h, refBlocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %v, compression %.2fx\n", seqTime, float64(raw)/float64(comp))

	// Parallel process network.
	node, err := wire.NewLocalNode("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	dyn := meta.NewDynamic(node.Net, blockcodec.NewBlockSource(img, 16, *quant), *workers, 0)
	var decoded []blockcodec.Block
	dyn.Consumer.SetOnResult(func(ran, result meta.Task) {
		if cb, ok := ran.(*blockcodec.CompressedBlock); ok {
			dec, err := blockcodec.Decompress(cb.C)
			if err != nil {
				log.Fatal(err)
			}
			decoded = append(decoded, dec)
		}
	})

	var clients []*server.Client
	for i := 0; i < *servers; i++ {
		srv, err := server.New(fmt.Sprintf("img%d", i), "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		cl, err := server.Dial(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		clients = append(clients, cl)
	}

	parStart := time.Now()
	for i, wk := range dyn.Workers {
		if len(clients) > 0 {
			cl := clients[i%len(clients)]
			if _, err := cl.RunProcs(node, wk); err != nil {
				log.Fatalf("shipping worker %d: %v", i, err)
			}
			fmt.Printf("worker %d → server %d\n", i, i%len(clients))
		} else {
			node.Net.Spawn(wk)
		}
	}
	node.Net.Spawn(dyn.Producer)
	node.Net.Spawn(dyn.Direct)
	node.Net.Spawn(dyn.Turnstile)
	node.Net.Spawn(dyn.IndexCons)
	node.Net.Spawn(dyn.Select)
	node.Net.Spawn(dyn.Consumer)
	if err := node.Net.Wait(); err != nil {
		log.Fatal(err)
	}
	parTime := time.Since(parStart)

	got, err := blockcodec.Assemble(*w, *h, decoded)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got.Pix, ref.Pix) {
		log.Fatal("parallel image differs from sequential reference")
	}
	fmt.Printf("parallel (%d workers, %d servers): %v — identical to the reference, blocks in order\n",
		*workers, *servers, parTime)
}
