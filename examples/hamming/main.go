// Hamming: the unbounded program graph of Figure 12, producing the
// ascending integers of the form 2^k·3^m·5^n. Every element the merge
// emits fans out into three Scale processes, so demand for channel
// storage grows without bound: with bounded buffers the graph
// eventually write-blocks into an artificial deadlock. A deadlock
// monitor (the bounded-scheduling procedure of §3.5/§6.2) detects the
// condition and grows the smallest full channel, and the computation
// proceeds.
//
// Run with a tiny -capacity to watch the monitor work.
//
//	go run ./examples/hamming [-n 30] [-capacity 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dpn/internal/core"
	"dpn/internal/deadlock"
	"dpn/internal/graphs"
)

func main() {
	n := flag.Int64("n", 30, "how many Hamming numbers to produce")
	capacity := flag.Int("capacity", 16, "initial channel capacity in bytes")
	flag.Parse()

	net := core.NewNetwork()
	sink := graphs.Hamming(net, *n, *capacity)

	mon := deadlock.New(net, 200*time.Microsecond)
	mon.OnEvent = func(e deadlock.Event) {
		if e.Status == deadlock.StatusResolved {
			fmt.Printf("-- artificial deadlock: grew channel %q to %d bytes\n", e.Channel, e.NewCap)
		}
	}
	mon.Start()
	defer mon.Stop()

	if err := net.Wait(); err != nil {
		log.Fatal(err)
	}
	for _, v := range sink.Values() {
		fmt.Println(v)
	}
	fmt.Printf("(%d artificial deadlocks resolved by buffer growth)\n", mon.Resolutions())
}
