// Sqrt: Newton's method as a process network with data-dependent
// termination (Figure 11). The feedback loop refines the estimate
// r ← (x/r + r)/2; the Equal process watches for the estimate to stop
// changing at the limits of floating-point precision, and the Guard
// process then passes exactly one value downstream and stops, tearing
// the whole network down through cascading channel closings.
//
//	go run ./examples/sqrt [-x 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"dpn/internal/core"
	"dpn/internal/graphs"
)

func main() {
	x := flag.Float64("x", 2, "compute the square root of x")
	flag.Parse()

	net := core.NewNetwork()
	sink := graphs.Sqrt(net, *x, *x/2)
	if err := net.Wait(); err != nil {
		log.Fatal(err)
	}
	for _, r := range sink.Values() {
		fmt.Printf("network sqrt(%g) = %.17g\n", *x, r)
		fmt.Printf("math.Sqrt(%g)    = %.17g\n", *x, math.Sqrt(*x))
	}
}
