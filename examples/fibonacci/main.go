// Fibonacci: the self-feeding program graph of Figures 2 and 6, built
// from the standard process library — two Cons processes seed the
// feedback loops, Duplicate fans streams out, and Add combines them.
// With -selfremove the Cons processes splice themselves out of the
// graph after delivering their head elements (the run-time
// reconfiguration of Figures 9–10) without disturbing the sequence.
//
//	go run ./examples/fibonacci [-n 20] [-selfremove]
package main

import (
	"flag"
	"fmt"
	"log"

	"dpn/internal/core"
	"dpn/internal/graphs"
)

func main() {
	n := flag.Int64("n", 20, "how many Fibonacci numbers to produce")
	selfRemove := flag.Bool("selfremove", false, "Cons processes remove themselves after priming (Figure 9)")
	flag.Parse()

	net := core.NewNetwork()
	sink := graphs.Fibonacci(net, *n, *selfRemove)
	if err := net.Wait(); err != nil {
		log.Fatal(err)
	}
	for _, v := range sink.Values() {
		fmt.Println(v)
	}
}
