// Factor: the paper's evaluation application (§5.2) end to end — a
// brute-force search for the factors of a weak RSA modulus
// N = P×(P+D), distributed across compute servers with dynamic,
// on-demand load balancing (Figures 17–18).
//
// The example is self-contained: it starts the requested number of
// compute servers in-process (each with its own broker, network, and
// RPC listener — the same code path `cmd/dpnserver` runs across
// machines), builds the dynamic composition locally, ships the generic
// Worker processes to the servers with automatic channel
// re-establishment (§4.2), and waits for the Result task whose
// Terminal flag stops the whole distributed graph (§3.4).
//
//	go run ./examples/factor [-bits 256] [-workers 4] [-servers 2] [-static]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"dpn/internal/factor"
	"dpn/internal/meta"
	"dpn/internal/server"
	"dpn/internal/wire"
)

func main() {
	bits := flag.Int("bits", 256, "prime size in bits (the paper uses 512)")
	workers := flag.Int("workers", 4, "worker process count")
	servers := flag.Int("servers", 2, "compute servers to start")
	static := flag.Bool("static", false, "static (Figure 16) instead of dynamic (Figure 17) balancing")
	flag.Parse()

	// A weak key whose factor is planted a few dozen tasks into the
	// search space.
	key, err := factor.GenerateWeakKey(rand.New(rand.NewSource(time.Now().UnixNano())),
		*bits, int64(*workers)*8, factor.DefaultBatch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N = %s... (%d bits)\n", key.N.String()[:32], key.N.BitLen())

	// Start the compute servers and connect a client to each.
	clients := make([]*server.Client, *servers)
	for i := range clients {
		srv, err := server.New(fmt.Sprintf("server%d", i), "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		clients[i], err = server.Dial(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer clients[i].Close()
		fmt.Printf("compute server %q at %s\n", srv.Name(), srv.Addr())
	}

	// The local node hosts the producer, the distribution machinery,
	// and the consumer; the workers move out.
	node, err := wire.NewLocalNode("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	source := &factor.SearchSpace{N: key.N, Batch: factor.DefaultBatch}
	start := time.Now()
	var consumer *meta.Consumer
	if *static {
		st := meta.NewStatic(node.Net, source, *workers, 0)
		consumer = st.Consumer
		shipWorkers(node, clients, st.Workers)
		node.Net.Spawn(st.Producer)
		node.Net.Spawn(st.Scatter)
		node.Net.Spawn(st.Gather)
		node.Net.Spawn(st.Consumer)
	} else {
		dyn := meta.NewDynamic(node.Net, source, *workers, 0)
		consumer = dyn.Consumer
		shipWorkers(node, clients, dyn.Workers)
		node.Net.Spawn(dyn.Producer)
		node.Net.Spawn(dyn.Direct)
		node.Net.Spawn(dyn.Turnstile)
		node.Net.Spawn(dyn.IndexCons)
		node.Net.Spawn(dyn.Select)
		node.Net.Spawn(dyn.Consumer)
	}
	consumer.SetOnResult(func(ran, result meta.Task) {
		if r, ok := ran.(*factor.Result); ok && r.Found {
			fmt.Printf("FOUND after %d tasks: %s\n", r.Index+1, r)
		}
	})
	if err := node.Net.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elapsed %v, consumer processed %d result tasks\n",
		time.Since(start), consumer.Consumed())
}

// shipWorkers exports each generic Worker process to a compute server,
// round-robin. The channels feeding and draining each worker are
// reconnected over TCP automatically as the parcel deserializes.
func shipWorkers(node *wire.Node, clients []*server.Client, workers []*meta.Worker) {
	for i, w := range workers {
		cl := clients[i%len(clients)]
		if _, err := cl.RunProcs(node, w); err != nil {
			log.Fatalf("shipping worker %d: %v", i, err)
		}
		fmt.Printf("worker %d shipped to server %d\n", i, i%len(clients))
	}
}
