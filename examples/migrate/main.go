// Migrate: live process migration — the future work of §6.1 of the
// paper ("making it possible to re-distribute processes after
// execution has already begun"), implemented.
//
// A pipeline runs on the local node: a paced source feeds a relay that
// feeds a sink. Mid-stream, the relay process is suspended at a step
// boundary, ejected from its goroutine with its channels left open,
// serialized, shipped to a freshly started compute server, and
// resumed there. Both of its channels now span the network; every
// element reaches the sink exactly once, in order — determinacy holds
// across the move.
//
//	go run ./examples/migrate [-n 500]
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"time"

	"dpn/internal/core"
	"dpn/internal/server"
	"dpn/internal/token"
	"dpn/internal/wire"
)

// Source emits consecutive integers at a steady pace.
type Source struct {
	core.Iterative
	Out  *core.WritePort
	Next int64
}

// Step implements core.Stepper.
func (s *Source) Step(env *core.Env) error {
	time.Sleep(200 * time.Microsecond)
	v := s.Next
	s.Next++
	return token.NewWriter(s.Out).WriteInt64(v)
}

// Relay copies elements and counts them; Count is exported, so it
// survives migration (like a non-transient field under Java
// serialization).
type Relay struct {
	In    *core.ReadPort
	Out   *core.WritePort
	Count int64
}

// Step implements core.Stepper.
func (r *Relay) Step(env *core.Env) error {
	v, err := token.NewReader(r.In).ReadInt64()
	if err != nil {
		return err
	}
	if err := token.NewWriter(r.Out).WriteInt64(v); err != nil {
		return err
	}
	r.Count++
	return nil
}

// Sink checks ordering as elements arrive.
type Sink struct {
	In   *core.ReadPort
	Want int64
}

// Step implements core.Stepper.
func (s *Sink) Step(env *core.Env) error {
	v, err := token.NewReader(s.In).ReadInt64()
	if err != nil {
		return err
	}
	if v != s.Want {
		return fmt.Errorf("out of order: got %d, want %d", v, s.Want)
	}
	s.Want++
	return nil
}

func init() {
	gob.Register(&Source{})
	gob.Register(&Relay{})
	gob.Register(&Sink{})
}

func main() {
	n := flag.Int64("n", 500, "elements to stream through the pipeline")
	flag.Parse()

	// The destination: a compute server (in-process here; dpnserver on
	// another machine in a real deployment).
	srv, err := server.New("destination", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cl, err := server.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	local, err := wire.NewLocalNode("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()

	in := local.Net.NewChannel("in", 4096)
	out := local.Net.NewChannel("out", 4096)
	src := &Source{Out: in.Writer()}
	src.Iterations = *n
	relay := &Relay{In: in.Reader(), Out: out.Writer()}
	sink := &Sink{In: out.Reader()}

	local.Net.Spawn(src)
	relayHandle := local.Net.Spawn(relay)
	local.Net.Spawn(sink)

	// Let a quarter of the stream flow, then move the relay — live.
	for relay.Count < *n/4 {
		time.Sleep(time.Millisecond)
	}
	moved := relay.Count
	fmt.Printf("migrating the relay after %d elements...\n", moved)
	start := time.Now()
	if _, err := cl.Migrate(local, relayHandle); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relay now runs on %q (migration took %v)\n", srv.Name(), time.Since(start))

	if err := local.Net.Wait(); err != nil {
		log.Fatal(err)
	}
	if err := srv.WaitIdle(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sink verified %d elements in order; %d crossed the network\n",
		sink.Want, *n-moved)
}
