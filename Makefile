.PHONY: build test check vet

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# The race-enabled gate used before merging; see scripts/check.sh.
check:
	./scripts/check.sh
