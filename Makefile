.PHONY: build test check chaos vet lint bench pool bench-pr4 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10 obs scenarios codec wal mux

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# Static-analysis gate: vet + staticcheck (when installed) + the
# conduit API style check; see scripts/check.sh -lint. Runs first in
# `make check`.
lint:
	./scripts/check.sh -lint

# The race-enabled gate used before merging; see scripts/check.sh.
# It ends with the chaos gate, so `make check` covers both.
check:
	./scripts/check.sh

# Chaos gate alone: repeated seeded fault-injection runs with a
# seed-replay flaky classifier; see scripts/check.sh -chaos.
chaos:
	./scripts/check.sh -chaos

# Re-records the hot-path benchmark trajectory (BENCH_pr3.json), then
# fails if allocs/op on the sentinel benchmarks regressed against it;
# see scripts/bench.sh and EXPERIMENTS.md, "Benchmark trajectory".
bench:
	./scripts/bench.sh
	./scripts/check.sh -bench

# Elasticity gate alone: pool join/leave/kill, straggler re-dispatch,
# lane migration, and the Scatter/Gather close semantics under -race;
# see scripts/check.sh -pool. Part of `make check`.
pool:
	./scripts/check.sh -pool

# Re-records the skewed-cluster elasticity trajectory (BENCH_pr4.json):
# real sleep-worker static vs dynamic vs elastic runs; fails unless the
# dynamic composition completes at >= 1.3x the static one.
bench-pr4:
	./scripts/bench.sh -pr4

# Re-records the tracing-overhead trajectory (BENCH_pr6.json): the
# hot-path suite plus its tracer-enabled twins, with traced/untraced
# ns/op ratios; see EXPERIMENTS.md, "Tracing overhead".
bench-pr6:
	./scripts/bench.sh -pr6

# Workload-scenario gate alone: oracle equality for every catalog
# scenario under loopback/tcp/chaos/migration, the graph-shape fuzzer,
# the quantile/exposition round trip, the registry/rendezvous stress
# tests, and the reduced-scale soak — all under -race with WORKLOAD_SEED
# replay on failure; see scripts/check.sh -scenarios. Part of
# `make check`.
scenarios:
	./scripts/check.sh -scenarios

# Re-records the workload-scenario trajectory (BENCH_pr7.json):
# verified tokens/sec and p50/p95/p99 per scenario plus the
# 120-concurrent-graph soak; fails unless the soak held >= 100 graphs
# with zero failures; see EXPERIMENTS.md, "Scenario suite".
bench-pr7:
	./scripts/bench.sh -pr7

# Re-records the wire-compression trajectory (BENCH_pr8.json): logical
# tokens/sec and compression ratio per stream shape, loopback and
# emulated 1 Gbit/s wire; fails unless the compressed monotone stream
# moves >= 3x the raw twin's logical tokens/sec on the emulated wire;
# see EXPERIMENTS.md, "Compression trajectory".
bench-pr8:
	./scripts/bench.sh -pr8

# Wire-codec gate alone: block-codec round-trip identity, corruption
# rejection, the >= 4x monotone compression floor, the compressed-link
# integration tests, and a short native fuzz burst; see
# scripts/check.sh -codec. Part of `make check`.
codec:
	./scripts/check.sh -codec

# Durability gate alone: the WAL torture/fuzz suite, the durable-conduit
# restart tests, and the kill-restart scenario matrix (SIGKILL the
# producer twice, byte-identical replay) under -race with WORKLOAD_SEED
# replay on failure; see scripts/check.sh -wal. Part of `make check`.
wal:
	./scripts/check.sh -wal

# Re-records the durable-conduit trajectory (BENCH_pr9.json):
# journaling overhead vs the in-proc plane plus SIGKILL recovery times;
# fails unless the kill-restart run verified and the cost stayed
# <= 2.5x; see EXPERIMENTS.md, "Crash-restart trajectory".
bench-pr9:
	./scripts/bench.sh -pr9

# Session-multiplexing gate alone: the mux handshake/stream/credit unit
# suite, the broker session-pool integration tests, the FD-bounded mux
# rendezvous storm, and the cascade-equivalence sweep across transports
# under -race with seed replay on failure; see scripts/check.sh -mux.
# Part of `make check`.
mux:
	./scripts/check.sh -mux

# Re-records the session-multiplexing trajectory (BENCH_pr10.json): mux
# vs direct link throughput, sockets per peer pair, and handshake
# amortization; fails unless the mux link stays within 1.15x of direct
# TCP and a 16-channel fan-out rode exactly one session; see
# EXPERIMENTS.md, "Session multiplexing trajectory".
bench-pr10:
	./scripts/bench.sh -pr10

# Observability gate alone: the tracing/telemetry suites under -race
# (including the multi-process metrics/dpntop/trace-merge smoke), then
# the disabled-tracing cost assertion against BENCH_pr6.json; see
# scripts/check.sh -obs.
obs:
	./scripts/check.sh -obs
