package dpn_test

import (
	"time"

	"dpn/internal/core"
	"dpn/internal/deadlock"
)

// newMonitor builds the deadlock monitor used by the benchmark
// harness.
func newMonitor(n *core.Network) *deadlock.Monitor {
	return deadlock.New(n, 100*time.Microsecond)
}
