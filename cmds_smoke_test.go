package dpn_test

import (
	"fmt"
	"net"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"dpn/internal/server"
)

// freePort reserves an ephemeral TCP port and returns "127.0.0.1:p".
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	pause := 5 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never started listening", addr)
		}
		time.Sleep(pause)
		if pause < 250*time.Millisecond {
			pause *= 2
		}
	}
}

// waitRegistered polls the registry until n servers are registered. A
// dpnserver's RPC listener comes up before it registers, so a client
// launched right after waitListening can race the registration; this is
// the readiness signal that closes that window.
func waitRegistered(t *testing.T, regAddr string, n int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	pause := 5 * time.Millisecond
	for {
		names, _, err := server.List(regAddr)
		if err == nil && len(names) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry %s never reached %d servers (last: %v, %v)", regAddr, n, names, err)
		}
		time.Sleep(pause)
		if pause < 250*time.Millisecond {
			pause *= 2
		}
	}
}

// TestCommandsSmoke drives the command-line tools end to end,
// including a genuinely multi-process distributed factorization: a
// registry process, two compute-server processes, and a dpnrun client,
// each a separate OS process communicating over real TCP — the
// deployment §4 describes, shrunk onto localhost.
func TestCommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test; skipped with -short")
	}
	bin := t.TempDir()
	for _, tool := range []string{"dpnbench", "dpnrun", "dpnserver", "dpnregistry"} {
		out, err := exec.Command("go", "build", "-o", bin+"/"+tool, "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	t.Run("dpnbench-tables", func(t *testing.T) {
		out, err := exec.Command(bin+"/dpnbench", "-table1", "-table2").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"Table 1", "Table 2", "11.63", "35.9"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("dpnbench-csv", func(t *testing.T) {
		out, err := exec.Command(bin+"/dpnbench", "-csv").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.HasPrefix(string(out), "workers,ideal_min") {
			t.Fatalf("csv header missing:\n%.200s", out)
		}
	})

	t.Run("dpnrun-local-graphs", func(t *testing.T) {
		out, err := exec.Command(bin+"/dpnrun", "-graph", "fib", "-n", "12").CombinedOutput()
		if err != nil || !strings.Contains(string(out), "144") {
			t.Fatalf("fib: %v\n%s", err, out)
		}
		out, err = exec.Command(bin+"/dpnrun", "-graph", "primes", "-n", "12").CombinedOutput()
		if err != nil || !strings.Contains(string(out), "37") {
			t.Fatalf("primes: %v\n%s", err, out)
		}
		out, err = exec.Command(bin+"/dpnrun", "-graph", "factor", "-workers", "2", "-bits", "128", "-validate").CombinedOutput()
		if err != nil || !strings.Contains(string(out), "found:") || !strings.Contains(string(out), "processes") {
			t.Fatalf("factor -validate: %v\n%s", err, out)
		}
		out, err = exec.Command(bin+"/dpnrun", "-graph", "factor", "-workers", "2", "-dot").CombinedOutput()
		if err != nil || !strings.Contains(string(out), "digraph dpn") {
			t.Fatalf("factor -dot: %v\n%s", err, out)
		}
	})

	t.Run("distributed-three-processes", func(t *testing.T) {
		regAddr := freePort(t)
		reg := exec.Command(bin+"/dpnregistry", "-addr", regAddr)
		if err := reg.Start(); err != nil {
			t.Fatal(err)
		}
		defer stop(reg)
		waitListening(t, regAddr)

		var servers []*exec.Cmd
		for i := 0; i < 2; i++ {
			rpc := freePort(t)
			broker := freePort(t)
			srv := exec.Command(bin+"/dpnserver",
				"-name", fmt.Sprintf("s%d", i),
				"-rpc", rpc, "-broker", broker, "-registry", regAddr)
			if err := srv.Start(); err != nil {
				t.Fatal(err)
			}
			servers = append(servers, srv)
			waitListening(t, rpc)
		}
		defer func() {
			for _, s := range servers {
				stop(s)
			}
		}()
		waitRegistered(t, regAddr, len(servers))

		out, err := exec.Command(bin+"/dpnrun",
			"-graph", "factor", "-workers", "4", "-bits", "160",
			"-registry", regAddr).CombinedOutput()
		if err != nil {
			t.Fatalf("distributed factor: %v\n%s", err, out)
		}
		for _, want := range []string{"worker 0 →", "worker 3 →", "found:"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("missing %q:\n%s", want, out)
			}
		}
	})
}

func stop(c *exec.Cmd) {
	if c.Process != nil {
		c.Process.Signal(syscall.SIGTERM)
		c.Wait()
	}
}
