// Package core implements the Kahn-process-network runtime: channels
// (FIFO byte queues with blocking reads and writes), processes (one
// goroutine each), composite processes, a network execution context, and
// graph reconfiguration primitives. It is the Go port of the runtime
// described in "Distributed Process Networks in Java" (Parks, Roberts,
// Millman; IPPS 2003).
package core

import (
	"fmt"
	"io"

	"dpn/internal/conduit"
	"dpn/internal/stream"
)

// ErrDetached is returned by operations on a port whose transport has
// been handed to another process or to the migration machinery. It is
// an alias of the sentinel in the conduit layer's consolidated
// catalogue (internal/conduit/errs.go).
var ErrDetached = conduit.ErrDetached

// rstate is the shared state behind one or more *ReadPort handles. Ports
// are a single pointer to their state so that gob decoding can rebind a
// freshly allocated port to reconstructed state without copying locks.
type rstate struct {
	name string
	seq  *stream.SequenceReader
	ch   *Channel // nil when the port is not attached to a local channel
}

// ReadPort is the consuming end of a channel. It corresponds to the
// paper's ChannelInputStream: reads block until data is available, and
// the port contains a sequence reader so that upstream processes can
// splice themselves out of the graph without losing data (§3.3).
type ReadPort struct {
	s *rstate
}

// Read fills b with at least one byte, blocking as required by Kahn
// semantics. It returns io.EOF after the producing side has closed and
// all data has drained.
func (p *ReadPort) Read(b []byte) (int, error) {
	if p.s == nil || p.s.seq == nil {
		return 0, ErrDetached
	}
	return p.s.seq.Read(b)
}

// Close closes the consuming end. The producing process observes
// stream.ErrReadClosed on its next write, propagating termination
// upstream (§3.4).
func (p *ReadPort) Close() error {
	if p.s == nil || p.s.seq == nil {
		return nil
	}
	return p.s.seq.Close()
}

// Channel returns the local channel this port belongs to, or nil if the
// port is detached or fed by a remote transport.
func (p *ReadPort) Channel() *Channel {
	if p.s == nil {
		return nil
	}
	return p.s.ch
}

// Name returns the diagnostic port name.
func (p *ReadPort) Name() string {
	if p.s == nil {
		return "<detached>"
	}
	return p.s.name
}

// Detach removes and returns the port's byte source. Subsequent reads
// fail with ErrDetached and Close becomes a no-op, so a terminating
// process cannot poison a stream it has handed to its consumer. Detach
// is the first half of a splice-out (Figure 10 of the paper).
func (p *ReadPort) Detach() io.ReadCloser {
	if p.s == nil {
		return nil
	}
	seq := p.s.seq
	p.s = &rstate{name: p.s.name + "<detached>"}
	return seq
}

// appendSource splices an additional byte source after the port's
// current contents. Used by SpliceOut.
func (p *ReadPort) appendSource(src io.ReadCloser) error {
	if p.s == nil || p.s.seq == nil {
		return ErrDetached
	}
	p.s.seq.Append(src)
	return nil
}

// RetargetSource replaces the port's transport wholesale, closing the
// displaced one. Used when a migrated process's channel is reconnected
// over the network.
func (p *ReadPort) RetargetSource(src io.ReadCloser) error {
	if p.s == nil || p.s.seq == nil {
		return ErrDetached
	}
	p.s.seq.Retarget(src)
	return nil
}

// Buffered reports how many bytes are immediately readable without
// blocking (0 when the transport cannot tell). Batch decoders in
// package token use it to size non-blocking drains.
func (p *ReadPort) Buffered() int {
	if p.s == nil || p.s.seq == nil {
		return 0
	}
	return p.s.seq.Buffered()
}

// NoteToken records one typed element consumed through this port; it
// feeds the dpn_conduit_tokens_total counter. Package token calls it
// after each successfully decoded element.
func (p *ReadPort) NoteToken() {
	if p.s != nil && p.s.ch != nil {
		p.s.ch.tokensOut.Inc()
	}
}

// NoteTokens records k consumed elements in one counter operation.
func (p *ReadPort) NoteTokens(k int) {
	if p.s != nil && p.s.ch != nil {
		p.s.ch.tokensOut.Add(int64(k))
	}
}

func (p *ReadPort) String() string { return fmt.Sprintf("ReadPort(%s)", p.Name()) }

// wstate is the shared state behind a *WritePort handle.
type wstate struct {
	name string
	sw   *stream.SwitchWriter
	ch   *Channel
}

// WritePort is the producing end of a channel, corresponding to the
// paper's ChannelOutputStream. Writes block while the channel buffer is
// full (§3.5: bounded channels give fair scheduling).
type WritePort struct {
	s *wstate
}

// Write appends b to the channel, blocking while the buffer is full.
// After the consuming end closes, Write fails with stream.ErrReadClosed.
func (p *WritePort) Write(b []byte) (int, error) {
	if p.s == nil || p.s.sw == nil {
		return 0, ErrDetached
	}
	return p.s.sw.Write(b)
}

// WriteVec appends a multi-part element to the channel as one
// operation (see stream.SwitchWriter.WriteVec): one lock round trip,
// at most one consumer wakeup, and no torn element on any transport.
func (p *WritePort) WriteVec(bufs ...[]byte) (int, error) {
	if p.s == nil || p.s.sw == nil {
		return 0, ErrDetached
	}
	return p.s.sw.WriteVec(bufs...)
}

// Close closes the producing end. The consumer drains buffered data and
// then observes io.EOF.
func (p *WritePort) Close() error {
	if p.s == nil || p.s.sw == nil {
		return nil
	}
	return p.s.sw.Close()
}

// Channel returns the local channel this port belongs to, or nil.
func (p *WritePort) Channel() *Channel {
	if p.s == nil {
		return nil
	}
	return p.s.ch
}

// Name returns the diagnostic port name.
func (p *WritePort) Name() string {
	if p.s == nil {
		return "<detached>"
	}
	return p.s.name
}

// Detach removes and returns the port's sink. Subsequent writes fail
// with ErrDetached and Close becomes a no-op.
func (p *WritePort) Detach() io.WriteCloser {
	if p.s == nil {
		return nil
	}
	sw := p.s.sw
	p.s = &wstate{name: p.s.name + "<detached>"}
	return sw
}

// RetargetSink replaces the port's sink, returning the displaced one.
func (p *WritePort) RetargetSink(w io.WriteCloser) (io.WriteCloser, error) {
	if p.s == nil || p.s.sw == nil {
		return nil, ErrDetached
	}
	return p.s.sw.Retarget(w), nil
}

// HintShape forwards an advisory element-shape hint (token/blocks
// Shape values) toward the channel's sink, where a transport binding
// may use it to pick a compression trial. Detached ports drop the hint
// — it carries no correctness weight.
func (p *WritePort) HintShape(s uint32) {
	if p.s != nil && p.s.sw != nil {
		p.s.sw.HintShape(s)
	}
}

// NoteToken records one typed element produced through this port; it
// feeds the dpn_conduit_tokens_total counter.
func (p *WritePort) NoteToken() {
	if p.s != nil && p.s.ch != nil {
		p.s.ch.tokensIn.Inc()
	}
}

// NoteTokens records k produced elements in one counter operation.
func (p *WritePort) NoteTokens(k int) {
	if p.s != nil && p.s.ch != nil {
		p.s.ch.tokensIn.Add(int64(k))
	}
}

func (p *WritePort) String() string { return fmt.Sprintf("WritePort(%s)", p.Name()) }

// IsTermination reports whether err is one of the benign stream-shutdown
// conditions that terminate a process normally, mirroring the Java
// implementation's treatment of IOException in IterativeProcess.run
// (Figure 4 of the paper): end of input, poisoned output, or a channel
// torn down mid-element during cascade shutdown. The catalogue lives at
// the conduit layer; this is conduit.IsBenignClose under its historic
// name.
func IsTermination(err error) bool { return conduit.IsBenignClose(err) }
