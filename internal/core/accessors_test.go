package core

import (
	"io"
	"strings"
	"testing"

	"dpn/internal/stream"
)

// envProbe records what its Env exposes.
type envProbe struct {
	net  *Network
	self *Proc
	ch   *Channel
}

func (e *envProbe) Run(env *Env) error {
	e.net = env.Network()
	e.self = env.Self()
	e.ch = env.NewChannel("made-by-env", 32)
	return nil
}

func TestEnvAccessors(t *testing.T) {
	n := NewNetwork()
	probe := &envProbe{}
	p := n.Spawn(probe)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if probe.net != n {
		t.Fatal("Env.Network wrong")
	}
	if probe.self != p {
		t.Fatal("Env.Self wrong")
	}
	if probe.ch == nil || probe.ch.Name() != "made-by-env" {
		t.Fatal("Env.NewChannel wrong")
	}
	if p.Name() != "envProbe" {
		t.Fatalf("Proc.Name = %q", p.Name())
	}
	if p.Body() != probe {
		t.Fatal("Proc.Body wrong")
	}
	select {
	case <-p.Done():
	default:
		t.Fatal("Done channel not closed after Wait")
	}
	n.Wait()
}

func TestPortStringAndNames(t *testing.T) {
	ch := NewChannel("x", 8)
	if !strings.Contains(ch.Reader().String(), "x.r") {
		t.Fatalf("reader String = %q", ch.Reader().String())
	}
	if !strings.Contains(ch.Writer().String(), "x.w") {
		t.Fatalf("writer String = %q", ch.Writer().String())
	}
	r := ch.Reader()
	r.Detach()
	if r.Name() == "" {
		t.Fatal("detached reader has empty name")
	}
	var nilR ReadPort
	if nilR.Name() != "<detached>" || nilR.Channel() != nil {
		t.Fatal("zero ReadPort accessors wrong")
	}
	var nilW WritePort
	if nilW.Name() != "<detached>" || nilW.Channel() != nil {
		t.Fatal("zero WritePort accessors wrong")
	}
	if nilR.Detach() != nil || nilW.Detach() != nil {
		t.Fatal("zero port Detach should be nil")
	}
}

func TestRetargetSourceAndSink(t *testing.T) {
	ch := NewChannel("main", 16)
	alt := stream.NewPipe(16)
	alt.Write([]byte("alt!"))
	alt.CloseWrite()
	if err := ch.Reader().RetargetSource(alt.ReadEnd()); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(ch.Reader())
	if err != nil || string(got) != "alt!" {
		t.Fatalf("got %q, %v", got, err)
	}

	sink := stream.NewPipe(16)
	old, err := ch.Writer().RetargetSink(sink.WriteEnd())
	if err != nil || old == nil {
		t.Fatalf("retarget sink: %v", err)
	}
	ch.Writer().Write([]byte("zz"))
	if got := sink.Drain(); string(got) != "zz" {
		t.Fatalf("sink got %q", got)
	}

	// Detached ports refuse retargeting.
	r := NewChannel("d", 8).Reader()
	r.Detach()
	if err := r.RetargetSource(alt.ReadEnd()); err != ErrDetached {
		t.Fatalf("got %v", err)
	}
	w := NewChannel("e", 8).Writer()
	w.Detach()
	if _, err := w.RetargetSink(sink.WriteEnd()); err != ErrDetached {
		t.Fatalf("got %v", err)
	}
}

func TestNamerOverridesTypeName(t *testing.T) {
	n := NewNetwork()
	p := n.Spawn(&namedProc{})
	p.Wait()
	if p.Name() != "custom-name" {
		t.Fatalf("got %q", p.Name())
	}
	n.Wait()
}

type namedProc struct{}

func (p *namedProc) ProcessName() string { return "custom-name" }
func (p *namedProc) Run(env *Env) error  { return nil }

func TestIterativeZeroMeansUnlimited(t *testing.T) {
	var it Iterative
	if it.IterationLimit() != 0 {
		t.Fatal("zero Iterative should report 0 (unlimited)")
	}
}
