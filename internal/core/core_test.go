package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"dpn/internal/stream"
	"dpn/internal/token"
)

// emitter writes the int64s in Values to Out, one per Step.
type emitter struct {
	Iterative
	Out    *WritePort
	Values []int64
	i      int
}

func (e *emitter) Step(env *Env) error {
	if e.i >= len(e.Values) {
		return io.EOF
	}
	v := e.Values[e.i]
	e.i++
	return token.NewWriter(e.Out).WriteInt64(v)
}

// sink reads int64s from In and records them.
type sink struct {
	In *ReadPort

	mu  sync.Mutex
	got []int64
}

func (s *sink) Step(env *Env) error {
	v, err := token.NewReader(s.In).ReadInt64()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.got = append(s.got, v)
	s.mu.Unlock()
	return nil
}

func (s *sink) values() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.got...)
}

func TestSpawnEmitterSink(t *testing.T) {
	n := NewNetwork()
	ch := n.NewChannel("c", 64)
	want := []int64{3, 1, 4, 1, 5, 9}
	n.Spawn(&emitter{Out: ch.Writer(), Values: want})
	sk := &sink{In: ch.Reader()}
	n.Spawn(sk)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	got := sk.values()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIterationLimitStopsProcess(t *testing.T) {
	// An infinite producer with an iteration-limited consumer: the
	// consumer stops; the producer observes the poisoned channel and
	// terminates too (§3.4, the "first 100 primes" pattern).
	n := NewNetwork()
	ch := n.NewChannel("c", 8)
	n.Spawn(&counter{Out: ch.Writer()})
	sk := &limitedSink{In: ch.Reader()}
	sk.Iterations = 5
	n.Spawn(sk)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("network did not terminate after iteration limit")
	}
	if len(sk.got) != 5 {
		t.Fatalf("consumer read %d values, want 5", len(sk.got))
	}
	for i, v := range sk.got {
		if v != int64(i) {
			t.Fatalf("got %v", sk.got)
		}
	}
}

// counter writes 0,1,2,... forever.
type counter struct {
	Out *WritePort
	v   int64
}

func (c *counter) Step(env *Env) error {
	err := token.NewWriter(c.Out).WriteInt64(c.v)
	c.v++
	return err
}

type limitedSink struct {
	Iterative
	In  *ReadPort
	got []int64
}

func (s *limitedSink) Step(env *Env) error {
	v, err := token.NewReader(s.In).ReadInt64()
	if err != nil {
		return err
	}
	s.got = append(s.got, v)
	return nil
}

func TestCascadingTerminationDownstream(t *testing.T) {
	// Producer with a limit; downstream drains everything then sees EOF
	// — "no unnecessary computation occurs and all data produced is
	// eventually consumed" (§3.4).
	n := NewNetwork()
	ch := n.NewChannel("c", 4)
	n.Spawn(&emitter{Out: ch.Writer(), Values: []int64{1, 2, 3}})
	sk := &sink{In: ch.Reader()}
	n.Spawn(sk)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(sk.values()) != 3 {
		t.Fatalf("got %v", sk.values())
	}
}

type failing struct{}

func (f *failing) Step(env *Env) error { return errors.New("boom") }

func TestProcessFailureRecorded(t *testing.T) {
	n := NewNetwork()
	n.Spawn(&failing{})
	err := n.Wait()
	if err == nil || err.Error() != "process failing: boom" {
		t.Fatalf("Wait = %v", err)
	}
	if len(n.Errors()) != 1 {
		t.Fatalf("Errors = %v", n.Errors())
	}
}

type hooked struct {
	Iterative
	started, stepped, stopped int
}

func (h *hooked) OnStart(env *Env) error { h.started++; return nil }
func (h *hooked) Step(env *Env) error    { h.stepped++; return nil }
func (h *hooked) OnStop(env *Env)        { h.stopped++ }

func TestLifecycleHooks(t *testing.T) {
	n := NewNetwork()
	h := &hooked{Iterative: Iterative{Iterations: 3}}
	p := n.Spawn(h)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.started != 1 || h.stepped != 3 || h.stopped != 1 {
		t.Fatalf("hooks = %+v", h)
	}
}

type failingStart struct {
	Iterative
	stopped bool
}

func (f *failingStart) OnStart(env *Env) error { return errors.New("init fail") }
func (f *failingStart) Step(env *Env) error    { return nil }
func (f *failingStart) OnStop(env *Env)        { f.stopped = true }

func TestOnStopRunsAfterFailedStart(t *testing.T) {
	n := NewNetwork()
	f := &failingStart{Iterative: Iterative{Iterations: 1}}
	n.Spawn(f)
	if err := n.Wait(); err == nil {
		t.Fatal("expected error")
	}
	if !f.stopped {
		t.Fatal("OnStop did not run after failed OnStart")
	}
}

func TestPortsOfReflection(t *testing.T) {
	type inner struct {
		In *ReadPort
	}
	type procT struct {
		Iterative
		In     *ReadPort
		Out    *WritePort
		Outs   []*WritePort
		hidden *ReadPort // unexported: must be ignored
		Inner  inner     // non-anonymous struct: must be ignored
	}
	ch1 := NewChannel("a", 4)
	ch2 := NewChannel("b", 4)
	ch3 := NewChannel("c", 4)
	ch4 := NewChannel("d", 4)
	ch5 := NewChannel("e", 4)
	p := &procT{
		In:     ch1.Reader(),
		Out:    ch2.Writer(),
		Outs:   []*WritePort{ch3.Writer(), ch4.Writer()},
		hidden: ch5.Reader(),
		Inner:  inner{In: ch5.Reader()},
	}
	ports := PortsOf(p)
	if len(ports) != 4 {
		t.Fatalf("PortsOf found %d ports, want 4", len(ports))
	}
}

type Embedded struct {
	Out *WritePort
}

type outerProc struct {
	Embedded
	In *ReadPort
}

func (o *outerProc) Step(env *Env) error { return io.EOF }

func TestPortsOfEmbeddedStruct(t *testing.T) {
	ch1 := NewChannel("a", 4)
	ch2 := NewChannel("b", 4)
	p := &outerProc{Embedded: Embedded{Out: ch1.Writer()}, In: ch2.Reader()}
	if got := len(PortsOf(p)); got != 2 {
		t.Fatalf("PortsOf = %d ports, want 2", got)
	}
}

type customPorts struct{ closed *int }

func (c *customPorts) Step(env *Env) error { return io.EOF }
func (c *customPorts) Ports() []io.Closer  { return []io.Closer{closerFunc(func() { *c.closed++ })} }

type closerFunc func()

func (f closerFunc) Close() error { f(); return nil }

func TestPortHolderOverride(t *testing.T) {
	n := NewNetwork()
	count := 0
	p := n.Spawn(&customPorts{closed: &count})
	p.Wait()
	if count != 1 {
		t.Fatalf("custom Ports not closed: %d", count)
	}
}

func TestProcessPortsClosedOnExit(t *testing.T) {
	n := NewNetwork()
	ch := n.NewChannel("c", 16)
	p := n.Spawn(&emitter{Out: ch.Writer(), Values: []int64{7}})
	p.Wait()
	// Writer closed on exit: reader sees the value then EOF.
	r := token.NewReader(ch.Reader())
	if v, err := r.ReadInt64(); err != nil || v != 7 {
		t.Fatalf("got %d, %v", v, err)
	}
	if _, err := r.ReadInt64(); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

func TestCompositeRunsAllChildren(t *testing.T) {
	n := NewNetwork()
	ch := n.NewChannel("c", 16)
	sk := &sink{In: ch.Reader()}
	comp := (&Composite{Name: "pair"}).
		Add(&emitter{Out: ch.Writer(), Values: []int64{10, 20}}).
		Add(sk)
	if comp.ProcessName() != "Composite(pair)" {
		t.Fatalf("name = %q", comp.ProcessName())
	}
	p := n.Spawn(comp)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := sk.values(); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("got %v", got)
	}
}

func TestCompositePropagatesChildError(t *testing.T) {
	n := NewNetwork()
	comp := (&Composite{}).Add(&failing{})
	p := n.Spawn(comp)
	if err := p.Wait(); err == nil {
		t.Fatal("composite did not propagate child failure")
	}
	n.Wait()
}

// relay copies bytes from In to Out; used as the middle process for the
// splice-out test (the paper's post-initialization Cons).
type relay struct {
	In    *ReadPort
	Out   *WritePort
	After int // splice out after this many elements copied
	n     int
}

func (r *relay) Step(env *Env) error {
	if r.After > 0 && r.n >= r.After {
		if err := SpliceOut(r.In, r.Out); err != nil {
			return err
		}
		return io.EOF
	}
	v, err := token.NewReader(r.In).ReadInt64()
	if err != nil {
		return err
	}
	if err := token.NewWriter(r.Out).WriteInt64(v); err != nil {
		return err
	}
	r.n++
	return nil
}

func TestSpliceOutPreservesEveryElement(t *testing.T) {
	n := NewNetwork()
	a := n.NewChannel("a", 32)
	b := n.NewChannel("b", 32)
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i * i)
	}
	n.Spawn(&emitter{Out: a.Writer(), Values: vals})
	n.Spawn(&relay{In: a.Reader(), Out: b.Writer(), After: 10})
	sk := &sink{In: b.Reader()}
	n.Spawn(sk)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	got := sk.values()
	if len(got) != len(vals) {
		t.Fatalf("got %d values, want %d (splice lost or duplicated data)", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("element %d: got %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestSpliceOutErrors(t *testing.T) {
	if err := SpliceOut(nil, nil); err == nil {
		t.Fatal("nil ports accepted")
	}
	ch := NewChannel("x", 4)
	foreign := AttachForeignWrite("f", nopWC{})
	if err := SpliceOut(ch.Reader(), foreign); err == nil {
		t.Fatal("foreign output accepted")
	}
}

type nopWC struct{}

func (nopWC) Write(b []byte) (int, error) { return len(b), nil }
func (nopWC) Close() error                { return nil }

func TestDetachedPortOperations(t *testing.T) {
	ch := NewChannel("x", 4)
	r := ch.Reader()
	w := ch.Writer()
	r.Detach()
	w.Detach()
	if _, err := r.Read(make([]byte, 1)); err != ErrDetached {
		t.Fatalf("detached read = %v", err)
	}
	if _, err := w.Write([]byte{1}); err != ErrDetached {
		t.Fatalf("detached write = %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Channel() != nil || w.Channel() != nil {
		t.Fatal("detached ports should have no channel")
	}
}

func TestIsTermination(t *testing.T) {
	for _, err := range []error{io.EOF, io.ErrUnexpectedEOF, stream.ErrReadClosed, stream.ErrWriteClosed, ErrDetached} {
		if !IsTermination(err) {
			t.Errorf("IsTermination(%v) = false", err)
		}
	}
	if IsTermination(nil) || IsTermination(errors.New("x")) {
		t.Error("IsTermination misclassified")
	}
}

func TestNetworkCounters(t *testing.T) {
	n := NewNetwork()
	ch := n.NewChannel("c", 1)
	if len(n.Channels()) != 1 {
		t.Fatal("channel not registered")
	}
	gen0 := n.Generation()
	sk := &sink{In: ch.Reader()}
	n.Spawn(sk)
	// Wait for the sink to block on the empty channel.
	deadline := time.Now().Add(2 * time.Second)
	for n.Blocked() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("sink never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	if n.Live() != 1 {
		t.Fatalf("Live = %d", n.Live())
	}
	if n.Generation() == gen0 {
		t.Fatal("generation did not advance")
	}
	ch.Writer().Close()
	n.Wait()
	if n.Live() != 0 || n.Blocked() != 0 {
		t.Fatalf("after Wait: live=%d blocked=%d", n.Live(), n.Blocked())
	}
}

func TestNewChannelDefaults(t *testing.T) {
	n := NewNetwork(WithDefaultCapacity(99))
	ch := n.NewChannel("", 0)
	if ch.Pipe().Cap() != 99 {
		t.Fatalf("cap = %d", ch.Pipe().Cap())
	}
	if ch.Name() == "" {
		t.Fatal("auto name missing")
	}
	if ch.Network() != n {
		t.Fatal("network back-reference wrong")
	}
}

// carrier is a gob-encodable process holding ports.
type carrier struct {
	Iterative
	In  *ReadPort
	Out *WritePort
}

func (c *carrier) Step(env *Env) error { return io.EOF }

func TestPortGobTransferRoundTrip(t *testing.T) {
	gob.Register(&carrier{})
	src := NewChannel("src", 8)
	dst := NewChannel("dst", 8)
	p := &carrier{In: src.Reader(), Out: dst.Writer()}

	enc := NewTransfer()
	inID := enc.RegisterRead(p.In)
	outID := enc.RegisterWrite(p.Out)
	// Registering again returns the same ID (shared references).
	if enc.RegisterRead(p.In) != inID {
		t.Fatal("duplicate registration changed ID")
	}
	var buf bytes.Buffer
	err := WithTransfer(enc, func() error {
		var holder any = p
		return gob.NewEncoder(&buf).Encode(&holder)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Decode side: provide replacement ports, then decode.
	src2 := NewChannel("src2", 8)
	dst2 := NewChannel("dst2", 8)
	dec := NewTransfer()
	dec.ProvideRead(inID, src2.Reader())
	dec.ProvideWrite(outID, dst2.Writer())
	var got any
	err = WithTransfer(dec, func() error {
		return gob.NewDecoder(&buf).Decode(&got)
	})
	if err != nil {
		t.Fatal(err)
	}
	c2 := got.(*carrier)
	// The decoded ports must be bound to the replacement channels.
	src2.Writer().Write([]byte{42})
	b := make([]byte, 1)
	if _, err := c2.In.Read(b); err != nil || b[0] != 42 {
		t.Fatalf("decoded In not rebound: %v %v", b, err)
	}
	c2.Out.Write([]byte{7})
	if got := dst2.Pipe().Snapshot(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("decoded Out not rebound: %v", got)
	}
}

func TestPortGobOutsideTransferFails(t *testing.T) {
	ch := NewChannel("x", 4)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ch.Reader()); err == nil {
		t.Fatal("encoding outside transfer session should fail")
	}
}

func TestPortGobUnregisteredFails(t *testing.T) {
	ch := NewChannel("x", 4)
	var buf bytes.Buffer
	err := WithTransfer(NewTransfer(), func() error {
		return gob.NewEncoder(&buf).Encode(ch.Reader())
	})
	if err == nil {
		t.Fatal("encoding unregistered port should fail")
	}
}

type sifter struct {
	In  *ReadPort
	Out *WritePort
	n   int
}

// Step reads a value, emits it, and inserts an upstream doubler — a
// minimal analog of Sift inserting Modulo processes (Figure 8).
func (s *sifter) Step(env *Env) error {
	v, err := token.NewReader(s.In).ReadInt64()
	if err != nil {
		return err
	}
	if err := token.NewWriter(s.Out).WriteInt64(v); err != nil {
		return err
	}
	s.n++
	if s.n == 1 {
		s.In = InsertUpstream(env, s.In, "inserted", 16,
			func(handedOff *ReadPort, out *WritePort) {
				env.Spawn(&adderProc{In: handedOff, Out: out, Delta: 1000})
			})
	}
	return nil
}

type adderProc struct {
	In    *ReadPort
	Out   *WritePort
	Delta int64
}

func (a *adderProc) Step(env *Env) error {
	v, err := token.NewReader(a.In).ReadInt64()
	if err != nil {
		return err
	}
	return token.NewWriter(a.Out).WriteInt64(v + a.Delta)
}

func TestInsertUpstreamReconfiguration(t *testing.T) {
	n := NewNetwork()
	a := n.NewChannel("a", 32)
	b := n.NewChannel("b", 32)
	n.Spawn(&emitter{Out: a.Writer(), Values: []int64{1, 2, 3}})
	n.Spawn(&sifter{In: a.Reader(), Out: b.Writer()})
	sk := &sink{In: b.Reader()}
	n.Spawn(sk)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	got := sk.values()
	want := []int64{1, 1002, 1003}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSpawnRejectsNonProcess(t *testing.T) {
	n := NewNetwork()
	n.Spawn(42)
	if err := n.Wait(); err == nil {
		t.Fatal("non-process value accepted")
	}
}

func TestForeignPorts(t *testing.T) {
	p := stream.NewPipe(8)
	w := AttachForeignWrite("fw", p.WriteEnd())
	r := AttachForeignRead("fr", p.ReadEnd())
	if w.Name() != "fw" || r.Name() != "fr" {
		t.Fatal("names wrong")
	}
	w.Write([]byte("ok"))
	w.Close()
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "ok" {
		t.Fatalf("got %q, %v", got, err)
	}
}
