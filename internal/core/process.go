package core

import (
	"fmt"
	"io"
	"reflect"
)

// Process is a node of the program graph. Run executes the process body
// to completion; returning ends the process, after which the runtime
// closes every port the process holds (the paper's onStop behaviour,
// §3.2), triggering the cascading termination of §3.4.
//
// Most process types do not implement Process directly; they implement
// Stepper and are driven by the synthesized run loop, mirroring
// IterativeProcess in the Java implementation (Figure 4).
type Process interface {
	Run(env *Env) error
}

// Stepper performs one unit of a process's work per call. Step returning
// a termination error (see IsTermination) ends the process normally; any
// other error ends the process and is recorded as a failure.
type Stepper interface {
	Step(env *Env) error
}

// Starter is implemented by processes needing one-time initialization
// that is inappropriate for the constructor (the paper's onStart).
type Starter interface {
	OnStart(env *Env) error
}

// Stopper is implemented by processes needing one-time cleanup beyond
// port closing (the paper's onStop). It runs even if the process failed.
type Stopper interface {
	OnStop(env *Env)
}

// Limited is implemented by processes with a fixed iteration limit
// (§3.4: "Any process can have a fixed iteration limit imposed upon
// it"). A non-positive limit means unlimited.
type Limited interface {
	IterationLimit() int64
}

// Iterative can be embedded in a process struct to give it a
// configurable iteration limit.
type Iterative struct {
	// Iterations is the maximum number of Step calls; <= 0 means no
	// limit (run until a channel terminates the process).
	Iterations int64
}

// IterationLimit implements Limited.
func (it Iterative) IterationLimit() int64 { return it.Iterations }

// PortHolder can be implemented to override the reflective discovery of
// a process's ports. The runtime closes every returned closer when the
// process stops.
type PortHolder interface {
	Ports() []io.Closer
}

// Namer can be implemented to give a process a diagnostic name; the
// default is its Go type name.
type Namer interface {
	ProcessName() string
}

// nameOf derives a diagnostic process name.
func nameOf(p any) string {
	if n, ok := p.(Namer); ok {
		return n.ProcessName()
	}
	t := reflect.TypeOf(p)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// runBody executes a process value: a Process runs directly; a Stepper
// is driven through the synthesized onStart/step/onStop loop of
// Figure 4.
func runBody(p any, env *Env) error {
	switch v := p.(type) {
	case Process:
		return v.Run(env)
	case Stepper:
		return runSteps(v, env)
	default:
		return fmt.Errorf("core: %T implements neither Process nor Stepper", p)
	}
}

// runSteps is the Go transcription of IterativeProcess.run (Figure 4 of
// the paper): onStart once, step until the iteration limit is reached or
// a stream exception occurs, onStop once.
func runSteps(s Stepper, env *Env) (err error) {
	if st, ok := s.(Stopper); ok {
		defer st.OnStop(env)
	}
	if st, ok := s.(Starter); ok {
		if err := st.OnStart(env); err != nil {
			if IsTermination(err) {
				return nil
			}
			return err
		}
	}
	var limit int64 = -1
	if l, ok := s.(Limited); ok {
		limit = l.IterationLimit()
	}
	if limit > 0 {
		for i := int64(0); i < limit; i++ {
			if env.proc.park.checkpoint() {
				return errEjected
			}
			if err := s.Step(env); err != nil {
				if IsTermination(err) {
					return nil
				}
				return err
			}
		}
		return nil
	}
	for {
		if env.proc.park.checkpoint() {
			return errEjected
		}
		if err := s.Step(env); err != nil {
			if IsTermination(err) {
				return nil
			}
			return err
		}
	}
}

// PortsOf discovers the channel ports a process holds, by reflection
// over its exported fields: *ReadPort and *WritePort fields, slices of
// them, and the same inside embedded (anonymous) struct fields. A
// process can override discovery by implementing PortHolder. The
// runtime closes all discovered ports when the process stops, which is
// what makes termination cascade through the graph (§3.4).
func PortsOf(p any) []io.Closer {
	if h, ok := p.(PortHolder); ok {
		return h.Ports()
	}
	var out []io.Closer
	collectPorts(reflect.ValueOf(p), &out, 0)
	return out
}

func collectPorts(v reflect.Value, out *[]io.Closer, depth int) {
	if depth > 4 {
		return
	}
	for v.Kind() == reflect.Pointer || v.Kind() == reflect.Interface {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return
	}
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		fv := v.Field(i)
		switch fv.Type() {
		case readPortType:
			if !fv.IsNil() {
				*out = append(*out, fv.Interface().(*ReadPort))
			}
			continue
		case writePortType:
			if !fv.IsNil() {
				*out = append(*out, fv.Interface().(*WritePort))
			}
			continue
		}
		switch fv.Kind() {
		case reflect.Slice, reflect.Array:
			et := fv.Type().Elem()
			if et == readPortType || et == writePortType {
				for j := 0; j < fv.Len(); j++ {
					e := fv.Index(j)
					if !e.IsNil() {
						*out = append(*out, e.Interface().(io.Closer))
					}
				}
			}
		case reflect.Struct:
			if f.Anonymous {
				collectPorts(fv, out, depth+1)
			}
		case reflect.Pointer:
			if f.Anonymous && !fv.IsNil() && fv.Type().Elem().Kind() == reflect.Struct {
				collectPorts(fv, out, depth+1)
			}
		}
	}
}

var (
	readPortType  = reflect.TypeOf((*ReadPort)(nil))
	writePortType = reflect.TypeOf((*WritePort)(nil))
)
