package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"dpn/internal/obs"
	"dpn/internal/stream"
)

// ProcState describes what a process goroutine is currently doing. It is
// exported for the deadlock monitor and for diagnostics.
type ProcState int32

const (
	// StateRunning means the process is computing (or about to block).
	StateRunning ProcState = iota
	// StateDone means the process has finished.
	StateDone
)

// Proc is a handle to one running process.
type Proc struct {
	name    string
	body    any
	net     *Network
	done    chan struct{}
	err     error
	state   atomic.Int32
	park    *parkState
	ejected bool
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Body returns the process value being executed.
func (p *Proc) Body() any { return p.body }

// Wait blocks until the process has finished and returns its error, if
// any. Termination errors (IsTermination) are not reported as failures.
func (p *Proc) Wait() error {
	<-p.done
	return p.err
}

// Done returns a channel closed when the process finishes.
func (p *Proc) Done() <-chan struct{} { return p.done }

// Network is the execution context for a process-network program graph:
// it tracks running processes and registered channels, provides the
// bookkeeping the deadlock monitor needs, and lets callers wait for the
// whole graph to terminate. Processes may spawn further processes at any
// time (self-modifying graphs, §3.3).
type Network struct {
	mu       sync.Mutex
	procs    map[*Proc]struct{}
	channels []*Channel
	errs     []error

	wg         sync.WaitGroup
	generation atomic.Uint64

	defaultCap int
	chanSeq    atomic.Int64

	// The scheduling counters live in the observability registry so
	// they are exported alongside everything else; the accessors below
	// read the same instruments the deadlock monitor uses.
	scope     *obs.Scope
	gLive     *obs.Gauge
	gBlocked  *obs.Gauge
	cSpawned  *obs.Counter
	cFailures *obs.Counter
}

// Option configures a Network.
type Option func(*Network)

// WithDefaultCapacity sets the buffer capacity used by NewChannel when
// the caller passes a non-positive capacity.
func WithDefaultCapacity(c int) Option {
	return func(n *Network) { n.defaultCap = c }
}

// WithObs runs the network under the given observability scope, so a
// node's network, broker, and monitor share one registry and tracer.
func WithObs(s *obs.Scope) Option {
	return func(n *Network) {
		if s != nil {
			n.scope = s
		}
	}
}

// NewNetwork creates an empty execution context.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		procs:      make(map[*Proc]struct{}),
		defaultCap: stream.DefaultCapacity,
		scope:      obs.NewScope(),
	}
	for _, o := range opts {
		o(n)
	}
	reg := n.scope.Registry()
	reg.Help("dpn_net_procs_live", "Processes currently executing in this network.")
	reg.Help("dpn_net_procs_blocked", "Goroutines blocked inside a registered channel's pipe.")
	reg.Help("dpn_net_procs_spawned_total", "Processes ever spawned in this network.")
	reg.Help("dpn_net_proc_failures_total", "Processes that ended with a non-termination error.")
	n.gLive = reg.Gauge("dpn_net_procs_live")
	n.gBlocked = reg.Gauge("dpn_net_procs_blocked")
	n.cSpawned = reg.Counter("dpn_net_procs_spawned_total")
	n.cFailures = reg.Counter("dpn_net_proc_failures_total")
	return n
}

// Obs returns the network's observability scope. It is never nil for a
// network built with NewNetwork.
func (n *Network) Obs() *obs.Scope { return n.scope }

// NewChannel creates a channel registered with the network. A
// non-positive capacity selects the network's default.
func (n *Network) NewChannel(name string, capacity int) *Channel {
	if capacity <= 0 {
		capacity = n.defaultCap
	}
	if name == "" {
		name = fmt.Sprintf("ch%d", n.chanSeq.Add(1))
	}
	return newChannel(n, name, capacity)
}

func (n *Network) registerChannel(c *Channel) {
	n.mu.Lock()
	n.channels = append(n.channels, c)
	n.mu.Unlock()
	n.generation.Add(1)
}

// Channels returns a snapshot of the registered channels.
func (n *Network) Channels() []*Channel {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Channel, len(n.channels))
	copy(out, n.channels)
	return out
}

// Spawn starts p (a Process or Stepper) in its own goroutine — "each
// process executes in its own thread" (§3.2) — and returns its handle.
// When the body returns, every port the process holds is closed,
// propagating termination through the graph.
func (n *Network) Spawn(p any) *Proc {
	proc := &Proc{name: nameOf(p), body: p, net: n, done: make(chan struct{})}
	if _, isProcess := p.(Process); !isProcess {
		if _, isStepper := p.(Stepper); isStepper {
			proc.park = newParkState()
		}
	}
	n.mu.Lock()
	n.procs[proc] = struct{}{}
	n.mu.Unlock()
	n.wg.Add(1)
	n.gLive.Add(1)
	n.cSpawned.Inc()
	n.scope.Record(obs.EvSpawn, proc.name, "", 0)
	n.generation.Add(1)
	go func() {
		defer n.finish(proc)
		env := &Env{net: n, proc: proc}
		err := runBody(p, env)
		switch {
		case errors.Is(err, errEjected):
			proc.ejected = true
		case err != nil && !IsTermination(err):
			proc.err = fmt.Errorf("process %s: %w", proc.name, err)
		}
	}()
	return proc
}

func (n *Network) finish(proc *Proc) {
	// An ejected process keeps its ports open: it is leaving this
	// goroutine to continue elsewhere (§6.1 migration). Every other
	// exit closes the ports, propagating termination (§3.4).
	if !proc.ejected {
		for _, c := range PortsOf(proc.body) {
			c.Close()
		}
	}
	if proc.park != nil {
		proc.park.markFinished()
	}
	proc.state.Store(int32(StateDone))
	detail := ""
	if proc.err != nil {
		n.mu.Lock()
		n.errs = append(n.errs, proc.err)
		n.mu.Unlock()
		n.cFailures.Inc()
		detail = proc.err.Error()
	}
	n.scope.Record(obs.EvStop, proc.name, detail, 0)
	n.gLive.Add(-1)
	n.generation.Add(1)
	close(proc.done)
	n.wg.Done()
}

// Wait blocks until every spawned process (including ones spawned during
// execution) has finished. It returns the first recorded failure, if
// any.
func (n *Network) Wait() error {
	n.wg.Wait()
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.errs) > 0 {
		return n.errs[0]
	}
	return nil
}

// Errors returns all recorded process failures.
func (n *Network) Errors() []error {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]error, len(n.errs))
	copy(out, n.errs)
	return out
}

// Live reports the number of processes currently executing. It is a
// thin wrapper over the registry-backed dpn_net_procs_live gauge.
func (n *Network) Live() int64 { return n.gLive.Value() }

// Blocked reports the number of goroutines currently blocked inside a
// registered channel's pipe (reading an empty buffer or writing a full
// one). It is a thin wrapper over the dpn_net_procs_blocked gauge.
func (n *Network) Blocked() int64 { return n.gBlocked.Value() }

// Generation returns a counter bumped on every scheduling-relevant state
// change. The deadlock monitor uses it to take stable snapshots.
func (n *Network) Generation() uint64 { return n.generation.Load() }

// Network implements stream.Observer so registered pipes report blocking
// transitions.

// PipeBlocked implements stream.Observer.
func (n *Network) PipeBlocked(*stream.Pipe, bool) {
	n.gBlocked.Add(1)
	n.generation.Add(1)
}

// PipeUnblocked implements stream.Observer.
func (n *Network) PipeUnblocked(*stream.Pipe, bool) {
	n.gBlocked.Add(-1)
	n.generation.Add(1)
}

// PipeEvent implements stream.Observer.
func (n *Network) PipeEvent(*stream.Pipe) {
	n.generation.Add(1)
}

// Env is passed to every process body. It gives a process access to its
// execution context so that self-modifying graphs can create channels
// and spawn processes at run time — reconfiguration is initiated by
// processes, not by an external agent, preserving determinism (§3.3).
type Env struct {
	net  *Network
	proc *Proc
}

// Network returns the executing network.
func (e *Env) Network() *Network { return e.net }

// Self returns the handle of the calling process.
func (e *Env) Self() *Proc { return e.proc }

// Spawn starts a new process in the same network.
func (e *Env) Spawn(p any) *Proc { return e.net.Spawn(p) }

// NewChannel creates a channel in the same network.
func (e *Env) NewChannel(name string, capacity int) *Channel {
	return e.net.NewChannel(name, capacity)
}

// Composite groups processes so they can be treated — and in particular
// serialized and shipped to a compute server — as a unit. Running a
// composite starts every component in its own goroutine and waits for
// all of them: executing components' steps in sequence could introduce
// deadlock, so a separate thread of control per component is retained
// (§3.2).
type Composite struct {
	Name string
	// Procs are the component processes (each a Process or Stepper).
	Procs []any
}

// Add appends a component process and returns the composite for
// chaining, echoing the CompositeProcess.add API in Figure 6.
func (c *Composite) Add(p any) *Composite {
	c.Procs = append(c.Procs, p)
	return c
}

// ProcessName implements Namer.
func (c *Composite) ProcessName() string {
	if c.Name != "" {
		return "Composite(" + c.Name + ")"
	}
	return "Composite"
}

// Run implements Process.
func (c *Composite) Run(env *Env) error {
	procs := make([]*Proc, 0, len(c.Procs))
	for _, p := range c.Procs {
		procs = append(procs, env.Spawn(p))
	}
	var first error
	for _, p := range procs {
		if err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Ports implements PortHolder: a composite owns no ports itself; its
// components close their own.
func (c *Composite) Ports() []io.Closer { return nil }
