package core

import (
	"dpn/internal/stream"
)

// Channel is a first-in first-out queue connecting exactly one producing
// process to one consuming process. The byte-oriented transport is a
// bounded in-memory pipe; the two ends are exposed as a WritePort and a
// ReadPort. Typed data is layered on top by package token, exactly as
// the Java implementation layers DataOutputStream over
// ChannelOutputStream (§3.1).
type Channel struct {
	name string
	pipe *stream.Pipe
	w    *WritePort
	r    *ReadPort
	net  *Network
}

// NewChannel creates a channel that is not registered with any network.
// It is useful for unit tests and standalone pipelines; graph programs
// normally use Network.NewChannel so the deadlock monitor can see the
// channel.
func NewChannel(name string, capacity int) *Channel {
	return newChannel(nil, name, capacity)
}

func newChannel(n *Network, name string, capacity int) *Channel {
	pipe := stream.NewPipe(capacity)
	pipe.SetName(name)
	ch := &Channel{name: name, pipe: pipe, net: n}
	ch.w = &WritePort{s: &wstate{
		name: name + ".w",
		sw:   stream.NewSwitchWriter(pipe.WriteEnd()),
		ch:   ch,
	}}
	ch.r = &ReadPort{s: &rstate{
		name: name + ".r",
		seq:  stream.NewSequenceReader(pipe.ReadEnd()),
		ch:   ch,
	}}
	if n != nil {
		pipe.SetObserver(n)
		n.registerChannel(ch)
	}
	return ch
}

// Name returns the channel's diagnostic name.
func (c *Channel) Name() string { return c.name }

// Writer returns the producing end of the channel.
func (c *Channel) Writer() *WritePort { return c.w }

// Reader returns the consuming end of the channel.
func (c *Channel) Reader() *ReadPort { return c.r }

// Pipe exposes the underlying bounded buffer for capacity management and
// introspection (deadlock detection, migration).
func (c *Channel) Pipe() *stream.Pipe { return c.pipe }

// Network returns the network the channel is registered with, or nil.
func (c *Channel) Network() *Network { return c.net }
