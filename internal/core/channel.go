package core

import (
	"dpn/internal/conduit"
	"dpn/internal/obs"
	"dpn/internal/stream"
)

// Channel is a first-in first-out queue connecting exactly one producing
// process to one consuming process. The byte transport is a conduit: a
// bounded in-memory buffer whose ends can be rebound to a network
// transport when the graph is distributed (see package conduit). The
// two ends are exposed as a WritePort and a ReadPort. Typed data is
// layered on top by package token, exactly as the Java implementation
// layers DataOutputStream over ChannelOutputStream (§3.1).
type Channel struct {
	name string
	cd   *conduit.Conduit
	w    *WritePort
	r    *ReadPort
	net  *Network

	// tokensIn/tokensOut count typed elements (not bytes) moving through
	// the channel; package token bumps them through the ports'
	// NoteToken hooks.
	tokensIn  *obs.Counter
	tokensOut *obs.Counter
}

// NewChannel creates a channel that is not registered with any network.
// It is useful for unit tests and standalone pipelines; graph programs
// normally use Network.NewChannel so the deadlock monitor can see the
// channel.
func NewChannel(name string, capacity int) *Channel {
	return newChannel(nil, name, capacity)
}

func newChannel(n *Network, name string, capacity int) *Channel {
	cd := conduit.New(name, capacity)
	ch := &Channel{name: name, cd: cd, net: n}
	ch.w = &WritePort{s: &wstate{
		name: name + ".w",
		sw:   cd.Entry(),
		ch:   ch,
	}}
	ch.r = &ReadPort{s: &rstate{
		name: name + ".r",
		seq:  cd.Exit(),
		ch:   ch,
	}}
	if n != nil {
		cd.Instrument(n.Obs(), n)
		ch.tokensIn, ch.tokensOut = conduit.TokenCounters(n.Obs(), name)
		n.registerChannel(ch)
	}
	return ch
}

// Name returns the channel's diagnostic name.
func (c *Channel) Name() string { return c.name }

// Writer returns the producing end of the channel.
func (c *Channel) Writer() *WritePort { return c.w }

// Reader returns the consuming end of the channel.
func (c *Channel) Reader() *ReadPort { return c.r }

// Pipe exposes the underlying bounded buffer for capacity management and
// introspection (deadlock detection, migration).
func (c *Channel) Pipe() *stream.Pipe { return c.cd.Buffer() }

// Conduit exposes the channel's full data plane — buffer plus transport
// binding surface — for the migration machinery (package wire).
func (c *Channel) Conduit() *conduit.Conduit { return c.cd }

// Network returns the network the channel is registered with, or nil.
func (c *Channel) Network() *Network { return c.net }
