package core

import (
	"dpn/internal/obs"
	"dpn/internal/stream"
)

// Channel is a first-in first-out queue connecting exactly one producing
// process to one consuming process. The byte-oriented transport is a
// bounded in-memory pipe; the two ends are exposed as a WritePort and a
// ReadPort. Typed data is layered on top by package token, exactly as
// the Java implementation layers DataOutputStream over
// ChannelOutputStream (§3.1).
type Channel struct {
	name string
	pipe *stream.Pipe
	w    *WritePort
	r    *ReadPort
	net  *Network

	// tokensIn/tokensOut count typed elements (not bytes) moving through
	// the channel; package token bumps them through the ports'
	// NoteToken hooks.
	tokensIn  *obs.Counter
	tokensOut *obs.Counter
}

// NewChannel creates a channel that is not registered with any network.
// It is useful for unit tests and standalone pipelines; graph programs
// normally use Network.NewChannel so the deadlock monitor can see the
// channel.
func NewChannel(name string, capacity int) *Channel {
	return newChannel(nil, name, capacity)
}

func newChannel(n *Network, name string, capacity int) *Channel {
	pipe := stream.NewPipe(capacity)
	pipe.SetName(name)
	ch := &Channel{name: name, pipe: pipe, net: n}
	ch.w = &WritePort{s: &wstate{
		name: name + ".w",
		sw:   stream.NewSwitchWriter(pipe.WriteEnd()),
		ch:   ch,
	}}
	ch.r = &ReadPort{s: &rstate{
		name: name + ".r",
		seq:  stream.NewSequenceReader(pipe.ReadEnd()),
		ch:   ch,
	}}
	if n != nil {
		pipe.SetObserver(n)
		pipe.SetInstruments(channelInstruments(n.Obs(), name))
		lbl := obs.L("channel", name)
		ch.tokensIn = n.Obs().Counter("dpn_channel_tokens_total", lbl, obs.L("op", "write"))
		ch.tokensOut = n.Obs().Counter("dpn_channel_tokens_total", lbl, obs.L("op", "read"))
		n.registerChannel(ch)
	}
	return ch
}

// channelInstruments builds the per-channel pipe instruments in the
// scope's registry. The metric-name inventory is documented in
// DESIGN.md ("Observability").
func channelInstruments(s *obs.Scope, name string) *stream.Instruments {
	reg := s.Registry()
	if reg == nil {
		return nil
	}
	reg.Help("dpn_channel_bytes_total", "Bytes moved through the channel pipe, by op (read|write).")
	reg.Help("dpn_channel_occupancy_bytes", "Bytes currently buffered in the channel pipe.")
	reg.Help("dpn_channel_occupancy_peak_bytes", "High-water mark of buffered bytes.")
	reg.Help("dpn_channel_capacity_bytes", "Current pipe capacity (grows on artificial deadlock).")
	reg.Help("dpn_channel_grows_total", "Capacity growths applied to the channel.")
	reg.Help("dpn_channel_blocks_total", "Blocking waits on the channel, by op (read|write).")
	reg.Help("dpn_channel_block_seconds", "Duration of blocking waits, by op (read|write).")
	reg.Help("dpn_channel_tokens_total", "Typed elements moved through the channel, by op (read|write).")
	lbl := obs.L("channel", name)
	return &stream.Instruments{
		BytesWritten:      reg.Counter("dpn_channel_bytes_total", lbl, obs.L("op", "write")),
		BytesRead:         reg.Counter("dpn_channel_bytes_total", lbl, obs.L("op", "read")),
		Occupancy:         reg.Gauge("dpn_channel_occupancy_bytes", lbl),
		HighWater:         reg.Gauge("dpn_channel_occupancy_peak_bytes", lbl),
		Capacity:          reg.Gauge("dpn_channel_capacity_bytes", lbl),
		Grows:             reg.Counter("dpn_channel_grows_total", lbl),
		ReadBlocks:        reg.Counter("dpn_channel_blocks_total", lbl, obs.L("op", "read")),
		WriteBlocks:       reg.Counter("dpn_channel_blocks_total", lbl, obs.L("op", "write")),
		ReadBlockSeconds:  reg.Histogram("dpn_channel_block_seconds", nil, lbl, obs.L("op", "read")),
		WriteBlockSeconds: reg.Histogram("dpn_channel_block_seconds", nil, lbl, obs.L("op", "write")),
		Tracer:            s.Tracer(),
		Name:              name,
	}
}

// Name returns the channel's diagnostic name.
func (c *Channel) Name() string { return c.name }

// Writer returns the producing end of the channel.
func (c *Channel) Writer() *WritePort { return c.w }

// Reader returns the consuming end of the channel.
func (c *Channel) Reader() *ReadPort { return c.r }

// Pipe exposes the underlying bounded buffer for capacity management and
// introspection (deadlock detection, migration).
func (c *Channel) Pipe() *stream.Pipe { return c.pipe }

// Network returns the network the channel is registered with, or nil.
func (c *Channel) Network() *Network { return c.net }
