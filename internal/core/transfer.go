package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"dpn/internal/stream"
)

// Transfer is the serialization session used when a process graph (or a
// piece of one) is encoded for shipment to another machine. Java Object
// Serialization gives each stream class a chance to replace itself via
// writeReplace/readResolve while carrying shared-reference identity;
// encoding/gob offers neither a per-encoder context nor reference
// sharing, so this session object supplies both. On the encoding side it
// assigns a small integer ID to every port reachable from the parcel; a
// port gob-encodes as just its ID. On the decoding side the importer
// first reconstructs a replacement port per ID (re-dialing network
// transports, rebuilding local pipes) and registers it here; a decoded
// port then rebinds itself to the replacement's state — the readResolve
// step.
//
// Because gob callbacks cannot receive arguments, the active transfer is
// installed in a package-level slot for the duration of the encode or
// decode; WithTransfer serializes sessions with a mutex. This is the
// documented "gob workaround" the Go port requires.
type Transfer struct {
	nextID uint32
	wIDs   map[*WritePort]uint32
	rIDs   map[*ReadPort]uint32

	wRepl map[uint32]*WritePort
	rRepl map[uint32]*ReadPort
}

// NewTransfer creates an empty session.
func NewTransfer() *Transfer {
	return &Transfer{
		wIDs:  make(map[*WritePort]uint32),
		rIDs:  make(map[*ReadPort]uint32),
		wRepl: make(map[uint32]*WritePort),
		rRepl: make(map[uint32]*ReadPort),
	}
}

// RegisterWrite assigns (or returns the existing) ID for a write port on
// the encoding side.
func (t *Transfer) RegisterWrite(p *WritePort) uint32 {
	if id, ok := t.wIDs[p]; ok {
		return id
	}
	t.nextID++
	t.wIDs[p] = t.nextID
	return t.nextID
}

// RegisterRead assigns (or returns the existing) ID for a read port on
// the encoding side.
func (t *Transfer) RegisterRead(p *ReadPort) uint32 {
	if id, ok := t.rIDs[p]; ok {
		return id
	}
	t.nextID++
	t.rIDs[p] = t.nextID
	return t.nextID
}

// ProvideWrite registers the replacement write port for id on the
// decoding side.
func (t *Transfer) ProvideWrite(id uint32, p *WritePort) { t.wRepl[id] = p }

// ProvideRead registers the replacement read port for id on the
// decoding side.
func (t *Transfer) ProvideRead(id uint32, p *ReadPort) { t.rRepl[id] = p }

var (
	transferMu  sync.Mutex
	curTransfer *Transfer
)

// WithTransfer installs t as the active session, runs f, and removes it.
// Only one transfer can be active at a time process-wide.
func WithTransfer(t *Transfer, f func() error) error {
	transferMu.Lock()
	defer transferMu.Unlock()
	curTransfer = t
	defer func() { curTransfer = nil }()
	return f()
}

// ErrNoTransfer is returned when a port is gob-encoded outside a
// transfer session.
var ErrNoTransfer = errors.New("core: port serialized outside a wire transfer session")

// GobEncode encodes the port as its session-assigned ID.
func (p *WritePort) GobEncode() ([]byte, error) {
	if curTransfer == nil {
		return nil, ErrNoTransfer
	}
	id, ok := curTransfer.wIDs[p]
	if !ok {
		return nil, fmt.Errorf("core: write port %s not registered with transfer", p.Name())
	}
	return binary.BigEndian.AppendUint32(nil, id), nil
}

// GobDecode rebinds the port to the replacement registered for its ID.
func (p *WritePort) GobDecode(b []byte) error {
	if curTransfer == nil {
		return ErrNoTransfer
	}
	if len(b) != 4 {
		return fmt.Errorf("core: corrupt write-port reference (%d bytes)", len(b))
	}
	id := binary.BigEndian.Uint32(b)
	repl, ok := curTransfer.wRepl[id]
	if !ok {
		return fmt.Errorf("core: no replacement write port for id %d", id)
	}
	p.s = repl.s
	return nil
}

// GobEncode encodes the port as its session-assigned ID.
func (p *ReadPort) GobEncode() ([]byte, error) {
	if curTransfer == nil {
		return nil, ErrNoTransfer
	}
	id, ok := curTransfer.rIDs[p]
	if !ok {
		return nil, fmt.Errorf("core: read port %s not registered with transfer", p.Name())
	}
	return binary.BigEndian.AppendUint32(nil, id), nil
}

// GobDecode rebinds the port to the replacement registered for its ID.
func (p *ReadPort) GobDecode(b []byte) error {
	if curTransfer == nil {
		return ErrNoTransfer
	}
	if len(b) != 4 {
		return fmt.Errorf("core: corrupt read-port reference (%d bytes)", len(b))
	}
	id := binary.BigEndian.Uint32(b)
	repl, ok := curTransfer.rRepl[id]
	if !ok {
		return fmt.Errorf("core: no replacement read port for id %d", id)
	}
	p.s = repl.s
	return nil
}

// AttachForeignRead builds a read port over an arbitrary transport (for
// example a network stream) that is not part of any local channel.
func AttachForeignRead(name string, src io.ReadCloser) *ReadPort {
	return &ReadPort{s: &rstate{name: name, seq: stream.NewSequenceReader(src)}}
}

// AttachForeignWrite builds a write port over an arbitrary transport.
func AttachForeignWrite(name string, dst io.WriteCloser) *WritePort {
	return &WritePort{s: &wstate{name: name, sw: stream.NewSwitchWriter(dst)}}
}
