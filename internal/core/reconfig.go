package core

import (
	"errors"

	"dpn/internal/obs"
)

// noteReconfig records one graph-reconfiguration primitive firing: it
// bumps dpn_net_reconfig_total{kind} and emits an EvReconfig trace
// event with the affected channel as the subject.
func noteReconfig(n *Network, kind, subject string) {
	if n == nil {
		return
	}
	s := n.Obs()
	reg := s.Registry()
	reg.Help("dpn_net_reconfig_total", "Graph reconfigurations applied, by kind (splice-out|insert-upstream).")
	reg.Counter("dpn_net_reconfig_total", obs.L("kind", kind)).Inc()
	s.Record(obs.EvReconfig, subject, kind, 0)
}

// SpliceOut removes the calling process from the program graph by
// splicing its input channel onto the front of its consumer's pending
// input, exactly as in Figure 10 of the paper: the process's input
// stream is appended to the SequenceReader inside the consumer's read
// port, and the process's output is then closed. The consumer drains
// whatever the process had already produced, observes the end of that
// stream, and continues seamlessly with the data the process would have
// copied — no data element is lost or duplicated.
//
// After SpliceOut returns, in is detached (reads fail, Close is a
// no-op) and out is closed; the process should return from its body.
// SpliceOut must be called by the process that owns both ports — graph
// reconfiguration is initiated by processes, never by an external
// agent, which is what preserves determinism (§3.3).
func SpliceOut(in *ReadPort, out *WritePort) error {
	if in == nil || out == nil {
		return errors.New("core: SpliceOut requires both ports")
	}
	ch := out.Channel()
	if ch == nil {
		return errors.New("core: SpliceOut requires a local output channel")
	}
	src := in.Detach()
	if src == nil {
		return ErrDetached
	}
	// Order matters: the continuation must be queued before the output
	// closes, so the consumer can never observe a spurious end of
	// stream.
	if err := ch.Reader().appendSource(src); err != nil {
		return err
	}
	noteReconfig(ch.Network(), "splice-out", ch.Name())
	return out.Close()
}

// InsertUpstream inserts a newly created process between the caller and
// its current input, as the Sift process does when it encounters a new
// prime (Figures 7–8 of the paper). It implements the port shuffle of
// Figure 8:
//
//	the caller's current input port is handed to the new process, a
//	fresh channel is created, the new process writes to it, and the
//	caller reads from it from then on.
//
// attach is called with (handedOffInput, freshChannelWriter) and must
// store both ports into the new process before it is spawned. The
// returned read port becomes the caller's new input; the caller is
// responsible for assigning it to its own field. The new process is
// spawned by the caller via env.Spawn after attach wiring, keeping the
// reconfiguration entirely under the initiating process's control.
func InsertUpstream(env *Env, in *ReadPort, name string, capacity int,
	attach func(handedOff *ReadPort, out *WritePort)) *ReadPort {
	ch := env.NewChannel(name, capacity)
	attach(in, ch.Writer())
	noteReconfig(env.net, "insert-upstream", ch.Name())
	return ch.Reader()
}
