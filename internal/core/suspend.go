package core

import (
	"errors"
	"sync"
)

// The paper lists re-distributing processes *after execution has
// already begun* as future work (§6.1: "making it possible to
// re-distribute processes after execution has already begun with the
// possibility that processes will be moved more than once"). This file
// implements the runtime half of that feature: a running process can be
// cooperatively suspended at a step boundary and then either resumed in
// place or ejected — removed from its goroutine with every port left
// open — so the migration machinery (package wire) can ship it to
// another machine and spawn it there. Unconsumed channel data moves or
// is re-routed exactly as in a pre-execution move.
//
// Suspension is cooperative: it takes effect when the process next
// completes a Step. A process blocked reading an empty channel parks as
// soon as data arrives and the step finishes; processes that are busy
// (the intended migration targets — e.g. a worker on an overloaded
// machine) park promptly. Only Stepper-based processes are suspendable;
// a Process implementing Run directly never reaches a step boundary.

// ErrNotSuspendable is returned by Suspend for processes that do not
// run through the step loop.
var ErrNotSuspendable = errors.New("core: process is not a Stepper; cannot suspend")

// ErrFinished is returned by Suspend when the process ends before
// parking.
var ErrFinished = errors.New("core: process finished before it could be suspended")

// ErrNotParked is returned by Resume and Eject when the process is not
// suspended.
var ErrNotParked = errors.New("core: process is not suspended")

// errEjected is the sentinel the step loop returns when the process
// was ejected; the runtime then skips closing the process's ports.
var errEjected = errors.New("core: process ejected for migration")

type parkAction int

const (
	actNone parkAction = iota
	actResume
	actEject
)

// parkState carries the suspension handshake for one process.
type parkState struct {
	mu   sync.Mutex
	cond *sync.Cond

	requested bool
	parked    bool
	action    parkAction
	finished  bool
}

func newParkState() *parkState {
	ps := &parkState{}
	ps.cond = sync.NewCond(&ps.mu)
	return ps
}

// checkpoint is called by the step loop between steps. It returns true
// if the process has been ejected and must unwind without closing its
// ports.
func (ps *parkState) checkpoint() (ejected bool) {
	if ps == nil {
		return false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.requested {
		return false
	}
	ps.parked = true
	ps.cond.Broadcast()
	for ps.action == actNone {
		ps.cond.Wait()
	}
	act := ps.action
	ps.action = actNone
	ps.requested = false
	ps.parked = false
	ps.cond.Broadcast()
	return act == actEject
}

// markFinished wakes suspenders when the process ends on its own.
func (ps *parkState) markFinished() {
	ps.mu.Lock()
	ps.finished = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// Suspend asks the process to park at its next step boundary and
// blocks until it has parked. While parked, the process performs no
// channel operations, so its ports can be detached safely.
func (p *Proc) Suspend() error {
	if p.park == nil {
		return ErrNotSuspendable
	}
	ps := p.park
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.finished {
		return ErrFinished
	}
	ps.requested = true
	ps.cond.Broadcast()
	for !ps.parked && !ps.finished {
		ps.cond.Wait()
	}
	if ps.finished && !ps.parked {
		return ErrFinished
	}
	return nil
}

// Suspended reports whether the process is currently parked.
func (p *Proc) Suspended() bool {
	if p.park == nil {
		return false
	}
	p.park.mu.Lock()
	defer p.park.mu.Unlock()
	return p.park.parked
}

// Resume lets a suspended process continue running in place.
func (p *Proc) Resume() error {
	return p.release(actResume, false)
}

// Eject terminates a suspended process's goroutine *without closing its
// ports* and returns the process value, ready to be exported to another
// machine (wire.Export) and spawned there. The local Proc handle
// reports completion with a nil error.
func (p *Proc) Eject() (any, error) {
	if err := p.release(actEject, true); err != nil {
		return nil, err
	}
	return p.body, nil
}

func (p *Proc) release(act parkAction, wait bool) error {
	if p.park == nil {
		return ErrNotSuspendable
	}
	ps := p.park
	ps.mu.Lock()
	if !ps.parked {
		ps.mu.Unlock()
		return ErrNotParked
	}
	ps.action = act
	ps.cond.Broadcast()
	ps.mu.Unlock()
	if wait {
		<-p.done
	}
	return nil
}
