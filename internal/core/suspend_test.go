package core

import (
	"io"
	"sync/atomic"
	"testing"
	"time"

	"dpn/internal/token"
)

// ticker counts steps; each step writes one element. The counter is
// atomic because tests observe it while the process runs.
type ticker struct {
	Out *WritePort
	N   atomic.Int64
}

func (t *ticker) Step(env *Env) error {
	n := t.N.Add(1)
	// Throttle so an undrained test channel never fills mid-step.
	time.Sleep(20 * time.Microsecond)
	return token.NewWriter(t.Out).WriteInt64(n)
}

// drain consumes int64 elements forever (until EOF/poison).
type drain struct {
	In *ReadPort
}

func (d *drain) Step(env *Env) error {
	_, err := token.NewReader(d.In).ReadInt64()
	return err
}

func TestSuspendParksAtStepBoundary(t *testing.T) {
	n := NewNetwork()
	ch := n.NewChannel("c", 1<<16)
	tk := &ticker{Out: ch.Writer()}
	p := n.Spawn(tk)
	n.Spawn(&drain{In: ch.Reader()})
	time.Sleep(5 * time.Millisecond)
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	if !p.Suspended() {
		t.Fatal("not parked after Suspend returned")
	}
	// While parked the process performs no work.
	before := tk.N.Load()
	time.Sleep(10 * time.Millisecond)
	if tk.N.Load() != before {
		t.Fatalf("process advanced while parked: %d → %d", before, tk.N.Load())
	}
	if err := p.Resume(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tk.N.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("process did not resume")
		}
		time.Sleep(time.Millisecond)
	}
	ch.Reader().Close() // poison to end the run
	n.Wait()
}

func TestSuspendTwiceAndResumeCycle(t *testing.T) {
	n := NewNetwork()
	ch := n.NewChannel("c", 1<<16)
	tk := &ticker{Out: ch.Writer()}
	p := n.Spawn(tk)
	n.Spawn(&drain{In: ch.Reader()})
	for i := 0; i < 3; i++ {
		if err := p.Suspend(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := p.Resume(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	ch.Reader().Close()
	n.Wait()
}

func TestEjectLeavesPortsOpen(t *testing.T) {
	n := NewNetwork()
	ch := n.NewChannel("c", 1<<16)
	tk := &ticker{Out: ch.Writer()}
	p := n.Spawn(tk)
	time.Sleep(2 * time.Millisecond)
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	body, err := p.Eject()
	if err != nil {
		t.Fatal(err)
	}
	if body != tk {
		t.Fatal("Eject returned wrong body")
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("ejected proc reported error: %v", err)
	}
	// The channel is NOT closed: the writer port must still work.
	if _, err := tk.Out.Write([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatalf("port closed by ejection: %v", err)
	}
	// Respawning the body continues the stream.
	count := tk.N.Load()
	p2 := n.Spawn(tk)
	deadline := time.Now().Add(2 * time.Second)
	for tk.N.Load() == count {
		if time.Now().After(deadline) {
			t.Fatal("respawned process did not run")
		}
		time.Sleep(time.Millisecond)
	}
	_ = p2
	ch.Reader().Close()
	n.Wait()
}

func TestEjectedStreamIsContiguous(t *testing.T) {
	// Values produced before ejection and after respawn form one
	// contiguous sequence: no element lost or duplicated.
	n := NewNetwork()
	ch := n.NewChannel("c", 1<<20)
	tk := &ticker{Out: ch.Writer()}
	p := n.Spawn(tk)
	time.Sleep(2 * time.Millisecond)
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	body, err := p.Eject()
	if err != nil {
		t.Fatal(err)
	}
	n.Spawn(body)
	time.Sleep(2 * time.Millisecond)
	ch.Writer().Close() // cheat: stop by closing (the producer errors out)
	r := token.NewReader(ch.Reader())
	var prev int64
	for {
		v, err := r.ReadInt64()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v != prev+1 {
			t.Fatalf("gap in stream: %d after %d", v, prev)
		}
		prev = v
	}
	if prev == 0 {
		t.Fatal("no elements produced")
	}
	ch.Reader().Close()
	n.Wait()
}

func TestSuspendErrors(t *testing.T) {
	n := NewNetwork()
	// Resume/Eject without suspension.
	ch := n.NewChannel("c", 1<<16)
	p := n.Spawn(&ticker{Out: ch.Writer()})
	if err := p.Resume(); err != ErrNotParked {
		t.Fatalf("Resume unparked = %v", err)
	}
	if _, err := p.Eject(); err != ErrNotParked {
		t.Fatalf("Eject unparked = %v", err)
	}
	ch.Reader().Close()
	n.Wait()

	// Suspend after the process finished.
	fin := n.Spawn(&oneShot{})
	fin.Wait()
	if err := fin.Suspend(); err != ErrFinished {
		t.Fatalf("Suspend finished = %v", err)
	}

	// Run-style processes are not suspendable.
	rp := n.Spawn(&runOnly{})
	rp.Wait()
	if err := rp.Suspend(); err != ErrNotSuspendable {
		t.Fatalf("Suspend Run-style = %v", err)
	}
	if !rp.Suspended() == false {
		t.Fatal("Suspended on run-style should be false")
	}
	n.Wait()
}

type oneShot struct{}

func (o *oneShot) Step(env *Env) error { return io.EOF }

type runOnly struct{}

func (r *runOnly) Run(env *Env) error { return nil }

func TestSuspendBlockedProcessParksOnData(t *testing.T) {
	// A consumer blocked on an empty channel parks as soon as the
	// in-flight step completes.
	n := NewNetwork()
	ch := n.NewChannel("c", 64)
	sk := &sink{In: ch.Reader()}
	p := n.Spawn(sk)
	time.Sleep(5 * time.Millisecond) // consumer is now blocked reading

	suspended := make(chan error, 1)
	go func() { suspended <- p.Suspend() }()
	select {
	case <-suspended:
		t.Fatal("suspend completed while process blocked mid-step")
	case <-time.After(20 * time.Millisecond):
	}
	// Feed one element: the step completes and the process parks.
	token.NewWriter(ch.Writer()).WriteInt64(7)
	if err := <-suspended; err != nil {
		t.Fatal(err)
	}
	p.Resume()
	ch.Writer().Close()
	n.Wait()
	if got := sk.values(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v", got)
	}
}
