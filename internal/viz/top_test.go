package viz

import (
	"fmt"
	"math/big"
	"strings"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/factor"
	"dpn/internal/meta"
	"dpn/internal/obs"
)

// snap builds one synthetic metrics snapshot for TopView frames.
func snap(tokens, bytes, readWait, writeWait int64) []obs.Sample {
	l := func(k, v string) obs.Label { return obs.L(k, v) }
	return []obs.Sample{
		{Name: "dpn_conduit_tokens_total", Kind: obs.KindCounter,
			Labels: []obs.Label{l("channel", "ab"), l("op", "write")}, Value: tokens},
		{Name: "dpn_conduit_bytes_total", Kind: obs.KindCounter,
			Labels: []obs.Label{l("channel", "ab"), l("op", "write")}, Value: bytes},
		{Name: "dpn_conduit_occupancy_bytes", Kind: obs.KindGauge,
			Labels: []obs.Label{l("channel", "ab")}, Value: 48},
		{Name: "dpn_conduit_capacity_bytes", Kind: obs.KindGauge,
			Labels: []obs.Label{l("channel", "ab")}, Value: 64},
		{Name: "dpn_conduit_wait_ns_total", Kind: obs.KindCounter,
			Labels: []obs.Label{l("channel", "ab"), l("op", "read")}, Value: readWait},
		{Name: "dpn_conduit_wait_ns_total", Kind: obs.KindCounter,
			Labels: []obs.Label{l("channel", "ab"), l("op", "write")}, Value: writeWait},
		{Name: "dpn_net_procs_live", Kind: obs.KindGauge, Value: 3},
		{Name: "dpn_net_procs_blocked", Kind: obs.KindGauge, Value: 1},
		{Name: "dpn_pool_tasks_total", Kind: obs.KindCounter,
			Labels: []obs.Label{l("lane", "w0")}, Value: tokens / 2},
		{Name: "dpn_pool_results_total", Kind: obs.KindCounter,
			Labels: []obs.Label{l("lane", "w0")}, Value: tokens / 2},
		{Name: "dpn_pool_latency_seconds", Kind: obs.KindHistogram,
			Labels: []obs.Label{l("stage", "queue")},
			Sum:    float64(tokens) * 0.001, Count: tokens},
	}
}

// Two synthetic frames one second apart: the view must turn counter
// deltas into rates and blocked-ns deltas into interval percentages.
func TestTopViewRatesAndBlockedPct(t *testing.T) {
	var b strings.Builder
	tv := NewTopView(&b)
	t0 := time.Unix(100, 0)
	tv.Render(snap(0, 0, 0, 0), t0)
	if !strings.Contains(b.String(), "priming") {
		t.Fatalf("first frame did not prime:\n%s", b.String())
	}
	b.Reset()

	// 1s later: 1000 tokens, 8 KiB, 250ms read-blocked, 500ms write-blocked.
	tv.Render(snap(1000, 8192, 250_000_000, 500_000_000), t0.Add(time.Second))
	out := b.String()
	row := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "ab") {
			row = line
		}
	}
	if row == "" {
		t.Fatalf("channel row missing:\n%s", out)
	}
	for _, want := range []string{"1000", "8.0", "48/64", "25%", "50%"} {
		if !strings.Contains(row, want) {
			t.Fatalf("channel row %q missing %q", row, want)
		}
	}
	if !strings.Contains(out, "w0") {
		t.Fatalf("lane row missing:\n%s", out)
	}
	if !strings.Contains(out, "queue=1.0ms") {
		t.Fatalf("latency line missing or wrong:\n%s", out)
	}
}

// The multi-node path: samples arriving via a merged Prometheus
// exposition keep their node labels, and stale-peer comment lines from
// a partial gather pass through the parser harmlessly.
func TestTopViewRenderPromMultiNode(t *testing.T) {
	exp := func(tokens int) string {
		var sb strings.Builder
		sb.WriteString("# dpn:stale peer[2]: connection refused\n")
		sb.WriteString("# TYPE dpn_conduit_tokens_total counter\n")
		for _, node := range []string{"n1:7001", "n2:7002"} {
			fmt.Fprintf(&sb, "dpn_conduit_tokens_total{node=%q,channel=\"ab\",op=\"write\"} %d\n", node, tokens)
		}
		return sb.String()
	}
	var b strings.Builder
	tv := NewTopView(&b)
	t0 := time.Unix(200, 0)
	tv.RenderProm(exp(0), t0)
	b.Reset()
	tv.RenderProm(exp(500), t0.Add(time.Second))
	out := b.String()
	for _, want := range []string{"n1:7001 ab", "n2:7002 ab", "500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-node frame missing %q:\n%s", want, out)
		}
	}
}

// The acceptance check: a real elastic-pool run rendered live. The
// frame after the run must show the per-channel table, the pool's lane
// activity, and the latency summary, all sourced from the run's own
// registry.
func TestTopViewElasticPoolRun(t *testing.T) {
	n := core.NewNetwork()
	src := &factor.SearchSpace{N: big.NewInt(101 * 103), Batch: 4, MaxTasks: 30}
	e := meta.NewElastic(n, src, 2, 0, meta.PoolConfig{})
	var b strings.Builder
	tv := NewTopView(&b)
	t0 := time.Now()
	tv.Render(n.Obs().Registry().Samples(), t0)
	e.Spawn(n)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	tv.Render(n.Obs().Registry().Samples(), t0.Add(50*time.Millisecond))
	out := b.String()
	if !strings.Contains(out, "CHANNEL") || !strings.Contains(out, "LANE") {
		t.Fatalf("live frame missing channel/lane tables:\n%s", out)
	}
	if !strings.Contains(out, "pool latency") {
		t.Fatalf("live frame missing latency summary:\n%s", out)
	}
}
