package viz

import (
	"strings"
	"testing"

	"dpn/internal/core"
	"dpn/internal/proclib"
)

func buildPipeline() (procs []any) {
	a := core.NewChannel("a", 64)
	b := core.NewChannel("b", 64)
	return []any{
		&proclib.SliceSource{Values: []int64{1}, Out: a.Writer()},
		&proclib.PassThrough{In: a.Reader(), Out: b.Writer()},
		&proclib.Collect{In: b.Reader()},
	}
}

func TestInspectPipeline(t *testing.T) {
	g := Inspect(buildPipeline()...)
	if len(g.Processes) != 3 {
		t.Fatalf("processes = %v", g.Processes)
	}
	if len(g.Channels) != 2 {
		t.Fatalf("channels = %v", g.Channels)
	}
	for _, ch := range g.Channels {
		if len(ch.Producers) != 1 || len(ch.Consumers) != 1 {
			t.Fatalf("channel %q: %+v", ch.Name, ch)
		}
	}
}

func TestValidateCleanGraph(t *testing.T) {
	v, w := Validate(buildPipeline()...)
	if len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if len(w) != 0 {
		t.Fatalf("warnings: %v", w)
	}
}

func TestValidateDetectsMultipleProducers(t *testing.T) {
	ch := core.NewChannel("shared", 64)
	procs := []any{
		&proclib.SliceSource{Values: []int64{1}, Out: ch.Writer()},
		&proclib.SliceSource{Values: []int64{2}, Out: ch.Writer()},
		&proclib.Collect{In: ch.Reader()},
	}
	v, _ := Validate(procs...)
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	if !strings.Contains(v[0].Error(), "producing") {
		t.Fatalf("wrong violation: %v", v[0])
	}
}

func TestValidateDetectsMultipleConsumers(t *testing.T) {
	ch := core.NewChannel("shared", 64)
	procs := []any{
		&proclib.SliceSource{Values: []int64{1}, Out: ch.Writer()},
		&proclib.Collect{In: ch.Reader()},
		&proclib.Discard{In: ch.Reader()},
	}
	v, _ := Validate(procs...)
	if len(v) != 1 || !strings.Contains(v[0].Error(), "consuming") {
		t.Fatalf("violations = %v", v)
	}
}

func TestValidateWarnsOnDanglingEnds(t *testing.T) {
	ch := core.NewChannel("boundary", 64)
	// Only the producer is in the set (its consumer will live on
	// another machine): a warning, not a violation.
	v, w := Validate(&proclib.SliceSource{Values: []int64{1}, Out: ch.Writer()})
	if len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if len(w) != 1 || !strings.Contains(w[0], "no consumer") {
		t.Fatalf("warnings: %v", w)
	}
	v, w = Validate(&proclib.Collect{In: ch.Reader()})
	if len(v) != 0 || len(w) != 1 || !strings.Contains(w[0], "no producer") {
		t.Fatalf("violations %v warnings %v", v, w)
	}
}

func TestDOTWellFormed(t *testing.T) {
	g := Inspect(buildPipeline()...)
	dot := DOT(g)
	for _, want := range []string{"digraph dpn", "SliceSource", "PassThrough", "Collect", "->", "a (64B)"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTIrregularChannelAsNode(t *testing.T) {
	ch := core.NewChannel("orphan", 8)
	g := Inspect(&proclib.Collect{In: ch.Reader()})
	dot := DOT(g)
	if !strings.Contains(dot, "diamond") {
		t.Fatalf("dangling channel not rendered as node:\n%s", dot)
	}
}

func TestSummary(t *testing.T) {
	s := Summary(buildPipeline()...)
	if !strings.Contains(s, "3 processes, 2 channels") {
		t.Fatalf("summary: %s", s)
	}
	ch := core.NewChannel("x", 8)
	s = Summary(&proclib.Collect{In: ch.Reader()})
	if !strings.Contains(s, "warning") || !strings.Contains(s, "(none)") {
		t.Fatalf("summary: %s", s)
	}
}

func TestCompositeChildrenFlattened(t *testing.T) {
	// A composite's children appear as individual graph nodes, so the
	// Kahn check sees through grouping (composites execute one thread
	// per component, §3.2).
	a := core.NewChannel("a", 64)
	comp := (&core.Composite{Name: "grp"}).
		Add(&proclib.SliceSource{Values: []int64{1}, Out: a.Writer()}).
		Add(&proclib.Collect{In: a.Reader()})
	g := Inspect(comp)
	if len(g.Processes) != 2 || len(g.Channels) != 1 {
		t.Fatalf("graph = %+v", g)
	}
	v, w := Validate(comp)
	if len(v) != 0 || len(w) != 0 {
		t.Fatalf("violations %v warnings %v", v, w)
	}
	// A second consumer hidden inside a nested composite is still caught.
	inner := (&core.Composite{Name: "in"}).Add(&proclib.Discard{In: a.Reader()})
	v, _ = Validate(comp, inner)
	if len(v) != 1 {
		t.Fatalf("nested violation missed: %v", v)
	}
}
