package viz

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"dpn/internal/obs"
)

// This file renders the observability registry for humans: a one-line
// periodic status (StatsLine, for log output while a graph runs) and a
// final per-channel / per-process summary table (StatsTable, for
// dpnrun -stats). Both read the same snapshot that /metrics exposes,
// so the numbers printed always agree with what a scraper would see.

// statsAgg sums every series of a family from a sample snapshot.
func statsAgg(samples []obs.Sample) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range samples {
		if s.Kind == obs.KindHistogram {
			out[s.Name+":count"] += s.Count
			continue
		}
		out[s.Name] += s.Value
	}
	return out
}

// StatsLine renders a one-line runtime summary of the registry,
// suitable for periodic logging.
func StatsLine(reg *obs.Registry) string {
	a := statsAgg(reg.Samples())
	return fmt.Sprintf(
		"procs live=%d blocked=%d spawned=%d | chan tokens=%d bytes=%d grows=%d | net in=%dB out=%dB | tasks=%d rpcs=%d | deadlock checks=%d resolved=%d",
		a["dpn_net_procs_live"], a["dpn_net_procs_blocked"], a["dpn_net_procs_spawned_total"],
		a["dpn_channel_tokens_total"], a["dpn_channel_bytes_total"], a["dpn_channel_grows_total"],
		aggLabel(reg, "dpn_broker_bytes_total", "dir", "in"),
		aggLabel(reg, "dpn_broker_bytes_total", "dir", "out"),
		a["dpn_meta_tasks_total"], a["dpn_server_rpcs_total"],
		a["dpn_deadlock_checks_total"],
		aggLabel(reg, "dpn_deadlock_events_total", "status", "resolved"))
}

// aggLabel sums the series of a family whose label matches key=value.
func aggLabel(reg *obs.Registry, name, key, value string) int64 {
	var total int64
	for _, s := range reg.Samples() {
		if s.Name == name && s.Label(key) == value {
			total += s.Value
		}
	}
	return total
}

// chanRow accumulates the per-channel columns of the summary table.
type chanRow struct {
	name                string
	tokensIn, tokensOut int64
	bytesIn, bytesOut   int64
	peak, capacity      int64
	grows, blocks       int64
	blockSeconds        float64
}

// StatsTable writes the final run summary: a per-channel table (tokens,
// bytes, peak occupancy, growths, block time), the per-stage task
// counts of the meta framework, and the process/deadlock totals.
func StatsTable(w io.Writer, reg *obs.Registry) {
	samples := reg.Samples()

	rows := make(map[string]*chanRow)
	rowFor := func(name string) *chanRow {
		r := rows[name]
		if r == nil {
			r = &chanRow{name: name}
			rows[name] = r
		}
		return r
	}
	type taskKey struct{ stage, worker string }
	tasks := make(map[taskKey]int64)
	var taskKeys []taskKey
	for _, s := range samples {
		if ch := s.Label("channel"); ch != "" {
			r := rowFor(ch)
			write := s.Label("op") == "write"
			switch s.Name {
			case "dpn_channel_tokens_total":
				if write {
					r.tokensIn += s.Value
				} else {
					r.tokensOut += s.Value
				}
			case "dpn_channel_bytes_total":
				if write {
					r.bytesIn += s.Value
				} else {
					r.bytesOut += s.Value
				}
			case "dpn_channel_occupancy_peak_bytes":
				r.peak = s.Value
			case "dpn_channel_capacity_bytes":
				r.capacity = s.Value
			case "dpn_channel_grows_total":
				r.grows += s.Value
			case "dpn_channel_blocks_total":
				r.blocks += s.Value
			case "dpn_channel_block_seconds":
				r.blockSeconds += s.Sum
			}
		}
		if s.Name == "dpn_meta_tasks_total" {
			k := taskKey{stage: s.Label("stage"), worker: s.Label("worker")}
			if _, seen := tasks[k]; !seen {
				taskKeys = append(taskKeys, k)
			}
			tasks[k] += s.Value
		}
	}

	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CHANNEL\tTOKENS W/R\tBYTES W/R\tPEAK\tCAP\tGROWS\tBLOCKS\tBLOCKED")
	for _, n := range names {
		r := rows[n]
		fmt.Fprintf(tw, "%s\t%d/%d\t%d/%d\t%d\t%d\t%d\t%d\t%s\n",
			r.name, r.tokensIn, r.tokensOut, r.bytesIn, r.bytesOut,
			r.peak, r.capacity, r.grows, r.blocks, fmtSeconds(r.blockSeconds))
	}
	tw.Flush()

	if len(taskKeys) > 0 {
		sort.Slice(taskKeys, func(i, j int) bool {
			if taskKeys[i].stage != taskKeys[j].stage {
				return taskKeys[i].stage < taskKeys[j].stage
			}
			return taskKeys[i].worker < taskKeys[j].worker
		})
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "STAGE\tWORKER\tTASKS")
		for _, k := range taskKeys {
			worker := k.worker
			if worker == "" {
				worker = "-"
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\n", k.stage, worker, tasks[k])
		}
		tw.Flush()
	}

	a := statsAgg(samples)
	fmt.Fprintf(w, "\nprocs: spawned=%d failures=%d reconfigs=%d | deadlock: checks=%d resolved=%d true=%d\n",
		a["dpn_net_procs_spawned_total"], a["dpn_net_proc_failures_total"],
		a["dpn_net_reconfig_total"], a["dpn_deadlock_checks_total"],
		aggLabel(reg, "dpn_deadlock_events_total", "status", "resolved"),
		aggLabel(reg, "dpn_deadlock_events_total", "status", "true-deadlock"))
}

func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0s"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
