package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"dpn/internal/obs"
)

// TopView renders a live, periodically refreshing cluster view — the
// dpntop mode of cmd/dpnrun. Each Render call takes one metrics
// snapshot (a local registry's Samples, or a multi-node exposition from
// Coordinator.GatherMetrics parsed with obs.ParseProm), diffs it
// against the previous call, and prints per-channel rates alongside the
// elastic pool's lane table. Rates and blocked-time percentages are
// therefore *interval* figures, not run totals: a channel whose writer
// spent the whole last interval throttled by a full buffer shows
// WR-BLK 100% even if the run as a whole has been smooth.
type TopView struct {
	w io.Writer
	// Clear, when set, prefixes each frame with the ANSI home+clear
	// sequence so successive frames overdraw in place like top(1).
	Clear bool

	prev  map[string]float64
	prevT time.Time
	frame int
}

// NewTopView creates a view writing frames to w.
func NewTopView(w io.Writer) *TopView {
	return &TopView{w: w, prev: make(map[string]float64)}
}

// seriesKey identifies one labeled series across snapshots.
func seriesKey(s obs.Sample, field string) string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('|')
	b.WriteString(field)
	labels := append([]obs.Label(nil), s.Labels...)
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// topRow accumulates one channel's columns for a frame.
type topRow struct {
	name                string
	tokens, bytes       float64 // interval deltas (write side)
	depth, capacity     int64
	readWait, writeWait float64 // interval blocked ns
	blocks              float64
}

// RenderProm parses a Prometheus exposition (typically the merged
// multi-node document from Coordinator.GatherMetrics) and renders one
// frame from it. Lines the parser does not understand are ignored, so
// "# dpn:stale peer[i]" markers from a partial gather pass through
// harmlessly; the stale node's series simply freeze.
func (t *TopView) RenderProm(text string, now time.Time) {
	t.Render(obs.ParseProm(text), now)
}

// Render diffs samples against the previous frame and writes the view.
// The first call only primes the delta state and prints a header.
func (t *TopView) Render(samples []obs.Sample, now time.Time) {
	cur := make(map[string]float64, len(samples))
	for _, s := range samples {
		if s.Kind == obs.KindHistogram {
			cur[seriesKey(s, "sum")] = s.Sum
			cur[seriesKey(s, "count")] = float64(s.Count)
			continue
		}
		cur[seriesKey(s, "v")] = float64(s.Value)
	}
	interval := now.Sub(t.prevT)
	first := t.frame == 0
	delta := func(s obs.Sample, field string) float64 {
		k := seriesKey(s, field)
		v := cur[k]
		if first {
			return 0
		}
		return v - t.prev[k]
	}

	rows := make(map[string]*topRow)
	rowFor := func(name string) *topRow {
		r := rows[name]
		if r == nil {
			r = &topRow{name: name}
			rows[name] = r
		}
		return r
	}
	type laneRow struct {
		lane           string
		tasks, results float64
	}
	lanes := make(map[string]*laneRow)
	var agg struct {
		live, blocked, poolLanes, inflight int64
		emitted, redispatch                float64
		lat                                map[string][2]float64 // stage -> {sum, count} deltas
	}
	agg.lat = make(map[string][2]float64)

	for _, s := range samples {
		if ch := s.Label("channel"); ch != "" {
			name := ch
			if node := s.Label("node"); node != "" {
				name = node + " " + ch
			}
			r := rowFor(name)
			write := s.Label("op") == "write"
			switch s.Name {
			case "dpn_conduit_tokens_total":
				if write {
					r.tokens += delta(s, "v")
				}
			case "dpn_conduit_bytes_total":
				if write {
					r.bytes += delta(s, "v")
				}
			case "dpn_conduit_occupancy_bytes":
				r.depth = s.Value
			case "dpn_conduit_capacity_bytes":
				r.capacity = s.Value
			case "dpn_conduit_wait_ns_total":
				if write {
					r.writeWait += delta(s, "v")
				} else {
					r.readWait += delta(s, "v")
				}
			case "dpn_conduit_blocks_total":
				r.blocks += delta(s, "v")
			}
		}
		switch s.Name {
		case "dpn_net_procs_live":
			agg.live += s.Value
		case "dpn_net_procs_blocked":
			agg.blocked += s.Value
		case "dpn_pool_lanes":
			agg.poolLanes += s.Value
		case "dpn_pool_inflight":
			agg.inflight += s.Value
		case "dpn_pool_emitted_total":
			agg.emitted += delta(s, "v")
		case "dpn_pool_redispatch_total":
			agg.redispatch += delta(s, "v")
		case "dpn_pool_latency_seconds":
			st := s.Label("stage")
			v := agg.lat[st]
			v[0] += delta(s, "sum")
			v[1] += delta(s, "count")
			agg.lat[st] = v
		case "dpn_pool_tasks_total", "dpn_pool_results_total":
			lane := s.Label("lane")
			if lane == "" {
				break
			}
			lr := lanes[lane]
			if lr == nil {
				lr = &laneRow{lane: lane}
				lanes[lane] = lr
			}
			if s.Name == "dpn_pool_tasks_total" {
				lr.tasks += delta(s, "v")
			} else {
				lr.results += delta(s, "v")
			}
		}
	}

	t.prev, t.prevT = cur, now
	t.frame++

	if t.Clear {
		fmt.Fprint(t.w, "\x1b[H\x1b[2J")
	}
	secs := interval.Seconds()
	if first || secs <= 0 {
		fmt.Fprintf(t.w, "dpntop — priming (frame 1): procs live=%d blocked=%d lanes=%d inflight=%d\n",
			agg.live, agg.blocked, agg.poolLanes, agg.inflight)
		return
	}
	fmt.Fprintf(t.w, "dpntop — interval %s | procs live=%d blocked=%d | pool lanes=%d inflight=%d emit/s=%.0f redisp=%.0f\n",
		interval.Round(time.Millisecond), agg.live, agg.blocked,
		agg.poolLanes, agg.inflight, agg.emitted/secs, agg.redispatch)

	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(t.w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CHANNEL\tTOK/s\tKB/s\tDEPTH\tRD-BLK%\tWR-BLK%")
	intervalNs := float64(interval.Nanoseconds())
	for _, n := range names {
		r := rows[n]
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f\t%d/%d\t%s\t%s\n",
			r.name, r.tokens/secs, r.bytes/secs/1024, r.depth, r.capacity,
			fmtPct(r.readWait/intervalNs), fmtPct(r.writeWait/intervalNs))
	}
	tw.Flush()

	if len(lanes) > 0 {
		laneNames := make([]string, 0, len(lanes))
		for n := range lanes {
			laneNames = append(laneNames, n)
		}
		sort.Strings(laneNames)
		tw = tabwriter.NewWriter(t.w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "LANE\tTASKS/s\tRESULTS/s")
		for _, n := range laneNames {
			lr := lanes[n]
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\n", lr.lane, lr.tasks/secs, lr.results/secs)
		}
		tw.Flush()
	}
	if len(agg.lat) > 0 {
		var parts []string
		for _, st := range []string{"queue", "service", "total"} {
			v := agg.lat[st]
			if v[1] > 0 {
				parts = append(parts, fmt.Sprintf("%s=%s", st, fmtSeconds(v[0]/v[1])))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(t.w, "pool latency (interval mean): %s\n", strings.Join(parts, " "))
		}
	}
}

// fmtPct renders a 0..1 fraction as a percentage column; fractions can
// exceed 1 when several parties block on the same channel concurrently.
func fmtPct(f float64) string {
	if f <= 0 {
		return "0"
	}
	return fmt.Sprintf("%.0f%%", f*100)
}
