// Package viz provides graph introspection for process networks: a
// structural validator enforcing the single-producer/single-consumer
// rule and a Graphviz DOT exporter.
//
// The paper chooses not to enforce Kahn's structural constraints at
// run time, suggesting instead that "a visual front end could be used
// for programming … The responsibility for consistency checking could
// be given to this visual front end, relieving the run-time system of
// this burden" (§3). This package is that front end's back half: it
// checks a set of processes *before* they are spawned — zero run-time
// overhead, exactly the paper's trade — and renders the graph for
// inspection.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"dpn/internal/core"
)

// Endpoint identifies one side of a channel as seen from a process.
type Endpoint struct {
	Process string // process name (type name or Namer)
	Index   int    // position of the process in the validated slice
}

// ChannelInfo describes one channel's connectivity.
type ChannelInfo struct {
	Name      string
	Capacity  int
	Producers []Endpoint
	Consumers []Endpoint
}

// Graph is the structural view of a process set.
type Graph struct {
	Processes []string
	Channels  []ChannelInfo
}

// Inspect builds the structural graph of the given (unspawned)
// processes by reflecting over their ports — the same discovery the
// runtime uses to close ports at process exit. Composite processes are
// flattened: their children appear as individual nodes, matching how
// they execute (§3.2: one thread per component).
func Inspect(procs ...any) *Graph {
	procs = flatten(procs)
	g := &Graph{}
	type chanState struct {
		info  *ChannelInfo
		order int
	}
	chans := make(map[*core.Channel]*chanState)
	ordered := []*core.Channel{}
	for i, p := range procs {
		name := fmt.Sprintf("%s#%d", procName(p), i)
		g.Processes = append(g.Processes, name)
		for _, closer := range core.PortsOf(p) {
			switch port := closer.(type) {
			case *core.ReadPort:
				ch := port.Channel()
				if ch == nil {
					continue
				}
				st := chans[ch]
				if st == nil {
					st = &chanState{info: &ChannelInfo{Name: ch.Name(), Capacity: ch.Pipe().Cap()}}
					chans[ch] = st
					ordered = append(ordered, ch)
				}
				st.info.Consumers = append(st.info.Consumers, Endpoint{Process: name, Index: i})
			case *core.WritePort:
				ch := port.Channel()
				if ch == nil {
					continue
				}
				st := chans[ch]
				if st == nil {
					st = &chanState{info: &ChannelInfo{Name: ch.Name(), Capacity: ch.Pipe().Cap()}}
					chans[ch] = st
					ordered = append(ordered, ch)
				}
				st.info.Producers = append(st.info.Producers, Endpoint{Process: name, Index: i})
			}
		}
	}
	for _, ch := range ordered {
		g.Channels = append(g.Channels, *chans[ch].info)
	}
	return g
}

// flatten expands composites into their component processes.
func flatten(procs []any) []any {
	var out []any
	for _, p := range procs {
		if comp, ok := p.(*core.Composite); ok {
			out = append(out, flatten(comp.Procs)...)
			continue
		}
		out = append(out, p)
	}
	return out
}

func procName(p any) string {
	if n, ok := p.(core.Namer); ok {
		return n.ProcessName()
	}
	return fmt.Sprintf("%T", p)
}

// Violation is one structural rule violation.
type Violation struct {
	Channel string
	Rule    string
}

func (v Violation) Error() string {
	return fmt.Sprintf("viz: channel %q: %s", v.Channel, v.Rule)
}

// Validate checks Kahn's structural constraints over the given
// processes: every channel must have at most one producing and at most
// one consuming process ("Multiple producers or multiple consumers
// connected to the same channel are not allowed", §1), and a channel
// with a producer among the processes should have a consumer (and vice
// versa) unless the counterpart is deliberately external. Dangling
// ends are reported as warnings in the second return value, not
// violations, because partial graphs are legal during distribution.
func Validate(procs ...any) (violations []Violation, warnings []string) {
	g := Inspect(procs...)
	for _, ch := range g.Channels {
		if len(ch.Producers) > 1 {
			violations = append(violations, Violation{
				Channel: ch.Name,
				Rule: fmt.Sprintf("%d producing processes (%s); Kahn networks allow exactly one",
					len(ch.Producers), joinEndpoints(ch.Producers)),
			})
		}
		if len(ch.Consumers) > 1 {
			violations = append(violations, Violation{
				Channel: ch.Name,
				Rule: fmt.Sprintf("%d consuming processes (%s); Kahn networks allow exactly one",
					len(ch.Consumers), joinEndpoints(ch.Consumers)),
			})
		}
		if len(ch.Producers) == 0 && len(ch.Consumers) > 0 {
			warnings = append(warnings,
				fmt.Sprintf("channel %q has a consumer but no producer in this process set", ch.Name))
		}
		if len(ch.Consumers) == 0 && len(ch.Producers) > 0 {
			warnings = append(warnings,
				fmt.Sprintf("channel %q has a producer but no consumer in this process set", ch.Name))
		}
	}
	return violations, warnings
}

// DOT renders the graph in Graphviz format: processes as boxes,
// channels as labelled edges (or as diamond nodes when an end is
// missing or duplicated, so violations are visible).
func DOT(g *Graph) string {
	var b strings.Builder
	b.WriteString("digraph dpn {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, p := range g.Processes {
		fmt.Fprintf(&b, "  %q;\n", p)
	}
	for _, ch := range g.Channels {
		label := fmt.Sprintf("%s (%dB)", ch.Name, ch.Capacity)
		if len(ch.Producers) == 1 && len(ch.Consumers) == 1 {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
				ch.Producers[0].Process, ch.Consumers[0].Process, label)
			continue
		}
		// Irregular connectivity: render the channel as its own node.
		node := "ch:" + ch.Name
		fmt.Fprintf(&b, "  %q [shape=diamond, label=%q];\n", node, label)
		for _, p := range ch.Producers {
			fmt.Fprintf(&b, "  %q -> %q;\n", p.Process, node)
		}
		for _, c := range ch.Consumers {
			fmt.Fprintf(&b, "  %q -> %q;\n", node, c.Process)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary prints a compact text report of the graph and its
// validation result.
func Summary(procs ...any) string {
	g := Inspect(procs...)
	violations, warnings := Validate(procs...)
	var b strings.Builder
	fmt.Fprintf(&b, "%d processes, %d channels\n", len(g.Processes), len(g.Channels))
	sorted := append([]ChannelInfo(nil), g.Channels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, ch := range sorted {
		fmt.Fprintf(&b, "  %-12s %5dB  %s -> %s\n", ch.Name, ch.Capacity,
			orNone(joinEndpoints(ch.Producers)), orNone(joinEndpoints(ch.Consumers)))
	}
	for _, v := range violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v.Error())
	}
	for _, w := range warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}

func joinEndpoints(eps []Endpoint) string {
	names := make([]string, len(eps))
	for i, e := range eps {
		names[i] = e.Process
	}
	return strings.Join(names, ", ")
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
