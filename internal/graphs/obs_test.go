package graphs

import (
	"strings"
	"testing"

	"dpn/internal/core"
	"dpn/internal/obs"
)

// The sieve reconfigures its own graph at run time (§3.3): each new
// prime inserts a Modulo filter upstream of Sift. With the tracer
// enabled, every insertion must surface as an EvReconfig event and in
// the dpn_net_reconfig_total counter, giving the paper's
// "self-modifying graph" behaviour an observable audit trail.
func TestSieveEmitsReconfigEvents(t *testing.T) {
	n := core.NewNetwork()
	n.Obs().Tracer().Enable()
	sink := SieveFirstN(n, 10, SieveIterative)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Values()); got != 10 {
		t.Fatalf("sieve produced %d primes, want 10", got)
	}

	// The ring keeps only the newest events (token traffic may evict the
	// early insertions), but per-type counts are exact for the run.
	inserts := n.Obs().Tracer().Count(obs.EvReconfig)
	if inserts < 8 {
		t.Errorf("traced %d reconfig events, want >= 8", inserts)
	}
	for _, ev := range n.Obs().Tracer().Events() {
		if ev.Type == obs.EvReconfig && ev.Detail != "insert-upstream" {
			t.Errorf("unexpected reconfig kind %q on %q", ev.Detail, ev.Name)
		}
	}

	var counted int64
	for _, s := range n.Obs().Registry().Samples() {
		if s.Name == "dpn_net_reconfig_total" && s.Label("kind") == "insert-upstream" {
			counted = s.Value
		}
	}
	if counted != int64(inserts) {
		t.Errorf("dpn_net_reconfig_total = %d, traced events = %d; they must agree", counted, inserts)
	}
}

// Fibonacci's self-removing Cons processes splice themselves out after
// emitting their head (Figure 10); the splice must be traced too.
func TestFibonacciEmitsSpliceOutEvents(t *testing.T) {
	n := core.NewNetwork()
	n.Obs().Tracer().Enable()
	sink := Fibonacci(n, 10, true)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Values()); got != 10 {
		t.Fatalf("fibonacci produced %d values, want 10", got)
	}
	if n.Obs().Tracer().Count(obs.EvReconfig) == 0 {
		t.Error("no reconfig events traced for the self-removing Cons")
	}
	var splices int
	for _, ev := range n.Obs().Tracer().Events() {
		if ev.Type == obs.EvReconfig && ev.Detail == "splice-out" {
			splices++
		}
	}
	if splices == 0 {
		t.Error("no splice-out events survived in the ring")
	}
}

// End-to-end check of the acceptance criterion: a sieve run's metrics
// expose token counts, occupancy, and process totals, and the spawn /
// stop lifecycle shows up in the trace.
func TestSieveMetricsExposition(t *testing.T) {
	n := core.NewNetwork()
	n.Obs().Tracer().Enable()
	SieveFirstN(n, 8, SieveIterative)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := n.Obs().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"dpn_channel_tokens_total{channel=",
		"dpn_channel_occupancy_peak_bytes{channel=",
		"dpn_channel_bytes_total{channel=",
		"dpn_net_procs_spawned_total",
		"dpn_net_reconfig_total{kind=\"insert-upstream\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	spawns := n.Obs().Tracer().Count(obs.EvSpawn)
	stops := n.Obs().Tracer().Count(obs.EvStop)
	if spawns == 0 || spawns != stops {
		t.Errorf("spawn/stop events unbalanced after termination: %d/%d", spawns, stops)
	}
}
