package graphs

import (
	"io"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/deadlock"
	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/proclib"
	"dpn/internal/token"
	"dpn/internal/wire"
)

// Distributed chaos tests: the determinacy argument of the local
// capacity-perturbation tests (chaos_test.go), extended across the
// network. A Kahn network computes the same streams no matter how its
// links behave, so a seeded fault schedule on every connection —
// latency, drops, short writes, partitions — must leave the collected
// output byte-identical to a fault-free run, as long as the resilient
// links heal. When they cannot heal (a permanent partition), the links
// degrade by poisoning their channel ends and the §3.4 cascading close
// must terminate every process on both nodes with no goroutine left
// behind.
//
// Every test logs "chaos seed N"; rerun a failure exactly with
// CHAOS_SEED=N (scripts/check.sh -chaos does this automatically).

// chaosSeed returns the seed for a chaos test. CHAOS_SEED overrides
// the default so a logged failing schedule can be replayed exactly.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED: %v", err)
		}
		return v
	}
	return def
}

// chaosResilience returns test-speed link resilience: fast heartbeats
// and retries so partitions are detected and healed within a test run.
func chaosResilience(seed int64) netio.Resilience {
	return netio.Resilience{
		HeartbeatEvery: 30 * time.Millisecond,
		MissDeadline:   150 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       60 * time.Millisecond,
		LinkDeadline:   10 * time.Second,
		Seed:           seed,
	}
}

func newChaosNode(t *testing.T, inj *faults.Injector, res netio.Resilience) *wire.Node {
	t.Helper()
	n, err := wire.NewLocalNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.Broker.SetFaults(inj)
	n.Broker.SetResilience(res)
	t.Cleanup(func() { n.Close() })
	return n
}

// pacedSeq writes From..From+N-1, sleeping Every between elements, so
// the cross-node stream stays live long enough for a mid-run partition
// to interleave with it. It never migrates, so it needs no gob
// registration.
type pacedSeq struct {
	From, N int64
	Every   time.Duration
	Out     *core.WritePort
	i       int64
}

func (s *pacedSeq) Step(env *core.Env) error {
	if s.i >= s.N {
		return io.EOF
	}
	if s.Every > 0 {
		time.Sleep(s.Every)
	}
	v := s.From + s.i
	s.i++
	return token.NewWriter(s.Out).WriteInt64(v)
}

// splitPrimes spawns the paced integer source and the sieve on node a
// and returns the still-unspawned collector, ready for export to
// another node — the examples/primes graph cut at its output channel.
func splitPrimes(a *wire.Node, limit int64, pace time.Duration) *proclib.Collect {
	src := a.Net.NewChannel("ints", 0)
	out := a.Net.NewChannel("primes", 0)
	a.Net.Spawn(&pacedSeq{From: 2, N: limit - 2, Every: pace, Out: src.Writer()})
	a.Net.Spawn(&proclib.Sift{In: src.Reader(), Out: out.Writer()})
	return &proclib.Collect{In: out.Reader()}
}

// splitHamming wires the Figure 12 Hamming graph on node a — identical
// to Hamming() — but returns the collector unspawned for export. The
// graph is unbounded, so a distributed run needs the §6.2 coordinator
// to grow channels.
func splitHamming(a *wire.Node, count int64, capacity int) *proclib.Collect {
	n := a.Net
	seed := n.NewChannel("seed", capacity)
	merged := n.NewChannel("merged", capacity)
	out := n.NewChannel("out", capacity)
	loop := n.NewChannel("loop", capacity)
	d2 := n.NewChannel("d2", capacity)
	d3 := n.NewChannel("d3", capacity)
	d5 := n.NewChannel("d5", capacity)
	s2 := n.NewChannel("s2", capacity)
	s3 := n.NewChannel("s3", capacity)
	s5 := n.NewChannel("s5", capacity)

	one := &proclib.Constant{Value: 1, Out: seed.Writer()}
	one.Iterations = 1
	n.Spawn(one)
	n.Spawn(&proclib.Cons{HeadIn: seed.Reader(), In: merged.Reader(), Out: out.Writer()})
	n.Spawn(&proclib.Duplicate{In: out.Reader(), Outs: []*core.WritePort{
		loop.Writer(), d2.Writer(),
	}})
	n.Spawn(&proclib.Duplicate{In: d2.Reader(), Outs: []*core.WritePort{
		d3.Writer(), d5.Writer(),
	}})
	n.Spawn(&proclib.Scale{Factor: 2, In: d3.Reader(), Out: s2.Writer()})
	n.Spawn(&proclib.Scale{Factor: 3, In: d5.Reader(), Out: s3.Writer()})
	d5b := n.NewChannel("d5b", capacity)
	sinkIn := n.NewChannel("sinkIn", capacity)
	n.Spawn(&proclib.Duplicate{In: loop.Reader(), Outs: []*core.WritePort{
		d5b.Writer(), sinkIn.Writer(),
	}})
	n.Spawn(&proclib.Scale{Factor: 5, In: d5b.Reader(), Out: s5.Writer()})
	n.Spawn(&proclib.OrderedMerge{
		Ins: []*core.ReadPort{s2.Reader(), s3.Reader(), s5.Reader()},
		Out: merged.Writer(),
	})
	sink := &proclib.Collect{In: sinkIn.Reader()}
	sink.Iterations = count
	return sink
}

func findSink(t *testing.T, procs []any) *proclib.Collect {
	t.Helper()
	for _, p := range procs {
		if c, ok := p.(*proclib.Collect); ok {
			return c
		}
	}
	t.Fatal("collector did not survive the move")
	return nil
}

func waitNetChaos(t *testing.T, n *core.Network, what string, timeout time.Duration, mustClean bool) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			if mustClean {
				t.Fatalf("%s: %v", what, err)
			}
			t.Logf("%s terminated with: %v", what, err)
		}
	case <-time.After(timeout):
		t.Fatalf("%s did not terminate under chaos", what)
	}
}

// exportSink ships the collector from a to b and spawns it there.
func exportSink(t *testing.T, a, b *wire.Node, sink *proclib.Collect) *proclib.Collect {
	t.Helper()
	parcel, err := wire.Export(a, b.Broker.Addr(), sink)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := wire.Import(b, parcel)
	if err != nil {
		t.Fatal(err)
	}
	remote := findSink(t, procs)
	for _, p := range procs {
		b.Net.Spawn(p)
	}
	return remote
}

// partitionWhenFlowing starts a partition once payload has crossed to
// b, so the outage interleaves with an established, active link.
func partitionWhenFlowing(b *wire.Node, inj *faults.Injector, d time.Duration) {
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for b.Broker.BytesIn() < 8 && time.Now().Before(deadline) {
			time.Sleep(500 * time.Microsecond)
		}
		inj.PartitionNow(d)
	}()
}

// The headline acceptance scenario: primes across two nodes, a 500ms
// stall partition mid-stream. The link must detect the outage via
// missed heartbeats, reconnect after the heal, resynchronize with the
// RESUME handshake, and deliver output byte-identical to a fault-free
// run.
func TestChaosPrimesPartitionHealsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	seed := chaosSeed(t, 42)
	t.Logf("chaos seed %d", seed)
	const limit = 150
	want := primesRef(limit)

	inj := faults.New(faults.Config{Seed: seed, Stall: true})
	res := chaosResilience(seed)
	a := newChaosNode(t, inj, res)
	b := newChaosNode(t, inj, res)

	sink := splitPrimes(a, limit, 2*time.Millisecond)
	remote := exportSink(t, a, b, sink)
	partitionWhenFlowing(b, inj, 500*time.Millisecond)

	waitNetChaos(t, a.Net, "origin node", 60*time.Second, true)
	waitNetChaos(t, b.Net, "remote node", 60*time.Second, true)
	if got := remote.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos run diverged from the fault-free output:\n got %v\nwant %v", got, want)
	}
	if inj.Injected() == 0 {
		t.Fatal("fault injector never fired; the partition missed the stream")
	}
	if heals := a.Broker.PartitionHeals() + b.Broker.PartitionHeals(); heals == 0 {
		t.Fatal("stream completed without a link reconnect; partition was not exercised")
	}
	t.Logf("injected=%d heals=%d misses=%d retries=%d", inj.Injected(),
		a.Broker.PartitionHeals()+b.Broker.PartitionHeals(),
		a.Broker.HeartbeatMisses()+b.Broker.HeartbeatMisses(),
		a.Broker.LinkRetries()+b.Broker.LinkRetries())
}

// The degrade half of the acceptance scenario: the same split run with
// a partition that never heals. The links must exhaust LinkDeadline,
// poison their channel ends, and let the §3.4 cascading close stop
// every process on both nodes — no hang, no leaked goroutine — with
// the delivered output a strict prefix of the fault-free stream.
func TestChaosPrimesPermanentPartitionCascades(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	seed := chaosSeed(t, 43)
	t.Logf("chaos seed %d", seed)
	const limit = 150
	want := primesRef(limit)

	baseline := runtime.NumGoroutine()
	inj := faults.New(faults.Config{Seed: seed, Stall: true})
	res := chaosResilience(seed)
	res.LinkDeadline = 700 * time.Millisecond
	a := newChaosNode(t, inj, res)
	b := newChaosNode(t, inj, res)

	sink := splitPrimes(a, limit, time.Millisecond)
	remote := exportSink(t, a, b, sink)
	partitionWhenFlowing(b, inj, 0) // never heals

	waitNetChaos(t, a.Net, "origin node", 30*time.Second, false)
	waitNetChaos(t, b.Net, "remote node", 30*time.Second, false)

	got := remote.Values()
	if len(got) == 0 || len(got) > len(want) || !reflect.DeepEqual(got, want[:len(got)]) {
		t.Fatalf("degraded output is not a non-empty prefix of the fault-free stream: %v", got)
	}
	if fails := a.Broker.LinkFailures() + b.Broker.LinkFailures(); fails == 0 {
		t.Fatal("network terminated without any link degrading")
	}
	// Everything must wind down: link goroutines, heartbeats, processes.
	a.Close()
	b.Close()
	if !goroutineSettled(baseline) {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked after cascading close: %d -> %d\n%s",
			baseline, runtime.NumGoroutine(), buf[:n])
	}
}

// runChaosPrimes runs one seeded randomized fault schedule over the
// split primes graph and requires byte-identical output.
func runChaosPrimes(t *testing.T, seed int64, cfg faults.Config) {
	t.Helper()
	t.Logf("chaos seed %d", seed)
	const limit = 120
	want := primesRef(limit)
	inj := faults.New(cfg)
	res := chaosResilience(seed)
	a := newChaosNode(t, inj, res)
	b := newChaosNode(t, inj, res)
	sink := splitPrimes(a, limit, 200*time.Microsecond)
	remote := exportSink(t, a, b, sink)
	waitNetChaos(t, a.Net, "origin node", 60*time.Second, true)
	waitNetChaos(t, b.Net, "remote node", 60*time.Second, true)
	if got := remote.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("seed %d diverged from the fault-free output:\n got %v\nwant %v", seed, got, want)
	}
	t.Logf("injected=%d heals=%d", inj.Injected(),
		a.Broker.PartitionHeals()+b.Broker.PartitionHeals())
}

// Property-style determinacy sweep: N seeded schedules of drops, short
// writes, latency, and jitter over the distributed primes graph. Every
// schedule must produce the identical stream.
func TestChaosPrimesManySchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep")
	}
	base := chaosSeed(t, 200)
	for trial := int64(0); trial < 3; trial++ {
		seed := base + trial
		cfg := faults.Config{
			Seed:       seed,
			Latency:    time.Duration(trial) * 100 * time.Microsecond,
			Jitter:     200 * time.Microsecond,
			Drop:       0.01 + 0.02*float64(trial),
			ShortWrite: 0.01 * float64(trial),
		}
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			runChaosPrimes(t, seed, cfg)
		})
	}
}

// runChaosHamming runs the distributed Hamming graph — unbounded, so
// it artificially deadlocks until the §6.2 coordinator grows channels
// — under one seeded fault schedule, with the coordinator polling both
// nodes throughout.
func runChaosHamming(t *testing.T, seed int64, cfg faults.Config) {
	t.Helper()
	t.Logf("chaos seed %d", seed)
	const count = 80
	want := hammingRef(count)
	inj := faults.New(cfg)
	res := chaosResilience(seed)
	a := newChaosNode(t, inj, res)
	b := newChaosNode(t, inj, res)
	sink := splitHamming(a, count, 16)
	remote := exportSink(t, a, b, sink)

	coord := deadlock.NewCoordinator(a, b)
	coord.Settle = 3 * time.Millisecond
	coord.Poll = 4 * time.Millisecond
	coord.Start()
	defer coord.Stop()

	waitNetChaos(t, a.Net, "origin node", 120*time.Second, true)
	waitNetChaos(t, b.Net, "remote node", 120*time.Second, true)
	if got := remote.Values(); !reflect.DeepEqual(got, want[:len(want)]) {
		t.Fatalf("seed %d diverged from the fault-free output:\n got %v\nwant %v", seed, got, want)
	}
	if coord.Resolutions() == 0 {
		t.Fatal("expected the coordinator to grow at least one channel")
	}
	t.Logf("resolutions=%d injected=%d heals=%d", coord.Resolutions(),
		inj.Injected(), a.Broker.PartitionHeals()+b.Broker.PartitionHeals())
}

// Distributed determinacy for the Hamming graph: seeded fault
// schedules with the distributed deadlock coordinator keeping the
// unbounded graph alive across both nodes.
func TestChaosHammingDistributedCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	base := chaosSeed(t, 300)
	for trial := int64(0); trial < 2; trial++ {
		seed := base + trial
		cfg := faults.Config{
			Seed:    seed,
			Latency: 100 * time.Microsecond,
			Jitter:  200 * time.Microsecond,
			Drop:    0.02 * float64(trial),
		}
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			runChaosHamming(t, seed, cfg)
		})
	}
}
