// Package graphs builds the program graphs used throughout the paper:
// the Fibonacci network (Figures 2 and 6), the Sieve of Eratosthenes
// (Figures 7 and 8), Newton's square-root network (Figure 11), and the
// Hamming 2^k·3^m·5^n network (Figure 12). Examples, tests, and the
// benchmark harness all construct their graphs here so the wiring is
// written once.
package graphs

import (
	"dpn/internal/core"
	"dpn/internal/proclib"
)

// Fibonacci wires the network of Figure 6 into n and returns the
// collector that receives the first `count` Fibonacci numbers
// (1, 1, 2, 3, 5, …). If selfRemovingCons is set, the two Cons
// processes splice themselves out of the graph after delivering their
// head elements (Figure 9), exercising run-time reconfiguration.
func Fibonacci(n *core.Network, count int64, selfRemovingCons bool) *proclib.Collect {
	// Channel names follow Figure 6.
	ab := n.NewChannel("ab", 0)
	be := n.NewChannel("be", 0)
	cd := n.NewChannel("cd", 0)
	df := n.NewChannel("df", 0)
	ed := n.NewChannel("ed", 0)
	eg := n.NewChannel("eg", 0)
	fg := n.NewChannel("fg", 0)
	fh := n.NewChannel("fh", 0)
	gb := n.NewChannel("gb", 0)

	one1 := &proclib.Constant{Value: 1, Out: ab.Writer()}
	one1.Iterations = 1
	n.Spawn(one1)
	n.Spawn(&proclib.Cons{HeadIn: ab.Reader(), In: gb.Reader(), Out: be.Writer(), SelfRemove: selfRemovingCons})
	n.Spawn(&proclib.Duplicate{In: be.Reader(), Outs: []*core.WritePort{ed.Writer(), eg.Writer()}})
	n.Spawn(&proclib.Add{InA: eg.Reader(), InB: fg.Reader(), Out: gb.Writer()})
	one2 := &proclib.Constant{Value: 1, Out: cd.Writer()}
	one2.Iterations = 1
	n.Spawn(one2)
	n.Spawn(&proclib.Cons{HeadIn: cd.Reader(), In: ed.Reader(), Out: df.Writer(), SelfRemove: selfRemovingCons})
	n.Spawn(&proclib.Duplicate{In: df.Reader(), Outs: []*core.WritePort{fh.Writer(), fg.Writer()}})
	sink := &proclib.Collect{In: fh.Reader()}
	sink.Iterations = count
	n.Spawn(sink)
	return sink
}

// SieveMode selects the self-modification style of the sieve.
type SieveMode int

const (
	// SieveIterative uses the Sift of Figure 8, which stays in the graph
	// and inserts Modulo processes upstream of itself.
	SieveIterative SieveMode = iota
	// SieveRecursive uses the Sift of Figure 7, which replaces itself
	// with a Modulo process and a fresh Sift.
	SieveRecursive
)

// SieveBounded wires the Sieve of Eratosthenes to compute all primes
// less than limit: the integer source has the iteration limit, and the
// collector drains until the cascade of closings reaches it (§3.4,
// "compute all prime numbers less than 100").
func SieveBounded(n *core.Network, limit int64, mode SieveMode) *proclib.Collect {
	src := n.NewChannel("ints", 0)
	out := n.NewChannel("primes", 0)
	seq := &proclib.Sequence{From: 2, Stride: 1, Out: src.Writer()}
	seq.Iterations = limit - 2 // integers 2..limit-1
	n.Spawn(seq)
	spawnSift(n, mode, src, out)
	sink := &proclib.Collect{In: out.Reader()}
	n.Spawn(sink)
	return sink
}

// SieveFirstN wires the sieve to compute the first `count` primes: the
// integer source is unbounded and the *collector* carries the iteration
// limit; its stopping poisons the chain upstream (§3.4, "compute the
// first 100 prime numbers").
func SieveFirstN(n *core.Network, count int64, mode SieveMode) *proclib.Collect {
	src := n.NewChannel("ints", 0)
	out := n.NewChannel("primes", 0)
	n.Spawn(&proclib.Sequence{From: 2, Stride: 1, Out: src.Writer()})
	spawnSift(n, mode, src, out)
	sink := &proclib.Collect{In: out.Reader()}
	sink.Iterations = count
	n.Spawn(sink)
	return sink
}

func spawnSift(n *core.Network, mode SieveMode, src, out *core.Channel) {
	switch mode {
	case SieveRecursive:
		n.Spawn(&proclib.SiftRecursive{In: src.Reader(), Out: out.Writer()})
	default:
		n.Spawn(&proclib.Sift{In: src.Reader(), Out: out.Writer()})
	}
}

// Hamming wires the network of Figure 12, producing the ascending
// sequence of integers of the form 2^k·3^m·5^n (1, 2, 3, 4, 5, 6, 8,
// …) into the returned collector, which stops after `count` elements.
// The graph is unbounded: each merged element fans out to three Scale
// processes, so channel demand grows without limit and, with bounded
// buffers, the graph eventually deadlocks unless a deadlock monitor
// grows the buffers (§3.5). capacity sets the initial channel capacity
// in bytes; pass 0 for the network default.
func Hamming(n *core.Network, count int64, capacity int) *proclib.Collect {
	seed := n.NewChannel("seed", capacity)
	merged := n.NewChannel("merged", capacity)
	out := n.NewChannel("out", capacity)
	loop := n.NewChannel("loop", capacity)
	d2 := n.NewChannel("d2", capacity)
	d3 := n.NewChannel("d3", capacity)
	d5 := n.NewChannel("d5", capacity)
	s2 := n.NewChannel("s2", capacity)
	s3 := n.NewChannel("s3", capacity)
	s5 := n.NewChannel("s5", capacity)

	// out = cons(1, merge(scale2(out), scale3(out), scale5(out)))
	one := &proclib.Constant{Value: 1, Out: seed.Writer()}
	one.Iterations = 1
	n.Spawn(one)
	n.Spawn(&proclib.Cons{HeadIn: seed.Reader(), In: merged.Reader(), Out: out.Writer()})
	n.Spawn(&proclib.Duplicate{In: out.Reader(), Outs: []*core.WritePort{
		loop.Writer(), d2.Writer(),
	}})
	n.Spawn(&proclib.Duplicate{In: d2.Reader(), Outs: []*core.WritePort{
		d3.Writer(), d5.Writer(),
	}})
	n.Spawn(&proclib.Scale{Factor: 2, In: d3.Reader(), Out: s2.Writer()})
	n.Spawn(&proclib.Scale{Factor: 3, In: d5.Reader(), Out: s3.Writer()})
	// The third scale taps the loop channel through a second duplicate.
	d5b := n.NewChannel("d5b", capacity)
	sinkIn := n.NewChannel("sinkIn", capacity)
	n.Spawn(&proclib.Duplicate{In: loop.Reader(), Outs: []*core.WritePort{
		d5b.Writer(), sinkIn.Writer(),
	}})
	n.Spawn(&proclib.Scale{Factor: 5, In: d5b.Reader(), Out: s5.Writer()})
	n.Spawn(&proclib.OrderedMerge{
		Ins: []*core.ReadPort{s2.Reader(), s3.Reader(), s5.Reader()},
		Out: merged.Writer(),
	})
	sink := &proclib.Collect{In: sinkIn.Reader()}
	sink.Iterations = count
	n.Spawn(sink)
	return sink
}

// Sqrt wires Newton's square-root network of Figure 11 for input x with
// initial estimate r0, returning the collector that receives the single
// converged result. The loop refines r ← (x/r + r)/2 until two
// successive estimates are bit-identical; Equal then emits true, Guard
// passes the estimate once and stops, and the cascade tears the rest of
// the network down.
func Sqrt(n *core.Network, x, r0 float64) *proclib.CollectFloat {
	// x fan-out: the Divide process needs x every iteration.
	xs := n.NewChannel("xs", 0)
	n.Spawn(&proclib.ConstantFloat{Value: x, Out: xs.Writer()})

	seed := n.NewChannel("seed", 0)
	rIn := n.NewChannel("rIn", 0)   // cons(r0, next) — current estimate r_{n-1}
	rDup := n.NewChannel("rDup", 0) // estimate copies
	toDiv := n.NewChannel("toDiv", 0)
	toAvg := n.NewChannel("toAvg", 0)
	toEqA := n.NewChannel("toEqA", 0)
	quot := n.NewChannel("quot", 0)   // x / r
	next := n.NewChannel("next", 0)   // r_n = (x/r + r)/2
	nextD := n.NewChannel("nextD", 0) // next estimate copies
	toEqB := n.NewChannel("toEqB", 0) // r_n for convergence test
	toGrd := n.NewChannel("toGrd", 0) // r_n data into the guard
	toLoop := n.NewChannel("toLoop", 0)
	ctl := n.NewChannel("ctl", 0) // bool convergence stream
	res := n.NewChannel("res", 0)

	one := &proclib.ConstantFloat{Value: r0, Out: seed.Writer()}
	one.Iterations = 1
	n.Spawn(one)
	n.Spawn(&proclib.Cons{HeadIn: seed.Reader(), In: toLoop.Reader(), Out: rIn.Writer()})
	n.Spawn(&proclib.Duplicate{In: rIn.Reader(), Outs: []*core.WritePort{rDup.Writer(), toDiv.Writer()}})
	n.Spawn(&proclib.Duplicate{In: rDup.Reader(), Outs: []*core.WritePort{toAvg.Writer(), toEqA.Writer()}})
	n.Spawn(&proclib.Divide{InA: xs.Reader(), InB: toDiv.Reader(), Out: quot.Writer()})
	n.Spawn(&proclib.Average{InA: quot.Reader(), InB: toAvg.Reader(), Out: next.Writer()})
	n.Spawn(&proclib.Duplicate{In: next.Reader(), Outs: []*core.WritePort{nextD.Writer(), toLoop.Writer()}})
	n.Spawn(&proclib.Duplicate{In: nextD.Reader(), Outs: []*core.WritePort{toEqB.Writer(), toGrd.Writer()}})
	n.Spawn(&proclib.Equal{InA: toEqA.Reader(), InB: toEqB.Reader(), Out: ctl.Writer()})
	n.Spawn(&proclib.Guard{In: toGrd.Reader(), Control: ctl.Reader(), Out: res.Writer(), StopAfterPass: true})
	sink := &proclib.CollectFloat{In: res.Reader()}
	n.Spawn(sink)
	return sink
}
