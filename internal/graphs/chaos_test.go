package graphs

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/deadlock"
)

// Determinacy under scheduling perturbation: channel capacities change
// the blocking pattern — and therefore the schedule — of every run.
// Kahn's theorem says the computed streams must not change. The
// deadlock monitor covers runs whose capacities are small enough to
// artificially deadlock the cyclic graphs.
func TestFibonacciDeterminateUnderCapacityPerturbation(t *testing.T) {
	want := fibRef(25)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		capacity := 16 << rng.Intn(8) // 16B .. 2KiB
		n := core.NewNetwork(core.WithDefaultCapacity(capacity))
		sink := Fibonacci(n, 25, trial%2 == 1)
		mon := deadlock.New(n, 200*time.Microsecond)
		mon.Start()
		done := make(chan error, 1)
		go func() { done <- n.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("trial %d (cap %d): %v", trial, capacity, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("trial %d (cap %d): did not terminate", trial, capacity)
		}
		mon.Stop()
		if got := sink.Values(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (cap %d): history changed: %v", trial, capacity, got)
		}
	}
}

func TestSieveDeterminateUnderCapacityPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	want := primesRef(150)
	for trial := 0; trial < 8; trial++ {
		capacity := 16 << rng.Intn(7)
		n := core.NewNetwork(core.WithDefaultCapacity(capacity))
		mode := SieveIterative
		if trial%2 == 1 {
			mode = SieveRecursive
		}
		sink := SieveBounded(n, 150, mode)
		mon := deadlock.New(n, 200*time.Microsecond)
		mon.Start()
		done := make(chan error, 1)
		go func() { done <- n.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("trial %d (cap %d): %v", trial, capacity, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("trial %d (cap %d): did not terminate", trial, capacity)
		}
		mon.Stop()
		if got := sink.Values(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (cap %d): history changed", trial, capacity)
		}
	}
}

func TestHammingDeterminateUnderCapacityPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	want := hammingRef(80)
	for trial := 0; trial < 6; trial++ {
		capacity := 16 << rng.Intn(6)
		n := core.NewNetwork()
		sink := Hamming(n, 80, capacity)
		mon := deadlock.New(n, 200*time.Microsecond)
		mon.Start()
		done := make(chan error, 1)
		go func() { done <- n.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("trial %d (cap %d): %v", trial, capacity, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("trial %d (cap %d): did not terminate", trial, capacity)
		}
		mon.Stop()
		if got := sink.Values(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (cap %d): history changed: %v", trial, capacity, got)
		}
	}
}
