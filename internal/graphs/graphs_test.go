package graphs

import (
	"math"
	"reflect"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/deadlock"
)

func fibRef(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		if i < 2 {
			out[i] = 1
		} else {
			out[i] = out[i-1] + out[i-2]
		}
	}
	return out
}

func TestFibonacciNetwork(t *testing.T) {
	n := core.NewNetwork()
	sink := Fibonacci(n, 20, false)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, want := sink.Values(), fibRef(20); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestFibonacciWithSelfRemovingCons(t *testing.T) {
	// Figure 9: the two Cons processes splice themselves out after
	// priming; the sequence must be unchanged.
	n := core.NewNetwork()
	sink := Fibonacci(n, 20, true)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, want := sink.Values(), fibRef(20); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Determinacy (§2): the computed history must be identical run after
// run, under both reconfiguration styles, regardless of scheduling.
func TestFibonacciDeterminacyAcrossRuns(t *testing.T) {
	want := fibRef(30)
	for i := 0; i < 20; i++ {
		selfRemove := i%2 == 1
		n := core.NewNetwork()
		sink := Fibonacci(n, 30, selfRemove)
		if err := n.Wait(); err != nil {
			t.Fatal(err)
		}
		if got := sink.Values(); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d (selfRemove=%v): got %v, want %v", i, selfRemove, got, want)
		}
	}
}

func primesRef(limit int64) []int64 {
	var out []int64
	for v := int64(2); v < limit; v++ {
		isP := true
		for d := int64(2); d*d <= v; d++ {
			if v%d == 0 {
				isP = false
				break
			}
		}
		if isP {
			out = append(out, v)
		}
	}
	return out
}

func TestSieveBoundedBothModes(t *testing.T) {
	want := primesRef(200)
	for _, mode := range []SieveMode{SieveIterative, SieveRecursive} {
		n := core.NewNetwork()
		sink := SieveBounded(n, 200, mode)
		if err := n.Wait(); err != nil {
			t.Fatal(err)
		}
		if got := sink.Values(); !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %d: got %v, want %v", mode, got, want)
		}
	}
}

func TestSieveFirstNBothModes(t *testing.T) {
	want := primesRef(1000)[:50]
	for _, mode := range []SieveMode{SieveIterative, SieveRecursive} {
		n := core.NewNetwork()
		sink := SieveFirstN(n, 50, mode)
		done := make(chan error, 1)
		go func() { done <- n.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("mode %d: sieve did not terminate", mode)
		}
		if got := sink.Values(); !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %d: got %v, want %v", mode, got, want)
		}
	}
}

func TestSieveDeterminacyAcrossModes(t *testing.T) {
	// The two self-modification styles are different schedules of the
	// same Kahn network; their histories must agree.
	n1 := core.NewNetwork()
	s1 := SieveFirstN(n1, 40, SieveIterative)
	n2 := core.NewNetwork()
	s2 := SieveFirstN(n2, 40, SieveRecursive)
	if err := n1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := n2.Wait(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Values(), s2.Values()) {
		t.Fatalf("iterative %v != recursive %v", s1.Values(), s2.Values())
	}
}

func hammingRef(count int) []int64 {
	// Classic three-pointer generation.
	h := make([]int64, count)
	h[0] = 1
	i2, i3, i5 := 0, 0, 0
	for i := 1; i < count; i++ {
		n2, n3, n5 := h[i2]*2, h[i3]*3, h[i5]*5
		m := n2
		if n3 < m {
			m = n3
		}
		if n5 < m {
			m = n5
		}
		h[i] = m
		if m == n2 {
			i2++
		}
		if m == n3 {
			i3++
		}
		if m == n5 {
			i5++
		}
	}
	return h
}

func TestHammingWithAmpleBuffers(t *testing.T) {
	n := core.NewNetwork()
	sink := Hamming(n, 100, 1<<16)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, want := sink.Values(), hammingRef(100); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestHammingSmallBuffersNeedDeadlockResolution(t *testing.T) {
	// With tiny channel capacities the unbounded graph of Figure 12
	// write-blocks; the monitor must grow buffers until the 200-element
	// prefix is produced.
	n := core.NewNetwork()
	sink := Hamming(n, 200, 16)
	mon := deadlock.New(n, 200*time.Microsecond)
	mon.Start()
	defer mon.Stop()
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("hamming did not terminate (deadlock unresolved)")
	}
	if got, want := sink.Values(), hammingRef(200); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if mon.Resolutions() == 0 {
		t.Fatal("expected the monitor to resolve at least one artificial deadlock")
	}
	t.Logf("deadlock resolutions: %d", mon.Resolutions())
}

func TestSqrtNewton(t *testing.T) {
	for _, x := range []float64{4, 2, 10, 123456.789} {
		n := core.NewNetwork()
		sink := Sqrt(n, x, x/2)
		done := make(chan error, 1)
		go func() { done <- n.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("sqrt(%v) did not terminate", x)
		}
		got := sink.Values()
		if len(got) != 1 {
			t.Fatalf("sqrt(%v): got %v", x, got)
		}
		if math.Abs(got[0]-math.Sqrt(x)) > 1e-12*math.Sqrt(x) {
			t.Fatalf("sqrt(%v) = %v, want %v", x, got[0], math.Sqrt(x))
		}
	}
}

func TestSqrtDeterminacy(t *testing.T) {
	var first float64
	for i := 0; i < 10; i++ {
		n := core.NewNetwork()
		sink := Sqrt(n, 7.25, 1)
		if err := n.Wait(); err != nil {
			t.Fatal(err)
		}
		got := sink.Values()
		if len(got) != 1 {
			t.Fatalf("run %d: got %v", i, got)
		}
		if i == 0 {
			first = got[0]
		} else if got[0] != first {
			t.Fatalf("run %d: %v != %v (nondeterminate)", i, got[0], first)
		}
	}
}
