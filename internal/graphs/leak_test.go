package graphs

import (
	"net/http"
	"runtime"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/obs"
)

// goroutineSettled waits for the goroutine count to drop back to (or
// below) the baseline, tolerating runtime jitter.
func goroutineSettled(baseline int) bool {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// Every process runs in its own goroutine (§3.2); the termination
// cascade of §3.4 must release all of them, including the goroutines
// of dynamically inserted processes. A leak here would make
// long-running signal-processing deployments impossible.
func TestNoGoroutineLeakAfterTermination(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		n := core.NewNetwork()
		Fibonacci(n, 30, i%2 == 0)
		if err := n.Wait(); err != nil {
			t.Fatal(err)
		}
		n2 := core.NewNetwork()
		SieveFirstN(n2, 30, SieveIterative) // inserts ~30 Modulo processes
		if err := n2.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if !goroutineSettled(baseline) {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked: %d -> %d\n%s",
			baseline, runtime.NumGoroutine(), buf[:n])
	}
}

// Observability must not change the leak story: with the tracer
// enabled and a metrics HTTP listener serving during the run, Close
// must release the listener's goroutines and the network's processes
// must still all terminate.
func TestNoGoroutineLeakWhenInstrumented(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		n := core.NewNetwork()
		n.Obs().Tracer().Enable()
		hs, err := obs.ServeScope("127.0.0.1:0", n.Obs())
		if err != nil {
			t.Fatal(err)
		}
		SieveFirstN(n, 20, SieveIterative)
		if err := n.Wait(); err != nil {
			t.Fatal(err)
		}
		// Exercise the endpoints while live so handler goroutines exist.
		for _, path := range []string{"/metrics", "/trace"} {
			resp, err := http.Get("http://" + hs.Addr() + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			resp.Body.Close()
		}
		if err := hs.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !goroutineSettled(baseline) {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked with instrumentation: %d -> %d\n%s",
			baseline, runtime.NumGoroutine(), buf[:n])
	}
}
