package graphs

import (
	"runtime"
	"testing"
	"time"

	"dpn/internal/core"
)

// goroutineSettled waits for the goroutine count to drop back to (or
// below) the baseline, tolerating runtime jitter.
func goroutineSettled(baseline int) bool {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// Every process runs in its own goroutine (§3.2); the termination
// cascade of §3.4 must release all of them, including the goroutines
// of dynamically inserted processes. A leak here would make
// long-running signal-processing deployments impossible.
func TestNoGoroutineLeakAfterTermination(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		n := core.NewNetwork()
		Fibonacci(n, 30, i%2 == 0)
		if err := n.Wait(); err != nil {
			t.Fatal(err)
		}
		n2 := core.NewNetwork()
		SieveFirstN(n2, 30, SieveIterative) // inserts ~30 Modulo processes
		if err := n2.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if !goroutineSettled(baseline) {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked: %d -> %d\n%s",
			baseline, runtime.NumGoroutine(), buf[:n])
	}
}
