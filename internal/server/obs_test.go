package server

import (
	"strings"
	"testing"

	"dpn/internal/deadlock"
)

// The "metrics" RPC lets a coordinator scrape a remote node without a
// separate HTTP listener: the exposition travels over the existing
// compute-server connection, node label already applied.
func TestMetricsOverRPC(t *testing.T) {
	s := newTestServer(t, "obs")
	c := newTestClient(t, s)

	// Ping first so at least one RPC is counted.
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	text, err := c.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	node := s.Node().Broker.Addr()
	if !strings.Contains(text, `node="`+node+`"`) {
		t.Errorf("exposition missing node=%q label:\n%s", node, text)
	}
	if !strings.Contains(text, `dpn_server_rpcs_total{node="`+node+`",kind="ping"}`) {
		t.Errorf("exposition missing the ping RPC counter:\n%s", text)
	}
}

// GatherMetrics must merge the expositions of every peer — local
// wire.Nodes and remote server.Clients alike — into one document with
// per-node series, the §6.2 coordinator's global view.
func TestCoordinatorGatherMetrics(t *testing.T) {
	s := newTestServer(t, "remote")
	c := newTestClient(t, s)
	local := localNode(t)
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	local.Net.NewChannel("warm", 8) // give the local node a series too

	coord := deadlock.NewCoordinator(local, c)
	merged, err := coord.GatherMetrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{local.Broker.Addr(), s.Node().Broker.Addr()} {
		if !strings.Contains(merged, `node="`+node+`"`) {
			t.Errorf("merged exposition missing node %q:\n%s", node, merged)
		}
	}
	// Shared families must keep a single TYPE header after the merge.
	if got := strings.Count(merged, "# TYPE dpn_server_rpcs_total"); got > 1 {
		t.Errorf("TYPE header repeated %d times after merge", got)
	}
}

// A dead peer must fail the scrape loudly rather than yield a partial
// fleet view.
func TestGatherMetricsFailsOnDeadPeer(t *testing.T) {
	s := newTestServer(t, "gone")
	c := newTestClient(t, s)
	s.Close()
	coord := deadlock.NewCoordinator(c)
	if _, err := coord.GatherMetrics(); err == nil {
		t.Fatal("scrape of a closed server succeeded")
	}
}
