package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentClients races dozens of clients through
// register → lookup → list → unregister churn against one registry —
// the many-clients shape of §4.1. No registration may be lost while it
// is live (every lookup between a client's register and unregister must
// return exactly the registered address), list must never fail
// mid-churn, and the registry must drain to empty when every client
// has unregistered — each request is a short-lived connection, so FD
// use is bounded by the number of in-flight requests.
func TestRegistryConcurrentClients(t *testing.T) {
	reg, err := NewRegistry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	addr := reg.Addr()

	const (
		clients = 32
		names   = 12
		rounds  = 3
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fail := func(err error) {
				select {
				case errs <- err:
				default:
				}
			}
			for r := 0; r < rounds; r++ {
				for i := 0; i < names; i++ {
					name := fmt.Sprintf("c%d.s%d", c, i)
					want := fmt.Sprintf("10.0.%d.%d:9%d", c, i, r)
					if err := Register(addr, name, want); err != nil {
						fail(fmt.Errorf("register %s round %d: %w", name, r, err))
						return
					}
					got, err := Lookup(addr, name)
					if err != nil {
						fail(fmt.Errorf("lookup %s round %d: %w", name, r, err))
						return
					}
					if got != want {
						fail(fmt.Errorf("rendezvous lost: %s resolved to %q, want %q", name, got, want))
						return
					}
				}
				if _, _, err := List(addr); err != nil {
					fail(fmt.Errorf("list round %d: %w", r, err))
					return
				}
				for i := 0; i < names; i++ {
					name := fmt.Sprintf("c%d.s%d", c, i)
					if err := Unregister(addr, name); err != nil {
						fail(fmt.Errorf("unregister %s round %d: %w", name, r, err))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if left := reg.Entries(); len(left) != 0 {
		t.Fatalf("registry not drained after churn: %d entries remain: %v", len(left), left)
	}
}
