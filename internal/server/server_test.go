package server

import (
	"encoding/gob"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/factor"
	"dpn/internal/meta"
	"dpn/internal/proclib"
	"dpn/internal/wire"
)

func newTestServer(t *testing.T, name string) *Server {
	t.Helper()
	s, err := New(name, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newTestClient(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func localNode(t *testing.T) *wire.Node {
	t.Helper()
	n, err := wire.NewLocalNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestPingAndInfo(t *testing.T) {
	s := newTestServer(t, "alpha")
	c := newTestClient(t, s)
	name, err := c.Ping()
	if err != nil || name != "alpha" {
		t.Fatalf("Ping = %q, %v", name, err)
	}
	addr, err := c.BrokerAddr()
	if err != nil || addr != s.BrokerAddr() {
		t.Fatalf("BrokerAddr = %q, %v (want %q)", addr, err, s.BrokerAddr())
	}
	// Cached path.
	addr2, err := c.BrokerAddr()
	if err != nil || addr2 != addr {
		t.Fatal("cached BrokerAddr differs")
	}
}

// EchoTask is a trivial task for Call tests.
type EchoTask struct{ V int64 }

// Run implements meta.Task.
func (e *EchoTask) Run() (meta.Task, error) { return &EchoTask{V: e.V * 2}, nil }

func init() { gob.Register(&EchoTask{}) }

func TestSynchronousCall(t *testing.T) {
	s := newTestServer(t, "calc")
	c := newTestClient(t, s)
	res, err := c.Call(&EchoTask{V: 21})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.(*EchoTask).V; got != 42 {
		t.Fatalf("Call result = %d, want 42", got)
	}
}

func TestRunProcsAcrossServer(t *testing.T) {
	// The Figure 14 flow through the real compute-server RPC: a local
	// producer, a remote consumer, channel maintained automatically.
	s := newTestServer(t, "remote")
	c := newTestClient(t, s)
	local := localNode(t)

	ch := local.Net.NewChannel("ab", 64)
	vals := []int64{5, 10, 15, 20}
	src := &proclib.SliceSource{Values: vals, Out: ch.Writer()}
	sink := &proclib.Count{In: ch.Reader()}

	names, err := c.RunProcs(local, sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "Count" {
		t.Fatalf("spawned %v", names)
	}
	local.Net.Spawn(src)
	if err := local.Net.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	// The remote Count consumed every element; observe through the
	// server's node (same process in tests).
	var remoteCount *proclib.Count
	for _, chn := range s.Node().Net.Channels() {
		_ = chn
	}
	// Count was imported as a fresh object; find it via live procs is
	// impossible after exit, so check the live counter dropped to zero
	// and re-run a Call to ensure the server still works.
	if live, err := c.Live(); err != nil || live != 0 {
		t.Fatalf("Live = %d, %v", live, err)
	}
	_ = remoteCount
	if _, err := c.Call(&EchoTask{V: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedFibonacciTwoServers(t *testing.T) {
	// Figure 15's topology driven through compute servers: the whole
	// Fibonacci graph is built locally; the printing end goes to server
	// B; one duplicate stage goes to server C.
	sb := newTestServer(t, "B")
	sc := newTestServer(t, "C")
	cb := newTestClient(t, sb)
	cc := newTestClient(t, sc)
	local := localNode(t)
	n := local.Net

	ab := n.NewChannel("ab", 0)
	be := n.NewChannel("be", 0)
	cd := n.NewChannel("cd", 0)
	df := n.NewChannel("df", 0)
	ed := n.NewChannel("ed", 0)
	eg := n.NewChannel("eg", 0)
	fg := n.NewChannel("fg", 0)
	fh := n.NewChannel("fh", 0)
	gb := n.NewChannel("gb", 0)

	one1 := &proclib.Constant{Value: 1, Out: ab.Writer()}
	one1.Iterations = 1
	cons1 := &proclib.Cons{HeadIn: ab.Reader(), In: gb.Reader(), Out: be.Writer()}
	dup1 := &proclib.Duplicate{In: be.Reader(), Outs: []*core.WritePort{ed.Writer(), eg.Writer()}}
	add := &proclib.Add{InA: eg.Reader(), InB: fg.Reader(), Out: gb.Writer()}
	one2 := &proclib.Constant{Value: 1, Out: cd.Writer()}
	one2.Iterations = 1
	cons2 := &proclib.Cons{HeadIn: cd.Reader(), In: ed.Reader(), Out: df.Writer()}
	dup2 := &proclib.Duplicate{In: df.Reader(), Outs: []*core.WritePort{fh.Writer(), fg.Writer()}}
	sink := &proclib.Collect{In: fh.Reader()}
	sink.Iterations = 15

	// Ship the consumer to B first, then the second duplicate to C —
	// the Figure 15 double hop, with the fh channel redirected to a
	// direct C→B connection.
	if _, err := cb.RunProcs(local, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.RunProcs(local, dup2); err != nil {
		t.Fatal(err)
	}
	for _, p := range []any{one1, cons1, dup1, add, one2, cons2} {
		n.Spawn(p)
	}

	done := make(chan error, 1)
	go func() {
		if err := n.Wait(); err != nil {
			done <- err
			return
		}
		if err := sb.WaitIdle(); err != nil {
			done <- err
			return
		}
		done <- sc.WaitIdle()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("distributed fibonacci did not terminate")
	}
	// Find the Collect that ran on server B.
	want := []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610}
	got := findRemoteCollect(sb)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// findRemoteCollect digs the Collect results out of a server's node.
// In-process tests share memory with the server, so we can look at the
// spawned bodies directly.
func findRemoteCollect(s *Server) []int64 {
	for _, p := range s.spawnedBodies() {
		if c, ok := p.(*proclib.Collect); ok {
			return c.Values()
		}
	}
	return nil
}

func TestDistributedFactorizationDynamicWorkers(t *testing.T) {
	// The paper's §5.2 experiment in miniature: dynamic load balancing
	// with the workers executing on two remote compute servers.
	s1 := newTestServer(t, "w1")
	s2 := newTestServer(t, "w2")
	c1 := newTestClient(t, s1)
	c2 := newTestClient(t, s2)
	local := localNode(t)

	rnd := rand.New(rand.NewSource(7))
	key, err := factor.GenerateWeakKey(rnd, 96, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	dyn := meta.NewDynamic(local.Net, &factor.SearchSpace{N: key.N, Batch: 8}, 4, 0)
	var found *factor.Result
	dyn.Consumer.SetOnResult(func(ran, result meta.Task) {
		if r, ok := ran.(*factor.Result); ok && r.Found && found == nil {
			found = r
		}
	})
	// Workers 0,1 to server 1; workers 2,3 to server 2.
	if _, err := c1.RunProcs(local, dyn.Workers[0], dyn.Workers[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.RunProcs(local, dyn.Workers[2], dyn.Workers[3]); err != nil {
		t.Fatal(err)
	}
	local.Net.Spawn(dyn.Producer)
	local.Net.Spawn(dyn.Direct)
	local.Net.Spawn(dyn.Turnstile)
	local.Net.Spawn(dyn.IndexCons)
	local.Net.Spawn(dyn.Select)
	local.Net.Spawn(dyn.Consumer)

	done := make(chan error, 1)
	go func() { done <- local.Net.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("distributed factorization did not terminate")
	}
	if found == nil {
		t.Fatal("factor not found")
	}
	if found.P.Cmp(key.P) != 0 {
		t.Fatalf("found P=%v, want %v", found.P, key.P)
	}
}

func TestRegistry(t *testing.T) {
	r, err := NewRegistry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := Register(r.Addr(), "east", "10.0.0.1:99"); err != nil {
		t.Fatal(err)
	}
	if err := Register(r.Addr(), "west", "10.0.0.2:99"); err != nil {
		t.Fatal(err)
	}
	addr, err := Lookup(r.Addr(), "east")
	if err != nil || addr != "10.0.0.1:99" {
		t.Fatalf("Lookup = %q, %v", addr, err)
	}
	names, addrs, err := List(r.Addr())
	if err != nil || len(names) != 2 || names[0] != "east" || addrs[1] != "10.0.0.2:99" {
		t.Fatalf("List = %v %v %v", names, addrs, err)
	}
	if err := Unregister(r.Addr(), "east"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup(r.Addr(), "east"); err == nil {
		t.Fatal("unregistered name still resolves")
	}
	if len(r.Entries()) != 1 {
		t.Fatalf("Entries = %v", r.Entries())
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, "s")
	c := newTestClient(t, s)
	if _, err := c.roundTrip(&Request{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := c.roundTrip(&Request{Kind: "run"}); err == nil {
		t.Fatal("run without parcel accepted")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, err := New("x", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerAccessorsAndSpawn(t *testing.T) {
	s := newTestServer(t, "acc")
	if s.Name() != "acc" {
		t.Fatalf("Name = %q", s.Name())
	}
	c := newTestClient(t, s)
	local := localNode(t)
	// Spawn a channel-free process remotely (the paper's plain Runnable).
	if err := c.Spawn(local, &proclib.Discard{In: func() *core.ReadPort {
		ch := local.Net.NewChannel("feed", 64)
		go func() {
			ch.Writer().Write(make([]byte, 8))
			ch.Writer().Close()
		}()
		return ch.Reader()
	}()}); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestCallTaskErrorPropagates(t *testing.T) {
	s := newTestServer(t, "err")
	c := newTestClient(t, s)
	if _, err := c.Call(&BoomTask{}); err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
}

// BoomTask always fails.
type BoomTask struct{}

// Run implements meta.Task.
func (b *BoomTask) Run() (meta.Task, error) { return nil, errBoom }

var errBoom = errors.New("boom")

func init() { gob.Register(&BoomTask{}) }

func TestNewServerBadAddrs(t *testing.T) {
	if _, err := New("x", "256.0.0.1:bad", "127.0.0.1:0"); err == nil {
		t.Fatal("bad rpc addr accepted")
	}
	if _, err := New("x", "127.0.0.1:0", "256.0.0.1:bad"); err == nil {
		t.Fatal("bad broker addr accepted")
	}
}

func TestClientDeadlockPeerOverRPC(t *testing.T) {
	s := newTestServer(t, "peer")
	c := newTestClient(t, s)
	st, err := c.DeadlockStatus()
	if err != nil || st.Live != 0 {
		t.Fatalf("status: %+v, %v", st, err)
	}
	// Create a channel remotely by shipping a parcel whose channel stays.
	local := localNode(t)
	ch := local.Net.NewChannel("grown", 8)
	sink := &proclib.Collect{In: ch.Reader()}
	if _, err := c.RunProcs(local, sink); err != nil {
		t.Fatal(err)
	}
	// The imported reader side created a channel named "grown" on the server.
	got, err := c.GrowChannel("grown", 4096)
	if err != nil || got != 4096 {
		t.Fatalf("grow over RPC: %d, %v", got, err)
	}
	if _, err := c.GrowChannel("nope", 64); err == nil {
		t.Fatal("unknown channel accepted over RPC")
	}
	ch.Writer().Close()
	local.Net.Wait()
	s.WaitIdle()
}
