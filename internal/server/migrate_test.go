package server

import (
	"math/rand"
	"testing"
	"time"

	"dpn/internal/factor"
	"dpn/internal/meta"
)

// TestLiveWorkerMigration moves a busy factorization worker from the
// local machine to a compute server in the middle of the run — the
// §6.1 load-balancing scenario ("to have processes migrate from one
// server to another for load balancing"). The result stream must stay
// correct and ordered.
func TestLiveWorkerMigration(t *testing.T) {
	srv := newTestServer(t, "target")
	cl := newTestClient(t, srv)
	local := localNode(t)

	rnd := rand.New(rand.NewSource(21))
	// Plant the factor deep enough — and make each task slow enough
	// (256-bit prime) — that the migration reliably happens mid-search
	// even though the suspend handshake takes a few RPC round trips.
	key, err := factor.GenerateWeakKey(rnd, 256, 2000, 32)
	if err != nil {
		t.Fatal(err)
	}
	dyn := meta.NewDynamic(local.Net, &factor.SearchSpace{N: key.N, Batch: 32}, 2, 0)
	var found *factor.Result
	dyn.Consumer.SetOnResult(func(ran, result meta.Task) {
		if r, ok := ran.(*factor.Result); ok && r.Found && found == nil {
			found = r
		}
	})
	workerProc := local.Net.Spawn(dyn.Workers[0])
	local.Net.Spawn(dyn.Workers[1])
	local.Net.Spawn(dyn.Producer)
	local.Net.Spawn(dyn.Direct)
	local.Net.Spawn(dyn.Turnstile)
	local.Net.Spawn(dyn.IndexCons)
	local.Net.Spawn(dyn.Select)
	local.Net.Spawn(dyn.Consumer)

	// Let the search get going, then migrate worker 0 mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for dyn.Consumer.Consumed() < 20 {
		if found != nil {
			t.Fatal("factor found before migration; deepen the target")
		}
		if time.Now().After(deadline) {
			t.Fatal("search made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	names, err := cl.Migrate(local, workerProc)
	if err != nil {
		t.Fatalf("live migration failed: %v", err)
	}
	if len(names) != 1 || names[0] != "Worker" {
		t.Fatalf("migrated %v", names)
	}

	done := make(chan error, 1)
	go func() { done <- local.Net.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("search did not terminate after migration")
	}
	if found == nil {
		t.Fatal("factor not found after migration")
	}
	if found.P.Cmp(key.P) != 0 {
		t.Fatalf("found %v, want %v", found.P, key.P)
	}
	// The planted factor is in task 2000; the full sequence of results
	// up to it passed through the migrated worker's channels.
	if found.Index != 2000 {
		t.Fatalf("found at task %d, want 2000", found.Index)
	}
	if errs, _ := cl.Errors(); len(errs) != 0 {
		t.Fatalf("remote failures: %v", errs)
	}
}
