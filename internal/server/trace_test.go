package server

import (
	"encoding/json"
	"strings"
	"testing"

	"dpn/internal/obs"
	"dpn/internal/proclib"
)

// The PR's acceptance run: a two-node network with sampling enabled
// produces a merged Chrome trace in which a sampled batch's spans
// appear on both nodes in causal order — wire-out on the producer
// node strictly before wire-in on the consumer node, joined by a flow
// arrow, even though the two tracer epochs share no clock.
func TestTwoNodeMergedTraceCausalOrder(t *testing.T) {
	s := newTestServer(t, "remote")
	c := newTestClient(t, s)
	local := localNode(t)

	local.Obs().Tracer().Enable()
	s.Node().Obs().Tracer().Enable()
	local.Broker.SetTraceSampling(1)
	s.Node().Broker.SetTraceSampling(1)

	ch := local.Net.NewChannel("ab", 64)
	src := &proclib.SliceSource{Values: []int64{5, 10, 15, 20}, Out: ch.Writer()}
	sink := &proclib.Count{In: ch.Reader()}
	if _, err := c.RunProcs(local, sink); err != nil {
		t.Fatal(err)
	}
	local.Net.Spawn(src)
	if err := local.Net.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitIdle(); err != nil {
		t.Fatal(err)
	}

	// Gather the rings: the local node directly, the remote one over the
	// "trace" RPC — the same path dpnrun uses.
	localEvs := local.TraceEvents()
	remoteEvs, err := c.TraceEvents()
	if err != nil {
		t.Fatal(err)
	}

	// The sampled batch left a wire-out span locally and a wire-in span
	// remotely, with the same trace ID.
	ids := func(evs []obs.Event, detail string) map[int64]bool {
		m := map[int64]bool{}
		for _, ev := range evs {
			if ev.Type == obs.EvSpan && ev.Detail == detail {
				m[ev.Arg] = true
			}
		}
		return m
	}
	outs, ins := ids(localEvs, "wire-out"), ids(remoteEvs, "wire-in")
	if len(outs) == 0 || len(ins) == 0 {
		t.Fatalf("spans: %d wire-out local, %d wire-in remote", len(outs), len(ins))
	}
	shared := int64(0)
	for id := range outs {
		if ins[id] {
			shared = id
			break
		}
	}
	if shared == 0 {
		t.Fatalf("no trace ID crossed the wire: out=%v in=%v", outs, ins)
	}

	var b strings.Builder
	err = obs.WriteMergedTrace(&b, []obs.NodeTrace{
		{Node: "local", Events: localEvs},
		{Node: "remote", Events: remoteEvs},
	})
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	var outTS, inTS float64
	haveOut, haveIn, haveFlow := false, false, false
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "s" {
			haveFlow = true
		}
		if ev.Name != "span" || ev.Ph != "i" {
			continue
		}
		// JSON numbers are float64: 64-bit trace IDs round; compare in
		// the rounded space.
		if id, ok := ev.Args["arg"].(float64); !ok || id != float64(shared) {
			continue
		}
		switch ev.Args["detail"] {
		case "wire-out":
			outTS, haveOut = ev.TS, true
			if ev.PID != 1 {
				t.Errorf("wire-out on pid %d, want 1 (local)", ev.PID)
			}
		case "wire-in":
			inTS, haveIn = ev.TS, true
			if ev.PID != 2 {
				t.Errorf("wire-in on pid %d, want 2 (remote)", ev.PID)
			}
		}
	}
	if !haveOut || !haveIn {
		t.Fatalf("merged trace lost the sampled batch (out=%v in=%v)", haveOut, haveIn)
	}
	if !(inTS > outTS) {
		t.Fatalf("causal order violated after merge: wire-in %v <= wire-out %v", inTS, outTS)
	}
	if !haveFlow {
		t.Fatal("no flow arrows in the merged trace")
	}
}

// The "trace" RPC on a node that never enabled its tracer returns an
// empty ring, not an error.
func TestTraceRPCDisabledTracer(t *testing.T) {
	s := newTestServer(t, "quiet")
	c := newTestClient(t, s)
	evs, err := c.TraceEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("disabled tracer returned %d events", len(evs))
	}
}
