// Package server implements the paper's generic compute server (§4.1)
// and name registry. A compute server accepts serialized pieces of
// process-network program graphs (parcels) and spawns them, or runs a
// single Task synchronously and returns its result — the two remote
// methods of the paper's Server interface:
//
//	void run(Runnable target)  →  Kind "run"  (asynchronous parcel spawn)
//	Object run(Task target)    →  Kind "call" (synchronous task + result)
//
// Where the paper uses RMI and an RMI registry, this implementation
// uses a small gob-over-TCP protocol and a registry service mapping
// server names to addresses. Java's dynamic code download (the RMI
// codebase) has no Go equivalent: every node runs the same statically
// linked binary, and processes move as data with behaviour resolved by
// gob-registered types (see DESIGN.md, substitution 3).
package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"dpn/internal/core"
	"dpn/internal/deadlock"
	"dpn/internal/meta"
	"dpn/internal/obs"
	"dpn/internal/wire"
)

// Request is one RPC request.
type Request struct {
	Kind     string // "ping", "info", "run", "call", "live", "errors", "dstatus", "grow", "metrics", "trace"
	Parcel   *wire.Parcel
	TaskBlob []byte
	Channel  string // "grow": channel name
	NewCap   int    // "grow": requested capacity
}

// Response is one RPC response.
type Response struct {
	Err        string
	BrokerAddr string
	Name       string
	ResultBlob []byte
	Live       int64
	ProcNames  []string
	Status     *deadlock.NodeStatus
	GrownCap   int
	// MetricsText carries the node's Prometheus exposition ("metrics").
	MetricsText string
	// Events carries the node's trace-ring snapshot ("trace"), used by
	// the multi-node Chrome-trace merge (obs.WriteMergedTrace).
	Events []obs.Event
}

// Server is a generic compute server: one process network, one broker,
// one RPC listener.
type Server struct {
	name string
	node *wire.Node
	ln   net.Listener

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	spawned []any
}

// New starts a compute server named name with an RPC listener on
// rpcAddr and a channel broker on brokerAddr (pass "127.0.0.1:0" to
// pick free ports).
func New(name, rpcAddr, brokerAddr string) (*Server, error) {
	node, err := wire.NewLocalNode(brokerAddr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", rpcAddr)
	if err != nil {
		node.Close()
		return nil, err
	}
	node.Obs().Registry().Help("dpn_server_rpcs_total",
		"Compute-server RPC requests handled, by kind.")
	s := &Server{name: name, node: node, ln: ln, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Name returns the server's registry name.
func (s *Server) Name() string { return s.name }

// Addr returns the RPC address clients dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// BrokerAddr returns the channel broker's address.
func (s *Server) BrokerAddr() string { return s.node.Broker.Addr() }

// Node exposes the server's node for tests and embedded use.
func (s *Server) Node() *wire.Node { return s.node }

// WaitIdle blocks until every process spawned on this server has
// finished.
func (s *Server) WaitIdle() error { return s.node.Net.Wait() }

// spawnedBodies returns the process values spawned via "run" requests;
// in-process tests use it to observe remote results.
func (s *Server) spawnedBodies() []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]any(nil), s.spawned...)
}

// Close stops the RPC listener and the broker. Running processes are
// not interrupted (they stop through channel termination, §3.4).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.node.Close()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	scope := s.node.Obs()
	scope.Counter("dpn_server_rpcs_total", obs.L("kind", req.Kind)).Inc()
	scope.Record(obs.EvRPC, req.Kind, "", 0)
	switch req.Kind {
	case "metrics":
		txt, err := s.node.MetricsText()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{MetricsText: txt}
	case "trace":
		return &Response{Events: s.node.TraceEvents()}
	case "ping":
		return &Response{Name: s.name}
	case "info":
		return &Response{Name: s.name, BrokerAddr: s.BrokerAddr()}
	case "live":
		return &Response{Live: s.node.Net.Live()}
	case "errors":
		var msgs []string
		for _, err := range s.node.Net.Errors() {
			msgs = append(msgs, err.Error())
		}
		return &Response{ProcNames: msgs}
	case "dstatus":
		st, err := s.node.DeadlockStatus()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Status: &st}
	case "grow":
		got, err := s.node.GrowChannel(req.Channel, req.NewCap)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{GrownCap: got}
	case "run":
		if req.Parcel == nil {
			return &Response{Err: "run: missing parcel"}
		}
		procs, err := wire.SpawnImported(s.node, req.Parcel)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		names := make([]string, len(procs))
		s.mu.Lock()
		for i, p := range procs {
			names[i] = p.Name()
			s.spawned = append(s.spawned, p.Body())
		}
		s.mu.Unlock()
		return &Response{ProcNames: names}
	case "call":
		task, err := decodeTask(req.TaskBlob)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		result, err := task.Run()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		blob, err := encodeTask(result)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{ResultBlob: blob}
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
	}
}

func encodeTask(t meta.Task) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeTask(blob []byte) (meta.Task, error) {
	var t meta.Task
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&t); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, errors.New("server: nil task")
	}
	return t, nil
}

// Client talks to one compute server over a persistent connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	brokerAddr string
}

// Dial connects to the compute server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Ping checks liveness and returns the server's name.
func (c *Client) Ping() (string, error) {
	resp, err := c.roundTrip(&Request{Kind: "ping"})
	if err != nil {
		return "", err
	}
	return resp.Name, nil
}

// BrokerAddr returns (and caches) the server's channel broker address.
func (c *Client) BrokerAddr() (string, error) {
	if c.brokerAddr != "" {
		return c.brokerAddr, nil
	}
	resp, err := c.roundTrip(&Request{Kind: "info"})
	if err != nil {
		return "", err
	}
	c.brokerAddr = resp.BrokerAddr
	return resp.BrokerAddr, nil
}

// Live reports how many processes are currently executing remotely.
func (c *Client) Live() (int64, error) {
	resp, err := c.roundTrip(&Request{Kind: "live"})
	if err != nil {
		return 0, err
	}
	return resp.Live, nil
}

// Errors returns the failure messages of processes that have failed on
// the server so far (process crashes stay on the server in the paper's
// design; this call makes them observable to clients).
func (c *Client) Errors() ([]string, error) {
	resp, err := c.roundTrip(&Request{Kind: "errors"})
	if err != nil {
		return nil, err
	}
	return resp.ProcNames, nil
}

// RunParcel ships a pre-exported parcel and spawns it remotely,
// returning the spawned process names. Like the paper's
// run(Runnable), it does not wait for the processes to finish.
func (c *Client) RunParcel(p *wire.Parcel) ([]string, error) {
	resp, err := c.roundTrip(&Request{Kind: "run", Parcel: p})
	if err != nil {
		return nil, err
	}
	return resp.ProcNames, nil
}

// RunProcs exports procs from the local node and spawns them on the
// remote server, automatically reconnecting every boundary channel
// (§4.2). The procs must not have been spawned locally.
func (c *Client) RunProcs(local *wire.Node, procs ...any) ([]string, error) {
	brokerAddr, err := c.BrokerAddr()
	if err != nil {
		return nil, err
	}
	parcel, err := wire.Export(local, brokerAddr, procs...)
	if err != nil {
		return nil, err
	}
	return c.RunParcel(parcel)
}

// Call runs a single task on the server synchronously and returns its
// result — the paper's Object run(Task) method.
func (c *Client) Call(t meta.Task) (meta.Task, error) {
	blob, err := encodeTask(t)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&Request{Kind: "call", TaskBlob: blob})
	if err != nil {
		return nil, err
	}
	return decodeTask(resp.ResultBlob)
}

// Spawn is a helper that runs a Runnable-style process remotely with no
// channels — the paper's simplest use of a compute server.
func (c *Client) Spawn(local *wire.Node, p any) error {
	_, err := c.RunProcs(local, p)
	return err
}

func init() {
	gob.Register(&wire.Parcel{})
}

// Migrate moves a running process from the local node to this server
// (§6.1 of the paper, implemented): suspend at a step boundary, eject,
// export, ship, and respawn remotely. It returns the remote process
// names.
func (c *Client) Migrate(local *wire.Node, proc *core.Proc) ([]string, error) {
	brokerAddr, err := c.BrokerAddr()
	if err != nil {
		return nil, err
	}
	parcel, err := wire.Migrate(local, brokerAddr, proc)
	if err != nil {
		return nil, err
	}
	return c.RunParcel(parcel)
}

// DeadlockStatus implements deadlock.Peer over the RPC, letting a
// coordinator on one machine watch compute servers on others (§6.2).
func (c *Client) DeadlockStatus() (deadlock.NodeStatus, error) {
	resp, err := c.roundTrip(&Request{Kind: "dstatus"})
	if err != nil {
		return deadlock.NodeStatus{}, err
	}
	if resp.Status == nil {
		return deadlock.NodeStatus{}, errors.New("server: missing status")
	}
	return *resp.Status, nil
}

// GrowChannel implements deadlock.Peer over the RPC.
func (c *Client) GrowChannel(name string, newCap int) (int, error) {
	resp, err := c.roundTrip(&Request{Kind: "grow", Channel: name, NewCap: newCap})
	if err != nil {
		return 0, err
	}
	return resp.GrownCap, nil
}

// MetricsText implements deadlock.MetricsSource over the RPC: it
// returns the remote node's Prometheus exposition, so a coordinator can
// merge the metrics of a whole distributed graph (Coordinator.
// GatherMetrics).
func (c *Client) MetricsText() (string, error) {
	resp, err := c.roundTrip(&Request{Kind: "metrics"})
	if err != nil {
		return "", err
	}
	return resp.MetricsText, nil
}

// TraceEvents returns a snapshot of the remote node's trace ring. A
// driver collects one snapshot per node — its own via Node.TraceEvents,
// each server's via this call — and hands the set to
// obs.WriteMergedTrace, which aligns the per-node clocks on the causal
// wire-out → wire-in span pairs of sampled conduit traffic.
func (c *Client) TraceEvents() ([]obs.Event, error) {
	resp, err := c.roundTrip(&Request{Kind: "trace"})
	if err != nil {
		return nil, err
	}
	return resp.Events, nil
}
