package server

import (
	"math/rand"
	"testing"
	"time"

	"dpn/internal/factor"
	"dpn/internal/meta"
)

// Regression test: shipping each worker with its own Export call (and
// its own client connection), as cmd/dpnrun does, must behave the same
// as shipping them together.
func TestDistributedFactorizationSeparateExports(t *testing.T) {
	s1 := newTestServer(t, "w1")
	s2 := newTestServer(t, "w2")
	local := localNode(t)

	rnd := rand.New(rand.NewSource(11))
	key, err := factor.GenerateWeakKey(rnd, 192, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	dyn := meta.NewDynamic(local.Net, &factor.SearchSpace{N: key.N, Batch: 8}, 4, 0)
	var found *factor.Result
	dyn.Consumer.SetOnResult(func(ran, result meta.Task) {
		if r, ok := ran.(*factor.Result); ok && r.Found && found == nil {
			found = r
		}
	})
	addrs := []string{s1.Addr(), s2.Addr(), s1.Addr(), s2.Addr()}
	for i, w := range dyn.Workers {
		cl, err := Dial(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.RunProcs(local, w); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		cl.Close()
	}
	local.Net.Spawn(dyn.Producer)
	local.Net.Spawn(dyn.Direct)
	local.Net.Spawn(dyn.Turnstile)
	local.Net.Spawn(dyn.IndexCons)
	local.Net.Spawn(dyn.Select)
	local.Net.Spawn(dyn.Consumer)

	done := make(chan error, 1)
	go func() { done <- local.Net.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("did not terminate")
	}
	if found == nil {
		t.Fatalf("factor not found; consumer ran %d tasks", dyn.Consumer.Consumed())
	}
	if found.P.Cmp(key.P) != 0 {
		t.Fatalf("found %v, want %v", found.P, key.P)
	}
}
