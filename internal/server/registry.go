package server

import (
	"encoding/gob"
	"errors"
	"net"
	"sort"
	"sync"
)

// Registry is the RMI-registry analog: a name service mapping compute
// server names to their RPC addresses, so client applications can
// locate remote compute servers (§4.1).
type Registry struct {
	ln net.Listener

	mu      sync.Mutex
	entries map[string]string
	closed  bool
}

type regRequest struct {
	Kind string // "register", "unregister", "lookup", "list"
	Name string
	Addr string
}

type regResponse struct {
	Err   string
	Addr  string
	Names []string
	Addrs []string
}

// NewRegistry starts a registry listening on addr.
func NewRegistry(addr string) (*Registry, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &Registry{ln: ln, entries: make(map[string]string)}
	go r.acceptLoop()
	return r, nil
}

// Addr returns the registry's listen address.
func (r *Registry) Addr() string { return r.ln.Addr().String() }

// Close stops the registry.
func (r *Registry) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.ln.Close()
}

// Entries returns a snapshot of the registered servers.
func (r *Registry) Entries() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.entries))
	for k, v := range r.entries {
		out[k] = v
	}
	return out
}

func (r *Registry) acceptLoop() {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		go r.serveConn(conn)
	}
}

func (r *Registry) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req regRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp regResponse
		switch req.Kind {
		case "register":
			r.mu.Lock()
			r.entries[req.Name] = req.Addr
			r.mu.Unlock()
		case "unregister":
			r.mu.Lock()
			delete(r.entries, req.Name)
			r.mu.Unlock()
		case "lookup":
			r.mu.Lock()
			addr, ok := r.entries[req.Name]
			r.mu.Unlock()
			if !ok {
				resp.Err = "registry: unknown server " + req.Name
			} else {
				resp.Addr = addr
			}
		case "list":
			r.mu.Lock()
			for name := range r.entries {
				resp.Names = append(resp.Names, name)
			}
			r.mu.Unlock()
			sort.Strings(resp.Names)
			for _, name := range resp.Names {
				r.mu.Lock()
				resp.Addrs = append(resp.Addrs, r.entries[name])
				r.mu.Unlock()
			}
		default:
			resp.Err = "registry: unknown request " + req.Kind
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func regRoundTrip(registryAddr string, req *regRequest) (*regResponse, error) {
	conn, err := net.Dial("tcp", registryAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, err
	}
	var resp regResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Register announces a compute server to the registry.
func Register(registryAddr, name, serverAddr string) error {
	_, err := regRoundTrip(registryAddr, &regRequest{Kind: "register", Name: name, Addr: serverAddr})
	return err
}

// Unregister removes a compute server from the registry.
func Unregister(registryAddr, name string) error {
	_, err := regRoundTrip(registryAddr, &regRequest{Kind: "unregister", Name: name})
	return err
}

// Lookup resolves a compute server name to its RPC address.
func Lookup(registryAddr, name string) (string, error) {
	resp, err := regRoundTrip(registryAddr, &regRequest{Kind: "lookup", Name: name})
	if err != nil {
		return "", err
	}
	return resp.Addr, nil
}

// List returns the registered server names and addresses.
func List(registryAddr string) (names, addrs []string, err error) {
	resp, err := regRoundTrip(registryAddr, &regRequest{Kind: "list"})
	if err != nil {
		return nil, nil, err
	}
	return resp.Names, resp.Addrs, nil
}
