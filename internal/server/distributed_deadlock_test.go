package server

import (
	"encoding/gob"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/deadlock"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

// TestDistributedDeadlockResolution reconstructs Figure 13 *across two
// nodes*: the integer source and the mod-splitter run locally; the
// ordered merge runs on a compute server. The "other values" path must
// buffer N−1 elements per round, and its capacity — local pipe + TCP
// buffers + remote pipe — is deliberately overwhelmed, so the
// distributed graph write-blocks into an artificial deadlock that no
// single node can see in full. The coordinator (the §6.2 future work)
// detects global quiescence over the RPC and grows channels until the
// graph completes.
func TestDistributedDeadlockResolution(t *testing.T) {
	srv := newTestServer(t, "merge-host")
	cl := newTestClient(t, srv)
	local := localNode(t)

	// One "round": 1 multiple + (rounds*perRound - 1) others. The
	// others path must hold everything before the merge reads any,
	// which far exceeds pipe + socket capacity.
	const perRound = 60000
	const total = perRound

	src := local.Net.NewChannel("ints", 4096)
	mul := local.Net.NewChannel("mul", 1024)
	oth := local.Net.NewChannel("oth", 1024)

	seq := &proclib.Sequence{From: 1, Out: src.Writer()}
	seq.Iterations = total
	split := &proclib.ModSplit{N: perRound, In: src.Reader(), OutMultiple: mul.Writer(), OutOther: oth.Writer()}
	merge := &roundMerge{InMul: mul.Reader(), InOth: oth.Reader(), N: perRound}

	// The merge moves to the server; both of its channels now span TCP.
	if _, err := cl.RunProcs(local, merge); err != nil {
		t.Fatal(err)
	}
	local.Net.Spawn(seq)
	local.Net.Spawn(split)

	coord := deadlock.NewCoordinator(local, cl)
	coord.Settle = 5 * time.Millisecond
	coord.Poll = 5 * time.Millisecond
	coord.Start()
	defer coord.Stop()

	done := make(chan error, 1)
	go func() {
		if err := local.Net.Wait(); err != nil {
			done <- err
			return
		}
		done <- srv.WaitIdle()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("distributed deadlock unresolved (resolutions so far: %d)", coord.Resolutions())
	}
	if coord.Resolutions() == 0 {
		t.Fatal("expected the coordinator to grow at least one channel")
	}
	t.Logf("coordinator resolutions: %d", coord.Resolutions())
	if errs, _ := cl.Errors(); len(errs) != 0 {
		t.Fatalf("remote failures: %v", errs)
	}
}

// roundMerge is the Figure 13 merge: per round it reads one multiple
// first, then N−1 other values — the read order that deadlocks when
// the others channel is too small.
type roundMerge struct {
	core.Iterative
	InMul *core.ReadPort
	InOth *core.ReadPort
	N     int64
	Seen  int64
}

func (m *roundMerge) Step(env *core.Env) error {
	r := tokenReader(m.InMul)
	if _, err := r.ReadInt64(); err != nil {
		return err
	}
	m.Seen++
	ro := tokenReader(m.InOth)
	for i := int64(0); i < m.N-1; i++ {
		if _, err := ro.ReadInt64(); err != nil {
			return err
		}
		m.Seen++
	}
	return nil
}

func TestCoordinatorTerminatedAndRunningStates(t *testing.T) {
	local := localNode(t)
	coord := deadlock.NewCoordinator(local)
	st, err := coord.Check()
	if err != nil || st != deadlock.StatusTerminated {
		t.Fatalf("empty: %v, %v", st, err)
	}
	ch := local.Net.NewChannel("c", 1024)
	s := &proclib.Sequence{From: 0, Out: ch.Writer()}
	s.Iterations = 1_000_000
	local.Net.Spawn(s)
	local.Net.Spawn(&proclib.Discard{In: ch.Reader()})
	st, err = coord.Check()
	if err != nil {
		t.Fatal(err)
	}
	if st == deadlock.StatusTrueDeadlock {
		t.Fatal("busy network misreported as deadlocked")
	}
	local.Net.Wait()
}

// tokenReader is a short alias used by roundMerge.
func tokenReader(p *core.ReadPort) *token.Reader { return token.NewReader(p) }

func init() { gob.Register(&roundMerge{}) }
