package cluster

import (
	"fmt"
	"io"
)

// WriteCurvesCSV emits the Figure 19/20 series as CSV (one row per
// worker count) for external plotting: workers, ideal/static/dynamic
// elapsed minutes, ideal/static/dynamic normalized speed.
func WriteCurvesCSV(out io.Writer, cfg Config) error {
	rows, err := Curves(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, "workers,ideal_min,static_min,dynamic_min,ideal_speed,static_speed,dynamic_speed"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(out, "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.Workers, r.IdealTime, r.StaticTime, r.DynamicTime,
			r.IdealSpeed, r.StaticSpeed, r.DynamicSpeed); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable2CSV emits Table 2 (simulated and paper values side by
// side) as CSV.
func WriteTable2CSV(out io.Writer, cfg Config) error {
	rows, err := Table2(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, "workers,sim_ideal_min,sim_static_min,sim_dynamic_min,paper_ideal_min,paper_static_min,paper_dynamic_min"); err != nil {
		return err
	}
	for i, r := range rows {
		p := PaperTable2[i]
		if _, err := fmt.Fprintf(out, "%d,%.4f,%.4f,%.4f,%.2f,%.2f,%.2f\n",
			r.Workers, r.IdealTime, r.StaticTime, r.DynamicTime,
			p.IdealTime, p.StaticTime, p.DynamicTime); err != nil {
			return err
		}
	}
	return nil
}
