package cluster

import (
	"strings"
	"testing"
)

func TestWriteCurvesCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCurvesCSV(&sb, PaperConfig()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 35 { // header + 34 worker counts
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workers,ideal_min") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") || !strings.HasPrefix(lines[34], "34,") {
		t.Fatalf("rows: %q / %q", lines[1], lines[34])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 6 {
			t.Fatalf("row %q has %d commas", l, got)
		}
	}
}

func TestWriteTable2CSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable2CSV(&sb, PaperConfig()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 7 { // header + 6 worker counts
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[6], "32,") {
		t.Fatalf("last row: %q", lines[6])
	}
}
