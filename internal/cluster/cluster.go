// Package cluster simulates the paper's evaluation environment: the
// heterogeneous laboratory cluster of §5.2 (five CPU classes, 25
// machines, 34 CPUs on 100 Mb/s switched ethernet). The experiments in
// Tables 1–2 and Figures 19–20 depend on hardware heterogeneity that a
// single-CPU reproduction machine cannot provide, so this package
// substitutes a discrete-event simulation: virtual workers execute the
// 2048-task factorization workload under the same three scheduling
// regimes the paper measures —
//
//   - Ideal: perfect parallelism, no overhead (the paper's computed
//     bound: the speed of W workers is the sum of their CPU speeds).
//   - Static: equal task counts per worker (Scatter/Gather, Figure 16);
//     the elapsed time is governed by the slowest CPU in use.
//   - Dynamic: on-demand distribution (Direct + indexed merge,
//     Figure 17); each worker receives a new task when it completes
//     one, so faster CPUs process more tasks.
//
// The overhead model has two calibrated components, following the
// paper's own analysis (§5.2): a per-task serialization/communication
// factor (the 6–7 % measured at one worker) and a serial startup cost
// per worker ("this startup overhead increases as the number of
// workers increases and accounts for virtually the entire difference
// between the ideal case and the dynamically load balanced case").
package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Class describes one CPU class of Table 1.
type Class struct {
	Name    string
	SeqTime float64 // minutes for the full workload run sequentially (Table 1)
	Count   int     // CPUs of this class available as workers
	Desc    string
}

// Speed returns the class speed normalized to class C = 1.00, exactly
// as the paper normalizes ("speeds normalized to a 1 GHz Pentium
// III").
func (c Class) Speed(refSeqTime float64) float64 { return refSeqTime / c.SeqTime }

// PaperClasses reproduces Table 1's five CPU classes. The class D
// speed cell is blank in the paper; it follows from its time
// (22.50/22.78 ≈ 0.99). CPU counts are inferred from the worker
// allocation the paper describes: the ideal-speed inflection at 7→8
// workers places 1 A and 6 B CPUs before the first C; the inflection
// at 26→27 workers places the first class-E CPU at position 27, so
// classes A–D contribute 26 CPUs (1+6+15+4) and the 8-way class-E
// machine completes the 34.
var PaperClasses = []Class{
	{Name: "A", SeqTime: 11.63, Count: 1, Desc: "2.4 GHz Pentium 4"},
	{Name: "B", SeqTime: 13.13, Count: 6, Desc: "2.2 GHz Pentium 4"},
	{Name: "C", SeqTime: 22.50, Count: 15, Desc: "1.0 GHz Pentium III"},
	{Name: "D", SeqTime: 22.78, Count: 4, Desc: "1.0 GHz Pentium III (dual)"},
	{Name: "E", SeqTime: 28.14, Count: 8, Desc: "8 × 700 MHz Pentium III Xeon"},
}

// Config parameterizes the simulated experiment.
type Config struct {
	Classes    []Class
	RefSeqTime float64 // sequential time of the reference class (C), minutes
	TotalTasks int     // worker tasks in the workload (the paper uses 2048)

	// CommFactorDynamic is the per-task serialization/communication
	// overhead of the dynamic composition, as a fraction of compute
	// time (the paper measures 6–7 % at one worker).
	CommFactorDynamic float64
	// CommFactorStatic is the same for the static composition, which
	// has less bookkeeping (paper: 12.15/11.63 − 1 ≈ 4.5 %).
	CommFactorStatic float64
	// StartupPerWorker is the serial cost, in minutes, of constructing
	// and distributing one worker process to its compute server.
	StartupPerWorker float64
}

// PaperConfig returns the configuration calibrated against the paper's
// published numbers.
func PaperConfig() Config {
	return Config{
		Classes:           PaperClasses,
		RefSeqTime:        22.50,
		TotalTasks:        2048,
		CommFactorDynamic: 0.065,
		CommFactorStatic:  0.045,
		StartupPerWorker:  0.0028,
	}
}

// SkewedConfig returns a deliberately skewed synthetic cluster for the
// elasticity experiments: five single-CPU speed classes spanning a 16×
// spread (4, 2, 1, 0.5, 0.25 relative to the reference class). With
// one CPU per class the static scheme's lock-step rotation is pinned to
// the 0.25× straggler while the on-demand scheme lets the 4× CPU race
// ahead — the widest static-vs-dynamic gap the five-class shape can
// express, which is what the dpnbench skewed-cluster scenario measures
// against real sleep-workers.
func SkewedConfig() Config {
	ref := 20.0
	return Config{
		Classes: []Class{
			{Name: "S4", SeqTime: ref / 4, Count: 1, Desc: "4× reference"},
			{Name: "S2", SeqTime: ref / 2, Count: 1, Desc: "2× reference"},
			{Name: "S1", SeqTime: ref, Count: 1, Desc: "reference"},
			{Name: "S05", SeqTime: ref / 0.5, Count: 1, Desc: "0.5× reference"},
			{Name: "S025", SeqTime: ref / 0.25, Count: 1, Desc: "0.25× straggler"},
		},
		RefSeqTime:        ref,
		TotalTasks:        512,
		CommFactorDynamic: 0.065,
		CommFactorStatic:  0.045,
		StartupPerWorker:  0.0028,
	}
}

// WorkerSpeeds lists the speeds of the first n workers, allocated
// fastest-first as in the paper ("CPUs in the fastest categories are
// used first").
func (cfg Config) WorkerSpeeds(n int) ([]float64, error) {
	classes := append([]Class(nil), cfg.Classes...)
	sort.SliceStable(classes, func(i, j int) bool {
		return classes[i].SeqTime < classes[j].SeqTime
	})
	var speeds []float64
	for _, c := range classes {
		for i := 0; i < c.Count; i++ {
			speeds = append(speeds, c.Speed(cfg.RefSeqTime))
		}
	}
	if n > len(speeds) {
		return nil, fmt.Errorf("cluster: %d workers requested, only %d CPUs available", n, len(speeds))
	}
	return speeds[:n], nil
}

// MaxWorkers reports the total CPU count.
func (cfg Config) MaxWorkers() int {
	n := 0
	for _, c := range cfg.Classes {
		n += c.Count
	}
	return n
}

// Policy selects the load-balancing scheme.
type Policy int

const (
	// Ideal is the paper's theoretical bound.
	Ideal Policy = iota
	// Static is equal pre-assignment (Figure 16).
	Static
	// Dynamic is on-demand distribution (Figure 17).
	Dynamic
)

func (p Policy) String() string {
	switch p {
	case Ideal:
		return "ideal"
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Result is one simulated run.
type Result struct {
	Policy  Policy
	Workers int
	Elapsed float64 // minutes
	Speed   float64 // normalized speed = RefSeqTime / Elapsed
	// TasksPerWorker records how many tasks each worker executed (nil
	// for Ideal).
	TasksPerWorker []int
}

// Simulate runs the workload with the given policy and worker count.
func Simulate(cfg Config, policy Policy, workers int) (Result, error) {
	speeds, err := cfg.WorkerSpeeds(workers)
	if err != nil {
		return Result{}, err
	}
	res := Result{Policy: policy, Workers: workers}
	switch policy {
	case Ideal:
		total := 0.0
		for _, s := range speeds {
			total += s
		}
		res.Elapsed = cfg.RefSeqTime / total
		res.Speed = total
		return res, nil
	case Static:
		res.Elapsed, res.TasksPerWorker = cfg.simulateStatic(speeds)
	case Dynamic:
		res.Elapsed, res.TasksPerWorker = cfg.simulateDynamic(speeds)
	default:
		return Result{}, fmt.Errorf("cluster: unknown policy %v", policy)
	}
	res.Speed = cfg.RefSeqTime / res.Elapsed
	return res, nil
}

// taskDuration returns the simulated time one task takes on a worker
// of the given speed under the given per-task overhead factor.
func (cfg Config) taskDuration(speed, commFactor float64) float64 {
	compute := cfg.RefSeqTime / float64(cfg.TotalTasks) / speed
	return compute * (1 + commFactor)
}

// simulateStatic pre-assigns tasks round-robin (Scatter) and collects
// them in lock-step (Gather): the run ends when the last worker
// finishes its fixed share, so the slowest CPU governs the makespan.
func (cfg Config) simulateStatic(speeds []float64) (float64, []int) {
	w := len(speeds)
	counts := make([]int, w)
	for t := 0; t < cfg.TotalTasks; t++ {
		counts[t%w]++
	}
	end := 0.0
	for i, s := range speeds {
		start := float64(i+1) * cfg.StartupPerWorker
		finish := start + float64(counts[i])*cfg.taskDuration(s, cfg.CommFactorStatic)
		end = math.Max(end, finish)
	}
	return end, counts
}

// completion is a pending task completion in the event queue.
type completion struct {
	at     float64
	worker int
}

type completionHeap []completion

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// simulateDynamic is the discrete-event simulation of the on-demand
// composition: every completion event hands the finishing worker the
// next task, exactly as the Turnstile's index stream drives the Direct
// process (Figures 17–18).
func (cfg Config) simulateDynamic(speeds []float64) (float64, []int) {
	w := len(speeds)
	counts := make([]int, w)
	var q completionHeap
	remaining := cfg.TotalTasks
	// Initial distribution: one task per worker, staggered by the
	// serial startup of constructing and shipping each worker.
	for i := 0; i < w && remaining > 0; i++ {
		start := float64(i+1) * cfg.StartupPerWorker
		heap.Push(&q, completion{at: start + cfg.taskDuration(speeds[i], cfg.CommFactorDynamic), worker: i})
		counts[i]++
		remaining--
	}
	end := 0.0
	for q.Len() > 0 {
		c := heap.Pop(&q).(completion)
		end = math.Max(end, c.at)
		if remaining > 0 {
			heap.Push(&q, completion{
				at:     c.at + cfg.taskDuration(speeds[c.worker], cfg.CommFactorDynamic),
				worker: c.worker,
			})
			counts[c.worker]++
			remaining--
		}
	}
	return end, counts
}
