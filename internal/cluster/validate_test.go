package cluster

import (
	"encoding/gob"
	"sync/atomic"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/meta"
	"dpn/internal/token"
)

// This file cross-validates the discrete-event simulator against the
// *real* process-network runtime: the same heterogeneous-worker
// experiment runs (a) in the simulator and (b) as an actual
// meta.Static/meta.Dynamic network whose workers emulate CPU-speed
// differences by sleeping (sleeping workers overlap freely, so real
// wall-clock parallel behaviour is measurable even on one CPU). The
// measured static/dynamic makespans must agree with the simulator's
// predictions, which is the evidence that substituting the paper's
// cluster with the simulator preserves the relevant behaviour
// (DESIGN.md substitution 1).

// sleepTask models one unit of work taking BaseMS/speed milliseconds.
type sleepTask struct {
	ID     int64
	Micros int64
}

// Run implements meta.Task. The duration is fixed per task; the
// *worker* adds the speed scaling (heterogeneity lives in the CPU, not
// the task, exactly as in the paper's cluster).
func (t *sleepTask) Run() (meta.Task, error) {
	return &sleepDone{ID: t.ID}, nil
}

type sleepDone struct{ ID int64 }

func (d *sleepDone) Run() (meta.Task, error) { return nil, nil }

func init() {
	gob.Register(&sleepTask{})
	gob.Register(&sleepDone{})
}

type sleepSource struct {
	total, next int64
	micros      int64
}

func (s *sleepSource) Run() (meta.Task, error) {
	if s.next >= s.total {
		return nil, nil
	}
	s.next++
	return &sleepTask{ID: s.next - 1, Micros: s.micros}, nil
}

// slowWorker is a generic worker whose execution rate is divided by
// Speed — a class-E CPU next to a class-A one.
type slowWorker struct {
	In    *core.ReadPort
	Out   *core.WritePort
	Speed float64
	Count *atomic.Int64
}

func (w *slowWorker) Step(env *core.Env) error {
	var t meta.Task
	if err := token.NewReader(w.In).ReadObject(&t); err != nil {
		return err
	}
	st := t.(*sleepTask)
	time.Sleep(time.Duration(float64(st.Micros)/w.Speed) * time.Microsecond)
	r, err := t.Run()
	if err != nil {
		return err
	}
	if w.Count != nil {
		w.Count.Add(1)
	}
	return token.NewWriter(w.Out).WriteObject(&r)
}

// runReal executes the experiment on the actual runtime and returns
// the measured makespan.
func runReal(t *testing.T, static bool, speeds []float64, tasks int64, taskMicros int64, counts []atomic.Int64) time.Duration {
	t.Helper()
	n := core.NewNetwork()
	src := &sleepSource{total: tasks, micros: taskMicros}
	var workers []*meta.Worker
	var spawnRest func()
	if static {
		st := meta.NewStatic(n, src, len(speeds), 0)
		workers = st.Workers
		spawnRest = func() {
			n.Spawn(st.Producer)
			n.Spawn(st.Scatter)
			n.Spawn(st.Gather)
			n.Spawn(st.Consumer)
		}
	} else {
		dyn := meta.NewDynamic(n, src, len(speeds), 0)
		workers = dyn.Workers
		spawnRest = func() {
			n.Spawn(dyn.Producer)
			n.Spawn(dyn.Direct)
			n.Spawn(dyn.Turnstile)
			n.Spawn(dyn.IndexCons)
			n.Spawn(dyn.Select)
			n.Spawn(dyn.Consumer)
		}
	}
	start := time.Now()
	for i, w := range workers {
		n.Spawn(&slowWorker{In: w.In, Out: w.Out, Speed: speeds[i], Count: &counts[i]})
	}
	spawnRest()
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

func TestSimulatorMatchesRealRuntime(t *testing.T) {
	// A 2×-heterogeneous 4-worker cluster: speeds 2, 1, 1, 0.5.
	speeds := []float64{2, 1, 1, 0.5}
	const tasks = 48
	const taskMS = 8 // base work per task on a speed-1 worker

	// Simulator prediction with the matching configuration. RefSeqTime
	// is the sequential time of the whole workload on a speed-1 CPU.
	cfg := Config{
		Classes: []Class{
			{Name: "fast", SeqTime: float64(tasks*taskMS) / 2, Count: 1},
			{Name: "mid", SeqTime: float64(tasks * taskMS), Count: 2},
			{Name: "slow", SeqTime: float64(tasks*taskMS) / 0.5, Count: 1},
		},
		RefSeqTime: float64(tasks * taskMS), // "minutes" = milliseconds here
		TotalTasks: tasks,
	}
	simStatic, err := Simulate(cfg, Static, 4)
	if err != nil {
		t.Fatal(err)
	}
	simDynamic, err := Simulate(cfg, Dynamic, 4)
	if err != nil {
		t.Fatal(err)
	}

	staticCounts := make([]atomic.Int64, 4)
	dynamicCounts := make([]atomic.Int64, 4)
	realStatic := runReal(t, true, speeds, tasks, taskMS*1000, staticCounts)
	realDynamic := runReal(t, false, speeds, tasks, taskMS*1000, dynamicCounts)

	msStatic := float64(realStatic.Microseconds()) / 1000
	msDynamic := float64(realDynamic.Microseconds()) / 1000
	t.Logf("static:  sim %.0f ms, real %.0f ms", simStatic.Elapsed, msStatic)
	t.Logf("dynamic: sim %.0f ms, real %.0f ms", simDynamic.Elapsed, msDynamic)
	t.Logf("dynamic task counts: %v", loads(dynamicCounts))
	t.Logf("static  task counts: %v", loads(staticCounts))

	// The simulator's makespans must predict the real runtime within
	// 30% (sleep jitter, scheduler noise, channel overhead).
	rel := func(real, sim float64) float64 {
		d := real - sim
		if d < 0 {
			d = -d
		}
		return d / sim
	}
	if rel(msStatic, simStatic.Elapsed) > 0.30 {
		t.Errorf("static: real %.1f ms vs sim %.1f ms", msStatic, simStatic.Elapsed)
	}
	if rel(msDynamic, simDynamic.Elapsed) > 0.30 {
		t.Errorf("dynamic: real %.1f ms vs sim %.1f ms", msDynamic, simDynamic.Elapsed)
	}
	// And the headline comparison — dynamic beats static by roughly the
	// predicted factor.
	simRatio := simStatic.Elapsed / simDynamic.Elapsed
	realRatio := msStatic / msDynamic
	if realRatio < 1.2 {
		t.Errorf("dynamic did not beat static for real: ratio %.2f", realRatio)
	}
	if rel(realRatio, simRatio) > 0.35 {
		t.Errorf("speed ratio: real %.2f vs sim %.2f", realRatio, simRatio)
	}
	// Static gave every worker an equal share; dynamic loaded the fast
	// worker most and the slow worker least.
	for i := range staticCounts {
		if got := staticCounts[i].Load(); got != tasks/4 {
			t.Errorf("static worker %d did %d tasks, want %d", i, got, tasks/4)
		}
	}
	if dynamicCounts[0].Load() <= dynamicCounts[3].Load() {
		t.Errorf("dynamic: fast worker (%d tasks) should out-process slow (%d)",
			dynamicCounts[0].Load(), dynamicCounts[3].Load())
	}
}

func loads(cs []atomic.Int64) []int64 {
	out := make([]int64, len(cs))
	for i := range cs {
		out[i] = cs[i].Load()
	}
	return out
}
