package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWorkerSpeedsFastestFirst(t *testing.T) {
	cfg := PaperConfig()
	speeds, err := cfg.WorkerSpeeds(cfg.MaxWorkers())
	if err != nil {
		t.Fatal(err)
	}
	if len(speeds) != 34 {
		t.Fatalf("cluster has %d CPUs, want 34", len(speeds))
	}
	for i := 1; i < len(speeds); i++ {
		if speeds[i] > speeds[i-1]+1e-9 {
			t.Fatalf("speeds not descending at %d: %v > %v", i, speeds[i], speeds[i-1])
		}
	}
	// First worker is the class-A machine.
	if math.Abs(speeds[0]-22.50/11.63) > 1e-9 {
		t.Fatalf("first speed = %v", speeds[0])
	}
	if _, err := cfg.WorkerSpeeds(35); err == nil {
		t.Fatal("overallocation accepted")
	}
}

func TestIdealMatchesPaper(t *testing.T) {
	cfg := PaperConfig()
	for _, p := range PaperTable2 {
		got, err := Simulate(cfg, Ideal, p.Workers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Speed-p.IdealSpeed) > 0.06 {
			t.Errorf("W=%d: ideal speed %.2f, paper %.2f", p.Workers, got.Speed, p.IdealSpeed)
		}
		if math.Abs(got.Elapsed-p.IdealTime) > 0.05 {
			t.Errorf("W=%d: ideal time %.2f, paper %.2f", p.Workers, got.Elapsed, p.IdealTime)
		}
	}
}

// The reproduction bar: simulated static and dynamic runs must land
// within 10% of every published Table 2 cell.
func TestTable2WithinTolerance(t *testing.T) {
	rows, err := Table2(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		p := PaperTable2[i]
		checks := []struct {
			name      string
			got, want float64
		}{
			{"static time", r.StaticTime, p.StaticTime},
			{"static speed", r.StaticSpeed, p.StaticSpeed},
			{"dynamic time", r.DynamicTime, p.DynamicTime},
			{"dynamic speed", r.DynamicSpeed, p.DynamicSpeed},
		}
		for _, c := range checks {
			rel := math.Abs(c.got-c.want) / c.want
			if rel > 0.10 {
				t.Errorf("W=%d %s: got %.3f, paper %.3f (off %.1f%%)",
					r.Workers, c.name, c.got, c.want, rel*100)
			}
		}
	}
}

// The headline qualitative claims of §5.2.
func TestQualitativeShape(t *testing.T) {
	cfg := PaperConfig()

	// 1. Dynamic beats static at every multi-worker heterogeneous point.
	for _, w := range []int{8, 16, 32} {
		st, _ := Simulate(cfg, Static, w)
		dy, _ := Simulate(cfg, Dynamic, w)
		if dy.Elapsed >= st.Elapsed {
			t.Errorf("W=%d: dynamic (%.2f) not faster than static (%.2f)", w, dy.Elapsed, st.Elapsed)
		}
	}

	// 2. The static anomaly: adding the first slow CPU (W=7→8) makes
	// static *slower* — "the elapsed time actually increases and the
	// speedup decreases".
	st7, _ := Simulate(cfg, Static, 7)
	st8, _ := Simulate(cfg, Static, 8)
	if st8.Elapsed <= st7.Elapsed {
		t.Errorf("static W=8 (%.2f) should be slower than W=7 (%.2f)", st8.Elapsed, st7.Elapsed)
	}
	if st8.Speed >= st7.Speed {
		t.Errorf("static speedup should drop at W=8: %.2f vs %.2f", st8.Speed, st7.Speed)
	}

	// 3. Dynamic keeps improving across the same boundary.
	dy7, _ := Simulate(cfg, Dynamic, 7)
	dy8, _ := Simulate(cfg, Dynamic, 8)
	if dy8.Elapsed >= dy7.Elapsed {
		t.Errorf("dynamic W=8 (%.2f) should beat W=7 (%.2f)", dy8.Elapsed, dy7.Elapsed)
	}

	// 4. Dynamic stays within its overhead envelope of ideal but never
	// beats it.
	for w := 1; w <= cfg.MaxWorkers(); w++ {
		id, _ := Simulate(cfg, Ideal, w)
		dy, _ := Simulate(cfg, Dynamic, w)
		if dy.Elapsed < id.Elapsed {
			t.Errorf("W=%d: dynamic (%.3f) beats ideal (%.3f)", w, dy.Elapsed, id.Elapsed)
		}
	}
}

func TestDynamicLoadProportionalToSpeed(t *testing.T) {
	// Faster workers process more tasks; slower workers fewer ("faster
	// workers end up processing more tasks, slower workers process
	// fewer tasks").
	cfg := PaperConfig()
	res, err := Simulate(cfg, Dynamic, 32)
	if err != nil {
		t.Fatal(err)
	}
	speeds, _ := cfg.WorkerSpeeds(32)
	// Worker 0 (class A, 1.93) must process roughly 1.93/0.80 times the
	// tasks of a class-E worker.
	a := float64(res.TasksPerWorker[0])
	e := float64(res.TasksPerWorker[31])
	ratio := a / e
	want := speeds[0] / speeds[31]
	if math.Abs(ratio-want) > 0.35*want {
		t.Errorf("task ratio %.2f, want about %.2f", ratio, want)
	}
	total := 0
	for _, n := range res.TasksPerWorker {
		total += n
	}
	if total != cfg.TotalTasks {
		t.Fatalf("tasks executed %d, want %d", total, cfg.TotalTasks)
	}
}

func TestStaticEqualShares(t *testing.T) {
	cfg := PaperConfig()
	res, err := Simulate(cfg, Static, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.TasksPerWorker {
		if n != cfg.TotalTasks/32 {
			t.Fatalf("worker %d got %d tasks, want %d", i, n, cfg.TotalTasks/32)
		}
	}
}

func TestInflectionsMatchPaper(t *testing.T) {
	infl, err := Inflections(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	has := func(w int) bool {
		for _, v := range infl {
			if v == w {
				return true
			}
		}
		return false
	}
	// "The first occurs when the number of workers increases from 7 to
	// 8 ... The second ... from 26 to 27."
	if !has(8) || !has(27) {
		t.Fatalf("inflections = %v, want to include 8 and 27", infl)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1(PaperConfig())
	for i, r := range rows {
		p := PaperTable1[i]
		if r.TimeMin != p.TimeMin {
			t.Errorf("class %s time %.2f, paper %.2f", r.Class, r.TimeMin, p.TimeMin)
		}
		if math.Abs(r.Speed-p.Speed) > 0.005 {
			t.Errorf("class %s speed %.3f, paper %.2f", r.Class, r.Speed, p.Speed)
		}
	}
}

// Property: for any homogeneous cluster, static and dynamic are within
// the overhead gap of each other — heterogeneity is what separates
// them (the ablation DESIGN.md calls out).
func TestHomogeneousClusterPolicyTie(t *testing.T) {
	f := func(wSeed uint8) bool {
		w := int(wSeed)%16 + 1
		cfg := Config{
			Classes:           []Class{{Name: "X", SeqTime: 20, Count: 16}},
			RefSeqTime:        20,
			TotalTasks:        320,
			CommFactorDynamic: 0.05,
			CommFactorStatic:  0.05,
			StartupPerWorker:  0.001,
		}
		st, err1 := Simulate(cfg, Static, w)
		dy, err2 := Simulate(cfg, Dynamic, w)
		if err1 != nil || err2 != nil {
			return false
		}
		rel := math.Abs(st.Elapsed-dy.Elapsed) / st.Elapsed
		return rel < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: more workers never slow the dynamic policy down (modulo
// startup, which is tiny relative to task time here).
func TestDynamicMonotoneProperty(t *testing.T) {
	cfg := PaperConfig()
	prev := math.Inf(1)
	for w := 1; w <= cfg.MaxWorkers(); w++ {
		r, err := Simulate(cfg, Dynamic, w)
		if err != nil {
			t.Fatal(err)
		}
		if r.Elapsed > prev*1.02 {
			t.Fatalf("dynamic time increased at W=%d: %.3f → %.3f", w, prev, r.Elapsed)
		}
		prev = r.Elapsed
	}
}

func TestWriters(t *testing.T) {
	cfg := PaperConfig()
	var sb strings.Builder
	WriteTable1(&sb, cfg)
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatal("table 1 output missing")
	}
	sb.Reset()
	if err := WriteTable2(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Workers") {
		t.Fatal("table 2 output missing")
	}
	sb.Reset()
	if err := WriteFigure19(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteFigure20(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "inflection") {
		t.Fatal("figure 20 inflections missing")
	}
}

func TestPolicyString(t *testing.T) {
	if Ideal.String() != "ideal" || Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
	if _, err := Simulate(PaperConfig(), Policy(9), 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestSkewedConfigDynamicBeatsStatic pins the acceptance criterion of
// the elasticity experiments on the simulator: on the skewed synthetic
// cluster (five single-CPU classes, 16× speed spread) the on-demand
// scheme must reach at least 1.3× the completion-time efficiency of
// static Scatter/Gather.
func TestSkewedConfigDynamicBeatsStatic(t *testing.T) {
	cfg := SkewedConfig()
	if got := cfg.MaxWorkers(); got != 5 {
		t.Fatalf("MaxWorkers = %d, want 5", got)
	}
	st, err := Simulate(cfg, Static, 5)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Simulate(cfg, Dynamic, 5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := st.Elapsed / dyn.Elapsed
	t.Logf("static %.2f min, dynamic %.2f min, ratio %.2f", st.Elapsed, dyn.Elapsed, ratio)
	if ratio < 1.3 {
		t.Fatalf("dynamic/static efficiency ratio %.2f < 1.3", ratio)
	}
	// Sanity: the on-demand counts must be skewed toward the fast CPUs.
	if dyn.TasksPerWorker[0] <= dyn.TasksPerWorker[4] {
		t.Fatalf("fastest worker ran %d tasks, straggler %d", dyn.TasksPerWorker[0], dyn.TasksPerWorker[4])
	}
}
