package cluster

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table1Row is one row of the sequential-execution table.
type Table1Row struct {
	Class   string
	TimeMin float64
	Speed   float64
	Desc    string
}

// Table1 regenerates Table 1: sequential execution time per CPU class
// and speed normalized to class C.
func Table1(cfg Config) []Table1Row {
	rows := make([]Table1Row, 0, len(cfg.Classes))
	for _, c := range cfg.Classes {
		rows = append(rows, Table1Row{
			Class:   c.Name,
			TimeMin: c.SeqTime,
			Speed:   c.Speed(cfg.RefSeqTime),
			Desc:    c.Desc,
		})
	}
	return rows
}

// Table2Row is one row of the parallel-execution table.
type Table2Row struct {
	Workers                   int
	IdealTime, IdealSpeed     float64
	StaticTime, StaticSpeed   float64
	DynamicTime, DynamicSpeed float64
}

// Table2Workers lists the worker counts of Table 2.
var Table2Workers = []int{1, 2, 4, 8, 16, 32}

// Table2 regenerates Table 2: elapsed time and normalized speed for
// ideal, static, and dynamic execution at each worker count.
func Table2(cfg Config) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(Table2Workers))
	for _, w := range Table2Workers {
		row, err := table2Row(cfg, w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table2Row(cfg Config, w int) (Table2Row, error) {
	ideal, err := Simulate(cfg, Ideal, w)
	if err != nil {
		return Table2Row{}, err
	}
	static, err := Simulate(cfg, Static, w)
	if err != nil {
		return Table2Row{}, err
	}
	dynamic, err := Simulate(cfg, Dynamic, w)
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Workers:      w,
		IdealTime:    ideal.Elapsed,
		IdealSpeed:   ideal.Speed,
		StaticTime:   static.Elapsed,
		StaticSpeed:  static.Speed,
		DynamicTime:  dynamic.Elapsed,
		DynamicSpeed: dynamic.Speed,
	}, nil
}

// Curves regenerates the data behind Figures 19 (elapsed time vs
// workers) and 20 (speedup vs workers) for every worker count from 1
// to the cluster's capacity.
func Curves(cfg Config) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, cfg.MaxWorkers())
	for w := 1; w <= cfg.MaxWorkers(); w++ {
		row, err := table2Row(cfg, w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Inflections finds the worker counts where the marginal ideal-speed
// gain drops — the two inflection points the paper calls out in
// Figure 20 (adding the first class-C CPU at W=8 and the first class-E
// CPU at W=27).
func Inflections(cfg Config) ([]int, error) {
	curves, err := Curves(cfg)
	if err != nil {
		return nil, err
	}
	var out []int
	for i := 1; i < len(curves); i++ {
		gain := curves[i].IdealSpeed - curves[i-1].IdealSpeed
		prevGain := math.Inf(1)
		if i >= 2 {
			prevGain = curves[i-1].IdealSpeed - curves[i-2].IdealSpeed
		}
		if gain < prevGain-1e-9 {
			out = append(out, curves[i].Workers)
		}
	}
	return out, nil
}

// PaperTable1 holds the values published in Table 1 (class D's speed
// is blank in the paper and derived from its time).
var PaperTable1 = []Table1Row{
	{Class: "A", TimeMin: 11.63, Speed: 1.93, Desc: "2.4 GHz Pentium 4"},
	{Class: "B", TimeMin: 13.13, Speed: 1.71, Desc: "2.2 GHz Pentium 4"},
	{Class: "C", TimeMin: 22.50, Speed: 1.00, Desc: "1.0 GHz Pentium III"},
	{Class: "D", TimeMin: 22.78, Speed: 0.99, Desc: "(blank in paper)"},
	{Class: "E", TimeMin: 28.14, Speed: 0.80, Desc: "8 × 700 MHz Pentium III Xeon"},
}

// PaperTable2 holds the values published in Table 2.
var PaperTable2 = []Table2Row{
	{Workers: 1, IdealTime: 11.63, IdealSpeed: 1.93, StaticTime: 12.15, StaticSpeed: 1.85, DynamicTime: 12.39, DynamicSpeed: 1.82},
	{Workers: 2, IdealTime: 6.17, IdealSpeed: 3.65, StaticTime: 6.93, StaticSpeed: 3.25, DynamicTime: 6.57, DynamicSpeed: 3.43},
	{Workers: 4, IdealTime: 3.18, IdealSpeed: 7.08, StaticTime: 3.55, StaticSpeed: 6.34, DynamicTime: 3.44, DynamicSpeed: 6.54},
	{Workers: 8, IdealTime: 1.70, IdealSpeed: 13.22, StaticTime: 3.03, StaticSpeed: 7.42, DynamicTime: 1.87, DynamicSpeed: 12.02},
	{Workers: 16, IdealTime: 1.06, IdealSpeed: 21.22, StaticTime: 1.63, StaticSpeed: 13.80, DynamicTime: 1.20, DynamicSpeed: 18.73},
	{Workers: 32, IdealTime: 0.63, IdealSpeed: 35.97, StaticTime: 1.00, StaticSpeed: 22.42, DynamicTime: 0.76, DynamicSpeed: 29.77},
}

// WriteTable1 prints Table 1 (measured vs paper) to w.
func WriteTable1(out io.Writer, cfg Config) {
	fmt.Fprintln(out, "Table 1: Sequential Execution (time in minutes, speed normalized to class C)")
	fmt.Fprintln(out, "Class   Time   Speed   Paper(Time  Speed)   CPU")
	for i, r := range Table1(cfg) {
		p := PaperTable1[i]
		fmt.Fprintf(out, "%-5s %6.2f  %5.2f       %6.2f  %5.2f    %s\n",
			r.Class, r.TimeMin, r.Speed, p.TimeMin, p.Speed, r.Desc)
	}
}

// WriteTable2 prints Table 2 (simulated vs paper) to w.
func WriteTable2(out io.Writer, cfg Config) error {
	rows, err := Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Table 2: Parallel Execution (time in minutes, speed normalized to class C)")
	fmt.Fprintln(out, "            ----- simulated -----------------   ----- paper ---------------------")
	fmt.Fprintln(out, "Workers     Ideal      Static     Dynamic       Ideal      Static     Dynamic")
	for i, r := range rows {
		p := PaperTable2[i]
		fmt.Fprintf(out, "%4d    %6.2f/%5.2f %5.2f/%5.2f %5.2f/%5.2f   %5.2f/%5.2f %5.2f/%5.2f %5.2f/%5.2f\n",
			r.Workers,
			r.IdealTime, r.IdealSpeed, r.StaticTime, r.StaticSpeed, r.DynamicTime, r.DynamicSpeed,
			p.IdealTime, p.IdealSpeed, p.StaticTime, p.StaticSpeed, p.DynamicTime, p.DynamicSpeed)
	}
	fmt.Fprintln(out, "(each cell is time/speed)")
	return nil
}

// WriteFigure19 prints the elapsed-time series of Figure 19.
func WriteFigure19(out io.Writer, cfg Config) error {
	rows, err := Curves(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Figure 19: Elapsed time (minutes) vs workers")
	fmt.Fprintln(out, "Workers   Ideal  Static  Dynamic")
	for _, r := range rows {
		fmt.Fprintf(out, "%4d    %7.2f %7.2f %8.2f\n", r.Workers, r.IdealTime, r.StaticTime, r.DynamicTime)
	}
	return nil
}

// WriteFigure20 prints the speedup series of Figure 20, with a crude
// ASCII rendering so the curve shapes are visible in a terminal.
func WriteFigure20(out io.Writer, cfg Config) error {
	rows, err := Curves(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Figure 20: Speedup (normalized to class C) vs workers")
	fmt.Fprintln(out, "Workers   Ideal  Static  Dynamic")
	maxSpeed := 0.0
	for _, r := range rows {
		maxSpeed = math.Max(maxSpeed, r.IdealSpeed)
	}
	for _, r := range rows {
		bar := int(r.DynamicSpeed / maxSpeed * 40)
		fmt.Fprintf(out, "%4d    %7.2f %7.2f %8.2f  %s\n",
			r.Workers, r.IdealSpeed, r.StaticSpeed, r.DynamicSpeed, strings.Repeat("▪", bar))
	}
	infl, err := Inflections(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ideal-speed inflection points at workers = %v (paper: 8 and 27)\n", infl)
	return nil
}
