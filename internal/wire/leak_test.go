package wire

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"dpn/internal/conduit"
	"dpn/internal/proclib"
)

func watcherCount() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), "wire.(*Node).watchLink")
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Regression test for the watchLink goroutine leak: a parcel whose
// destination never imports it leaves a serve-side link parked on its
// rendezvous token. Closing the node must cancel that rendezvous —
// finishing the link with ErrBrokerClosed — so the watcher goroutine
// exits and the link tracker empties, instead of both outliving the
// node.
func TestNodeCloseTerminatesLinkWatchers(t *testing.T) {
	n, err := NewLocalNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := n.Net.NewChannel("leaky", 8)
	sink := &proclib.Collect{In: ch.Reader()}
	if _, err := Export(n, "10.255.255.1:1", sink); err != nil {
		t.Fatal(err)
	}
	l := n.linkFor(ch)
	if l == nil {
		t.Fatal("export did not track a link")
	}
	waitFor(t, "watcher start", func() bool { return watcherCount() >= 1 })

	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-l.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("parked link never finished after broker close")
	}
	if err := l.Wait(); !errors.Is(err, conduit.ErrBrokerClosed) {
		t.Fatalf("link finished with %v, want ErrBrokerClosed", err)
	}
	waitFor(t, "watcher exit", func() bool { return watcherCount() == 0 })
	waitFor(t, "tracker drain", func() bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		return len(n.links) == 0
	})
	// Local shutdown is not a wire degrade: the failure counter must
	// stay untouched.
	for _, s := range n.Obs().Registry().Samples() {
		if s.Name == "dpn_wire_link_failures_total" && s.Value != 0 {
			t.Fatalf("broker close counted as link failure: %+v", s)
		}
	}
}

// Stale-tracker audit: when a writer's second hop redirects (§4.3), the
// reader host re-arms a fresh serving link for the writer's new home.
// The tracker must swap to the re-armed link — holding the finished one
// would make any third move consult a dead handle.
func TestRedirectRearmsReaderHostTracker(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)
	c := newTestNode(t)

	ch := a.Net.NewChannel("ab", 64)
	src := &proclib.SliceSource{Values: seq(25), Out: ch.Writer()}
	sink := &proclib.Collect{In: ch.Reader()}

	p1, err := Export(a, b.Broker.Addr(), sink)
	if err != nil {
		t.Fatal(err)
	}
	procsB, err := Import(b, ship(t, p1))
	if err != nil {
		t.Fatal(err)
	}
	var chB *proclib.Collect
	if chB = findCollect(procsB); chB == nil {
		t.Fatal("collect lost")
	}
	// B dialed A: exactly one tracked inbound link.
	firstLink := func() conduit.Link {
		b.mu.Lock()
		defer b.mu.Unlock()
		for _, l := range b.links {
			return l
		}
		return nil
	}
	l0 := firstLink()
	if l0 == nil || l0.Outbound() {
		t.Fatalf("tracked link after import = %v", l0)
	}

	// The writer's hop A→C sends the REDIRECT; B must retire l0 and
	// re-arm a fresh serving link before C ever connects.
	p2, err := Export(a, c.Broker.Addr(), src)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rearm swap", func() bool {
		l := firstLink()
		return l != nil && l != l0
	})
	l1 := firstLink()
	select {
	case <-l0.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("displaced link never finished")
	}
	select {
	case <-l1.Done():
		t.Fatal("re-armed link already finished before the writer connected")
	default:
	}

	// The graph still runs to completion over the re-armed link.
	if _, err := SpawnImported(c, ship(t, p2)); err != nil {
		t.Fatal(err)
	}
	for _, p := range procsB {
		b.Net.Spawn(p)
	}
	waitNet(t, c.Net, "producer node")
	waitNet(t, b.Net, "consumer node")
	if got := chB.Values(); len(got) != 25 {
		t.Fatalf("got %d values, want 25", len(got))
	}
}
