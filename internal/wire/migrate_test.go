package wire

import (
	"encoding/gob"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

// pacedSource emits consecutive integers with a small delay, so a
// migration reliably lands mid-stream.
type pacedSource struct {
	core.Iterative
	Out  *core.WritePort
	next int64
}

func (s *pacedSource) Step(env *core.Env) error {
	time.Sleep(100 * time.Microsecond)
	v := s.next
	s.next++
	return token.NewWriter(s.Out).WriteInt64(v)
}

// relayProc copies int64 elements one at a time; its exported Count
// field must survive migration. The unexported atomic mirror exists
// only so the test can poll progress while the process runs (it is not
// serialized, like a transient field in Java).
type relayProc struct {
	In    *core.ReadPort
	Out   *core.WritePort
	Count int64

	progress atomic.Int64
}

func (r *relayProc) Step(env *core.Env) error {
	v, err := token.NewReader(r.In).ReadInt64()
	if err != nil {
		return err
	}
	if err := token.NewWriter(r.Out).WriteInt64(v); err != nil {
		return err
	}
	r.Count++
	r.progress.Store(r.Count)
	return nil
}

func init() {
	gob.Register(&pacedSource{})
	gob.Register(&relayProc{})
}

// TestLiveMigrationMidStream is the §6.1 experiment: a running relay
// process moves from node A to node B while data is flowing through
// it. Every element must reach the sink exactly once, in order.
func TestLiveMigrationMidStream(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	const total = 400
	in := a.Net.NewChannel("in", 4096)
	out := a.Net.NewChannel("out", 4096)
	src := &pacedSource{Out: in.Writer()}
	src.Iterations = total
	relay := &relayProc{In: in.Reader(), Out: out.Writer()}
	sink := &proclib.Collect{In: out.Reader()}

	a.Net.Spawn(src)
	relayProcHandle := a.Net.Spawn(relay)
	a.Net.Spawn(sink)

	// Let a chunk of the stream flow, then migrate the relay live.
	deadline := time.Now().Add(5 * time.Second)
	for relay.progress.Load() < total/4 {
		if time.Now().After(deadline) {
			t.Fatal("relay made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	parcel, err := Migrate(a, b.Broker.Addr(), relayProcHandle)
	if err != nil {
		t.Fatal(err)
	}
	movedAt := relay.Count
	if movedAt == 0 || movedAt >= total {
		t.Fatalf("migration did not land mid-stream: count=%d", movedAt)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	var relayB *relayProc
	for _, p := range procs {
		if r, ok := p.(*relayProc); ok {
			relayB = r
		}
	}
	if relayB == nil {
		t.Fatal("relay lost in migration")
	}
	if relayB.Count != movedAt {
		t.Fatalf("exported state lost: Count=%d, want %d", relayB.Count, movedAt)
	}
	for _, p := range procs {
		b.Net.Spawn(p)
	}

	waitNet(t, a.Net, "origin network")
	waitNet(t, b.Net, "destination network")
	want := seq(total)
	if got := sink.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("stream damaged by live migration: got %d values (first mismatch hunt: %v...)",
			len(got), got[:min(10, len(got))])
	}
	if relayB.Count != total {
		t.Fatalf("relay total = %d, want %d", relayB.Count, total)
	}
}

// TestLiveMigrationWithBufferedBacklog parks the relay while its input
// channel holds a backlog; the buffered bytes must drain through the
// network link in order.
func TestLiveMigrationWithBufferedBacklog(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	const total = 100
	in := a.Net.NewChannel("in", 1<<16) // room for the entire backlog
	out := a.Net.NewChannel("out", 1<<16)
	relay := &relayProc{In: in.Reader(), Out: out.Writer()}
	sink := &proclib.Collect{In: out.Reader()}

	h := a.Net.Spawn(relay)
	a.Net.Spawn(sink)

	// Pre-fill the input channel while the relay is already running,
	// then migrate: part of the backlog is consumed locally, the rest
	// crosses the wire.
	w := token.NewWriter(in.Writer())
	for i := int64(0); i < total; i++ {
		if err := w.WriteInt64(i); err != nil {
			t.Fatal(err)
		}
	}
	parcel, err := Migrate(a, b.Broker.Addr(), h)
	if err != nil {
		t.Fatal(err)
	}
	in.Writer().Close()
	if _, err := SpawnImported(b, ship(t, parcel)); err != nil {
		t.Fatal(err)
	}
	waitNet(t, a.Net, "origin network")
	waitNet(t, b.Net, "destination network")
	if got := sink.Values(); !reflect.DeepEqual(got, seq(total)) {
		t.Fatalf("backlog damaged: got %d values", len(got))
	}
}

// TestMigrateErrors exercises the failure modes.
func TestMigrateErrors(t *testing.T) {
	a := newTestNode(t)
	done := a.Net.Spawn(&finished{})
	done.Wait()
	if _, err := Migrate(a, "nowhere", done); err == nil {
		t.Fatal("migrating a finished process accepted")
	}
}

type finished struct{}

func (f *finished) Step(env *core.Env) error { return errDoneTest }

var errDoneTest = core.ErrDetached

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
