package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

func newTestNode(t *testing.T) *Node {
	t.Helper()
	n, err := NewLocalNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// ship round-trips a parcel through gob, as the compute-server RPC
// does, so the tests prove parcels are genuinely serializable.
func ship(t *testing.T, p *Parcel) *Parcel {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatalf("parcel encode: %v", err)
	}
	var out Parcel
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("parcel decode: %v", err)
	}
	return &out
}

func waitNet(t *testing.T, n *core.Network, what string) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not terminate", what)
	}
}

func findCollect(procs []any) *proclib.Collect {
	for _, p := range procs {
		if c, ok := p.(*proclib.Collect); ok {
			return c
		}
	}
	return nil
}

func seq(n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// Figure 14: the consuming process is serialized and sent to another
// server; the channel is maintained automatically over the network.
func TestReaderMovesToRemoteNode(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	ch := a.Net.NewChannel("ab", 64)
	src := &proclib.SliceSource{Values: seq(50), Out: ch.Writer()}
	sink := &proclib.Collect{In: ch.Reader()}

	parcel, err := Export(a, b.Broker.Addr(), sink)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	remoteSink := findCollect(procs)
	if remoteSink == nil {
		t.Fatal("collect did not survive the move")
	}
	for _, p := range procs {
		b.Net.Spawn(p)
	}
	a.Net.Spawn(src)
	waitNet(t, a.Net, "origin network")
	waitNet(t, b.Net, "remote network")
	if got := remoteSink.Values(); !reflect.DeepEqual(got, seq(50)) {
		t.Fatalf("got %v", got)
	}
}

// The dual of Figure 14: the producing process moves; the consumer
// stays.
func TestWriterMovesToRemoteNode(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	ch := a.Net.NewChannel("ab", 64)
	src := &proclib.SliceSource{Values: seq(30), Out: ch.Writer()}
	sink := &proclib.Collect{In: ch.Reader()}

	parcel, err := Export(a, b.Broker.Addr(), src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpawnImported(b, ship(t, parcel)); err != nil {
		t.Fatal(err)
	}
	a.Net.Spawn(sink)
	waitNet(t, b.Net, "remote network")
	waitNet(t, a.Net, "origin network")
	if got := sink.Values(); !reflect.DeepEqual(got, seq(30)) {
		t.Fatalf("got %v", got)
	}
}

// A composite whose internal channel holds unconsumed data moves as a
// unit; the data must move with it (§3.3).
func TestCompositeWithBufferedInternalChannel(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	inner := a.Net.NewChannel("inner", 256)
	// Pre-load unconsumed elements (9, 8, 7) into the internal channel.
	var preload []byte
	for _, v := range []int64{9, 8, 7} {
		preload = token.AppendInt64(preload, v)
	}
	if _, err := inner.Pipe().Write(preload); err != nil {
		t.Fatal(err)
	}
	out := a.Net.NewChannel("out", 256)
	relay := &proclib.PassThrough{In: inner.Reader(), Out: out.Writer()}
	writer := &proclib.SliceSource{Values: []int64{6, 5}, Out: inner.Writer()}
	sink := &proclib.Collect{In: out.Reader()}

	comp := (&core.Composite{Name: "unit"}).Add(writer).Add(relay)
	parcel, err := Export(a, b.Broker.Addr(), comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(parcel.Internal) != 1 {
		t.Fatalf("internal channels = %d, want 1", len(parcel.Internal))
	}
	if !bytes.Equal(parcel.Internal[0].Buffered, preload) {
		t.Fatalf("buffered = %v", parcel.Internal[0].Buffered)
	}
	if _, err := SpawnImported(b, ship(t, parcel)); err != nil {
		t.Fatal(err)
	}
	a.Net.Spawn(sink)
	waitNet(t, b.Net, "remote network")
	waitNet(t, a.Net, "origin network")
	// Buffered elements arrive first, then the new writes, in order.
	if got := sink.Values(); !reflect.DeepEqual(got, []int64{9, 8, 7, 6, 5}) {
		t.Fatalf("got %v", got)
	}
}

// Figure 15: after the consumer moved A→B, the producer moves A→C. The
// REDIRECT must connect C directly to B and take A out of the path.
func TestWriterSecondHopRedirects(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)
	c := newTestNode(t)

	ch := a.Net.NewChannel("ab", 64)
	src := &proclib.SliceSource{Values: seq(100), Out: ch.Writer()}
	sink := &proclib.Collect{In: ch.Reader()}

	// Hop 1: consumer to B.
	p1, err := Export(a, b.Broker.Addr(), sink)
	if err != nil {
		t.Fatal(err)
	}
	procsB, err := Import(b, ship(t, p1))
	if err != nil {
		t.Fatal(err)
	}
	remoteSink := findCollect(procsB)

	// Hop 2: producer to C (before anything runs, as in the paper).
	p2, err := Export(a, c.Broker.Addr(), src)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Boundary[0].Addr != b.Broker.Addr() {
		t.Fatalf("redirect descriptor points at %q, want B %q", p2.Boundary[0].Addr, b.Broker.Addr())
	}

	aIn, aOut := a.Broker.BytesIn(), a.Broker.BytesOut()

	if _, err := SpawnImported(c, ship(t, p2)); err != nil {
		t.Fatal(err)
	}
	for _, p := range procsB {
		b.Net.Spawn(p)
	}
	waitNet(t, c.Net, "producer node")
	waitNet(t, b.Net, "consumer node")
	if got := remoteSink.Values(); !reflect.DeepEqual(got, seq(100)) {
		t.Fatalf("got %v", got)
	}
	// Decentralized communication (§4.3): no data relayed through A.
	if a.Broker.BytesIn() != aIn || a.Broker.BytesOut() != aOut {
		t.Fatalf("traffic relayed through origin: in %d→%d out %d→%d",
			aIn, a.Broker.BytesIn(), aOut, a.Broker.BytesOut())
	}
}

// The reader-side second hop: consumer moves A→B, then B→C. The writer
// host is told to reconnect to C; buffered data travels as leftover.
func TestReaderSecondHopMoves(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)
	c := newTestNode(t)

	ch := a.Net.NewChannel("ab", 1024)
	src := &proclib.SliceSource{Values: seq(40), Out: ch.Writer()}
	sink := &proclib.Collect{In: ch.Reader()}

	p1, err := Export(a, b.Broker.Addr(), sink)
	if err != nil {
		t.Fatal(err)
	}
	procsB, err := Import(b, ship(t, p1))
	if err != nil {
		t.Fatal(err)
	}
	sinkB := findCollect(procsB)

	// Second hop B→C before execution.
	p2, err := Export(b, c.Broker.Addr(), sinkB)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Boundary[0].Mode != "serve" {
		t.Fatalf("second-hop reader descriptor mode = %q, want serve", p2.Boundary[0].Mode)
	}
	procsC, err := Import(c, ship(t, p2))
	if err != nil {
		t.Fatal(err)
	}
	sinkC := findCollect(procsC)
	for _, p := range procsC {
		c.Net.Spawn(p)
	}
	a.Net.Spawn(src)
	waitNet(t, a.Net, "producer node")
	waitNet(t, c.Net, "consumer node")
	if got := sinkC.Values(); !reflect.DeepEqual(got, seq(40)) {
		t.Fatalf("got %v", got)
	}
}

func TestExportRejectsDetachedPort(t *testing.T) {
	a := newTestNode(t)
	ch := a.Net.NewChannel("x", 8)
	sink := &proclib.Collect{In: ch.Reader()}
	sink.In.Detach()
	if _, err := Export(a, "nowhere", sink); err == nil {
		t.Fatal("detached port accepted")
	}
}

func TestImportRejectsBadDescriptor(t *testing.T) {
	a := newTestNode(t)
	_, err := Import(a, &Parcel{Boundary: []PortDescriptor{{Side: "sideways"}}})
	if err == nil {
		t.Fatal("bad descriptor accepted")
	}
}

func TestNodeDeadlockPeerImplementation(t *testing.T) {
	a := newTestNode(t)
	st, err := a.DeadlockStatus()
	if err != nil || st.Live != 0 {
		t.Fatalf("empty node status: %+v, %v", st, err)
	}
	ch := a.Net.NewChannel("tiny", 8)
	// Fill the channel and block a writer so the snapshot reports it.
	ch.Writer().Write(make([]byte, 8))
	go ch.Writer().Write([]byte{1})
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err = a.DeadlockStatus()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.FullChannels) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("full channel never reported: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.FullChannels[0].Name != "tiny" || st.FullChannels[0].Cap != 8 {
		t.Fatalf("ref = %+v", st.FullChannels[0])
	}
	got, err := a.GrowChannel("tiny", 32)
	if err != nil || got != 32 {
		t.Fatalf("grow: %d, %v", got, err)
	}
	if _, err := a.GrowChannel("missing", 64); err == nil {
		t.Fatal("unknown channel accepted")
	}
	ch.Reader().Close()
}

func TestNewLocalNodeBadAddr(t *testing.T) {
	if _, err := NewLocalNode("256.0.0.1:bad"); err == nil {
		t.Fatal("bad address accepted")
	}
}

// Three hops: consumer to B, producer to C, then producer again C→D.
// Each writer-side move must redirect to a direct connection with B —
// repeated redirection, not just the single hop of Figure 15.
func TestWriterThirdHopRedirectsAgain(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)
	c := newTestNode(t)
	d := newTestNode(t)

	ch := a.Net.NewChannel("ab", 64)
	src := &proclib.SliceSource{Values: seq(60), Out: ch.Writer()}
	sink := &proclib.Collect{In: ch.Reader()}

	p1, err := Export(a, b.Broker.Addr(), sink)
	if err != nil {
		t.Fatal(err)
	}
	procsB, err := Import(b, ship(t, p1))
	if err != nil {
		t.Fatal(err)
	}
	sinkB := findCollect(procsB)

	// Hop 2: producer to C.
	p2, err := Export(a, c.Broker.Addr(), src)
	if err != nil {
		t.Fatal(err)
	}
	procsC, err := Import(c, ship(t, p2))
	if err != nil {
		t.Fatal(err)
	}

	// Hop 3: producer again, C → D, before execution.
	p3, err := Export(c, d.Broker.Addr(), procsC[0])
	if err != nil {
		t.Fatal(err)
	}
	if p3.Boundary[0].Addr != b.Broker.Addr() {
		t.Fatalf("third hop points at %q, want B %q", p3.Boundary[0].Addr, b.Broker.Addr())
	}

	aIn, aOut := a.Broker.BytesIn(), a.Broker.BytesOut()
	cIn, cOut := c.Broker.BytesIn(), c.Broker.BytesOut()

	if _, err := SpawnImported(d, ship(t, p3)); err != nil {
		t.Fatal(err)
	}
	for _, p := range procsB {
		b.Net.Spawn(p)
	}
	waitNet(t, d.Net, "final producer node")
	waitNet(t, b.Net, "consumer node")
	if got := sinkB.Values(); !reflect.DeepEqual(got, seq(60)) {
		t.Fatalf("got %v", got)
	}
	// Neither A nor C relayed any data.
	if a.Broker.BytesIn() != aIn || a.Broker.BytesOut() != aOut {
		t.Fatal("traffic relayed through A")
	}
	if c.Broker.BytesIn() != cIn || c.Broker.BytesOut() != cOut {
		t.Fatal("traffic relayed through C")
	}
	if d.Broker.BytesOut() == 0 || b.Broker.BytesIn() == 0 {
		t.Fatal("expected direct D→B traffic")
	}
}
