package wire

import (
	"fmt"
	"reflect"
	"testing"

	"dpn/internal/core"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

// TestEveryLibraryProcessSurvivesExport ships one instance of every
// standard-library process type through a full export → gob → import
// cycle and verifies the configuration fields survive — the coverage
// guarantee that any graph built from proclib can be distributed.
func TestEveryLibraryProcessSurvivesExport(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	mk := func() (*core.ReadPort, *core.WritePort) {
		in := a.Net.NewChannel("", 64)
		out := a.Net.NewChannel("", 64)
		return in.Reader(), out.Writer()
	}

	cases := []struct {
		name  string
		build func() any
		check func(t *testing.T, got any)
	}{
		{"Constant", func() any {
			_, w := mk()
			c := &proclib.Constant{Value: 42, Out: w}
			c.Iterations = 7
			return c
		}, func(t *testing.T, got any) {
			c := got.(*proclib.Constant)
			if c.Value != 42 || c.Iterations != 7 {
				t.Fatalf("%+v", c)
			}
		}},
		{"ConstantFloat", func() any {
			_, w := mk()
			return &proclib.ConstantFloat{Value: 2.5, Out: w}
		}, func(t *testing.T, got any) {
			if got.(*proclib.ConstantFloat).Value != 2.5 {
				t.Fatal("value lost")
			}
		}},
		{"Sequence", func() any {
			_, w := mk()
			return &proclib.Sequence{From: 5, Stride: 3, Out: w}
		}, func(t *testing.T, got any) {
			s := got.(*proclib.Sequence)
			if s.From != 5 || s.Stride != 3 {
				t.Fatalf("%+v", s)
			}
		}},
		{"SliceSource", func() any {
			_, w := mk()
			return &proclib.SliceSource{Values: []int64{1, 2, 3}, Out: w}
		}, func(t *testing.T, got any) {
			if !reflect.DeepEqual(got.(*proclib.SliceSource).Values, []int64{1, 2, 3}) {
				t.Fatal("values lost")
			}
		}},
		{"PassThrough", func() any {
			r, w := mk()
			return &proclib.PassThrough{In: r, Out: w}
		}, nil},
		{"Duplicate", func() any {
			r, w := mk()
			_, w2 := mk()
			return &proclib.Duplicate{In: r, Outs: []*core.WritePort{w, w2}}
		}, func(t *testing.T, got any) {
			if len(got.(*proclib.Duplicate).Outs) != 2 {
				t.Fatal("outs lost")
			}
		}},
		{"Cons", func() any {
			r, w := mk()
			return &proclib.Cons{Head: token.AppendInt64(nil, 9), In: r, Out: w, SelfRemove: true}
		}, func(t *testing.T, got any) {
			c := got.(*proclib.Cons)
			if len(c.Head) != 8 || !c.SelfRemove {
				t.Fatalf("%+v", c)
			}
		}},
		{"Discard", func() any {
			r, _ := mk()
			return &proclib.Discard{In: r}
		}, nil},
		{"Take", func() any {
			r, w := mk()
			return &proclib.Take{N: 4, Width: 8, In: r, Out: w}
		}, func(t *testing.T, got any) {
			tk := got.(*proclib.Take)
			if tk.N != 4 || tk.Width != 8 {
				t.Fatalf("%+v", tk)
			}
		}},
		{"Add", func() any {
			r1, w := mk()
			r2, _ := mk()
			return &proclib.Add{InA: r1, InB: r2, Out: w}
		}, nil},
		{"Scale", func() any {
			r, w := mk()
			return &proclib.Scale{Factor: -3, In: r, Out: w}
		}, func(t *testing.T, got any) {
			if got.(*proclib.Scale).Factor != -3 {
				t.Fatal("factor lost")
			}
		}},
		{"Divide", func() any {
			r1, w := mk()
			r2, _ := mk()
			return &proclib.Divide{InA: r1, InB: r2, Out: w}
		}, nil},
		{"Average", func() any {
			r1, w := mk()
			r2, _ := mk()
			return &proclib.Average{InA: r1, InB: r2, Out: w}
		}, nil},
		{"Equal", func() any {
			r1, w := mk()
			r2, _ := mk()
			return &proclib.Equal{InA: r1, InB: r2, Out: w, Tolerance: 0.5}
		}, func(t *testing.T, got any) {
			if got.(*proclib.Equal).Tolerance != 0.5 {
				t.Fatal("tolerance lost")
			}
		}},
		{"Guard", func() any {
			r1, w := mk()
			r2, _ := mk()
			return &proclib.Guard{In: r1, Control: r2, Out: w, Width: 8, StopAfterPass: true}
		}, func(t *testing.T, got any) {
			g := got.(*proclib.Guard)
			if g.Width != 8 || !g.StopAfterPass {
				t.Fatalf("%+v", g)
			}
		}},
		{"Modulo", func() any {
			r, w := mk()
			return &proclib.Modulo{P: 13, In: r, Out: w}
		}, func(t *testing.T, got any) {
			if got.(*proclib.Modulo).P != 13 {
				t.Fatal("P lost")
			}
		}},
		{"Sift", func() any {
			r, w := mk()
			return &proclib.Sift{In: r, Out: w, ChannelCapacity: 77}
		}, func(t *testing.T, got any) {
			if got.(*proclib.Sift).ChannelCapacity != 77 {
				t.Fatal("capacity lost")
			}
		}},
		{"SiftRecursive", func() any {
			r, w := mk()
			return &proclib.SiftRecursive{In: r, Out: w}
		}, nil},
		{"OrderedMerge", func() any {
			r1, w := mk()
			r2, _ := mk()
			return &proclib.OrderedMerge{Ins: []*core.ReadPort{r1, r2}, Out: w}
		}, func(t *testing.T, got any) {
			if len(got.(*proclib.OrderedMerge).Ins) != 2 {
				t.Fatal("ins lost")
			}
		}},
		{"ModSplit", func() any {
			r, w := mk()
			_, w2 := mk()
			return &proclib.ModSplit{N: 8, In: r, OutMultiple: w, OutOther: w2}
		}, func(t *testing.T, got any) {
			if got.(*proclib.ModSplit).N != 8 {
				t.Fatal("N lost")
			}
		}},
		{"Scatter", func() any {
			r, w := mk()
			return &proclib.Scatter{In: r, Outs: []*core.WritePort{w}}
		}, nil},
		{"Gather", func() any {
			r, w := mk()
			return &proclib.Gather{Ins: []*core.ReadPort{r}, Out: w}
		}, nil},
		{"Print", func() any {
			r, _ := mk()
			return &proclib.Print{In: r, Format: "float64", Label: "L"}
		}, func(t *testing.T, got any) {
			p := got.(*proclib.Print)
			if p.Format != "float64" || p.Label != "L" {
				t.Fatalf("%+v", p)
			}
		}},
		{"Collect", func() any {
			r, _ := mk()
			return &proclib.Collect{In: r}
		}, nil},
		{"CollectFloat", func() any {
			r, _ := mk()
			return &proclib.CollectFloat{In: r}
		}, nil},
		{"Count", func() any {
			r, _ := mk()
			return &proclib.Count{In: r}
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			proc := tc.build()
			parcel, err := Export(a, b.Broker.Addr(), proc)
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			procs, err := Import(b, ship(t, parcel))
			if err != nil {
				t.Fatalf("import: %v", err)
			}
			if len(procs) != 1 {
				t.Fatalf("imported %d processes", len(procs))
			}
			wantType := fmt.Sprintf("%T", proc)
			gotType := fmt.Sprintf("%T", procs[0])
			if wantType != gotType {
				t.Fatalf("type changed: %s → %s", wantType, gotType)
			}
			if tc.check != nil {
				tc.check(t, procs[0])
			}
		})
	}
}
