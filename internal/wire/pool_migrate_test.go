package wire

import (
	"encoding/gob"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dpn/internal/meta"
)

// poolSquare is the task shipped through the elastic pool in the lane
// migration test; the brief sleep paces the run so the migration lands
// mid-stream.
type poolSquare struct{ V int64 }

// poolSquareRes carries the computed square back.
type poolSquareRes struct{ V, Sq int64 }

func (t *poolSquare) Run() (meta.Task, error) {
	time.Sleep(200 * time.Microsecond)
	return &poolSquareRes{V: t.V, Sq: t.V * t.V}, nil
}

func (t *poolSquareRes) Run() (meta.Task, error) { return nil, nil }

func init() {
	gob.Register(&poolSquare{})
	gob.Register(&poolSquareRes{})
}

// TestPoolLaneLiveMigration moves a live worker lane of a running
// elastic pool from node A to node B mid-run: the lane's generic Worker
// process migrates over the wire while the pool keeps dispatching to
// it, and the merged output must stay exactly the reference sequence.
func TestPoolLaneLiveMigration(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	const total = 300
	n := a.Net
	pw := n.NewChannel("tasks", 256)
	sc := n.NewChannel("ordered", 256)
	pool := meta.NewPool(n, meta.PoolConfig{In: pw.Reader(), Out: sc.Writer(), Capacity: 256})
	pool.AddWorker("local")
	_, mover := pool.AddWorker("mover")
	if mover == nil {
		t.Fatal("AddWorker returned no process handle")
	}

	var next int64
	n.Spawn(&meta.Producer{Source: meta.FuncSource(func() (meta.Task, error) {
		if next >= total {
			return nil, nil
		}
		v := next
		next++
		return &poolSquare{V: v}, nil
	}), Out: pw.Writer()})
	n.Spawn(pool)
	cons := &meta.Consumer{In: sc.Reader()}
	var got []int64
	var progress atomic.Int64
	cons.SetOnResult(func(ran, _ meta.Task) {
		if r, ok := ran.(*poolSquareRes); ok {
			got = append(got, r.Sq)
			progress.Store(int64(len(got)))
		}
	})
	n.Spawn(cons)

	// Let a quarter of the stream flow, then ship the lane's worker to B
	// while the pool keeps feeding its channels.
	deadline := time.Now().Add(10 * time.Second)
	for progress.Load() < total/4 {
		if time.Now().After(deadline) {
			t.Fatal("pool made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	parcel, err := Migrate(a, b.Broker.Addr(), mover)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpawnImported(b, ship(t, parcel)); err != nil {
		t.Fatal(err)
	}

	waitNet(t, a.Net, "pool node")
	waitNet(t, b.Net, "lane destination node")
	want := make([]int64, total)
	for i := range want {
		want[i] = int64(i) * int64(i)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged output damaged by lane migration: %d values", len(got))
	}
}
