package wire

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"dpn/internal/conduit"
	"dpn/internal/core"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

// muxTestPSK is the cluster pre-shared key every mux-enabled test node
// uses, so sessions authenticate exactly as a production cluster's
// would.
var muxTestPSK = []byte("wire-mux-test")

// newMuxWireNode is newTestNode with session multiplexing enabled: all
// conduit bindings tunnel as virtual streams over one authenticated
// session per peer pair.
func newMuxWireNode(t *testing.T) *Node {
	t.Helper()
	n := newTestNode(t)
	n.SetTransport(conduit.NewMux(n.Broker, muxTestPSK))
	return n
}

// TestRendezvousStormMuxBoundedFDs reruns the rendezvous storm — many
// client nodes racing to export collectors to one hub — over session
// multiplexing, and pins down the socket economics that motivate it:
// while every channel is live, the process holds O(peer pairs) TCP
// sockets (one session per hub↔client pair plus the listeners), not
// O(channels) as the per-channel transport does. A gate keeps every
// writer open at the sampling point, so the channels are provably all
// bound when the descriptors are counted, and teardown must still
// return the process to its baseline.
func TestRendezvousStormMuxBoundedFDs(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("FD accounting reads /proc/self/fd")
	}
	if testing.Short() {
		t.Skip("rendezvous storm in -short mode")
	}
	const (
		clients   = 80
		chansEach = 3
		perChan   = 40
	)
	baseline := countFDs(t)

	hub := newMuxWireNode(t)

	type landed struct {
		col  *proclib.Collect
		want []int64
	}
	var (
		mu      sync.Mutex
		sinks   []landed
		nodes   []*Node
		errsMu  sync.Mutex
		errList []error
	)
	fail := func(err error) {
		errsMu.Lock()
		errList = append(errList, err)
		errsMu.Unlock()
	}

	// release opens once the mid-storm FD census is done; every channel
	// writer stays open (and therefore every conduit stays bound) until
	// then.
	release := make(chan struct{})
	var writers sync.WaitGroup

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			node := newMuxWireNode(t)
			mu.Lock()
			nodes = append(nodes, node)
			mu.Unlock()

			cut := make([]any, 0, chansEach)
			wants := make([][]int64, 0, chansEach)
			outs := make([]*core.WritePort, 0, chansEach)
			for k := 0; k < chansEach; k++ {
				ch := node.Net.NewChannel(fmt.Sprintf("muxstorm.%d.%d", c, k), 1024)
				vals := stormVals(int64(c)*1_000+int64(k)*100, perChan)
				outs = append(outs, ch.Writer())
				cut = append(cut, &proclib.Collect{In: ch.Reader()})
				wants = append(wants, vals)
			}
			parcel, err := Export(node, hub.Broker.Addr(), cut...)
			if err != nil {
				fail(fmt.Errorf("client %d export: %w", c, err))
				return
			}
			shipped, err := shipRaw(parcel)
			if err != nil {
				fail(fmt.Errorf("client %d ship: %w", c, err))
				return
			}
			procs, err := Import(hub, shipped)
			if err != nil {
				fail(fmt.Errorf("client %d import: %w", c, err))
				return
			}
			ci := 0
			for _, p := range procs {
				if col, ok := p.(*proclib.Collect); ok {
					mu.Lock()
					sinks = append(sinks, landed{col: col, want: wants[ci]})
					mu.Unlock()
					ci++
				}
				hub.Net.Spawn(p)
			}
			if ci != chansEach {
				fail(fmt.Errorf("client %d: %d collectors imported, want %d", c, ci, chansEach))
				return
			}
			// Feed every channel its full stream, then hold the writers
			// open across the census before the closes cascade.
			for k, out := range outs {
				writers.Add(1)
				go func(out *core.WritePort, vals []int64, c, k int) {
					defer writers.Done()
					tw := token.NewWriter(out)
					for _, v := range vals {
						if err := tw.WriteInt64(v); err != nil {
							fail(fmt.Errorf("client %d chan %d write: %w", c, k, err))
							break
						}
					}
					<-release
					out.Close()
				}(out, wants[k], c, k)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errList {
		t.Error(err)
	}
	if t.Failed() {
		close(release)
		t.FailNow()
	}

	// Census: every one of the clients×chansEach channels is bound right
	// now, yet the socket count must scale with peer pairs. Both ends of
	// every session live in this process (2 FDs per pair), each node
	// holds one listener, and the slack absorbs runtime pollers — far
	// below the 2·clients·chansEach the per-channel transport needs.
	if got := hub.Broker.MuxSessions(); got != clients {
		close(release)
		t.Fatalf("hub holds %d mux sessions with %d clients connected, want one per pair", got, clients)
	}
	budget := baseline + (clients + 1) + 2*clients + 64
	if mid := countFDs(t); mid > budget {
		close(release)
		t.Fatalf("mid-storm FDs %d exceed the O(peer pairs) budget %d (baseline %d, %d channels live)",
			mid, budget, baseline, clients*chansEach)
	}

	close(release)
	writers.Wait()
	waitNet(t, hub.Net, "hub node")

	if len(sinks) != clients*chansEach {
		t.Fatalf("%d collectors landed, want %d", len(sinks), clients*chansEach)
	}
	for i, s := range sinks {
		got := s.col.Values()
		if !equalInt64(got, s.want) {
			t.Fatalf("collector %d: rendezvous corrupted: got %d elements starting %v, want %d starting %v",
				i, len(got), head(got), len(s.want), head(s.want))
		}
	}

	for _, node := range nodes {
		node.Close()
	}
	hub.Close()

	// Closed brokers must give the sessions' descriptors back; allow
	// slack for runtime pollers and test plumbing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := countFDs(t); n <= baseline+16 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("FDs did not return to baseline: %d now, %d at start", countFDs(t), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
