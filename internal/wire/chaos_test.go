package wire

import (
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/obs"
	"dpn/internal/proclib"
)

// Chaos variant of the §4.3 redirection tests: every broker runs with
// latency/jitter fault injection and resilient links while a channel's
// writer end migrates twice (A→C, then C→D). Drops and partitions are
// deliberately absent — the MOVING/REDIRECT handshake itself is not
// fault-protected (see DESIGN.md, "Fault model") — but every frame of
// the handshake and of the data stream crosses a delayed, jittered
// connection, so ordering bugs in the redirect protocol surface.

func chaosWireSeed(t *testing.T, def int64) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED: %v", err)
		}
		return v
	}
	return def
}

func newChaosWireNode(t *testing.T, inj *faults.Injector, res netio.Resilience) *Node {
	t.Helper()
	n := newTestNode(t)
	n.Broker.SetFaults(inj)
	n.Broker.SetResilience(res)
	return n
}

// redirectsSent reads this node's outbound REDIRECT frame counter from
// its observability registry — the link-event evidence that the node
// announced a redirect rather than relaying.
func redirectsSent(n *Node) int64 {
	return n.Obs().Registry().Counter("dpn_broker_frames_total",
		obs.L("dir", "out"), obs.L("kind", "redirect")).Value()
}

func TestChaosRedirectTwiceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	seed := chaosWireSeed(t, 77)
	t.Logf("chaos seed %d", seed)
	inj := faults.New(faults.Config{
		Seed:    seed,
		Latency: 300 * time.Microsecond,
		Jitter:  400 * time.Microsecond,
	})
	res := netio.Resilience{
		HeartbeatEvery: 30 * time.Millisecond,
		MissDeadline:   500 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       60 * time.Millisecond,
		LinkDeadline:   10 * time.Second,
		Seed:           seed,
	}
	a := newChaosWireNode(t, inj, res)
	b := newChaosWireNode(t, inj, res)
	c := newChaosWireNode(t, inj, res)
	d := newChaosWireNode(t, inj, res)

	ch := a.Net.NewChannel("ab", 64)
	src := &proclib.SliceSource{Values: seq(60), Out: ch.Writer()}
	sink := &proclib.Collect{In: ch.Reader()}

	// Hop 1: consumer to B.
	p1, err := Export(a, b.Broker.Addr(), sink)
	if err != nil {
		t.Fatal(err)
	}
	procsB, err := Import(b, ship(t, p1))
	if err != nil {
		t.Fatal(err)
	}
	sinkB := findCollect(procsB)

	// Hop 2: producer to C — the first writer-side redirect.
	p2, err := Export(a, c.Broker.Addr(), src)
	if err != nil {
		t.Fatal(err)
	}
	procsC, err := Import(c, ship(t, p2))
	if err != nil {
		t.Fatal(err)
	}

	// Hop 3: producer again, C → D — the second redirect.
	p3, err := Export(c, d.Broker.Addr(), procsC[0])
	if err != nil {
		t.Fatal(err)
	}
	if p3.Boundary[0].Addr != b.Broker.Addr() {
		t.Fatalf("second redirect points at %q, want B %q", p3.Boundary[0].Addr, b.Broker.Addr())
	}

	aIn, aOut := a.Broker.BytesIn(), a.Broker.BytesOut()
	cIn, cOut := c.Broker.BytesIn(), c.Broker.BytesOut()

	if _, err := SpawnImported(d, ship(t, p3)); err != nil {
		t.Fatal(err)
	}
	for _, p := range procsB {
		b.Net.Spawn(p)
	}
	waitNet(t, d.Net, "final producer node")
	waitNet(t, b.Net, "consumer node")
	if got := sinkB.Values(); !reflect.DeepEqual(got, seq(60)) {
		t.Fatalf("got %v", got)
	}
	// Direct connection, not relaying: neither earlier host moved data
	// after its redirect, and each announced exactly its own redirect.
	if a.Broker.BytesIn() != aIn || a.Broker.BytesOut() != aOut {
		t.Fatal("traffic relayed through A under faults")
	}
	if c.Broker.BytesIn() != cIn || c.Broker.BytesOut() != cOut {
		t.Fatal("traffic relayed through C under faults")
	}
	if redirectsSent(a) == 0 || redirectsSent(c) == 0 {
		t.Fatalf("redirect frames missing from obs counters: A=%d C=%d",
			redirectsSent(a), redirectsSent(c))
	}
	if d.Broker.BytesOut() == 0 || b.Broker.BytesIn() == 0 {
		t.Fatal("expected direct D→B traffic")
	}
}
