package wire

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dpn/internal/conduit"
	"dpn/internal/proclib"
	"dpn/internal/wal"
)

// TestExportThroughDurableTransport: a node whose transport is swapped
// to conduit.Durable still completes the Figure-14 move, and the
// boundary channel's bytes land in a WAL under the journal root. This
// is the -durable CLI path: SetTransport before any Export/Import.
func TestExportThroughDurableTransport(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	a.SetTransport(conduit.Durable{
		Inner: a.Transport(),
		Dir:   dirA,
		Opt:   wal.Options{SegmentBytes: 8 << 10},
		Obs:   a.Obs(),
	})
	b.SetTransport(conduit.Durable{
		Inner: b.Transport(),
		Dir:   dirB,
		Opt:   wal.Options{SegmentBytes: 8 << 10},
		Obs:   b.Obs(),
	})

	ch := a.Net.NewChannel("ab", 64)
	src := &proclib.SliceSource{Values: seq(50), Out: ch.Writer()}
	sink := &proclib.Collect{In: ch.Reader()}

	parcel, err := Export(a, b.Broker.Addr(), sink)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	remoteSink := findCollect(procs)
	if remoteSink == nil {
		t.Fatal("collect did not survive the move")
	}
	for _, p := range procs {
		b.Net.Spawn(p)
	}
	a.Net.Spawn(src)
	waitNet(t, a.Net, "origin network")
	waitNet(t, b.Net, "remote network")
	if got := remoteSink.Values(); !reflect.DeepEqual(got, seq(50)) {
		t.Fatalf("got %v", got)
	}

	// The sender journaled outbound bytes, the receiver inbound ones.
	for _, probe := range []struct{ root, side string }{{dirA, "out"}, {dirB, "in"}} {
		segs, err := filepath.Glob(filepath.Join(probe.root, probe.side, "*", "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no WAL segments under %s/%s (err=%v)", probe.root, probe.side, err)
		}
		var total int64
		for _, s := range segs {
			st, err := os.Stat(s)
			if err != nil {
				t.Fatal(err)
			}
			total += st.Size()
		}
		if total == 0 {
			t.Fatalf("WAL under %s/%s is empty", probe.root, probe.side)
		}
	}
}
