package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"dpn/internal/proclib"
)

// countFDs counts this process's open file descriptors.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatalf("reading /proc/self/fd: %v", err)
	}
	return len(ents)
}

// shipRaw is the goroutine-safe variant of ship: a gob round trip that
// returns its error instead of failing the test.
func shipRaw(p *Parcel) (*Parcel, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, err
	}
	var out Parcel
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func stormVals(offset int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = offset + int64(i)
	}
	return out
}

// TestRendezvousStormBoundedFDs is the rendezvous concurrency stress:
// dozens of client nodes race to export collectors to one hub node, so
// hundreds of channels rendezvous against a single broker at once. No
// rendezvous may be lost (every collector must deliver its exact
// stream), and closing the nodes must return the process to its
// baseline descriptor count — links are pooled per node pair and torn
// down with the broker, so FD growth is bounded by live nodes, not by
// channel count.
func TestRendezvousStormBoundedFDs(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("FD accounting reads /proc/self/fd")
	}
	if testing.Short() {
		t.Skip("rendezvous storm in -short mode")
	}
	const (
		clients   = 80
		chansEach = 3
		perChan   = 40
	)
	baseline := countFDs(t)

	hub, err := NewLocalNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type landed struct {
		col  *proclib.Collect
		want []int64
	}
	var (
		mu      sync.Mutex
		sinks   []landed
		nodes   []*Node
		errsMu  sync.Mutex
		errList []error
	)
	fail := func(err error) {
		errsMu.Lock()
		errList = append(errList, err)
		errsMu.Unlock()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			node, err := NewLocalNode("127.0.0.1:0")
			if err != nil {
				fail(fmt.Errorf("client %d: %w", c, err))
				return
			}
			mu.Lock()
			nodes = append(nodes, node)
			mu.Unlock()

			cut := make([]any, 0, chansEach)
			wants := make([][]int64, 0, chansEach)
			for k := 0; k < chansEach; k++ {
				ch := node.Net.NewChannel(fmt.Sprintf("storm.%d.%d", c, k), 1024)
				vals := stormVals(int64(c)*1_000+int64(k)*100, perChan)
				node.Net.Spawn(&proclib.SliceSource{Values: vals, Out: ch.Writer()})
				cut = append(cut, &proclib.Collect{In: ch.Reader()})
				wants = append(wants, vals)
			}
			parcel, err := Export(node, hub.Broker.Addr(), cut...)
			if err != nil {
				fail(fmt.Errorf("client %d export: %w", c, err))
				return
			}
			shipped, err := shipRaw(parcel)
			if err != nil {
				fail(fmt.Errorf("client %d ship: %w", c, err))
				return
			}
			procs, err := Import(hub, shipped)
			if err != nil {
				fail(fmt.Errorf("client %d import: %w", c, err))
				return
			}
			ci := 0
			for _, p := range procs {
				if col, ok := p.(*proclib.Collect); ok {
					mu.Lock()
					sinks = append(sinks, landed{col: col, want: wants[ci]})
					mu.Unlock()
					ci++
				}
				hub.Net.Spawn(p)
			}
			if ci != chansEach {
				fail(fmt.Errorf("client %d: %d collectors imported, want %d", c, ci, chansEach))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errList {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Sources drain, then the hub's collectors see the cascade close.
	for _, node := range nodes {
		waitNet(t, node.Net, "client node")
	}
	waitNet(t, hub.Net, "hub node")

	if len(sinks) != clients*chansEach {
		t.Fatalf("%d collectors landed, want %d", len(sinks), clients*chansEach)
	}
	for i, s := range sinks {
		got := s.col.Values()
		if !equalInt64(got, s.want) {
			t.Fatalf("collector %d: rendezvous corrupted: got %d elements starting %v, want %d starting %v",
				i, len(got), head(got), len(s.want), head(s.want))
		}
	}

	for _, node := range nodes {
		node.Close()
	}
	hub.Close()

	// Closed brokers must give the descriptors back; allow slack for
	// runtime pollers and test plumbing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := countFDs(t); n <= baseline+16 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("FDs did not return to baseline: %d now, %d at start", countFDs(t), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func head(v []int64) []int64 {
	if len(v) > 4 {
		return v[:4]
	}
	return v
}
