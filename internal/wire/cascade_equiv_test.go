package wire

import (
	"encoding/gob"
	"io"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/token"
)

// The close-cascade equivalence property (satellite of the conduit
// refactor): a Kahn graph must compute the identical stream whether its
// channel is a bare in-proc conduit, a tcp-bound conduit, or a conduit
// whose transport is rebound mid-stream by a live migration — and the
// §3.4 cascade must terminate the graph the same way in all three
// deployments, in both directions (producer EOF flowing down, consumer
// close flowing up).

// lcgSource emits a deterministic pseudorandom int64 sequence, paced so
// mid-stream migrations reliably land mid-stream. Iterations <= 0 runs
// until the consumer's close poisons the output (the upward cascade is
// then the only way the process can stop).
type lcgSource struct {
	core.Iterative
	Out   *core.WritePort
	State int64
}

func (s *lcgSource) Step(env *core.Env) error {
	time.Sleep(50 * time.Microsecond)
	s.State = s.State*6364136223846793005 + 1442695040888963407
	return token.NewWriter(s.Out).WriteInt64(s.State)
}

// capCollect collects int64 elements. With Limit > 0 it closes its
// input after Limit elements (triggering the upward cascade); with
// Limit == 0 it reads until the producer's EOF reaches it (the downward
// cascade). Vals is exported so the collected prefix survives a
// migration; the atomic mirror lets the test poll progress on a live
// process without racing.
type capCollect struct {
	In    *core.ReadPort
	Limit int
	Vals  []int64

	progress atomic.Int64
}

func (c *capCollect) Step(env *core.Env) error {
	if c.Limit > 0 && len(c.Vals) >= c.Limit {
		c.In.Close()
		return io.EOF
	}
	v, err := token.NewReader(c.In).ReadInt64()
	if err != nil {
		return err
	}
	c.Vals = append(c.Vals, v)
	c.progress.Store(int64(len(c.Vals)))
	return nil
}

func init() {
	gob.Register(&lcgSource{})
	gob.Register(&capCollect{})
}

// cascadeCase fixes one cascade direction. iterations > 0 with
// limit == 0 exercises the downward cascade (producer finishes, EOF
// drains to the consumer); iterations <= 0 with limit > 0 exercises the
// upward cascade (consumer closes, ErrReadClosed poisons the producer).
type cascadeCase struct {
	name       string
	iterations int64
	limit      int
	want       int // expected element count
}

var cascadeCases = []cascadeCase{
	{name: "producer-eof", iterations: 120, limit: 0, want: 120},
	{name: "consumer-close", iterations: 0, limit: 120, want: 120},
}

func newCollector(cc cascadeCase, in *core.ReadPort) *capCollect {
	return &capCollect{In: in, Limit: cc.limit}
}

func newSource(cc cascadeCase, out *core.WritePort) *lcgSource {
	s := &lcgSource{Out: out, State: 42}
	s.Iterations = cc.iterations
	return s
}

// runInproc runs the graph on one node: the conduit stays unbound.
func runInproc(t *testing.T, cc cascadeCase) []int64 {
	t.Helper()
	a := newTestNode(t)
	ch := a.Net.NewChannel("eq", 256)
	col := newCollector(cc, ch.Reader())
	a.Net.Spawn(newSource(cc, ch.Writer()))
	a.Net.Spawn(col)
	waitNet(t, a.Net, "inproc network")
	return col.Vals
}

// runTCP exports the collector before execution: the conduit's sink is
// rebound to the tcp transport and the cascade crosses the wire.
func runTCP(t *testing.T, cc cascadeCase) []int64 {
	t.Helper()
	a := newTestNode(t)
	b := newTestNode(t)
	ch := a.Net.NewChannel("eq", 256)
	src := newSource(cc, ch.Writer())
	parcel, err := Export(a, b.Broker.Addr(), newCollector(cc, ch.Reader()))
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	col, ok := procs[0].(*capCollect)
	if !ok {
		t.Fatalf("imported %T", procs[0])
	}
	b.Net.Spawn(col)
	a.Net.Spawn(src)
	waitNet(t, a.Net, "producer node")
	waitNet(t, b.Net, "consumer node")
	return col.Vals
}

// runTCPRebind additionally migrates the running collector B→C once a
// quarter of the stream has flowed: the reader-side rebind drains the
// conduit at a fence, ships the leftover, and resumes on a fresh link.
func runTCPRebind(t *testing.T, cc cascadeCase) []int64 {
	t.Helper()
	a := newTestNode(t)
	b := newTestNode(t)
	c := newTestNode(t)
	ch := a.Net.NewChannel("eq", 256)
	src := newSource(cc, ch.Writer())
	parcel, err := Export(a, b.Broker.Addr(), newCollector(cc, ch.Reader()))
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	colB := procs[0].(*capCollect)
	h := b.Net.Spawn(colB)
	a.Net.Spawn(src)

	deadline := time.Now().Add(10 * time.Second)
	for colB.progress.Load() < int64(cc.want/4) {
		if time.Now().After(deadline) {
			t.Fatal("collector made no progress before migration")
		}
		time.Sleep(time.Millisecond)
	}
	p2, err := Migrate(b, c.Broker.Addr(), h)
	if err != nil {
		t.Fatal(err)
	}
	if n := colB.progress.Load(); n == 0 || n >= int64(cc.want) {
		t.Fatalf("migration did not land mid-stream: %d elements", n)
	}
	procsC, err := Import(c, ship(t, p2))
	if err != nil {
		t.Fatal(err)
	}
	colC := procsC[0].(*capCollect)
	c.Net.Spawn(colC)
	waitNet(t, a.Net, "producer node")
	waitNet(t, b.Net, "old consumer node")
	waitNet(t, c.Net, "new consumer node")
	return colC.Vals
}

func TestCascadeEquivalenceAcrossTransports(t *testing.T) {
	for _, cc := range cascadeCases {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			inproc := runInproc(t, cc)
			if len(inproc) != cc.want {
				t.Fatalf("inproc collected %d elements, want %d", len(inproc), cc.want)
			}
			tcp := runTCP(t, cc)
			if !reflect.DeepEqual(tcp, inproc) {
				t.Fatalf("tcp deployment diverged: %d elements vs %d", len(tcp), len(inproc))
			}
			rebound := runTCPRebind(t, cc)
			if !reflect.DeepEqual(rebound, inproc) {
				t.Fatalf("mid-stream rebind diverged: %d elements vs %d", len(rebound), len(inproc))
			}
		})
	}
}
