package wire

import (
	"encoding/gob"
	"io"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/obs"
	"dpn/internal/token"
)

// The close-cascade equivalence property (satellite of the conduit
// refactor): a Kahn graph must compute the identical stream whether its
// channel is a bare in-proc conduit, a tcp-bound conduit, or a conduit
// whose transport is rebound mid-stream by a live migration — and the
// §3.4 cascade must terminate the graph the same way in all three
// deployments, in both directions (producer EOF flowing down, consumer
// close flowing up).

// lcgSource emits a deterministic pseudorandom int64 sequence, paced so
// mid-stream migrations reliably land mid-stream. Iterations <= 0 runs
// until the consumer's close poisons the output (the upward cascade is
// then the only way the process can stop).
type lcgSource struct {
	core.Iterative
	Out   *core.WritePort
	State int64
}

func (s *lcgSource) Step(env *core.Env) error {
	time.Sleep(50 * time.Microsecond)
	s.State = s.State*6364136223846793005 + 1442695040888963407
	return token.NewWriter(s.Out).WriteInt64(s.State)
}

// capCollect collects int64 elements. With Limit > 0 it closes its
// input after Limit elements (triggering the upward cascade); with
// Limit == 0 it reads until the producer's EOF reaches it (the downward
// cascade). Vals is exported so the collected prefix survives a
// migration; the atomic mirror lets the test poll progress on a live
// process without racing.
type capCollect struct {
	In    *core.ReadPort
	Limit int
	Vals  []int64

	progress atomic.Int64
}

func (c *capCollect) Step(env *core.Env) error {
	if c.Limit > 0 && len(c.Vals) >= c.Limit {
		c.In.Close()
		return io.EOF
	}
	v, err := token.NewReader(c.In).ReadInt64()
	if err != nil {
		return err
	}
	c.Vals = append(c.Vals, v)
	c.progress.Store(int64(len(c.Vals)))
	return nil
}

func init() {
	gob.Register(&lcgSource{})
	gob.Register(&capCollect{})
}

// cascadeCase fixes one cascade direction. iterations > 0 with
// limit == 0 exercises the downward cascade (producer finishes, EOF
// drains to the consumer); iterations <= 0 with limit > 0 exercises the
// upward cascade (consumer closes, ErrReadClosed poisons the producer).
type cascadeCase struct {
	name       string
	iterations int64
	limit      int
	want       int // expected element count
}

var cascadeCases = []cascadeCase{
	{name: "producer-eof", iterations: 120, limit: 0, want: 120},
	{name: "consumer-close", iterations: 0, limit: 120, want: 120},
}

func newCollector(cc cascadeCase, in *core.ReadPort) *capCollect {
	return &capCollect{In: in, Limit: cc.limit}
}

func newSource(cc cascadeCase, out *core.WritePort) *lcgSource {
	s := &lcgSource{Out: out, State: 42}
	s.Iterations = cc.iterations
	return s
}

// runInproc runs the graph on one node: the conduit stays unbound.
func runInproc(t *testing.T, cc cascadeCase) []int64 {
	t.Helper()
	a := newTestNode(t)
	ch := a.Net.NewChannel("eq", 256)
	col := newCollector(cc, ch.Reader())
	a.Net.Spawn(newSource(cc, ch.Writer()))
	a.Net.Spawn(col)
	waitNet(t, a.Net, "inproc network")
	return col.Vals
}

// runTCP exports the collector before execution: the conduit's sink is
// rebound to the node's network transport (per-channel tcp, or mux
// virtual streams when newNode enables multiplexing) and the cascade
// crosses the wire.
func runTCP(t *testing.T, cc cascadeCase, newNode func(*testing.T) *Node) []int64 {
	t.Helper()
	a := newNode(t)
	b := newNode(t)
	ch := a.Net.NewChannel("eq", 256)
	src := newSource(cc, ch.Writer())
	parcel, err := Export(a, b.Broker.Addr(), newCollector(cc, ch.Reader()))
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	col, ok := procs[0].(*capCollect)
	if !ok {
		t.Fatalf("imported %T", procs[0])
	}
	b.Net.Spawn(col)
	a.Net.Spawn(src)
	waitNet(t, a.Net, "producer node")
	waitNet(t, b.Net, "consumer node")
	return col.Vals
}

// runTCPRebind additionally migrates the running collector B→C once a
// quarter of the stream has flowed: the reader-side rebind drains the
// conduit at a fence, ships the leftover, and resumes on a fresh link.
func runTCPRebind(t *testing.T, cc cascadeCase, newNode func(*testing.T) *Node) []int64 {
	t.Helper()
	a := newNode(t)
	b := newNode(t)
	c := newNode(t)
	ch := a.Net.NewChannel("eq", 256)
	src := newSource(cc, ch.Writer())
	parcel, err := Export(a, b.Broker.Addr(), newCollector(cc, ch.Reader()))
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	colB := procs[0].(*capCollect)
	h := b.Net.Spawn(colB)
	a.Net.Spawn(src)

	deadline := time.Now().Add(10 * time.Second)
	for colB.progress.Load() < int64(cc.want/4) {
		if time.Now().After(deadline) {
			t.Fatal("collector made no progress before migration")
		}
		time.Sleep(time.Millisecond)
	}
	p2, err := Migrate(b, c.Broker.Addr(), h)
	if err != nil {
		t.Fatal(err)
	}
	if n := colB.progress.Load(); n == 0 || n >= int64(cc.want) {
		t.Fatalf("migration did not land mid-stream: %d elements", n)
	}
	procsC, err := Import(c, ship(t, p2))
	if err != nil {
		t.Fatal(err)
	}
	colC := procsC[0].(*capCollect)
	c.Net.Spawn(colC)
	waitNet(t, a.Net, "producer node")
	waitNet(t, b.Net, "old consumer node")
	waitNet(t, c.Net, "new consumer node")
	return colC.Vals
}

// --- Compressed-conduit equivalence (PR 8) ---------------------------
//
// The wire compressor must be invisible to the computed stream: a
// batched monotone producer — the shape that actually compresses, and
// the shape that stamps the int64 hint — must yield the identical
// element sequence whether the conduit is in-proc (never compressed),
// tcp-bound (compressed), tcp under chaos faults with replayed chunks
// re-sealed after every reconnect, or rebound mid-stream by a live
// migration whose SealAndDrain races sealed blocks in flight.

// batchSource emits monotone int64 runs through the batch path, so
// every TCP chunk is compressible and shape-hinted.
type batchSource struct {
	core.Iterative
	Out  *core.WritePort
	Next int64
}

func (s *batchSource) Step(env *core.Env) error {
	time.Sleep(50 * time.Microsecond)
	var vals [64]int64
	for i := range vals {
		vals[i] = s.Next
		s.Next++
	}
	return token.NewWriter(s.Out).WriteInt64s(vals[:])
}

// batchCollect drains int64 elements with the batch read path until
// the producer's EOF cascades down.
type batchCollect struct {
	In   *core.ReadPort
	Vals []int64

	progress atomic.Int64
}

func (c *batchCollect) Step(env *core.Env) error {
	var buf [256]int64
	n, err := token.NewReader(c.In).ReadInt64s(buf[:])
	if n > 0 {
		c.Vals = append(c.Vals, buf[:n]...)
		c.progress.Store(int64(len(c.Vals)))
	}
	return err
}

func init() {
	gob.Register(&batchSource{})
	gob.Register(&batchCollect{})
}

const batchEqSteps = 100 // 64 elements per step

func batchEqWant() []int64 {
	want := make([]int64, batchEqSteps*64)
	for i := range want {
		want[i] = int64(i)
	}
	return want
}

func newBatchSource() *batchSource {
	s := &batchSource{}
	s.Iterations = batchEqSteps
	return s
}

// dataCSent reads a node's outbound DATA-C frame counter — the
// evidence that compression actually engaged on its links.
func dataCSent(n *Node) int64 {
	return n.Obs().Registry().Counter("dpn_broker_frames_total",
		obs.L("dir", "out"), obs.L("kind", "data-c")).Value()
}

// runBatchTCP runs the batched graph across a tcp-bound conduit
// between two prepared nodes and returns the collected stream.
func runBatchTCP(t *testing.T, a, b *Node) []int64 {
	t.Helper()
	ch := a.Net.NewChannel("ceq", 256)
	src := newBatchSource()
	src.Out = ch.Writer()
	parcel, err := Export(a, b.Broker.Addr(), &batchCollect{In: ch.Reader()})
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	col := procs[0].(*batchCollect)
	b.Net.Spawn(col)
	a.Net.Spawn(src)
	waitNet(t, a.Net, "producer node")
	waitNet(t, b.Net, "consumer node")
	return col.Vals
}

// runBatchTCPRebind migrates the running collector B→C mid-stream, so
// SealAndDrain fences the compressed-bound conduit with sealed blocks
// in flight.
func runBatchTCPRebind(t *testing.T, a, b, c *Node) []int64 {
	t.Helper()
	ch := a.Net.NewChannel("ceq", 256)
	src := newBatchSource()
	src.Out = ch.Writer()
	parcel, err := Export(a, b.Broker.Addr(), &batchCollect{In: ch.Reader()})
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	colB := procs[0].(*batchCollect)
	h := b.Net.Spawn(colB)
	a.Net.Spawn(src)

	want := batchEqSteps * 64
	deadline := time.Now().Add(10 * time.Second)
	for colB.progress.Load() < int64(want/4) {
		if time.Now().After(deadline) {
			t.Fatal("collector made no progress before migration")
		}
		time.Sleep(time.Millisecond)
	}
	p2, err := Migrate(b, c.Broker.Addr(), h)
	if err != nil {
		t.Fatal(err)
	}
	if n := colB.progress.Load(); n == 0 || n >= int64(want) {
		t.Fatalf("migration did not land mid-stream: %d elements", n)
	}
	procsC, err := Import(c, ship(t, p2))
	if err != nil {
		t.Fatal(err)
	}
	colC := procsC[0].(*batchCollect)
	c.Net.Spawn(colC)
	waitNet(t, a.Net, "producer node")
	waitNet(t, b.Net, "old consumer node")
	waitNet(t, c.Net, "new consumer node")
	return colC.Vals
}

func TestCascadeEquivalenceCompressedConduits(t *testing.T) {
	want := batchEqWant()

	// In-proc: the loopback plane must stay untouched by compression.
	a0 := newTestNode(t)
	ch := a0.Net.NewChannel("ceq", 256)
	src := newBatchSource()
	src.Out = ch.Writer()
	col := &batchCollect{In: ch.Reader()}
	a0.Net.Spawn(src)
	a0.Net.Spawn(col)
	waitNet(t, a0.Net, "inproc network")
	if !reflect.DeepEqual(col.Vals, want) {
		t.Fatalf("inproc collected %d elements, want %d", len(col.Vals), len(want))
	}
	if n := dataCSent(a0); n != 0 {
		t.Fatalf("in-proc deployment sent %d DATA-C frames", n)
	}

	// TCP: identical stream, and compression demonstrably engaged.
	a, b := newTestNode(t), newTestNode(t)
	if got := runBatchTCP(t, a, b); !reflect.DeepEqual(got, want) {
		t.Fatalf("tcp deployment diverged: %d elements", len(got))
	}
	if dataCSent(a) == 0 {
		t.Fatal("tcp deployment never compressed a frame")
	}

	// TCP with compression disabled on the sender: the element stream
	// must again be identical, proving the codec is pure transport.
	ap, bp := newTestNode(t), newTestNode(t)
	ap.Broker.SetCompression(false)
	if got := runBatchTCP(t, ap, bp); !reflect.DeepEqual(got, want) {
		t.Fatalf("compression-off deployment diverged: %d elements", len(got))
	}
	if n := dataCSent(ap); n != 0 {
		t.Fatalf("compression-off sender sent %d DATA-C frames", n)
	}

	// Mid-stream migration: SealAndDrain with sealed blocks in flight.
	ma, mb, mc := newTestNode(t), newTestNode(t), newTestNode(t)
	if got := runBatchTCPRebind(t, ma, mb, mc); !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-stream rebind diverged: %d elements", len(got))
	}
	if dataCSent(ma) == 0 {
		t.Fatal("rebind deployment never compressed a frame")
	}

	// Mux: compressed DATA-C frames tunneled through a shared session
	// must yield the identical stream, with exactly one session per
	// peer pair underneath.
	xa, xb := newMuxWireNode(t), newMuxWireNode(t)
	if got := runBatchTCP(t, xa, xb); !reflect.DeepEqual(got, want) {
		t.Fatalf("mux deployment diverged: %d elements", len(got))
	}
	if dataCSent(xa) == 0 {
		t.Fatal("mux deployment never compressed a frame")
	}
	if xa.Broker.MuxSessions() != 1 || xb.Broker.MuxSessions() != 1 {
		t.Fatalf("mux deployment sessions: a=%d b=%d, want 1 and 1",
			xa.Broker.MuxSessions(), xb.Broker.MuxSessions())
	}

	// Mux with a mid-stream migration: the fence drains and the rebind
	// lands on a fresh virtual stream (and a fresh session toward the
	// new host) with sealed blocks in flight.
	ya, yb, yc := newMuxWireNode(t), newMuxWireNode(t), newMuxWireNode(t)
	if got := runBatchTCPRebind(t, ya, yb, yc); !reflect.DeepEqual(got, want) {
		t.Fatalf("mux mid-stream rebind diverged: %d elements", len(got))
	}
	if dataCSent(ya) == 0 {
		t.Fatal("mux rebind deployment never compressed a frame")
	}
}

// TestCascadeEquivalenceCompressedChaos reruns the compressed tcp and
// mid-rebind deployments under seeded latency/jitter fault injection
// with resilient links: reconnects replay unacked chunks, which are
// re-sealed per connection, and the stream must still be
// element-identical. Runs under the -chaos gate; replay a failure with
// CHAOS_SEED.
func TestCascadeEquivalenceCompressedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	seed := chaosWireSeed(t, 4242)
	t.Logf("chaos seed %d", seed)
	inj := faults.New(faults.Config{
		Seed:    seed,
		Latency: 200 * time.Microsecond,
		Jitter:  300 * time.Microsecond,
	})
	res := netio.Resilience{
		HeartbeatEvery: 30 * time.Millisecond,
		MissDeadline:   500 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       60 * time.Millisecond,
		LinkDeadline:   10 * time.Second,
		Seed:           seed,
	}
	want := batchEqWant()

	a, b := newChaosWireNode(t, inj, res), newChaosWireNode(t, inj, res)
	if got := runBatchTCP(t, a, b); !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos tcp deployment diverged: %d elements", len(got))
	}
	if dataCSent(a) == 0 {
		t.Fatal("chaos tcp deployment never compressed a frame")
	}

	ma, mb, mc := newChaosWireNode(t, inj, res), newChaosWireNode(t, inj, res), newChaosWireNode(t, inj, res)
	if got := runBatchTCPRebind(t, ma, mb, mc); !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos mid-rebind deployment diverged: %d elements", len(got))
	}
}

func TestCascadeEquivalenceAcrossTransports(t *testing.T) {
	for _, cc := range cascadeCases {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			inproc := runInproc(t, cc)
			if len(inproc) != cc.want {
				t.Fatalf("inproc collected %d elements, want %d", len(inproc), cc.want)
			}
			tcp := runTCP(t, cc, newTestNode)
			if !reflect.DeepEqual(tcp, inproc) {
				t.Fatalf("tcp deployment diverged: %d elements vs %d", len(tcp), len(inproc))
			}
			rebound := runTCPRebind(t, cc, newTestNode)
			if !reflect.DeepEqual(rebound, inproc) {
				t.Fatalf("mid-stream rebind diverged: %d elements vs %d", len(rebound), len(inproc))
			}
			muxed := runTCP(t, cc, newMuxWireNode)
			if !reflect.DeepEqual(muxed, inproc) {
				t.Fatalf("mux deployment diverged: %d elements vs %d", len(muxed), len(inproc))
			}
			muxRebound := runTCPRebind(t, cc, newMuxWireNode)
			if !reflect.DeepEqual(muxRebound, inproc) {
				t.Fatalf("mux mid-stream rebind diverged: %d elements vs %d", len(muxRebound), len(inproc))
			}
		})
	}
}
