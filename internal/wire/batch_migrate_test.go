package wire

import (
	"encoding/gob"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

// burstSource emits int64 elements in bursts with pauses between them,
// so the downstream batch decoder reliably finds Buffered() bytes to
// drain after its first blocking read — the exact state the RESUME
// byte-accounting must survive.
type burstSource struct {
	core.Iterative
	Out  *core.WritePort
	next int64
}

func (s *burstSource) Step(env *core.Env) error {
	time.Sleep(200 * time.Microsecond)
	var vals [8]int64
	for i := range vals {
		vals[i] = s.next
		s.next++
	}
	return token.NewWriter(s.Out).WriteInt64s(vals[:])
}

// batchRelay copies int64 elements with the batched decoder: each step
// blocks for one element, then drains whatever Buffered() reports. A
// migration parked between steps must account exactly for the bytes
// those drains consumed, or elements are duplicated or lost at RESUME.
type batchRelay struct {
	In    *core.ReadPort
	Out   *core.WritePort
	Count int64

	progress atomic.Int64
}

func (r *batchRelay) Step(env *core.Env) error {
	var buf [37]int64 // deliberately not a multiple of the burst size
	n, err := token.NewReader(r.In).ReadInt64s(buf[:])
	if n > 0 {
		if werr := token.NewWriter(r.Out).WriteInt64s(buf[:n]); werr != nil {
			return werr
		}
		r.Count += int64(n)
		r.progress.Store(r.Count)
	}
	return err
}

// floatBatchRelay is batchRelay for the float64 batch decoders.
type floatBatchRelay struct {
	In  *core.ReadPort
	Out *core.WritePort
}

func (r *floatBatchRelay) Step(env *core.Env) error {
	var buf [29]float64
	n, err := token.NewReader(r.In).ReadFloat64s(buf[:])
	if n > 0 {
		if werr := token.NewWriter(r.Out).WriteFloat64s(buf[:n]); werr != nil {
			return werr
		}
	}
	return err
}

func init() {
	gob.Register(&burstSource{})
	gob.Register(&batchRelay{})
	gob.Register(&floatBatchRelay{})
}

// runBatchedRelayMigration drives the shared scenario: a bursty int64
// stream through a batch relay that migrates A→B mid-stream; the sink
// must observe the exact sequence.
func runBatchedRelayMigration(t *testing.T, a, b *Node) {
	t.Helper()
	const bursts = 60
	const total = bursts * 8
	in := a.Net.NewChannel("in", 4096)
	out := a.Net.NewChannel("out", 4096)
	src := &burstSource{Out: in.Writer()}
	src.Iterations = bursts
	relay := &batchRelay{In: in.Reader(), Out: out.Writer()}
	sink := &proclib.Collect{In: out.Reader()}

	a.Net.Spawn(src)
	h := a.Net.Spawn(relay)
	a.Net.Spawn(sink)

	deadline := time.Now().Add(5 * time.Second)
	for relay.progress.Load() < total/4 {
		if time.Now().After(deadline) {
			t.Fatal("relay made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	parcel, err := Migrate(a, b.Broker.Addr(), h)
	if err != nil {
		t.Fatal(err)
	}
	movedAt := relay.Count
	if movedAt == 0 || movedAt >= total {
		t.Fatalf("migration did not land mid-stream: count=%d", movedAt)
	}
	procs, err := Import(b, ship(t, parcel))
	if err != nil {
		t.Fatal(err)
	}
	var relayB *batchRelay
	for _, p := range procs {
		if r, ok := p.(*batchRelay); ok {
			relayB = r
		}
		b.Net.Spawn(p)
	}
	if relayB == nil {
		t.Fatal("relay lost in migration")
	}
	waitNet(t, a.Net, "origin network")
	waitNet(t, b.Net, "destination network")
	if got := sink.Values(); !reflect.DeepEqual(got, seq(total)) {
		t.Fatalf("batched stream damaged: %d values, first %v", len(got), got[:min(12, len(got))])
	}
	if relayB.Count != total {
		t.Fatalf("relay total = %d, want %d (drained bytes misaccounted)", relayB.Count, total)
	}
}

// TestLiveMigrationDuringBatchedReads migrates a relay whose
// ReadInt64s has drained Buffered() bytes beyond the blocking element:
// the RESUME handshake must hand the destination exactly the
// unconsumed remainder of the stream.
func TestLiveMigrationDuringBatchedReads(t *testing.T) {
	runBatchedRelayMigration(t, newTestNode(t), newTestNode(t))
}

// TestChaosBatchedRelayMigration is the fault-schedule variant: every
// frame of the migration handshake and of the relayed stream crosses a
// delayed, jittered connection with resilient links enabled.
func TestChaosBatchedRelayMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	seed := chaosWireSeed(t, 123)
	t.Logf("chaos seed %d", seed)
	inj := faults.New(faults.Config{
		Seed:    seed,
		Latency: 300 * time.Microsecond,
		Jitter:  400 * time.Microsecond,
	})
	res := netio.Resilience{
		HeartbeatEvery: 30 * time.Millisecond,
		MissDeadline:   500 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       60 * time.Millisecond,
		LinkDeadline:   10 * time.Second,
		Seed:           seed,
	}
	runBatchedRelayMigration(t, newChaosWireNode(t, inj, res), newChaosWireNode(t, inj, res))
}

// TestLiveMigrationBatchedFloatBacklog parks a float batch relay with a
// backlog sitting in its input channel — part drained locally by
// ReadFloat64s, the rest shipped — and checks every element crosses
// exactly once.
func TestLiveMigrationBatchedFloatBacklog(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	const total = 500
	in := a.Net.NewChannel("in", 1<<16)
	out := a.Net.NewChannel("out", 1<<16)
	relay := &floatBatchRelay{In: in.Reader(), Out: out.Writer()}
	sink := &proclib.CollectFloat{In: out.Reader()}

	h := a.Net.Spawn(relay)
	a.Net.Spawn(sink)

	w := token.NewWriter(in.Writer())
	want := make([]float64, total)
	for i := range want {
		want[i] = float64(i) * 0.5
	}
	if err := w.WriteFloat64s(want); err != nil {
		t.Fatal(err)
	}
	parcel, err := Migrate(a, b.Broker.Addr(), h)
	if err != nil {
		t.Fatal(err)
	}
	in.Writer().Close()
	if _, err := SpawnImported(b, ship(t, parcel)); err != nil {
		t.Fatal(err)
	}
	waitNet(t, a.Net, "origin network")
	waitNet(t, b.Net, "destination network")
	if got := sink.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("float backlog damaged: got %d values, want %d", len(got), total)
	}
}
