// Package wire serializes pieces of a process-network program graph so
// they can be shipped to other machines, re-establishing every channel
// automatically — the Go equivalent of the paper's use of Java Object
// Serialization with writeReplace/readResolve hooks on the stream
// classes (§4.2).
//
// Exporting a set of processes produces a Parcel:
//
//   - Channels connecting two exported processes travel inside the
//     parcel (including any unconsumed buffered data).
//   - Channels crossing the parcel boundary are replaced by network
//     descriptors. The origin node arranges the rendezvous (a token on
//     its broker, or an in-band redirect if the channel was already
//     remote), and the importing node reconnects — directly to whichever
//     node actually hosts the peer end, never relaying through earlier
//     hosts (§4.3).
//
// encoding/gob has no per-encoder context and no object identity, so
// ports are encoded as small IDs resolved through a core.Transfer
// session installed for the duration of the encode/decode. This is the
// central gob workaround of the Go port.
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"dpn/internal/conduit"
	"dpn/internal/core"
	"dpn/internal/deadlock"
	"dpn/internal/netio"
	"dpn/internal/obs"
)

func init() {
	// Composites ship as units (Figure 14 sends a CompositeProcess to a
	// remote server), so the type must be known to gob.
	gob.Register(&core.Composite{})
}

// portsOfDeep discovers ports including those held by the children of
// composite processes, which move with the composite.
func portsOfDeep(p any) []io.Closer {
	if comp, ok := p.(*core.Composite); ok {
		var out []io.Closer
		for _, child := range comp.Procs {
			out = append(out, portsOfDeep(child)...)
		}
		return out
	}
	return core.PortsOf(p)
}

// Node bundles a process network with its network broker and tracks
// which channels are carried by which transport links, so that a second
// move of a channel end can trigger the §4.3 redirection instead of a
// relay. All cross-node bindings flow through the node's conduit
// transport (tcp over the broker; chaos suites install fault injection
// on the same broker, so the binding code path is identical).
type Node struct {
	Net    *core.Network
	Broker *netio.Broker

	tr conduit.Transport

	mu    sync.Mutex
	links map[*core.Channel]conduit.Link
}

// NewNode creates a node from an existing network and broker. The
// broker is re-homed into the network's observability scope so the
// whole node — channels, processes, links, migrations — shares one
// registry and tracer, and the scope's node label is set to the
// broker's listen address (the node's identity towards its peers).
func NewNode(net *core.Network, broker *netio.Broker) *Node {
	scope := net.Obs()
	scope.SetNode(broker.Addr())
	broker.SetObs(scope)
	reg := scope.Registry()
	reg.Help("dpn_wire_parcels_total", "Graph parcels processed by this node, by op (export|import).")
	reg.Help("dpn_wire_migrations_total", "Running processes migrated off this node (§6.1).")
	reg.Help("dpn_wire_link_failures_total", "Channel links that shut down with an error, by channel.")
	return &Node{
		Net:    net,
		Broker: broker,
		tr:     conduit.TCP{Broker: broker},
		links:  make(map[*core.Channel]conduit.Link),
	}
}

// Transport returns the conduit transport this node binds boundary
// channels through.
func (n *Node) Transport() conduit.Transport { return n.tr }

// SetTransport swaps the conduit transport future bindings go through
// — e.g. a conduit.Durable wrapper that journals boundary channels to
// a WAL. Existing links are unaffected; call it before Export/Import
// traffic starts.
func (n *Node) SetTransport(tr conduit.Transport) { n.tr = tr }

// Obs returns the node's unified observability scope.
func (n *Node) Obs() *obs.Scope { return n.Net.Obs() }

// WriteMetrics writes the node's metrics in Prometheus text format.
func (n *Node) WriteMetrics(w io.Writer) error { return n.Obs().WriteProm(w) }

// MetricsText renders the node's metrics as Prometheus text. It is the
// method the deadlock coordinator's metric scrape looks for on a peer.
func (n *Node) MetricsText() (string, error) { return n.Obs().MetricsText(), nil }

// TraceEvents snapshots the node's trace ring, oldest first. The
// compute-server "trace" RPC serves this to remote collectors; a
// driver merging a cluster trace pairs each node's events with its
// name and feeds the set to obs.WriteMergedTrace.
func (n *Node) TraceEvents() []obs.Event { return n.Obs().Tracer().Events() }

// noteWire counts one serialization operation and traces its phase.
func (n *Node) noteWire(op, subject string, arg int64) {
	s := n.Obs()
	switch op {
	case "migrate":
		s.Registry().Counter("dpn_wire_migrations_total").Inc()
	default:
		s.Registry().Counter("dpn_wire_parcels_total", obs.L("op", op)).Inc()
	}
	s.Record(obs.EvMigrate, subject, op, arg)
}

// NewLocalNode creates a node with a fresh network and a broker on
// listenAddr (use "127.0.0.1:0" for tests).
func NewLocalNode(listenAddr string) (*Node, error) {
	b, err := netio.NewBroker(listenAddr)
	if err != nil {
		return nil, err
	}
	return NewNode(core.NewNetwork(), b), nil
}

// Close shuts down the node's broker.
func (n *Node) Close() error { return n.Broker.Close() }

// trackLink records l as the live link carrying ch and watches it. If
// the link can re-arm itself (the §4.3 redirect path replaces the
// serving handle with a fresh one for the writer's next hop), the
// replacement is re-tracked through the same path, so a third move of
// the channel never consults a finished link.
func (n *Node) trackLink(ch *core.Channel, l conduit.Link) {
	if r, ok := l.(conduit.Rearmer); ok {
		r.OnRearm(func(nl conduit.Link) { n.trackLink(ch, nl) })
	}
	n.mu.Lock()
	n.links[ch] = l
	n.mu.Unlock()
	go n.watchLink(ch, l)
}

// watchLink waits for a tracked link to shut down and reports it. A
// link that ends with an error has exhausted its resilience (or, in
// legacy mode, hit any network fault): the local channel end has been
// poisoned and the graph degrades through the §3.4 cascading close.
// The counter and the traced event are how an operator distinguishes
// "graph finished" from "graph degraded". The map entry is dropped
// either way, so a dead handle is never offered a Move or Redirect.
// Local broker shutdown cancels pending rendezvous (finishing their
// links with conduit.ErrBrokerClosed), which terminates these watchers
// instead of leaking them; that case is traced but not counted as a
// failure, since nothing degraded on the wire.
func (n *Node) watchLink(ch *core.Channel, l conduit.Link) {
	err := l.Wait()
	n.mu.Lock()
	if n.links[ch] == l {
		delete(n.links, ch)
	}
	n.mu.Unlock()
	if err != nil {
		s := n.Obs()
		if errors.Is(err, conduit.ErrBrokerClosed) {
			s.Record(obs.EvLink, ch.Name(), "shutdown", 0)
			return
		}
		s.Registry().Counter("dpn_wire_link_failures_total", obs.L("channel", ch.Name())).Inc()
		s.Record(obs.EvLink, ch.Name(), "fail", 0)
	}
}

func (n *Node) linkFor(ch *core.Channel) conduit.Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.links[ch]
}

// PortDescriptor tells the importing node how to reconnect one boundary
// channel end.
type PortDescriptor struct {
	ID       uint32 // transfer-session port ID referenced from the blob
	Side     string // "reader" or "writer" — the side inside the parcel
	Mode     string // "dial" (connect to Addr) or "serve" (peer dials us)
	Addr     string // broker address to dial, for Mode "dial"
	Token    string // rendezvous token
	Name     string // channel name (diagnostics)
	Capacity int    // channel buffer capacity to recreate
	Leftover []byte // unconsumed bytes that travel with a moving reader
}

// ChannelDescriptor recreates a channel internal to the parcel.
type ChannelDescriptor struct {
	ReadID   uint32
	WriteID  uint32
	Name     string
	Capacity int
	Buffered []byte // unconsumed data preserved across the move (§3.3)
}

// Parcel is a serialized piece of a program graph.
type Parcel struct {
	Blob     []byte // gob of the process values, ports encoded as IDs
	Boundary []PortDescriptor
	Internal []ChannelDescriptor
}

// Export serializes procs (each a Process or Stepper, with exported
// port fields) for shipment to the node whose broker listens at
// destAddr. The processes must not be executing during the export:
// either they have not been spawned yet (the paper's usage — graphs are
// distributed before execution begins) or they have been suspended and
// ejected at a step boundary (Migrate, the §6.1 future work this port
// implements). Processes connected to the exported ones may keep
// running throughout: their channel ends stay put, and data they
// produce or consume concurrently flows through the re-established
// links.
//
// After Export returns, the exported processes' ports are detached on
// this node — the graph piece now lives in the parcel.
func Export(n *Node, destAddr string, procs ...any) (*Parcel, error) {
	type side struct {
		reader *core.ReadPort
		writer *core.WritePort
	}
	chans := make(map[*core.Channel]*side)
	order := []*core.Channel{}
	for _, p := range procs {
		for _, c := range portsOfDeep(p) {
			switch port := c.(type) {
			case *core.ReadPort:
				ch := port.Channel()
				if ch == nil {
					return nil, fmt.Errorf("wire: process %T holds a detached read port", p)
				}
				if chans[ch] == nil {
					chans[ch] = &side{}
					order = append(order, ch)
				}
				if chans[ch].reader != nil && chans[ch].reader != port {
					return nil, fmt.Errorf("wire: channel %s has two readers", ch.Name())
				}
				chans[ch].reader = port
			case *core.WritePort:
				ch := port.Channel()
				if ch == nil {
					return nil, fmt.Errorf("wire: process %T holds a detached write port", p)
				}
				if chans[ch] == nil {
					chans[ch] = &side{}
					order = append(order, ch)
				}
				if chans[ch].writer != nil && chans[ch].writer != port {
					return nil, fmt.Errorf("wire: channel %s has two writers", ch.Name())
				}
				chans[ch].writer = port
			default:
				return nil, fmt.Errorf("wire: process %T reports an unknown port type %T", p, c)
			}
		}
	}

	t := core.NewTransfer()
	parcel := &Parcel{}
	for _, ch := range order {
		s := chans[ch]
		switch {
		case s.reader != nil && s.writer != nil:
			// Internal channel: both ends move; carry the buffer along.
			cd := ChannelDescriptor{
				ReadID:   t.RegisterRead(s.reader),
				WriteID:  t.RegisterWrite(s.writer),
				Name:     ch.Name(),
				Capacity: ch.Pipe().Cap(),
				Buffered: ch.Pipe().Drain(),
			}
			s.reader.Detach()
			s.writer.Detach()
			parcel.Internal = append(parcel.Internal, cd)

		case s.reader != nil:
			// The consuming end moves.
			pd, err := exportReader(n, t, ch, s.reader, destAddr)
			if err != nil {
				return nil, err
			}
			parcel.Boundary = append(parcel.Boundary, pd)

		case s.writer != nil:
			// The producing end moves.
			pd, err := exportWriter(n, t, ch, s.writer)
			if err != nil {
				return nil, err
			}
			parcel.Boundary = append(parcel.Boundary, pd)
		}
	}

	var buf bytes.Buffer
	err := core.WithTransfer(t, func() error {
		return gob.NewEncoder(&buf).Encode(&procs)
	})
	if err != nil {
		return nil, fmt.Errorf("wire: encoding processes: %w", err)
	}
	parcel.Blob = buf.Bytes()
	n.noteWire("export", destAddr, int64(len(parcel.Blob)))
	return parcel, nil
}

// exportReader handles a moving consuming end. If the channel is fully
// local, the origin keeps the producing side and rebinds the conduit's
// sink to the transport (the destination dials us and drains the
// buffer); if the channel was itself fed over the network (its writer
// moved away earlier), the live inbound binding is rebound instead: the
// writer host is told to fence and reconnect directly to the reader's
// new home, and the bytes delivered before the fence travel inside the
// parcel (drain → rebind → resume at offset).
func exportReader(n *Node, t *core.Transfer, ch *core.Channel, r *core.ReadPort, destAddr string) (PortDescriptor, error) {
	pd := PortDescriptor{
		ID:       t.RegisterRead(r),
		Side:     "reader",
		Name:     ch.Name(),
		Capacity: ch.Pipe().Cap(),
	}
	if l := n.linkFor(ch); l != nil && !l.Outbound() {
		// Case: reader moving while its writer is already remote. Tell
		// the writer host to rebind directly to the destination.
		token := n.Broker.NewToken()
		if err := l.Move(destAddr, token); err != nil {
			return pd, fmt.Errorf("wire: moving reader of %s: %w", ch.Name(), err)
		}
		// Everything delivered before the fence sits in the conduit;
		// seal it and let the drained bytes travel with the parcel.
		r.Detach()
		leftover, err := ch.Conduit().SealAndDrain()
		if err != nil {
			return pd, err
		}
		pd.Mode = "serve"
		pd.Token = token
		pd.Leftover = leftover
		return pd, nil
	}
	// Fully local channel: the producing side stays; rebind the
	// conduit's sink outward. The detach hands the exit to the conduit's
	// new binding, and the channel capacity becomes the credit window.
	token := n.Broker.NewToken()
	r.Detach()
	l, err := ch.Conduit().BindSink(n.tr, conduit.Endpoint{Token: token}, ch.Pipe().Cap())
	if err != nil {
		return pd, err
	}
	n.trackLink(ch, l)
	pd.Mode = "dial"
	pd.Addr = n.Broker.Addr()
	pd.Token = token
	return pd, nil
}

// exportWriter handles a moving producing end. If the channel is fully
// local, the origin keeps the consuming side and rebinds the conduit's
// source to the transport (the destination dials us and feeds the
// buffer); if the producing end was already remote-bound (it moved
// here earlier or its reader moved away), the §4.3 REDIRECT is the
// second rebind: the reader host re-arms for the destination, which
// connects straight to it.
func exportWriter(n *Node, t *core.Transfer, ch *core.Channel, w *core.WritePort) (PortDescriptor, error) {
	pd := PortDescriptor{
		ID:       t.RegisterWrite(w),
		Side:     "writer",
		Name:     ch.Name(),
		Capacity: ch.Pipe().Cap(),
	}
	if l := n.linkFor(ch); l != nil && l.Outbound() {
		// Case: writer moving while its reader is already remote (the
		// Figure 15 second hop). Announce the redirect, drain, and step
		// out of the path.
		token := n.Broker.NewToken()
		peer, err := l.Redirect(token)
		if err != nil {
			return pd, fmt.Errorf("wire: redirecting writer of %s: %w", ch.Name(), err)
		}
		if sink := w.Detach(); sink != nil {
			sink.Close() // lets the outbound link drain to the redirect frame
		}
		if err := l.Wait(); err != nil {
			return pd, err
		}
		pd.Mode = "dial"
		pd.Addr = peer
		pd.Token = token
		return pd, nil
	}
	// Fully local channel: the consuming side stays; rebind the
	// conduit's source inward.
	token := n.Broker.NewToken()
	w.Detach()
	l, err := ch.Conduit().BindSource(n.tr, conduit.Endpoint{Token: token})
	if err != nil {
		return pd, err
	}
	n.trackLink(ch, l)
	pd.Mode = "dial"
	pd.Addr = n.Broker.Addr()
	pd.Token = token
	return pd, nil
}

// Import reconstructs the processes of a parcel on this node,
// recreating internal channels and reconnecting boundary channels over
// the network. The returned processes are ready to spawn on n.Net.
func Import(n *Node, parcel *Parcel) ([]any, error) {
	t := core.NewTransfer()
	for _, cd := range parcel.Internal {
		ch := n.Net.NewChannel(cd.Name, max(cd.Capacity, len(cd.Buffered)))
		if err := ch.Conduit().Restore(cd.Buffered); err != nil {
			return nil, fmt.Errorf("wire: restoring buffer of %s: %w", cd.Name, err)
		}
		t.ProvideRead(cd.ReadID, ch.Reader())
		t.ProvideWrite(cd.WriteID, ch.Writer())
	}
	for _, pd := range parcel.Boundary {
		switch pd.Side {
		case "reader":
			// The moved reader resumes at its drained offset: leftovers
			// are restored into the conduit first, then the source is
			// rebound to the transport so post-fence bytes follow.
			ch := n.Net.NewChannel(pd.Name, max(pd.Capacity, len(pd.Leftover)))
			if err := ch.Conduit().Restore(pd.Leftover); err != nil {
				return nil, fmt.Errorf("wire: restoring leftover of %s: %w", pd.Name, err)
			}
			t.ProvideRead(pd.ID, ch.Reader())
			ep := conduit.Endpoint{Token: pd.Token}
			if pd.Mode == "dial" {
				ep.Addr = pd.Addr
			}
			l, err := ch.Conduit().BindSource(n.tr, ep)
			if err != nil {
				return nil, fmt.Errorf("wire: reconnecting reader %s: %w", pd.Name, err)
			}
			n.trackLink(ch, l)
		case "writer":
			ch := n.Net.NewChannel(pd.Name, pd.Capacity)
			t.ProvideWrite(pd.ID, ch.Writer())
			ch.Reader().Detach()
			if pd.Mode != "dial" {
				return nil, fmt.Errorf("wire: writer descriptor %s must dial", pd.Name)
			}
			ep := conduit.Endpoint{Addr: pd.Addr, Token: pd.Token}
			l, err := ch.Conduit().BindSink(n.tr, ep, pd.Capacity)
			if err != nil {
				return nil, fmt.Errorf("wire: reconnecting writer %s: %w", pd.Name, err)
			}
			n.trackLink(ch, l)
		default:
			return nil, fmt.Errorf("wire: unknown descriptor side %q", pd.Side)
		}
	}

	var procs []any
	err := core.WithTransfer(t, func() error {
		return gob.NewDecoder(bytes.NewReader(parcel.Blob)).Decode(&procs)
	})
	if err != nil {
		return nil, fmt.Errorf("wire: decoding processes: %w", err)
	}
	n.noteWire("import", n.Broker.Addr(), int64(len(parcel.Blob)))
	return procs, nil
}

// SpawnImported imports a parcel and spawns every process it contains.
func SpawnImported(n *Node, parcel *Parcel) ([]*core.Proc, error) {
	procs, err := Import(n, parcel)
	if err != nil {
		return nil, err
	}
	out := make([]*core.Proc, 0, len(procs))
	for _, p := range procs {
		out = append(out, n.Net.Spawn(p))
	}
	return out, nil
}

// Migrate implements the paper's §6.1 future work — moving a process
// *after execution has begun*: the process is suspended at its next
// step boundary, ejected from its goroutine with every port left open,
// and exported for the node at destAddr. Unconsumed data buffered in
// its channels flows through the re-established network links (or
// travels inside the parcel for channels internal to the move), so the
// streams the graph computes are unchanged — determinacy holds across
// the migration.
//
// The caller ships the returned parcel (server.Client.RunParcel) and
// the destination spawns it; the process resumes from its exported
// state. Only exported fields survive the move, exactly as
// non-transient fields do under Java serialization.
func Migrate(n *Node, destAddr string, proc *core.Proc) (*Parcel, error) {
	if err := proc.Suspend(); err != nil {
		return nil, err
	}
	body, err := proc.Eject()
	if err != nil {
		return nil, err
	}
	parcel, err := Export(n, destAddr, body)
	if err == nil {
		n.noteWire("migrate", proc.Name(), 0)
	}
	return parcel, err
}

// DeadlockStatus implements deadlock.Peer: a snapshot of this node's
// scheduling state for the distributed deadlock coordinator (§6.2).
func (n *Node) DeadlockStatus() (deadlock.NodeStatus, error) {
	st := deadlock.NodeStatus{
		Live:       n.Net.Live(),
		Blocked:    n.Net.Blocked(),
		Generation: n.Net.Generation(),
		BytesIn:    n.Broker.BytesIn(),
		BytesOut:   n.Broker.BytesOut(),
	}
	for _, ch := range n.Net.Channels() {
		if ch.Pipe().WakePending() {
			st.WakePending = true
		}
		if ch.Pipe().WriteBlockedOnFull() {
			st.FullChannels = append(st.FullChannels, deadlock.ChannelRef{
				Name: ch.Name(),
				Cap:  ch.Pipe().Cap(),
			})
		}
	}
	return st, nil
}

// GrowChannel implements deadlock.Peer: grow the named channel's
// buffer, waking blocked writers.
func (n *Node) GrowChannel(name string, newCap int) (int, error) {
	for _, ch := range n.Net.Channels() {
		if ch.Name() == name {
			return ch.Pipe().Grow(newCap), nil
		}
	}
	return 0, fmt.Errorf("wire: no channel named %q", name)
}
