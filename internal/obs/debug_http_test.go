package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// The debug endpoint serves the pprof index alongside /metrics and
// /trace; the plain endpoint must NOT expose it (profiles leak stack
// data, so they are opt-in via -pprof).
func TestServeDebugScopeExposesPprof(t *testing.T) {
	scope := NewScope()
	scope.SetNode("t1")
	scope.Counter("dpn_test_total").Inc()

	hs, err := ServeDebugScope("127.0.0.1:0", scope)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + hs.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code=%d body=%.80q", code, body)
	}
	if code, body := get("/debug/pprof/goroutine?debug=1"); code != http.StatusOK || !strings.Contains(body, "goroutine profile") {
		t.Fatalf("goroutine profile: code=%d body=%.80q", code, body)
	}
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics gone from debug endpoint: %d", code)
	}

	plain, err := ServeScope("127.0.0.1:0", scope)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	resp, err := http.Get("http://" + plain.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("plain endpoint serves pprof without -pprof")
	}
}
