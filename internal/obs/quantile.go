package obs

import "math"

// Quantile estimates the p-quantile (0 <= p <= 1) of a histogram
// sample from its cumulative buckets, interpolating linearly within
// the bucket that contains the target rank — the same estimator
// Prometheus's histogram_quantile uses. It works identically on
// samples from Registry.Samples and on samples reconstructed from
// exposition text by ParseProm, which is what lets the soak driver
// report p50/p95/p99 from a scrape.
//
// Observations are assumed non-negative (every histogram in this
// repository measures a duration), so the first bucket interpolates
// from zero. When the rank lands in the +Inf bucket the highest finite
// bound is returned — the histogram cannot resolve further. NaN is
// returned for a non-histogram sample, an empty histogram, or a NaN p.
func (s Sample) Quantile(p float64) float64 {
	if s.Kind != KindHistogram || s.Count <= 0 || len(s.Buckets) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	lower, prev := 0.0, int64(0)
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return lower
			}
			in := b.Count - prev
			if in <= 0 {
				return lower
			}
			frac := (rank - float64(prev)) / float64(in)
			return lower + (b.UpperBound-lower)*frac
		}
		lower, prev = b.UpperBound, b.Count
	}
	return lower
}
