package obs

import (
	"sync/atomic"
	"time"
)

// Sampler mints causal trace IDs for a fraction of the units passing a
// tap point (a pool intake, an outbound link's DATA stream). Every Nth
// call to Sample returns a fresh non-zero trace ID; the rest return 0,
// which downstream code treats as "not sampled" and propagates for
// free. All methods are nil-safe, so an unconfigured tap costs one nil
// check.
type Sampler struct {
	every uint64
	seed  uint64
	n     atomic.Uint64
	ids   atomic.Uint64
}

// NewSampler returns a sampler that marks one unit in every `every`
// (every == 1 samples everything; every <= 0 returns nil — sampling
// disabled).
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return nil
	}
	return &Sampler{
		every: uint64(every),
		seed:  uint64(time.Now().UnixNano()),
	}
}

// Sample counts one unit and returns a fresh trace ID if this unit is
// selected, 0 otherwise.
func (s *Sampler) Sample() uint64 {
	if s == nil {
		return 0
	}
	if s.n.Add(1)%s.every != 0 {
		return 0
	}
	return s.NewID()
}

// NewID mints a non-zero trace ID without consuming a sampling slot.
// IDs are unique within a sampler and collide across nodes only if two
// samplers share a creation nanosecond and a sequence number.
func (s *Sampler) NewID() uint64 {
	if s == nil {
		return 0
	}
	id := mix64(s.seed + s.ids.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// spreads sequential inputs across the full 64-bit space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
