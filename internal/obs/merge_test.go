package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses a Chrome trace document back into its entries.
func decodeTrace(t *testing.T, doc string) []traceEvent {
	t.Helper()
	var parsed struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, doc)
	}
	return parsed.TraceEvents
}

// Two nodes whose clocks disagree wildly: node B's tracer epoch makes
// the wire-in of a sampled frame appear *before* the wire-out on node
// A. The merge must shift B so every causal edge reads forward.
func TestWriteMergedTraceCausalOrder(t *testing.T) {
	const id = 0x1234
	nodes := []NodeTrace{
		{Node: "nodeA:7001", Events: []Event{
			{TS: 5_000_000, Type: EvSpan, Name: "tok", Detail: "wire-out", Arg: id},
		}},
		{Node: "nodeB:7002", Events: []Event{
			{TS: 1_000, Type: EvSpan, Name: "tok", Detail: "wire-in", Arg: id},
			{TS: 2_000, Type: EvTask, Name: "pool:lane0", Detail: "result", Arg: 7},
		}},
	}
	var b strings.Builder
	if err := WriteMergedTrace(&b, nodes); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, b.String())

	var outTS, inTS, resultTS float64
	var haveFlowS, haveFlowF bool
	procs := make(map[int]string)
	for _, ev := range evs {
		switch {
		case ev.Name == "process_name" && ev.Ph == "M":
			procs[ev.PID] = ev.Args["name"].(string)
		case ev.Name == "span" && ev.Ph == "i":
			if ev.Args["detail"] == "wire-out" {
				outTS = ev.TS
			}
			if ev.Args["detail"] == "wire-in" {
				inTS = ev.TS
			}
		case ev.Name == "task" && ev.Ph == "i":
			resultTS = ev.TS
		case ev.Ph == "s":
			haveFlowS = true
		case ev.Ph == "f":
			haveFlowF = true
			if ev.BP != "e" {
				t.Errorf("flow end missing bp=e: %+v", ev)
			}
		}
	}
	if procs[1] != "nodeA:7001" || procs[2] != "nodeB:7002" {
		t.Fatalf("process metadata = %v", procs)
	}
	if !(inTS > outTS) {
		t.Fatalf("causal order violated: wire-in %v <= wire-out %v", inTS, outTS)
	}
	if !(resultTS > inTS) {
		t.Fatalf("node-local order broken by the shift: result %v <= wire-in %v", resultTS, inTS)
	}
	if !haveFlowS || !haveFlowF {
		t.Fatal("flow arrow events missing")
	}
}

// A node whose clock is already ahead must not be shifted: the fixpoint
// only raises offsets, and the minimum settles at zero.
func TestWriteMergedTraceAlreadyOrdered(t *testing.T) {
	nodes := []NodeTrace{
		{Node: "a", Events: []Event{{TS: 100, Type: EvSpan, Name: "t", Detail: "wire-out", Arg: 9}}},
		{Node: "b", Events: []Event{{TS: 9_000_000, Type: EvSpan, Name: "t", Detail: "wire-in", Arg: 9}}},
	}
	var b strings.Builder
	if err := WriteMergedTrace(&b, nodes); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTrace(t, b.String()) {
		if ev.Ph != "i" {
			continue
		}
		switch ev.Args["detail"] {
		case "wire-out":
			if ev.TS != 0.1 {
				t.Errorf("wire-out shifted: ts=%v", ev.TS)
			}
		case "wire-in":
			if ev.TS != 9000 {
				t.Errorf("wire-in shifted: ts=%v", ev.TS)
			}
		}
	}
}

// Same trace ID seen k times pairs the k-th out with the k-th in, and
// same-node pairs (a local hop recorded by both ends of a loopback
// link) are skipped rather than fabricating an edge.
func TestMatchEdgesOrderedPairing(t *testing.T) {
	nodes := []NodeTrace{
		{Node: "a", Events: []Event{
			{TS: 10, Type: EvSpan, Name: "t", Detail: "wire-out", Arg: 5},
			{TS: 30, Type: EvSpan, Name: "t", Detail: "wire-out", Arg: 5},
		}},
		{Node: "b", Events: []Event{
			{TS: 1, Type: EvSpan, Name: "t", Detail: "wire-in", Arg: 5},
			{TS: 2, Type: EvSpan, Name: "t", Detail: "wire-in", Arg: 5},
		}},
	}
	edges := matchEdges(nodes)
	if len(edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(edges))
	}
	for _, e := range edges {
		if e.from != 0 || e.to != 1 {
			t.Fatalf("edge direction = %+v", e)
		}
	}
	if !(edges[0].outTS <= edges[1].outTS && edges[0].inTS <= edges[1].inTS) {
		t.Fatalf("pairing not ordered: %+v", edges)
	}
}
