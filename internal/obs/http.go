package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// HTTPServer is the opt-in observability endpoint: it serves the
// Prometheus text exposition at /metrics and the Chrome trace_event
// JSON at /trace. Close shuts the listener and every active connection
// down and waits for the serve goroutine to exit, so servers that
// enable metrics leak nothing on shutdown.
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// ServeHTTP starts the observability endpoint on addr (use
// "127.0.0.1:0" to pick a free port). metrics writes the exposition;
// trace writes the trace JSON; either may be nil to disable that path.
func ServeHTTP(addr string, metrics, trace func(io.Writer) error) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>dpn observability</h1>`+
			`<p><a href="/metrics">/metrics</a> Prometheus text exposition</p>`+
			`<p><a href="/trace">/trace</a> Chrome trace_event JSON (load in chrome://tracing or Perfetto)</p>`+
			`</body></html>`)
	})
	if metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := metrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="dpn-trace.json"`)
			if err := trace(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	s := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// ServeScope starts the observability endpoint for one scope.
func ServeScope(addr string, scope *Scope) (*HTTPServer, error) {
	return ServeHTTP(addr, scope.WriteProm, scope.WriteTrace)
}

// Addr returns the endpoint's listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes active connections, and waits for
// the serve goroutine to exit.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}
