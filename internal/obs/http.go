package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HTTPServer is the opt-in observability endpoint: it serves the
// Prometheus text exposition at /metrics and the Chrome trace_event
// JSON at /trace. Close shuts the listener and every active connection
// down and waits for the serve goroutine to exit, so servers that
// enable metrics leak nothing on shutdown.
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// ServeHTTP starts the observability endpoint on addr (use
// "127.0.0.1:0" to pick a free port). metrics writes the exposition;
// trace writes the trace JSON; either may be nil to disable that path.
func ServeHTTP(addr string, metrics, trace func(io.Writer) error) (*HTTPServer, error) {
	return serve(addr, metrics, trace, false)
}

// ServeDebugHTTP is ServeHTTP with the net/http/pprof profiling
// handlers mounted under /debug/pprof/, so a node's CPU, heap, mutex,
// and goroutine profiles are reachable through the same mux as its
// metrics.
func ServeDebugHTTP(addr string, metrics, trace func(io.Writer) error) (*HTTPServer, error) {
	return serve(addr, metrics, trace, true)
}

func serve(addr string, metrics, trace func(io.Writer) error, debug bool) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>dpn observability</h1>`+
			`<p><a href="/metrics">/metrics</a> Prometheus text exposition</p>`+
			`<p><a href="/trace">/trace</a> Chrome trace_event JSON (load in chrome://tracing or Perfetto)</p>`)
		if debug {
			fmt.Fprint(w, `<p><a href="/debug/pprof/">/debug/pprof/</a> Go runtime profiles</p>`)
		}
		fmt.Fprint(w, `</body></html>`)
	})
	if metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := metrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="dpn-trace.json"`)
			if err := trace(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// ServeScope starts the observability endpoint for one scope.
func ServeScope(addr string, scope *Scope) (*HTTPServer, error) {
	return ServeHTTP(addr, scope.WriteProm, scope.WriteTrace)
}

// ServeDebugScope starts the observability endpoint for one scope with
// the pprof handlers mounted (see ServeDebugHTTP).
func ServeDebugScope(addr string, scope *Scope) (*HTTPServer, error) {
	return ServeDebugHTTP(addr, scope.WriteProm, scope.WriteTrace)
}

// Addr returns the endpoint's listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes active connections, and waits for
// the serve goroutine to exit.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}
