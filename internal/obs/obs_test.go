package obs

import (
	"math"
	"sync"
	"testing"
)

// The registry's instruments are updated from every process goroutine
// of a network; this test (run under -race in make check) proves the
// counters, gauges, and histograms tolerate full concurrency and lose
// no updates.
func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", L("op", "write"))
	g := r.Gauge("occupancy")
	h := r.Histogram("latency_seconds", []float64{0.25, 0.5, 0.75})

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				g.Max(int64(i))
				h.Observe(float64(i%4) / 4)
				// Concurrent get-or-create of the same series must
				// return the same instrument.
				r.Counter("hits_total", L("op", "write")).Inc()
			}
		}()
	}
	wg.Wait()

	if got, want := c.Value(), int64(workers*perWorker*4); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got < workers*perWorker {
		t.Errorf("gauge = %d, want >= %d (Max must never lower it)", got, workers*perWorker)
	}
	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	wantSum := float64(workers) * perWorker / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

// Nil instruments are the "unobserved" fast path wired into pipes and
// ports; every method must be a no-op, not a panic.
func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var s *Scope
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	g.Max(1)
	h.Observe(1)
	tr.Record(EvRead, "ch", "", 1)
	s.Record(EvRead, "ch", "", 1)
	s.Counter("x").Inc()
	s.SetNode("n")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Total() != 0 {
		t.Error("nil instruments must read as zero")
	}
}

// A name reused with a different kind must not corrupt the family; the
// caller gets a detached instrument instead.
func TestKindMismatchDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_use").Inc()
	g := r.Gauge("dual_use")
	g.Set(42)
	samples := r.Samples()
	if len(samples) != 1 || samples[0].Kind != KindCounter || samples[0].Value != 1 {
		t.Fatalf("family corrupted by kind mismatch: %+v", samples)
	}
}

// Help may be called before the first instrument registration (the
// wiring code groups Help calls up front); the family's kind is fixed
// by the first real instrument, not by Help.
func TestHelpBeforeRegistration(t *testing.T) {
	r := NewRegistry()
	r.Help("occupancy", "Current buffered bytes.")
	g := r.Gauge("occupancy")
	g.Set(7)
	r.Help("latency_seconds", "Latency.")
	h := r.Histogram("latency_seconds", []float64{1, 2})
	h.Observe(1.5)

	samples := r.Samples()
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if s := byName["occupancy"]; s.Kind != KindGauge || s.Value != 7 {
		t.Errorf("gauge registered after Help is detached: %+v", s)
	}
	if s := byName["latency_seconds"]; s.Kind != KindHistogram || s.Count != 1 {
		t.Errorf("histogram registered after Help is detached: %+v", s)
	}
}

// Label order must not create distinct series.
func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("a", "1"), L("b", "2")).Inc()
	r.Counter("c", L("b", "2"), L("a", "1")).Inc()
	if got := len(r.Samples()); got != 1 {
		t.Fatalf("label permutations created %d series, want 1", got)
	}
	if v := r.Samples()[0].Value; v != 2 {
		t.Fatalf("series value = %d, want 2", v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	s := r.Samples()[0]
	wantCum := []int64{1, 2, 3}
	if len(s.Buckets) != 3 {
		t.Fatalf("got %d buckets, want 3 (two bounds + Inf)", len(s.Buckets))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[2].UpperBound, 1) {
		t.Error("last bucket must be +Inf")
	}
}
