package obs

import (
	"strings"
	"testing"
)

// Golden test of the exposition: families sorted, HELP/TYPE once per
// family, histogram expanded into _bucket/_sum/_count, base labels
// injected first.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("bytes_total", "Bytes moved.")
	r.Counter("bytes_total", L("channel", "ab"), L("op", "write")).Add(128)
	r.Counter("bytes_total", L("channel", "ab"), L("op", "read")).Add(64)
	r.Gauge("occupancy").Set(7)
	h := r.Histogram("wait_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteProm(&b, L("node", "n1")); err != nil {
		t.Fatal(err)
	}
	want := `# HELP bytes_total Bytes moved.
# TYPE bytes_total counter
bytes_total{node="n1",channel="ab",op="read"} 64
bytes_total{node="n1",channel="ab",op="write"} 128
# TYPE occupancy gauge
occupancy{node="n1"} 7
# TYPE wait_seconds histogram
wait_seconds_bucket{node="n1",le="0.5"} 1
wait_seconds_bucket{node="n1",le="1"} 1
wait_seconds_bucket{node="n1",le="+Inf"} 2
wait_seconds_sum{node="n1"} 2.25
wait_seconds_count{node="n1"} 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("name", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if want := `c{name="a\"b\\c\n"} 1` + "\n"; !strings.Contains(b.String(), want) {
		t.Errorf("label not escaped: %q", b.String())
	}
}

// MergeProm joins several node expositions, deduplicating repeated
// HELP/TYPE headers — the multi-node scrape of Coordinator.
// GatherMetrics depends on this producing one valid document.
func TestMergeProm(t *testing.T) {
	mk := func(node string) string {
		r := NewRegistry()
		r.Help("live", "Live processes.")
		r.Gauge("live").Set(3)
		var b strings.Builder
		if err := r.WriteProm(&b, L("node", node)); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	var b strings.Builder
	if err := MergeProm(&b, mk("n1"), mk("n2")); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if strings.Count(got, "# HELP live") != 1 || strings.Count(got, "# TYPE live") != 1 {
		t.Errorf("headers not deduplicated:\n%s", got)
	}
	for _, series := range []string{`live{node="n1"} 3`, `live{node="n2"} 3`} {
		if !strings.Contains(got, series) {
			t.Errorf("merged exposition missing %q:\n%s", series, got)
		}
	}
}
