package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestTracerDisabledByDefault(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(EvRead, "ch", "", 1)
	if tr.Total() != 0 || len(tr.Events()) != 0 {
		t.Error("disabled tracer must record nothing")
	}
}

// The ring must wrap: Total keeps counting, Events returns the newest
// ring-size events oldest-first.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable()
	const total = 8*3 + 5
	for i := 0; i < total; i++ {
		tr.Record(EvWrite, "ch", "", int64(i))
	}
	if got := tr.Total(); got != total {
		t.Fatalf("Total = %d, want %d", got, total)
	}
	if got := tr.Count(EvWrite); got != total {
		t.Fatalf("Count(EvWrite) = %d, want %d (counts must survive eviction)", got, total)
	}
	if got := tr.Count(EvRead); got != 0 {
		t.Fatalf("Count(EvRead) = %d, want 0", got)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("Events returned %d, want ring size 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(total - 8 + i); ev.Arg != want {
			t.Errorf("event %d: arg = %d, want %d (oldest first)", i, ev.Arg, want)
		}
	}
}

// Concurrent recording must be race-free and lose at most transient
// slots (claimed-but-unpublished at snapshot time), never crash.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1024)
	tr.Enable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Record(EvRead, fmt.Sprintf("ch%d", w), "", int64(i))
				if i%100 == 0 {
					tr.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Total(); got != 16000 {
		t.Fatalf("Total = %d, want 16000", got)
	}
}

// WriteTrace must emit valid Chrome trace_event JSON: one object with
// displayTimeUnit and a traceEvents array whose instant events carry
// ts/pid/tid, with thread_name metadata per distinct subject.
func TestWriteTraceJSON(t *testing.T) {
	tr := NewTracer(64)
	tr.Enable()
	tr.Record(EvSpawn, "Sift", "", 0)
	tr.Record(EvWrite, "ints", "", 8)
	tr.Record(EvReconfig, "mod3", "insert-upstream", 0)

	var b strings.Builder
	if err := tr.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 3 events + 3 thread_name metadata records (distinct subjects).
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d trace events, want 6", len(doc.TraceEvents))
	}
	var meta, inst int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "i":
			inst++
			if ev.PID != 1 || ev.TID == 0 {
				t.Errorf("instant event missing pid/tid: %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 || inst != 3 {
		t.Errorf("meta=%d inst=%d, want 3/3", meta, inst)
	}
	if !strings.Contains(b.String(), `"reconfig"`) {
		t.Error("reconfig category missing from trace")
	}
}

// The HTTP endpoint must serve both formats and shut down cleanly (the
// graphs leak test additionally proves no goroutines outlive Close).
func TestHTTPServerServesScopeAndCloses(t *testing.T) {
	scope := NewScope()
	scope.SetNode("t1")
	scope.Tracer().Enable()
	scope.Counter("dpn_test_total").Inc()
	scope.Record(EvSpawn, "p", "", 0)

	hs, err := ServeScope("127.0.0.1:0", scope)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + hs.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}
	metrics, ctype := get("/metrics")
	if !strings.Contains(metrics, `dpn_test_total{node="t1"} 1`) {
		t.Errorf("/metrics missing series:\n%s", metrics)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	trace, ctype := get("/trace")
	var doc map[string]any
	if err := json.Unmarshal([]byte(trace), &doc); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/trace content type %q", ctype)
	}
	if err := hs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + hs.Addr() + "/metrics"); err == nil {
		t.Error("endpoint still serving after Close")
	}
}
