package obs

import (
	"io"
	"strings"
	"sync"
)

// Scope bundles the registry and tracer shared by every component of
// one node (its network, broker, monitor, and server), plus the node
// identity label injected into the exposition. All methods are nil-safe
// and return nil-safe instruments, so components can be wired
// unconditionally and pay nothing when unobserved.
type Scope struct {
	reg    *Registry
	tracer *Tracer

	mu   sync.Mutex
	node string
}

// NewScope returns a scope with a fresh registry and a disabled tracer
// of the default ring size.
func NewScope() *Scope {
	return &Scope{reg: NewRegistry(), tracer: NewTracer(0)}
}

// Registry returns the scope's metric registry (nil for a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the scope's event tracer (nil for a nil scope).
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// SetNode records the node identity (normally the broker address) added
// as a node="..." label to every exposed series.
func (s *Scope) SetNode(node string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.node = node
	s.mu.Unlock()
}

// Node returns the node identity label value.
func (s *Scope) Node() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// Counter is a nil-safe pass-through to the scope's registry.
func (s *Scope) Counter(name string, labels ...Label) *Counter {
	return s.Registry().Counter(name, labels...)
}

// Gauge is a nil-safe pass-through to the scope's registry.
func (s *Scope) Gauge(name string, labels ...Label) *Gauge {
	return s.Registry().Gauge(name, labels...)
}

// Histogram is a nil-safe pass-through to the scope's registry.
func (s *Scope) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return s.Registry().Histogram(name, bounds, labels...)
}

// Record is a nil-safe pass-through to the scope's tracer.
func (s *Scope) Record(typ EventType, name, detail string, arg int64) {
	s.Tracer().Record(typ, name, detail, arg)
}

// WriteProm writes the scope's metrics in Prometheus text format, with
// the node label injected when set.
func (s *Scope) WriteProm(w io.Writer) error {
	if s == nil {
		return nil
	}
	if node := s.Node(); node != "" {
		return s.reg.WriteProm(w, L("node", node))
	}
	return s.reg.WriteProm(w)
}

// MetricsText renders WriteProm into a string (for the metrics RPC).
func (s *Scope) MetricsText() string {
	var b strings.Builder
	s.WriteProm(&b)
	return b.String()
}

// WriteTrace writes the scope's trace ring as Chrome trace_event JSON.
func (s *Scope) WriteTrace(w io.Writer) error {
	if s == nil {
		return NewTracer(1).WriteTrace(w)
	}
	return s.tracer.WriteTrace(w)
}
