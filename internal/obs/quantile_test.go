package obs

import (
	"math"
	"strings"
	"testing"
)

// findSample returns the first sample with the given name whose labels
// include every given key=value pair.
func findSample(t *testing.T, samples []Sample, name string, kv ...string) Sample {
	t.Helper()
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Label(kv[i]) != kv[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	t.Fatalf("no sample %s %v", name, kv)
	return Sample{}
}

func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v ± %v", what, got, want, tol)
	}
}

// TestQuantileUniform checks the estimator against a uniform
// distribution: 400 observations evenly spaced over (0, 4] with bounds
// at every integer. Linear interpolation recovers the exact quantiles.
func TestQuantileUniform(t *testing.T) {
	reg := NewScope().Registry()
	h := reg.Histogram("q_uniform", []float64{1, 2, 3, 4, 5})
	for i := 1; i <= 400; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 4.00
	}
	s := findSample(t, reg.Samples(), "q_uniform")
	near(t, s.Quantile(0.5), 2.0, 0.02, "p50")
	near(t, s.Quantile(0.25), 1.0, 0.02, "p25")
	near(t, s.Quantile(0.95), 3.8, 0.02, "p95")
	near(t, s.Quantile(1), 4.0, 1e-9, "p100")
	near(t, s.Quantile(0), 0.0, 1e-9, "p0")
}

// TestQuantileBimodal checks a known two-cluster distribution: ranks
// falling in an empty middle bucket must resolve to the bucket edges,
// and the clusters' interior quantiles interpolate within their bucket.
func TestQuantileBimodal(t *testing.T) {
	reg := NewScope().Registry()
	h := reg.Histogram("q_bimodal", []float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // bucket (0,1]
	}
	for i := 0; i < 100; i++ {
		h.Observe(3.5) // bucket (3,4]
	}
	s := findSample(t, reg.Samples(), "q_bimodal")
	// Rank 100 sits exactly at the top of the first bucket.
	near(t, s.Quantile(0.5), 1.0, 1e-9, "p50")
	// Rank 50 is the middle of the first bucket's 100 observations.
	near(t, s.Quantile(0.25), 0.5, 1e-9, "p25")
	// Rank 150 is the middle of the (3,4] bucket.
	near(t, s.Quantile(0.75), 3.5, 1e-9, "p75")
}

// TestQuantileOverflow: observations beyond the highest finite bound
// land in +Inf, where the histogram cannot resolve a value; the
// estimator must return the highest finite bound, not infinity.
func TestQuantileOverflow(t *testing.T) {
	reg := NewScope().Registry()
	h := reg.Histogram("q_over", []float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	s := findSample(t, reg.Samples(), "q_over")
	near(t, s.Quantile(0.99), 2.0, 1e-9, "p99")
}

// TestQuantileDegenerate: non-histograms and empty histograms have no
// quantiles.
func TestQuantileDegenerate(t *testing.T) {
	if q := (Sample{Kind: KindCounter, Value: 7}).Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("counter quantile = %v, want NaN", q)
	}
	reg := NewScope().Registry()
	reg.Histogram("q_empty", []float64{1})
	s := findSample(t, reg.Samples(), "q_empty")
	if q := s.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty histogram quantile = %v, want NaN", q)
	}
}

// TestParsePromHistogramBuckets: ParseProm must reconstruct the
// cumulative bucket sequence (including +Inf) from exposition text so
// that quantiles computed from a scrape match those computed from the
// in-memory registry — the property the soak driver's percentile
// report rests on.
func TestParsePromHistogramBuckets(t *testing.T) {
	scope := NewScope()
	reg := scope.Registry()
	h := reg.Histogram("dpn_test_latency_seconds", nil, L("stage", "total"))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-5) // 10µs .. 10ms, uniform
	}
	mem := findSample(t, reg.Samples(), "dpn_test_latency_seconds", "stage", "total")

	var b strings.Builder
	if err := scope.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	parsed := findSample(t, ParseProm(b.String()), "dpn_test_latency_seconds", "stage", "total")

	if len(parsed.Buckets) != len(mem.Buckets) {
		t.Fatalf("parsed %d buckets, want %d", len(parsed.Buckets), len(mem.Buckets))
	}
	for i := range mem.Buckets {
		p, m := parsed.Buckets[i], mem.Buckets[i]
		if p.Count != m.Count {
			t.Fatalf("bucket %d count %d, want %d", i, p.Count, m.Count)
		}
		if !(math.IsInf(p.UpperBound, 1) && math.IsInf(m.UpperBound, 1)) && p.UpperBound != m.UpperBound {
			t.Fatalf("bucket %d bound %v, want %v", i, p.UpperBound, m.UpperBound)
		}
	}
	if !math.IsInf(parsed.Buckets[len(parsed.Buckets)-1].UpperBound, 1) {
		t.Fatal("last parsed bucket is not +Inf")
	}
	if parsed.Count != mem.Count {
		t.Fatalf("parsed count %d, want %d", parsed.Count, mem.Count)
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		pm, pp := mem.Quantile(p), parsed.Quantile(p)
		if math.Abs(pm-pp) > 1e-12 {
			t.Fatalf("quantile %v diverged: memory %v vs parsed %v", p, pm, pp)
		}
	}
}
