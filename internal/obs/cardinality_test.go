package obs

import (
	"fmt"
	"strings"
	"testing"
)

// seriesOf counts the exposition series of one family.
func seriesOf(r *Registry, name string) int {
	n := 0
	for _, s := range r.Samples() {
		if s.Name == name {
			n++
		}
	}
	return n
}

// The cardinality guard caps the label sets of one family: series
// beyond the limit come back as detached instruments (safe to use,
// never exported) and are accounted in dpn_obs_dropped_series_total.
func TestCardinalityGuardDropsBeyondLimit(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(2)
	for i := 0; i < 5; i++ {
		r.Counter("chatty_total", L("id", fmt.Sprint(i))).Inc() // detached beyond the cap, still safe
	}
	if got := seriesOf(r, "chatty_total"); got != 2 {
		t.Fatalf("exported series = %d, want 2", got)
	}
	if got := r.DroppedSeries(); got != 3 {
		t.Fatalf("DroppedSeries = %d, want 3", got)
	}
	var found bool
	for _, s := range r.Samples() {
		if s.Name == "dpn_obs_dropped_series_total" {
			found = true
			if s.Value != 3 {
				t.Fatalf("dropped sample = %d, want 3", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("dpn_obs_dropped_series_total missing from samples")
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dpn_obs_dropped_series_total 3") {
		t.Fatalf("exposition missing dropped-series counter:\n%s", b.String())
	}
}

// The limit is per family, not global: a second family still admits its
// own series, and re-requesting an existing label set returns the live
// instrument rather than dropping.
func TestCardinalityGuardPerFamily(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(1)
	a := r.Counter("fam_a_total", L("k", "x"))
	a.Add(5)
	r.Counter("fam_b_total", L("k", "y")).Inc()
	if got := seriesOf(r, "fam_b_total"); got != 1 {
		t.Fatalf("fam_b series = %d: other family affected by fam_a's population", got)
	}
	if got := r.Counter("fam_a_total", L("k", "x")); got != a {
		t.Fatal("existing series must be returned, not dropped")
	}
	r.Counter("fam_a_total", L("k", "z")).Inc() // beyond the cap: detached
	if got := seriesOf(r, "fam_a_total"); got != 1 {
		t.Fatalf("fam_a series = %d, want 1", got)
	}
	if r.DroppedSeries() != 1 {
		t.Fatalf("DroppedSeries = %d, want 1", r.DroppedSeries())
	}
}

func TestCardinalityGuardDisabled(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(0)
	for i := 0; i < 3*DefaultSeriesLimit; i++ {
		r.Counter("wide_total", L("id", fmt.Sprint(i))).Inc()
	}
	if got := seriesOf(r, "wide_total"); got != 3*DefaultSeriesLimit {
		t.Fatalf("series = %d, want %d", got, 3*DefaultSeriesLimit)
	}
	if r.DroppedSeries() != 0 {
		t.Fatal("dropped count moved with the guard disabled")
	}
}
