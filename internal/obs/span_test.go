package obs

import "testing"

func TestSamplerEveryNth(t *testing.T) {
	s := NewSampler(3)
	ids := make(map[uint64]bool)
	hits := 0
	for i := 1; i <= 12; i++ {
		id := s.Sample()
		if i%3 == 0 {
			if id == 0 {
				t.Fatalf("call %d: expected a trace ID, got 0", i)
			}
			if ids[id] {
				t.Fatalf("call %d: duplicate trace ID %d", i, id)
			}
			ids[id] = true
			hits++
		} else if id != 0 {
			t.Fatalf("call %d: unexpected sample %d", i, id)
		}
	}
	if hits != 4 {
		t.Fatalf("hits = %d, want 4", hits)
	}
}

func TestSamplerEveryOneSamplesAll(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < 5; i++ {
		if s.Sample() == 0 {
			t.Fatal("every=1 sampler returned 0")
		}
	}
}

func TestSamplerNilSafe(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Fatal("NewSampler(0) should disable sampling")
	}
	var s *Sampler
	if s.Sample() != 0 || s.NewID() != 0 {
		t.Fatal("nil sampler must return 0")
	}
}

func TestSamplerIDsNonZero(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < 1000; i++ {
		if s.NewID() == 0 {
			t.Fatal("NewID returned 0")
		}
	}
}
