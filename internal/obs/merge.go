package obs

import (
	"io"
	"sort"
)

// NodeTrace is one node's contribution to a merged cluster trace: the
// node's identity (its broker address) and its event-ring snapshot.
// Timestamps are node-local nanoseconds since that tracer's epoch;
// WriteMergedTrace aligns them.
type NodeTrace struct {
	Node   string
	Events []Event
}

// spanEdge is one matched causal conduit edge: the k-th wire-out of a
// trace ID on some node paired with the k-th wire-in of the same ID on
// another.
type spanEdge struct {
	from, to int   // node indices
	outTS    int64 // sender-local
	inTS     int64 // receiver-local
}

// matchEdges pairs wire-out and wire-in span events by trace ID and
// occurrence order. A sampled DATA frame records exactly one wire-out on
// the sending node and one wire-in on the receiving node with a fresh
// trace ID, so ordered pairing per ID reconstructs the edges without
// any knowledge of the channel topology.
func matchEdges(nodes []NodeTrace) []spanEdge {
	type hop struct {
		node int
		ts   int64
	}
	outs := make(map[int64][]hop)
	ins := make(map[int64][]hop)
	for ni, nt := range nodes {
		for _, ev := range nt.Events {
			if ev.Type != EvSpan {
				continue
			}
			switch ev.Detail {
			case "wire-out":
				outs[ev.Arg] = append(outs[ev.Arg], hop{ni, ev.TS})
			case "wire-in":
				ins[ev.Arg] = append(ins[ev.Arg], hop{ni, ev.TS})
			}
		}
	}
	var edges []spanEdge
	for id, os := range outs {
		is := ins[id]
		sort.Slice(os, func(i, j int) bool { return os[i].ts < os[j].ts })
		sort.Slice(is, func(i, j int) bool { return is[i].ts < is[j].ts })
		for k := 0; k < len(os) && k < len(is); k++ {
			if os[k].node == is[k].node {
				continue
			}
			edges = append(edges, spanEdge{
				from: os[k].node, to: is[k].node,
				outTS: os[k].ts, inTS: is[k].ts,
			})
		}
	}
	return edges
}

// alignOffsets computes a per-node timestamp shift (nanoseconds) such
// that every matched causal edge is ordered: a frame's wire-in renders
// after its wire-out. This is the Logical Synchrony idea in miniature —
// the channels themselves carry the clock, so no wall-clock
// synchronization between nodes is needed. Offsets only ever grow
// (fixpoint iteration with a cap for cyclic graphs), and the minimum
// shift settles at zero so the earliest node keeps its own timeline.
func alignOffsets(nodes []NodeTrace, edges []spanEdge) []int64 {
	off := make([]int64, len(nodes))
	// A causal edge implies in + off[to] > out + off[from]; grant the
	// wire at least wireSlack of rendered latency so the arrows point
	// forward even between perfectly aligned clocks.
	const wireSlack = 1_000 // 1µs
	for pass := 0; pass < 4*len(nodes)+4; pass++ {
		changed := false
		for _, e := range edges {
			want := e.outTS + off[e.from] + wireSlack
			if e.inTS+off[e.to] < want {
				off[e.to] = want - e.inTS
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	min := int64(0)
	for i, v := range off {
		if i == 0 || v < min {
			min = v
		}
	}
	for i := range off {
		off[i] -= min
	}
	return off
}

// WriteMergedTrace merges the event rings of several nodes into one
// Chrome trace_event JSON document: each node becomes a process (with
// its address as the process name), node-local clocks are aligned on
// the causal conduit edges recorded by trace sampling, and matched
// wire-out → wire-in span pairs are connected with flow arrows so a
// sampled token batch's journey reads across processes.
func WriteMergedTrace(w io.Writer, nodes []NodeTrace) error {
	edges := matchEdges(nodes)
	off := alignOffsets(nodes, edges)

	var out []traceEvent
	for ni, nt := range nodes {
		pid := ni + 1
		out = append(out, traceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": nt.Node},
		})
		tids := make(map[string]int)
		out = appendTraceEvents(out, nt.Events, pid, off[ni], tids)
	}
	// Flow arrows ride on the span instants: one start ("s") at the
	// wire-out, one end ("f") at the wire-in, joined by a shared id.
	for i, e := range edges {
		out = append(out,
			traceEvent{
				Name: "trace", Cat: "span", Ph: "s", ID: i + 1,
				TS: float64(e.outTS+off[e.from]) / 1e3, PID: e.from + 1, TID: 1,
			},
			traceEvent{
				Name: "trace", Cat: "span", Ph: "f", BP: "e", ID: i + 1,
				TS: float64(e.inTS+off[e.to]) / 1e3, PID: e.to + 1, TID: 1,
			})
	}
	return writeTraceJSON(w, out)
}
