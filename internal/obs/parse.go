package obs

import (
	"math"
	"strconv"
	"strings"
)

// ParseProm parses the subset of the Prometheus text exposition format
// that WriteProm emits back into samples: counter and gauge series
// lines plus histogram _bucket/_sum/_count triples, reconstructed into
// one Sample per series with its cumulative Buckets (so Quantile works
// on scraped text exactly as it does on Registry.Samples output).
// Unparseable lines are skipped — the parser exists for the dpntop
// scrape loop, the soak driver's percentile report, and golden tests,
// not as a general Prometheus client. Kinds come from the # TYPE
// headers; series of families without one parse as counters.
func ParseProm(text string) []Sample {
	kinds := make(map[string]Kind)
	var out []Sample
	// histogram samples merge their _sum and _count lines; index holds
	// the position in out of the sample for (family, labels).
	index := make(map[string]int)

	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter":
					kinds[fields[2]] = KindCounter
				case "gauge":
					kinds[fields[2]] = KindGauge
				case "histogram":
					kinds[fields[2]] = KindHistogram
				}
			}
			continue
		}
		name, labels, value, ok := parsePromLine(line)
		if !ok {
			continue
		}
		// Histogram component lines reduce to one sample per series.
		if base, comp := histogramBase(name, kinds); base != "" {
			var bound float64
			if comp == "bucket" {
				le := labelValue(labels, "le")
				if le == "+Inf" {
					bound = math.Inf(1)
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						continue
					}
					bound = b
				}
			}
			labels = dropLabel(labels, "le")
			key := base + "\x00" + labelKey(labels)
			i, seen := index[key]
			if !seen {
				i = len(out)
				index[key] = i
				out = append(out, Sample{Name: base, Kind: KindHistogram, Labels: labels})
			}
			switch comp {
			case "bucket":
				// WriteProm emits buckets in ascending bound order, so
				// appending rebuilds the cumulative sequence.
				out[i].Buckets = append(out[i].Buckets, Bucket{UpperBound: bound, Count: int64(value)})
			case "sum":
				out[i].Sum = value
			default:
				out[i].Count = int64(value)
			}
			continue
		}
		kind := kinds[name] // zero value is KindCounter
		out = append(out, Sample{Name: name, Kind: kind, Labels: labels, Value: int64(value)})
	}
	return out
}

// histogramBase reports whether name is a _bucket/_sum/_count component
// of a known histogram family, returning the family name and component.
func histogramBase(name string, kinds map[string]Kind) (base, comp string) {
	for _, c := range []string{"bucket", "sum", "count"} {
		suffix := "_" + c
		if strings.HasSuffix(name, suffix) {
			b := strings.TrimSuffix(name, suffix)
			if kinds[b] == KindHistogram {
				return b, c
			}
		}
	}
	return "", ""
}

func labelValue(labels []Label, key string) string {
	for _, l := range labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

func dropLabel(labels []Label, key string) []Label {
	out := labels[:0]
	for _, l := range labels {
		if l.Key != key {
			out = append(out, l)
		}
	}
	return out
}

// parsePromLine splits one series line into name, labels, and value.
func parsePromLine(line string) (name string, labels []Label, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		labels, rest, ok = parsePromLabels(rest)
		if !ok {
			return "", nil, 0, false
		}
	} else if i := strings.IndexByte(rest, ' '); i >= 0 {
		name, rest = rest[:i], rest[i:]
	} else {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// parsePromLabels parses `key="value",...}` (the opening brace already
// consumed), honoring the \\, \", and \n escapes WriteProm emits, and
// returns the remainder of the line after the closing brace.
func parsePromLabels(s string) (labels []Label, rest string, ok bool) {
	for {
		s = strings.TrimLeft(s, ", ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], true
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, "", false
		}
		key := s[:eq]
		s = s[eq+2:]
		var b strings.Builder
		for {
			i := strings.IndexAny(s, `"\`)
			if i < 0 {
				return nil, "", false
			}
			b.WriteString(s[:i])
			if s[i] == '"' {
				s = s[i+1:]
				break
			}
			// escape sequence
			if len(s) < i+2 {
				return nil, "", false
			}
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			s = s[i+2:]
		}
		labels = append(labels, Label{Key: key, Value: b.String()})
	}
}
