package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// EventType classifies one traced runtime event.
type EventType uint8

const (
	// EvRead is a token/byte read from a channel (Arg = bytes).
	EvRead EventType = iota
	// EvWrite is a token/byte write to a channel (Arg = bytes).
	EvWrite
	// EvBlock marks a goroutine blocking on a channel (Detail "read" or
	// "write").
	EvBlock
	// EvUnblock marks the blocked operation resuming (Arg = nanoseconds
	// spent blocked).
	EvUnblock
	// EvGrow marks a channel capacity growth (Arg = new capacity).
	EvGrow
	// EvSpawn marks a process starting.
	EvSpawn
	// EvStop marks a process finishing (Detail carries the error, if
	// any).
	EvStop
	// EvReconfig marks a run-time graph reconfiguration (Detail
	// "splice-out" or "insert-upstream"; Name is the channel involved).
	EvReconfig
	// EvFrame marks one network protocol frame (Name is the frame kind,
	// Detail "out" or "in", Arg = payload bytes).
	EvFrame
	// EvMigrate marks one phase of a process migration (Detail
	// "suspend", "export", "import", or "redirect").
	EvMigrate
	// EvDeadlock marks a deadlock-monitor verdict (Detail is the
	// status; Name the grown channel, if any; Arg the new capacity).
	EvDeadlock
	// EvTask marks a meta-framework task passing one stage (Name is the
	// stage id, "worker:<tag>" for workers).
	EvTask
	// EvRPC marks one compute-server RPC (Name is the request kind).
	EvRPC
	// EvLink marks a network-link lifecycle event (Detail "retry",
	// "miss", "heal", or "fail").
	EvLink
	// EvSpan marks one hop of a sampled causal trace (Name is the
	// subject — channel or pool stage —, Detail the hop kind: "intake",
	// "dispatch", "wire-out", "wire-in", "result", or "emit"; Arg is the
	// trace ID). Matching wire-out/wire-in pairs are the causal conduit
	// edges the multi-node trace merge aligns clocks on.
	EvSpan
)

var evNames = [...]string{
	EvRead:     "read",
	EvWrite:    "write",
	EvBlock:    "block",
	EvUnblock:  "unblock",
	EvGrow:     "grow",
	EvSpawn:    "spawn",
	EvStop:     "stop",
	EvReconfig: "reconfig",
	EvFrame:    "frame",
	EvMigrate:  "migrate",
	EvDeadlock: "deadlock",
	EvTask:     "task",
	EvRPC:      "rpc",
	EvLink:     "link",
	EvSpan:     "span",
}

func (t EventType) String() string {
	if int(t) < len(evNames) {
		return evNames[t]
	}
	return "event"
}

// cat maps an event type to its Chrome trace category.
func (t EventType) cat() string {
	switch t {
	case EvRead, EvWrite, EvBlock, EvUnblock, EvGrow:
		return "channel"
	case EvSpawn, EvStop:
		return "process"
	case EvReconfig:
		return "reconfig"
	case EvFrame, EvMigrate, EvLink:
		return "net"
	case EvDeadlock:
		return "deadlock"
	case EvTask:
		return "meta"
	case EvRPC:
		return "rpc"
	case EvSpan:
		return "span"
	default:
		return "runtime"
	}
}

// Event is one traced occurrence.
type Event struct {
	TS     int64 // nanoseconds since the tracer's epoch
	Type   EventType
	Name   string // subject: channel, process, frame kind, …
	Detail string
	Arg    int64
}

// Tracer records typed events into a fixed-size ring buffer. Recording
// is lock-free: writers claim a slot with one atomic increment and
// publish the event through an atomic pointer, so tracing may be left
// wired into hot paths and enabled on demand; while disabled, Record is
// a single atomic load.
type Tracer struct {
	enabled atomic.Bool
	epoch   time.Time
	mask    uint64
	slots   []atomic.Pointer[Event]
	cursor  atomic.Uint64 // total events ever recorded
	// counts survive ring eviction: the ring keeps only the newest
	// events, but per-type totals stay exact for the whole run.
	counts [len(evNames)]atomic.Uint64
}

// DefaultTraceSize is the ring capacity used when NewTracer is given a
// non-positive size.
const DefaultTraceSize = 16384

// NewTracer returns a disabled tracer whose ring holds size events
// (rounded up to a power of two; non-positive selects
// DefaultTraceSize).
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultTraceSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Tracer{
		epoch: time.Now(),
		mask:  uint64(n - 1),
		slots: make([]atomic.Pointer[Event], n),
	}
}

// Enable turns recording on.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled.Store(true)
	}
}

// Disable turns recording off; the ring contents remain readable.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool {
	return t != nil && t.enabled.Load()
}

// Record appends one event if the tracer is enabled. It is safe for
// concurrent use and on a nil tracer.
func (t *Tracer) Record(typ EventType, name, detail string, arg int64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	ev := &Event{
		TS:     time.Since(t.epoch).Nanoseconds(),
		Type:   typ,
		Name:   name,
		Detail: detail,
		Arg:    arg,
	}
	if int(typ) < len(t.counts) {
		t.counts[typ].Add(1)
	}
	idx := t.cursor.Add(1) - 1
	t.slots[idx&t.mask].Store(ev)
}

// Count reports how many events of one type have ever been recorded,
// including ones the ring has since overwritten.
func (t *Tracer) Count(typ EventType) uint64 {
	if t == nil || int(typ) >= len(t.counts) {
		return 0
	}
	return t.counts[typ].Load()
}

// Total reports how many events have ever been recorded (including
// ones the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.cursor.Load()
}

// Events returns the ring contents, oldest first. With concurrent
// writers the snapshot is approximate at the ring edges; slots claimed
// but not yet published are skipped.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	total := t.cursor.Load()
	n := uint64(len(t.slots))
	start := uint64(0)
	if total > n {
		start = total - n
	}
	out := make([]Event, 0, total-start)
	for i := start; i < total; i++ {
		if ev := t.slots[i&t.mask].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

// traceEvent is one entry of the Chrome trace_event JSON format, as
// consumed by chrome://tracing and Perfetto. ID and BP serve the flow
// events ("s"/"f" phases) the multi-node merge uses for causal arrows.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// appendTraceEvents converts events into Chrome trace entries under the
// given pid, shifting timestamps by shift nanoseconds (the multi-node
// merge's clock alignment) and assigning one tid per distinct subject
// via tids. New subjects emit a thread_name metadata entry.
func appendTraceEvents(out []traceEvent, events []Event, pid int, shift int64, tids map[string]int) []traceEvent {
	for _, ev := range events {
		tid, ok := tids[ev.Name]
		if !ok {
			tid = len(tids) + 1
			tids[ev.Name] = tid
			out = append(out, traceEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": ev.Name},
			})
		}
		te := traceEvent{
			Name: ev.Type.String(),
			Cat:  ev.Type.cat(),
			Ph:   "i",
			S:    "t",
			TS:   float64(ev.TS+shift) / 1e3,
			PID:  pid,
			TID:  tid,
			Args: map[string]any{"subject": ev.Name, "arg": ev.Arg},
		}
		if ev.Detail != "" {
			te.Args["detail"] = ev.Detail
		}
		out = append(out, te)
	}
	return out
}

// writeTraceJSON writes the assembled entries as one Chrome trace_event
// JSON document.
func writeTraceJSON(w io.Writer, out []traceEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	// Encoder appends a newline after the array; close the object after
	// it for readability.
	if _, err := bw.WriteString("}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTrace exports the ring contents as Chrome trace_event JSON. Each
// distinct event subject (channel, process, …) becomes one named track,
// so per-channel and per-process timelines line up visually.
func (t *Tracer) WriteTrace(w io.Writer) error {
	events := t.Events()
	tids := make(map[string]int)
	out := appendTraceEvents(make([]traceEvent, 0, len(events)+8), events, 1, 0, tids)
	return writeTraceJSON(w, out)
}
