package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm writes the registry contents in the Prometheus text
// exposition format (version 0.0.4). base labels, if given, are
// injected into every series at write time — this is how a node label
// is applied uniformly without baking it into every instrument.
func (r *Registry) WriteProm(w io.Writer, base ...Label) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	// Samples() re-locks, so snapshot via the public API after listing
	// families for help/kind metadata.
	byName := make(map[string]*family, len(fams))
	for _, f := range fams {
		byName[f.name] = f
	}
	samples := r.Samples()

	var last string
	for _, s := range samples {
		if s.Name != last {
			f := byName[s.Name]
			if f != nil && f.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.Name, escapeHelp(f.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
			last = s.Name
		}
		labels := append(append([]Label(nil), base...), s.Labels...)
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatFloat(b.UpperBound)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", s.Name,
					renderLabels(append(append([]Label(nil), labels...), L("le", le))), b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", s.Name, renderLabels(labels), formatFloat(s.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", s.Name, renderLabels(labels), s.Count)
		default:
			fmt.Fprintf(bw, "%s%s %d\n", s.Name, renderLabels(labels), s.Value)
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// MergeProm concatenates several Prometheus text expositions (e.g. one
// per node of a distributed graph) into one valid exposition: repeated
// # HELP / # TYPE header lines for the same metric are emitted once.
// Series lines pass through untouched, so each input should already
// carry a distinguishing label (the node label added by Scope).
func MergeProm(w io.Writer, texts ...string) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	for _, text := range texts {
		for _, line := range strings.Split(text, "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "# ") {
				if seen[line] {
					continue
				}
				seen[line] = true
			}
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
