// Package obs is the runtime observability layer of the process-network
// runtime: a zero-dependency metrics registry (atomic counters, gauges,
// and fixed-bucket histograms, with label support for per-channel,
// per-process, and per-node dimensions) plus a lightweight event tracer
// (a lock-free ring buffer of typed events with a Chrome trace_event
// JSON exporter).
//
// The paper's §3.5/§6.2 machinery — bounded scheduling and distributed
// deadlock detection — already depends on runtime introspection
// (blocked-reader/writer counts, generation counters, byte counters).
// This package turns that internal bookkeeping into a uniform,
// exportable subsystem: every instrument is a plain atomic that hot
// paths update through a cached pointer, and every instrument method is
// safe on a nil receiver, so uninstrumented components pay a single nil
// check.
package obs

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension attached to an instrument, e.g.
// {channel ab} or {node 127.0.0.1:7001}.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes the instrument types of a registry.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing atomic count. All methods are
// nil-safe so uninstrumented call sites cost one branch.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Max raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution with atomic bucket counts.
// Bounds are upper bounds in ascending order; a final +Inf bucket is
// implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

// DurationBuckets is the default bound set for block/latency histograms,
// in seconds (1µs … 10s).
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one measurement.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one cumulative histogram bucket in a Sample.
type Bucket struct {
	UpperBound float64 // +Inf for the last bucket
	Count      int64   // cumulative count of observations <= UpperBound
}

// Sample is a point-in-time reading of one series, as returned by
// Registry.Samples.
type Sample struct {
	Name   string
	Kind   Kind
	Labels []Label
	// Value holds the counter or gauge reading.
	Value int64
	// Sum, Count, and Buckets hold the histogram reading.
	Sum     float64
	Count   int64
	Buckets []Bucket
}

// Label returns the value of the named label, or "".
func (s Sample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// series is one labeled child of a metric family.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name string
	help string
	kind Kind
	// typed records whether kind is meaningful yet: Help may create a
	// family before the first instrument fixes its kind.
	typed  bool
	bounds []float64 // histogram families share bounds
	series map[string]*series
}

// Registry is a named collection of instruments. Instrument lookup is
// get-or-create and safe for concurrent use; hot paths should look an
// instrument up once and keep the pointer.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// aliases maps an exposition-only metric name to the family whose
	// series it mirrors (see Alias).
	aliases map[string]string
	// seriesLimit caps the distinct label sets per family (see
	// SetSeriesLimit); dropped counts series refused at the cap, and
	// warned remembers which families already logged the one-line
	// warning.
	seriesLimit int
	dropped     int64
	warned      map[string]bool
}

// DefaultSeriesLimit is the per-family label-set cap applied to new
// registries. High-cardinality label values (per-task IDs, peer
// addresses under churn) otherwise grow the exposition without bound.
const DefaultSeriesLimit = 256

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families:    make(map[string]*family),
		seriesLimit: DefaultSeriesLimit,
		warned:      make(map[string]bool),
	}
}

// SetSeriesLimit changes the per-family cap on distinct label sets
// (n <= 0 removes the cap). Lookups beyond the cap warn once per family
// on stderr, count into dpn_obs_dropped_series_total, and hand the
// caller a detached instrument, so exposition memory stays bounded and
// callers never fail.
func (r *Registry) SetSeriesLimit(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seriesLimit = n
	r.mu.Unlock()
}

// DroppedSeries reports how many series lookups were refused by the
// cardinality cap.
func (r *Registry) DroppedSeries() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// labelKey renders labels (sorted by key) into a canonical map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns the series for (name, labels), creating family and
// series as needed. A kind mismatch with an existing family returns nil
// (the caller then hands out a detached instrument rather than
// corrupting the exposition).
func (r *Registry) lookup(name string, kind Kind, bounds []float64, labels []Label) *series {
	if r == nil {
		return nil
	}
	labels = sortedLabels(labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	if !f.typed {
		f.kind, f.bounds, f.typed = kind, bounds, true
	}
	if f.kind != kind {
		return nil
	}
	s := f.series[key]
	if s == nil {
		if r.seriesLimit > 0 && len(f.series) >= r.seriesLimit {
			r.dropped++
			if r.warned == nil {
				r.warned = make(map[string]bool)
			}
			if !r.warned[name] {
				r.warned[name] = true
				fmt.Fprintf(os.Stderr,
					"obs: family %s hit the %d-series cardinality cap; further label sets are dropped\n",
					name, r.seriesLimit)
			}
			return nil
		}
		s = &series{labels: labels}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.lookup(name, KindCounter, nil, labels)
	if s == nil {
		return &Counter{} // detached: kind mismatch, cardinality cap, or nil registry
	}
	return s.counter
}

// Gauge returns the gauge registered under name with the given labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.lookup(name, KindGauge, nil, labels)
	if s == nil {
		return &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram registered under name with the given
// labels. The bounds of the first registration win for the whole
// family; nil bounds select DurationBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	s := r.lookup(name, KindHistogram, bounds, labels)
	if s == nil {
		return newHistogram(bounds)
	}
	return s.hist
}

// Help attaches exposition help text to the named metric family.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = text
	} else {
		r.families[name] = &family{name: name, help: text, series: make(map[string]*series)}
	}
}

// Alias arranges for every series of the target family to also appear
// in Samples (and therefore the Prometheus exposition) under the alias
// name, with identical labels and values. It exists so a metric family
// can be renamed without breaking dashboards: the canonical series keep
// one set of live instruments, and the alias is materialized only at
// snapshot time — the hot path pays nothing. Aliasing a name that later
// gains its own instruments is rejected at snapshot time (the real
// family wins); chained aliases are not followed.
func (r *Registry) Alias(alias, target string) {
	if r == nil || alias == target || alias == "" || target == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aliases == nil {
		r.aliases = make(map[string]string)
	}
	r.aliases[alias] = target
}

// AliasHelp attaches help text to an alias name so the exposition can
// document it like a real family.
func (r *Registry) AliasHelp(alias, text string) { r.Help(alias, text) }

// Samples returns a point-in-time snapshot of every series, sorted by
// metric name and then label key, suitable for building summary tables.
// Alias families (see Alias) are materialized as copies of their target
// family's series.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Sample
	for _, f := range fams {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			sm := Sample{Name: f.name, Kind: f.kind, Labels: s.labels}
			switch f.kind {
			case KindCounter:
				sm.Value = s.counter.Value()
			case KindGauge:
				sm.Value = s.gauge.Value()
			case KindHistogram:
				sm.Sum = s.hist.Sum()
				sm.Count = s.hist.Count()
				cum := int64(0)
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Load()
					ub := math.Inf(1)
					if i < len(s.hist.bounds) {
						ub = s.hist.bounds[i]
					}
					sm.Buckets = append(sm.Buckets, Bucket{UpperBound: ub, Count: cum})
				}
			}
			out = append(out, sm)
		}
	}
	if len(r.aliases) > 0 {
		names := make([]string, 0, len(r.aliases))
		for a := range r.aliases {
			names = append(names, a)
		}
		sort.Strings(names)
		for _, alias := range names {
			if f := r.families[alias]; f != nil && len(f.series) > 0 {
				continue // a real family took the name; it wins
			}
			target := r.aliases[alias]
			for _, s := range out {
				if s.Name == target {
					dup := s
					dup.Name = alias
					out = append(out, dup)
				}
			}
		}
	}
	// The cardinality guard's drop count is materialized as a synthetic
	// series so scrapes surface the data loss itself.
	if r.dropped > 0 {
		out = append(out, Sample{Name: "dpn_obs_dropped_series_total", Kind: KindCounter, Value: r.dropped})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
