package obs

import (
	"strings"
	"testing"
)

// Round-trip: whatever WriteProm emits, ParseProm must read back with
// the same names, labels, kinds, and values — the dpntop scrape loop
// diffs successive parses, so a lossy parse would corrupt every rate.
func TestParsePromRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Help("dpn_conduit_wait_ns_total", "Blocked time.")
	r.Counter("dpn_conduit_wait_ns_total", L("channel", "a:b"), L("op", "read")).Add(1500)
	r.Counter("dpn_conduit_wait_ns_total", L("channel", "a:b"), L("op", "write")).Add(2500)
	r.Gauge("dpn_pool_lanes").Set(3)
	h := r.Histogram("dpn_pool_latency_seconds", []float64{0.1, 1}, L("stage", "queue"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteProm(&b, L("node", "n1")); err != nil {
		t.Fatal(err)
	}
	got := ParseProm(b.String())

	find := func(name string, labels ...Label) *Sample {
		for i := range got {
			s := &got[i]
			if s.Name != name {
				continue
			}
			match := true
			for _, l := range labels {
				if s.Label(l.Key) != l.Value {
					match = false
					break
				}
			}
			if match {
				return s
			}
		}
		t.Fatalf("sample %s%v not parsed; got %+v", name, labels, got)
		return nil
	}
	if s := find("dpn_conduit_wait_ns_total", L("op", "read")); s.Value != 1500 || s.Kind != KindCounter {
		t.Fatalf("read wait = %+v", s)
	}
	if s := find("dpn_conduit_wait_ns_total", L("op", "write")); s.Value != 2500 {
		t.Fatalf("write wait = %+v", s)
	}
	if s := find("dpn_pool_lanes"); s.Value != 3 || s.Kind != KindGauge {
		t.Fatalf("lanes = %+v", s)
	}
	hs := find("dpn_pool_latency_seconds", L("stage", "queue"))
	if hs.Kind != KindHistogram || hs.Count != 3 || hs.Sum != 2.55 {
		t.Fatalf("histogram = %+v", hs)
	}
	if hs.Label("le") != "" {
		t.Fatal("le label must be dropped from folded histogram samples")
	}
	if hs.Label("node") != "n1" {
		t.Fatal("base labels must survive the round trip")
	}
}

func TestParsePromSkipsGarbageAndComments(t *testing.T) {
	got := ParseProm("# dpn:stale peer[1]: dial tcp: refused\nnot a metric line at all\nx 7\n")
	if len(got) != 1 || got[0].Name != "x" || got[0].Value != 7 {
		t.Fatalf("got %+v", got)
	}
}

// Golden check for the new histogram families' exposition: the exact
// lines dashboards and the -obs gate grep for.
func TestNewFamiliesGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("dpn_pool_latency_seconds", "Task latency distribution, by stage.")
	h := r.Histogram("dpn_pool_latency_seconds", []float64{0.5}, L("stage", "total"))
	h.Observe(0.25)
	r.Help("dpn_conduit_wait_ns_total", "Total nanoseconds blocked on the conduit.")
	r.Counter("dpn_conduit_wait_ns_total", L("channel", "c"), L("op", "write")).Add(42)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE dpn_conduit_wait_ns_total counter\n",
		`dpn_conduit_wait_ns_total{channel="c",op="write"} 42` + "\n",
		"# TYPE dpn_pool_latency_seconds histogram\n",
		`dpn_pool_latency_seconds_bucket{stage="total",le="0.5"} 1` + "\n",
		`dpn_pool_latency_seconds_bucket{stage="total",le="+Inf"} 1` + "\n",
		`dpn_pool_latency_seconds_sum{stage="total"} 0.25` + "\n",
		`dpn_pool_latency_seconds_count{stage="total"} 1` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}
