package conduit

import (
	"dpn/internal/obs"
	"dpn/internal/stream"
)

// conduitAliases maps every pre-PR5 per-channel metric name to its
// canonical dpn_conduit_* family. The old names stay visible in the
// exposition as snapshot-time aliases (obs.Registry.Alias), so
// dashboards and the viz tooling keep working while new consumers read
// the conduit names.
var conduitAliases = [][2]string{
	{"dpn_channel_bytes_total", "dpn_conduit_bytes_total"},
	{"dpn_channel_occupancy_bytes", "dpn_conduit_occupancy_bytes"},
	{"dpn_channel_occupancy_peak_bytes", "dpn_conduit_occupancy_peak_bytes"},
	{"dpn_channel_capacity_bytes", "dpn_conduit_capacity_bytes"},
	{"dpn_channel_grows_total", "dpn_conduit_grows_total"},
	{"dpn_channel_blocks_total", "dpn_conduit_blocks_total"},
	{"dpn_channel_block_seconds", "dpn_conduit_block_seconds"},
	{"dpn_channel_tokens_total", "dpn_conduit_tokens_total"},
}

// registerFamilies installs the conduit metric help texts and the
// back-compat aliases in reg. Idempotent; called from every instrument
// constructor so the families exist before the first sample.
func registerFamilies(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("dpn_conduit_bytes_total", "Bytes moved through the conduit buffer, by op (read|write).")
	reg.Help("dpn_conduit_occupancy_bytes", "Bytes currently buffered in the conduit.")
	reg.Help("dpn_conduit_occupancy_peak_bytes", "High-water mark of buffered bytes.")
	reg.Help("dpn_conduit_capacity_bytes", "Current buffer capacity (grows on artificial deadlock).")
	reg.Help("dpn_conduit_grows_total", "Capacity growths applied to the conduit.")
	reg.Help("dpn_conduit_blocks_total", "Blocking waits on the conduit, by op (read|write).")
	reg.Help("dpn_conduit_block_seconds", "Duration of blocking waits, by op (read|write).")
	reg.Help("dpn_conduit_tokens_total", "Typed elements moved through the conduit, by op (read|write).")
	reg.Help("dpn_conduit_rebinds_total", "Transport rebinds performed on the conduit, by dir (source|sink).")
	reg.Help("dpn_conduit_wait_ns_total", "Total nanoseconds blocked on the conduit, by op (read = consumer starved, write = producer throttled by a full buffer).")
	for _, m := range conduitAliases {
		reg.Alias(m[0], m[1])
		reg.AliasHelp(m[0], "Deprecated alias of "+m[1]+".")
	}
}

// NewInstruments builds the per-conduit buffer instruments in the
// scope's registry under the canonical dpn_conduit_* names. The full
// metric-name inventory is documented in DESIGN.md ("Observability").
func NewInstruments(s *obs.Scope, name string) *stream.Instruments {
	reg := s.Registry()
	if reg == nil {
		return nil
	}
	registerFamilies(reg)
	lbl := obs.L("channel", name)
	return &stream.Instruments{
		BytesWritten:      reg.Counter("dpn_conduit_bytes_total", lbl, obs.L("op", "write")),
		BytesRead:         reg.Counter("dpn_conduit_bytes_total", lbl, obs.L("op", "read")),
		Occupancy:         reg.Gauge("dpn_conduit_occupancy_bytes", lbl),
		HighWater:         reg.Gauge("dpn_conduit_occupancy_peak_bytes", lbl),
		Capacity:          reg.Gauge("dpn_conduit_capacity_bytes", lbl),
		Grows:             reg.Counter("dpn_conduit_grows_total", lbl),
		ReadBlocks:        reg.Counter("dpn_conduit_blocks_total", lbl, obs.L("op", "read")),
		WriteBlocks:       reg.Counter("dpn_conduit_blocks_total", lbl, obs.L("op", "write")),
		ReadBlockSeconds:  reg.Histogram("dpn_conduit_block_seconds", nil, lbl, obs.L("op", "read")),
		WriteBlockSeconds: reg.Histogram("dpn_conduit_block_seconds", nil, lbl, obs.L("op", "write")),
		ReadWaitNanos:     reg.Counter("dpn_conduit_wait_ns_total", lbl, obs.L("op", "read")),
		WriteWaitNanos:    reg.Counter("dpn_conduit_wait_ns_total", lbl, obs.L("op", "write")),
		Tracer:            s.Tracer(),
		Name:              name,
	}
}

// TokenCounters returns the typed-element counters for a conduit's two
// ends (dpn_conduit_tokens_total, op=write|read). Package core bumps
// them through the ports' NoteToken hooks.
func TokenCounters(s *obs.Scope, name string) (in, out *obs.Counter) {
	reg := s.Registry()
	if reg == nil {
		return nil, nil
	}
	registerFamilies(reg)
	lbl := obs.L("channel", name)
	return reg.Counter("dpn_conduit_tokens_total", lbl, obs.L("op", "write")),
		reg.Counter("dpn_conduit_tokens_total", lbl, obs.L("op", "read"))
}
