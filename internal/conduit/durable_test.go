package conduit

import (
	"bytes"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/obs"
	"dpn/internal/stream"
	"dpn/internal/wal"
)

// durPattern returns n deterministic non-repeating bytes — the oracle
// stream both incarnations of a "process" produce.
func durPattern(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + i>>9)
	}
	return p
}

func durBroker(t *testing.T, r netio.Resilience) *netio.Broker {
	t.Helper()
	b, err := netio.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.SetResilience(r)
	t.Cleanup(func() { b.Close() })
	return b
}

// patientRes keeps a surviving endpoint waiting out the peer's death
// and restart; hastyRes makes the dying endpoint degrade quickly.
func patientRes() netio.Resilience {
	return netio.Resilience{
		HeartbeatEvery: 20 * time.Millisecond,
		MissDeadline:   200 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       50 * time.Millisecond,
		LinkDeadline:   15 * time.Second,
		Seed:           1,
	}
}

func hastyRes() netio.Resilience {
	r := patientRes()
	r.LinkDeadline = 400 * time.Millisecond
	return r
}

// countingWriter tallies bytes written through it, so tests can wait
// for the consumer to cross a progress mark.
type countingWriter struct {
	n  atomic.Int64
	bw *bytes.Buffer
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.bw.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func waitAtLeast(t *testing.T, n *atomic.Int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for n.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s: %d/%d bytes", what, n.Load(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDurableSenderRestartByteIdentical kills the sending side of a
// durable binding mid-stream (permanent injected partition, quick
// degrade — the in-process stand-in for SIGKILL, since every byte the
// receiver saw was already fsynced at the sender) and restarts it as a
// fresh process would: new broker, same journal dir, a deterministic
// source re-producing the stream from offset zero. The receiver must
// observe the full stream exactly once, byte-identical.
func TestDurableSenderRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	pat := durPattern(300 << 10)
	const killAfter = 60 << 10
	scope := obs.NewScope()

	// Receiver: patient, serving the rendezvous on a stable token.
	recvB := durBroker(t, patientRes())
	dst := stream.NewPipe(64 << 10)
	if _, err := (TCP{Broker: recvB}).BindInbound(Endpoint{Token: "dur-restart"}, dst.WriteEnd()); err != nil {
		t.Fatal(err)
	}
	cw := &countingWriter{bw: &bytes.Buffer{}}
	recvDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(cw, dst.ReadEnd())
		recvDone <- err
	}()

	// Sender incarnation 1: hasty, chaos-wrapped so a permanent
	// partition can sever it deterministically.
	sndB1 := durBroker(t, hastyRes())
	inj := faults.New(faults.Config{Seed: 7})
	d1 := Durable{
		Inner: NewChaos(sndB1, inj),
		Dir:   dir,
		Opt:   wal.Options{SegmentBytes: 16 << 10},
		Obs:   scope,
	}
	src1 := stream.NewPipe(32 << 10)
	l1, err := d1.BindOutbound(Endpoint{Addr: recvB.Addr(), Token: "dur-restart"}, src1.ReadEnd(), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Incarnation 1 never finishes its stream: it will be killed.
		for off := 0; off < len(pat); off += 4096 {
			end := off + 4096
			if end > len(pat) {
				end = len(pat)
			}
			if _, err := src1.Write(pat[off:end]); err != nil {
				return // killed mid-stream, as intended
			}
		}
	}()

	waitAtLeast(t, &cw.n, killAfter, "pre-kill delivery")
	inj.PartitionNow(0) // kill -9: the conn dies and never heals
	if err := l1.Wait(); err == nil {
		t.Fatal("killed sender link reported a clean close")
	}
	src1.CloseRead() // reap the incarnation's producer

	// Sender incarnation 2: same journal dir, fresh broker, a fresh
	// deterministic source re-producing the stream from zero.
	sndB2 := durBroker(t, patientRes())
	d2 := Durable{
		Inner: TCP{Broker: sndB2},
		Dir:   dir,
		Opt:   wal.Options{SegmentBytes: 16 << 10},
		Obs:   scope,
	}
	src2 := stream.NewPipe(32 << 10)
	go func() {
		for off := 0; off < len(pat); off += 4096 {
			end := off + 4096
			if end > len(pat) {
				end = len(pat)
			}
			if _, err := src2.Write(pat[off:end]); err != nil {
				return
			}
		}
		src2.CloseWrite()
	}()
	l2, err := d2.BindOutbound(Endpoint{Addr: recvB.Addr(), Token: "dur-restart"}, src2.ReadEnd(), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Wait(); err != nil {
		t.Fatalf("restarted sender link: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("receiver drain: %v", err)
	}
	if !bytes.Equal(cw.bw.Bytes(), pat) {
		t.Fatalf("stream not byte-identical after sender restart: got %d bytes, want %d", cw.bw.Len(), len(pat))
	}

	reg := scope.Registry()
	if v := reg.Counter("dpn_wal_appended_bytes_total", obs.L("dir", "sink")).Value(); v < int64(len(pat)) {
		t.Fatalf("dpn_wal_appended_bytes_total = %d, want >= %d", v, len(pat))
	}
	if v := reg.Counter("dpn_wal_replayed_bytes_total", obs.L("dir", "sink")).Value(); v <= 0 {
		t.Fatalf("dpn_wal_replayed_bytes_total = %d, want > 0 (restart must replay the journal)", v)
	}
	if v := reg.Counter("dpn_wal_truncated_bytes_total", obs.L("dir", "sink")).Value(); v <= 0 {
		t.Fatalf("dpn_wal_truncated_bytes_total = %d, want > 0 (acks must release segments)", v)
	}
}

// TestDurableReceiverRestartReplaysJournal kills the receiving side of
// a durable binding mid-stream and restarts it against the same
// journal: the fresh local consumer (re-running from zero) must see the
// WHOLE stream — the journaled prefix replayed locally, the tail
// resumed from the surviving sender — byte-identical and exactly once.
func TestDurableReceiverRestartReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	pat := durPattern(300 << 10)
	const killAfter = 60 << 10

	// Sender: patient, serving on a stable token so a restarted
	// receiver can find it again. The producer stalls at the halfway
	// mark until the kill has landed, so the stream cannot complete
	// cleanly before the receiver dies.
	sndB := durBroker(t, patientRes())
	src := stream.NewPipe(32 << 10)
	l, err := (TCP{Broker: sndB}).BindOutbound(Endpoint{Token: "dur-recv"}, src.ReadEnd(), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	go func() {
		half := len(pat) / 2
		write := func(lo, hi int) bool {
			for off := lo; off < hi; off += 4096 {
				end := off + 4096
				if end > hi {
					end = hi
				}
				if _, err := src.Write(pat[off:end]); err != nil {
					return false
				}
			}
			return true
		}
		if !write(0, half) {
			return
		}
		<-gate
		if write(half, len(pat)) {
			src.CloseWrite()
		}
	}()

	// Receiver incarnation 1: hasty, chaos-severable, durable.
	recvB1 := durBroker(t, hastyRes())
	inj := faults.New(faults.Config{Seed: 9})
	d1 := Durable{Inner: NewChaos(recvB1, inj), Dir: dir, Opt: wal.Options{SegmentBytes: 16 << 10}}
	dst1 := stream.NewPipe(64 << 10)
	l1, err := d1.BindInbound(Endpoint{Addr: sndB.Addr(), Token: "dur-recv"}, dst1.WriteEnd())
	if err != nil {
		t.Fatal(err)
	}
	// Consumer 1 drains until the link degrade closes its pipe — it
	// must keep consuming or the inbound session would wedge in
	// dst.Write on a full pipe instead of noticing the dead conn.
	var consumed1 atomic.Int64
	go func() {
		buf := make([]byte, 4096)
		r := dst1.ReadEnd()
		for {
			n, err := r.Read(buf)
			consumed1.Add(int64(n))
			if err != nil {
				return
			}
		}
	}()
	waitAtLeast(t, &consumed1, killAfter, "pre-kill consumption")
	inj.PartitionNow(0)
	close(gate) // the producer may finish now; the kill has landed
	l1.Wait()   // degrade: dst closed, journal synced and closed
	dst1.CloseRead()

	// Receiver incarnation 2: same journal dir, fresh broker and pipe,
	// fresh consumer reading from offset zero.
	recvB2 := durBroker(t, patientRes())
	d2 := Durable{Inner: TCP{Broker: recvB2}, Dir: dir, Opt: wal.Options{SegmentBytes: 16 << 10}}
	dst2 := stream.NewPipe(64 << 10)
	l2, err := d2.BindInbound(Endpoint{Addr: sndB.Addr(), Token: "dur-recv"}, dst2.WriteEnd())
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(dst2.ReadEnd())
	if err != nil {
		t.Fatalf("restarted consumer drain: %v", err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatalf("restarted consumer stream diverged: got %d bytes, want %d", len(got), len(pat))
	}
	if err := l2.Wait(); err != nil {
		t.Fatalf("restarted receiver link: %v", err)
	}
	if err := l.Wait(); err != nil {
		t.Fatalf("sender link: %v", err)
	}
}

func TestJournalDirStableAndSanitized(t *testing.T) {
	a := journalDir("/tmp/j", "out", "kr/scenario:1/seed=42")
	b := journalDir("/tmp/j", "out", "kr/scenario:1/seed=42")
	if a != b {
		t.Fatalf("journalDir not stable: %q vs %q", a, b)
	}
	if strings.ContainsAny(strings.TrimPrefix(a, "/tmp/j/out/"), "/:=") {
		t.Fatalf("journalDir leaked unsafe characters: %q", a)
	}
	if c := journalDir("/tmp/j", "out", "kr/scenario:1/seed=43"); c == a {
		t.Fatalf("distinct tokens mapped to one journal dir: %q", c)
	}
	if in := journalDir("/tmp/j", "in", "kr/scenario:1/seed=42"); in == a {
		t.Fatal("in/out journals must not share a dir")
	}
}

func TestDurableDelegatesAddrAndString(t *testing.T) {
	b := durBroker(t, patientRes())
	d := Durable{Inner: TCP{Broker: b}, Dir: t.TempDir()}
	if d.String() != "durable(tcp)" {
		t.Fatalf("String() = %q", d.String())
	}
	if d.Addr() != b.Addr() {
		t.Fatalf("Addr() = %q, want %q", d.Addr(), b.Addr())
	}
	if d.NewToken() == "" {
		t.Fatal("NewToken() empty")
	}
	lb := Durable{Inner: NewLoopback(), Dir: t.TempDir()}
	if lb.Addr() != "" || lb.NewToken() != "" {
		t.Fatal("loopback inner should not fake an addr or token")
	}
}
