package conduit

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"dpn/internal/faults"
	"dpn/internal/netio"
)

// Endpoint names the remote half of a transport binding. Addr == ""
// means serve: park on Token and wait for the peer to dial our side.
// A non-empty Addr means dial the peer's broker there and present
// Token.
type Endpoint struct {
	Addr  string
	Token string
}

// Serve reports whether the binding waits for the peer to connect.
func (e Endpoint) Serve() bool { return e.Addr == "" }

// Link is one live transport binding of a conduit: the sending half
// (outbound: local bytes flow to the remote reader) or the receiving
// half (inbound: remote bytes flow into the local buffer). The method
// set is satisfied structurally by *netio.Handle; other transports
// provide their own implementations.
type Link interface {
	// Wait blocks until the link has fully shut down and returns its
	// terminal error (classify with IsBenignClose / IsDegrade).
	Wait() error
	// Done is closed when the link has shut down.
	Done() <-chan struct{}
	// PeerAddr returns the transport address of the other end.
	PeerAddr() (string, error)
	// Move performs the reader-side redirection (§4.3 dual): the writer
	// host is told to pause at a fence and rebind directly to the
	// reader's new host. Inbound links only.
	Move(addr, token string) error
	// Redirect arranges the writer-side redirection (§4.3): once the
	// local source drains, the peer is told to await a direct connection
	// from the writer's new host. Outbound links only. Returns the peer
	// address for the migration descriptor.
	Redirect(token string) (string, error)
	// Outbound reports whether this is the sending half.
	Outbound() bool
}

// Rearmer is implemented by links that can replace themselves with a
// fresh Link mid-stream — today the tcp transport's redirect path,
// where the reader host re-arms a new rendezvous for the writer's next
// hop. Trackers install a hook so they always hold the live link of a
// channel instead of a finished one; the hook must not block.
type Rearmer interface {
	OnRearm(func(Link))
}

// Transport binds one end of a conduit to a peer. Implementations:
// TCP (netio broker links), Chaos (TCP under fault injection), and
// Loopback (in-process pump for tests). The in-proc zero-copy plane
// needs no Transport at all — an unbound conduit's entry and exit
// operate directly on the bounded buffer.
type Transport interface {
	fmt.Stringer
	// BindOutbound pumps src (the local byte source: a conduit exit or
	// a detached port transport) to the peer's inbound half. window
	// bounds unacknowledged bytes in flight where the transport supports
	// credit (non-positive selects the transport default).
	BindOutbound(ep Endpoint, src io.ReadCloser, window int) (Link, error)
	// BindInbound pumps bytes received from the peer's outbound half
	// into dst (normally a conduit buffer's write end).
	BindInbound(ep Endpoint, dst io.WriteCloser) (Link, error)
}

// TCP is the production transport: framed broker-rendezvous links with
// credit flow control and optional resilience (see netio).
type TCP struct {
	Broker *netio.Broker
}

func (t TCP) String() string { return "tcp" }

// Addr returns the local broker address peers dial.
func (t TCP) Addr() string { return t.Broker.Addr() }

// NewToken mints a node-unique rendezvous token.
func (t TCP) NewToken() string { return t.Broker.NewToken() }

func (t TCP) BindOutbound(ep Endpoint, src io.ReadCloser, window int) (Link, error) {
	var h *netio.Handle
	var err error
	if ep.Serve() {
		h, err = t.Broker.ServeOutbound(ep.Token, src, window)
	} else {
		h, err = t.Broker.DialOutbound(ep.Addr, ep.Token, src, window)
	}
	if err != nil {
		return nil, err
	}
	return tcpLink{h}, nil
}

func (t TCP) BindInbound(ep Endpoint, dst io.WriteCloser) (Link, error) {
	var h *netio.Handle
	var err error
	if ep.Serve() {
		h, err = t.Broker.ServeInbound(ep.Token, dst)
	} else {
		h, err = t.Broker.DialInbound(ep.Addr, ep.Token, dst)
	}
	if err != nil {
		return nil, err
	}
	return tcpLink{h}, nil
}

// tcpLink adapts *netio.Handle to Link and Rearmer. It is a comparable
// value type so trackers can compare stored links by identity.
type tcpLink struct {
	h *netio.Handle
}

func (l tcpLink) Wait() error                           { return l.h.Wait() }
func (l tcpLink) Done() <-chan struct{}                 { return l.h.Done() }
func (l tcpLink) PeerAddr() (string, error)             { return l.h.PeerAddr() }
func (l tcpLink) Move(addr, token string) error         { return l.h.Move(addr, token) }
func (l tcpLink) Redirect(token string) (string, error) { return l.h.Redirect(token) }
func (l tcpLink) Outbound() bool                        { return l.h.Outbound() }

// Handle exposes the underlying netio handle for callers that need the
// raw transport surface.
func (l tcpLink) Handle() *netio.Handle { return l.h }

func (l tcpLink) OnRearm(fn func(Link)) {
	l.h.SetRearmHook(func(nh *netio.Handle) { fn(tcpLink{nh}) })
}

// Mux is the TCP transport with session multiplexing enabled on the
// broker: every link between this node and a given peer tunnels as a
// virtual stream over one long-lived, authenticated connection instead
// of a dedicated socket per channel. The link protocol — and with it
// resilience, RESUME resync, block compression, and durable WAL
// journaling — rides each stream unchanged, so Mux composes with
// Durable and Chaos exactly as TCP does.
type Mux struct {
	TCP
}

// NewMux enables session multiplexing on b with the given cluster
// pre-shared key (nil skips peer authentication) and returns the
// transport. Enable mux on every broker of the graph: a mux dialer
// needs a mux-aware acceptor, though a mux acceptor still admits
// legacy per-channel dialers.
func NewMux(b *netio.Broker, psk []byte) Mux {
	b.EnableMux(psk)
	return Mux{TCP: TCP{Broker: b}}
}

func (m Mux) String() string { return "mux" }

// Chaos is the TCP transport with a fault injector installed on the
// broker: every future connection, inbound and outbound, runs under
// injected dial errors, resets, partitions, and delays. It exists so
// chaos suites bind conduits through exactly the code path production
// uses, with the failure surface switched on.
type Chaos struct {
	TCP
	Faults *faults.Injector
}

// NewChaos installs inj on b and returns the transport.
func NewChaos(b *netio.Broker, inj *faults.Injector) Chaos {
	b.SetFaults(inj)
	return Chaos{TCP: TCP{Broker: b}, Faults: inj}
}

func (c Chaos) String() string { return "chaos" }

// Loopback is an in-process transport for tests: the outbound and
// inbound halves of a token rendezvous inside one process and a pump
// goroutine moves bytes between them, applying the same close-cascade
// rules as the tcp links (source EOF closes the sink; a poisoned sink
// closes the source). It has no credit protocol — the bounded buffers
// at both ends provide the end-to-end bound naturally, because the
// pump blocks whenever the destination buffer is full.
type Loopback struct {
	mu     sync.Mutex
	parked map[string]*loopPipe
}

// NewLoopback returns an empty loopback rendezvous space.
func NewLoopback() *Loopback {
	return &Loopback{parked: make(map[string]*loopPipe)}
}

func (l *Loopback) String() string { return "loopback" }

func (l *Loopback) BindOutbound(ep Endpoint, src io.ReadCloser, window int) (Link, error) {
	return l.bind(ep.Token, src, nil)
}

func (l *Loopback) BindInbound(ep Endpoint, dst io.WriteCloser) (Link, error) {
	return l.bind(ep.Token, nil, dst)
}

func (l *Loopback) bind(token string, src io.ReadCloser, dst io.WriteCloser) (Link, error) {
	l.mu.Lock()
	p := l.parked[token]
	if p == nil {
		p = &loopPipe{done: make(chan struct{})}
		l.parked[token] = p
	} else {
		delete(l.parked, token)
	}
	if src != nil {
		if p.src != nil {
			l.mu.Unlock()
			return nil, fmt.Errorf("conduit: loopback token %q already has an outbound end", token)
		}
		p.src = src
	} else {
		if p.dst != nil {
			l.mu.Unlock()
			return nil, fmt.Errorf("conduit: loopback token %q already has an inbound end", token)
		}
		p.dst = dst
	}
	ready := p.src != nil && p.dst != nil
	l.mu.Unlock()
	if ready {
		go p.pump()
	}
	return loopLink{p: p, outbound: src != nil}, nil
}

// loopPipe is the shared pump state behind both Link views of one
// loopback binding.
type loopPipe struct {
	src io.ReadCloser
	dst io.WriteCloser

	done chan struct{}
	once sync.Once
	err  error
}

func (p *loopPipe) finish(err error) {
	p.once.Do(func() {
		p.err = err
		close(p.done)
	})
}

// pump moves bytes until either side closes, mirroring the tcp links'
// cascade: source EOF propagates as a sink close (the remote reader
// drains and sees EOF); a poisoned sink propagates as a source close
// (upstream writers observe ErrReadClosed).
func (p *loopPipe) pump() {
	buf := make([]byte, 32*1024)
	for {
		n, rerr := p.src.Read(buf)
		if n > 0 {
			if _, werr := p.dst.Write(buf[:n]); werr != nil {
				p.src.Close()
				p.finish(nil)
				return
			}
		}
		if rerr != nil {
			p.dst.Close()
			if rerr == io.EOF || IsBenignClose(rerr) {
				p.finish(nil)
			} else {
				p.finish(rerr)
			}
			return
		}
	}
}

type loopLink struct {
	p        *loopPipe
	outbound bool
}

func (l loopLink) Wait() error {
	<-l.p.done
	return l.p.err
}

func (l loopLink) Done() <-chan struct{}     { return l.p.done }
func (l loopLink) PeerAddr() (string, error) { return "loopback", nil }
func (l loopLink) Outbound() bool            { return l.outbound }

func (l loopLink) Move(addr, token string) error {
	return fmt.Errorf("conduit: loopback move: %w", errors.ErrUnsupported)
}

func (l loopLink) Redirect(token string) (string, error) {
	return "", fmt.Errorf("conduit: loopback redirect: %w", errors.ErrUnsupported)
}
