package conduit

import (
	"errors"
	"io"

	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/netio/mux"
	"dpn/internal/stream"
)

// This file is the consolidated sentinel-error catalogue of the channel
// data plane. Before the conduit layer existed, stream, netio, and wire
// each minted their own close-state and degrade errors — some created
// fresh at every call site, so errors.Is could not match them and
// callers fell back to comparing strings. Every sentinel is now either
// defined here or defined once at its origin package and aliased here,
// which makes errors.Is the one correct way to classify a data-plane
// error regardless of which layer surfaced it.

// ErrDetached is returned by operations on a conduit endpoint whose
// transport has been handed to another process or to the migration
// machinery (core.ErrDetached is an alias of this value).
var ErrDetached = errors.New("conduit: port detached")

// Buffer-plane close states (origin: stream).
var (
	// ErrReadClosed poisons writers after the consuming end closed.
	ErrReadClosed = stream.ErrReadClosed
	// ErrWriteClosed rejects writes on a closed producing end.
	ErrWriteClosed = stream.ErrWriteClosed
)

// Transport-plane states (origin: netio).
var (
	// ErrBadFrame reports a malformed or unexpected protocol frame.
	ErrBadFrame = netio.ErrBadFrame
	// ErrBrokerClosed reports a rendezvous that can never complete
	// because the local broker shut down.
	ErrBrokerClosed = netio.ErrBrokerClosed
	// ErrRendezvousTimeout reports a peer that never presented its token.
	ErrRendezvousTimeout = netio.ErrRendezvousTimeout
	// ErrLinkDeadline reports an outage that outlasted the link's
	// resilience window; the link degraded into a cascading close.
	ErrLinkDeadline = netio.ErrLinkDeadline
	// ErrTokenInUse reports a rendezvous token registered twice on one
	// broker.
	ErrTokenInUse = netio.ErrTokenInUse
	// ErrWrongDirection reports a direction-specific link operation
	// (Redirect, Move) invoked on the wrong half.
	ErrWrongDirection = netio.ErrWrongDirection
	// ErrNotConnected reports a link control operation attempted while
	// the link was between connections.
	ErrNotConnected = netio.ErrNotConnected
)

// Session-multiplexing states (origin: netio/mux). A mux session is the
// shared authenticated connection a peer pair runs all its links over;
// these surface through any conduit bound via the Mux transport.
var (
	// ErrSessionClosed reports an operation on (or a stream orphaned
	// by) a deliberately closed mux session.
	ErrSessionClosed = mux.ErrSessionClosed
	// ErrAuthFailed reports a mux handshake rejected by the pre-shared-
	// key challenge/response peer authentication.
	ErrAuthFailed = mux.ErrAuthFailed
	// ErrStreamLimit reports a session at its virtual-stream capacity.
	ErrStreamLimit = mux.ErrStreamLimit
	// ErrStreamReset reports a virtual stream aborted by the peer.
	ErrStreamReset = mux.ErrStreamReset
)

// ErrInjected marks failures manufactured by the fault-injection
// harness (origin: faults).
var ErrInjected = faults.ErrInjected

// IsBenignClose reports whether err is one of the orderly stream-
// shutdown conditions that terminate a process or a lane normally: end
// of input, poisoned output, or a channel torn down mid-element during
// the §3.4 cascading close. It is the conduit-layer superset of the
// check the Java implementation applies to IOException in
// IterativeProcess.run (Figure 4 of the paper); core.IsTermination
// delegates here.
func IsBenignClose(err error) bool {
	return err != nil && (errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, ErrReadClosed) ||
		errors.Is(err, ErrWriteClosed) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, ErrDetached))
}

// IsDegrade reports whether err marks a transport that exhausted its
// fault tolerance (or a fault the chaos harness injected) rather than
// an orderly close: the channel was poisoned to force termination, not
// drained to completion. Operators count these to tell "graph finished"
// from "graph degraded".
func IsDegrade(err error) bool {
	return err != nil && (errors.Is(err, ErrLinkDeadline) ||
		errors.Is(err, ErrBrokerClosed) ||
		errors.Is(err, ErrRendezvousTimeout) ||
		errors.Is(err, ErrBadFrame) ||
		errors.Is(err, ErrSessionClosed) ||
		errors.Is(err, ErrAuthFailed) ||
		errors.Is(err, ErrStreamReset) ||
		errors.Is(err, ErrInjected))
}
