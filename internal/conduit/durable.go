package conduit

import (
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpn/internal/obs"
	"dpn/internal/stream"
	"dpn/internal/wal"
)

// Durable wraps a Transport so every logical byte of a binding is
// journaled to a segmented WAL (internal/wal) before it touches the
// wire, turning `kill -9` of either endpoint into the equivalent of a
// long partition:
//
//   - The outbound half journals each chunk (append + fsync) before the
//     link may send it, and truncates acknowledged whole segments as the
//     receiver's ACKs arrive. A restarted sender whose deterministic
//     producer re-runs from offset zero discards the re-produced prefix
//     it already journaled, rewinds to the receiver's RESUME offset, and
//     replays the gap [delivered, journal-end) from the journal — the
//     netio link drives this through the rewindableSource/ackedSource
//     taps.
//   - The inbound half journals each delivered chunk before writing it
//     to the local buffer and before the link ACKs it, so the sender's
//     truncation never outruns receiver durability. After a restart it
//     announces the journal's end as its RESUME offset and replays the
//     whole journal into the fresh local pipe, where the restarted
//     consumer (also re-running from zero) expects the stream from its
//     beginning. The inbound journal is therefore never truncated while
//     the graph runs: recovery is replay-based, not checkpoint-based,
//     and a future restart needs the stream from offset zero again.
//
// Invariant chain (sender view): truncation base <= ackOff <= receiver
// durable offset <= sender journal end. A SIGKILL mid-fsync can tear
// only the journal tail — bytes the link never saw, re-produced by the
// deterministic source on the next run.
//
// Journals live under Dir/out/<token-key> and Dir/in/<token-key>; a
// restarted process must be handed the same Dir and bind with the same
// token to find them (broker-minted tokens are NOT stable across
// restarts — durable bindings want caller-chosen tokens).
type Durable struct {
	Inner Transport
	// Dir is the journal root; one subdirectory per bound endpoint.
	Dir string
	// Opt tunes the underlying logs (segment size, NoSync for benches).
	Opt wal.Options
	// Obs, when non-nil, receives the dpn_wal_* metrics.
	Obs *obs.Scope
}

func (d Durable) String() string { return "durable(" + d.Inner.String() + ")" }

// Addr delegates to the inner transport when it exposes a broker
// address (TCP/Chaos do).
func (d Durable) Addr() string {
	if a, ok := d.Inner.(interface{ Addr() string }); ok {
		return a.Addr()
	}
	return ""
}

// NewToken delegates to the inner transport. Note the caveat above:
// broker tokens embed a process-local sequence and will not find the
// journal again after a restart; kill-restart deployments use stable
// caller-chosen tokens instead.
func (d Durable) NewToken() string {
	if a, ok := d.Inner.(interface{ NewToken() string }); ok {
		return a.NewToken()
	}
	return ""
}

// journalDir maps an endpoint token to a filesystem-safe, stable
// directory: a sanitized prefix for humans plus an fnv32 of the full
// token for uniqueness.
func journalDir(root, side, token string) string {
	h := fnv.New32a()
	h.Write([]byte(token))
	san := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, token)
	if len(san) > 48 {
		san = san[:48]
	}
	return filepath.Join(root, side, fmt.Sprintf("%s-%08x", san, h.Sum32()))
}

func (d Durable) BindOutbound(ep Endpoint, src io.ReadCloser, window int) (Link, error) {
	log, err := wal.Open(journalDir(d.Dir, "out", ep.Token), d.Opt)
	if err != nil {
		return nil, fmt.Errorf("conduit: durable outbound journal: %w", err)
	}
	js := newJournalSource(src, log, newWALInstruments(d.Obs, "sink"))
	l, err := d.Inner.BindOutbound(ep, js, window)
	if err != nil {
		js.Close()
		return nil, err
	}
	return l, nil
}

func (d Durable) BindInbound(ep Endpoint, dst io.WriteCloser) (Link, error) {
	log, err := wal.Open(journalDir(d.Dir, "in", ep.Token), d.Opt)
	if err != nil {
		return nil, fmt.Errorf("conduit: durable inbound journal: %w", err)
	}
	sk := newJournalSink(dst, log, newWALInstruments(d.Obs, "source"))
	l, err := d.Inner.BindInbound(ep, sk)
	if err != nil {
		sk.Close()
		return nil, err
	}
	return l, nil
}

// walInstruments is the dpn_wal_* metric bundle; nil disables all
// accounting (one pointer check per chunk).
type walInstruments struct {
	appended  *obs.Counter
	truncated *obs.Counter
	replayed  *obs.Counter
	fsync     *obs.Histogram
}

// fsyncBounds buckets journal fsync latency from SSD-fast to
// spinning-rust-contended.
var fsyncBounds = []float64{
	50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3,
}

// newWALInstruments builds the journal metric bundle in s's registry,
// labeled by binding direction (dir=sink for outbound journals,
// dir=source for inbound — the BindSink/BindSource vocabulary the
// conduit rebind metrics already use). Nil scope or registry disables.
func newWALInstruments(s *obs.Scope, side string) *walInstruments {
	if s == nil {
		return nil
	}
	reg := s.Registry()
	if reg == nil {
		return nil
	}
	reg.Help("dpn_wal_appended_bytes_total", "Logical bytes journaled (appended + fsynced) by durable bindings, by dir (sink|source).")
	reg.Help("dpn_wal_truncated_bytes_total", "Journaled bytes released by ack-threshold truncation, by dir.")
	reg.Help("dpn_wal_replayed_bytes_total", "Journaled bytes replayed after a restart, by dir.")
	reg.Help("dpn_wal_fsync_seconds", "Latency of journal fsync batches, by dir.")
	lbl := obs.L("dir", side)
	return &walInstruments{
		appended:  reg.Counter("dpn_wal_appended_bytes_total", lbl),
		truncated: reg.Counter("dpn_wal_truncated_bytes_total", lbl),
		replayed:  reg.Counter("dpn_wal_replayed_bytes_total", lbl),
		fsync:     reg.Histogram("dpn_wal_fsync_seconds", fsyncBounds, lbl),
	}
}

// append journals p and makes it durable, with accounting. Chunk-level
// granularity IS the fsync batching: the link hands us coalesced
// chunks (up to the frame cap), so one fsync covers up to ~128 KiB of
// logical bytes, not one token.
func (w *walInstruments) append(log *wal.Log, p []byte) error {
	if _, err := log.Append(p); err != nil {
		return err
	}
	start := time.Now()
	if err := log.Sync(); err != nil {
		return err
	}
	if w != nil {
		w.fsync.Observe(time.Since(start).Seconds())
		w.appended.Add(int64(len(p)))
	}
	return nil
}

// journalSource wraps a conduit exit (or any byte source) for an
// outbound durable binding. The netio link discovers its durability
// taps structurally: Rewind (restart resync), Acked (truncation),
// TakeTraceMark/ShapeHint (forwarded from the wrapped source so
// compression hints and causal marks survive the wrapping).
//
// Reader-goroutine state (pos, rd, srcSkip) is confined to the link's
// reader goroutine; Rewind runs before that goroutine starts (the link
// starts it only after the first resync) and Acked touches only the
// lock-protected log.
type journalSource struct {
	src io.ReadCloser
	log *wal.Log
	ins *walInstruments

	tt stream.TraceTaker  // nil when src carries no trace marks
	ss stream.ShapeSource // nil when src carries no shape hint

	pos     uint64      // next logical offset to hand the link
	rd      *wal.Reader // open while serving journal bytes
	srcSkip uint64      // re-produced live bytes to discard (already journaled)

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

func newJournalSource(src io.ReadCloser, log *wal.Log, ins *walInstruments) *journalSource {
	tt, _ := src.(stream.TraceTaker)
	ss, _ := src.(stream.ShapeSource)
	return &journalSource{
		src: src,
		log: log,
		ins: ins,
		tt:  tt,
		ss:  ss,
		// Start at the journal base: when the receiver announces
		// delivered offset 0 the link never calls Rewind, and the whole
		// retained journal must replay (base <= ackOff <= delivered = 0
		// forces base 0 in that case).
		pos: log.Base(),
		// Everything already journaled will be re-produced by the
		// deterministic source on this run; discard it instead of
		// journaling it twice.
		srcSkip: log.End(),
	}
}

func (j *journalSource) Read(p []byte) (int, error) {
	for {
		if j.closed.Load() {
			if j.rd != nil {
				j.rd.Close()
				j.rd = nil
			}
			return 0, io.ErrClosedPipe
		}
		// Serve from the journal while the read position trails its end
		// (restart replay, or a rewound position after resync).
		if j.pos < j.log.End() {
			if j.rd == nil {
				rd, err := j.log.ReaderAt(j.pos)
				if err != nil {
					return 0, err
				}
				j.rd = rd
			}
			n, err := j.rd.Read(p)
			if n > 0 {
				j.pos += uint64(n)
				if j.ins != nil {
					j.ins.replayed.Add(int64(n))
				}
				return n, nil
			}
			if err != nil && err != io.EOF {
				return 0, err
			}
			continue // raced the end; re-evaluate
		}
		if j.rd != nil {
			j.rd.Close()
			j.rd = nil
		}
		// Discard the live source's re-produced prefix.
		if j.srcSkip > 0 {
			lim := len(p)
			if uint64(lim) > j.srcSkip {
				lim = int(j.srcSkip)
			}
			n, err := j.src.Read(p[:lim])
			j.srcSkip -= uint64(n)
			if err != nil {
				return 0, err
			}
			continue
		}
		// Live path: journal-then-release. The chunk may reach the wire
		// only after it is durable at this end.
		n, err := j.src.Read(p)
		if n > 0 {
			if aerr := j.ins.append(j.log, p[:n]); aerr != nil {
				return 0, aerr
			}
			j.pos += uint64(n)
			return n, err
		}
		return n, err
	}
}

// Rewind repositions the stream at off — the link calls it (before its
// reader goroutine ever runs) when the receiver's RESUME offset is
// ahead of a freshly restarted sender.
func (j *journalSource) Rewind(off uint64) error {
	if off < j.log.Base() || off > j.log.End() {
		return fmt.Errorf("conduit: durable rewind to %d outside journal [%d, %d]", off, j.log.Base(), j.log.End())
	}
	if j.rd != nil {
		j.rd.Close()
		j.rd = nil
	}
	j.pos = off
	return nil
}

// Acked releases journal segments entirely below the receiver-confirmed
// offset.
func (j *journalSource) Acked(off uint64) {
	removed, err := j.log.Truncate(off)
	if err == nil && removed > 0 && j.ins != nil {
		j.ins.truncated.Add(int64(removed))
	}
}

func (j *journalSource) TakeTraceMark() uint64 {
	if j.tt != nil {
		return j.tt.TakeTraceMark()
	}
	return 0
}

func (j *journalSource) ShapeHint() uint32 {
	if j.ss != nil {
		return j.ss.ShapeHint()
	}
	return 0
}

func (j *journalSource) Close() error {
	j.closeOnce.Do(func() {
		j.closed.Store(true)
		err := j.src.Close()
		if lerr := j.log.Close(); err == nil {
			err = lerr
		}
		j.closeErr = err
	})
	return j.closeErr
}

// journalSink wraps a conduit buffer's write end for an inbound durable
// binding. Every delivered chunk is journaled and fsynced BEFORE it is
// written to the local pipe — and the link ACKs only after the pipe
// write returns — so an acknowledged byte is always durable here. On
// construction the sink announces the journal end through Delivered()
// (seeding the link's first RESUME) and replays the journal into the
// fresh local pipe; live writes queue behind the replay.
type journalSink struct {
	dst io.WriteCloser
	log *wal.Log
	ins *walInstruments

	tm stream.TraceMarker // nil when dst takes no trace marks

	delivered  uint64 // journal end at open: the restart RESUME offset
	replayDone chan struct{}
	replayErr  error // set before replayDone closes

	closeOnce sync.Once
	closeErr  error
}

func newJournalSink(dst io.WriteCloser, log *wal.Log, ins *walInstruments) *journalSink {
	tm, _ := dst.(stream.TraceMarker)
	s := &journalSink{
		dst:        dst,
		log:        log,
		ins:        ins,
		tm:         tm,
		delivered:  log.End(),
		replayDone: make(chan struct{}),
	}
	go s.replay()
	return s
}

// replay pumps the retained journal into the local pipe: the restarted
// consumer re-runs from offset zero and expects the whole stream.
func (s *journalSink) replay() {
	defer close(s.replayDone)
	if s.delivered == 0 {
		return
	}
	if base := s.log.Base(); base != 0 {
		s.replayErr = fmt.Errorf("conduit: durable inbound journal starts at %d, cannot replay from zero", base)
		return
	}
	rd, err := s.log.ReaderAt(0)
	if err != nil {
		s.replayErr = err
		return
	}
	defer rd.Close()
	n, err := io.Copy(io.Writer(s.dst), io.LimitReader(rd, int64(s.delivered)))
	if err != nil {
		s.replayErr = err
		return
	}
	if s.ins != nil {
		s.ins.replayed.Add(n)
	}
}

// Delivered seeds the link's RESUME offset after a restart.
func (s *journalSink) Delivered() uint64 { return s.delivered }

func (s *journalSink) Write(p []byte) (int, error) {
	// Journal first: the caller ACKs the sender when this Write
	// returns, and an acked byte must already be durable here.
	if err := s.ins.append(s.log, p); err != nil {
		return 0, err
	}
	<-s.replayDone
	if s.replayErr != nil {
		return 0, s.replayErr
	}
	return s.dst.Write(p)
}

func (s *journalSink) MarkTrace(id uint64) {
	if s.tm != nil {
		s.tm.MarkTrace(id)
	}
}

func (s *journalSink) Close() error {
	s.closeOnce.Do(func() {
		<-s.replayDone
		err := s.dst.Close()
		if lerr := s.log.Close(); err == nil {
			err = lerr
		}
		s.closeErr = err
	})
	return s.closeErr
}
