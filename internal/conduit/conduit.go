// Package conduit is the unified channel data plane of the
// process-network runtime. A Conduit layers one logical FIFO out of two
// separable planes:
//
//   - a buffer core: the bounded in-memory pipe (stream.Pipe) with its
//     retargetable entry (stream.SwitchWriter) and spliceable exit
//     (stream.SequenceReader), giving blocking Kahn semantics, capacity
//     growth, and the §3.4 close cascade;
//   - an optional Transport binding: when one end of the channel lives
//     on another node, the conduit's entry or exit is bound to a Link
//     that carries the bytes (tcp via the netio broker, chaos under
//     fault injection, loopback for tests). The in-proc zero-copy case
//     is simply the unbound conduit — no Transport object exists, and
//     reads and writes touch the buffer directly.
//
// Migration is a transport *rebind* on a live endpoint, not a splice:
// drain the buffered bytes (SealAndDrain), move them with the parcel,
// and bind the endpoint to a new Link (BindSource/BindSink) — the
// paper's decentralized redirection (§4.3) is a second rebind over the
// same surface. Close-cascade, credit accounting, and the
// dpn_conduit_* instrumentation are defined once at this layer; the
// pre-conduit dpn_channel_* and dpn_link_* metric names remain visible
// as exposition-time aliases.
package conduit

import (
	"io"
	"sync"

	"dpn/internal/obs"
	"dpn/internal/stream"
)

// Conduit is one logical channel FIFO: a bounded buffer plus the
// bookkeeping to bind either end to a Transport. The hot path is
// untouched by the abstraction — entry and exit are the same
// SwitchWriter/SequenceReader values the ports write and read through,
// so an unbound (in-proc) conduit costs exactly what the bare pipe
// cost.
type Conduit struct {
	name  string
	buf   *stream.Pipe
	entry *stream.SwitchWriter
	exit  *stream.SequenceReader

	mu       sync.Mutex
	rebinds  int
	rebindsC func(dir string) // increments dpn_conduit_rebinds_total, nil until Instrument
}

// New creates an unbound conduit with the given buffer capacity.
func New(name string, capacity int) *Conduit {
	p := stream.NewPipe(capacity)
	p.SetName(name)
	return &Conduit{
		name:  name,
		buf:   p,
		entry: stream.NewSwitchWriter(p.WriteEnd()),
		exit:  stream.NewSequenceReader(p.ReadEnd()),
	}
}

// Name returns the conduit's diagnostic name.
func (c *Conduit) Name() string { return c.name }

// Buffer exposes the bounded buffer core for capacity management and
// introspection (deadlock detection, migration).
func (c *Conduit) Buffer() *stream.Pipe { return c.buf }

// Entry is the conduit's producing endpoint: the retargetable writer
// the channel's WritePort writes through.
func (c *Conduit) Entry() *stream.SwitchWriter { return c.entry }

// Exit is the conduit's consuming endpoint: the spliceable reader the
// channel's ReadPort reads through.
func (c *Conduit) Exit() *stream.SequenceReader { return c.exit }

// Buffered reports the bytes immediately readable from the exit —
// buffer occupancy plus any spliced leftovers ahead of it.
func (c *Conduit) Buffered() int { return c.exit.Buffered() }

// Instrument homes the conduit's metrics in the scope's registry: the
// per-channel buffer instruments (dpn_conduit_bytes_total and friends,
// with dpn_channel_* aliases) and the rebind counter. obsv may be nil.
func (c *Conduit) Instrument(s *obs.Scope, obsv stream.Observer) {
	if s == nil {
		return
	}
	if obsv != nil {
		c.buf.SetObserver(obsv)
	}
	c.buf.SetInstruments(NewInstruments(s, c.name))
	reg := s.Registry()
	lbl := obs.L("channel", c.name)
	c.mu.Lock()
	c.rebindsC = func(dir string) {
		reg.Counter("dpn_conduit_rebinds_total", lbl, obs.L("dir", dir)).Inc()
	}
	c.mu.Unlock()
}

func (c *Conduit) noteRebind(dir string) {
	c.mu.Lock()
	c.rebinds++
	f := c.rebindsC
	c.mu.Unlock()
	if f != nil {
		f(dir)
	}
}

// Rebinds reports how many transport rebinds this conduit has
// performed (migrations, redirects, and import-side reconnects all
// count one each).
func (c *Conduit) Rebinds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rebinds
}

// BindSource binds the conduit's producing end to a transport: bytes
// the remote writer sends flow into the buffer, and the local exit
// keeps serving reads unchanged. This is the rebind a node performs
// when a channel's writer moves away (the reader stays), and again on
// the import side when a moved reader's upstream is remote.
func (c *Conduit) BindSource(t Transport, ep Endpoint) (Link, error) {
	l, err := t.BindInbound(ep, c.buf.WriteEnd())
	if err != nil {
		return nil, err
	}
	c.noteRebind("source")
	return l, nil
}

// BindSink binds the conduit's consuming end to a transport: the exit
// — including everything currently buffered — drains outward to the
// remote reader. The caller must detach the local ReadPort first; the
// conduit's exit becomes the transport's source. window bounds the
// bytes in flight (the channel's capacity keeps the end-to-end bound).
func (c *Conduit) BindSink(t Transport, ep Endpoint, window int) (Link, error) {
	l, err := t.BindOutbound(ep, c.exit, window)
	if err != nil {
		return nil, err
	}
	c.noteRebind("sink")
	return l, nil
}

// SealAndDrain closes the buffer's write side and drains every byte
// still reachable through the exit (buffer contents plus spliced
// leftovers). It is the first half of a live-endpoint rebind: the
// drained bytes travel inside the migration parcel and are restored
// into the destination conduit, after which the stream resumes at that
// offset on the new binding. The local process must be suspended or
// detached; reads here race with nothing.
func (c *Conduit) SealAndDrain() ([]byte, error) {
	c.buf.CloseWrite()
	b, err := io.ReadAll(c.exit)
	if err != nil && !IsBenignClose(err) {
		return b, err
	}
	return b, nil
}

// Restore writes previously drained bytes into the buffer — the
// destination half of SealAndDrain. The caller sizes the conduit's
// capacity to hold them (Import does), so Restore never blocks.
func (c *Conduit) Restore(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, err := c.buf.Write(b)
	return err
}
