package conduit

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/obs"
	"dpn/internal/stream"
)

func waitLink(t *testing.T, l Link, what string) error {
	t.Helper()
	select {
	case <-l.Done():
		return l.Wait()
	case <-time.After(10 * time.Second):
		t.Fatalf("%s never shut down", what)
		return nil
	}
}

// The consolidated catalogue must match errors from the origin packages
// through errors.Is, including when wrapped, so no caller ever needs to
// import stream or netio just to classify a failure.
func TestSentinelCatalogueMatchesOrigins(t *testing.T) {
	pairs := []struct {
		alias, origin error
	}{
		{ErrReadClosed, stream.ErrReadClosed},
		{ErrWriteClosed, stream.ErrWriteClosed},
		{ErrBadFrame, netio.ErrBadFrame},
		{ErrBrokerClosed, netio.ErrBrokerClosed},
		{ErrRendezvousTimeout, netio.ErrRendezvousTimeout},
		{ErrLinkDeadline, netio.ErrLinkDeadline},
		{ErrInjected, faults.ErrInjected},
	}
	for _, p := range pairs {
		if !errors.Is(p.origin, p.alias) {
			t.Errorf("errors.Is(%v, alias) = false", p.origin)
		}
		wrapped := fmt.Errorf("link to peer: %w", p.origin)
		if !errors.Is(wrapped, p.alias) {
			t.Errorf("wrapped %v did not match its alias", p.origin)
		}
	}
}

func TestBenignCloseAndDegradeAreDisjoint(t *testing.T) {
	benign := []error{
		io.EOF, io.ErrUnexpectedEOF, io.ErrClosedPipe,
		ErrReadClosed, ErrWriteClosed, ErrDetached,
		fmt.Errorf("write ab: %w", ErrReadClosed),
	}
	degrade := []error{
		ErrLinkDeadline, ErrBrokerClosed, ErrRendezvousTimeout,
		ErrBadFrame, ErrInjected,
		fmt.Errorf("reconnect: %w", ErrLinkDeadline),
	}
	for _, err := range benign {
		if !IsBenignClose(err) {
			t.Errorf("IsBenignClose(%v) = false", err)
		}
		if IsDegrade(err) {
			t.Errorf("IsDegrade(%v) = true for a benign close", err)
		}
	}
	for _, err := range degrade {
		if !IsDegrade(err) {
			t.Errorf("IsDegrade(%v) = false", err)
		}
		if IsBenignClose(err) {
			t.Errorf("IsBenignClose(%v) = true for a degrade", err)
		}
	}
	if IsBenignClose(nil) || IsDegrade(nil) {
		t.Error("nil classified as a close state")
	}
	if other := errors.New("something else"); IsBenignClose(other) || IsDegrade(other) {
		t.Error("unknown error classified")
	}
}

func TestEndpointServe(t *testing.T) {
	if !(Endpoint{Token: "t"}).Serve() {
		t.Error("empty Addr should serve")
	}
	if (Endpoint{Addr: "127.0.0.1:9", Token: "t"}).Serve() {
		t.Error("non-empty Addr should dial")
	}
}

// Forward cascade over the loopback transport: writer closes, the
// reader drains every byte and then sees EOF, and both links finish
// cleanly.
func TestLoopbackForwardCascade(t *testing.T) {
	lb := NewLoopback()
	a := New("a", 64)
	b := New("b", 64)

	out, err := a.BindSink(lb, Endpoint{Token: "t"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := b.BindSource(lb, Endpoint{Token: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Outbound() || in.Outbound() {
		t.Fatal("link directions wrong")
	}
	if addr, err := out.PeerAddr(); err != nil || addr == "" {
		t.Fatalf("peer addr: %q, %v", addr, err)
	}

	msg := bytes.Repeat([]byte("conduit!"), 100)
	go func() {
		a.Entry().Write(msg)
		a.Entry().Close()
	}()
	got, err := io.ReadAll(b.Exit())
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %d bytes, want %d", len(got), len(msg))
	}
	if err := waitLink(t, out, "outbound link"); err != nil {
		t.Fatalf("outbound link: %v", err)
	}
	if err := waitLink(t, in, "inbound link"); err != nil {
		t.Fatalf("inbound link: %v", err)
	}
}

// Reverse cascade: the consumer closes its end, and the producer's next
// write observes a benign close rather than blocking forever (§3.4 in
// the upstream direction).
func TestLoopbackReverseCascade(t *testing.T) {
	lb := NewLoopback()
	a := New("a", 16)
	b := New("b", 16)

	out, err := a.BindSink(lb, Endpoint{Token: "t"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BindSource(lb, Endpoint{Token: "t"}); err != nil {
		t.Fatal(err)
	}
	b.Exit().Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := a.Entry().Write([]byte("x"))
		if err != nil {
			if !IsBenignClose(err) {
				t.Fatalf("writer saw %v, want a benign close", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never poisoned after reader close")
		}
		time.Sleep(time.Millisecond)
	}
	if err := waitLink(t, out, "outbound link"); err != nil {
		t.Fatalf("outbound link: %v", err)
	}
}

func TestLoopbackRejectsDoubleBind(t *testing.T) {
	lb := NewLoopback()
	a := New("a", 16)
	if _, err := a.BindSink(lb, Endpoint{Token: "t"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := New("a2", 16).BindSink(lb, Endpoint{Token: "t"}, 0); err == nil {
		t.Fatal("second outbound bind on one token accepted")
	}
}

func TestLoopbackLinkCannotMigrate(t *testing.T) {
	lb := NewLoopback()
	l, err := New("a", 16).BindSink(lb, Endpoint{Token: "t"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Move("x", "y"); !errors.Is(err, errors.ErrUnsupported) {
		t.Fatalf("Move: %v, want ErrUnsupported", err)
	}
	if _, err := l.Redirect("y"); !errors.Is(err, errors.ErrUnsupported) {
		t.Fatalf("Redirect: %v, want ErrUnsupported", err)
	}
}

// SealAndDrain and Restore are the two halves of a live-endpoint
// rebind: the drained bytes restored into a fresh conduit read back
// identically, ahead of anything written after the rebind.
func TestSealDrainRestoreRoundTrip(t *testing.T) {
	src := New("src", 256)
	payload := []byte("buffered-mid-migration")
	if _, err := src.Entry().Write(payload); err != nil {
		t.Fatal(err)
	}
	if got := src.Buffered(); got != len(payload) {
		t.Fatalf("Buffered = %d, want %d", got, len(payload))
	}
	leftover, err := src.SealAndDrain()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(leftover, payload) {
		t.Fatalf("drained %q", leftover)
	}

	dst := New("dst", 256)
	if err := dst.Restore(leftover); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Entry().Write([]byte("+post")); err != nil {
		t.Fatal(err)
	}
	dst.Entry().Close()
	got, err := io.ReadAll(dst.Exit())
	if err != nil {
		t.Fatal(err)
	}
	if want := string(payload) + "+post"; string(got) != want {
		t.Fatalf("restored stream = %q, want %q", got, want)
	}
}

func TestSealAndDrainEmpty(t *testing.T) {
	c := New("empty", 32)
	b, err := c.SealAndDrain()
	if err != nil || len(b) != 0 {
		t.Fatalf("drain empty: %q, %v", b, err)
	}
	if err := New("d", 32).Restore(nil); err != nil {
		t.Fatalf("restore nil: %v", err)
	}
}

// Every transport rebind counts, and when instrumented it surfaces as
// dpn_conduit_rebinds_total with a dir label.
func TestRebindAccounting(t *testing.T) {
	s := obs.NewScope()
	lb := NewLoopback()
	c := New("r", 32)
	c.Instrument(s, nil)
	if _, err := c.BindSink(lb, Endpoint{Token: "t1"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BindSource(lb, Endpoint{Token: "t2"}); err != nil {
		t.Fatal(err)
	}
	if got := c.Rebinds(); got != 2 {
		t.Fatalf("Rebinds = %d, want 2", got)
	}
	dirs := map[string]int64{}
	for _, smp := range s.Registry().Samples() {
		if smp.Name != "dpn_conduit_rebinds_total" {
			continue
		}
		for _, l := range smp.Labels {
			if l.Key == "dir" {
				dirs[l.Value] = smp.Value
			}
		}
	}
	if dirs["sink"] != 1 || dirs["source"] != 1 {
		t.Fatalf("rebind samples = %v", dirs)
	}
}

// An instrumented conduit publishes the canonical dpn_conduit_* series
// and the legacy dpn_channel_* names as exposition-time aliases with
// identical values, so pre-conduit dashboards keep reading.
func TestMetricAliasesTrackCanonical(t *testing.T) {
	s := obs.NewScope()
	c := New("m", 64)
	c.Instrument(s, nil)
	if _, err := c.Entry().Write(make([]byte, 48)); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, smp := range s.Registry().Samples() {
		key := smp.Name
		for _, l := range smp.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		byName[key] = smp.Value
	}
	canon := "dpn_conduit_bytes_total|channel=m|op=write"
	alias := "dpn_channel_bytes_total|channel=m|op=write"
	if byName[canon] != 48 {
		t.Fatalf("canonical sample = %d, want 48 (all: %v)", byName[canon], byName)
	}
	if byName[alias] != byName[canon] {
		t.Fatalf("alias %d != canonical %d", byName[alias], byName[canon])
	}
}
