package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func crcOf(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// fill returns n deterministic pattern bytes offset by seed, so replay
// comparisons catch reordering as well as loss.
func fill(seed, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(seed + i*7)
	}
	return p
}

func mustOpen(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

// readAll drains the journal from off and returns the payload bytes.
func readAll(t *testing.T, l *Log, off uint64) []byte {
	t.Helper()
	r, err := l.ReaderAt(off)
	if err != nil {
		t.Fatalf("ReaderAt(%d): %v", off, err)
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("reading journal from %d: %v", off, err)
	}
	return b
}

func TestAppendReadRoundTrip(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{SegmentBytes: 256})
	defer l.Close()
	var want []byte
	for i := 0; i < 40; i++ {
		p := fill(i, 11+i*3)
		off, err := l.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if off != uint64(len(want)) {
			t.Fatalf("append %d: offset %d, want %d", i, off, len(want))
		}
		want = append(want, p...)
	}
	if l.End() != uint64(len(want)) {
		t.Fatalf("End() = %d, want %d", l.End(), len(want))
	}
	if l.Segments() < 2 {
		t.Fatalf("expected rotation across %d payload bytes with 256-byte segments, got %d segment", len(want), l.Segments())
	}
	if got := readAll(t, l, 0); !bytes.Equal(got, want) {
		t.Fatalf("full read mismatch: %d bytes vs %d", len(got), len(want))
	}
	// Mid-stream offsets, including ones landing inside records and on
	// segment boundaries.
	for _, off := range []uint64{1, 10, 11, 255, 256, 257, uint64(len(want)) - 1, uint64(len(want))} {
		if got := readAll(t, l, off); !bytes.Equal(got, want[off:]) {
			t.Fatalf("read from %d mismatch", off)
		}
	}
}

func TestReaderSeesLaterAppends(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{SegmentBytes: 128, NoSync: true})
	defer l.Close()
	first := fill(1, 50)
	l.Append(first)
	r, err := l.ReaderAt(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, 50)
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(got[:1]); err != io.EOF {
		t.Fatalf("read at end: %v, want EOF", err)
	}
	second := fill(2, 300) // crosses a rotation
	l.Append(second)
	got2, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, second) {
		t.Fatalf("reader missed appended bytes: got %d, want %d", len(got2), len(second))
	}
}

func TestReopenPreservesStream(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 200})
	var want []byte
	for i := 0; i < 10; i++ {
		p := fill(i, 60)
		l.Append(p)
		want = append(want, p...)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{SegmentBytes: 200})
	defer l.Close()
	if l.End() != uint64(len(want)) {
		t.Fatalf("End after reopen = %d, want %d", l.End(), len(want))
	}
	if got := readAll(t, l, 0); !bytes.Equal(got, want) {
		t.Fatal("stream changed across reopen")
	}
	// And appends continue at the right offset.
	p := fill(99, 30)
	off, err := l.Append(p)
	if err != nil {
		t.Fatal(err)
	}
	if off != uint64(len(want)) {
		t.Fatalf("post-reopen append at %d, want %d", off, len(want))
	}
}

func TestTruncateRemovesWholeAckedSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 100, NoSync: true})
	defer l.Close()
	var want []byte
	for i := 0; i < 8; i++ {
		p := fill(i, 100) // exactly one segment each after the first fills
		l.Append(p)
		want = append(want, p...)
	}
	segsBefore := l.Segments()
	if segsBefore < 3 {
		t.Fatalf("need several segments, got %d", segsBefore)
	}
	// Ack threshold mid-segment: only segments entirely below it go.
	removed, err := l.Truncate(250)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 200 {
		t.Fatalf("removed %d bytes, want 200 (two whole segments)", removed)
	}
	if l.Base() != 200 {
		t.Fatalf("Base = %d, want 200", l.Base())
	}
	if got := readAll(t, l, 200); !bytes.Equal(got, want[200:]) {
		t.Fatal("retained suffix changed after truncation")
	}
	if _, err := l.ReaderAt(100); err == nil {
		t.Fatal("ReaderAt below Base should fail")
	}
	// The active segment is never removed, whatever the threshold.
	if _, err := l.Truncate(1 << 30); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 1 {
		t.Fatalf("over-threshold truncate kept %d segments, want the active one", l.Segments())
	}
	if l.End() != uint64(len(want)) {
		t.Fatalf("End moved across truncation: %d", l.End())
	}
}

// lastSegPath returns the newest segment file in dir.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return last
}

// Torture taxonomy, mirroring the strict-decoder corruption tests in
// internal/token/blocks: each case damages the on-disk journal the way
// a specific crash (or bit rot) would, then asserts Open's verdict.

func TestTortureTruncatedTailRecord(t *testing.T) {
	for _, cut := range []int{1, recHdrLen - 1, recHdrLen, recHdrLen + 5} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{SegmentBytes: 1 << 20})
			var want []byte
			for i := 0; i < 5; i++ {
				p := fill(i, 40)
				l.Append(p)
				want = append(want, p...)
			}
			l.Close()
			// A kill -9 mid-append leaves a partial record at the tail.
			path := lastSegPath(t, dir)
			info, _ := os.Stat(path)
			if err := os.Truncate(path, info.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}
			l = mustOpen(t, dir, Options{})
			defer l.Close()
			// Whole torn record dropped; earlier records intact.
			wantEnd := uint64(len(want) - 40)
			if cut <= 0 {
				wantEnd = uint64(len(want))
			}
			if l.End() != wantEnd {
				t.Fatalf("End after torn tail = %d, want %d", l.End(), wantEnd)
			}
			if got := readAll(t, l, 0); !bytes.Equal(got, want[:wantEnd]) {
				t.Fatal("retained prefix changed")
			}
			// The log must accept appends cleanly after recovery.
			if _, err := l.Append(fill(9, 40)); err != nil {
				t.Fatal(err)
			}
			if got := readAll(t, l, wantEnd); !bytes.Equal(got, fill(9, 40)) {
				t.Fatal("post-recovery append unreadable")
			}
		})
	}
}

func TestTortureFlippedCRCByte(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 1 << 20})
	var want []byte
	for i := 0; i < 4; i++ {
		p := fill(i, 64)
		l.Append(p)
		want = append(want, p...)
	}
	l.Close()
	// Flip one payload byte of the LAST record: tolerated as a torn
	// tail (the append crashed mid-payload-write after the header).
	path := lastSegPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-10] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{})
	if l.End() != uint64(len(want)-64) {
		t.Fatalf("End after flipped tail CRC = %d, want %d", l.End(), len(want)-64)
	}
	if got := readAll(t, l, 0); !bytes.Equal(got, want[:len(want)-64]) {
		t.Fatal("good prefix changed")
	}
	l.Close()

	// Flip a byte in the FIRST record of a sealed (non-tail) segment:
	// that is acknowledged-history corruption and must refuse to open.
	dir2 := t.TempDir()
	l = mustOpen(t, dir2, Options{SegmentBytes: 64})
	for i := 0; i < 4; i++ {
		l.Append(fill(i, 64)) // each append seals a segment behind it
	}
	l.Close()
	first := filepath.Join(dir2, segName(0))
	raw, err = os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[recHdrLen+3] ^= 0x01
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2, Options{}); err == nil {
		t.Fatal("Open accepted interior corruption")
	}
}

func TestTortureZeroLengthSegment(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 100})
	var want []byte
	for i := 0; i < 3; i++ {
		p := fill(i, 100)
		l.Append(p)
		want = append(want, p...)
	}
	l.Close()
	// A crash between rotation's create and the first append leaves an
	// empty newest segment — Open must treat it as "no bytes yet".
	empty := filepath.Join(dir, segName(uint64(len(want))))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{SegmentBytes: 100})
	if l.End() != uint64(len(want)) {
		t.Fatalf("End with empty tail segment = %d, want %d", l.End(), len(want))
	}
	if got := readAll(t, l, 0); !bytes.Equal(got, want) {
		t.Fatal("stream changed")
	}
	if _, err := l.Append(fill(7, 10)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// A zero-length record header (payLen 0) in the tail is
	// corrupt-length: truncate it away.
	dir2 := t.TempDir()
	l = mustOpen(t, dir2, Options{})
	l.Append(fill(0, 32))
	l.Close()
	path := lastSegPath(t, dir2)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var zero [recHdrLen]byte // payLen 0, crc 0
	f.Write(zero[:])
	f.Close()
	l = mustOpen(t, dir2, Options{})
	defer l.Close()
	if l.End() != 32 {
		t.Fatalf("End after zero-length record = %d, want 32", l.End())
	}
}

func TestTortureCrashDuringTruncation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 80, NoSync: true})
	var want []byte
	for i := 0; i < 6; i++ {
		p := fill(i, 80)
		l.Append(p)
		want = append(want, p...)
	}
	l.Close()

	// Simulate a truncation that died after unlinking only SOME of the
	// acked segments — including the out-of-order case where a later
	// segment vanished while an earlier one survived, leaving a gap.
	// Everything below a gap was acknowledged (or it could not have
	// been a truncation target), so recovery keeps the newest
	// contiguous suffix.
	os.Remove(filepath.Join(dir, segName(80)))  // gap: 0 survives, 80 gone
	os.Remove(filepath.Join(dir, segName(160))) // contiguous with the gap
	l = mustOpen(t, dir, Options{SegmentBytes: 80, NoSync: true})
	defer l.Close()
	if l.Base() != 240 {
		t.Fatalf("Base after gapped truncation crash = %d, want 240", l.Base())
	}
	if l.End() != uint64(len(want)) {
		t.Fatalf("End = %d, want %d", l.End(), len(want))
	}
	if got := readAll(t, l, 240); !bytes.Equal(got, want[240:]) {
		t.Fatal("suffix changed")
	}
	// The stray pre-gap segment is gone from disk too.
	if _, err := os.Stat(filepath.Join(dir, segName(0))); !os.IsNotExist(err) {
		t.Fatalf("stray segment survived recovery: %v", err)
	}
}

func TestAppendWhileReading(t *testing.T) {
	// Append/Truncate from one goroutine while a reader drains —
	// the durable binding's exact concurrency shape.
	l := mustOpen(t, t.TempDir(), Options{SegmentBytes: 256, NoSync: true})
	defer l.Close()
	const total = 20000
	var want []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(7))
		for len(want) < total {
			p := fill(len(want), 1+rng.Intn(200))
			if len(want)+len(p) > total {
				p = p[:total-len(want)]
			}
			l.Append(p)
			want = append(want, p...)
		}
	}()
	r, err := l.ReaderAt(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, 0, total)
	buf := make([]byte, 177)
	for len(got) < total {
		n, err := r.Read(buf)
		if err == io.EOF {
			continue
		}
		if err != nil {
			t.Fatalf("read at %d: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
		l.Truncate(uint64(len(got)))
	}
	<-done
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent read diverged from appended stream")
	}
}

// FuzzOpenAfterDamage feeds arbitrary bytes as a segment file: Open
// must never panic, and whatever it retains must re-read cleanly and
// survive an append + reopen cycle.
func FuzzOpenAfterDamage(f *testing.F) {
	good := func(payloads ...[]byte) []byte {
		var b []byte
		for _, p := range payloads {
			var hdr [recHdrLen]byte
			binary.BigEndian.PutUint32(hdr[0:4], uint32(len(p)))
			binary.BigEndian.PutUint32(hdr[4:8], crcOf(p))
			b = append(b, hdr[:]...)
			b = append(b, p...)
		}
		return b
	}
	f.Add([]byte{})
	f.Add(good(fill(1, 20)))
	f.Add(good(fill(1, 20), fill(2, 300)))
	f.Add(good(fill(1, 20))[:25])             // torn payload
	f.Add(append(good(fill(3, 40)), 0xff))    // trailing junk
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}) // absurd length
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{NoSync: true})
		if err != nil {
			return // rejected is a fine verdict; panicking is not
		}
		end := l.End()
		retained := readAll(t, l, 0)
		if uint64(len(retained)) != end {
			t.Fatalf("End %d but read %d bytes", end, len(retained))
		}
		p := fill(5, 33)
		if _, err := l.Append(p); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		l.Close()
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after recovered append: %v", err)
		}
		defer l2.Close()
		got := readAll(t, l2, 0)
		if !bytes.Equal(got, append(retained, p...)) {
			t.Fatal("recovered stream not stable across reopen")
		}
	})
}

// FuzzRecordFraming round-trips arbitrary payload splits through
// Append/Reader and checks byte identity from every offset.
func FuzzRecordFraming(f *testing.F) {
	f.Add([]byte("hello"), uint8(3))
	f.Add(fill(0, 500), uint8(64))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		if chunk == 0 {
			chunk = 1
		}
		l, err := Open(t.TempDir(), Options{SegmentBytes: 128, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := 0; i < len(data); i += int(chunk) {
			end := i + int(chunk)
			if end > len(data) {
				end = len(data)
			}
			if _, err := l.Append(data[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		if l.End() != uint64(len(data)) {
			t.Fatalf("End %d, want %d", l.End(), len(data))
		}
		for _, off := range []uint64{0, uint64(len(data)) / 2, uint64(len(data))} {
			got := readAll(t, l, off)
			if !bytes.Equal(got, data[off:]) {
				t.Fatalf("read from %d diverged", off)
			}
		}
	})
}
