// Package wal is a segmented append-only journal of one logical byte
// stream, the durability layer behind WAL-backed conduits: the durable
// transport binding (internal/conduit) journals every outbound chunk
// here *before* it enters the link, truncates acknowledged segments,
// and replays from the receiver's delivered offset after a process is
// killed — so a `kill -9` becomes indistinguishable from a long
// partition and the network computes the same bytes.
//
// The log is addressed in logical stream offsets, the same coordinate
// system the netio RESUME machinery speaks (logical, uncompressed
// bytes). Each segment file is named by the offset of its first payload
// byte, and each record is CRC-framed:
//
//	wal-%016x.seg:  [ payLen uint32 ][ crc32c(payload) uint32 ][ payload ] ...
//
// On Open the tail of the newest segment is scanned strictly, in the
// style of TSDB write-ahead logs: a record whose length field is
// implausible (corrupt-length) or whose checksum does not match
// (corrupt-block) marks the torn tail of a crashed append and is
// truncated away, along with everything after it. Torn bytes are bytes
// the link never saw — the durable binding fsyncs before it releases a
// chunk to the wire — so dropping them is always safe. Corruption in
// the *middle* of the retained history (an interior segment) is not
// tolerated: it means lost acknowledged-but-undelivered data, and Open
// fails with ErrCorrupt.
//
// Truncation is ack-threshold, whole-segment: Truncate(off) deletes
// only segments entirely below off and never the active one, so a crash
// during truncation leaves either a clean prefix deletion (the base
// simply advanced) or — if the filesystem reordered the unlinks — a gap,
// which Open heals by keeping the newest contiguous suffix (everything
// below a gap was acknowledged, or it could not have been truncated).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCorrupt reports unrecoverable journal corruption: a record in the
// retained (non-tail) history failed validation, or segment offsets are
// inconsistent in a way no crash can produce.
var ErrCorrupt = errors.New("wal: corrupt journal")

const (
	recHdrLen = 8 // payLen uint32 + crc32c uint32, both big-endian

	// DefaultSegmentBytes is the payload-byte rotation threshold.
	DefaultSegmentBytes = 4 << 20

	// maxRecord bounds one record's payload; a length field above it is
	// corrupt-length by definition (link chunks are <= 128 KiB).
	maxRecord = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tune a Log. The zero value is production-shaped.
type Options struct {
	// SegmentBytes rotates the active segment once it holds at least
	// this many payload bytes (0 selects DefaultSegmentBytes).
	SegmentBytes int
	// NoSync makes Sync a no-op. Benchmarks and tests only: a crash can
	// then lose journaled-but-unsynced bytes, voiding the replay
	// guarantee.
	NoSync bool
}

// segment is one on-disk file of the log.
type segment struct {
	base uint64 // logical offset of its first payload byte
	size uint64 // payload bytes it holds
	path string
}

func (s segment) end() uint64 { return s.base + s.size }

// Log is a segmented append-only journal. All methods are safe for
// concurrent use: the durable binding appends from the link's reader
// goroutine while acknowledgements truncate from the session goroutine.
type Log struct {
	dir string
	opt Options

	mu    sync.Mutex
	segs  []segment // ordered by base; the last is active
	f     *os.File  // active segment, opened for append
	fsize int64     // file bytes in the active segment (payload + headers)
	end   uint64    // logical offset after the last appended byte
}

func segName(base uint64) string { return fmt.Sprintf("wal-%016x.seg", base) }

// parseSegName returns the base offset encoded in a segment file name.
func parseSegName(name string) (uint64, bool) {
	var base uint64
	if n, err := fmt.Sscanf(name, "wal-%16x.seg", &base); err != nil || n != 1 || name != segName(base) {
		return 0, false
	}
	return base, true
}

// Open opens (or creates) the journal in dir, validating every retained
// record and truncating a torn tail. See the package comment for the
// recovery rules.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		base, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segment{base: base, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })

	// Heal a truncation crash: keep the newest contiguous run of
	// segments; stray older files (before a gap) were below the ack
	// threshold that was being truncated, so deleting them loses nothing.
	// Sizing each segment needs a scan, but contiguity can be checked
	// cheaply afterwards; interior segments get the strict scan, the last
	// one the tolerant scan.
	l := &Log{dir: dir, opt: opt}
	for i, s := range segs {
		last := i == len(segs)-1
		size, err := scanSegment(s.path, last)
		if err != nil {
			return nil, err
		}
		segs[i].size = size
	}
	// Find the start of the newest contiguous suffix.
	start := 0
	for i := 1; i < len(segs); i++ {
		if segs[i-1].end() != segs[i].base {
			start = i
		}
	}
	for _, s := range segs[:start] {
		os.Remove(s.path)
	}
	segs = segs[start:]

	if len(segs) == 0 {
		segs = []segment{{base: 0, size: 0, path: filepath.Join(dir, segName(0))}}
	}
	l.segs = segs
	l.end = segs[len(segs)-1].end()
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	if info, err := f.Stat(); err == nil {
		l.fsize = info.Size()
	}
	return l, nil
}

// scanSegment validates every record of one segment file and returns
// the payload bytes it holds. When tolerant (the newest segment), a
// corrupt-length or corrupt-block record marks the torn tail: the file
// is truncated at the last good record boundary. A strict scan returns
// ErrCorrupt instead.
func scanSegment(path string, tolerant bool) (uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	fileSize := info.Size()
	var hdr [recHdrLen]byte
	var filePos int64
	var payload uint64
	buf := make([]byte, 64*1024)
	for filePos < fileSize {
		bad := ""
		if fileSize-filePos < recHdrLen {
			bad = "torn record header"
		} else {
			if _, err := f.ReadAt(hdr[:], filePos); err != nil {
				return 0, err
			}
			payLen := int64(binary.BigEndian.Uint32(hdr[0:4]))
			wantCRC := binary.BigEndian.Uint32(hdr[4:8])
			switch {
			case payLen == 0 || payLen > maxRecord:
				bad = fmt.Sprintf("implausible record length %d", payLen)
			case filePos+recHdrLen+payLen > fileSize:
				bad = fmt.Sprintf("record length %d overruns the file", payLen)
			default:
				if int64(cap(buf)) < payLen {
					buf = make([]byte, payLen)
				}
				b := buf[:payLen]
				if _, err := f.ReadAt(b, filePos+recHdrLen); err != nil {
					return 0, err
				}
				if crc32.Checksum(b, castagnoli) != wantCRC {
					bad = "checksum mismatch"
				} else {
					filePos += recHdrLen + payLen
					payload += uint64(payLen)
				}
			}
		}
		if bad != "" {
			if !tolerant {
				return 0, fmt.Errorf("%w: %s at %s+%d", ErrCorrupt, bad, filepath.Base(path), filePos)
			}
			// Torn tail of a crashed append: drop it and everything after.
			if err := f.Truncate(filePos); err != nil {
				return 0, err
			}
			return payload, nil
		}
	}
	return payload, nil
}

// Dir returns the journal's directory.
func (l *Log) Dir() string { return l.dir }

// Base returns the logical offset of the first retained byte.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].base
}

// End returns the logical offset after the last appended byte.
func (l *Log) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Segments reports how many segment files the log currently holds.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Append journals p as one record and returns its starting logical
// offset. The bytes are NOT durable until Sync returns; the durable
// binding appends, syncs, and only then releases the bytes to the wire.
func (l *Log) Append(p []byte) (uint64, error) {
	if len(p) == 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.end, nil
	}
	if len(p) > maxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(p), maxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("wal: log is closed")
	}
	active := &l.segs[len(l.segs)-1]
	if active.size >= uint64(l.opt.SegmentBytes) {
		if err := l.rotate(); err != nil {
			return 0, err
		}
		active = &l.segs[len(l.segs)-1]
	}
	var hdr [recHdrLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(p)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.f.Truncate(l.fsize)
		return 0, err
	}
	if _, err := l.f.Write(p); err != nil {
		// Roll the file back to the last record boundary so disk and
		// memory stay consistent; a crash here instead leaves a torn
		// tail the next Open truncates the same way.
		l.f.Truncate(l.fsize)
		return 0, err
	}
	off := l.end
	l.fsize += recHdrLen + int64(len(p))
	active.size += uint64(len(p))
	l.end += uint64(len(p))
	return off, nil
}

// rotate seals the active segment (fsync unless NoSync) and starts a
// new one based at the current end offset. Caller holds l.mu.
func (l *Log) rotate() error {
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	seg := segment{base: l.end, size: 0, path: filepath.Join(l.dir, segName(l.end))}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.fsize = 0
	l.segs = append(l.segs, seg)
	return nil
}

// Sync makes every appended byte durable (fsync of the active segment;
// rotation syncs sealed segments as they close). No-op under NoSync.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opt.NoSync || l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Truncate deletes whole segments that lie entirely below keep (the ack
// threshold), oldest first, never touching the active segment. It
// returns the payload bytes removed. Offsets below the new Base can no
// longer be replayed — callers pass only receiver-confirmed offsets.
func (l *Log) Truncate(keep uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var removed uint64
	for len(l.segs) > 1 && l.segs[0].end() <= keep {
		s := l.segs[0]
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return removed, err
		}
		removed += s.size
		l.segs[0] = segment{}
		l.segs = l.segs[1:]
	}
	return removed, nil
}

// Close syncs and closes the active segment. The journal on disk stays
// valid for a later Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if !l.opt.NoSync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// segmentAt returns the segment covering logical offset off, or false
// when off is at or past the end. Caller holds l.mu.
func (l *Log) segmentAt(off uint64) (segment, bool) {
	for _, s := range l.segs {
		if off >= s.base && off < s.end() {
			return s, true
		}
	}
	return segment{}, false
}

// Reader streams the journal's payload bytes from a logical offset.
// Reads return io.EOF at the log's end *as of each Read call*, so a
// reader opened before an append also sees the appended bytes. The
// reader holds at most one segment file open; segments truncated behind
// it stay readable through the held descriptor (POSIX unlink
// semantics), and the durable binding never truncates past its own read
// position.
type Reader struct {
	l *Log

	off     uint64 // next logical offset to return
	f       *os.File
	segEnd  uint64 // logical end of the open segment
	filePos int64  // read position within the open segment file
	rec     int64  // payload bytes remaining in the current record
}

// ReaderAt returns a Reader positioned at logical offset off, which
// must lie in [Base, End].
func (l *Log) ReaderAt(off uint64) (*Reader, error) {
	l.mu.Lock()
	base, end := l.segs[0].base, l.end
	l.mu.Unlock()
	if off < base || off > end {
		return nil, fmt.Errorf("wal: offset %d outside retained range [%d, %d]", off, base, end)
	}
	return &Reader{l: l, off: off}, nil
}

// Offset returns the logical offset of the next byte Read will return.
func (r *Reader) Offset() uint64 { return r.off }

// open positions the reader's file state at r.off.
func (r *Reader) open() error {
	r.l.mu.Lock()
	s, ok := r.l.segmentAt(r.off)
	r.l.mu.Unlock()
	if !ok {
		return io.EOF
	}
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	// Walk the records to map the logical offset to a file position;
	// segmentAt guarantees s.base <= r.off < s.end(), so the walk
	// always terminates inside a record.
	var hdr [recHdrLen]byte
	logical := s.base
	var filePos int64
	for {
		if _, err := f.ReadAt(hdr[:], filePos); err != nil {
			f.Close()
			return fmt.Errorf("wal: reading record header at %s+%d: %w", filepath.Base(s.path), filePos, err)
		}
		payLen := int64(binary.BigEndian.Uint32(hdr[0:4]))
		if payLen <= 0 || payLen > maxRecord {
			f.Close()
			return fmt.Errorf("%w: implausible record length %d at %s+%d", ErrCorrupt, payLen, filepath.Base(s.path), filePos)
		}
		if logical+uint64(payLen) > r.off {
			// The target offset lands inside this record.
			skip := int64(r.off - logical)
			r.filePos = filePos + recHdrLen + skip
			r.rec = payLen - skip
			r.f = f
			r.segEnd = s.end()
			return nil
		}
		logical += uint64(payLen)
		filePos += recHdrLen + payLen
	}
}

// Read implements io.Reader over the journal's logical payload stream.
func (r *Reader) Read(p []byte) (int, error) {
	r.l.mu.Lock()
	end := r.l.end
	r.l.mu.Unlock()
	if r.off >= end {
		return 0, io.EOF
	}
	if r.f == nil {
		if err := r.open(); err != nil {
			return 0, err
		}
	}
	if r.off == r.segEnd {
		// Advance into the next segment (it exists: off < end).
		r.f.Close()
		r.f = nil
		if err := r.open(); err != nil {
			return 0, err
		}
	}
	if r.rec == 0 {
		var hdr [recHdrLen]byte
		if _, err := r.f.ReadAt(hdr[:], r.filePos); err != nil {
			return 0, fmt.Errorf("wal: reading record header: %w", err)
		}
		payLen := int64(binary.BigEndian.Uint32(hdr[0:4]))
		if payLen <= 0 || payLen > maxRecord {
			return 0, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, payLen)
		}
		r.filePos += recHdrLen
		r.rec = payLen
	}
	n := int64(len(p))
	if n > r.rec {
		n = r.rec
	}
	if lim := int64(end - r.off); n > lim {
		n = lim
	}
	if _, err := r.f.ReadAt(p[:n], r.filePos); err != nil {
		return 0, err
	}
	r.filePos += n
	r.rec -= n
	r.off += uint64(n)
	return int(n), nil
}

// Close releases the reader's file handle.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}
