package factor

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dpn/internal/core"
	"dpn/internal/meta"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestGenerateWeakKey(t *testing.T) {
	k, err := GenerateWeakKey(testRand(), 64, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !k.P.ProbablyPrime(20) {
		t.Fatal("P not prime")
	}
	if got := new(big.Int).Mul(k.P, k.Q); got.Cmp(k.N) != 0 {
		t.Fatal("N != P*Q")
	}
	if d := new(big.Int).Sub(k.Q, k.P); d.Int64() != k.D {
		t.Fatalf("D mismatch: %v vs %d", d, k.D)
	}
	if k.P.BitLen() != 64 {
		t.Fatalf("P has %d bits, want 64", k.P.BitLen())
	}
	if k.D%2 != 0 {
		t.Fatalf("D=%d not even", k.D)
	}
}

func TestGenerateWeakKeyErrors(t *testing.T) {
	if _, err := GenerateWeakKey(testRand(), 4, 0, 32); err == nil {
		t.Fatal("tiny bits accepted")
	}
	if _, err := GenerateWeakKey(testRand(), 64, -1, 32); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestSearchTaskFindsFactor(t *testing.T) {
	k, err := GenerateWeakKey(testRand(), 96, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Task 3 covers D in [48, 62]; the key's D is 2*(8*3+4) = 56.
	task := &SearchTask{N: k.N, Index: 3, D0: 2 * 8 * 3, Count: 8}
	rt, err := task.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := rt.(*Result)
	if !res.Found {
		t.Fatal("factor not found in target batch")
	}
	if res.P.Cmp(k.P) != 0 {
		t.Fatalf("P = %v, want %v", res.P, k.P)
	}
	if res.D != k.D {
		t.Fatalf("D = %d, want %d", res.D, k.D)
	}
	if !res.Terminal() {
		t.Fatal("found result must be terminal")
	}
}

func TestSearchTaskMissesOtherBatches(t *testing.T) {
	k, err := GenerateWeakKey(testRand(), 96, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int64{0, 1, 2, 4, 5} {
		task := &SearchTask{N: k.N, Index: idx, D0: 2 * 8 * idx, Count: 8}
		rt, err := task.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rt.(*Result).Found {
			t.Fatalf("task %d claims a factor", idx)
		}
	}
}

func TestRunSequentialFindsFactorAtTargetTask(t *testing.T) {
	const target, batch = 7, 16
	k, err := GenerateWeakKey(testRand(), 80, target, batch)
	if err != nil {
		t.Fatal(err)
	}
	res, tasks, err := RunSequential(&SearchSpace{N: k.N, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Found {
		t.Fatal("sequential search failed")
	}
	if tasks != target+1 {
		t.Fatalf("executed %d tasks, want %d", tasks, target+1)
	}
	if res.P.Cmp(k.P) != 0 {
		t.Fatalf("P = %v, want %v", res.P, k.P)
	}
}

func TestRunSequentialExhaustsSearchSpace(t *testing.T) {
	k, err := GenerateWeakKey(testRand(), 80, 50, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Bound the space below the target: no factor is found.
	res, tasks, err := RunSequential(&SearchSpace{N: k.N, Batch: 16, MaxTasks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("unexpected result %v", res)
	}
	if tasks != 10 {
		t.Fatalf("executed %d tasks, want 10", tasks)
	}
}

// Property: for random small primes and targets, the search space +
// search task machinery locates the planted factorization.
func TestFactorProperty(t *testing.T) {
	f := func(seed int64, targetSeed uint8) bool {
		target := int64(targetSeed) % 12
		rnd := rand.New(rand.NewSource(seed))
		k, err := GenerateWeakKey(rnd, 48, target, 8)
		if err != nil {
			return false
		}
		res, tasks, err := RunSequential(&SearchSpace{N: k.N, Batch: 8})
		if err != nil || res == nil || !res.Found {
			return false
		}
		// The search may find an even-closer factor pair for another
		// divisor, but for semiprimes it must find ours at our task.
		return res.P.Cmp(k.P) == 0 && tasks == target+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: the factorization distributed over the dynamic process
// network finds the same factor the sequential baseline finds — the
// determinacy claim applied to the paper's actual workload.
func TestFactorThroughDynamicNetwork(t *testing.T) {
	const target, batch = 9, 8
	k, err := GenerateWeakKey(testRand(), 96, target, batch)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, _, err := RunSequential(&SearchSpace{N: k.N, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}

	n := core.NewNetwork()
	dyn := meta.NewDynamic(n, &SearchSpace{N: k.N, Batch: batch}, 4, 0)
	var found *Result
	dyn.Consumer.SetOnResult(func(ran, result meta.Task) {
		if r, ok := ran.(*Result); ok && r.Found && found == nil {
			found = r
		}
	})
	dyn.Spawn(n)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("distributed factorization did not terminate")
	}
	if found == nil {
		t.Fatal("network did not find the factor")
	}
	if found.P.Cmp(seqRes.P) != 0 || found.D != seqRes.D {
		t.Fatalf("network found %v, sequential found %v", found, seqRes)
	}
}

func TestFactorThroughStaticNetwork(t *testing.T) {
	const target, batch = 5, 8
	k, err := GenerateWeakKey(testRand(), 96, target, batch)
	if err != nil {
		t.Fatal(err)
	}
	n := core.NewNetwork()
	st := meta.NewStatic(n, &SearchSpace{N: k.N, Batch: batch, MaxTasks: 32}, 4, 0)
	var found *Result
	st.Consumer.SetOnResult(func(ran, result meta.Task) {
		if r, ok := ran.(*Result); ok && r.Found && found == nil {
			found = r
		}
	})
	st.Spawn(n)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("static factorization did not terminate")
	}
	if found == nil || found.P.Cmp(k.P) != 0 {
		t.Fatalf("static network result wrong: %v", found)
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Index: 3}
	if r.String() != "task 3: no factor" {
		t.Fatalf("got %q", r.String())
	}
	r = &Result{Index: 4, Found: true, P: big.NewInt(17), D: 2}
	if r.String() != "task 4: P=17 D=2" {
		t.Fatalf("got %q", r.String())
	}
}
