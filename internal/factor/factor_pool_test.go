package factor

import (
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/meta"
)

// TestFactorThroughElasticPool runs the paper's factorization workload
// through the elastic pool while the lane set churns — a worker joins
// and another is retired mid-search — and checks the pool finds the
// same factor as the sequential baseline. The terminal Result also
// exercises the early-stop path through the pool: the consumer closes
// its input, the pool's output write fails, and the whole composition
// cascades closed.
func TestFactorThroughElasticPool(t *testing.T) {
	const target, batch = 9, 8
	k, err := GenerateWeakKey(testRand(), 96, target, batch)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, _, err := RunSequential(&SearchSpace{N: k.N, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}

	n := core.NewNetwork()
	e := meta.NewElastic(n, &SearchSpace{N: k.N, Batch: batch}, 2, 0, meta.PoolConfig{})
	var found *Result
	e.Consumer.SetOnResult(func(ran, result meta.Task) {
		if r, ok := ran.(*Result); ok && r.Found && found == nil {
			found = r
		}
	})
	e.Spawn(n)
	go func() {
		id, _ := e.Pool.AddWorker("joiner")
		time.Sleep(time.Millisecond)
		e.Pool.Retire(id)
		e.Pool.AddWorker("joiner2")
	}()
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("elastic factorization did not terminate")
	}
	if found == nil {
		t.Fatal("pool did not find the factor")
	}
	if found.P.Cmp(seqRes.P) != 0 || found.D != seqRes.D {
		t.Fatalf("pool found %v, sequential found %v", found, seqRes)
	}
}
