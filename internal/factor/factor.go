// Package factor implements the paper's evaluation workload (§5.2): a
// brute-force search for "weak" RSA keys whose prime factors lie close
// together. Given N = P×(P+D) for a small even difference D, the search
// tests candidate differences: for each D, N has such a factorization
// exactly when 4N+D² is a perfect square s², with P = (s−D)/2.
//
// The work is packaged as meta.Task objects — a producer task that
// slices the difference search space into batches (the paper uses 32
// even values of D per task), worker tasks that test one batch each,
// and result tasks whose Terminal flag stops the computation when the
// factor has been found.
package factor

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"

	"dpn/internal/meta"
)

// DefaultBatch is the number of even difference values tested per
// worker task; the paper found 32 balanced computation against
// communication.
const DefaultBatch = 32

// Key is a deliberately weak RSA modulus with known factorization,
// used to construct experiment instances.
type Key struct {
	N *big.Int // modulus, N = P·Q
	P *big.Int // smaller prime factor
	Q *big.Int // larger factor, Q = P + D
	D int64    // difference Q − P (even)
}

// GenerateWeakKey builds an experiment instance mirroring the paper's
// test case: a random prime P of the given bit length and a modulus
// N = P×(P+D), with D chosen so that the brute-force search finds the
// factor while executing task index targetTask (0-based) when each task
// tests batch even values of D. The paper used 512-bit P (1024-bit N)
// and 2048 tasks of 32 values each.
func GenerateWeakKey(rnd io.Reader, bits int, targetTask, batch int64) (*Key, error) {
	if bits < 8 {
		return nil, errors.New("factor: need at least 8 bits")
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	if targetTask < 0 {
		return nil, errors.New("factor: negative target task")
	}
	p, err := randPrime(rnd, bits)
	if err != nil {
		return nil, err
	}
	// Place D in the middle of the target task's batch.
	d := 2 * (batch*targetTask + batch/2)
	q := new(big.Int).Add(p, big.NewInt(d))
	n := new(big.Int).Mul(p, q)
	return &Key{N: n, P: p, Q: q, D: d}, nil
}

// randPrime returns a prime with exactly the given bit length, using
// rnd as the entropy source (crypto/rand.Prime has the same contract;
// reimplemented here to stay within the subset of stdlib the repo
// uses deterministically in tests).
func randPrime(rnd io.Reader, bits int) (*big.Int, error) {
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	for tries := 0; tries < 100000; tries++ {
		if _, err := io.ReadFull(rnd, buf); err != nil {
			return nil, err
		}
		p := new(big.Int).SetBytes(buf)
		// Force exact bit length and oddness.
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, 0, 1)
		if p.BitLen() > bits {
			p.Rsh(p, uint(p.BitLen()-bits))
			p.SetBit(p, bits-1, 1)
			p.SetBit(p, 0, 1)
		}
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
	return nil, errors.New("factor: failed to find a prime")
}

// SearchSpace is the producer task: its Run method yields one
// SearchTask per call, covering successive batches of even difference
// values, until MaxTasks tasks have been produced (§5.1: the producer
// repeatedly invokes run on a single task object).
type SearchSpace struct {
	N        *big.Int
	Batch    int64
	MaxTasks int64

	Next int64 // next task index
}

// Run implements meta.Task.
func (s *SearchSpace) Run() (meta.Task, error) {
	if s.MaxTasks > 0 && s.Next >= s.MaxTasks {
		return nil, nil
	}
	batch := s.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	t := &SearchTask{N: s.N, Index: s.Next, D0: 2 * batch * s.Next, Count: batch}
	s.Next++
	return t, nil
}

// SearchTask tests Count even difference values starting at D0: worker
// tasks in the paper's experiment, each testing 32 even values of D.
type SearchTask struct {
	N     *big.Int
	Index int64
	D0    int64
	Count int64
}

// Run implements meta.Task: it performs the perfect-square test for
// each difference in the batch and returns a Result task.
func (t *SearchTask) Run() (meta.Task, error) {
	res := &Result{Index: t.Index}
	four := big.NewInt(4)
	fourN := new(big.Int).Mul(four, t.N)
	d := new(big.Int)
	s := new(big.Int)
	sq := new(big.Int)
	for i := int64(0); i < t.Count; i++ {
		dv := t.D0 + 2*i
		d.SetInt64(dv)
		// s² ?= 4N + D²
		sq.Mul(d, d)
		sq.Add(sq, fourN)
		s.Sqrt(sq)
		check := new(big.Int).Mul(s, s)
		if check.Cmp(sq) != 0 {
			continue
		}
		// P = (s − D) / 2
		p := new(big.Int).Sub(s, d)
		p.Rsh(p, 1)
		if p.Sign() <= 0 {
			continue
		}
		q := new(big.Int).Add(p, d)
		prod := new(big.Int).Mul(p, q)
		if prod.Cmp(t.N) == 0 {
			res.Found = true
			res.P = p
			res.D = dv
			break
		}
	}
	return res, nil
}

// Result is the consumer task: it reports whether the batch contained
// the factorization. Its Terminal flag ends the computation (§5.2: the
// consumer "prints the result and stops" when a factor is found).
type Result struct {
	Index int64
	Found bool
	P     *big.Int
	D     int64
}

// Run implements meta.Task. The consumer runs result tasks; the
// interesting state is carried by the fields, so Run has nothing to do.
func (r *Result) Run() (meta.Task, error) { return nil, nil }

// Terminal implements meta.Terminal.
func (r *Result) Terminal() bool { return r.Found }

func (r *Result) String() string {
	if !r.Found {
		return fmt.Sprintf("task %d: no factor", r.Index)
	}
	return fmt.Sprintf("task %d: P=%s D=%d", r.Index, r.P, r.D)
}

// RunSequential executes the whole search by directly invoking the
// task run methods without any process network — the baseline of
// Table 1 ("The computation was carried out by directly invoking the
// run methods of the producer, worker, and consumer tasks without the
// use of process networks"). It returns the terminal result and the
// number of worker tasks executed.
func RunSequential(space *SearchSpace) (*Result, int64, error) {
	var tasks int64
	for {
		wt, err := space.Run()
		if err != nil {
			return nil, tasks, err
		}
		if wt == nil {
			return nil, tasks, nil
		}
		tasks++
		rt, err := wt.Run()
		if err != nil {
			return nil, tasks, err
		}
		res, ok := rt.(*Result)
		if !ok {
			return nil, tasks, fmt.Errorf("factor: unexpected result type %T", rt)
		}
		if _, err := res.Run(); err != nil {
			return nil, tasks, err
		}
		if res.Found {
			return res, tasks, nil
		}
	}
}

func init() {
	gob.Register(&SearchSpace{})
	gob.Register(&SearchTask{})
	gob.Register(&Result{})
}
