// Package faults is a deterministic fault-injection layer for the
// network transport: a seeded wrapper around net.Conn (and
// net.Listener) that injects latency, jitter, connection drops, short
// writes, and timed network partitions. The process-network runtime is
// supposed to be determinate — blocking reads guarantee the computed
// streams do not depend on scheduling or link timing (Kahn's theorem) —
// so a chaos harness can check distribution mechanics mechanically:
// perturb every link, diff the outputs against a fault-free run.
//
// All randomness flows from one seed, so a failing chaos run can be
// replayed by reusing the seed it logged. Injected errors carry
// ErrInjected (wrapped), letting tests distinguish injected faults from
// real ones.
//
// The injector models connection-level faults only. It never corrupts
// or silently discards bytes inside a live connection — TCP would not
// either. A "drop" kills the connection; a "short write" delivers a
// prefix and then kills the connection; a partition either resets every
// operation (mode "reset") or stalls it until the window ends or a
// deadline fires (mode "stall", which is what exercises heartbeats).
package faults

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// ErrInjected is the cause wrapped into every injected failure.
var ErrInjected = errors.New("faults: injected failure")

// Config is one fault schedule. The zero value injects nothing.
type Config struct {
	// Seed seeds every random draw of the injector.
	Seed int64
	// Latency is the base delay added to every read and write.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Drop is the per-operation probability that the connection is
	// killed (subsequent operations fail with ErrInjected).
	Drop float64
	// ShortWrite is the per-write probability that only a prefix of the
	// buffer is written before the connection is killed.
	ShortWrite float64
	// PartitionAt schedules a partition to start this long after the
	// injector is created (zero means no scheduled partition).
	PartitionAt time.Duration
	// PartitionFor is the scheduled partition's duration; zero with
	// PartitionAt set means the partition never heals.
	PartitionFor time.Duration
	// PartitionEvery repeats the scheduled partition at this interval
	// (zero means it happens once). It requires a positive PartitionFor:
	// a partition that never heals has nothing to repeat, so
	// every-without-for is rejected by Parse and treated as a permanent
	// partition by the injector.
	PartitionEvery time.Duration
	// Stall selects partition mode "stall": operations block until the
	// partition ends or the connection's deadline fires, instead of
	// failing immediately. Dials fail immediately in both modes.
	Stall bool
	// Rate caps each connection's write throughput at this many bytes
	// per second (zero means unlimited), emulating a bandwidth-limited
	// wire: writes are paced so the bytes sent never outrun the
	// emulated link speed. Pacing is deterministic — it draws no
	// randomness — and applies per connection, like a dedicated NIC.
	Rate int64
}

// Injector applies one Config to any number of connections. All methods
// are safe for concurrent use and nil-safe: a nil *Injector wraps
// nothing and injects nothing.
type Injector struct {
	cfg   Config
	start time.Time

	mu  sync.Mutex
	rng *rand.Rand
	// manual partition window; see PartitionNow/Heal.
	manualUntil   time.Time
	manualForever bool

	injected int64 // faults injected so far (drops, short writes, partition hits)
}

// New returns an injector for the given schedule.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:   cfg,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Seed reports the seed this injector draws from, for failure logs.
func (i *Injector) Seed() int64 {
	if i == nil {
		return 0
	}
	return i.cfg.Seed
}

// Injected reports how many faults have been injected so far.
func (i *Injector) Injected() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected
}

func (i *Injector) noteInjected() {
	i.mu.Lock()
	i.injected++
	i.mu.Unlock()
}

// PartitionNow starts a partition immediately. A non-positive duration
// partitions forever (until Heal).
func (i *Injector) PartitionNow(d time.Duration) {
	if i == nil {
		return
	}
	i.mu.Lock()
	if d <= 0 {
		i.manualForever = true
	} else {
		i.manualUntil = time.Now().Add(d)
	}
	i.mu.Unlock()
}

// Heal ends any manual partition started with PartitionNow. Scheduled
// partitions (PartitionAt) are not affected.
func (i *Injector) Heal() {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.manualForever = false
	i.manualUntil = time.Time{}
	i.mu.Unlock()
}

// Partitioned reports whether a partition (manual or scheduled) is
// active right now.
func (i *Injector) Partitioned() bool {
	return i != nil && i.partitionedAt(time.Now())
}

func (i *Injector) partitionedAt(now time.Time) bool {
	i.mu.Lock()
	manual := i.manualForever || now.Before(i.manualUntil)
	i.mu.Unlock()
	if manual {
		return true
	}
	if i.cfg.PartitionAt <= 0 {
		return false
	}
	since := now.Sub(i.start)
	if since < i.cfg.PartitionAt {
		return false
	}
	if i.cfg.PartitionFor <= 0 {
		// Permanent from onset; PartitionEvery is meaningless without a
		// healing window (Parse rejects that combination).
		return true
	}
	into := since - i.cfg.PartitionAt
	if i.cfg.PartitionEvery > 0 {
		into = into % i.cfg.PartitionEvery
	}
	return into < i.cfg.PartitionFor
}

// draw returns one uniform float in [0,1).
func (i *Injector) draw() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Float64()
}

// jitter returns one random duration in [0, d).
func (i *Injector) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return time.Duration(i.rng.Int63n(int64(d)))
}

// DialError reports whether a dial attempted now must fail (the network
// is partitioned). It returns nil on a nil injector.
func (i *Injector) DialError() error {
	if i == nil {
		return nil
	}
	if i.Partitioned() {
		i.noteInjected()
		return &netError{op: "dial", err: ErrInjected, timeout: false}
	}
	return nil
}

// Conn wraps c with the injector's fault schedule. A nil injector
// returns c unchanged.
func (i *Injector) Conn(c net.Conn) net.Conn {
	if i == nil {
		return c
	}
	return &conn{Conn: c, inj: i}
}

// Listener wraps ln so every accepted connection is fault-wrapped.
func (i *Injector) Listener(ln net.Listener) net.Listener {
	if i == nil {
		return ln
	}
	return &listener{Listener: ln, inj: i}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// netError is the injected error type: it implements net.Error so
// callers treat injected faults like real network failures.
type netError struct {
	op      string
	err     error
	timeout bool
}

func (e *netError) Error() string   { return "faults: " + e.op + ": " + e.err.Error() }
func (e *netError) Unwrap() error   { return e.err }
func (e *netError) Timeout() bool   { return e.timeout }
func (e *netError) Temporary() bool { return false }

// conn is a fault-injecting net.Conn wrapper.
type conn struct {
	net.Conn
	inj *Injector

	mu            sync.Mutex
	broken        bool
	readDeadline  time.Time
	writeDeadline time.Time
	closed        chan struct{}
	closeOnce     sync.Once
	// busyUntil is the emulated wire's transmit horizon under
	// Config.Rate: each write extends it by len/Rate and sleeps until
	// its own bytes would have cleared the link.
	busyUntil time.Time
}

func (c *conn) closedCh() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed == nil {
		c.closed = make(chan struct{})
	}
	return c.closed
}

func (c *conn) Close() error {
	ch := c.closedCh()
	c.closeOnce.Do(func() { close(ch) })
	return c.Conn.Close()
}

// CloseWrite half-closes the write side when the wrapped connection
// supports it (TCP), so the transport's flush-then-close shutdown
// still works through the fault wrapper.
func (c *conn) CloseWrite() error {
	type writeCloser interface{ CloseWrite() error }
	if wc, ok := c.Conn.(writeCloser); ok {
		return wc.CloseWrite()
	}
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *conn) breakConn(op string) error {
	c.mu.Lock()
	c.broken = true
	c.mu.Unlock()
	c.Conn.Close()
	c.inj.noteInjected()
	return &netError{op: op, err: ErrInjected}
}

// before applies latency and partition/drop faults ahead of one
// operation; deadline is the operation's configured deadline.
func (c *conn) before(op string, deadline time.Time) error {
	c.mu.Lock()
	broken := c.broken
	c.mu.Unlock()
	if broken {
		return &netError{op: op, err: ErrInjected}
	}
	if d := c.inj.cfg.Latency + c.inj.jitter(c.inj.cfg.Jitter); d > 0 {
		time.Sleep(d)
	}
	if c.inj.partitionedAt(time.Now()) {
		if !c.inj.cfg.Stall {
			return c.breakConn(op)
		}
		// Stall: block until the partition heals, the connection is
		// closed, or the operation's deadline passes — exactly like a
		// TCP connection whose peer stopped answering.
		c.inj.noteInjected()
		ch := c.closedCh()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ch:
				return &netError{op: op, err: net.ErrClosed}
			case <-tick.C:
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return os.ErrDeadlineExceeded
			}
			if !c.inj.partitionedAt(time.Now()) {
				return nil
			}
		}
	}
	if c.inj.cfg.Drop > 0 && c.inj.draw() < c.inj.cfg.Drop {
		return c.breakConn(op)
	}
	return nil
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	deadline := c.readDeadline
	c.mu.Unlock()
	if err := c.before("read", deadline); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	deadline := c.writeDeadline
	c.mu.Unlock()
	if err := c.before("write", deadline); err != nil {
		return 0, err
	}
	if c.inj.cfg.ShortWrite > 0 && len(p) > 1 && c.inj.draw() < c.inj.cfg.ShortWrite {
		// Deliver a prefix, then kill the connection: the peer sees a
		// torn frame followed by a reset, as with a mid-write crash.
		n := 1 + int(c.inj.draw()*float64(len(p)-1))
		wrote, err := c.Conn.Write(p[:n])
		// Charge the pacer only for bytes that actually left: the caller
		// retries the remainder (on a healed connection), and billing the
		// full request here would bill those bytes twice, undershooting
		// the configured rate.
		c.throttle(wrote)
		if err != nil {
			return wrote, err
		}
		return wrote, c.breakConn("write")
	}
	n, err := c.Conn.Write(p)
	c.throttle(n)
	return n, err
}

// throttle paces the connection after n bytes left it, so sustained
// throughput converges on Config.Rate. The serialization delay is
// charged against a per-connection transmit horizon: bursts shorter
// than the accumulated idle credit pass untouched, exactly like a real
// link that was sitting empty.
func (c *conn) throttle(n int) {
	rate := c.inj.cfg.Rate
	if rate <= 0 || n <= 0 {
		return
	}
	d := time.Duration(float64(n) / float64(rate) * float64(time.Second))
	c.mu.Lock()
	now := time.Now()
	if c.busyUntil.Before(now) {
		c.busyUntil = now
	}
	c.busyUntil = c.busyUntil.Add(d)
	wait := c.busyUntil.Sub(now)
	c.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}
