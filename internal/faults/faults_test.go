package faults

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// pipePair returns two fault-wrapped ends of an in-memory connection.
func pipePair(inj *Injector) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return inj.Conn(a), inj.Conn(b)
}

func TestNilInjectorIsTransparent(t *testing.T) {
	var inj *Injector
	a, b := net.Pipe()
	if inj.Conn(a) != a {
		t.Fatalf("nil injector must return the conn unchanged")
	}
	if err := inj.DialError(); err != nil {
		t.Fatalf("nil injector DialError = %v", err)
	}
	if inj.Partitioned() {
		t.Fatalf("nil injector reports partitioned")
	}
	a.Close()
	b.Close()
}

func TestZeroConfigPassesBytesThrough(t *testing.T) {
	inj := New(Config{})
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()

	msg := []byte("hello, network")
	go func() {
		a.Write(msg)
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestDropKillsConnectionDeterministically(t *testing.T) {
	// With Drop=1 the very first operation must fail, every time.
	inj := New(Config{Seed: 7, Drop: 1})
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()

	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	// The connection stays broken for later operations too.
	if _, err := a.Write([]byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write error = %v, want ErrInjected", err)
	}
	var ne net.Error
	_, err := a.Write([]byte("z"))
	if !errors.As(err, &ne) {
		t.Fatalf("injected error must implement net.Error, got %T", err)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	// Two injectors with the same seed must make identical drop
	// decisions over a sequence of operations.
	trial := func(seed int64) []bool {
		inj := New(Config{Seed: seed, Drop: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.draw() < inj.cfg.Drop
		}
		return out
	}
	a, b := trial(42), trial(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs for identical seeds", i)
		}
	}
}

func TestShortWriteDeliversPrefixThenBreaks(t *testing.T) {
	inj := New(Config{Seed: 3, ShortWrite: 1})
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()

	var (
		wg  sync.WaitGroup
		got []byte
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, _ = io.ReadAll(b)
	}()
	msg := []byte("a longer payload that should be torn")
	n, err := a.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("short write wrote %d of %d bytes", n, len(msg))
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("peer received %d bytes, writer reported %d", len(got), n)
	}
}

func TestManualPartitionResetsAndHeals(t *testing.T) {
	inj := New(Config{Seed: 1})
	inj.PartitionNow(0) // forever
	if !inj.Partitioned() {
		t.Fatalf("expected partitioned")
	}
	if err := inj.DialError(); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial during partition = %v, want ErrInjected", err)
	}
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write during reset partition = %v, want ErrInjected", err)
	}
	inj.Heal()
	if inj.Partitioned() {
		t.Fatalf("expected healed")
	}
	if err := inj.DialError(); err != nil {
		t.Fatalf("dial after heal = %v", err)
	}
}

func TestStallPartitionBlocksUntilHeal(t *testing.T) {
	inj := New(Config{Seed: 1, Stall: true})
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()

	inj.PartitionNow(40 * time.Millisecond)
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		buf := make([]byte, 4)
		_, err := b.Read(buf)
		done <- err
	}()
	go func() {
		// The writer stalls through the partition too, then delivers.
		a.Write([]byte("ping"))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("read after heal: %v", err)
		}
		if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
			t.Fatalf("read returned after %v, before the partition healed", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("stalled read never resumed after heal")
	}
}

func TestStallPartitionHonorsDeadline(t *testing.T) {
	inj := New(Config{Seed: 1, Stall: true})
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()

	inj.PartitionNow(0) // forever
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 4)
	_, err := b.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read error = %v, want deadline exceeded", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error must be a net.Error timeout, got %v", err)
	}
}

func TestStallPartitionUnblocksOnClose(t *testing.T) {
	inj := New(Config{Seed: 1, Stall: true})
	a, b := pipePair(inj)
	defer a.Close()

	inj.PartitionNow(0)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		_, err := b.Read(buf)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("read on closed stalled conn returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("close did not unblock stalled read")
	}
}

func TestScheduledPartitionWindow(t *testing.T) {
	inj := New(Config{Seed: 1, PartitionAt: 20 * time.Millisecond, PartitionFor: 30 * time.Millisecond})
	if inj.Partitioned() {
		t.Fatalf("partitioned before PartitionAt")
	}
	if !inj.partitionedAt(inj.start.Add(30 * time.Millisecond)) {
		t.Fatalf("not partitioned inside the window")
	}
	if inj.partitionedAt(inj.start.Add(60 * time.Millisecond)) {
		t.Fatalf("still partitioned after the window")
	}
}

func TestScheduledPartitionRepeats(t *testing.T) {
	inj := New(Config{
		Seed:           1,
		PartitionAt:    10 * time.Millisecond,
		PartitionFor:   5 * time.Millisecond,
		PartitionEvery: 50 * time.Millisecond,
	})
	at := func(d time.Duration) bool { return inj.partitionedAt(inj.start.Add(d)) }
	if at(5 * time.Millisecond) {
		t.Fatalf("partitioned before first window")
	}
	if !at(12 * time.Millisecond) {
		t.Fatalf("not partitioned in first window")
	}
	if at(30 * time.Millisecond) {
		t.Fatalf("partitioned between windows")
	}
	if !at(62 * time.Millisecond) {
		t.Fatalf("not partitioned in repeated window")
	}
}

func TestLatencyDelaysOperations(t *testing.T) {
	inj := New(Config{Seed: 1, Latency: 20 * time.Millisecond})
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()

	go func() {
		buf := make([]byte, 4)
		b.Read(buf)
	}()
	start := time.Now()
	if _, err := a.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("write completed in %v, latency not applied", elapsed)
	}
}

// TestRatePacesWrites bounds a rate-limited connection's sustained
// throughput from both sides: 64 KiB through a 1 MB/s emulated wire
// must take roughly 64ms, and the pacing must not lose a byte.
func TestRatePacesWrites(t *testing.T) {
	inj := New(Config{Rate: 1 << 20})
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()

	const total = 64 << 10
	go func() {
		buf := make([]byte, 8<<10)
		for i := 0; i < total/len(buf); i++ {
			a.Write(buf)
		}
		a.Close()
	}()
	start := time.Now()
	got, err := io.ReadAll(b)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != total {
		t.Fatalf("read %d bytes, want %d", len(got), total)
	}
	want := time.Duration(total) * time.Second / (1 << 20)
	if elapsed < want/2 {
		t.Fatalf("%d bytes cleared a 1 MB/s wire in %v (floor %v): rate not applied", total, elapsed, want/2)
	}
	if elapsed > 10*want {
		t.Fatalf("%d bytes took %v on a 1 MB/s wire (ceiling %v): pacing overshoots", total, elapsed, 10*want)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	inj := New(Config{Seed: 1, Drop: 1})
	wrapped := inj.Listener(ln)
	defer wrapped.Close()

	done := make(chan error, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Write([]byte("x"))
		done <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn write error = %v, want ErrInjected", err)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := Parse("seed=9,latency=2ms,jitter=500us,drop=0.01,short=0.02,partition=1s:500ms,every=10s,mode=stall,rate=125000000")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := Config{
		Seed:           9,
		Latency:        2 * time.Millisecond,
		Jitter:         500 * time.Microsecond,
		Drop:           0.01,
		ShortWrite:     0.02,
		PartitionAt:    time.Second,
		PartitionFor:   500 * time.Millisecond,
		PartitionEvery: 10 * time.Second,
		Stall:          true,
		Rate:           125000000,
	}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if _, err := Parse("drop=high"); err == nil {
		t.Fatalf("expected error for bad drop value")
	}
	if _, err := Parse("unknown=1"); err == nil {
		t.Fatalf("expected error for unknown key")
	}
	if _, err := Parse("rate=-1"); err == nil {
		t.Fatalf("expected error for negative rate")
	}
	if _, err := Parse(""); err != nil {
		t.Fatalf("empty spec must parse to zero config, got %v", err)
	}
	if cfg, _ := Parse("partition=1s"); cfg.PartitionAt != time.Second || cfg.PartitionFor != 0 {
		t.Fatalf("partition without duration parsed as %+v", cfg)
	}
	// every without a healing window is rejected: the modulo repeat has
	// nothing to repeat, so the spec would silently mean "permanent".
	if _, err := Parse("partition=1s,every=10s"); err == nil {
		t.Fatalf("expected error for every without partition=<at>:<for>")
	}
	if _, err := Parse("every=10s"); err == nil {
		t.Fatalf("expected error for every without any partition window")
	}
}

func TestScheduledPermanentPartitionIgnoresEvery(t *testing.T) {
	// Direct Config construction can still pair PartitionEvery with a
	// zero PartitionFor; the injector treats that as permanent from
	// onset rather than oscillating on the modulo.
	inj := New(Config{Seed: 1, PartitionAt: 10 * time.Millisecond, PartitionEvery: 20 * time.Millisecond})
	at := func(d time.Duration) bool { return inj.partitionedAt(inj.start.Add(d)) }
	if at(5 * time.Millisecond) {
		t.Fatalf("partitioned before onset")
	}
	for _, d := range []time.Duration{15, 35, 95} {
		if !at(d * time.Millisecond) {
			t.Fatalf("permanent partition not active %v after start", d*time.Millisecond)
		}
	}
}

func TestInjectedCounter(t *testing.T) {
	inj := New(Config{Seed: 1, Drop: 1})
	a, b := pipePair(inj)
	defer a.Close()
	defer b.Close()
	a.Write([]byte("x"))
	if inj.Injected() == 0 {
		t.Fatalf("Injected() = 0 after a forced drop")
	}
}

// TestRateChargesOnlyWrittenBytesUnderShortWrites is the regression
// test for the pacing/short-write interaction: a short-write fault
// delivers a prefix and breaks the connection, and the pacer must be
// charged for exactly those delivered bytes. Mis-billing shows up as
// sustained throughput drifting away from Config.Rate once the
// remainder is retried on a fresh connection — uncharged prefixes
// overshoot the rate, double-billed ones undershoot it.
func TestRateChargesOnlyWrittenBytesUnderShortWrites(t *testing.T) {
	const rate = 4 << 20
	const total = 256 << 10
	inj := New(Config{Seed: 11, Rate: rate, ShortWrite: 0.9})
	buf := make([]byte, 8<<10)
	var delivered int64
	start := time.Now()
	for delivered < total {
		a, b := pipePair(inj)
		go io.Copy(io.Discard, b)
		for delivered < total {
			n, err := a.Write(buf)
			delivered += int64(n)
			if err != nil {
				break // connection broken by the fault; "reconnect"
			}
		}
		a.Close()
		b.Close()
	}
	elapsed := time.Since(start)
	want := time.Duration(delivered) * time.Second / rate
	if elapsed < want/2 {
		t.Fatalf("%d bytes cleared a %d B/s wire in %v (floor %v): short-write prefixes not charged", delivered, rate, elapsed, want/2)
	}
	if elapsed > 4*want {
		t.Fatalf("%d bytes took %v on a %d B/s wire (ceiling %v): short-write pacing over-bills", delivered, elapsed, rate, 4*want)
	}
}
