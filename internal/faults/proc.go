package faults

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Proc is one re-exec'd child process under crash injection. The
// kill-restart harness (internal/workload) starts the test binary
// again with an env-gated child entry point, SIGKILLs it mid-stream at
// a deterministic progress mark, and restarts it against the same
// journal directory — the process-death analog of the injector's
// connection faults, equally seed-replayable.
type Proc struct {
	cmd *exec.Cmd

	once sync.Once
	done chan error
}

// StartProc launches bin with the given extra environment (appended to
// the parent's), wiring the child's stdout/stderr to the given writers
// (nil discards). Pass os.Args[0] as bin to re-exec the current test
// binary.
func StartProc(bin string, env []string, stdout, stderr io.Writer) (*Proc, error) {
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("faults: start %s: %w", bin, err)
	}
	p := &Proc{cmd: cmd, done: make(chan error, 1)}
	return p, nil
}

// Pid returns the child's process ID.
func (p *Proc) Pid() int { return p.cmd.Process.Pid }

// Kill delivers an uncatchable SIGKILL — the child gets no chance to
// flush, close, or say goodbye, exactly the crash the durable journal
// must absorb. The process must still be reaped with Wait.
func (p *Proc) Kill() error {
	return p.cmd.Process.Kill()
}

// Wait reaps the child and returns its exit status. Safe to call from
// multiple goroutines; after Kill it returns the signal-death error.
func (p *Proc) Wait() error {
	p.once.Do(func() { p.done <- p.cmd.Wait() })
	err := <-p.done
	p.done <- err
	return err
}
