package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Config from a comma-separated key=value spec, the
// format both CLIs accept via -faults:
//
//	seed=1,latency=2ms,jitter=500us,drop=0.01,short=0.02,partition=1s:500ms,every=10s,mode=stall
//
// Keys: seed (int64), latency/jitter (durations), drop/short
// (probabilities in [0,1]), partition=<at>[:<for>] (omitting <for>
// partitions forever), every (repeat interval; requires a <for>
// healing window), mode (stall|reset; reset is the default), rate
// (write bytes/sec cap emulating a bandwidth-limited wire; 0 is
// unlimited). An empty spec is the zero Config.
func Parse(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("faults: bad entry %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(val)
		case "drop":
			cfg.Drop, err = parseProb(val)
		case "short":
			cfg.ShortWrite, err = parseProb(val)
		case "partition":
			at, dur, hasDur := strings.Cut(val, ":")
			cfg.PartitionAt, err = time.ParseDuration(at)
			if err == nil && hasDur {
				cfg.PartitionFor, err = time.ParseDuration(dur)
			}
		case "every":
			cfg.PartitionEvery, err = time.ParseDuration(val)
		case "rate":
			cfg.Rate, err = strconv.ParseInt(val, 10, 64)
			if err == nil && cfg.Rate < 0 {
				err = fmt.Errorf("rate %d must be non-negative", cfg.Rate)
			}
		case "mode":
			switch val {
			case "stall":
				cfg.Stall = true
			case "reset":
				cfg.Stall = false
			default:
				err = fmt.Errorf("unknown mode %q (want stall or reset)", val)
			}
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: %s: %w", key, err)
		}
	}
	if cfg.PartitionEvery > 0 && cfg.PartitionFor <= 0 {
		return cfg, fmt.Errorf("faults: every requires partition=<at>:<for> (a partition without a healing window cannot repeat)")
	}
	return cfg, nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}
