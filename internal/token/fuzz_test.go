package token

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReaderDecode drives every Reader decode path over arbitrary
// bytes. The contract under corruption is narrow: return a clean error
// (io.EOF at an element boundary, io.ErrUnexpectedEOF or a length-limit
// error mid-element) — never panic, never allocate a block larger than
// MaxBlockSize, never report success with malformed data.
func FuzzReaderDecode(f *testing.F) {
	var good bytes.Buffer
	w := NewWriter(&good)
	w.WriteInt64(-5)
	w.WriteFloat64(2.75)
	w.WriteString("kahn")
	w.WriteBlock([]byte{9, 8, 7})
	w.WriteObject(map[string]int{"t": 1})
	w.WriteBool(true)
	f.Add(byte(0), good.Bytes())
	f.Add(byte(2), []byte{0xFF, 0xFF, 0xFF, 0xFF})       // absurd block length
	f.Add(byte(3), []byte{0x00, 0x00, 0x00, 0x08, 0x41}) // truncated block body
	f.Add(byte(4), []byte{})
	f.Fuzz(func(t *testing.T, mode byte, data []byte) {
		d := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			var err error
			switch (int(mode) + i) % 8 {
			case 0:
				_, err = d.ReadInt64()
			case 1:
				_, err = d.ReadFloat64()
			case 2:
				_, err = d.ReadBlock()
			case 3:
				_, err = d.ReadString()
			case 4:
				var v map[string]int
				err = d.ReadObject(&v)
			case 5:
				var dst [16]int64
				_, err = d.ReadInt64s(dst[:])
			case 6:
				var dst [16]float64
				_, err = d.ReadFloat64s(dst[:])
			case 7:
				_, err = d.ReadBool()
			}
			if err != nil {
				checkDecodeErr(t, err)
				return
			}
		}
	})
}

// checkDecodeErr rejects only the failure modes the Reader itself must
// never produce: block-length claims beyond MaxBlockSize are errors by
// contract, and stream-shaped errors must be the io sentinels. Gob's
// own decode errors are opaque but also originate after the length
// guard, so they pass through.
func checkDecodeErr(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return
	}
	if strings.Contains(err.Error(), "exceeds limit") {
		return
	}
	// Anything else must be a gob decode error surfaced by ReadObject;
	// a raw fixed-width read has no other failure mode over a
	// bytes.Reader.
	if !strings.Contains(err.Error(), "gob") && !strings.Contains(err.Error(), "decode") &&
		!strings.Contains(err.Error(), "type") && !strings.Contains(err.Error(), "duplicate") &&
		!strings.Contains(err.Error(), "length") && !strings.Contains(err.Error(), "interface") &&
		!strings.Contains(err.Error(), "name") && !strings.Contains(err.Error(), "range") &&
		!strings.Contains(err.Error(), "message") && !strings.Contains(err.Error(), "field") &&
		!strings.Contains(err.Error(), "buffer") {
		t.Fatalf("unexpected decode error shape: %v", err)
	}
}
