// Package blocks implements the columnar block compression used on
// conduit TCP transports: runs of fixed-width 8-byte elements (the
// token codec's int64/float64 wire format) are sealed into
// self-describing blocks that shrink monotone and slowly varying
// streams 4-8x, so a link's logical tokens/sec ceiling multiplies
// without touching the NIC.
//
// The encoding shapes follow the pd1 storage engine (see SNIPPETS.md):
// int64 runs are delta + zigzag encoded and bit-packed with a
// hand-written simple8b variant (plus a run-length tag for the
// constant-delta case that dominates sequence-number streams), float64
// runs are XOR-chained with a lead/trail zero-byte split, and every
// block carries a one-byte encoding tag with an uncompressed raw
// fallback for incompressible data.
//
// A sealed block is one atomic unit: it is produced from one outbound
// link chunk and decoded whole on the receiving side before any byte
// enters the local pipe, so channel streams, migration drains
// (SealAndDrain), and §4.3 redirection only ever see the raw element
// bytes. Decoding is strictly bounds-checked: truncated, corrupt, or
// flipped-tag blocks return an error wrapping ErrCorrupt and never
// panic or over-read.
package blocks

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Shape is the advisory element-shape hint a transport-boundary codec
// uses to order its encoding trials. Values are stable: the stream and
// token layers carry them as plain uint32 so those packages stay
// structurally decoupled from this one.
type Shape uint32

const (
	// ShapeNone means no batch writer has hinted the stream's element
	// type; encoders default to the integer trial.
	ShapeNone Shape = iota
	// ShapeInt64 marks a stream of big-endian int64 elements.
	ShapeInt64
	// ShapeFloat64 marks a stream of big-endian IEEE-754 float64
	// elements.
	ShapeFloat64
)

// Encoding tags (the first byte of every sealed block). The high
// nibble selects the encoding, mirroring pd1's per-block type nibble;
// the low nibble is reserved and must be zero.
const (
	// TagRaw is the uncompressed fallback: count uvarint followed by
	// count*8 element bytes, verbatim.
	TagRaw = 0x10
	// TagIntRLE encodes a constant-delta int64 run: first element (8
	// bytes big-endian) plus one zigzag-uvarint delta.
	TagIntRLE = 0x20
	// TagIntPacked encodes an int64 run as the first element followed
	// by simple8b words bit-packing the zigzag deltas.
	TagIntPacked = 0x30
	// TagFloatXOR encodes a float64 run by XOR-chaining consecutive
	// bit patterns and storing only the non-zero middle bytes behind a
	// lead/trail control byte.
	TagFloatXOR = 0x40
)

// MaxCount bounds the element count of a single block defensively; a
// link frame holds at most coalesceMax/8 = 16Ki elements, so any
// larger count is corrupt by construction.
const MaxCount = 1 << 24

// ErrCorrupt is wrapped by every decode error: truncated payloads,
// invalid tags or selectors, counts exceeding the caller's bound.
// Compare with errors.Is.
var ErrCorrupt = errors.New("blocks: corrupt block")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// simple8b selector table. Selector s packs s8bCount[s] values of
// s8bBits[s] bits each into the low 60 bits of a word (value j at bit
// j*width, LSB first); the selector occupies the top 4 bits. Selectors
// 0 and 1 are unused by the encoder and rejected by the decoder.
var (
	s8bCount = [16]int{0, 0, 60, 30, 20, 15, 12, 10, 8, 7, 6, 5, 4, 3, 2, 1}
	s8bBits  = [16]int{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 20, 30, 60}
)

// s8bMaxBits is the widest value simple8b can pack (selector 15).
const s8bMaxBits = 60

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// Encoder holds the reusable scratch an encode pass needs (the delta
// column and its bit widths), so a long-lived owner — one outbound
// link — compresses every chunk with zero steady-state allocation.
// The zero value is ready to use. An Encoder is not safe for
// concurrent use.
type Encoder struct {
	deltas []uint64
	widths []uint8
}

// EncodeBE appends one sealed block encoding of src — a run of
// big-endian 8-byte elements — to dst and reports whether the encoded
// block fit within limit bytes. shape orders the encoding trials
// (ShapeFloat64 tries the XOR split, anything else the int64 delta
// paths); a run that does not compress within limit under its trial
// returns (dst unmodified, false) and the caller ships the raw bytes
// instead — the fallback is the unmodified wire format, so it can
// never cost more than the uncompressed stream.
//
// len(src) must be a positive multiple of 8 and len(src)/8 at most
// MaxCount; EncodeBE returns false otherwise. When cap(dst) leaves at
// least limit bytes free, EncodeBE performs no allocation.
func (e *Encoder) EncodeBE(dst, src []byte, shape Shape, limit int) ([]byte, bool) {
	n := len(src) / 8
	if n == 0 || len(src)%8 != 0 || n > MaxCount || limit <= 0 {
		return dst, false
	}
	if shape == ShapeFloat64 {
		return e.encodeFloat(dst, src, limit)
	}
	return e.encodeInt(dst, src, limit)
}

// encodeInt tries the delta paths: one scan computes the zigzag delta
// column; a constant delta seals as TagIntRLE, otherwise the deltas
// are simple8b-packed as TagIntPacked when they fit 60 bits.
func (e *Encoder) encodeInt(dst, src []byte, limit int) ([]byte, bool) {
	n := len(src) / 8
	// RLE probe first: one branch-light pass with no scratch traffic.
	// The shapes this layer exists for — counters, sequence numbers,
	// zero fill — are constant-delta runs, and on the link hot path the
	// probe IS the encode cost, so it must not materialize the delta
	// column it will immediately discard. Non-constant runs exit on the
	// first mismatching delta, typically within a few elements.
	if n >= 2 {
		first := binary.BigEndian.Uint64(src)
		prev := binary.BigEndian.Uint64(src[8:])
		d0 := prev - first // wraparound-exact mod 2^64
		var constant bool
		if d0 == 0 {
			// Zero delta means one 8-byte pattern repeated, which a
			// vectorized shifted-compare verifies at memcmp speed.
			constant = bytes.Equal(src[8:], src[:len(src)-8])
		} else {
			constant = true
			for i := 2; i < n; i++ {
				v := binary.BigEndian.Uint64(src[i*8:])
				if v-prev != d0 {
					constant = false
					break
				}
				prev = v
			}
		}
		if constant {
			base := len(dst)
			dst = append(dst, TagIntRLE)
			dst = binary.AppendUvarint(dst, uint64(n))
			dst = binary.BigEndian.AppendUint64(dst, first)
			dst = binary.AppendUvarint(dst, zigzag(int64(d0)))
			if len(dst)-base > limit {
				return dst[:base], false
			}
			return dst, true
		}
	}
	if cap(e.deltas) < n {
		e.deltas = make([]uint64, 0, n)
		e.widths = make([]uint8, 0, n)
	}
	deltas := e.deltas[:0]
	widths := e.widths[:0]
	first := binary.BigEndian.Uint64(src)
	prev := first
	constant := true
	maxWidth := 0
	for i := 1; i < n; i++ {
		v := binary.BigEndian.Uint64(src[i*8:])
		z := zigzag(int64(v - prev)) // wraparound-exact mod 2^64
		prev = v
		if i > 1 && z != deltas[0] {
			constant = false
		}
		w := bits.Len64(z)
		if w > maxWidth {
			maxWidth = w
		}
		deltas = append(deltas, z)
		widths = append(widths, uint8(w))
	}
	e.deltas, e.widths = deltas, widths
	base := len(dst)
	if constant {
		dst = append(dst, TagIntRLE)
		dst = binary.AppendUvarint(dst, uint64(n))
		dst = binary.BigEndian.AppendUint64(dst, first)
		if n > 1 {
			dst = binary.AppendUvarint(dst, deltas[0])
		}
		if len(dst)-base > limit {
			return dst[:base], false
		}
		return dst, true
	}
	if maxWidth > s8bMaxBits {
		return dst[:base], false
	}
	dst = append(dst, TagIntPacked)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.BigEndian.AppendUint64(dst, first)
	for len(deltas) > 0 {
		if len(dst)-base+8 > limit {
			return dst[:base], false
		}
		word, k := packWord(deltas, widths)
		dst = binary.BigEndian.AppendUint64(dst, word)
		deltas = deltas[k:]
		widths = widths[k:]
	}
	if len(dst)-base > limit {
		return dst[:base], false
	}
	return dst, true
}

// packWord packs a prefix of deltas into one simple8b word, choosing
// the densest selector whose bit width covers every packed value.
// Selector 15 (one 60-bit value) always applies, since the caller has
// verified every width is at most 60.
func packWord(deltas []uint64, widths []uint8) (word uint64, k int) {
	for sel := 2; sel <= 15; sel++ {
		cnt, bw := s8bCount[sel], s8bBits[sel]
		k = cnt
		if len(deltas) < k {
			// Only the final word may pack fewer than its selector's
			// count; the decoder stops at the block's element count.
			k = len(deltas)
		}
		fits := true
		for j := 0; j < k; j++ {
			if int(widths[j]) > bw {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		word = uint64(sel) << 60
		for j := 0; j < k; j++ {
			word |= deltas[j] << (j * bw)
		}
		return word, k
	}
	panic("blocks: unpackable delta") // unreachable: selector 15 always fits
}

// encodeFloat seals src as a TagFloatXOR block: each element's bit
// pattern is XORed with its predecessor and the result stored as a
// control byte (leading/trailing zero-byte counts) plus the meaningful
// middle bytes — 0xFF alone when the XOR is zero.
func (e *Encoder) encodeFloat(dst, src []byte, limit int) ([]byte, bool) {
	n := len(src) / 8
	base := len(dst)
	dst = append(dst, TagFloatXOR)
	dst = binary.AppendUvarint(dst, uint64(n))
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v := binary.BigEndian.Uint64(src[i*8:])
		x := v ^ prev
		prev = v
		if x == 0 {
			dst = append(dst, 0xFF)
		} else {
			lead := bits.LeadingZeros64(x) >> 3
			trail := bits.TrailingZeros64(x) >> 3
			mid := 8 - lead - trail
			dst = append(dst, byte(lead<<4|trail))
			sig := x >> (trail * 8)
			for b := mid - 1; b >= 0; b-- {
				dst = append(dst, byte(sig>>(b*8)))
			}
		}
		if len(dst)-base > limit {
			return dst[:base], false
		}
	}
	return dst, true
}

// AppendRaw appends the uncompressed fallback block for src (big-endian
// 8-byte elements): tag, element count, verbatim bytes. Its overhead is
// the two-to-four byte header, under 2% for runs of 32 elements and up.
func AppendRaw(dst, src []byte) []byte {
	dst = append(dst, TagRaw)
	dst = binary.AppendUvarint(dst, uint64(len(src)/8))
	return append(dst, src...)
}

// DecodeBE appends the element bytes of the sealed block to dst and
// returns the extended slice. The block must span exactly len(block)
// bytes — a link frame carries one block and nothing else. maxBytes
// bounds the decoded size (the receiver's frame cap), so a corrupt
// count can never balloon the output; every malformed input returns an
// error wrapping ErrCorrupt with dst unmodified. When cap(dst) covers
// maxBytes, DecodeBE performs no allocation.
func DecodeBE(dst, block []byte, maxBytes int) ([]byte, error) {
	if len(block) < 2 {
		return dst, corrupt("block of %d bytes has no header", len(block))
	}
	tag := block[0]
	count, k := binary.Uvarint(block[1:])
	if k <= 0 {
		return dst, corrupt("unterminated element count")
	}
	body := block[1+k:]
	if count == 0 || count > MaxCount {
		return dst, corrupt("element count %d out of range", count)
	}
	n := int(count)
	if n*8 > maxBytes {
		return dst, corrupt("%d elements exceed the %d-byte frame bound", n, maxBytes)
	}
	base := len(dst)
	var err error
	switch tag {
	case TagRaw:
		if len(body) != n*8 {
			return dst, corrupt("raw block carries %d bytes for %d elements", len(body), n)
		}
		return append(dst, body...), nil
	case TagIntRLE:
		dst, err = decodeIntRLE(dst, body, n)
	case TagIntPacked:
		dst, err = decodeIntPacked(dst, body, n)
	case TagFloatXOR:
		dst, err = decodeFloatXOR(dst, body, n)
	default:
		return dst, corrupt("unknown encoding tag %#02x", tag)
	}
	if err != nil {
		return dst[:base], err
	}
	return dst, nil
}

func decodeIntRLE(dst, body []byte, n int) ([]byte, error) {
	if len(body) < 8 {
		return dst, corrupt("rle block truncated before first element")
	}
	v := binary.BigEndian.Uint64(body)
	body = body[8:]
	var delta uint64
	if n > 1 {
		z, k := binary.Uvarint(body)
		if k <= 0 {
			return dst, corrupt("rle block has no delta")
		}
		body = body[k:]
		delta = uint64(unzigzag(z))
	}
	if len(body) != 0 {
		return dst, corrupt("rle block carries %d trailing bytes", len(body))
	}
	dst = binary.BigEndian.AppendUint64(dst, v)
	if delta == 0 && n > 1 {
		// A zero-delta run is one 8-byte pattern repeated; doubling
		// copies rebuild it at memcpy speed instead of per-element
		// stores (zero fill and repeated-token runs are the hot shape).
		base := len(dst) - 8
		if need := (n - 1) * 8; cap(dst)-len(dst) >= need {
			dst = dst[:len(dst)+need]
		} else {
			dst = append(dst, make([]byte, need)...)
		}
		out := dst[base:]
		for filled := 8; filled < len(out); filled *= 2 {
			copy(out[filled:], out[:filled])
		}
		return dst, nil
	}
	for i := 1; i < n; i++ {
		v += delta
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst, nil
}

func decodeIntPacked(dst, body []byte, n int) ([]byte, error) {
	if len(body) < 8 {
		return dst, corrupt("packed block truncated before first element")
	}
	v := binary.BigEndian.Uint64(body)
	body = body[8:]
	dst = binary.BigEndian.AppendUint64(dst, v)
	rem := n - 1
	for rem > 0 {
		if len(body) < 8 {
			return dst, corrupt("packed block short %d deltas", rem)
		}
		word := binary.BigEndian.Uint64(body)
		body = body[8:]
		sel := int(word >> 60)
		if sel < 2 {
			return dst, corrupt("invalid simple8b selector %d", sel)
		}
		cnt, bw := s8bCount[sel], s8bBits[sel]
		if cnt > rem {
			cnt = rem
		}
		mask := uint64(1)<<bw - 1
		for j := 0; j < cnt; j++ {
			z := (word >> (j * bw)) & mask
			v += uint64(unzigzag(z))
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
		rem -= cnt
	}
	if len(body) != 0 {
		return dst, corrupt("packed block carries %d trailing bytes", len(body))
	}
	return dst, nil
}

func decodeFloatXOR(dst, body []byte, n int) ([]byte, error) {
	prev := uint64(0)
	for i := 0; i < n; i++ {
		if len(body) < 1 {
			return dst, corrupt("xor block short %d elements", n-i)
		}
		ctrl := body[0]
		body = body[1:]
		if ctrl != 0xFF {
			lead, trail := int(ctrl>>4), int(ctrl&0x0F)
			mid := 8 - lead - trail
			if lead > 7 || mid < 1 {
				return dst, corrupt("invalid xor control byte %#02x", ctrl)
			}
			if len(body) < mid {
				return dst, corrupt("xor block truncated mid-element")
			}
			var sig uint64
			for b := 0; b < mid; b++ {
				sig = sig<<8 | uint64(body[b])
			}
			body = body[mid:]
			prev ^= sig << (trail * 8)
		}
		dst = binary.BigEndian.AppendUint64(dst, prev)
	}
	if len(body) != 0 {
		return dst, corrupt("xor block carries %d trailing bytes", len(body))
	}
	return dst, nil
}

// AppendInt64s appends one sealed block holding vs to dst, falling back
// to the raw tag when the delta encodings do not pay for themselves.
// It is the value-level convenience over EncodeBE for tools and tests;
// links compress element bytes directly.
func AppendInt64s(dst []byte, vs []int64) []byte {
	src := make([]byte, len(vs)*8)
	for i, v := range vs {
		binary.BigEndian.PutUint64(src[i*8:], uint64(v))
	}
	var e Encoder
	if out, ok := e.EncodeBE(dst, src, ShapeInt64, len(src)); ok {
		return out
	}
	return AppendRaw(dst, src)
}

// AppendFloat64s is AppendInt64s for float64 elements.
func AppendFloat64s(dst []byte, vs []float64) []byte {
	src := make([]byte, len(vs)*8)
	for i, v := range vs {
		binary.BigEndian.PutUint64(src[i*8:], math.Float64bits(v))
	}
	var e Encoder
	if out, ok := e.EncodeBE(dst, src, ShapeFloat64, len(src)); ok {
		return out
	}
	return AppendRaw(dst, src)
}

// DecodeInt64s appends the elements of one sealed block to dst.
func DecodeInt64s(dst []int64, block []byte) ([]int64, error) {
	raw, err := DecodeBE(nil, block, MaxCount*8)
	if err != nil {
		return dst, err
	}
	for i := 0; i < len(raw); i += 8 {
		dst = append(dst, int64(binary.BigEndian.Uint64(raw[i:])))
	}
	return dst, nil
}

// DecodeFloat64s appends the elements of one sealed block to dst.
func DecodeFloat64s(dst []float64, block []byte) ([]float64, error) {
	raw, err := DecodeBE(nil, block, MaxCount*8)
	if err != nil {
		return dst, err
	}
	for i := 0; i < len(raw); i += 8 {
		dst = append(dst, math.Float64frombits(binary.BigEndian.Uint64(raw[i:])))
	}
	return dst, nil
}
