package blocks

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// beInt64s renders vs in the channel wire format (big-endian 8-byte
// elements), the byte shape EncodeBE operates on.
func beInt64s(vs []int64) []byte {
	b := make([]byte, len(vs)*8)
	for i, v := range vs {
		binary.BigEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b
}

func beFloat64s(vs []float64) []byte {
	b := make([]byte, len(vs)*8)
	for i, v := range vs {
		binary.BigEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// roundTripBE seals src with the given shape and decodes it back,
// requiring byte identity. Runs that refuse to seal under the link's
// size limit take the raw-block fallback, exactly as writeData does.
func roundTripBE(t *testing.T, src []byte, shape Shape) (ratio float64) {
	t.Helper()
	var e Encoder
	block, ok := e.EncodeBE(nil, src, shape, len(src))
	if !ok {
		block = AppendRaw(nil, src)
	}
	got, err := DecodeBE(nil, block, len(src))
	if err != nil {
		t.Fatalf("DecodeBE: %v", err)
	}
	if string(got) != string(src) {
		t.Fatalf("round trip diverged: %d bytes in, %d out", len(src), len(got))
	}
	return float64(len(src)) / float64(len(block))
}

func TestCodecRoundTripInt64Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := map[string][]int64{
		"monotone":  nil,
		"constant":  nil,
		"walk":      nil,
		"wide":      nil,
		"extremes":  {math.MinInt64, math.MaxInt64, 0, -1, 1, math.MinInt64, math.MaxInt64},
		"single":    {42},
		"negatives": nil,
	}
	mono := make([]int64, 4096)
	cons := make([]int64, 4096)
	walk := make([]int64, 4096)
	wide := make([]int64, 4096)
	negs := make([]int64, 512)
	v := int64(0)
	for i := range mono {
		mono[i] = int64(i) * 3
		cons[i] = -7
		v += rng.Int63n(64) - 32
		walk[i] = v
		wide[i] = rng.Int63() - rng.Int63()
	}
	for i := range negs {
		negs[i] = -int64(i) * 1000003
	}
	cases["monotone"], cases["constant"], cases["walk"], cases["wide"], cases["negatives"] =
		mono, cons, walk, wide, negs
	for name, vs := range cases {
		t.Run(name, func(t *testing.T) {
			ratio := roundTripBE(t, beInt64s(vs), ShapeInt64)
			t.Logf("%s: %.2fx", name, ratio)
		})
	}
}

func TestCodecRoundTripFloat64Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mono := make([]float64, 4096)
	cons := make([]float64, 4096)
	walk := make([]float64, 4096)
	for i := range mono {
		mono[i] = float64(i) * 0.5
		cons[i] = 3.25
		if i > 0 {
			walk[i] = walk[i-1] + float64(rng.Intn(16))/16
		}
	}
	special := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64, math.SmallestNonzeroFloat64}
	for name, vs := range map[string][]float64{
		"monotone": mono, "constant": cons, "walk": walk, "special": special,
	} {
		t.Run(name, func(t *testing.T) {
			ratio := roundTripBE(t, beFloat64s(vs), ShapeFloat64)
			t.Logf("%s: %.2fx", name, ratio)
		})
	}
}

// TestCodecRatioFloor is the -codec gate's compression floor: monotone
// int64 runs (sieve output, task sequence numbers) must compress at
// least 4x, and the raw fallback block must never cost more than 1.02x
// the unencoded bytes.
func TestCodecRatioFloor(t *testing.T) {
	vs := make([]int64, 4096)
	for i := range vs {
		vs[i] = int64(i)
	}
	src := beInt64s(vs)
	var e Encoder
	block, ok := e.EncodeBE(nil, src, ShapeInt64, len(src))
	if !ok {
		t.Fatal("monotone run did not compress")
	}
	if ratio := float64(len(src)) / float64(len(block)); ratio < 4 {
		t.Fatalf("monotone int64 ratio %.2fx below the 4x floor", ratio)
	} else {
		t.Logf("monotone int64: %.2fx (%d -> %d bytes)", ratio, len(src), len(block))
	}
	// Incompressible data: EncodeBE refuses (the link then ships the
	// bytes raw at exactly 1.00x), and the explicit raw block's header
	// overhead stays under 2%.
	rng := rand.New(rand.NewSource(77))
	wide := make([]int64, 64)
	for i := range wide {
		wide[i] = int64(rng.Uint64())
	}
	wsrc := beInt64s(wide)
	if _, ok := e.EncodeBE(nil, wsrc, ShapeInt64, len(wsrc)-len(wsrc)/8); ok {
		t.Fatal("full-width random run claimed to compress below 7/8 of raw")
	}
	raw := AppendRaw(nil, wsrc)
	if over := float64(len(raw)) / float64(len(wsrc)); over > 1.02 {
		t.Fatalf("raw fallback overhead %.4fx exceeds 1.02x", over)
	}
	got, err := DecodeBE(nil, raw, len(wsrc))
	if err != nil || string(got) != string(wsrc) {
		t.Fatalf("raw fallback round trip: %v", err)
	}
}

// TestCodecValueAPIs covers the []int64/[]float64 convenience surface,
// including its raw fallback path.
func TestCodecValueAPIs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ints := make([]int64, 1000)
	floats := make([]float64, 1000)
	for i := range ints {
		ints[i] = int64(i * i)
		floats[i] = rng.NormFloat64()
	}
	ib := AppendInt64s(nil, ints)
	gotI, err := DecodeInt64s(nil, ib)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ints {
		if gotI[i] != v {
			t.Fatalf("int64 %d: got %d want %d", i, gotI[i], v)
		}
	}
	fb := AppendFloat64s(nil, floats)
	gotF, err := DecodeFloat64s(nil, fb)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range floats {
		if math.Float64bits(gotF[i]) != math.Float64bits(v) {
			t.Fatalf("float64 %d: got %v want %v", i, gotF[i], v)
		}
	}
}

// TestCodecRejectsMalformed drives the decoder through the corruption
// taxonomy: every case must return an error wrapping ErrCorrupt, with
// no panic and no over-read.
func TestCodecRejectsMalformed(t *testing.T) {
	vs := make([]int64, 512)
	for i := range vs {
		vs[i] = int64(i)
	}
	good := AppendInt64s(nil, vs)
	cases := map[string][]byte{
		"empty":         {},
		"tag-only":      {TagIntPacked},
		"unknown-tag":   append([]byte{0x90}, good[1:]...),
		"flipped-tag":   append([]byte{TagFloatXOR}, good[1:]...),
		"truncated":     good[:len(good)/2],
		"trailing":      append(append([]byte{}, good...), 0xAB),
		"zero-count":    {TagRaw, 0x00},
		"huge-count":    {TagIntRLE, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		"bad-selector":  {TagIntPacked, 0x03, 0, 0, 0, 0, 0, 0, 0, 1, 0x10, 0, 0, 0, 0, 0, 0, 0},
		"xor-bad-ctrl":  {TagFloatXOR, 0x02, 0xFF, 0x80},
		"xor-truncated": {TagFloatXOR, 0x02, 0x07},
	}
	for name, block := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeBE(nil, block, 1<<20); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
	// A count that is well-formed but exceeds the caller's frame bound
	// must be rejected before any output is produced.
	if _, err := DecodeBE(nil, good, 64); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized count: want ErrCorrupt, got %v", err)
	}
}

// TestCodecEncodeBounds covers EncodeBE's input contract: misaligned
// and empty runs are refused, and a limit below the achievable size
// returns false with dst untouched.
func TestCodecEncodeBounds(t *testing.T) {
	var e Encoder
	if _, ok := e.EncodeBE(nil, make([]byte, 12), ShapeInt64, 12); ok {
		t.Fatal("accepted a misaligned run")
	}
	if _, ok := e.EncodeBE(nil, nil, ShapeInt64, 8); ok {
		t.Fatal("accepted an empty run")
	}
	src := beInt64s([]int64{1, 2, 3, 4})
	dst := []byte{0xEE}
	out, ok := e.EncodeBE(dst, src, ShapeInt64, 2)
	if ok {
		t.Fatal("4 elements cannot seal into 2 bytes")
	}
	if len(out) != 1 || out[0] != 0xEE {
		t.Fatal("failed encode modified dst")
	}
}

// TestCodecZeroAlloc verifies the link-path contract: with scratch
// capacity in place, sealing and unsealing a chunk allocates nothing.
func TestCodecZeroAlloc(t *testing.T) {
	vs := make([]int64, 4096)
	for i := range vs {
		vs[i] = int64(i) * 5
	}
	src := beInt64s(vs)
	var e Encoder
	enc := make([]byte, 0, len(src))
	dec := make([]byte, 0, len(src))
	// Warm the Encoder's delta scratch.
	e.EncodeBE(enc, src, ShapeInt64, len(src))
	allocs := testing.AllocsPerRun(100, func() {
		block, ok := e.EncodeBE(enc[:0], src, ShapeInt64, len(src))
		if !ok {
			t.Fatal("encode failed")
		}
		if _, err := DecodeBE(dec[:0], block, len(src)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("seal+unseal allocated %.1f times per run", allocs)
	}
}
