package blocks

import (
	"bytes"
	"testing"
)

// FuzzDecodeBE throws arbitrary bytes at the strict decoder. The
// invariants: never panic, never over-read past maxBytes, and any block
// that decodes successfully must re-decode to identical bytes (decode
// is a pure function of the block).
func FuzzDecodeBE(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{TagRaw, 0x01, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{TagIntRLE, 0x02, 0, 0, 0, 0, 0, 0, 0, 9, 0x04})
	f.Add([]byte{TagIntPacked, 0x03, 0, 0, 0, 0, 0, 0, 0, 1, 0x20, 0, 0, 0, 0, 0, 0, 0x12})
	f.Add([]byte{TagFloatXOR, 0x01, 0x07, 0x40})
	seed := make([]int64, 300)
	for i := range seed {
		seed[i] = int64(i * 17)
	}
	f.Add(AppendInt64s(nil, seed))
	f.Fuzz(func(t *testing.T, block []byte) {
		const maxBytes = 1 << 16
		out, err := DecodeBE(nil, block, maxBytes)
		if err != nil {
			return
		}
		if len(out) == 0 || len(out)%8 != 0 || len(out) > maxBytes {
			t.Fatalf("decoded %d bytes from a %d-byte block", len(out), len(block))
		}
		again, err := DecodeBE(nil, block, maxBytes)
		if err != nil || !bytes.Equal(out, again) {
			t.Fatalf("decode is not deterministic: %v", err)
		}
	})
}

// FuzzCodecInt64RoundTrip seals arbitrary element runs as int64 shapes
// and requires byte-exact recovery, on both the compressed and the
// raw-fallback paths.
func FuzzCodecInt64RoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		fuzzRoundTrip(t, raw, ShapeInt64)
	})
}

// FuzzCodecFloat64RoundTrip is the float-shape twin; NaN payloads,
// infinities, and denormals all travel as opaque bit patterns.
func FuzzCodecFloat64RoundTrip(f *testing.F) {
	f.Add([]byte{0x7F, 0xF8, 0, 0, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0x3F, 0xF0, 0, 0, 0, 0, 0, 0}, 16))
	f.Fuzz(func(t *testing.T, raw []byte) {
		fuzzRoundTrip(t, raw, ShapeFloat64)
	})
}

func fuzzRoundTrip(t *testing.T, raw []byte, shape Shape) {
	src := raw[:len(raw)-len(raw)%8]
	if len(src) == 0 || len(src) > MaxCount*8 {
		return
	}
	var e Encoder
	block, ok := e.EncodeBE(nil, src, shape, len(src))
	if !ok {
		block = AppendRaw(nil, src)
	}
	got, err := DecodeBE(nil, block, len(src))
	if err != nil {
		t.Fatalf("decoding our own block: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip diverged at %d bytes (shape %d)", len(src), shape)
	}
}
