package token

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Feeding arbitrary bytes to every reader method must never panic and
// must always terminate — corrupted or truncated streams surface as
// errors, not crashes. (Channels can carry anything during migration
// races; the codec is the defensive boundary.)
func TestReadersRobustAgainstGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		readers := []func(*Reader) error{
			func(r *Reader) error { _, err := r.ReadInt64(); return err },
			func(r *Reader) error { _, err := r.ReadUint64(); return err },
			func(r *Reader) error { _, err := r.ReadInt32(); return err },
			func(r *Reader) error { _, err := r.ReadFloat64(); return err },
			func(r *Reader) error { _, err := r.ReadBool(); return err },
			func(r *Reader) error { _, err := r.ReadByte(); return err },
			func(r *Reader) error { _, err := r.ReadBlock(); return err },
			func(r *Reader) error { _, err := r.ReadString(); return err },
			func(r *Reader) error {
				var v struct{ X int }
				return r.ReadObject(&v)
			},
		}
		for _, read := range readers {
			r := NewReader(bytes.NewReader(garbage))
			// Drain until an error; bounded by input length.
			for i := 0; i <= len(garbage)+1; i++ {
				if err := read(r); err != nil {
					break
				}
			}
		}
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Truncating a valid stream at every possible byte offset must yield a
// clean error (EOF at element boundaries, ErrUnexpectedEOF inside an
// element), never a panic or a bogus value beyond the cut.
func TestEveryTruncationFailsCleanly(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteInt64(123456789)
	w.WriteBlock([]byte("hello world"))
	w.WriteString("señal")
	w.WriteFloat64(3.14)
	full := buf.Bytes()

	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		var err error
		if _, err = r.ReadInt64(); err == nil {
			if _, err = r.ReadBlock(); err == nil {
				if _, err = r.ReadString(); err == nil {
					_, err = r.ReadFloat64()
				}
			}
		}
		if err == nil {
			t.Fatalf("truncation at %d of %d read the full stream", cut, len(full))
		}
	}
}

// Interleaved mixed-type streams round-trip regardless of order.
func TestMixedTypeStreamProperty(t *testing.T) {
	type op byte
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nOps) % 60
		ops := make([]op, n)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		ints := []int64{}
		floats := []float64{}
		blocks := [][]byte{}
		for i := range ops {
			ops[i] = op(rng.Intn(3))
			switch ops[i] {
			case 0:
				v := rng.Int63()
				ints = append(ints, v)
				w.WriteInt64(v)
			case 1:
				v := rng.NormFloat64()
				floats = append(floats, v)
				w.WriteFloat64(v)
			case 2:
				b := make([]byte, rng.Intn(32))
				rng.Read(b)
				blocks = append(blocks, b)
				w.WriteBlock(b)
			}
		}
		r := NewReader(&buf)
		ii, fi, bi := 0, 0, 0
		for _, o := range ops {
			switch o {
			case 0:
				v, err := r.ReadInt64()
				if err != nil || v != ints[ii] {
					return false
				}
				ii++
			case 1:
				v, err := r.ReadFloat64()
				if err != nil || v != floats[fi] {
					return false
				}
				fi++
			case 2:
				b, err := r.ReadBlock()
				if err != nil || !bytes.Equal(b, blocks[bi]) {
					return false
				}
				bi++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
