// Package token layers typed data elements over the raw byte streams
// that process-network channels carry. It plays the role that
// java.io.DataInputStream/DataOutputStream and ObjectInputStream/
// ObjectOutputStream play in the Java implementation (§3.1 of the paper):
// higher-level formatting is performed inside a process, so the channel
// itself remains a type-independent stream of bytes and processes such as
// Duplicate and Cons can copy bytes without understanding them.
//
// Fixed-width values use big-endian encoding. Variable-width values
// (byte blocks, gob-encoded objects) are length-prefixed with a uint32.
//
// Object values deliberately use one self-contained gob message per
// element rather than a long-lived gob stream. A long-lived gob stream
// carries type definitions once, at the start; if the consuming process
// later migrates to another machine, the new decoder would be missing
// that state. Per-message encoding keeps every element independently
// decodable, so channels stay migratable at any element boundary. This
// is the central "gob workaround" required by the Go port.
package token

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// MaxBlockSize bounds the length prefix of blocks and objects to guard
// against corrupted streams.
const MaxBlockSize = 1 << 26 // 64 MiB

// Reader decodes typed elements from a byte stream. Every method blocks
// until the full element has arrived, preserving Kahn blocking-read
// semantics at element granularity.
type Reader struct {
	r       io.Reader
	noter   tokenNoter
	scratch [8]byte
}

// tokenNoter is implemented by channel ports (core.ReadPort and
// core.WritePort): each successfully transferred element bumps the
// channel's token counter, giving the observability layer element
// granularity on top of the byte counters.
type tokenNoter interface{ NoteToken() }

// NewReader returns a typed reader over r.
func NewReader(r io.Reader) *Reader {
	d := &Reader{r: r}
	d.noter, _ = r.(tokenNoter)
	return d
}

// note records one decoded element. Only the leaf element readers call
// it, so composites (ReadObject over ReadBlock, ReadInt64 over
// ReadUint64) count each element exactly once.
func (d *Reader) note() {
	if d.noter != nil {
		d.noter.NoteToken()
	}
}

// ReadInt64 reads one big-endian int64 element.
func (d *Reader) ReadInt64() (int64, error) {
	u, err := d.ReadUint64()
	return int64(u), err
}

// ReadUint64 reads one big-endian uint64 element.
func (d *Reader) ReadUint64() (uint64, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:8]); err != nil {
		return 0, noUnexpected(err)
	}
	d.note()
	return binary.BigEndian.Uint64(d.scratch[:8]), nil
}

// ReadInt32 reads one big-endian int32 element.
func (d *Reader) ReadInt32() (int32, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:4]); err != nil {
		return 0, noUnexpected(err)
	}
	d.note()
	return int32(binary.BigEndian.Uint32(d.scratch[:4])), nil
}

// ReadFloat64 reads one IEEE-754 float64 element.
func (d *Reader) ReadFloat64() (float64, error) {
	u, err := d.ReadUint64()
	return math.Float64frombits(u), err
}

// ReadBool reads one boolean element (a single byte; nonzero is true).
func (d *Reader) ReadBool() (bool, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:1]); err != nil {
		return false, noUnexpected(err)
	}
	d.note()
	return d.scratch[0] != 0, nil
}

// ReadByte reads one raw byte element.
func (d *Reader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:1]); err != nil {
		return 0, noUnexpected(err)
	}
	d.note()
	return d.scratch[0], nil
}

// ReadBlock reads one length-prefixed byte block.
func (d *Reader) ReadBlock() ([]byte, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:4]); err != nil {
		return nil, noUnexpected(err)
	}
	n := binary.BigEndian.Uint32(d.scratch[:4])
	if n > MaxBlockSize {
		return nil, fmt.Errorf("token: block of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, corrupt(err)
	}
	d.note()
	return b, nil
}

// ReadObject reads one gob-encoded object into v (a non-nil pointer).
// The element must have been written by Writer.WriteObject.
func (d *Reader) ReadObject(v any) error {
	b, err := d.ReadBlock()
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// ReadString reads one length-prefixed UTF-8 string element.
func (d *Reader) ReadString() (string, error) {
	b, err := d.ReadBlock()
	return string(b), err
}

// noUnexpected converts io.ErrUnexpectedEOF at the *start* of an element
// read into plain io.EOF — an element boundary is a legitimate stream
// end. io.ReadFull only returns ErrUnexpectedEOF when some bytes were
// read, so a truncation mid-element still surfaces as ErrUnexpectedEOF.
func noUnexpected(err error) error { return err }

// corrupt marks an error that happened mid-element.
func corrupt(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Writer encodes typed elements onto a byte stream.
type Writer struct {
	w       io.Writer
	noter   tokenNoter
	scratch [8]byte
}

// NewWriter returns a typed writer over w.
func NewWriter(w io.Writer) *Writer {
	e := &Writer{w: w}
	e.noter, _ = w.(tokenNoter)
	return e
}

// note records one encoded element (leaf writers only; see
// Reader.note).
func (e *Writer) note(err error) error {
	if err == nil && e.noter != nil {
		e.noter.NoteToken()
	}
	return err
}

// WriteInt64 writes one big-endian int64 element.
func (e *Writer) WriteInt64(v int64) error { return e.WriteUint64(uint64(v)) }

// WriteUint64 writes one big-endian uint64 element.
func (e *Writer) WriteUint64(v uint64) error {
	binary.BigEndian.PutUint64(e.scratch[:8], v)
	_, err := e.w.Write(e.scratch[:8])
	return e.note(err)
}

// WriteInt32 writes one big-endian int32 element.
func (e *Writer) WriteInt32(v int32) error {
	binary.BigEndian.PutUint32(e.scratch[:4], uint32(v))
	_, err := e.w.Write(e.scratch[:4])
	return e.note(err)
}

// WriteFloat64 writes one IEEE-754 float64 element.
func (e *Writer) WriteFloat64(v float64) error {
	return e.WriteUint64(math.Float64bits(v))
}

// WriteBool writes one boolean element.
func (e *Writer) WriteBool(v bool) error {
	e.scratch[0] = 0
	if v {
		e.scratch[0] = 1
	}
	_, err := e.w.Write(e.scratch[:1])
	return e.note(err)
}

// WriteByte writes one raw byte element.
func (e *Writer) WriteByte(b byte) error {
	e.scratch[0] = b
	_, err := e.w.Write(e.scratch[:1])
	return e.note(err)
}

// WriteBlock writes one length-prefixed byte block.
func (e *Writer) WriteBlock(b []byte) error {
	if len(b) > MaxBlockSize {
		return fmt.Errorf("token: block of %d bytes exceeds limit", len(b))
	}
	binary.BigEndian.PutUint32(e.scratch[:4], uint32(len(b)))
	if _, err := e.w.Write(e.scratch[:4]); err != nil {
		return err
	}
	_, err := e.w.Write(b)
	return e.note(err)
}

// WriteObject writes v as one self-contained gob message (see the
// package comment for why each element is independently encoded).
func (e *Writer) WriteObject(v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return e.WriteBlock(buf.Bytes())
}

// WriteString writes one length-prefixed UTF-8 string element.
func (e *Writer) WriteString(s string) error {
	binary.BigEndian.PutUint32(e.scratch[:4], uint32(len(s)))
	if _, err := e.w.Write(e.scratch[:4]); err != nil {
		return err
	}
	_, err := io.WriteString(e.w, s)
	return e.note(err)
}

// Int64Size is the encoded size of an int64 element in bytes. Processes
// such as Cons that copy whole elements without interpreting them need
// the element width (the paper's byte-oriented Cons copies byte
// elements; our typed examples use 8-byte elements).
const Int64Size = 8

// Float64Size is the encoded size of a float64 element in bytes.
const Float64Size = 8

// AppendInt64 appends the encoding of one int64 element to b.
func AppendInt64(b []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(v))
}

// AppendFloat64 appends the encoding of one float64 element to b.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}
