// Package token layers typed data elements over the raw byte streams
// that process-network channels carry. It plays the role that
// java.io.DataInputStream/DataOutputStream and ObjectInputStream/
// ObjectOutputStream play in the Java implementation (§3.1 of the paper):
// higher-level formatting is performed inside a process, so the channel
// itself remains a type-independent stream of bytes and processes such as
// Duplicate and Cons can copy bytes without understanding them.
//
// Fixed-width values use big-endian encoding. Variable-width values
// (byte blocks, gob-encoded objects) are length-prefixed with a uint32.
//
// Object values deliberately use one self-contained gob message per
// element rather than a long-lived gob stream. A long-lived gob stream
// carries type definitions once, at the start; if the consuming process
// later migrates to another machine, the new decoder would be missing
// that state. Per-message encoding keeps every element independently
// decodable, so channels stay migratable at any element boundary. This
// is the central "gob workaround" required by the Go port.
package token

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"

	"dpn/internal/token/blocks"
)

// MaxBlockSize bounds the length prefix of blocks and objects to guard
// against corrupted streams.
const MaxBlockSize = 1 << 26 // 64 MiB

// stageMax bounds the reusable staging buffer a Writer or Reader holds
// on to between calls. Elements larger than this either go through the
// sink's vectored write path or a transient buffer — a single huge
// block must not pin memory for the lifetime of the codec.
const stageMax = 64 * 1024

// poolBufMax bounds the capacity of gob scratch buffers returned to the
// shared pools; oversized one-off encodings are dropped instead of
// pinned.
const poolBufMax = 1 << 20

// Reader decodes typed elements from a byte stream. Every method blocks
// until the full element has arrived, preserving Kahn blocking-read
// semantics at element granularity.
type Reader struct {
	r       io.Reader
	br      bufferedReader
	noter   tokenNoter
	batch   tokenBatchNoter
	scratch [8]byte
	stage   []byte
}

// tokenNoter is implemented by channel ports (core.ReadPort and
// core.WritePort): each successfully transferred element bumps the
// channel's token counter, giving the observability layer element
// granularity on top of the byte counters.
type tokenNoter interface{ NoteToken() }

// tokenBatchNoter is the batched form: one call records k elements, so
// a batch transfer costs one counter operation instead of k.
type tokenBatchNoter interface{ NoteTokens(k int) }

// vecWriter matches stream.VecWriter structurally: sinks that accept a
// multi-part element as one operation.
type vecWriter interface {
	WriteVec(bufs ...[]byte) (int, error)
}

// bufferedReader matches stream.BufferedReader structurally: sources
// that report how many bytes are readable without blocking.
type bufferedReader interface{ Buffered() int }

// shapeHinter matches stream.ShapeHinter structurally: sinks that can
// carry an advisory element-shape hint toward a transport binding.
type shapeHinter interface{ HintShape(s uint32) }

// NewReader returns a typed reader over r.
func NewReader(r io.Reader) *Reader {
	d := &Reader{r: r}
	d.br, _ = r.(bufferedReader)
	d.noter, _ = r.(tokenNoter)
	d.batch, _ = r.(tokenBatchNoter)
	return d
}

// note records one decoded element. Only the leaf element readers call
// it, so composites (ReadObject over ReadBlock, ReadInt64 over
// ReadUint64) count each element exactly once.
func (d *Reader) note() {
	if d.noter != nil {
		d.noter.NoteToken()
	}
}

// noteN records k decoded elements in one counter operation when the
// source supports it.
func (d *Reader) noteN(k int) {
	if d.batch != nil {
		d.batch.NoteTokens(k)
		return
	}
	if d.noter != nil {
		for i := 0; i < k; i++ {
			d.noter.NoteToken()
		}
	}
}

// stageBuf returns a buffer of exactly n bytes, reusing the Reader's
// staging buffer when n is within stageMax and allocating a transient
// one otherwise.
func (d *Reader) stageBuf(n int) []byte {
	if n > stageMax {
		return make([]byte, n)
	}
	if cap(d.stage) < n {
		d.stage = make([]byte, n, stageMax)
	}
	return d.stage[:n]
}

// drainable reports how many further fixed-width elements of size w can
// be read right now without blocking, capped at max and at the staging
// buffer size. Only bytes already buffered in the source are counted,
// so a batch read never retains partially consumed state — everything
// it takes is fully converted before the call returns (the property
// channel migration relies on).
func (d *Reader) drainable(max, w int) int {
	if d.br == nil || max <= 0 {
		return 0
	}
	k := d.br.Buffered() / w
	if k > max {
		k = max
	}
	if k*w > stageMax {
		k = stageMax / w
	}
	return k
}

// ReadInt64 reads one big-endian int64 element.
func (d *Reader) ReadInt64() (int64, error) {
	u, err := d.ReadUint64()
	return int64(u), err
}

// ReadUint64 reads one big-endian uint64 element.
func (d *Reader) ReadUint64() (uint64, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:8]); err != nil {
		return 0, noUnexpected(err)
	}
	d.note()
	return binary.BigEndian.Uint64(d.scratch[:8]), nil
}

// ReadInt32 reads one big-endian int32 element.
func (d *Reader) ReadInt32() (int32, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:4]); err != nil {
		return 0, noUnexpected(err)
	}
	d.note()
	return int32(binary.BigEndian.Uint32(d.scratch[:4])), nil
}

// ReadFloat64 reads one IEEE-754 float64 element.
func (d *Reader) ReadFloat64() (float64, error) {
	u, err := d.ReadUint64()
	return math.Float64frombits(u), err
}

// ReadInt64s reads between 1 and len(dst) int64 elements into dst and
// returns how many it read. The first element is read with the usual
// blocking semantics (Kahn's blocking-read rule); additional elements
// are taken only if their bytes are already buffered in the source, so
// the call never blocks waiting to fill dst. The element values and
// order are exactly those of repeated ReadInt64 calls — only the
// per-call batching varies with buffering, like io.Reader short reads.
func (d *Reader) ReadInt64s(dst []int64) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if _, err := io.ReadFull(d.r, d.scratch[:8]); err != nil {
		return 0, noUnexpected(err)
	}
	dst[0] = int64(binary.BigEndian.Uint64(d.scratch[:8]))
	n := 1
	if k := d.drainable(len(dst)-1, 8); k > 0 {
		st := d.stageBuf(k * 8)
		if _, err := io.ReadFull(d.r, st); err != nil {
			d.noteN(n)
			return n, corrupt(err)
		}
		for i := 0; i < k; i++ {
			dst[n+i] = int64(binary.BigEndian.Uint64(st[i*8:]))
		}
		n += k
	}
	d.noteN(n)
	return n, nil
}

// ReadFloat64s is ReadInt64s for float64 elements.
func (d *Reader) ReadFloat64s(dst []float64) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if _, err := io.ReadFull(d.r, d.scratch[:8]); err != nil {
		return 0, noUnexpected(err)
	}
	dst[0] = math.Float64frombits(binary.BigEndian.Uint64(d.scratch[:8]))
	n := 1
	if k := d.drainable(len(dst)-1, 8); k > 0 {
		st := d.stageBuf(k * 8)
		if _, err := io.ReadFull(d.r, st); err != nil {
			d.noteN(n)
			return n, corrupt(err)
		}
		for i := 0; i < k; i++ {
			dst[n+i] = math.Float64frombits(binary.BigEndian.Uint64(st[i*8:]))
		}
		n += k
	}
	d.noteN(n)
	return n, nil
}

// ReadBool reads one boolean element (a single byte; nonzero is true).
func (d *Reader) ReadBool() (bool, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:1]); err != nil {
		return false, noUnexpected(err)
	}
	d.note()
	return d.scratch[0] != 0, nil
}

// ReadByte reads one raw byte element.
func (d *Reader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:1]); err != nil {
		return 0, noUnexpected(err)
	}
	d.note()
	return d.scratch[0], nil
}

// ReadBlock reads one length-prefixed byte block into a freshly
// allocated slice the caller owns. Loops that can recycle a buffer
// should use ReadBlockBuf instead.
func (d *Reader) ReadBlock() ([]byte, error) {
	return d.ReadBlockBuf(nil)
}

// ReadBlockBuf reads one length-prefixed byte block, reusing dst's
// capacity when it suffices and allocating otherwise. It returns the
// block aliased into (or replacing) dst, so a decode loop amortizes the
// per-block allocation to zero:
//
//	var buf []byte
//	for {
//		buf, err = r.ReadBlockBuf(buf)
//		...
//	}
func (d *Reader) ReadBlockBuf(dst []byte) ([]byte, error) {
	if _, err := io.ReadFull(d.r, d.scratch[:4]); err != nil {
		return nil, noUnexpected(err)
	}
	n := int(binary.BigEndian.Uint32(d.scratch[:4]))
	if n > MaxBlockSize {
		return nil, fmt.Errorf("token: block of %d bytes exceeds limit", n)
	}
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	b := dst[:n]
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, corrupt(err)
	}
	d.note()
	return b, nil
}

// objScratch is the pooled per-decode machinery of ReadObject: the
// block buffer and the bytes.Reader the gob decoder drains. The gob
// decoder itself is deliberately NOT pooled — every element must be a
// self-contained gob message (see the package comment), and a reused
// decoder would carry type state across elements.
type objScratch struct {
	buf []byte
	rd  bytes.Reader
}

var objPool = sync.Pool{New: func() any { return new(objScratch) }}

// ReadObject reads one gob-encoded object into v (a non-nil pointer).
// The element must have been written by Writer.WriteObject.
func (d *Reader) ReadObject(v any) error {
	if _, err := io.ReadFull(d.r, d.scratch[:4]); err != nil {
		return noUnexpected(err)
	}
	n := int(binary.BigEndian.Uint32(d.scratch[:4]))
	if n > MaxBlockSize {
		return fmt.Errorf("token: block of %d bytes exceeds limit", n)
	}
	sc := objPool.Get().(*objScratch)
	if cap(sc.buf) < n {
		sc.buf = make([]byte, n)
	}
	b := sc.buf[:n]
	if _, err := io.ReadFull(d.r, b); err != nil {
		objPool.Put(sc)
		return corrupt(err)
	}
	d.note()
	sc.rd.Reset(b)
	err := gob.NewDecoder(&sc.rd).Decode(v)
	sc.rd.Reset(nil)
	if cap(sc.buf) <= poolBufMax {
		objPool.Put(sc)
	}
	return err
}

// ReadString reads one length-prefixed UTF-8 string element.
func (d *Reader) ReadString() (string, error) {
	b, err := d.ReadBlock()
	return string(b), err
}

// noUnexpected converts io.ErrUnexpectedEOF at the *start* of an element
// read into plain io.EOF — an element boundary is a legitimate stream
// end. io.ReadFull only returns ErrUnexpectedEOF when some bytes were
// read, so a truncation mid-element still surfaces as ErrUnexpectedEOF.
func noUnexpected(err error) error { return err }

// corrupt marks an error that happened mid-element.
func corrupt(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Writer encodes typed elements onto a byte stream. Every element —
// fixed-width, block, string, or object — reaches the sink as exactly
// one underlying write: multi-part elements are staged into a reusable
// buffer (or handed to the sink's vectored write), so a failure between
// sink operations can never leave a torn element on a transport.
type Writer struct {
	w       io.Writer
	vw      vecWriter
	noter   tokenNoter
	batch   tokenBatchNoter
	hinter  shapeHinter
	hinted  blocks.Shape
	scratch [8]byte
	stage   []byte
}

// NewWriter returns a typed writer over w.
func NewWriter(w io.Writer) *Writer {
	e := &Writer{w: w}
	e.vw, _ = w.(vecWriter)
	e.noter, _ = w.(tokenNoter)
	e.batch, _ = w.(tokenBatchNoter)
	e.hinter, _ = w.(shapeHinter)
	return e
}

// hint stamps the sink with the advisory element-shape of the batch
// paths (see blocks.Shape). Only the batch writers call it — the
// singular 8-byte fast path must stay hint-free — and the stamp is
// cached per Writer so a long-lived batch producer pays one atomic
// store total, not one per call.
func (e *Writer) hint(s blocks.Shape) {
	if e.hinter == nil || e.hinted == s {
		return
	}
	e.hinted = s
	e.hinter.HintShape(uint32(s))
}

// note records one encoded element (leaf writers only; see
// Reader.note).
func (e *Writer) note(err error) error {
	if err == nil && e.noter != nil {
		e.noter.NoteToken()
	}
	return err
}

// noteN records k encoded elements in one counter operation when the
// sink supports it.
func (e *Writer) noteN(k int) {
	if e.batch != nil {
		e.batch.NoteTokens(k)
		return
	}
	if e.noter != nil {
		for i := 0; i < k; i++ {
			e.noter.NoteToken()
		}
	}
}

// stageBuf returns a buffer of exactly n bytes, reusing the Writer's
// staging buffer when n is within stageMax and allocating a transient
// one otherwise.
func (e *Writer) stageBuf(n int) []byte {
	if n > stageMax {
		return make([]byte, n)
	}
	if cap(e.stage) < n {
		e.stage = make([]byte, n, stageMax)
	}
	return e.stage[:n]
}

// WriteInt64 writes one big-endian int64 element.
func (e *Writer) WriteInt64(v int64) error { return e.WriteUint64(uint64(v)) }

// WriteUint64 writes one big-endian uint64 element.
func (e *Writer) WriteUint64(v uint64) error {
	binary.BigEndian.PutUint64(e.scratch[:8], v)
	_, err := e.w.Write(e.scratch[:8])
	return e.note(err)
}

// WriteInt32 writes one big-endian int32 element.
func (e *Writer) WriteInt32(v int32) error {
	binary.BigEndian.PutUint32(e.scratch[:4], uint32(v))
	_, err := e.w.Write(e.scratch[:4])
	return e.note(err)
}

// WriteFloat64 writes one IEEE-754 float64 element.
func (e *Writer) WriteFloat64(v float64) error {
	return e.WriteUint64(math.Float64bits(v))
}

// WriteBool writes one boolean element.
func (e *Writer) WriteBool(v bool) error {
	e.scratch[0] = 0
	if v {
		e.scratch[0] = 1
	}
	_, err := e.w.Write(e.scratch[:1])
	return e.note(err)
}

// WriteByte writes one raw byte element.
func (e *Writer) WriteByte(b byte) error {
	e.scratch[0] = b
	_, err := e.w.Write(e.scratch[:1])
	return e.note(err)
}

// WriteInt64s writes the elements of vs in order, staging runs of them
// into single sink writes. Observable semantics match a loop of
// WriteInt64 calls; only the write (and wakeup) count differs.
func (e *Writer) WriteInt64s(vs []int64) error {
	e.hint(blocks.ShapeInt64)
	for len(vs) > 0 {
		k := len(vs)
		if k*8 > stageMax {
			k = stageMax / 8
		}
		st := e.stageBuf(k * 8)
		for i, v := range vs[:k] {
			binary.BigEndian.PutUint64(st[i*8:], uint64(v))
		}
		if _, err := e.w.Write(st); err != nil {
			return err
		}
		e.noteN(k)
		vs = vs[k:]
	}
	return nil
}

// WriteFloat64s is WriteInt64s for float64 elements.
func (e *Writer) WriteFloat64s(vs []float64) error {
	e.hint(blocks.ShapeFloat64)
	for len(vs) > 0 {
		k := len(vs)
		if k*8 > stageMax {
			k = stageMax / 8
		}
		st := e.stageBuf(k * 8)
		for i, v := range vs[:k] {
			binary.BigEndian.PutUint64(st[i*8:], math.Float64bits(v))
		}
		if _, err := e.w.Write(st); err != nil {
			return err
		}
		e.noteN(k)
		vs = vs[k:]
	}
	return nil
}

// WriteBlock writes one length-prefixed byte block as a single sink
// write: small blocks are staged (header + payload) into the reusable
// buffer; large blocks go through the sink's vectored write when it has
// one, avoiding the copy, and are staged transiently otherwise.
func (e *Writer) WriteBlock(b []byte) error {
	if len(b) > MaxBlockSize {
		return fmt.Errorf("token: block of %d bytes exceeds limit", len(b))
	}
	if len(b)+4 > stageMax && e.vw != nil {
		binary.BigEndian.PutUint32(e.scratch[:4], uint32(len(b)))
		_, err := e.vw.WriteVec(e.scratch[:4], b)
		return e.note(err)
	}
	st := e.stageBuf(len(b) + 4)
	binary.BigEndian.PutUint32(st, uint32(len(b)))
	copy(st[4:], b)
	_, err := e.w.Write(st)
	return e.note(err)
}

// encPad reserves the length prefix at the front of a pooled encode
// buffer so header and gob payload leave in one write.
var encPad [4]byte

var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// WriteObject writes v as one self-contained gob message (see the
// package comment for why each element is independently encoded). The
// encode buffer is pooled and the length prefix is backfilled in place,
// so the element costs one sink write and no per-call buffer
// allocation.
func (e *Writer) WriteObject(v any) error {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= poolBufMax {
			encBufPool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write(encPad[:])
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return err
	}
	msg := buf.Bytes()
	n := len(msg) - 4
	if n > MaxBlockSize {
		return fmt.Errorf("token: block of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(msg[:4], uint32(n))
	_, err := e.w.Write(msg)
	return e.note(err)
}

// WriteString writes one length-prefixed UTF-8 string element as a
// single sink write (see WriteBlock).
func (e *Writer) WriteString(s string) error {
	if len(s) > MaxBlockSize {
		return fmt.Errorf("token: block of %d bytes exceeds limit", len(s))
	}
	st := e.stageBuf(len(s) + 4)
	binary.BigEndian.PutUint32(st, uint32(len(s)))
	copy(st[4:], s)
	_, err := e.w.Write(st)
	return e.note(err)
}

// Int64Size is the encoded size of an int64 element in bytes. Processes
// such as Cons that copy whole elements without interpreting them need
// the element width (the paper's byte-oriented Cons copies byte
// elements; our typed examples use 8-byte elements).
const Int64Size = 8

// Float64Size is the encoded size of a float64 element in bytes.
const Float64Size = 8

// AppendInt64 appends the encoding of one int64 element to b.
func AppendInt64(b []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(v))
}

// AppendFloat64 appends the encoding of one float64 element to b.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}
