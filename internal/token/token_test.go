package token

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"dpn/internal/stream"
)

func TestRoundTripScalars(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteInt64(-42); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteUint64(1 << 63); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteInt32(-7); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFloat64(math.Pi); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBool(true); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBool(false); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteByte(0xAB); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteString("héllo"); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if v, err := r.ReadInt64(); err != nil || v != -42 {
		t.Fatalf("ReadInt64 = %d, %v", v, err)
	}
	if v, err := r.ReadUint64(); err != nil || v != 1<<63 {
		t.Fatalf("ReadUint64 = %d, %v", v, err)
	}
	if v, err := r.ReadInt32(); err != nil || v != -7 {
		t.Fatalf("ReadInt32 = %d, %v", v, err)
	}
	if v, err := r.ReadFloat64(); err != nil || v != math.Pi {
		t.Fatalf("ReadFloat64 = %v, %v", v, err)
	}
	if v, err := r.ReadBool(); err != nil || !v {
		t.Fatalf("ReadBool = %v, %v", v, err)
	}
	if v, err := r.ReadBool(); err != nil || v {
		t.Fatalf("ReadBool = %v, %v", v, err)
	}
	if v, err := r.ReadByte(); err != nil || v != 0xAB {
		t.Fatalf("ReadByte = %x, %v", v, err)
	}
	if v, err := r.ReadString(); err != nil || v != "héllo" {
		t.Fatalf("ReadString = %q, %v", v, err)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []byte{1, 2, 3, 4, 5}
	if err := w.WriteBlock(want); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(nil); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got, err := r.ReadBlock()
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("ReadBlock = %v, %v", got, err)
	}
	got, err = r.ReadBlock()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty ReadBlock = %v, %v", got, err)
	}
}

type testObj struct {
	Name   string
	Values []int
}

func TestObjectRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := testObj{Name: "x", Values: []int{3, 1, 4}}
	if err := w.WriteObject(want); err != nil {
		t.Fatal(err)
	}
	// A second object must be independently decodable (fresh decoder).
	if err := w.WriteObject(testObj{Name: "y"}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var got testObj
	if err := r.ReadObject(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v", got)
	}
	var got2 testObj
	if err := r.ReadObject(&got2); err != nil || got2.Name != "y" {
		t.Fatalf("second object = %+v, %v", got2, err)
	}
}

// Objects must survive decoding from the middle of a stream by a fresh
// reader — the migration property motivating per-message gob encoding.
func TestObjectsIndependentlyDecodable(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteObject(testObj{Name: "first"})
	w.WriteObject(testObj{Name: "second"})
	r1 := NewReader(&buf)
	var a testObj
	if err := r1.ReadObject(&a); err != nil {
		t.Fatal(err)
	}
	// Remaining bytes handed to a brand-new reader (as after migration).
	r2 := NewReader(bytes.NewReader(buf.Bytes()[len(buf.Bytes())-buf.Len():]))
	var b testObj
	if err := r2.ReadObject(&b); err != nil {
		t.Fatalf("fresh reader mid-stream: %v", err)
	}
	if b.Name != "second" {
		t.Fatalf("got %+v", b)
	}
}

func TestTruncatedElementIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf).WriteInt64(7)
	short := buf.Bytes()[:5]
	r := NewReader(bytes.NewReader(short))
	if _, err := r.ReadInt64(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated read = %v, want ErrUnexpectedEOF", err)
	}
}

func TestTruncatedBlockIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf).WriteBlock([]byte("abcdef"))
	short := buf.Bytes()[:7] // 4-byte prefix + 3 of 6 payload bytes
	r := NewReader(bytes.NewReader(short))
	if _, err := r.ReadBlock(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated block = %v, want ErrUnexpectedEOF", err)
	}
}

func TestOversizeBlockRejected(t *testing.T) {
	var buf bytes.Buffer
	// Forge a prefix larger than MaxBlockSize.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := NewReader(&buf).ReadBlock(); err == nil {
		t.Fatal("oversize block accepted")
	}
	w := NewWriter(io.Discard)
	if err := w.WriteBlock(make([]byte, MaxBlockSize+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
}

// Property: any sequence of int64s round-trips over a real pipe.
func TestInt64StreamProperty(t *testing.T) {
	f := func(vals []int64) bool {
		p := stream.NewPipe(64)
		go func() {
			w := NewWriter(p)
			for _, v := range vals {
				if err := w.WriteInt64(v); err != nil {
					return
				}
			}
			p.CloseWrite()
		}()
		r := NewReader(p)
		for _, want := range vals {
			got, err := r.ReadInt64()
			if err != nil || got != want {
				return false
			}
		}
		_, err := r.ReadInt64()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: float64 values round-trip bit-exactly (including NaN bit
// patterns produced by quick).
func TestFloat64BitExactProperty(t *testing.T) {
	f := func(bits uint64) bool {
		var buf bytes.Buffer
		v := math.Float64frombits(bits)
		NewWriter(&buf).WriteFloat64(v)
		got, err := NewReader(&buf).ReadFloat64()
		return err == nil && math.Float64bits(got) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: strings round-trip.
func TestStringProperty(t *testing.T) {
	f := func(s string) bool {
		var buf bytes.Buffer
		NewWriter(&buf).WriteString(s)
		got, err := NewReader(&buf).ReadString()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
