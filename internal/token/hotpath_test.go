package token

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dpn/internal/stream"
)

// countingSink records how many Write calls the codec issues. It is a
// plain io.Writer — no WriteVec, no Buffered — so it stands in for a
// migrated transport where a torn element would interleave with other
// traffic.
type countingSink struct {
	bytes.Buffer
	writes int
}

func (c *countingSink) Write(b []byte) (int, error) {
	c.writes++
	return c.Buffer.Write(b)
}

// vecSink additionally offers WriteVec, counting vectored ops
// separately, to check the codec prefers one vectored call for large
// elements instead of staging a copy.
type vecSink struct {
	countingSink
	vecs int
}

func (v *vecSink) WriteVec(bufs ...[]byte) (int, error) {
	v.vecs++
	n := 0
	for _, b := range bufs {
		m, err := v.Buffer.Write(b)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestOneWritePerElement is the regression test for the torn-element
// bug: every element kind must reach a non-vectored sink in exactly one
// Write call, so a concurrent element on a shared transport can never
// land between a length prefix and its payload.
func TestOneWritePerElement(t *testing.T) {
	big := make([]byte, stageMax+100) // larger than the staging buffer
	for i := range big {
		big[i] = byte(i)
	}
	cases := []struct {
		name  string
		write func(e *Writer) error
	}{
		{"Int64", func(e *Writer) error { return e.WriteInt64(-42) }},
		{"Int32", func(e *Writer) error { return e.WriteInt32(7) }},
		{"Float64", func(e *Writer) error { return e.WriteFloat64(3.25) }},
		{"Bool", func(e *Writer) error { return e.WriteBool(true) }},
		{"Byte", func(e *Writer) error { return e.WriteByte(0xAB) }},
		{"Block", func(e *Writer) error { return e.WriteBlock([]byte("payload")) }},
		{"BlockHuge", func(e *Writer) error { return e.WriteBlock(big) }},
		{"String", func(e *Writer) error { return e.WriteString("hello") }},
		{"Object", func(e *Writer) error { return e.WriteObject(struct{ A, B int }{1, 2}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &countingSink{}
			e := NewWriter(sink)
			if err := tc.write(e); err != nil {
				t.Fatal(err)
			}
			if sink.writes != 1 {
				t.Fatalf("element reached the sink in %d writes, want 1", sink.writes)
			}
		})
	}
}

// TestLargeBlockUsesWriteVec checks that an element too big to stage
// goes out as a single vectored call when the sink supports it, rather
// than being copied into a transient buffer.
func TestLargeBlockUsesWriteVec(t *testing.T) {
	big := make([]byte, stageMax+1)
	sink := &vecSink{}
	e := NewWriter(sink)
	if err := e.WriteBlock(big); err != nil {
		t.Fatal(err)
	}
	if sink.vecs != 1 || sink.writes != 0 {
		t.Fatalf("got %d WriteVec + %d Write calls, want exactly 1 WriteVec", sink.vecs, sink.writes)
	}
	// A small block should be staged into one plain write instead.
	if err := e.WriteBlock([]byte("small")); err != nil {
		t.Fatal(err)
	}
	if sink.vecs != 1 || sink.writes != 1 {
		t.Fatalf("small block: got %d WriteVec + %d Write calls, want 1 + 1", sink.vecs, sink.writes)
	}
}

// TestBatchInt64RoundTrip streams values through a real pipe with the
// batched writer and reader and checks the sequence matches exactly.
// The batch reader may only consume bytes that are already buffered, so
// this also covers the partial-drain path where a batch read returns
// fewer values than the destination holds.
func TestBatchInt64RoundTrip(t *testing.T) {
	const total = 10000
	p := stream.NewPipe(256) // small: forces many partial batches
	e := NewWriter(p.WriteEnd())
	d := NewReader(p.ReadEnd())

	go func() {
		buf := make([]int64, 0, 128)
		for i := 0; i < total; i++ {
			buf = append(buf, int64(i)*3-total)
			if len(buf) == cap(buf) {
				if err := e.WriteInt64s(buf); err != nil {
					t.Errorf("WriteInt64s: %v", err)
					return
				}
				buf = buf[:0]
			}
		}
		if err := e.WriteInt64s(buf); err != nil {
			t.Errorf("WriteInt64s: %v", err)
		}
		p.CloseWrite()
	}()

	got := make([]int64, 0, total)
	dst := make([]int64, 97)
	for len(got) < total {
		n, err := d.ReadInt64s(dst)
		if err != nil {
			t.Fatalf("ReadInt64s after %d values: %v", len(got), err)
		}
		if n == 0 {
			t.Fatal("ReadInt64s returned 0 values without error")
		}
		got = append(got, dst[:n]...)
	}
	for i, v := range got {
		if want := int64(i)*3 - total; v != want {
			t.Fatalf("value %d: got %d, want %d", i, v, want)
		}
	}
}

// TestBatchFloat64RoundTrip does the same for the float batch APIs.
func TestBatchFloat64RoundTrip(t *testing.T) {
	const total = 4096
	p := stream.NewPipe(512)
	e := NewWriter(p.WriteEnd())
	d := NewReader(p.ReadEnd())

	go func() {
		vs := make([]float64, total)
		for i := range vs {
			vs[i] = float64(i) * 0.5
		}
		if err := e.WriteFloat64s(vs); err != nil {
			t.Errorf("WriteFloat64s: %v", err)
		}
		p.CloseWrite()
	}()

	got := make([]float64, 0, total)
	dst := make([]float64, 64)
	for len(got) < total {
		n, err := d.ReadFloat64s(dst)
		if err != nil {
			t.Fatalf("ReadFloat64s after %d values: %v", len(got), err)
		}
		got = append(got, dst[:n]...)
	}
	for i, v := range got {
		if want := float64(i) * 0.5; v != want {
			t.Fatalf("value %d: got %g, want %g", i, v, want)
		}
	}
}

// TestBatchReadOpaqueSource checks the conservative fallback: a source
// without Buffered() still works — each batch read just returns one
// value, since the reader may not block for more than the first.
func TestBatchReadOpaqueSource(t *testing.T) {
	var buf bytes.Buffer
	e := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := e.WriteInt64(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	d := NewReader(opaqueReader{&buf})
	dst := make([]int64, 16)
	got := []int64{}
	for len(got) < 5 {
		n, err := d.ReadInt64s(dst)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, dst[:n]...)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("value %d: got %d", i, v)
		}
	}
}

// opaqueReader hides bytes.Buffer's other methods so the token reader
// sees a bare io.Reader.
type opaqueReader struct{ b *bytes.Buffer }

func (o opaqueReader) Read(p []byte) (int, error) { return o.b.Read(p) }

// TestConcurrentObjectRoundTrip hammers the pooled gob machinery from
// many goroutines at once. Each goroutine owns a pipe pair; the encode
// and decode scratch buffers come from shared pools, so -race flushes
// out any buffer returned while still referenced.
func TestConcurrentObjectRoundTrip(t *testing.T) {
	type msg struct {
		ID   int
		Name string
		Data []byte
	}
	const (
		goroutines = 8
		iters      = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := stream.NewPipe(4096)
			e := NewWriter(p.WriteEnd())
			d := NewReader(p.ReadEnd())
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < iters; i++ {
					in := msg{ID: g*iters + i, Name: fmt.Sprintf("g%d-i%d", g, i), Data: bytes.Repeat([]byte{byte(i)}, i%64)}
					if err := e.WriteObject(in); err != nil {
						t.Errorf("WriteObject: %v", err)
						return
					}
				}
				p.CloseWrite()
			}()
			for i := 0; i < iters; i++ {
				var out msg
				if err := d.ReadObject(&out); err != nil {
					t.Errorf("ReadObject %d: %v", i, err)
					break
				}
				if out.ID != g*iters+i || out.Name != fmt.Sprintf("g%d-i%d", g, i) || len(out.Data) != i%64 {
					t.Errorf("goroutine %d object %d corrupted: %+v", g, i, out)
					break
				}
			}
			<-done
		}(g)
	}
	wg.Wait()
}

// TestReadBlockBufReuse checks that a destination with enough capacity
// is reused instead of reallocated.
func TestReadBlockBufReuse(t *testing.T) {
	var buf bytes.Buffer
	e := NewWriter(&buf)
	if err := e.WriteBlock([]byte("first block")); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBlock([]byte("second")); err != nil {
		t.Fatal(err)
	}
	d := NewReader(&buf)
	b1, err := d.ReadBlockBuf(make([]byte, 0, 64))
	if err != nil {
		t.Fatal(err)
	}
	back := b1[:cap(b1)]
	b2, err := d.ReadBlockBuf(b1)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != "second" {
		t.Fatalf("got %q", b2)
	}
	if &back[0] != &b2[:1][0] {
		t.Fatal("ReadBlockBuf reallocated despite sufficient capacity")
	}
}
