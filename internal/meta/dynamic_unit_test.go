package meta

import (
	"io"
	"reflect"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/token"
)

// Direct unit tests for the indexed-merge processes, complementing the
// composition-level coverage.

func writeBlocks(w *core.WritePort, blocks ...[]byte) error {
	tw := token.NewWriter(w)
	for _, b := range blocks {
		if err := tw.WriteBlock(b); err != nil {
			return err
		}
	}
	return nil
}

func readBlocksUntilEOF(r *core.ReadPort) ([][]byte, error) {
	tr := token.NewReader(r)
	var out [][]byte
	for {
		b, err := tr.ReadBlock()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
}

func TestTurnstilePairsAndIndexStream(t *testing.T) {
	n := core.NewNetwork()
	in0 := n.NewChannel("in0", 0)
	in1 := n.NewChannel("in1", 0)
	pairs := n.NewChannel("pairs", 0)
	idx := n.NewChannel("idx", 0)
	n.Spawn(&Turnstile{
		Ins:      []*core.ReadPort{in0.Reader(), in1.Reader()},
		Out:      pairs.Writer(),
		OutIndex: idx.Writer(),
	})
	// Feed one result per worker sequentially so arrival order is
	// deterministic: worker 1 first, then worker 0.
	if err := writeBlocks(in1.Writer(), []byte("b")); err != nil {
		t.Fatal(err)
	}
	pr := token.NewReader(pairs.Reader())
	i1, err := pr.ReadInt64()
	if err != nil || i1 != 1 {
		t.Fatalf("first pair index = %d, %v", i1, err)
	}
	if b, err := pr.ReadBlock(); err != nil || string(b) != "b" {
		t.Fatalf("first pair block = %q, %v", b, err)
	}
	if err := writeBlocks(in0.Writer(), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if i2, err := pr.ReadInt64(); err != nil || i2 != 0 {
		t.Fatalf("second pair index = %d, %v", i2, err)
	}
	if b, err := pr.ReadBlock(); err != nil || string(b) != "a" {
		t.Fatalf("second pair block = %q, %v", b, err)
	}
	// The bare index stream mirrors arrival order.
	ir := token.NewReader(idx.Reader())
	if v, _ := ir.ReadInt64(); v != 1 {
		t.Fatalf("idx[0] = %d", v)
	}
	if v, _ := ir.ReadInt64(); v != 0 {
		t.Fatalf("idx[1] = %d", v)
	}
	in0.Writer().Close()
	in1.Writer().Close()
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTurnstileToleratesDeadIndexPath(t *testing.T) {
	// The distribution side is gone (index reader closed); results must
	// keep flowing to the pair stream (the end-of-work drain of §3.4).
	n := core.NewNetwork()
	in0 := n.NewChannel("in0", 0)
	pairs := n.NewChannel("pairs", 0)
	idx := n.NewChannel("idx", 64)
	idx.Reader().Close() // poison the index path immediately
	n.Spawn(&Turnstile{
		Ins:      []*core.ReadPort{in0.Reader()},
		Out:      pairs.Writer(),
		OutIndex: idx.Writer(),
	})
	go func() {
		writeBlocks(in0.Writer(), []byte("x"), []byte("y"))
		in0.Writer().Close()
	}()
	pr := token.NewReader(pairs.Reader())
	for _, want := range []string{"x", "y"} {
		if _, err := pr.ReadInt64(); err != nil {
			t.Fatal(err)
		}
		b, err := pr.ReadBlock()
		if err != nil || string(b) != want {
			t.Fatalf("got %q, %v", b, err)
		}
	}
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectReordersByNeedSequence(t *testing.T) {
	// Two workers; arrivals come in the order w1, w0, w1 — Select must
	// emit w0's result first (task order), buffering w1's.
	n := core.NewNetwork()
	pairs := n.NewChannel("pairs", 1024)
	out := n.NewChannel("out", 1024)
	sel := &Select{In: pairs.Reader(), Out: out.Writer(), Workers: 2}

	w := token.NewWriter(pairs.Writer())
	write := func(idx int64, data string) {
		if err := w.WriteInt64(idx); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBlock([]byte(data)); err != nil {
			t.Fatal(err)
		}
	}
	write(1, "r-of-task2")
	write(0, "r-of-task1")
	write(1, "r-of-task3") // w1's next task (task 3) was directed by idx stream
	pairs.Writer().Close()
	n.Spawn(sel)
	got, err := readBlocksUntilEOF(out.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("r-of-task1"), []byte("r-of-task2"), []byte("r-of-task3")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %q", got)
	}
}

func TestSelectEndsWhenArrivalsStop(t *testing.T) {
	// Fewer results than the initial need sequence (tasks < workers):
	// Select must terminate cleanly when the pair stream ends.
	n := core.NewNetwork()
	pairs := n.NewChannel("pairs", 1024)
	out := n.NewChannel("out", 1024)
	w := token.NewWriter(pairs.Writer())
	w.WriteInt64(0)
	w.WriteBlock([]byte("only"))
	pairs.Writer().Close()
	n.Spawn(&Select{In: pairs.Reader(), Out: out.Writer(), Workers: 4})
	got, err := readBlocksUntilEOF(out.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "only" {
		t.Fatalf("got %q", got)
	}
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("select did not terminate")
	}
}
