package meta

import (
	"encoding/gob"
	"io"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"dpn/internal/core"
	"dpn/internal/token"
)

// SquareTask is a worker task computing V². Sleep simulates work of
// varying duration.
type SquareTask struct {
	V     int64
	Sleep time.Duration
}

// Run implements Task.
func (t *SquareTask) Run() (Task, error) {
	if t.Sleep > 0 {
		time.Sleep(t.Sleep)
	}
	return &SquareResult{V: t.V, Sq: t.V * t.V}, nil
}

// SquareResult is the consumer task carrying a computed square.
type SquareResult struct {
	V, Sq int64
	Last  bool
}

// Run implements Task.
func (t *SquareResult) Run() (Task, error) { return nil, nil }

// Terminal implements the stop signal.
func (t *SquareResult) Terminal() bool { return t.Last }

func init() {
	gob.Register(&SquareTask{})
	gob.Register(&SquareResult{})
}

// rangeSource produces SquareTasks for 0..max-1, optionally with
// per-task sleep chosen by sleepFn.
type rangeSource struct {
	next, max int64
	sleepFn   func(int64) time.Duration
}

func (s *rangeSource) Run() (Task, error) {
	if s.next >= s.max {
		return nil, nil
	}
	v := s.next
	s.next++
	t := &SquareTask{V: v}
	if s.sleepFn != nil {
		t.Sleep = s.sleepFn(v)
	}
	return t, nil
}

// collectResults attaches an ordered collector to a consumer.
func collectResults(c *Consumer) *[]int64 {
	out := &[]int64{}
	c.SetOnResult(func(ran, result Task) {
		if r, ok := ran.(*SquareResult); ok {
			*out = append(*out, r.Sq)
		}
	})
	return out
}

func wantSquares(n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i) * int64(i)
	}
	return out
}

func eq(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPipelineOrdered(t *testing.T) {
	n := core.NewNetwork()
	c := Pipeline(n, &rangeSource{max: 20}, 0)
	got := collectResults(c)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, wantSquares(20))
	if c.Consumed() != 20 {
		t.Fatalf("Consumed = %d", c.Consumed())
	}
}

func TestStaticOrdered(t *testing.T) {
	n := core.NewNetwork()
	st := NewStatic(n, &rangeSource{max: 24}, 4, 0)
	got := collectResults(st.Consumer)
	st.Spawn(n)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, wantSquares(24))
}

func TestDynamicOrderedWithVariedDurations(t *testing.T) {
	// Tasks complete out of order across workers; the indexed merge must
	// still present results in task order (the §5 determinacy claim).
	sleep := func(v int64) time.Duration {
		return time.Duration((v*7)%5) * time.Millisecond
	}
	n := core.NewNetwork()
	dyn := NewDynamic(n, &rangeSource{max: 40, sleepFn: sleep}, 5, 0)
	got := collectResults(dyn.Consumer)
	dyn.Spawn(n)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, wantSquares(40))
}

func TestAllThreeCompositionsAgree(t *testing.T) {
	// "the order in which results are sent to the consumer by the
	// dynamically balanced parallel composition ... is identical to that
	// for the statically balanced composition and the pipelined
	// computation" (§5).
	results := make([][]int64, 3)

	n1 := core.NewNetwork()
	c1 := Pipeline(n1, &rangeSource{max: 30}, 0)
	r1 := collectResults(c1)

	n2 := core.NewNetwork()
	st := NewStatic(n2, &rangeSource{max: 30}, 3, 0)
	r2 := collectResults(st.Consumer)
	st.Spawn(n2)

	n3 := core.NewNetwork()
	dyn := NewDynamic(n3, &rangeSource{max: 30, sleepFn: func(v int64) time.Duration {
		return time.Duration(v%3) * time.Millisecond
	}}, 3, 0)
	r3 := collectResults(dyn.Consumer)
	dyn.Spawn(n3)

	for _, n := range []*core.Network{n1, n2, n3} {
		if err := n.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	results[0], results[1], results[2] = *r1, *r2, *r3
	eq(t, results[0], wantSquares(30))
	eq(t, results[1], results[0])
	eq(t, results[2], results[0])
}

func TestDynamicFewerTasksThanWorkers(t *testing.T) {
	n := core.NewNetwork()
	dyn := NewDynamic(n, &rangeSource{max: 2}, 6, 0)
	got := collectResults(dyn.Consumer)
	dyn.Spawn(n)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, wantSquares(2))
}

func TestStaticFewerTasksThanWorkers(t *testing.T) {
	n := core.NewNetwork()
	st := NewStatic(n, &rangeSource{max: 3}, 5, 0)
	got := collectResults(st.Consumer)
	st.Spawn(n)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, wantSquares(3))
}

// terminalSource emits tasks whose results eventually raise the
// Terminal flag; the consumer must stop the network early.
type terminalSource struct{ next int64 }

func (s *terminalSource) Run() (Task, error) {
	v := s.next
	s.next++
	return &FlagTask{V: v, FlagAt: 5}, nil
}

// FlagTask's result is terminal when V == FlagAt.
type FlagTask struct{ V, FlagAt int64 }

// Run implements Task.
func (t *FlagTask) Run() (Task, error) {
	return &SquareResult{V: t.V, Sq: t.V * t.V, Last: t.V == t.FlagAt}, nil
}

func init() { gob.Register(&FlagTask{}) }

func TestTerminalResultStopsNetwork(t *testing.T) {
	// Unbounded producer; only the terminal result ends the run.
	n := core.NewNetwork()
	c := Pipeline(n, &terminalSource{}, 0)
	got := collectResults(c)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("terminal result did not stop the network")
	}
	eq(t, *got, wantSquares(6)) // results 0..5 inclusive
}

func TestTerminalStopsDynamicComposition(t *testing.T) {
	n := core.NewNetwork()
	dyn := NewDynamic(n, &terminalSource{}, 4, 0)
	got := collectResults(dyn.Consumer)
	dyn.Spawn(n)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("terminal result did not stop the dynamic network")
	}
	if len(*got) < 6 {
		t.Fatalf("got %v, want at least results 0..5", *got)
	}
	eq(t, (*got)[:6], wantSquares(6))
}

// countingWorker wraps the generic worker ports, counting tasks and
// adding a fixed lag to simulate a slow CPU.
type countingWorker struct {
	In    *core.ReadPort
	Out   *core.WritePort
	Lag   time.Duration
	Count *atomic.Int64
}

func (w *countingWorker) Step(env *core.Env) error {
	t, err := readTask(w.In)
	if err != nil {
		return err
	}
	if w.Lag > 0 {
		time.Sleep(w.Lag)
	}
	r, err := t.Run()
	if err != nil {
		return err
	}
	w.Count.Add(1)
	return writeTask(w.Out, r)
}

// TestDynamicLoadBalancesOnDemand reproduces the §5 behaviour: with one
// slow worker, the dynamic composition routes more tasks to the fast
// workers, while the static composition forces equal shares.
func TestDynamicLoadBalancesOnDemand(t *testing.T) {
	const tasks = 40
	counts := make([]atomic.Int64, 3)

	n := core.NewNetwork()
	dyn := NewDynamic(n, &rangeSource{max: tasks}, 3, 0)
	got := collectResults(dyn.Consumer)
	// Replace the generic workers: worker 0 is 20× slower.
	n.Spawn(dyn.Producer)
	n.Spawn(dyn.Direct)
	for i, w := range dyn.Workers {
		lag := time.Millisecond
		if i == 0 {
			lag = 20 * time.Millisecond
		}
		n.Spawn(&countingWorker{In: w.In, Out: w.Out, Lag: lag, Count: &counts[i]})
	}
	n.Spawn(dyn.Turnstile)
	n.Spawn(dyn.IndexCons)
	n.Spawn(dyn.Select)
	n.Spawn(dyn.Consumer)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, wantSquares(tasks))
	slow, fast1, fast2 := counts[0].Load(), counts[1].Load(), counts[2].Load()
	t.Logf("task counts: slow=%d fast=%d,%d", slow, fast1, fast2)
	if slow >= fast1 || slow >= fast2 {
		t.Fatalf("dynamic balancing failed: slow worker processed %d tasks, fast %d/%d",
			slow, fast1, fast2)
	}
}

func TestStaticForcesEqualShares(t *testing.T) {
	const tasks = 30
	counts := make([]atomic.Int64, 3)
	n := core.NewNetwork()
	st := NewStatic(n, &rangeSource{max: tasks}, 3, 0)
	got := collectResults(st.Consumer)
	n.Spawn(st.Producer)
	n.Spawn(st.Scatter)
	for i, w := range st.Workers {
		lag := time.Duration(0)
		if i == 0 {
			lag = 5 * time.Millisecond
		}
		n.Spawn(&countingWorker{In: w.In, Out: w.Out, Lag: lag, Count: &counts[i]})
	}
	n.Spawn(st.Gather)
	n.Spawn(st.Consumer)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, wantSquares(tasks))
	for i := range counts {
		if got := counts[i].Load(); got != tasks/3 {
			t.Fatalf("worker %d processed %d tasks, want %d", i, got, tasks/3)
		}
	}
}

// Property: for any worker count and task count, dynamic output equals
// the sequential reference order.
func TestDynamicOrderProperty(t *testing.T) {
	f := func(workerSeed, taskSeed uint8) bool {
		workers := int(workerSeed)%6 + 1
		tasks := int64(taskSeed) % 50
		n := core.NewNetwork()
		dyn := NewDynamic(n, &rangeSource{max: tasks, sleepFn: func(v int64) time.Duration {
			return time.Duration((v*13)%3) * 100 * time.Microsecond
		}}, workers, 0)
		got := collectResults(dyn.Consumer)
		dyn.Spawn(n)
		if n.Wait() != nil {
			return false
		}
		want := wantSquares(tasks)
		if len(*got) != len(want) {
			return false
		}
		for i := range want {
			if (*got)[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNewStaticPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewStatic(core.NewNetwork(), &rangeSource{}, 0, 0)
}

func TestNewDynamicPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDynamic(core.NewNetwork(), &rangeSource{}, 0, 0)
}

// TestDirectBadIndexDegradesCleanly checks that a retired or
// out-of-range worker index reaching Direct closes the composition
// cleanly instead of failing the process and stranding buffered tokens.
func TestDirectBadIndexDegradesCleanly(t *testing.T) {
	n := core.NewNetwork()
	tasks := n.NewChannel("t", 0)
	idx := n.NewChannel("i", 0)
	out := n.NewChannel("o", 0)
	go func() {
		w := token.NewWriter(idx.Writer())
		w.WriteInt64(0) // valid lane: the first block flows through
		w.WriteInt64(7) // out of range: a stale index after a resize
		token.NewWriter(tasks.Writer()).WriteBlock([]byte{1})
		token.NewWriter(tasks.Writer()).WriteBlock([]byte{2})
	}()
	n.Spawn(&Direct{In: tasks.Reader(), Index: idx.Reader(), Outs: []*core.WritePort{out.Writer()}})
	r := token.NewReader(out.Reader())
	b, err := r.ReadBlock()
	if err != nil || len(b) != 1 || b[0] != 1 {
		t.Fatalf("first block = %v, %v", b, err)
	}
	if _, err := r.ReadBlock(); err != io.EOF {
		t.Fatalf("after bad index: err = %v, want io.EOF (clean cascade)", err)
	}
	if err := n.Wait(); err != nil {
		t.Fatalf("bad index must degrade cleanly, got %v", err)
	}
}

// TestDynamicWorkerKilledMidStream kills one worker lane mid-run and
// checks the composition tears down cleanly — no hard error — and that
// the results delivered before the kill form an exact prefix of the
// reference output (determinacy of what was emitted).
func TestDynamicWorkerKilledMidStream(t *testing.T) {
	const tasks = 200
	n := core.NewNetwork()
	dyn := NewDynamic(n, &rangeSource{max: tasks, sleepFn: func(int64) time.Duration {
		return 200 * time.Microsecond
	}}, 3, 0)
	got := collectResults(dyn.Consumer)
	dyn.Spawn(n)
	// Kill worker 1's input after a few results have flowed: its lane
	// dies, Direct's next write to it fails, and the cascade must wind
	// the whole graph down without n.Wait reporting a failure.
	go func() {
		time.Sleep(5 * time.Millisecond)
		dyn.Workers[1].In.Close()
	}()
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker kill must cascade cleanly, got %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("network did not terminate after worker kill")
	}
	want := wantSquares(tasks)
	if len(*got) > tasks {
		t.Fatalf("emitted %d results, more than %d tasks", len(*got), tasks)
	}
	eq(t, *got, want[:len(*got)])
}

func TestFuncSource(t *testing.T) {
	calls := 0
	src := FuncSource(func() (Task, error) {
		calls++
		if calls > 3 {
			return nil, nil
		}
		return &SquareTask{V: int64(calls)}, nil
	})
	n := core.NewNetwork()
	c := Pipeline(n, src, 0)
	got := collectResults(c)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, []int64{1, 4, 9})
}
