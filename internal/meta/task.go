// Package meta implements the paper's generic framework for
// embarrassingly parallel computing (§5): active Task objects flowing
// between generic Producer, Worker, and Consumer processes, composed
// either with static load balancing (Scatter/Gather, Figure 16) or with
// dynamic, on-demand load balancing (Direct plus the indexed merge of
// Turnstile and Select, Figures 17–18).
//
// The computation is defined in the data: a producer task's Run returns
// a worker task, a worker task's Run returns a consumer task, and the
// generic processes just move tasks along channels. New applications
// implement application-specific tasks only (§5.1).
package meta

import (
	"io"
	"sync"

	"dpn/internal/core"
	"dpn/internal/obs"
	"dpn/internal/token"
)

// Task is the paper's active-object interface: Run performs this stage's
// computation and returns the task for the next stage (nil from a
// producer source means the work is exhausted).
type Task interface {
	Run() (Task, error)
}

// Terminal may be implemented by tasks to signal that the whole
// computation is complete (for example: a factor has been found). The
// Consumer process stops when a task it has run — or the task's result —
// reports Terminal() == true; its stopping then tears down the rest of
// the network through the cascade of §3.4.
type Terminal interface {
	Terminal() bool
}

// Tasks travel across channels as length-prefixed, self-contained gob
// messages, so every element stays independently decodable and channels
// remain migratable between machines (see package token). Concrete task
// types must be registered with encoding/gob by the application.

func writeTask(w *core.WritePort, t Task) error {
	return token.NewWriter(w).WriteObject(&t)
}

func readTask(r *core.ReadPort) (Task, error) {
	var t Task
	if err := token.NewReader(r).ReadObject(&t); err != nil {
		return nil, err
	}
	return t, nil
}

// stageObs caches the per-stage task counter and the trace scope of the
// network the process currently runs in. The fields are unexported, so
// gob drops them when a process migrates and the next Step re-binds
// them against the destination node's registry — task counts land on
// whichever node did the work, which is exactly the Table 2 view.
type stageObs struct {
	scope *obs.Scope
	tasks *obs.Counter
	subj  string
}

func (o *stageObs) bind(env *core.Env, stage, worker string) {
	if o.scope != nil {
		return
	}
	o.scope = env.Network().Obs()
	reg := o.scope.Registry()
	reg.Help("dpn_meta_tasks_total", "Tasks handled by the meta-framework, by stage (produced|worked|consumed) and worker tag.")
	labels := []obs.Label{obs.L("stage", stage)}
	o.subj = stage
	if worker != "" {
		labels = append(labels, obs.L("worker", worker))
		o.subj = stage + ":" + worker
	}
	o.tasks = reg.Counter("dpn_meta_tasks_total", labels...)
}

func (o *stageObs) note() {
	o.tasks.Inc()
	o.scope.Record(obs.EvTask, o.subj, "", 0)
}

// Producer repeatedly invokes Run on its Source task and writes each
// resulting worker task to Out (§5.1). It stops when Source.Run returns
// nil, when the iteration limit is reached, or when the output channel
// is poisoned by downstream termination.
type Producer struct {
	core.Iterative
	Source Task
	Out    *core.WritePort

	obs stageObs
}

// Step implements core.Stepper.
func (p *Producer) Step(env *core.Env) error {
	p.obs.bind(env, "produced", "")
	t, err := p.Source.Run()
	if err != nil {
		return err
	}
	if t == nil {
		return io.EOF
	}
	if err := writeTask(p.Out, t); err != nil {
		return err
	}
	p.obs.note()
	return nil
}

// Worker reads a task, runs it, and writes the result (§5.1). The same
// worker executes any application's tasks; workers are what get shipped
// to remote compute servers.
type Worker struct {
	core.Iterative
	In  *core.ReadPort
	Out *core.WritePort

	// Tag identifies the worker in the dpn_meta_tasks_total{worker=...}
	// label, making load (im)balance across workers visible (the
	// paper's Table 2 comparison of static vs dynamic balancing). It is
	// exported so it survives migration.
	Tag string

	obs stageObs
}

// Step implements core.Stepper.
func (w *Worker) Step(env *core.Env) error {
	w.obs.bind(env, "worked", w.Tag)
	t, err := readTask(w.In)
	if err != nil {
		return err
	}
	r, err := t.Run()
	if err != nil {
		return err
	}
	if err := writeTask(w.Out, r); err != nil {
		return err
	}
	w.obs.note()
	return nil
}

// Consumer reads a task, runs it, and discards the result (§5.1). If
// the task (or its result) implements Terminal and reports true, the
// consumer stops, which terminates the whole network.
type Consumer struct {
	core.Iterative
	In *core.ReadPort

	mu       sync.Mutex
	onResult func(ran Task, result Task)
	consumed int64

	obs stageObs
}

// SetOnResult installs a local observation hook invoked after each task
// runs. The hook is not serialized; it is for collection and testing on
// the machine where the consumer executes.
func (c *Consumer) SetOnResult(f func(ran Task, result Task)) {
	c.mu.Lock()
	c.onResult = f
	c.mu.Unlock()
}

// Consumed reports how many tasks the consumer has run.
func (c *Consumer) Consumed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.consumed
}

// Step implements core.Stepper.
func (c *Consumer) Step(env *core.Env) error {
	c.obs.bind(env, "consumed", "")
	t, err := readTask(c.In)
	if err != nil {
		return err
	}
	r, err := t.Run()
	if err != nil {
		return err
	}
	c.obs.note()
	c.mu.Lock()
	c.consumed++
	hook := c.onResult
	c.mu.Unlock()
	if hook != nil {
		hook(t, r)
	}
	if isTerminal(t) || isTerminal(r) {
		return io.EOF
	}
	return nil
}

func isTerminal(t Task) bool {
	if t == nil {
		return false
	}
	term, ok := t.(Terminal)
	return ok && term.Terminal()
}

// FuncSource adapts a closure to the Task interface for local producers.
// It is not serializable; use a concrete task type for producers that
// must migrate.
type FuncSource func() (Task, error)

// Run implements Task.
func (f FuncSource) Run() (Task, error) { return f() }
