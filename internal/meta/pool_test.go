package meta

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/deadlock"
	"dpn/internal/obs"
	"dpn/internal/token"
)

// waitNet waits for the network with a hang guard.
func waitNet(t *testing.T, n *core.Network) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("network did not terminate")
	}
}

// elasticRun runs tasks through an elastic pool with the given initial
// worker count, invoking during (if set) once the network is live, and
// returns the consumer's ordered results.
func elasticRun(t *testing.T, tasks int64, workers int, cfg PoolConfig, during func(e *Elastic)) []int64 {
	t.Helper()
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks, sleepFn: func(v int64) time.Duration {
		return time.Duration((v*7)%5) * 100 * time.Microsecond
	}}, workers, 0, cfg)
	got := collectResults(e.Consumer)
	e.Spawn(n)
	if during != nil {
		go during(e)
	}
	waitNet(t, n)
	return *got
}

// TestPoolMatchesReference checks the baseline determinacy claim: a
// fixed elastic pool produces the same ordered output as the sequential
// pipeline.
func TestPoolMatchesReference(t *testing.T) {
	got := elasticRun(t, 50, 3, PoolConfig{}, nil)
	eq(t, got, wantSquares(50))
}

// TestPoolJoinMidRun grows the pool from one lane to three while the
// run is in flight: the merged output must be byte-identical to the
// fixed-pool run.
func TestPoolJoinMidRun(t *testing.T) {
	const tasks = 120
	got := elasticRun(t, tasks, 1, PoolConfig{}, func(e *Elastic) {
		time.Sleep(2 * time.Millisecond)
		e.Pool.AddWorker("late1")
		time.Sleep(2 * time.Millisecond)
		e.Pool.AddWorker("late2")
	})
	eq(t, got, wantSquares(tasks))
}

// TestPoolRetireMidRun shrinks the pool mid-run: the retired lane
// finishes its in-flight task, drains out, and the survivors complete
// the work — output unchanged.
func TestPoolRetireMidRun(t *testing.T) {
	const tasks = 120
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks, sleepFn: func(int64) time.Duration {
		return 100 * time.Microsecond
	}}, 0, 0, PoolConfig{})
	ids := make([]int, 3)
	for i := range ids {
		ids[i], _ = e.Pool.AddWorker("w" + strconv.Itoa(i))
	}
	got := collectResults(e.Consumer)
	e.Spawn(n)
	go func() {
		time.Sleep(3 * time.Millisecond)
		e.Pool.Retire(ids[1])
	}()
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))
	if live := e.Pool.LiveLanes(); live > 2 {
		t.Fatalf("retired lane still live: %d lanes", live)
	}
}

// killableLane adds a lane whose worker can be killed from the test by
// closing its task-channel reader: the worker observes end of input,
// its lane dies, and the pool must re-dispatch whatever it still held.
func killableLane(e *Elastic, tag string) (int, *core.ReadPort) {
	var in *core.ReadPort
	id := e.Pool.AddLane(tag, func(r *core.ReadPort, w *core.WritePort) {
		in = r
		e.Pool.net.Spawn(&Worker{In: r, Out: w, Tag: tag})
	})
	return id, in
}

// decodeTaskBlock decodes a task from the payload of one length-prefixed
// task block (the bytes writeTask framed).
func decodeTaskBlock(b []byte) (Task, error) {
	var t Task
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&t); err != nil {
		return nil, err
	}
	return t, nil
}

// TestPoolKillMidRun kills one of three lanes mid-run (its transport
// drops, as when a compute server dies). The pool re-dispatches the
// lane's in-flight tasks and the output stays byte-identical.
func TestPoolKillMidRun(t *testing.T) {
	const tasks = 150
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks, sleepFn: func(int64) time.Duration {
		return 100 * time.Microsecond
	}}, 2, 0, PoolConfig{})
	_, victim := killableLane(e, "victim")
	got := collectResults(e.Consumer)
	e.Spawn(n)
	go func() {
		time.Sleep(3 * time.Millisecond)
		victim.Close()
	}()
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))
	reg := n.Obs().Registry()
	if reg.Counter("dpn_pool_emitted_total").Value() != tasks {
		t.Fatalf("emitted = %d, want %d", reg.Counter("dpn_pool_emitted_total").Value(), tasks)
	}
}

// stickyProc is a lane body that takes one task hostage: it reads a
// block, then blocks until released; after release it (optionally)
// computes and returns the result late — exercising the duplicate-drop
// path when the task was re-dispatched in the meantime.
type stickyProc struct {
	In      *core.ReadPort
	Out     *core.WritePort
	Release chan struct{}
	Answer  bool // compute the hostage task after release
}

func (p *stickyProc) Run(env *core.Env) error {
	r := token.NewReader(p.In)
	b, err := r.ReadBlockBuf(nil)
	if err != nil {
		return err
	}
	<-p.Release
	if p.Answer {
		t, err := decodeTaskBlock(b)
		if err != nil {
			return err
		}
		res, err := t.Run()
		if err != nil {
			return err
		}
		if err := writeTask(p.Out, res); err != nil {
			return err
		}
	}
	return nil
}

// TestPoolStragglerRedispatch holds one task hostage on a stuck lane;
// the straggler deadline must re-dispatch it to the healthy lane so the
// run completes with the exact reference output.
func TestPoolStragglerRedispatch(t *testing.T) {
	const tasks = 40
	release := make(chan struct{})
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks}, 1, 0, PoolConfig{
		StragglerDeadline: 5 * time.Millisecond,
	})
	e.Pool.AddLane("stuck", func(r *core.ReadPort, w *core.WritePort) {
		n.Spawn(&stickyProc{In: r, Out: w, Release: release})
	})
	// Collect ordered results; once the healthy lane has covered all the
	// work — including the re-dispatched hostage — release the stuck
	// lane so the network can wind down.
	var got []int64
	released := false
	e.Consumer.SetOnResult(func(ran, _ Task) {
		if r, ok := ran.(*SquareResult); ok {
			got = append(got, r.Sq)
		}
		if len(got) == tasks && !released {
			released = true
			close(release)
		}
	})
	e.Spawn(n)
	waitNet(t, n)
	eq(t, got, wantSquares(tasks))
	reg := n.Obs().Registry()
	if reg.Counter("dpn_pool_stragglers_total").Value() == 0 {
		t.Fatal("no straggler re-dispatch recorded")
	}
}

// TestPoolMarkLostRedispatchAndDedup marks the stuck lane lost (the
// deadlock coordinator's StatusPeerLost path), forcing immediate
// re-dispatch; the lane then turns out to be alive and answers late.
// The duplicate must be dropped and the output must stay exact.
func TestPoolMarkLostRedispatchAndDedup(t *testing.T) {
	const tasks = 40
	release := make(chan struct{})
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks}, 1, 0, PoolConfig{})
	stuckID := e.Pool.AddLane("flaky", func(r *core.ReadPort, w *core.WritePort) {
		n.Spawn(&stickyProc{In: r, Out: w, Release: release, Answer: true})
	})
	got := collectResults(e.Consumer)
	e.Spawn(n)
	go func() {
		time.Sleep(3 * time.Millisecond)
		e.Pool.MarkLost(stuckID)
		time.Sleep(2 * time.Millisecond)
		close(release) // the "lost" lane answers after all
	}()
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))
}

// TestPoolElasticEqualsFixed is the acceptance-criteria determinacy
// check: a run with joins, a leave, and a kill produces output
// byte-identical to a fixed-pool run of the same tasks.
func TestPoolElasticEqualsFixed(t *testing.T) {
	const tasks = 200
	fixed := elasticRun(t, tasks, 3, PoolConfig{}, nil)

	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks, sleepFn: func(v int64) time.Duration {
		return time.Duration(v%3) * 100 * time.Microsecond
	}}, 1, 0, PoolConfig{})
	_, victim := killableLane(e, "doomed")
	got := collectResults(e.Consumer)
	e.Spawn(n)
	go func() {
		time.Sleep(2 * time.Millisecond)
		id, _ := e.Pool.AddWorker("joiner")
		time.Sleep(2 * time.Millisecond)
		victim.Close() // kill
		e.Pool.AddWorker("joiner2")
		time.Sleep(2 * time.Millisecond)
		e.Pool.Retire(id) // leave
	}()
	waitNet(t, n)
	eq(t, *got, fixed)
	eq(t, *got, wantSquares(tasks))
}

// downPeer is a deadlock.Peer that never answers — the node hosting a
// worker lane has dropped off the network.
type downPeer struct{}

func (downPeer) DeadlockStatus() (deadlock.NodeStatus, error) {
	return deadlock.NodeStatus{}, errors.New("peer down")
}

func (downPeer) GrowChannel(string, int) (int, error) { return 0, errors.New("peer down") }

// TestPoolCoordinatorPeerLostRedispatch wires PR 2's resilience signal
// into scheduling: the deadlock coordinator reports StatusPeerLost for
// the node hosting the stuck lane, a Subscribe hook marks that lane
// lost, and the pool re-dispatches its hostage task so the run
// completes with the exact reference output.
func TestPoolCoordinatorPeerLostRedispatch(t *testing.T) {
	const tasks = 40
	release := make(chan struct{})
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks}, 1, 0, PoolConfig{})
	stuckID := e.Pool.AddLane("remote", func(r *core.ReadPort, w *core.WritePort) {
		n.Spawn(&stickyProc{In: r, Out: w, Release: release})
	})

	// The coordinator polls the (gone) peer hosting the "remote" lane;
	// after the failure streak it reports StatusPeerLost and the
	// subscription turns the resilience signal into a scheduling action.
	coord := deadlock.NewCoordinator(downPeer{})
	coord.Poll = time.Millisecond
	coord.PeerFailureLimit = 3
	coord.Subscribe(func(ev deadlock.Event) {
		if ev.Status == deadlock.StatusPeerLost {
			e.Pool.MarkLost(stuckID)
		}
	})

	var got []int64
	released := false
	e.Consumer.SetOnResult(func(ran, _ Task) {
		if r, ok := ran.(*SquareResult); ok {
			got = append(got, r.Sq)
		}
		if len(got) == tasks && !released {
			released = true
			close(release)
		}
	})
	e.Spawn(n)
	coord.Start()
	defer coord.Stop()
	waitNet(t, n)
	eq(t, got, wantSquares(tasks))
	if v := n.Obs().Registry().Counter("dpn_pool_lost_total").Value(); v != 1 {
		t.Fatalf("dpn_pool_lost_total = %d, want 1", v)
	}
}

// chaosPoolSeed follows the repo's chaos idiom: random by default,
// pinned via CHAOS_SEED for replay.
func chaosPoolSeed(t *testing.T) int64 {
	t.Helper()
	seed := time.Now().UnixNano()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d", seed)
	return seed
}

// TestPoolChaosElasticDeterminacy drives a seeded random schedule of
// joins, retirements, and kills against the pool and checks the merged
// output never deviates from the reference — determinacy under elastic
// chaos.
func TestPoolChaosElasticDeterminacy(t *testing.T) {
	seed := chaosPoolSeed(t)
	rng := rand.New(rand.NewSource(seed))
	const tasks = 300

	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks, sleepFn: func(v int64) time.Duration {
		return time.Duration(v%4) * 50 * time.Microsecond
	}}, 1, 0, PoolConfig{StragglerDeadline: 20 * time.Millisecond})
	type lane struct {
		id int
		in *core.ReadPort
	}
	var lanes []lane
	for i := 0; i < 2; i++ {
		id, in := killableLane(e, "k"+strconv.Itoa(i))
		lanes = append(lanes, lane{id, in})
	}
	got := collectResults(e.Consumer)
	e.Spawn(n)
	go func() {
		for op := 0; op < 12; op++ {
			time.Sleep(time.Duration(rng.Intn(3)+1) * time.Millisecond)
			switch rng.Intn(3) {
			case 0:
				id, in := killableLane(e, "c"+strconv.Itoa(op))
				lanes = append(lanes, lane{id, in})
			case 1:
				if len(lanes) > 0 {
					i := rng.Intn(len(lanes))
					e.Pool.Retire(lanes[i].id)
					lanes = append(lanes[:i], lanes[i+1:]...)
				}
			case 2:
				if len(lanes) > 0 {
					i := rng.Intn(len(lanes))
					lanes[i].in.Close()
					lanes = append(lanes[:i], lanes[i+1:]...)
				}
			}
		}
	}()
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))
}

// TestPoolTerminalStopsRun checks the Terminal path through the pool:
// when the consumer stops the network early, the pool's output write
// fails and the whole composition cascades closed without error.
func TestPoolTerminalStopsRun(t *testing.T) {
	n := core.NewNetwork()
	pw := n.NewChannel("tasks", 0)
	sc := n.NewChannel("ordered", 0)
	pool := NewPool(n, PoolConfig{In: pw.Reader(), Out: sc.Writer()})
	pool.AddWorker("w0")
	pool.AddWorker("w1")
	n.Spawn(&Producer{Source: &terminalSource{}, Out: pw.Writer()})
	n.Spawn(pool)
	cons := &Consumer{In: sc.Reader()}
	got := collectResults(cons)
	n.Spawn(cons)
	waitNet(t, n)
	if len(*got) < 6 {
		t.Fatalf("got %v, want at least results 0..5", *got)
	}
	eq(t, (*got)[:6], wantSquares(6))
}

// TestPoolMetricsAccounting checks the dpn_pool_* accounting plane: the
// per-lane dispatch counters must sum to at least the task count, the
// emitted counter must equal it exactly, and join/leave balance out.
func TestPoolMetricsAccounting(t *testing.T) {
	const tasks = 60
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks}, 2, 0, PoolConfig{})
	got := collectResults(e.Consumer)
	e.Spawn(n)
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))
	reg := n.Obs().Registry()
	if v := reg.Counter("dpn_pool_emitted_total").Value(); v != tasks {
		t.Fatalf("dpn_pool_emitted_total = %d, want %d", v, tasks)
	}
	if v := reg.Counter("dpn_pool_joins_total").Value(); v != 2 {
		t.Fatalf("dpn_pool_joins_total = %d, want 2", v)
	}
	if v := reg.Gauge("dpn_pool_inflight").Value(); v != 0 {
		t.Fatalf("dpn_pool_inflight = %d at end of run", v)
	}
	var dispatched int64
	for _, tag := range []string{"w0", "w1"} {
		dispatched += reg.Counter("dpn_pool_tasks_total", obs.L("lane", tag)).Value()
	}
	if dispatched < tasks {
		t.Fatalf("per-lane dispatches sum to %d, want >= %d", dispatched, tasks)
	}
}
