package meta

import "encoding/gob"

// init registers the framework's process types with gob so that
// workers (and the other generic processes) can be shipped to remote
// compute servers.
func init() {
	gob.Register(&Producer{})
	gob.Register(&Worker{})
	gob.Register(&Consumer{})
	gob.Register(&Direct{})
	gob.Register(&Turnstile{})
	gob.Register(&Select{})
}
