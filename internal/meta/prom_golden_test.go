package meta

import (
	"strings"
	"testing"

	"dpn/internal/core"
)

// TestPromGoldenLatencyFamilies pins the Prometheus exposition of the
// telemetry families this layer registers: after a real elastic run
// the scraped document must carry dpn_pool_latency_seconds as a proper
// histogram family (HELP + TYPE once, _bucket/_sum/_count expansion,
// deterministic counts) and dpn_conduit_wait_ns_total as a labelled
// counter family. Timings vary run to run, so the golden lines are the
// ones determinism guarantees: headers, family structure, and counts.
func TestPromGoldenLatencyFamilies(t *testing.T) {
	const tasks = 40
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks}, 2, 0, PoolConfig{})
	got := collectResults(e.Consumer)
	e.Spawn(n)
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))

	var b strings.Builder
	if err := n.Obs().Registry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()

	golden := []string{
		"# HELP dpn_pool_latency_seconds Task latency distribution, by stage (queue = intake to first dispatch, service = latest dispatch to result, total = intake to in-order emission).",
		"# TYPE dpn_pool_latency_seconds histogram",
		`dpn_pool_latency_seconds_bucket{stage="queue",le="+Inf"} 40`,
		`dpn_pool_latency_seconds_bucket{stage="service",le="+Inf"} 40`,
		`dpn_pool_latency_seconds_bucket{stage="total",le="+Inf"} 40`,
		`dpn_pool_latency_seconds_count{stage="queue"} 40`,
		`dpn_pool_latency_seconds_count{stage="service"} 40`,
		`dpn_pool_latency_seconds_count{stage="total"} 40`,
		"# HELP dpn_conduit_wait_ns_total Total nanoseconds blocked on the conduit, by op (read = consumer starved, write = producer throttled by a full buffer).",
		"# TYPE dpn_conduit_wait_ns_total counter",
		`dpn_conduit_wait_ns_total{channel="ordered",op="read"} `,
		`dpn_conduit_wait_ns_total{channel="ordered",op="write"} `,
	}
	for _, want := range golden {
		if !strings.Contains(doc, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, family := range []string{"dpn_pool_latency_seconds", "dpn_conduit_wait_ns_total"} {
		if c := strings.Count(doc, "# TYPE "+family+" "); c != 1 {
			t.Errorf("# TYPE %s appears %d times, want 1", family, c)
		}
	}
	// Each stage's histogram must expose exactly one _sum series.
	if c := strings.Count(doc, "dpn_pool_latency_seconds_sum{"); c != 3 {
		t.Errorf("dpn_pool_latency_seconds_sum series = %d, want 3", c)
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", doc)
	}
}
