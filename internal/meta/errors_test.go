package meta

import (
	"encoding/gob"
	"errors"
	"strings"
	"testing"
	"time"

	"dpn/internal/core"
)

// FailingTask errors when run; worker failures must surface as process
// failures (not silent termination) and still tear the network down.
type FailingTask struct{ Msg string }

// Run implements Task.
func (f *FailingTask) Run() (Task, error) { return nil, errors.New(f.Msg) }

func init() { gob.Register(&FailingTask{}) }

type failingSource struct{ emitted bool }

func (s *failingSource) Run() (Task, error) {
	if s.emitted {
		return nil, nil
	}
	s.emitted = true
	return &FailingTask{Msg: "task exploded"}, nil
}

func TestWorkerTaskFailurePropagates(t *testing.T) {
	n := core.NewNetwork()
	Pipeline(n, &failingSource{}, 0)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker failure swallowed")
		}
		if !strings.Contains(err.Error(), "task exploded") {
			t.Fatalf("wrong error: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("network did not terminate after worker failure")
	}
}

type failingProducerSource struct{}

func (s *failingProducerSource) Run() (Task, error) {
	return nil, errors.New("producer source broke")
}

func TestProducerSourceFailurePropagates(t *testing.T) {
	n := core.NewNetwork()
	Pipeline(n, &failingProducerSource{}, 0)
	err := n.Wait()
	if err == nil || !strings.Contains(err.Error(), "producer source broke") {
		t.Fatalf("got %v", err)
	}
}

// A consumer task that fails while running must also be reported.
type failingConsumerResult struct{}

func (f *failingConsumerResult) Run() (Task, error) { return nil, errors.New("consumer choke") }

type okThenConsumerFail struct{ done bool }

func (s *okThenConsumerFail) Run() (Task, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	return &passTask{}, nil
}

// passTask's result fails when the consumer runs it.
type passTask struct{}

func (p *passTask) Run() (Task, error) { return &failingConsumerResult{}, nil }

func init() {
	gob.Register(&passTask{})
	gob.Register(&failingConsumerResult{})
}

func TestConsumerTaskFailurePropagates(t *testing.T) {
	n := core.NewNetwork()
	Pipeline(n, &okThenConsumerFail{}, 0)
	err := n.Wait()
	if err == nil || !strings.Contains(err.Error(), "consumer choke") {
		t.Fatalf("got %v", err)
	}
}

func TestDynamicZeroTasks(t *testing.T) {
	n := core.NewNetwork()
	dyn := NewDynamic(n, &rangeSource{max: 0}, 3, 0)
	got := collectResults(dyn.Consumer)
	dyn.Spawn(n)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("empty dynamic composition did not terminate")
	}
	if len(*got) != 0 {
		t.Fatalf("got %v", *got)
	}
}

func TestStaticZeroTasks(t *testing.T) {
	n := core.NewNetwork()
	st := NewStatic(n, &rangeSource{max: 0}, 3, 0)
	got := collectResults(st.Consumer)
	st.Spawn(n)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("empty static composition did not terminate")
	}
	if len(*got) != 0 {
		t.Fatalf("got %v", *got)
	}
}

func TestSingleTaskSingleWorkerDynamic(t *testing.T) {
	n := core.NewNetwork()
	dyn := NewDynamic(n, &rangeSource{max: 1}, 1, 0)
	got := collectResults(dyn.Consumer)
	dyn.Spawn(n)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eq(t, *got, []int64{0})
}

func TestConsumedCount(t *testing.T) {
	n := core.NewNetwork()
	c := Pipeline(n, &rangeSource{max: 7}, 0)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Consumed() != 7 {
		t.Fatalf("Consumed = %d", c.Consumed())
	}
}
