package meta

import (
	"fmt"

	"dpn/internal/core"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

// Pipeline wires the simple Producer→Worker→Consumer pipeline of
// Figure 1 and returns the consumer for observation. source produces
// the work; capacity sets channel buffer sizes (0 = network default).
func Pipeline(n *core.Network, source Task, capacity int) *Consumer {
	pw := n.NewChannel("tasks", capacity)
	wc := n.NewChannel("results", capacity)
	n.Spawn(&Producer{Source: source, Out: pw.Writer()})
	n.Spawn(&Worker{In: pw.Reader(), Out: wc.Writer()})
	consumer := &Consumer{In: wc.Reader()}
	n.Spawn(consumer)
	return consumer
}

// Static describes the statically balanced parallel composition of
// Figure 16 before it is spawned: a Scatter distributing equal numbers
// of tasks to the workers and a Gather collecting results in the same
// round-robin order.
type Static struct {
	Scatter  *proclib.Scatter
	Workers  []*Worker
	Gather   *proclib.Gather
	Consumer *Consumer
	Producer *Producer
}

// Spawn starts every process in the composition.
func (s *Static) Spawn(n *core.Network) {
	n.Spawn(s.Producer)
	n.Spawn(s.Scatter)
	for _, w := range s.Workers {
		n.Spawn(w)
	}
	n.Spawn(s.Gather)
	n.Spawn(s.Consumer)
}

// NewStatic builds (without spawning) the static composition with the
// given worker count. Exposing the built processes lets callers ship
// the workers to remote compute servers before spawning the rest.
func NewStatic(n *core.Network, source Task, workers, capacity int) *Static {
	if workers < 1 {
		panic("meta: NewStatic requires at least one worker")
	}
	pw := n.NewChannel("tasks", capacity)
	wc := n.NewChannel("results", capacity)
	st := &Static{
		Producer: &Producer{Source: source, Out: pw.Writer()},
		Scatter:  &proclib.Scatter{In: pw.Reader()},
		Gather:   &proclib.Gather{Out: wc.Writer()},
		Consumer: &Consumer{In: wc.Reader()},
	}
	for i := 0; i < workers; i++ {
		tw := n.NewChannel(fmt.Sprintf("task%d", i), capacity)
		wt := n.NewChannel(fmt.Sprintf("result%d", i), capacity)
		st.Scatter.Outs = append(st.Scatter.Outs, tw.Writer())
		st.Gather.Ins = append(st.Gather.Ins, wt.Reader())
		st.Workers = append(st.Workers, &Worker{In: tw.Reader(), Out: wt.Writer(), Tag: fmt.Sprintf("w%d", i)})
	}
	return st
}

// Elastic describes the runtime-resizable composition: the Pool plays
// the roles of Direct, Turnstile and Select at once, over a lane set
// that can grow and shrink while the run is in flight (Pool.AddWorker,
// Pool.Retire, Pool.MarkLost). Its merged output is byte-identical to
// the Dynamic and Static compositions' (§5 determinacy, preserved by
// the pool's sequence-ordered merge).
type Elastic struct {
	Producer *Producer
	Pool     *Pool
	Consumer *Consumer
}

// Spawn starts every process in the composition.
func (e *Elastic) Spawn(n *core.Network) {
	n.Spawn(e.Producer)
	n.Spawn(e.Pool)
	n.Spawn(e.Consumer)
}

// NewElastic builds (without spawning) the elastic composition with the
// given initial worker count — zero is legal: the pool waits for a lane
// to join. cfg.In/cfg.Out are wired by NewElastic; the remaining fields
// (MaxInFlight, StragglerDeadline, IdleFail) parameterize scheduling.
func NewElastic(n *core.Network, source Task, workers, capacity int, cfg PoolConfig) *Elastic {
	pw := n.NewChannel("tasks", capacity)   // producer → pool intake
	sc := n.NewChannel("ordered", capacity) // pool merge → consumer
	cfg.In = pw.Reader()
	cfg.Out = sc.Writer()
	if cfg.Capacity == 0 {
		cfg.Capacity = capacity
	}
	e := &Elastic{
		Producer: &Producer{Source: source, Out: pw.Writer()},
		Pool:     NewPool(n, cfg),
		Consumer: &Consumer{In: sc.Reader()},
	}
	for i := 0; i < workers; i++ {
		e.Pool.AddWorker(fmt.Sprintf("w%d", i))
	}
	return e
}

// Dynamic describes the dynamically balanced composition of Figures 17
// and 18: Direct distributes a new task to a worker for every result
// collected from that worker; the indexed merge (Turnstile + Select)
// collects results as they become available while presenting them to
// the consumer in task order.
type Dynamic struct {
	Producer  *Producer
	Direct    *Direct
	Workers   []*Worker
	Turnstile *Turnstile
	IndexCons *proclib.Cons
	Select    *Select
	Consumer  *Consumer
}

// Spawn starts every process in the composition.
func (d *Dynamic) Spawn(n *core.Network) {
	n.Spawn(d.Producer)
	n.Spawn(d.Direct)
	for _, w := range d.Workers {
		n.Spawn(w)
	}
	n.Spawn(d.Turnstile)
	n.Spawn(d.IndexCons)
	n.Spawn(d.Select)
	n.Spawn(d.Consumer)
}

// NewDynamic builds (without spawning) the dynamic composition with the
// given worker count.
func NewDynamic(n *core.Network, source Task, workers, capacity int) *Dynamic {
	if workers < 1 {
		panic("meta: NewDynamic requires at least one worker")
	}
	pw := n.NewChannel("tasks", capacity)       // producer → direct
	sc := n.NewChannel("ordered", capacity)     // select → consumer
	tPairs := n.NewChannel("tsPairs", capacity) // turnstile → select
	rawIdx := n.NewChannel("rawIdx", capacity)  // turnstile → cons
	dirIdx := n.NewChannel("dirIdx", capacity)  // cons (primed) → direct

	dyn := &Dynamic{
		Producer: &Producer{Source: source, Out: pw.Writer()},
		Direct:   &Direct{In: pw.Reader(), Index: dirIdx.Reader()},
		Turnstile: &Turnstile{
			Out:      tPairs.Writer(),
			OutIndex: rawIdx.Writer(),
		},
		Select: &Select{
			In:      tPairs.Reader(),
			Out:     sc.Writer(),
			Workers: workers,
		},
		Consumer: &Consumer{In: sc.Reader()},
	}
	// The "(n)" process of Figure 18: prime the index stream with one
	// index per worker so the first batch of tasks is distributed.
	var head []byte
	for i := 0; i < workers; i++ {
		head = token.AppendInt64(head, int64(i))
	}
	dyn.IndexCons = &proclib.Cons{Head: head, In: rawIdx.Reader(), Out: dirIdx.Writer()}
	for i := 0; i < workers; i++ {
		tw := n.NewChannel(fmt.Sprintf("task%d", i), capacity)
		wt := n.NewChannel(fmt.Sprintf("result%d", i), capacity)
		dyn.Direct.Outs = append(dyn.Direct.Outs, tw.Writer())
		dyn.Turnstile.Ins = append(dyn.Turnstile.Ins, wt.Reader())
		dyn.Workers = append(dyn.Workers, &Worker{In: tw.Reader(), Out: wt.Writer(), Tag: fmt.Sprintf("w%d", i)})
	}
	return dyn
}
