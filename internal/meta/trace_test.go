package meta

import (
	"testing"

	"dpn/internal/core"
	"dpn/internal/obs"
)

// TestPoolLatencyHistograms checks the three-stage latency plane: every
// emitted task must have passed through queue (intake → first
// dispatch), service (dispatch → result), and total (intake → in-order
// emission) observations.
func TestPoolLatencyHistograms(t *testing.T) {
	const tasks = 40
	n := core.NewNetwork()
	e := NewElastic(n, &rangeSource{max: tasks}, 2, 0, PoolConfig{})
	got := collectResults(e.Consumer)
	e.Spawn(n)
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))

	counts := map[string]int64{}
	for _, s := range n.Obs().Registry().Samples() {
		if s.Name == "dpn_pool_latency_seconds" {
			counts[s.Label("stage")] = s.Count
		}
	}
	for _, stage := range []string{"queue", "service", "total"} {
		if counts[stage] != tasks {
			t.Fatalf("dpn_pool_latency_seconds{stage=%q} count = %d, want %d (all: %v)",
				stage, counts[stage], tasks, counts)
		}
	}
}

// TestPoolTraceSampling samples every task and checks the causal span
// chain a sampled batch leaves behind: intake → dispatch → result →
// emit, all carrying the same nonzero trace ID, in that order.
func TestPoolTraceSampling(t *testing.T) {
	const tasks = 20
	n := core.NewNetwork()
	n.Obs().Tracer().Enable()
	e := NewElastic(n, &rangeSource{max: tasks}, 2, 0, PoolConfig{})
	e.Pool.SetTraceSampling(1)
	got := collectResults(e.Consumer)
	e.Spawn(n)
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))

	// Group span events by trace ID, keeping arrival order per ID.
	chains := map[int64][]obs.Event{}
	for _, ev := range n.Obs().Tracer().Events() {
		if ev.Type == obs.EvSpan {
			chains[ev.Arg] = append(chains[ev.Arg], ev)
		}
	}
	if len(chains) != tasks {
		t.Fatalf("sampled chains = %d, want %d", len(chains), tasks)
	}
	for id, evs := range chains {
		if id == 0 {
			t.Fatal("span recorded with zero trace ID")
		}
		var seq []string
		for _, ev := range evs {
			seq = append(seq, ev.Detail)
		}
		// Re-dispatch can repeat the dispatch/result hops, but the chain
		// must open with intake and close with emit.
		if seq[0] != "intake" || seq[len(seq)-1] != "emit" {
			t.Fatalf("trace %#x chain = %v, want intake … emit", id, seq)
		}
		has := func(d string) bool {
			for _, s := range seq {
				if s == d {
					return true
				}
			}
			return false
		}
		if !has("dispatch") || !has("result") {
			t.Fatalf("trace %#x chain %v missing dispatch/result", id, seq)
		}
	}
}

// TestPoolTraceSamplingEveryNth samples one task in four: the chain
// count must match the sampler's arithmetic, and unsampled tasks leave
// no spans.
func TestPoolTraceSamplingEveryNth(t *testing.T) {
	const tasks = 40
	n := core.NewNetwork()
	n.Obs().Tracer().Enable()
	e := NewElastic(n, &rangeSource{max: tasks}, 2, 0, PoolConfig{})
	e.Pool.SetTraceSampling(4)
	got := collectResults(e.Consumer)
	e.Spawn(n)
	waitNet(t, n)
	eq(t, *got, wantSquares(tasks))

	ids := map[int64]bool{}
	for _, ev := range n.Obs().Tracer().Events() {
		if ev.Type == obs.EvSpan {
			ids[ev.Arg] = true
		}
	}
	if len(ids) != tasks/4 {
		t.Fatalf("sampled %d distinct traces, want %d", len(ids), tasks/4)
	}
}
