package meta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpn/internal/conduit"
	"dpn/internal/core"
	"dpn/internal/obs"
	"dpn/internal/stream"
	"dpn/internal/token"
)

// Pool is the elastic generalization of the dynamic composition of
// Figures 17–18: a worker pool whose lanes (Direct→Worker→Select-style
// worker slots) can join and leave while the computation runs, with a
// straggler policy that re-dispatches tasks stuck on a slow or lost
// lane.
//
// The fixed composition preserves determinacy by replaying the
// turnstile's worker-index stream: the k-th occurrence of worker w
// names both w's k-th task and w's k-th result, which welds the merge
// order to a fixed index space — exactly what makes resizing the
// worker set mid-run unsound there. The pool instead numbers tasks
// with a sequence number at intake and keys the merge on it: results
// are collected as they become available (the elastic turnstile: one
// collector per lane feeding a single arrivals stream) and emitted in
// task-sequence order (the select stage, now a reorder buffer). Which
// lane computed a result no longer matters, so lanes may be added,
// retired, killed, or raced against a re-dispatched copy of their own
// task without changing one byte of the merged output: the output is
// the task stream's image under the (deterministic) task functions, in
// task order, with first-result-wins deduplication for speculative
// re-dispatch.
//
// Tasks travel as the same length-prefixed blocks the Producer writes,
// so the generic Worker — and any process with its port signature,
// local or shipped to a compute server — serves unchanged as a lane
// body. Within one lane tasks are processed in FIFO order, which is
// what lets the pool pair a lane's n-th result with the n-th sequence
// number dispatched to it without tagging the payload.
type Pool struct {
	// In carries producer tasks (length-prefixed blocks); Out receives
	// result blocks in task order. Both are closed when the pool stops,
	// cascading termination through the rest of the graph (§3.4).
	In  *core.ReadPort
	Out *core.WritePort

	cfg PoolConfig
	net *core.Network

	mu     sync.Mutex
	ops    []func()
	nextID int
	quit   chan struct{}
	ended  bool

	wake     chan struct{}
	arrivals chan poolArrival

	// state is the manager's scheduling state, confined to the Run
	// goroutine; it hangs off the Pool only so op closures (joins,
	// retires, losses) executed by the manager can reach it.
	state *poolState

	live int64 // manager-maintained live-lane count, read via LiveLanes

	// instruments, bound when Run starts.
	scope      *obs.Scope
	lanesG     *obs.Gauge
	inflightG  *obs.Gauge
	joinsC     *obs.Counter
	leavesC    *obs.Counter
	lostC      *obs.Counter
	dupC       *obs.Counter
	emittedC   *obs.Counter
	stragglerC *obs.Counter
	latQueue   *obs.Histogram // intake → first dispatch
	latService *obs.Histogram // latest dispatch → result
	latTotal   *obs.Histogram // intake → in-order emission

	// smp samples intaken tasks for causal tracing (nil = off). The
	// sampled ID rides the seqMeta and is marked onto the lane's task
	// pipe at dispatch, where the conduit/netio planes carry it across
	// the wire as a TRACE frame.
	smp atomic.Pointer[obs.Sampler]
}

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	In  *core.ReadPort
	Out *core.WritePort
	// Capacity is the buffer capacity of lane channels (0 = network
	// default).
	Capacity int
	// MaxInFlight is the per-lane dispatch credit: how many tasks a lane
	// may hold before it must return a result (default 1, the on-demand
	// scheme of Figure 17).
	MaxInFlight int
	// StragglerDeadline re-dispatches a task to another lane when its
	// current lane has held it longer than this (0 disables). The
	// original lane keeps running; whichever copy finishes first wins
	// and the loser is dropped, so speculation never changes the output.
	StragglerDeadline time.Duration
	// IdleFail aborts the pool (a process failure, not a clean close)
	// when work is pending but no live lane has existed for this long —
	// the elastic pool otherwise waits forever for a join (0 = wait).
	IdleFail time.Duration
}

// poolArrival is one message from a lane collector: a result block, or
// the lane's end of stream (err != nil).
type poolArrival struct {
	lane  int
	block []byte
	err   error
}

// poolLane is the manager-side state of one worker lane.
type poolLane struct {
	id   int
	tag  string
	feed chan []byte
	// outstanding lists the sequence numbers dispatched to this lane and
	// not yet answered, in dispatch order; FIFO lane processing pairs
	// the lane's next result with outstanding[0].
	outstanding []int64
	dead        bool // collector saw end of stream, or feeder failed
	retiring    bool // voluntary leave: no new dispatch, drain results
	suspect     bool // marked lost (peer-lost hook): no dispatch, keep FIFO
	closed      bool // feed channel closed
	tasksC      *obs.Counter
	resultsC    *obs.Counter
	// taskPipe is the lane task channel's buffer pipe; dispatch marks
	// sampled trace IDs onto it so the transport (local or netio) can
	// attribute the next chunk it moves to the sampled task.
	taskPipe *stream.Pipe
}

// seqMeta tracks one intaken task until its result is committed.
type seqMeta struct {
	block  []byte
	intake time.Time    // time the task entered the pool
	first  time.Time    // time of first dispatch (zero until then)
	at     time.Time    // time of latest dispatch
	trace  uint64       // sampled causal trace ID (0 = unsampled)
	lanes  map[int]bool // lanes currently holding this task
	queued bool
}

// errPoolStarved is returned by Run when IdleFail expires.
var errPoolStarved = errors.New("meta: pool has pending work but no live lanes")

// NewPool builds a pool over the given network. Lanes are added with
// AddWorker/AddLane — before or after the pool is spawned.
func NewPool(n *core.Network, cfg PoolConfig) *Pool {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1
	}
	return &Pool{
		In:       cfg.In,
		Out:      cfg.Out,
		cfg:      cfg,
		net:      n,
		quit:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
		arrivals: make(chan poolArrival, 16),
	}
}

// ProcessName implements core.Namer.
func (p *Pool) ProcessName() string { return "Pool" }

// SetTraceSampling turns on causal tracing for every Nth intaken task
// (0 or negative turns it off). A sampled task records span events at
// intake, dispatch, result, and emission, and its trace ID is marked
// onto the dispatched lane's task pipe so a netio transport underneath
// forwards it as a TRACE frame — the task's journey is then
// reconstructable across nodes with obs.WriteMergedTrace.
func (p *Pool) SetTraceSampling(every int) {
	p.smp.Store(obs.NewSampler(every))
}

// LiveLanes reports the number of live lanes (dispatchable or
// draining).
func (p *Pool) LiveLanes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// enqueueOp hands a closure to the manager goroutine.
func (p *Pool) enqueueOp(f func()) {
	p.mu.Lock()
	p.ops = append(p.ops, f)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// AddWorker joins a new lane running the generic Worker and returns
// the lane id and the worker's process handle (useful for migrating
// the lane to a compute server mid-run).
func (p *Pool) AddWorker(tag string) (int, *core.Proc) {
	var proc *core.Proc
	id := p.AddLane(tag, func(in *core.ReadPort, out *core.WritePort) {
		proc = p.net.Spawn(&Worker{In: in, Out: out, Tag: tag})
	})
	return id, proc
}

// AddLane joins a new lane whose worker process(es) are started by the
// start callback: it receives the lane's task reader and result writer
// and must spawn whatever consumes tasks from one and writes results
// to the other. It returns the lane id (-1 when the pool has already
// stopped).
func (p *Pool) AddLane(tag string, start func(in *core.ReadPort, out *core.WritePort)) int {
	select {
	case <-p.quit:
		return -1
	default:
	}
	p.mu.Lock()
	if p.ended {
		p.mu.Unlock()
		return -1
	}
	id := p.nextID
	p.nextID++
	p.mu.Unlock()
	if tag == "" {
		tag = fmt.Sprintf("lane%d", id)
	}
	taskCh := p.net.NewChannel(fmt.Sprintf("pool:%s:task", tag), p.cfg.Capacity)
	resultCh := p.net.NewChannel(fmt.Sprintf("pool:%s:result", tag), p.cfg.Capacity)
	ln := &poolLane{
		id:       id,
		tag:      tag,
		feed:     make(chan []byte, p.cfg.MaxInFlight),
		taskPipe: taskCh.Pipe(),
	}
	// Register with the manager before any lane goroutine can produce an
	// arrival, so every arrival finds its lane.
	p.enqueueOp(func() { p.joinLane(ln) })
	// Feeder: the single writer of the lane's task channel. Credit
	// accounting bounds the feed backlog to MaxInFlight, so manager
	// sends onto feed never block.
	go func() {
		w := token.NewWriter(taskCh.Writer())
		for b := range ln.feed {
			if err := w.WriteBlock(b); err != nil {
				// Lane transport gone (worker died / peer lost): report as
				// a lane death so outstanding work is re-dispatched even if
				// the collector is stuck.
				select {
				case p.arrivals <- poolArrival{lane: id, err: err}:
				case <-p.quit:
				}
				taskCh.Writer().Close()
				return
			}
		}
		taskCh.Writer().Close()
	}()
	// Collector: the elastic-turnstile input for this lane.
	go func() {
		defer resultCh.Reader().Close()
		r := token.NewReader(resultCh.Reader())
		for {
			b, err := r.ReadBlock()
			select {
			case p.arrivals <- poolArrival{lane: id, block: b, err: err}:
			case <-p.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	start(taskCh.Reader(), resultCh.Writer())
	return id
}

// Retire asks a lane to leave: it receives no further tasks, finishes
// the ones already handed to it, and is removed once its results have
// drained.
func (p *Pool) Retire(id int) {
	p.enqueueOp(func() { p.retireLane(id) })
}

// MarkLost reports that a lane's worker is unreachable (for example the
// deadlock coordinator observed StatusPeerLost for the node hosting
// it): the lane stops receiving tasks and its outstanding work is
// re-dispatched immediately. If the lane turns out to be alive, its
// late results are dropped as duplicates — determinacy is unaffected.
func (p *Pool) MarkLost(id int) {
	p.enqueueOp(func() { p.loseLane(id) })
}

// manager state, confined to the Run goroutine.
type poolState struct {
	lanes   map[int]*poolLane
	order   []int // live lane ids, ascending (deterministic dispatch scan)
	pending map[int64]*seqMeta
	results map[int64]poolResult
	queue   []int64
	nextSeq int64
	emit    int64
	intake  bool // intake stream still open
}

// poolResult is a committed result waiting in the reorder buffer, with
// the latency/trace context it inherited from its seqMeta.
type poolResult struct {
	block  []byte
	intake time.Time
	trace  uint64
}

func (p *Pool) joinLane(ln *poolLane) {
	st := p.state
	st.lanes[ln.id] = ln
	st.order = append(st.order, ln.id)
	sort.Ints(st.order)
	ln.tasksC = p.scope.Counter("dpn_pool_tasks_total", obs.L("lane", ln.tag))
	ln.resultsC = p.scope.Counter("dpn_pool_results_total", obs.L("lane", ln.tag))
	p.joinsC.Inc()
	p.lanesG.Add(1)
	p.setLive(1)
	p.scope.Record(obs.EvTask, "pool:"+ln.tag, "join", int64(ln.id))
}

func (p *Pool) setLive(d int64) {
	p.mu.Lock()
	p.live += d
	p.mu.Unlock()
}

func (p *Pool) retireLane(id int) {
	ln := p.state.lanes[id]
	if ln == nil || ln.dead || ln.retiring {
		return
	}
	ln.retiring = true
	p.closeFeed(ln)
	p.scope.Record(obs.EvTask, "pool:"+ln.tag, "retire", int64(id))
}

func (p *Pool) loseLane(id int) {
	st := p.state
	ln := st.lanes[id]
	if ln == nil || ln.dead || ln.suspect {
		return
	}
	ln.suspect = true
	p.lostC.Inc()
	p.closeFeed(ln)
	// Orphan its outstanding work now; keep the FIFO so late results
	// from a falsely-suspected lane still pair up (and dedup).
	for _, seq := range ln.outstanding {
		p.orphan(seq, id, "lane-lost")
	}
	p.scope.Record(obs.EvTask, "pool:"+ln.tag, "lost", int64(id))
}

func (p *Pool) closeFeed(ln *poolLane) {
	if !ln.closed {
		ln.closed = true
		close(ln.feed)
	}
}

// orphan removes lane from seq's holder set and requeues the task when
// no lane holds it anymore.
func (p *Pool) orphan(seq int64, lane int, reason string) {
	m := p.state.pending[seq]
	if m == nil {
		return
	}
	delete(m.lanes, lane)
	if len(m.lanes) == 0 && !m.queued {
		m.queued = true
		p.state.queue = append(p.state.queue, seq)
		p.scope.Counter("dpn_pool_redispatch_total", obs.L("reason", reason)).Inc()
	}
}

// laneGone handles a lane's end of stream (worker terminated, killed,
// or transport failed).
func (p *Pool) laneGone(ln *poolLane) {
	if ln.dead {
		return
	}
	ln.dead = true
	p.closeFeed(ln)
	for _, seq := range ln.outstanding {
		reason := "lane-dead"
		if ln.retiring {
			reason = "lane-retired"
		}
		p.orphan(seq, ln.id, reason)
	}
	p.inflightG.Add(int64(-len(ln.outstanding)))
	ln.outstanding = nil
	st := p.state
	for i, id := range st.order {
		if id == ln.id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
	p.lanesG.Add(-1)
	p.setLive(-1)
	if ln.retiring {
		p.leavesC.Inc()
	}
	p.scope.Record(obs.EvTask, "pool:"+ln.tag, "leave", int64(ln.id))
}

func (p *Pool) handleArrival(a poolArrival) {
	ln := p.state.lanes[a.lane]
	if ln == nil {
		return
	}
	if a.err != nil {
		// Classify the lane's end of stream through the conduit
		// catalogue: an orderly close (EOF, cascade shutdown) is a
		// normal leave, anything else — an exhausted link, an injected
		// fault — is a degrade worth counting separately. Both paths
		// re-dispatch the lane's outstanding work.
		if !conduit.IsBenignClose(a.err) {
			p.scope.Counter("dpn_pool_lane_degraded_total", obs.L("lane", ln.tag)).Inc()
			p.scope.Record(obs.EvTask, "pool:"+ln.tag, "degraded", int64(a.lane))
		}
		p.laneGone(ln)
		return
	}
	if len(ln.outstanding) == 0 {
		// A result with no dispatched task: only possible if the lane
		// body writes spontaneously. Drop it — emitting it would break
		// the sequence order.
		p.dupC.Inc()
		return
	}
	seq := ln.outstanding[0]
	ln.outstanding = ln.outstanding[1:]
	ln.resultsC.Inc()
	p.inflightG.Add(-1)
	st := p.state
	m := st.pending[seq]
	if m == nil {
		// Another lane already answered this sequence number
		// (speculative re-dispatch): first result won, drop this copy.
		p.dupC.Inc()
		return
	}
	delete(st.pending, seq)
	p.latService.Observe(time.Since(m.at).Seconds())
	if m.trace != 0 {
		p.scope.Record(obs.EvSpan, "pool:"+ln.tag, "result", int64(m.trace))
	}
	st.results[seq] = poolResult{block: a.block, intake: m.intake, trace: m.trace}
	p.scope.Record(obs.EvTask, "pool:"+ln.tag, "result", seq)
}

// dispatch hands queued tasks to lanes with free credit. A lane is
// eligible for a task unless it is leaving, suspected lost, out of
// credit, or already holds a copy of that task.
func (p *Pool) dispatch(now time.Time) {
	st := p.state
	if len(st.queue) == 0 {
		return
	}
	rest := st.queue[:0]
	for _, seq := range st.queue {
		m := st.pending[seq]
		if m == nil || !m.queued {
			continue // answered (or emitted) while waiting
		}
		target := p.pickLane(m)
		if target == nil {
			rest = append(rest, seq)
			continue
		}
		m.queued = false
		m.at = now
		if m.first.IsZero() {
			m.first = now
			p.latQueue.Observe(now.Sub(m.intake).Seconds())
		}
		m.lanes[target.id] = true
		target.outstanding = append(target.outstanding, seq)
		if m.trace != 0 {
			target.taskPipe.MarkTrace(m.trace)
			p.scope.Record(obs.EvSpan, "pool:"+target.tag, "dispatch", int64(m.trace))
		}
		target.feed <- m.block
		target.tasksC.Inc()
		p.inflightG.Add(1)
		p.scope.Record(obs.EvTask, "pool:"+target.tag, "dispatch", seq)
	}
	st.queue = rest
}

func (p *Pool) pickLane(m *seqMeta) *poolLane {
	st := p.state
	var best *poolLane
	for _, id := range st.order {
		ln := st.lanes[id]
		if ln.dead || ln.retiring || ln.suspect || ln.closed {
			continue
		}
		if len(ln.outstanding) >= p.cfg.MaxInFlight || m.lanes[ln.id] {
			continue
		}
		if best == nil || len(ln.outstanding) < len(best.outstanding) {
			best = ln
		}
	}
	return best
}

// freeCredit reports whether some lane can accept a brand-new task.
func (p *Pool) freeCredit() bool {
	st := p.state
	for _, id := range st.order {
		ln := st.lanes[id]
		if ln.dead || ln.retiring || ln.suspect || ln.closed {
			continue
		}
		if len(ln.outstanding) < p.cfg.MaxInFlight {
			return true
		}
	}
	return false
}

// freshWaiting reports whether some queued task is held by no lane —
// those must reach a worker before new intake is accepted.
func (p *Pool) freshWaiting() bool {
	st := p.state
	for _, seq := range st.queue {
		if m := st.pending[seq]; m != nil && m.queued && len(m.lanes) == 0 {
			return true
		}
	}
	return false
}

// checkStragglers queues a speculative re-dispatch for every task whose
// latest dispatch is older than the deadline.
func (p *Pool) checkStragglers(now time.Time) {
	dl := p.cfg.StragglerDeadline
	if dl <= 0 {
		return
	}
	st := p.state
	for seq, m := range st.pending {
		if m.queued || len(m.lanes) == 0 || now.Sub(m.at) < dl {
			continue
		}
		m.queued = true
		st.queue = append(st.queue, seq)
		p.stragglerC.Inc()
		p.scope.Counter("dpn_pool_redispatch_total", obs.L("reason", "straggler")).Inc()
		p.scope.Record(obs.EvTask, "pool", "straggler", seq)
	}
	// Deterministic dispatch order regardless of map iteration.
	sort.Slice(st.queue, func(i, j int) bool { return st.queue[i] < st.queue[j] })
}

// emit writes ready results to Out in sequence order.
func (p *Pool) emit(w *token.Writer) error {
	st := p.state
	for {
		r, ok := st.results[st.emit]
		if !ok {
			return nil
		}
		if err := w.WriteBlock(r.block); err != nil {
			return err
		}
		delete(st.results, st.emit)
		st.emit++
		p.emittedC.Inc()
		p.latTotal.Observe(time.Since(r.intake).Seconds())
		if r.trace != 0 {
			p.scope.Record(obs.EvSpan, "pool", "emit", int64(r.trace))
		}
	}
}

func (p *Pool) drainOps() {
	for {
		p.mu.Lock()
		ops := p.ops
		p.ops = nil
		p.mu.Unlock()
		if len(ops) == 0 {
			return
		}
		for _, f := range ops {
			f()
		}
	}
}

// bindObs creates the pool's instruments in the network scope.
func (p *Pool) bindObs(env *core.Env) {
	p.scope = env.Network().Obs()
	reg := p.scope.Registry()
	reg.Help("dpn_pool_lanes", "Live worker lanes in the elastic pool.")
	reg.Help("dpn_pool_inflight", "Tasks dispatched to a lane and not yet answered.")
	reg.Help("dpn_pool_joins_total", "Lanes that joined the pool.")
	reg.Help("dpn_pool_leaves_total", "Lanes that left the pool voluntarily (Retire).")
	reg.Help("dpn_pool_lost_total", "Lanes marked lost (MarkLost / peer-lost hook).")
	reg.Help("dpn_pool_tasks_total", "Tasks dispatched, by lane.")
	reg.Help("dpn_pool_results_total", "Results returned, by lane.")
	reg.Help("dpn_pool_redispatch_total", "Tasks re-dispatched, by reason (straggler|lane-dead|lane-retired|lane-lost).")
	reg.Help("dpn_pool_dup_results_total", "Duplicate or unpaired results dropped by the merge.")
	reg.Help("dpn_pool_emitted_total", "Results emitted in task order.")
	reg.Help("dpn_pool_lane_degraded_total", "Lanes whose stream ended with a transport degrade rather than an orderly close, by lane.")
	p.lanesG = reg.Gauge("dpn_pool_lanes")
	p.inflightG = reg.Gauge("dpn_pool_inflight")
	p.joinsC = reg.Counter("dpn_pool_joins_total")
	p.leavesC = reg.Counter("dpn_pool_leaves_total")
	p.lostC = reg.Counter("dpn_pool_lost_total")
	p.dupC = reg.Counter("dpn_pool_dup_results_total")
	p.emittedC = reg.Counter("dpn_pool_emitted_total")
	p.stragglerC = reg.Counter("dpn_pool_stragglers_total")
	reg.Help("dpn_pool_stragglers_total", "Straggler deadline expiries observed.")
	reg.Help("dpn_pool_latency_seconds", "Task latency distribution, by stage (queue = intake to first dispatch, service = latest dispatch to result, total = intake to in-order emission).")
	p.latQueue = reg.Histogram("dpn_pool_latency_seconds", nil, obs.L("stage", "queue"))
	p.latService = reg.Histogram("dpn_pool_latency_seconds", nil, obs.L("stage", "service"))
	p.latTotal = reg.Histogram("dpn_pool_latency_seconds", nil, obs.L("stage", "total"))
}

// Run implements core.Process: the pool manager.
func (p *Pool) Run(env *core.Env) error {
	p.bindObs(env)
	p.state = &poolState{
		lanes:   make(map[int]*poolLane),
		pending: make(map[int64]*seqMeta),
		results: make(map[int64]poolResult),
		intake:  true,
	}
	defer func() {
		p.mu.Lock()
		p.ended = true
		p.mu.Unlock()
		close(p.quit)
		for _, ln := range p.state.lanes {
			p.closeFeed(ln)
		}
	}()

	// Intake: reads producer tasks one block ahead (the bounded
	// lookahead that keeps on-demand semantics).
	tasks := make(chan []byte)
	go func() {
		defer close(tasks)
		r := token.NewReader(p.In)
		for {
			b, err := r.ReadBlock()
			if err != nil {
				return
			}
			select {
			case tasks <- b:
			case <-p.quit:
				return
			}
		}
	}()

	var tick *time.Ticker
	var tickC <-chan time.Time
	if p.cfg.StragglerDeadline > 0 || p.cfg.IdleFail > 0 {
		iv := p.cfg.StragglerDeadline
		if iv <= 0 || (p.cfg.IdleFail > 0 && p.cfg.IdleFail < iv) {
			iv = p.cfg.IdleFail
		}
		iv /= 4
		if iv < time.Millisecond {
			iv = time.Millisecond
		}
		tick = time.NewTicker(iv)
		tickC = tick.C
		defer tick.Stop()
	}

	outW := token.NewWriter(p.Out)
	st := p.state
	var idleSince time.Time
	for {
		p.drainOps()
		if err := p.emit(outW); err != nil {
			return err
		}
		p.dispatch(time.Now())
		if !st.intake && len(st.pending) == 0 && len(st.results) == 0 {
			return nil // every intaken task has been emitted
		}
		// Idle-fail accounting: work exists but no lane is live.
		if p.cfg.IdleFail > 0 {
			if len(st.order) == 0 && (len(st.pending) > 0 || st.intake) {
				if idleSince.IsZero() {
					idleSince = time.Now()
				}
			} else {
				idleSince = time.Time{}
			}
		}
		// Accept a new task only when a lane could take it and no
		// orphaned task is waiting (on-demand intake).
		var tasksC <-chan []byte
		if st.intake && !p.freshWaiting() && p.freeCredit() {
			tasksC = tasks
		}
		select {
		case b, ok := <-tasksC:
			if !ok {
				st.intake = false
				tasks = nil
				continue
			}
			seq := st.nextSeq
			st.nextSeq++
			m := &seqMeta{block: b, intake: time.Now(), lanes: make(map[int]bool), queued: true}
			if smp := p.smp.Load(); smp != nil {
				if id := smp.Sample(); id != 0 {
					m.trace = id
					p.scope.Record(obs.EvSpan, "pool", "intake", int64(id))
				}
			}
			st.pending[seq] = m
			st.queue = append(st.queue, seq)
		case a := <-p.arrivals:
			if st.lanes[a.lane] == nil {
				p.drainOps() // join op may still be queued
			}
			p.handleArrival(a)
		case <-p.wake:
		case now := <-tickC:
			p.checkStragglers(now)
			if p.cfg.IdleFail > 0 && !idleSince.IsZero() && now.Sub(idleSince) >= p.cfg.IdleFail {
				return errPoolStarved
			}
		}
	}
}
