package meta

import (
	"io"
	"sync"

	"dpn/internal/core"
	"dpn/internal/token"
)

// Direct distributes task blocks to workers on demand (Figure 17): for
// every index read from Index, the next task from In is sent to that
// worker's channel. The index stream is primed with one index per
// worker (the "(n)" initial sequence of Figure 18) and extended by the
// Turnstile with the index of each completed result, so a worker
// receives a new task exactly when it finishes one.
type Direct struct {
	core.Iterative
	In    *core.ReadPort
	Index *core.ReadPort
	Outs  []*core.WritePort
}

// Step implements core.Stepper.
func (d *Direct) Step(env *core.Env) error {
	idx, err := token.NewReader(d.Index).ReadInt64()
	if err != nil {
		return err
	}
	b, err := token.NewReader(d.In).ReadBlock()
	if err != nil {
		return err
	}
	if idx < 0 || int(idx) >= len(d.Outs) {
		// A retired or out-of-range worker index: the index stream no
		// longer matches the lane set (a worker was killed, or a stale
		// index survived a pool resize). Failing hard here used to strand
		// every buffered token in the graph; instead degrade into a clean
		// cascading close (§3.4) — the ports close, the producer observes
		// ErrReadClosed, the workers drain out, and the Select emits what
		// was actually computed.
		return io.EOF
	}
	return token.NewWriter(d.Outs[idx]).WriteBlock(b)
}

// Turnstile forwards result blocks from its inputs in the order they
// become available (Figure 18). Each result is written to Out as an
// (index, block) pair so the Select process knows which worker produced
// it; the bare index is also written to OutIndex, which — primed by a
// Cons process with the initial sequence "(n)" — drives the Direct
// process's on-demand task distribution.
//
// Turnstile is the single deliberately nondeterministic process in the
// framework; because Direct and Select both follow its index stream,
// the composition's input-output relation is nevertheless determinate —
// the MetaDynamic schema is "well behaved" (§5).
//
// Failure of the OutIndex path is tolerated: once the producer's work
// is exhausted, the task-distribution side of the graph tears itself
// down (§3.4) while results are still in flight; the turnstile keeps
// forwarding pairs to the Select until its own inputs end.
type Turnstile struct {
	Ins      []*core.ReadPort
	Out      *core.WritePort
	OutIndex *core.WritePort
}

type arrival struct {
	idx   int64
	block []byte
}

// Run implements core.Process.
func (t *Turnstile) Run(env *core.Env) error {
	arrivals := make(chan arrival)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(len(t.Ins))
	for i, in := range t.Ins {
		go func(i int64, in *core.ReadPort) {
			defer wg.Done()
			r := token.NewReader(in)
			for {
				b, err := r.ReadBlock()
				if err != nil {
					return
				}
				select {
				case arrivals <- arrival{i, b}:
				case <-stop:
					return
				}
			}
		}(int64(i), in)
	}
	go func() {
		wg.Wait()
		close(arrivals)
	}()
	defer close(stop)

	pairW := token.NewWriter(t.Out)
	idxOpen := t.OutIndex != nil
	for a := range arrivals {
		if err := pairW.WriteInt64(a.idx); err != nil {
			return err
		}
		if err := pairW.WriteBlock(a.block); err != nil {
			return err
		}
		if idxOpen {
			if err := token.NewWriter(t.OutIndex).WriteInt64(a.idx); err != nil {
				// Distribution path is gone (end of work); results keep
				// flowing to the Select.
				t.OutIndex.Close()
				idxOpen = false
			}
		}
	}
	return nil
}

// Select restores task order (Figure 18): results arrive from the
// Turnstile in completion order as (index, block) pairs naming the
// worker that produced each one. Because the same index stream (primed
// with one initial index per worker) also drives the Direct process,
// the k-th occurrence of worker w in the index stream identifies both
// w's k-th task and w's k-th result. Select therefore replays the
// distribution order: it buffers early arrivals and emits each task's
// result in the order the tasks were produced — making the dynamically
// balanced composition's output identical to the static composition's
// and the single-worker pipeline's (§5).
type Select struct {
	In  *core.ReadPort
	Out *core.WritePort
	// Workers is the number of workers; the need-sequence is primed
	// with 0..Workers-1, mirroring the initial index sequence fed to
	// Direct.
	Workers int
}

// Run implements core.Process.
func (s *Select) Run(env *core.Env) error {
	need := make([]int64, 0, s.Workers*2)
	for i := 0; i < s.Workers; i++ {
		need = append(need, int64(i))
	}
	pending := make(map[int64][][]byte)
	pairR := token.NewReader(s.In)
	outW := token.NewWriter(s.Out)
	for len(need) > 0 {
		w := need[0]
		if q := pending[w]; len(q) > 0 {
			b := q[0]
			pending[w] = q[1:]
			need = need[1:]
			if err := outW.WriteBlock(b); err != nil {
				return err
			}
			continue
		}
		idx, err := pairR.ReadInt64()
		if err != nil {
			if core.IsTermination(err) {
				// No more arrivals; the remaining needs correspond to
				// tasks that were never produced.
				return nil
			}
			return err
		}
		b, err := pairR.ReadBlock()
		if err != nil {
			return err
		}
		pending[idx] = append(pending[idx], b)
		// The turnstile index also directs the next task to worker idx,
		// so that worker's next result is a future need.
		need = append(need, idx)
	}
	return nil
}
