package workload

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dpn/internal/core"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

// The graph-shape fuzzer: seed-replayable random DAG topologies —
// varying source counts, fan-in (Add), fan-out (Duplicate), depth
// (Scale/PassThrough layers), and per-channel buffer bounds — run to
// quiescence and checked against a pure-Go evaluation of the same
// plan. Every operator is length-preserving and the final Interleave
// reads to EOF, so termination is a single downward cascade and the
// output is one deterministic sequence. Channel capacities are
// randomized but never below the full stream size, which rules out
// artificial (buffer-induced) deadlock by construction: quiescence is
// guaranteed, only the computed sequence is at stake.

const (
	opScale = iota
	opPass
	opAdd
	opDup
)

// fuzzOp transforms the ordered working set of streams: Scale/Pass
// replace stream A; Add folds streams A and B (A < B) into one; Dup
// replaces A with two copies. Cap is the operator's output-channel
// capacity in bytes.
type fuzzOp struct {
	Kind   int
	A, B   int
	Factor int64
	// Cap (and Cap2 for Dup's second branch) are output-channel
	// capacities in bytes.
	Cap, Cap2 int
}

// FuzzPlan is one seeded topology. Plans are value-replayable: the
// same seed regenerates the same plan, graph, and oracle.
type FuzzPlan struct {
	Seed    int64
	Len     int64 // every stream carries exactly Len elements
	Sources int
	Ops     []fuzzOp
}

// NewFuzzPlan derives a plan from the seed.
func NewFuzzPlan(seed int64) *FuzzPlan {
	r := rand.New(rand.NewSource(seed))
	p := &FuzzPlan{
		Seed:    seed,
		Len:     48 + r.Int63n(80),
		Sources: 2 + r.Intn(3),
	}
	minCap := int(p.Len * 8)
	streams := p.Sources
	depth := 4 + r.Intn(6)
	for i := 0; i < depth; i++ {
		op := fuzzOp{Cap: minCap * (1 + r.Intn(4))}
		switch k := r.Intn(4); {
		case k == opAdd && streams >= 2:
			op.Kind = opAdd
			op.A = r.Intn(streams - 1)
			op.B = op.A + 1 + r.Intn(streams-op.A-1)
			streams--
		case k == opDup && streams < 8:
			op.Kind = opDup
			op.A = r.Intn(streams)
			op.Cap2 = minCap * (1 + r.Intn(4))
			streams++
		case k == opScale:
			op.Kind = opScale
			op.A = r.Intn(streams)
			op.Factor = 2 + r.Int63n(7)
		default:
			op.Kind = opPass
			op.A = r.Intn(streams)
		}
		p.Ops = append(p.Ops, op)
	}
	return p
}

// fuzzVal is element j of source stream i under the plan seed.
func fuzzVal(seed int64, i, j int64) int64 {
	return int64(splitmix(uint64(seed)^uint64(i)<<32^uint64(j)) % 1_000_003)
}

// FuzzSource emits the seeded stream for one source index.
type FuzzSource struct {
	Seed  int64
	Idx   int64
	N     int64
	Every time.Duration
	Out   *core.WritePort

	j int64
}

// Step implements core.Stepper.
func (s *FuzzSource) Step(env *core.Env) error {
	if s.j >= s.N {
		return io.EOF
	}
	if s.Every > 0 {
		time.Sleep(s.Every)
	}
	v := fuzzVal(s.Seed, s.Idx, s.j)
	s.j++
	return token.NewWriter(s.Out).WriteInt64(v)
}

// Interleave round-robins one element from each input into Out. With
// equal-length inputs the first EOF arrives on input 0 at a round
// boundary, so the output is exactly the row-major interleaving.
type Interleave struct {
	Ins []*core.ReadPort
	Out *core.WritePort

	next int
}

// Step implements core.Stepper.
func (il *Interleave) Step(env *core.Env) error {
	v, err := token.NewReader(il.Ins[il.next]).ReadInt64()
	if err != nil {
		return err
	}
	il.next = (il.next + 1) % len(il.Ins)
	return token.NewWriter(il.Out).WriteInt64(v)
}

func init() {
	gob.Register(&FuzzSource{})
	gob.Register(&Interleave{})
}

// Scenario wraps the plan as a self-checking workload scenario. The
// cut is the interleave plus collector, so under TCP every surviving
// stream crosses the wire as its own channel (fan-in rendezvous).
func (p *FuzzPlan) Scenario() Scenario {
	return Scenario{
		Name: fmt.Sprintf("fuzz-%d", p.Seed),
		Build: func(seed int64, pace time.Duration, n *core.Network) *Graph {
			minCap := int(p.Len * 8)
			streams := make([]*core.ReadPort, 0, 8)
			for i := 0; i < p.Sources; i++ {
				ch := n.NewChannel(fmt.Sprintf("wl.fz.src%d", i), minCap*2)
				n.Spawn(&FuzzSource{Seed: p.Seed, Idx: int64(i), N: p.Len, Every: pace, Out: ch.Writer()})
				streams = append(streams, ch.Reader())
			}
			for oi, op := range p.Ops {
				mk := func(capBytes int) *core.Channel {
					return n.NewChannel(fmt.Sprintf("wl.fz.op%d", oi), capBytes)
				}
				switch op.Kind {
				case opScale:
					out := mk(op.Cap)
					n.Spawn(&proclib.Scale{Factor: op.Factor, In: streams[op.A], Out: out.Writer()})
					streams[op.A] = out.Reader()
				case opPass:
					out := mk(op.Cap)
					n.Spawn(&proclib.PassThrough{In: streams[op.A], Out: out.Writer()})
					streams[op.A] = out.Reader()
				case opAdd:
					out := mk(op.Cap)
					n.Spawn(&proclib.Add{InA: streams[op.A], InB: streams[op.B], Out: out.Writer()})
					streams[op.A] = out.Reader()
					streams = append(streams[:op.B], streams[op.B+1:]...)
				case opDup:
					o1, o2 := mk(op.Cap), n.NewChannel(fmt.Sprintf("wl.fz.op%db", oi), op.Cap2)
					n.Spawn(&proclib.Duplicate{In: streams[op.A], Outs: []*core.WritePort{o1.Writer(), o2.Writer()}})
					streams[op.A] = o1.Reader()
					streams = append(streams, o2.Reader())
				}
			}
			out := n.NewChannel("wl.fz.out", minCap*len(streams)+4096)
			il := &Interleave{Ins: streams, Out: out.Writer()}
			tail := &Collector{In: out.Reader()}
			return &Graph{Cut: []any{il, tail}, Tail: tail}
		},
		Oracle: func(seed int64) []int64 { return p.Eval() },
	}
}

// Eval computes the plan's expected output sequentially.
func (p *FuzzPlan) Eval() []int64 {
	streams := make([][]int64, 0, 8)
	for i := 0; i < p.Sources; i++ {
		s := make([]int64, p.Len)
		for j := range s {
			s[j] = fuzzVal(p.Seed, int64(i), int64(j))
		}
		streams = append(streams, s)
	}
	for _, op := range p.Ops {
		switch op.Kind {
		case opScale:
			s := streams[op.A]
			out := make([]int64, len(s))
			for j, v := range s {
				out[j] = v * op.Factor
			}
			streams[op.A] = out
		case opPass:
			// identity
		case opAdd:
			a, b := streams[op.A], streams[op.B]
			out := make([]int64, len(a))
			for j := range a {
				out[j] = a[j] + b[j]
			}
			streams[op.A] = out
			streams = append(streams[:op.B], streams[op.B+1:]...)
		case opDup:
			streams = append(streams, streams[op.A])
		}
	}
	out := make([]int64, 0, p.Len*int64(len(streams)))
	for j := int64(0); j < p.Len; j++ {
		for _, s := range streams {
			out = append(out, s[j])
		}
	}
	return out
}
