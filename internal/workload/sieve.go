package workload

import (
	"encoding/gob"
	"io"
	"time"

	"dpn/internal/core"
	"dpn/internal/proclib"
	"dpn/internal/token"
)

// The sieve scenario is the reconfiguration stress: SiftRecursive
// rewires itself at runtime — every prime it discovers splices a new
// Modulo filter and a fresh SiftRecursive into the live graph (§3.3's
// dynamic reconfiguration), so the graph's shape is data. The scenario
// seed perturbs the integer bound, so the suite never gates on one
// fixed graph size.

// PacedSeq writes From..From+N-1, sleeping Every between elements so
// distributed deployments can overlap faults and migrations with a
// live stream. It stays on the origin node.
type PacedSeq struct {
	From, N int64
	Every   time.Duration
	Out     *core.WritePort

	i int64
}

// Step implements core.Stepper.
func (s *PacedSeq) Step(env *core.Env) error {
	if s.i >= s.N {
		return io.EOF
	}
	if s.Every > 0 {
		time.Sleep(s.Every)
	}
	v := s.From + s.i
	s.i++
	return token.NewWriter(s.Out).WriteInt64(v)
}

func init() {
	gob.Register(&PacedSeq{})
}

// sieveLimit derives the scenario's integer bound from the seed.
func sieveLimit(seed int64) int64 {
	if seed < 0 {
		seed = -seed
	}
	return 360 + seed%97
}

// Sieve constructs the growing-sieve scenario: integers 2..limit-1
// through a recursive sift chain (or the static single-process sift
// when recursive is false), primes into the collector.
func Sieve(recursive bool) Scenario {
	name := "sieve-chain"
	if recursive {
		name = "sieve-grow"
	}
	return Scenario{
		Name: name,
		Build: func(seed int64, pace time.Duration, n *core.Network) *Graph {
			limit := sieveLimit(seed)
			ints := n.NewChannel("wl.sieve.ints", 4096)
			primes := n.NewChannel("wl.sieve.primes", 4096)
			n.Spawn(&PacedSeq{From: 2, N: limit - 2, Every: pace, Out: ints.Writer()})
			if recursive {
				n.Spawn(&proclib.SiftRecursive{In: ints.Reader(), Out: primes.Writer()})
			} else {
				n.Spawn(&proclib.Sift{In: ints.Reader(), Out: primes.Writer()})
			}
			tail := &Collector{In: primes.Reader()}
			return &Graph{Cut: []any{tail}, Tail: tail}
		},
		Oracle: func(seed int64) []int64 { return primesBelow(sieveLimit(seed)) },
	}
}

// primesBelow is the classic single-threaded sieve of Eratosthenes.
func primesBelow(limit int64) []int64 {
	if limit < 3 {
		return nil
	}
	composite := make([]bool, limit)
	var out []int64
	for p := int64(2); p < limit; p++ {
		if composite[p] {
			continue
		}
		out = append(out, p)
		for m := p * p; m < limit; m += p {
			composite[m] = true
		}
	}
	return out
}
