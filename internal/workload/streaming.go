package workload

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"dpn/internal/core"
	"dpn/internal/token"
)

// The streaming-analytics pipeline: generator → shard-by-key →
// per-key tumbling-window reduce → deterministic merge. Records are
// (key, value) pairs moved with the batched token APIs; every reduce
// emission is a (tag, key, sum) triple where the tag is the global
// record index that closed the window. Tags are strictly increasing
// within a shard and unique across shards, so a streaming k-way merge
// ordered by (tag, key) produces one total order regardless of
// scheduling — the Kahn guarantee, made checkable against a
// sequential oracle.

// flushTag orders end-of-stream partial windows after every closed
// window; flush entries share the tag and are disambiguated by key
// (unique, since key→shard assignment is a function).
const flushTag = int64(1) << 62

// streamSpec parameterizes one streaming scenario.
type streamSpec struct {
	records int64
	keys    int64
	window  int64
	shards  int
	batch   int
	float   bool // move values through the float64 batch APIs
}

// splitmix is splitmix64, the generator seeding the record stream.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// genRecord derives record i of the seeded stream: a key and both
// value representations. Float values are multiples of 1/16 below
// 1000, so float sums stay exact and order-independent — determinism
// checks then compare bit patterns, not approximations.
func genRecord(seed, i, keys int64) (key, vi int64, vf float64) {
	k := splitmix(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*2)
	v := splitmix(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*2 + 1)
	key = int64(k % uint64(keys))
	vi = int64(v % 100003)
	vf = float64(v%16000) / 16
	return key, vi, vf
}

// KeyedGen emits the seeded record stream as (key, value) pairs, in
// batches through WriteInt64s (or WriteFloat64s when Float — keys are
// small integers, exact in float64). It stays on the origin node, so
// its cursor needs no export.
type KeyedGen struct {
	Out     *core.WritePort
	Records int64
	Keys    int64
	Seed    int64
	Batch   int
	Float   bool
	Pace    time.Duration

	i    int64
	ibuf []int64
	fbuf []float64
}

// Step implements core.Stepper.
func (g *KeyedGen) Step(env *core.Env) error {
	if g.i >= g.Records {
		return io.EOF
	}
	if g.Pace > 0 {
		time.Sleep(g.Pace)
	}
	batch := int64(g.Batch)
	if batch <= 0 {
		batch = 64
	}
	if rem := g.Records - g.i; batch > rem {
		batch = rem
	}
	w := token.NewWriter(g.Out)
	if g.Float {
		g.fbuf = g.fbuf[:0]
		for j := int64(0); j < batch; j++ {
			key, _, vf := genRecord(g.Seed, g.i+j, g.Keys)
			g.fbuf = append(g.fbuf, float64(key), vf)
		}
		if err := w.WriteFloat64s(g.fbuf); err != nil {
			return err
		}
	} else {
		g.ibuf = g.ibuf[:0]
		for j := int64(0); j < batch; j++ {
			key, vi, _ := genRecord(g.Seed, g.i+j, g.Keys)
			g.ibuf = append(g.ibuf, key, vi)
		}
		if err := w.WriteInt64s(g.ibuf); err != nil {
			return err
		}
	}
	g.i += batch
	return nil
}

// ShardByKey reads the pair stream in batches, assigns each record its
// global index, and routes (idx, key, valbits) triples to
// Outs[key mod shards]. Reads drain only buffered bytes past the first
// element, so a batch may split a pair — the odd element is carried to
// the next step.
type ShardByKey struct {
	In    *core.ReadPort
	Outs  []*core.WritePort
	Float bool

	idx   int64
	carry int64
	have  bool
	ibuf  []int64
	fbuf  []float64
	stage [][]int64
}

// Step implements core.Stepper.
func (s *ShardByKey) Step(env *core.Env) error {
	if s.stage == nil {
		s.stage = make([][]int64, len(s.Outs))
	}
	const chunk = 256
	var vals []int64
	if s.Float {
		if cap(s.fbuf) < chunk {
			s.fbuf = make([]float64, chunk)
		}
		n, err := token.NewReader(s.In).ReadFloat64s(s.fbuf[:chunk])
		if err != nil {
			return err
		}
		if cap(s.ibuf) < n {
			s.ibuf = make([]int64, n)
		}
		vals = s.ibuf[:n]
		for i := 0; i < n; i++ {
			// Keys decode exactly; values travel as raw IEEE-754 bits
			// from here on so no precision is created or lost.
			if i%2 == 0 && !s.have || i%2 == 1 && s.have {
				vals[i] = int64(s.fbuf[i])
			} else {
				vals[i] = int64(math.Float64bits(s.fbuf[i]))
			}
		}
	} else {
		if cap(s.ibuf) < chunk {
			s.ibuf = make([]int64, chunk)
		}
		n, err := token.NewReader(s.In).ReadInt64s(s.ibuf[:chunk])
		if err != nil {
			return err
		}
		vals = s.ibuf[:n]
	}
	for _, v := range vals {
		if !s.have {
			s.carry, s.have = v, true
			continue
		}
		key, val := s.carry, v
		s.have = false
		sh := int(key) % len(s.Outs)
		s.stage[sh] = append(s.stage[sh], s.idx, key, val)
		s.idx++
	}
	for sh, st := range s.stage {
		if len(st) == 0 {
			continue
		}
		if err := token.NewWriter(s.Outs[sh]).WriteInt64s(st); err != nil {
			return err
		}
		s.stage[sh] = s.stage[sh][:0]
	}
	return nil
}

// WindowReduce keeps per-key running sums and emits (closeIdx, key,
// sum) when a key's tumbling window fills. At end of stream it flushes
// the partial windows, ordered by key under the shared flushTag.
type WindowReduce struct {
	In     *core.ReadPort
	Out    *core.WritePort
	Window int64
	Float  bool

	sums   map[int64]int64
	fsums  map[int64]float64
	counts map[int64]int64
	carry  []int64
	buf    []int64
	stage  []int64
}

// Step implements core.Stepper.
func (r *WindowReduce) Step(env *core.Env) error {
	if r.counts == nil {
		r.counts = make(map[int64]int64)
		r.sums = make(map[int64]int64)
		r.fsums = make(map[int64]float64)
	}
	const chunk = 384
	if cap(r.buf) < chunk {
		r.buf = make([]int64, chunk)
	}
	n, err := token.NewReader(r.In).ReadInt64s(r.buf[:chunk])
	if err != nil {
		if err == io.EOF {
			return r.flush()
		}
		return err
	}
	r.carry = append(r.carry, r.buf[:n]...)
	r.stage = r.stage[:0]
	for len(r.carry) >= 3 {
		idx, key, val := r.carry[0], r.carry[1], r.carry[2]
		r.carry = r.carry[3:]
		r.counts[key]++
		if r.Float {
			r.fsums[key] += math.Float64frombits(uint64(val))
		} else {
			r.sums[key] += val
		}
		if r.counts[key] >= r.Window {
			r.stage = append(r.stage, idx, key, r.take(key))
		}
	}
	if len(r.carry) == 0 {
		r.carry = nil
	}
	if len(r.stage) > 0 {
		return token.NewWriter(r.Out).WriteInt64s(r.stage)
	}
	return nil
}

// take returns the key's accumulated sum encoding and resets it.
func (r *WindowReduce) take(key int64) int64 {
	var enc int64
	if r.Float {
		enc = int64(math.Float64bits(r.fsums[key]))
		delete(r.fsums, key)
	} else {
		enc = r.sums[key]
		delete(r.sums, key)
	}
	delete(r.counts, key)
	return enc
}

// flush emits every partial window sorted by key, then terminates.
func (r *WindowReduce) flush() error {
	keys := make([]int64, 0, len(r.counts))
	for k, c := range r.counts {
		if c > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]int64, 0, 3*len(keys))
	for _, k := range keys {
		out = append(out, flushTag, k, r.take(k))
	}
	if len(out) > 0 {
		if err := token.NewWriter(r.Out).WriteInt64s(out); err != nil {
			return err
		}
	}
	return io.EOF
}

// MergeByTag is the streaming k-way merge: it repeatedly emits the
// head triple with the least (tag, key) among its inputs. Within each
// input tags ascend, so the output is the globally sorted sequence —
// one deterministic total order over the whole pipeline's emissions.
type MergeByTag struct {
	Ins []*core.ReadPort
	Out *core.WritePort

	heads   [][3]int64
	ok      []bool
	started bool
}

// Step implements core.Stepper.
func (m *MergeByTag) Step(env *core.Env) error {
	if !m.started {
		m.heads = make([][3]int64, len(m.Ins))
		m.ok = make([]bool, len(m.Ins))
		for i := range m.Ins {
			if err := m.reload(i); err != nil {
				return err
			}
		}
		m.started = true
	}
	best := -1
	for i, ok := range m.ok {
		if !ok {
			continue
		}
		if best < 0 || less(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return io.EOF
	}
	h := m.heads[best]
	if err := token.NewWriter(m.Out).WriteInt64s(h[:]); err != nil {
		return err
	}
	return m.reload(best)
}

func less(a, b [3]int64) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// reload pulls the next head triple from input i; EOF retires it.
func (m *MergeByTag) reload(i int) error {
	rd := token.NewReader(m.Ins[i])
	v, err := rd.ReadInt64()
	if err != nil {
		if err == io.EOF {
			m.ok[i] = false
			return nil
		}
		return err
	}
	m.heads[i][0] = v
	for j := 1; j < 3; j++ {
		v, err := rd.ReadInt64()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("merge input %d: truncated triple: %w", i, io.ErrUnexpectedEOF)
			}
			return err
		}
		m.heads[i][j] = v
	}
	m.ok[i] = true
	return nil
}

func init() {
	gob.Register(&KeyedGen{})
	gob.Register(&ShardByKey{})
	gob.Register(&WindowReduce{})
	gob.Register(&MergeByTag{})
}

// buildStream wires (without spawning) the full pipeline into n and
// returns each stage, so callers choose their own cut: scenarios ship
// the merge+collector tail, the soak driver ships the middle stages
// and keeps the generator and collector client-side.
func buildStream(n *core.Network, spec streamSpec, seed int64, pace time.Duration) (gen *KeyedGen, shard *ShardByKey, reduces []any, merge *MergeByTag, tail *Collector) {
	const chanCap = 1 << 14
	pairs := n.NewChannel(fmt.Sprintf("wl.pairs.%d", seed), chanCap)
	gen = &KeyedGen{
		Out: pairs.Writer(), Records: spec.records, Keys: spec.keys,
		Seed: seed, Batch: spec.batch, Float: spec.float, Pace: pace,
	}
	shard = &ShardByKey{In: pairs.Reader(), Float: spec.float}
	merge = &MergeByTag{}
	for s := 0; s < spec.shards; s++ {
		byKey := n.NewChannel(fmt.Sprintf("wl.shard%d.%d", s, seed), chanCap)
		windows := n.NewChannel(fmt.Sprintf("wl.win%d.%d", s, seed), chanCap)
		shard.Outs = append(shard.Outs, byKey.Writer())
		reduces = append(reduces, &WindowReduce{
			In: byKey.Reader(), Out: windows.Writer(),
			Window: spec.window, Float: spec.float,
		})
		merge.Ins = append(merge.Ins, windows.Reader())
	}
	merged := n.NewChannel(fmt.Sprintf("wl.merged.%d", seed), chanCap)
	merge.Out = merged.Writer()
	tail = &Collector{In: merged.Reader()}
	return gen, shard, reduces, merge, tail
}

// streamOracle replays the pipeline sequentially: global per-key
// window state in record order (key→shard assignment is a function of
// the key, so per-shard and global replay close identical windows),
// closes in index order, flushes sorted by key.
func streamOracle(spec streamSpec, seed int64) []int64 {
	sums := make(map[int64]int64)
	fsums := make(map[int64]float64)
	counts := make(map[int64]int64)
	var out []int64
	for i := int64(0); i < spec.records; i++ {
		key, vi, vf := genRecord(seed, i, spec.keys)
		counts[key]++
		if spec.float {
			fsums[key] += vf
		} else {
			sums[key] += vi
		}
		if counts[key] >= spec.window {
			var enc int64
			if spec.float {
				enc = int64(math.Float64bits(fsums[key]))
				delete(fsums, key)
			} else {
				enc = sums[key]
				delete(sums, key)
			}
			delete(counts, key)
			out = append(out, i, key, enc)
		}
	}
	keys := make([]int64, 0, len(counts))
	for k, c := range counts {
		if c > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		var enc int64
		if spec.float {
			enc = int64(math.Float64bits(fsums[k]))
		} else {
			enc = sums[k]
		}
		out = append(out, flushTag, k, enc)
	}
	return out
}

// Streaming constructs the scenario form of the pipeline: Build spawns
// generator, shard, and reduces on the origin network; the cut is the
// merge plus collector, so under distributed deployments every
// reduce→merge channel crosses the wire.
func Streaming(name string, spec streamSpec) Scenario {
	return Scenario{
		Name: name,
		Build: func(seed int64, pace time.Duration, n *core.Network) *Graph {
			gen, shard, reduces, merge, tail := buildStream(n, spec, seed, pace)
			n.Spawn(gen)
			n.Spawn(shard)
			for _, r := range reduces {
				n.Spawn(r)
			}
			return &Graph{Cut: []any{merge, tail}, Tail: tail}
		},
		Oracle: func(seed int64) []int64 { return streamOracle(spec, seed) },
	}
}
