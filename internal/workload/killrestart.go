package workload

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dpn/internal/conduit"
	"dpn/internal/core"
	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/stream"
	"dpn/internal/token"
)

// KillRestart runs the scenario graph in a re-exec'd child process
// whose merged output crosses a durable WAL-backed conduit back to the
// driver. The driver SIGKILLs the child at collector progress marks
// and restarts it against the same journal directory; the restarted
// incarnation re-produces the deterministic stream from zero, the
// journal discards the already-sent prefix, and the RESUME handshake
// replays only what the driver never saw — so the collected output
// must stay byte-identical to the oracle, exactly once.
//
// Not listed in Deployments: it re-execs os.Args[0], so only drivers
// that call ChildMain early (the workload TestMain, dpnbench) can
// host it.
const KillRestart Deployment = "killrestart"

// Child-side environment protocol. The driver re-execs its own binary
// with these set; ChildMain intercepts before any driver logic runs.
const (
	envChild    = "DPN_WORKLOAD_CHILD"
	envScenario = "DPN_KR_SCENARIO"
	envSeed     = "DPN_KR_SEED"
	envPace     = "DPN_KR_PACE"
	envAddr     = "DPN_KR_ADDR"
	envToken    = "DPN_KR_TOKEN"
	envDir      = "DPN_KR_DIR"
	envCatalog  = "DPN_KR_CATALOG"
)

// krResilience is patient enough that the surviving driver treats a
// SIGKILL-plus-restart of the child as one long partition.
func krResilience(seed int64) netio.Resilience {
	return netio.Resilience{
		HeartbeatEvery: 25 * time.Millisecond,
		MissDeadline:   250 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       100 * time.Millisecond,
		LinkDeadline:   60 * time.Second,
		Seed:           seed,
	}
}

// krToken is the rendezvous token for a kill-restart run. It must be
// chosen by the caller, not minted by the broker: broker tokens embed
// the broker address and a sequence number, so a restarted child would
// never find its predecessor's journal or the driver's waiting link.
func krToken(name string, seed int64) string {
	return fmt.Sprintf("kr/%s/%d", name, seed)
}

// streamTail replaces the scenario Collector in the child: it reads
// the merged int64 stream and writes fixed-width big-endian frames to
// W — the same bytes the oracle comparison is defined over. On
// upstream EOS it closes W so the conduit propagates EOF.
type streamTail struct {
	In *core.ReadPort
	W  io.WriteCloser
}

// Step implements core.Stepper.
func (s *streamTail) Step(env *core.Env) error {
	v, err := token.NewReader(s.In).ReadInt64()
	if err != nil {
		s.W.Close()
		return err
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	if _, err := s.W.Write(b[:]); err != nil {
		return fmt.Errorf("stream tail: %w", err)
	}
	return nil
}

// ChildMain runs the kill-restart child when the environment gate is
// set, and exits the process when done; otherwise it returns
// immediately. Every binary that drives the KillRestart deployment
// must call it first thing, before flags or tests.
func ChildMain() {
	if os.Getenv(envChild) != "1" {
		return
	}
	if err := childRun(); err != nil {
		fmt.Fprintf(os.Stderr, "dpn kill-restart child: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func childRun() error {
	name := os.Getenv(envScenario)
	seed, err := strconv.ParseInt(os.Getenv(envSeed), 10, 64)
	if err != nil {
		return fmt.Errorf("%s: %w", envSeed, err)
	}
	pace, err := time.ParseDuration(os.Getenv(envPace))
	if err != nil {
		return fmt.Errorf("%s: %w", envPace, err)
	}
	addr, tok, dir := os.Getenv(envAddr), os.Getenv(envToken), os.Getenv(envDir)
	if addr == "" || tok == "" || dir == "" {
		return fmt.Errorf("incomplete child environment (addr=%q token=%q dir=%q)", addr, tok, dir)
	}
	cat := Catalog(seed)
	if os.Getenv(envCatalog) == "bench" {
		cat = BenchCatalog(seed)
	}
	var sc *Scenario
	for i := range cat {
		if cat[i].Name == name {
			sc = &cat[i]
			break
		}
	}
	if sc == nil {
		return fmt.Errorf("unknown scenario %q", name)
	}

	broker, err := netio.NewBroker("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer broker.Close()
	broker.SetResilience(krResilience(seed))

	pipe := stream.NewPipe(64 << 10)
	d := conduit.Durable{Inner: conduit.TCP{Broker: broker}, Dir: dir}
	l, err := d.BindOutbound(conduit.Endpoint{Addr: addr, Token: tok}, pipe.ReadEnd(), 256<<10)
	if err != nil {
		return fmt.Errorf("bind durable outbound: %w", err)
	}

	n := core.NewNetwork()
	g := sc.Build(seed, pace, n)
	for _, p := range g.Cut {
		if p == any(g.Tail) {
			continue
		}
		n.Spawn(p)
	}
	n.Spawn(&streamTail{In: g.Tail.In, W: pipe.WriteEnd()})

	if err := waitNet(n, "child network", 120*time.Second); err != nil {
		return err
	}
	if err := l.Wait(); err != nil {
		return fmt.Errorf("durable link: %w", err)
	}
	return nil
}

// runKillRestart is the driver side: serve the durable rendezvous,
// re-exec the child, SIGKILL it at each progress mark, restart it
// against the same journal, and collect the stream to completion.
func runKillRestart(sc Scenario, seed int64, opt RunOptions, timeout time.Duration) ([]int64, error) {
	dir := opt.KRDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dpn-kr-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	broker, err := netio.NewBroker("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer broker.Close()
	broker.SetResilience(krResilience(seed))

	tok := krToken(sc.Name, seed)
	pipe := stream.NewPipe(256 << 10)
	if _, err := (conduit.TCP{Broker: broker}).BindInbound(conduit.Endpoint{Token: tok}, pipe.WriteEnd()); err != nil {
		return nil, fmt.Errorf("bind inbound: %w", err)
	}

	var (
		mu    sync.Mutex
		vals  []int64
		count atomic.Int64
	)
	decoded := make(chan error, 1)
	go func() {
		r := pipe.ReadEnd()
		var b [8]byte
		for {
			if _, err := io.ReadFull(r, b[:]); err != nil {
				if err == io.EOF {
					err = nil // a torn frame would be ErrUnexpectedEOF
				}
				decoded <- err
				return
			}
			mu.Lock()
			vals = append(vals, int64(binary.BigEndian.Uint64(b[:])))
			mu.Unlock()
			count.Add(1)
		}
	}()

	env := []string{
		envChild + "=1",
		envScenario + "=" + sc.Name,
		envSeed + "=" + strconv.FormatInt(seed, 10),
		envPace + "=" + opt.Pace.String(),
		envAddr + "=" + broker.Addr(),
		envToken + "=" + tok,
		envDir + "=" + dir,
		envCatalog + "=" + opt.KRCatalog,
	}
	child, err := faults.StartProc(os.Args[0], env, nil, os.Stderr)
	if err != nil {
		return nil, fmt.Errorf("start child: %w", err)
	}

	marks := append([]int64(nil), opt.KillAt...)
	sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
	deadline := time.Now().Add(timeout)

	// waitFor polls until the collected element count satisfies cond,
	// the stream completes (finished=true), or the deadline passes.
	waitFor := func(cond func(int64) bool, what string) (finished bool, err error) {
		for {
			select {
			case derr := <-decoded:
				if derr != nil {
					return false, fmt.Errorf("stream decode: %w", derr)
				}
				return true, nil
			default:
			}
			if cond(count.Load()) {
				return false, nil
			}
			if time.Now().After(deadline) {
				return false, fmt.Errorf("timeout waiting for %s (at %d elements)", what, count.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}

	finished := false
	for _, mark := range marks {
		mark := mark
		var err error
		finished, err = waitFor(func(c int64) bool { return c >= mark }, fmt.Sprintf("kill mark %d", mark))
		if err != nil {
			return nil, err
		}
		if finished {
			break // the stream outran the remaining marks
		}
		if err := child.Kill(); err != nil {
			return nil, fmt.Errorf("kill child: %w", err)
		}
		child.Wait() // reap; a SIGKILL death is the expected "error"
		at := count.Load()
		restartAt := time.Now()
		child, err = faults.StartProc(os.Args[0], env, nil, os.Stderr)
		if err != nil {
			return nil, fmt.Errorf("restart child: %w", err)
		}
		// Recovery: from restart to the first element the dead
		// incarnation had not already delivered.
		finished, err = waitFor(func(c int64) bool { return c > at }, "post-restart progress")
		if err != nil {
			return nil, err
		}
		if opt.Stats != nil {
			opt.Stats.Recoveries = append(opt.Stats.Recoveries, time.Since(restartAt))
		}
		if finished {
			break
		}
	}

	if !finished {
		select {
		case derr := <-decoded:
			if derr != nil {
				return nil, fmt.Errorf("stream decode: %w", derr)
			}
		case <-time.After(time.Until(deadline)):
			return nil, fmt.Errorf("stream did not complete (at %d elements)", count.Load())
		}
	}
	if err := child.Wait(); err != nil {
		return nil, fmt.Errorf("final child exit: %w", err)
	}
	mu.Lock()
	defer mu.Unlock()
	return vals, nil
}
