package workload

import (
	"os"
	"testing"
	"time"
)

// TestMain hosts the kill-restart child: when the driver re-execs this
// test binary with the child env gate set, ChildMain runs the scenario
// and exits before any test machinery starts.
func TestMain(m *testing.M) {
	ChildMain()
	os.Exit(m.Run())
}

// TestScenarioKillRestart is the crash-restart acceptance property:
// every catalog scenario's merged output stays byte-identical to its
// oracle when the producing process is SIGKILLed mid-stream (twice)
// and restarted against the same durable journal.
func TestScenarioKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-restart matrix in -short mode")
	}
	base := workloadSeed(t, 2003)
	for _, sc := range Catalog(base) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			var st RunStats
			opt := RunOptions{
				Pace:  time.Millisecond,
				KRDir: t.TempDir(),
				Stats: &st,
			}
			if err := Check(sc, base, KillRestart, opt); err != nil {
				t.Fatalf("replay with WORKLOAD_SEED=%d: %v", base, err)
			}
			if len(st.Recoveries) == 0 {
				t.Fatalf("no kill landed mid-stream; pace the sources harder (replay with WORKLOAD_SEED=%d)", base)
			}
			for i, r := range st.Recoveries {
				t.Logf("recovery %d: %v", i+1, r)
			}
		})
	}
}
