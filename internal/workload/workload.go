// Package workload grows the evaluation surface beyond the paper's
// RSA-factorization demo into a regression-gated scenario suite
// (Parameterized Dataflow and AstraKahn are the blueprint — see
// PAPERS.md): a windowed keyed streaming-analytics pipeline, a
// dynamically reconfiguring sieve, a seed-replayable graph-shape
// fuzzer, and a many-client soak driver that runs hundreds of
// concurrent graphs against a shared compute-server node set.
//
// Every scenario is seeded and self-checking: it carries a
// single-threaded oracle, and Check asserts the merged output is
// byte-identical to the oracle under each Deployment — the cascade-
// equivalence property of the conduit layer, extended from one channel
// to whole workload graphs. Tokens are fixed-width encodings, so
// int64-slice equality is byte equality on the wire.
package workload

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"
	"time"

	"dpn/internal/core"
	"dpn/internal/faults"
	"dpn/internal/netio"
	"dpn/internal/token"
	"dpn/internal/wire"
)

// Deployment selects how a scenario's graph is spread over nodes.
type Deployment string

const (
	// Loopback runs the whole graph on one network: every conduit
	// stays unbound (the zero-cost in-proc plane).
	Loopback Deployment = "loopback"
	// TCP exports the scenario's cut to a second node before
	// execution, so the cut channels cross real broker links.
	TCP Deployment = "tcp"
	// Chaos is TCP with a seeded fault injector (latency, drops,
	// short writes) on both brokers; resilient links must heal.
	Chaos Deployment = "chaos"
	// Migration is TCP plus a live mid-stream migration of the
	// collector to a third node once it has made progress.
	Migration Deployment = "migration"
)

// Deployments lists every deployment, in verification order.
var Deployments = []Deployment{Loopback, TCP, Chaos, Migration}

// Graph is what a scenario build produces. Build spawns the graph's
// upstream processes on the origin network directly; Cut holds the
// not-yet-spawned tail (ending in Tail) that distributed deployments
// ship to another node and Loopback spawns locally.
type Graph struct {
	Cut  []any
	Tail *Collector
}

// Scenario is one seeded, self-checking workload.
type Scenario struct {
	Name string
	// Build wires the graph into n, spawning everything except the
	// processes it returns in Graph.Cut. pace throttles the graph's
	// sources (0 = full speed) so chaos and migration deployments
	// reliably overlap a live stream.
	Build func(seed int64, pace time.Duration, n *core.Network) *Graph
	// Oracle computes the expected merged output single-threaded.
	Oracle func(seed int64) []int64
}

// Collector is the scenario tail: it collects the merged int64 output.
// Vals is exported so the collected prefix survives a migration; the
// atomic mirror lets drivers poll progress on a live process without
// racing (the capCollect pattern from the cascade-equivalence test).
type Collector struct {
	In   *core.ReadPort
	Vals []int64

	progress atomic.Int64
}

// Step implements core.Stepper.
func (c *Collector) Step(env *core.Env) error {
	v, err := token.NewReader(c.In).ReadInt64()
	if err != nil {
		return err
	}
	c.Vals = append(c.Vals, v)
	c.progress.Store(int64(len(c.Vals)))
	return nil
}

// Progress reports how many elements the collector has seen; safe to
// call while the collector runs.
func (c *Collector) Progress() int64 { return c.progress.Load() }

func init() {
	gob.Register(&Collector{})
}

// RunOptions tune a deployment run.
type RunOptions struct {
	// Pace throttles scenario sources (passed through to Build).
	Pace time.Duration
	// ChaosSeed seeds the fault schedule of the Chaos deployment.
	ChaosSeed int64
	// MigrateAfter is the collector progress (elements) the Migration
	// deployment waits for before moving it; default 1.
	MigrateAfter int64
	// Timeout bounds each network's termination; default 60s.
	Timeout time.Duration
	// Stats, when non-nil, receives measurements from the run.
	Stats *RunStats
	// KillAt lists collector progress marks (elements) at which the
	// KillRestart deployment SIGKILLs and restarts the child; Check
	// defaults it to a quarter and half of the oracle length.
	KillAt []int64
	// KRDir is the WAL root for the KillRestart deployment's durable
	// conduit (default: a fresh temp dir, removed afterwards).
	KRDir string
	// KRCatalog selects the child's scenario lookup table: "" (gate
	// scale, Catalog) or "bench" (BenchCatalog).
	KRCatalog string
}

// RunStats are measurements harvested from a run's origin node.
type RunStats struct {
	Elapsed time.Duration
	// Tokens is the total dpn_conduit_tokens_total over the origin
	// network's channels (loopback counts every hop; distributed
	// deployments count the origin-side hops).
	Tokens int64
	// Recoveries, for the KillRestart deployment, records the time from
	// each child restart to the first element the dead incarnation had
	// not already delivered.
	Recoveries []time.Duration
}

// Run executes the scenario under the given deployment and returns the
// collected merged output.
func Run(sc Scenario, seed int64, d Deployment, opt RunOptions) ([]int64, error) {
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	start := time.Now()
	vals, origin, err := run(sc, seed, d, opt, timeout)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", sc.Name, d, err)
	}
	if opt.Stats != nil {
		opt.Stats.Elapsed = time.Since(start)
		opt.Stats.Tokens = scopeTokens(origin)
	}
	return vals, nil
}

func run(sc Scenario, seed int64, d Deployment, opt RunOptions, timeout time.Duration) ([]int64, *core.Network, error) {
	switch d {
	case KillRestart:
		vals, err := runKillRestart(sc, seed, opt, timeout)
		return vals, nil, err

	case Loopback:
		n := core.NewNetwork()
		g := sc.Build(seed, opt.Pace, n)
		for _, p := range g.Cut {
			n.Spawn(p)
		}
		if err := waitNet(n, "loopback network", timeout); err != nil {
			return nil, nil, err
		}
		return g.Tail.Vals, n, nil

	case TCP, Chaos:
		a, err := newNode()
		if err != nil {
			return nil, nil, err
		}
		defer a.Close()
		b, err := newNode()
		if err != nil {
			return nil, nil, err
		}
		defer b.Close()
		if d == Chaos {
			chaosify(a, opt.ChaosSeed)
			chaosify(b, opt.ChaosSeed+1)
		}
		g := sc.Build(seed, opt.Pace, a.Net)
		procs, col, err := shipCut(a, b, g.Cut)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range procs {
			b.Net.Spawn(p)
		}
		if err := waitNet(a.Net, "origin node", timeout); err != nil {
			return nil, nil, err
		}
		if err := waitNet(b.Net, "cut node", timeout); err != nil {
			return nil, nil, err
		}
		return col.Vals, a.Net, nil

	case Migration:
		a, err := newNode()
		if err != nil {
			return nil, nil, err
		}
		defer a.Close()
		b, err := newNode()
		if err != nil {
			return nil, nil, err
		}
		defer b.Close()
		c, err := newNode()
		if err != nil {
			return nil, nil, err
		}
		defer c.Close()
		g := sc.Build(seed, opt.Pace, a.Net)
		procs, colB, err := shipCut(a, b, g.Cut)
		if err != nil {
			return nil, nil, err
		}
		var h *core.Proc
		for _, p := range procs {
			pr := b.Net.Spawn(p)
			if p == any(colB) {
				h = pr
			}
		}
		after := opt.MigrateAfter
		if after <= 0 {
			after = 1
		}
		deadline := time.Now().Add(timeout)
		for colB.Progress() < after {
			if time.Now().After(deadline) {
				return nil, nil, fmt.Errorf("collector made no progress before migration (at %d, want %d)", colB.Progress(), after)
			}
			time.Sleep(200 * time.Microsecond)
		}
		p2, err := wire.Migrate(b, c.Broker.Addr(), h)
		if err != nil {
			return nil, nil, fmt.Errorf("migrate: %w", err)
		}
		shipped, err := ship(p2)
		if err != nil {
			return nil, nil, err
		}
		procsC, err := wire.Import(c, shipped)
		if err != nil {
			return nil, nil, fmt.Errorf("import after migrate: %w", err)
		}
		colC := findCollector(procsC)
		if colC == nil {
			return nil, nil, fmt.Errorf("migrated parcel has no collector")
		}
		for _, p := range procsC {
			c.Net.Spawn(p)
		}
		if err := waitNet(a.Net, "origin node", timeout); err != nil {
			return nil, nil, err
		}
		if err := waitNet(b.Net, "old collector node", timeout); err != nil {
			return nil, nil, err
		}
		if err := waitNet(c.Net, "new collector node", timeout); err != nil {
			return nil, nil, err
		}
		return colC.Vals, a.Net, nil
	}
	return nil, nil, fmt.Errorf("unknown deployment %q", d)
}

// Check runs the scenario under the deployment and asserts the merged
// output is identical to the single-threaded oracle.
func Check(sc Scenario, seed int64, d Deployment, opt RunOptions) error {
	want := sc.Oracle(seed)
	if opt.MigrateAfter <= 0 {
		opt.MigrateAfter = int64(len(want) / 4)
	}
	if d == KillRestart && len(opt.KillAt) == 0 {
		opt.KillAt = []int64{int64(len(want) / 4), int64(len(want) / 2)}
	}
	got, err := Run(sc, seed, d, opt)
	if err != nil {
		return err
	}
	if err := equal(got, want); err != nil {
		return fmt.Errorf("%s/%s (seed %d): %w", sc.Name, d, seed, err)
	}
	return nil
}

func equal(got, want []int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("output diverged from oracle: %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("output diverged from oracle at element %d: %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}

// shipCut exports the cut to node b through a gob round trip (as the
// compute-server RPC would) and returns the imported processes plus
// the collector among them.
func shipCut(a, b *wire.Node, cut []any) ([]any, *Collector, error) {
	parcel, err := wire.Export(a, b.Broker.Addr(), cut...)
	if err != nil {
		return nil, nil, fmt.Errorf("export: %w", err)
	}
	shipped, err := ship(parcel)
	if err != nil {
		return nil, nil, err
	}
	procs, err := wire.Import(b, shipped)
	if err != nil {
		return nil, nil, fmt.Errorf("import: %w", err)
	}
	col := findCollector(procs)
	if col == nil {
		return nil, nil, fmt.Errorf("cut has no collector")
	}
	return procs, col, nil
}

func ship(p *wire.Parcel) (*wire.Parcel, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("parcel encode: %w", err)
	}
	var out wire.Parcel
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return nil, fmt.Errorf("parcel decode: %w", err)
	}
	return &out, nil
}

func findCollector(procs []any) *Collector {
	for _, p := range procs {
		if c, ok := p.(*Collector); ok {
			return c
		}
	}
	return nil
}

func newNode() (*wire.Node, error) {
	return wire.NewLocalNode("127.0.0.1:0")
}

// chaosify installs a seeded fault schedule and test-speed resilience
// on the node's broker (the chaos-gate configuration: every link sees
// latency, drops, and short writes, and must heal).
func chaosify(n *wire.Node, seed int64) {
	n.Broker.SetFaults(faults.New(faults.Config{
		Seed:       seed,
		Latency:    200 * time.Microsecond,
		Jitter:     300 * time.Microsecond,
		Drop:       0.02,
		ShortWrite: 0.05,
	}))
	n.Broker.SetResilience(netio.Resilience{
		HeartbeatEvery: 30 * time.Millisecond,
		MissDeadline:   150 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       60 * time.Millisecond,
		LinkDeadline:   10 * time.Second,
		Seed:           seed,
	})
}

func waitNet(n *core.Network, what string, d time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		return nil
	case <-time.After(d):
		return fmt.Errorf("%s did not terminate within %v", what, d)
	}
}

// scopeTokens sums dpn_conduit_tokens_total over a network's scope.
func scopeTokens(n *core.Network) int64 {
	if n == nil {
		return 0
	}
	var total int64
	for _, s := range n.Obs().Registry().Samples() {
		if s.Name == "dpn_conduit_tokens_total" {
			total += s.Value
		}
	}
	return total
}
