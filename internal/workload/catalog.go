package workload

// Catalog returns the standard scenario suite at gate scale: small
// enough that the full deployment × scenario matrix runs under -race
// in the -scenarios gate, large enough that windows close, flushes
// interleave, and the sieve reconfigures continuously.
func Catalog(fuzzSeed int64) []Scenario {
	return []Scenario{
		Streaming("stream-int64", streamSpec{records: 1200, keys: 12, window: 4, shards: 3, batch: 32}),
		Streaming("stream-float64", streamSpec{records: 1000, keys: 10, window: 5, shards: 2, batch: 24, float: true}),
		Sieve(true),
		NewFuzzPlan(fuzzSeed).Scenario(),
	}
}

// BenchCatalog returns the suite at measurement scale, used by
// dpnbench -scenarios for the tokens/sec trajectory.
func BenchCatalog(fuzzSeed int64) []Scenario {
	return []Scenario{
		Streaming("stream-int64", streamSpec{records: 120_000, keys: 64, window: 4, shards: 4, batch: 512}),
		Streaming("stream-float64", streamSpec{records: 100_000, keys: 48, window: 5, shards: 4, batch: 512, float: true}),
		Sieve(true),
		NewFuzzPlan(fuzzSeed).Scenario(),
	}
}
