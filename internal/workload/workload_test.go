package workload

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// workloadSeed returns the suite seed. WORKLOAD_SEED overrides the
// default so a logged failing run can be replayed exactly (the
// -scenarios gate does this automatically, like the chaos gate).
func workloadSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := def
	if s := os.Getenv("WORKLOAD_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("WORKLOAD_SEED: %v", err)
		}
		seed = v
	}
	t.Logf("workload seed %d", seed)
	return seed
}

// settled polls until the goroutine count returns to the baseline
// (plus slack for runtime helpers), failing the test otherwise.
func settled(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// deployOptions picks per-deployment pacing: distributed deployments
// throttle the sources so faults and migrations overlap a live
// stream; loopback and tcp run full speed.
func deployOptions(d Deployment, seed int64) RunOptions {
	switch d {
	case Chaos:
		return RunOptions{Pace: 200 * time.Microsecond, ChaosSeed: seed}
	case Migration:
		return RunOptions{Pace: 2 * time.Millisecond}
	default:
		return RunOptions{}
	}
}

// TestScenarioOracleEquivalence is the tentpole property: every
// catalog scenario's merged output is byte-identical to its
// single-threaded oracle under loopback, tcp, chaos-injected, and
// mid-migration deployments.
func TestScenarioOracleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed scenario matrix in -short mode")
	}
	base := workloadSeed(t, 2003)
	for _, sc := range Catalog(base) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, d := range Deployments {
				if err := Check(sc, base, d, deployOptions(d, base)); err != nil {
					t.Fatalf("replay with WORKLOAD_SEED=%d: %v", base, err)
				}
			}
		})
	}
}

// TestScenarioOraclesAreDeterministic: the oracle itself must be a
// pure function of the seed — the suite's ground truth.
func TestScenarioOraclesAreDeterministic(t *testing.T) {
	seed := workloadSeed(t, 77)
	for _, sc := range Catalog(seed) {
		a, b := sc.Oracle(seed), sc.Oracle(seed)
		if err := equal(a, b); err != nil {
			t.Fatalf("%s oracle is not deterministic: %v", sc.Name, err)
		}
		if len(a) == 0 {
			t.Fatalf("%s oracle is empty", sc.Name)
		}
	}
}

// TestStreamOracleShape pins structural invariants of the streaming
// oracle: triples, window-close tags strictly increasing, flush
// entries last and key-sorted.
func TestStreamOracleShape(t *testing.T) {
	spec := streamSpec{records: 500, keys: 7, window: 3, shards: 2, batch: 16}
	out := streamOracle(spec, workloadSeed(t, 5))
	if len(out)%3 != 0 {
		t.Fatalf("oracle length %d is not a multiple of 3", len(out))
	}
	lastTag, lastFlushKey := int64(-1), int64(-1)
	inFlush := false
	for i := 0; i < len(out); i += 3 {
		tag, key := out[i], out[i+1]
		if tag == flushTag {
			inFlush = true
			if key <= lastFlushKey {
				t.Fatalf("flush keys not ascending at %d", i)
			}
			lastFlushKey = key
			continue
		}
		if inFlush {
			t.Fatalf("window close after flush at %d", i)
		}
		if tag <= lastTag {
			t.Fatalf("window-close tags not ascending at %d", i)
		}
		lastTag = tag
	}
}

// TestScenarioLoopbackStats: Run must report tokens and elapsed time
// when asked — the measurements dpnbench -scenarios records.
func TestScenarioLoopbackStats(t *testing.T) {
	seed := workloadSeed(t, 11)
	sc := Catalog(seed)[0]
	var st RunStats
	got, err := Run(sc, seed, Loopback, RunOptions{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || st.Tokens <= 0 || st.Elapsed <= 0 {
		t.Fatalf("stats not populated: %d elements, %d tokens, %v", len(got), st.Tokens, st.Elapsed)
	}
	if st.Tokens < int64(len(got)) {
		t.Fatalf("token count %d below collected elements %d", st.Tokens, len(got))
	}
}
