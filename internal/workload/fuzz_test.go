package workload

import (
	"runtime"
	"testing"
)

// TestGraphFuzzLoopbackVsTCP generates seed-replayable random DAG
// topologies, runs each to quiescence on one network and again with
// the interleave/collector tail exported over TCP, and asserts both
// match the plan's pure-Go evaluation — with no goroutine left behind.
// A failure names the exact seed; WORKLOAD_SEED replays it.
func TestGraphFuzzLoopbackVsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("graph fuzzing in -short mode")
	}
	base := workloadSeed(t, 1715)
	rounds := int64(6)
	baseline := runtime.NumGoroutine()
	for s := base; s < base+rounds; s++ {
		plan := NewFuzzPlan(s)
		sc := plan.Scenario()
		t.Logf("workload seed %d: %d sources, %d ops, len %d", s, plan.Sources, len(plan.Ops), plan.Len)
		for _, d := range []Deployment{Loopback, TCP} {
			if err := Check(sc, s, d, RunOptions{}); err != nil {
				t.Fatalf("replay with WORKLOAD_SEED=%d: %v", s, err)
			}
		}
	}
	settled(t, baseline)
}

// TestGraphFuzzChaos folds the fuzzer's plan space into the chaos
// gate (the ROADMAP leftover from PR 7): random DAG topologies run
// over TCP with seeded latency/jitter/drop fault injection and
// resilient, compressed links, and every one must still match the
// plan's pure-Go oracle byte for byte. A failure names the exact
// seed; WORKLOAD_SEED replays it.
func TestGraphFuzzChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("graph fuzzing in -short mode")
	}
	base := workloadSeed(t, 9091)
	rounds := int64(4)
	baseline := runtime.NumGoroutine()
	for s := base; s < base+rounds; s++ {
		plan := NewFuzzPlan(s)
		sc := plan.Scenario()
		t.Logf("workload seed %d: %d sources, %d ops, len %d", s, plan.Sources, len(plan.Ops), plan.Len)
		if err := Check(sc, s, Chaos, deployOptions(Chaos, s)); err != nil {
			t.Fatalf("replay with WORKLOAD_SEED=%d: %v", s, err)
		}
	}
	settled(t, baseline)
}

// TestFuzzPlanReplay: the same seed must regenerate an identical plan
// and oracle — the property the replay workflow rests on.
func TestFuzzPlanReplay(t *testing.T) {
	seed := workloadSeed(t, 40291)
	a, b := NewFuzzPlan(seed), NewFuzzPlan(seed)
	if a.Len != b.Len || a.Sources != b.Sources || len(a.Ops) != len(b.Ops) {
		t.Fatalf("plan shape not replayable: %+v vs %+v", a, b)
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
	if err := equal(a.Eval(), b.Eval()); err != nil {
		t.Fatalf("oracle not replayable: %v", err)
	}
}
