package workload

import (
	"os"
	"runtime"
	"strconv"
	"testing"
)

// TestSoakSmoke runs the many-client soak at gate scale: a few dozen
// concurrent graphs against two shared servers, every graph verified
// against its oracle, percentiles readable from the exposition path.
// SOAK_GRAPHS scales it up for manual soaks (dpnbench -scenarios runs
// the full configuration).
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	graphs := 24
	if s := os.Getenv("SOAK_GRAPHS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("SOAK_GRAPHS: %v", err)
		}
		graphs = v
	}
	baseline := runtime.NumGoroutine()
	rep, err := RunSoak(SoakConfig{
		Graphs:  graphs,
		Servers: 2,
		Records: 600,
		Tasks:   24,
		Seed:    workloadSeed(t, 4242),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d graphs, %.0f tokens/sec, stream p95 %.4fs, task p95 %.4fs, wait share %.3f",
		rep.Graphs, rep.TokensPerSec, rep.Stream.P95, rep.TaskP95, rep.WaitShare)
	if rep.Failures != 0 {
		t.Fatalf("soak failures: %d: %v", rep.Failures, rep.Errors)
	}
	if rep.Graphs != graphs {
		t.Fatalf("report graphs = %d, want %d", rep.Graphs, graphs)
	}
	if rep.Tokens <= 0 || rep.TokensPerSec <= 0 {
		t.Fatalf("no throughput recorded: %+v", rep)
	}
	// Percentiles must come back finite and ordered through the
	// exposition path for both families and the pool's task latency.
	for _, q := range []struct {
		name          string
		p50, p95, p99 float64
	}{
		{"stream", rep.Stream.P50, rep.Stream.P95, rep.Stream.P99},
		{"pool", rep.Pool.P50, rep.Pool.P95, rep.Pool.P99},
		{"task", rep.TaskP50, rep.TaskP95, rep.TaskP99},
	} {
		if !(q.p50 > 0) || !(q.p95 >= q.p50) || !(q.p99 >= q.p95) {
			t.Fatalf("%s percentiles malformed: p50=%v p95=%v p99=%v", q.name, q.p50, q.p95, q.p99)
		}
	}
	if rep.ConduitWaitSeconds < 0 || rep.WaitShare < 0 {
		t.Fatalf("negative wait accounting: %+v", rep)
	}
	settled(t, baseline)
}
