package workload

import (
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dpn/internal/core"
	"dpn/internal/meta"
	"dpn/internal/obs"
	"dpn/internal/server"
	"dpn/internal/wire"
)

// The soak driver runs many concurrent graphs against one shared
// compute-server node set — the many-clients-few-servers shape the
// paper's compute-server model is built for (§4). Half the graphs are
// streaming pipelines whose shard/reduce/merge cut is shipped to a
// server via the RPC client (the generator and collector stay
// client-side, like the paper's RSA demo keeps its consumer at home);
// the other half are elastic task pools stressing the scheduler. Every
// graph is seeded and verified against its oracle, and the report's
// latency percentiles come from the Prometheus exposition path —
// MetricsText → ParseProm → Sample.Quantile — so the soak also proves
// the telemetry a production operator would read.

// SoakConfig parameterizes RunSoak. Zero fields take defaults.
type SoakConfig struct {
	Graphs  int // concurrent graphs, split between families (default 120)
	Servers int // shared compute servers (default 3)

	// Stream family scale (per graph).
	Records int64 // default 1500
	Keys    int64 // default 8
	Window  int64 // default 4
	Shards  int   // default 2
	Batch   int   // default 64

	// Pool family scale (per graph).
	Tasks int64 // default 48
	Lanes int   // default 3
	Spin  int   // splitmix rounds per task (default 400)

	Seed    int64
	Timeout time.Duration // per-graph termination bound (default 90s)
}

func (c SoakConfig) withDefaults() SoakConfig {
	def := func(p *int, v int) {
		if *p <= 0 {
			*p = v
		}
	}
	def64 := func(p *int64, v int64) {
		if *p <= 0 {
			*p = v
		}
	}
	def(&c.Graphs, 120)
	def(&c.Servers, 3)
	def64(&c.Records, 1500)
	def64(&c.Keys, 8)
	def64(&c.Window, 4)
	def(&c.Shards, 2)
	def(&c.Batch, 64)
	def64(&c.Tasks, 48)
	def(&c.Lanes, 3)
	def(&c.Spin, 400)
	if c.Timeout <= 0 {
		c.Timeout = 90 * time.Second
	}
	return c
}

// SoakFamily reports one graph family's share of the soak.
type SoakFamily struct {
	Name   string `json:"family"`
	Graphs int    `json:"graphs"`
	Tokens int64  `json:"tokens"`
	// Per-graph wall-time percentiles from the
	// dpn_workload_graph_seconds histogram, read back through the
	// exposition path.
	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
	P99 float64 `json:"p99_seconds"`
}

// SoakReport is RunSoak's result, shaped for BENCH_pr7.json.
type SoakReport struct {
	Graphs   int     `json:"concurrent_graphs"`
	Servers  int     `json:"servers"`
	Failures int     `json:"failures"`
	Elapsed  float64 `json:"elapsed_seconds"`
	Tokens   int64   `json:"tokens"`
	// TokensPerSec is the sustained aggregate rate: every
	// dpn_conduit_tokens_total hop across client nodes, servers, and
	// pool networks over the soak's wall time.
	TokensPerSec float64 `json:"tokens_per_sec"`

	Stream SoakFamily `json:"stream"`
	Pool   SoakFamily `json:"pool"`

	// Task latency percentiles from dpn_pool_latency_seconds
	// {stage="total"} aggregated over every pool graph (intake to
	// in-order emission).
	TaskP50 float64 `json:"task_p50_seconds"`
	TaskP95 float64 `json:"task_p95_seconds"`
	TaskP99 float64 `json:"task_p99_seconds"`

	// ConduitWaitSeconds sums dpn_conduit_wait_ns_total (reader+writer
	// blocked time) across all scopes; WaitShare divides it by
	// cumulative graph-seconds — the backpressure signal, reported as a
	// share because the source metric is a counter, not a histogram.
	// Many channels block in parallel within one graph, so the share
	// can exceed 1.
	ConduitWaitSeconds float64 `json:"conduit_wait_seconds"`
	WaitShare          float64 `json:"conduit_wait_share"`

	Errors []string `json:"errors,omitempty"`
}

// soakVal is the expected result value of pool task idx.
func soakVal(seed, idx int64, spin int) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(idx)
	for i := 0; i < spin; i++ {
		x = splitmix(x)
	}
	return int64(x >> 1)
}

// SoakSource produces the pool family's task stream (§5.1 producer
// task): N independent SoakWork units.
type SoakSource struct {
	Seed int64
	N    int64
	Spin int

	next int64
}

// Run implements meta.Task.
func (s *SoakSource) Run() (meta.Task, error) {
	if s.next >= s.N {
		return nil, nil
	}
	t := &SoakWork{Seed: s.Seed, Idx: s.next, Spin: s.Spin}
	s.next++
	return t, nil
}

// SoakWork is one unit of pool work: a fixed splitmix spin, so service
// time is nonzero and deterministic.
type SoakWork struct {
	Seed, Idx int64
	Spin      int
}

// Run implements meta.Task.
func (w *SoakWork) Run() (meta.Task, error) {
	return &SoakResult{Idx: w.Idx, V: soakVal(w.Seed, w.Idx, w.Spin)}, nil
}

// SoakResult carries a finished task's index and value back to the
// consumer, which verifies both.
type SoakResult struct {
	Idx, V int64
}

// Run implements meta.Task.
func (r *SoakResult) Run() (meta.Task, error) { return nil, nil }

func init() {
	gob.Register(&SoakSource{})
	gob.Register(&SoakWork{})
	gob.Register(&SoakResult{})
}

// soakState is the shared accumulator the per-graph goroutines feed.
type soakState struct {
	scope      *obs.Scope
	streamHist *obs.Histogram
	poolHist   *obs.Histogram

	tokens atomic.Int64 // stream-family client-node tokens
	waitNs atomic.Int64 // stream-family client-node blocked ns

	mu       sync.Mutex
	failures int
	errs     []string
}

func (st *soakState) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.failures++
	if len(st.errs) < 8 {
		st.errs = append(st.errs, err.Error())
	}
}

// RunSoak stands up a registry plus cfg.Servers compute servers, runs
// cfg.Graphs verified graphs against them concurrently, and reports
// sustained throughput and latency percentiles. Setup errors return an
// error; per-graph failures are counted in the report.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()

	st := &soakState{scope: obs.NewScope()}
	st.scope.SetNode("soak")
	reg := st.scope.Registry()
	reg.Help("dpn_workload_graph_seconds",
		"Whole-graph wall time in the soak driver, by family (stream|pool).")
	st.streamHist = reg.Histogram("dpn_workload_graph_seconds", nil, obs.L("family", "stream"))
	st.poolHist = reg.Histogram("dpn_workload_graph_seconds", nil, obs.L("family", "pool"))

	registry, err := server.NewRegistry("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("soak registry: %w", err)
	}
	defer registry.Close()

	servers := make([]*server.Server, 0, cfg.Servers)
	defer func() {
		for _, sv := range servers {
			sv.Close()
		}
	}()
	for i := 0; i < cfg.Servers; i++ {
		sv, err := server.New(fmt.Sprintf("soak%d", i), "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("soak server %d: %w", i, err)
		}
		servers = append(servers, sv)
		if err := server.Register(registry.Addr(), sv.Name(), sv.Addr()); err != nil {
			return nil, fmt.Errorf("register %s: %w", sv.Name(), err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < cfg.Graphs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				st.runStreamGraph(cfg, g, registry.Addr())
			} else {
				st.runPoolGraph(cfg, g)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Servers and pool networks account their own hops; add them to the
	// client-side totals harvested per stream graph.
	tokens := st.tokens.Load()
	waitNs := st.waitNs.Load()
	for _, sv := range servers {
		tokens += sumSamples(sv.Node().Obs(), "dpn_conduit_tokens_total")
		waitNs += sumSamples(sv.Node().Obs(), "dpn_conduit_wait_ns_total")
	}
	tokens += sumSamples(st.scope, "dpn_conduit_tokens_total")
	waitNs += sumSamples(st.scope, "dpn_conduit_wait_ns_total")

	// Percentiles travel the exposition path end to end: serialize the
	// shared scope, parse it back, and interrogate the histograms — the
	// same view `dpnbench` or an operator scraping /metrics would get.
	samples := obs.ParseProm(st.scope.MetricsText())
	streamQ := findHistogram(samples, "dpn_workload_graph_seconds", "family", "stream")
	poolQ := findHistogram(samples, "dpn_workload_graph_seconds", "family", "pool")
	taskQ := findHistogram(samples, "dpn_pool_latency_seconds", "stage", "total")

	graphSeconds := streamQ.Sum + poolQ.Sum
	rep := &SoakReport{
		Graphs:   cfg.Graphs,
		Servers:  cfg.Servers,
		Elapsed:  elapsed.Seconds(),
		Tokens:   tokens,
		TaskP50:  taskQ.Quantile(0.50),
		TaskP95:  taskQ.Quantile(0.95),
		TaskP99:  taskQ.Quantile(0.99),
		Stream: SoakFamily{
			Name:   "stream",
			Graphs: (cfg.Graphs + 1) / 2,
			Tokens: st.tokens.Load(),
			P50:    streamQ.Quantile(0.50),
			P95:    streamQ.Quantile(0.95),
			P99:    streamQ.Quantile(0.99),
		},
		Pool: SoakFamily{
			Name:   "pool",
			Graphs: cfg.Graphs / 2,
			Tokens: sumSamples(st.scope, "dpn_conduit_tokens_total"),
			P50:    poolQ.Quantile(0.50),
			P95:    poolQ.Quantile(0.95),
			P99:    poolQ.Quantile(0.99),
		},
		ConduitWaitSeconds: float64(waitNs) / 1e9,
	}
	if elapsed > 0 {
		rep.TokensPerSec = float64(tokens) / elapsed.Seconds()
	}
	if graphSeconds > 0 {
		rep.WaitShare = float64(waitNs) / 1e9 / graphSeconds
	}
	st.mu.Lock()
	rep.Failures = st.failures
	rep.Errors = st.errs
	st.mu.Unlock()
	return rep, nil
}

// runStreamGraph runs one stream-family graph: rendezvous with a
// server through the registry, ship the shard/reduce/merge cut there,
// keep the generator and collector local, and verify against the
// sequential oracle.
func (st *soakState) runStreamGraph(cfg SoakConfig, g int, registryAddr string) {
	name := fmt.Sprintf("soak%d", g%cfg.Servers)
	addr, err := server.Lookup(registryAddr, name)
	if err != nil {
		st.fail(fmt.Errorf("graph %d: lookup %s: %w", g, name, err))
		return
	}
	client, err := server.Dial(addr)
	if err != nil {
		st.fail(fmt.Errorf("graph %d: dial %s: %w", g, name, err))
		return
	}
	defer client.Close()
	node, err := wire.NewLocalNode("127.0.0.1:0")
	if err != nil {
		st.fail(fmt.Errorf("graph %d: node: %w", g, err))
		return
	}
	defer node.Close()

	spec := streamSpec{
		records: cfg.Records, keys: cfg.Keys, window: cfg.Window,
		shards: cfg.Shards, batch: cfg.Batch, float: g%4 == 2,
	}
	seed := cfg.Seed + int64(g)
	gen, shard, reduces, merge, tail := buildStream(node.Net, spec, seed, 0)
	node.Net.Spawn(gen)
	node.Net.Spawn(tail)

	begin := time.Now()
	cut := append([]any{any(shard)}, reduces...)
	cut = append(cut, merge)
	if _, err := client.RunProcs(node, cut...); err != nil {
		st.fail(fmt.Errorf("graph %d: run cut on %s: %w", g, name, err))
		return
	}
	if err := waitNet(node.Net, fmt.Sprintf("stream graph %d", g), cfg.Timeout); err != nil {
		st.fail(err)
		return
	}
	st.streamHist.Observe(time.Since(begin).Seconds())
	st.tokens.Add(sumSamples(node.Obs(), "dpn_conduit_tokens_total"))
	st.waitNs.Add(sumSamples(node.Obs(), "dpn_conduit_wait_ns_total"))
	if err := equal(tail.Vals, streamOracle(spec, seed)); err != nil {
		st.fail(fmt.Errorf("graph %d (seed %d): %w", g, seed, err))
	}
}

// runPoolGraph runs one pool-family graph: an elastic task pool on a
// network bound to the shared soak scope, so every graph's latency
// lands in one dpn_pool_latency_seconds family. The consumer hook
// verifies value and in-order emission (§5 determinacy).
func (st *soakState) runPoolGraph(cfg SoakConfig, g int) {
	seed := cfg.Seed + int64(g)
	n := core.NewNetwork(core.WithObs(st.scope))
	e := meta.NewElastic(n, &SoakSource{Seed: seed, N: cfg.Tasks, Spin: cfg.Spin},
		cfg.Lanes, 1<<12, meta.PoolConfig{MaxInFlight: 2})
	var bad atomic.Int64
	var nextIdx atomic.Int64
	e.Consumer.SetOnResult(func(ran, _ meta.Task) {
		r, ok := ran.(*SoakResult)
		if !ok || r.Idx != nextIdx.Load() || r.V != soakVal(seed, r.Idx, cfg.Spin) {
			bad.Add(1)
			return
		}
		nextIdx.Add(1)
	})
	begin := time.Now()
	e.Spawn(n)
	if err := waitNet(n, fmt.Sprintf("pool graph %d", g), cfg.Timeout); err != nil {
		st.fail(err)
		return
	}
	st.poolHist.Observe(time.Since(begin).Seconds())
	if got := e.Consumer.Consumed(); got != cfg.Tasks || bad.Load() != 0 {
		st.fail(fmt.Errorf("pool graph %d (seed %d): consumed %d of %d, %d bad results",
			g, seed, got, cfg.Tasks, bad.Load()))
	}
}

// sumSamples totals a counter family across a scope's registry.
func sumSamples(s *obs.Scope, name string) int64 {
	var total int64
	for _, sm := range s.Registry().Samples() {
		if sm.Name == name {
			total += sm.Value
		}
	}
	return total
}

// findHistogram locates a parsed histogram sample by name and one
// identifying label; a zero Sample (whose Quantile is NaN) when absent.
func findHistogram(samples []obs.Sample, name, key, value string) obs.Sample {
	for _, s := range samples {
		if s.Name != name || s.Kind != obs.KindHistogram {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == key && l.Value == value {
				return s
			}
		}
	}
	return obs.Sample{}
}
