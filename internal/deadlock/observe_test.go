package deadlock

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"dpn/internal/core"
)

// metricsPeer is a fakePeer that also serves a metrics exposition, like
// wire.Node / server.Client do.
type metricsPeer struct {
	fakePeer
	text    string
	textErr error
}

func (p *metricsPeer) MetricsText() (string, error) { return p.text, p.textErr }

// A lost peer must not take the whole gather down: its failure becomes
// a stale-comment line and the healthy fleet's series still merge.
func TestGatherMetricsToleratesLostPeer(t *testing.T) {
	ok := &metricsPeer{text: "# TYPE dpn_net_procs_live gauge\ndpn_net_procs_live{node=\"a\"} 3\n"}
	down := &metricsPeer{textErr: errors.New("connection refused")}
	down.err = errors.New("peer down")
	c := quietCoordinator(ok, down)
	c.PeerFailureLimit = 3

	// Drive the peer into StatusPeerLost — the exact condition under
	// which a dashboard most needs the gather to keep working.
	var lost bool
	c.Subscribe(func(ev Event) {
		if ev.Status == StatusPeerLost {
			lost = true
		}
	})
	for i := 0; i < 3; i++ {
		c.Check()
	}
	if !lost {
		t.Fatal("peer never reported lost")
	}

	doc, err := c.GatherMetrics()
	if err != nil {
		t.Fatalf("gather failed with a healthy peer present: %v", err)
	}
	if !strings.Contains(doc, "# dpn:stale peer[1]: connection refused") {
		t.Fatalf("stale marker missing:\n%s", doc)
	}
	if !strings.Contains(doc, `dpn_net_procs_live{node="a"} 3`) {
		t.Fatalf("healthy peer's series missing:\n%s", doc)
	}
}

// When every scrapeable peer fails, an empty-but-successful document
// would read as a healthy idle fleet — that case must error instead.
func TestGatherMetricsAllPeersFailing(t *testing.T) {
	d1 := &metricsPeer{textErr: errors.New("refused")}
	d2 := &metricsPeer{textErr: errors.New("refused")}
	c := quietCoordinator(d1, d2)
	if _, err := c.GatherMetrics(); err == nil {
		t.Fatal("all-stale gather returned no error")
	}
}

// Peers without metrics support are skipped silently — a fleet of
// status-only peers gathers an empty document without error.
func TestGatherMetricsSkipsNonSources(t *testing.T) {
	c := quietCoordinator(&fakePeer{}, &fakePeer{})
	doc, err := c.GatherMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(doc, "dpn:stale") {
		t.Fatalf("status-only peers marked stale:\n%s", doc)
	}
}

// On the first true-deadlock verdict the monitor must explain itself:
// per-channel occupancy/blocked-party watermarks and a goroutine
// profile land on DumpTo, once per outage.
func TestMonitorTrueDeadlockDump(t *testing.T) {
	n := core.NewNetwork()
	ab := n.NewChannel("ab", 64)
	ba := n.NewChannel("ba", 64)
	n.Spawn(&readFirst{In: ab.Reader(), Out: ba.Writer()})
	n.Spawn(&readFirst{In: ba.Reader(), Out: ab.Writer()})
	m := New(n, time.Millisecond)
	var dump bytes.Buffer
	m.DumpTo = &dump

	deadline := time.Now().Add(5 * time.Second)
	for m.Check() != StatusTrueDeadlock {
		if time.Now().After(deadline) {
			t.Fatal("true deadlock not reported")
		}
		time.Sleep(time.Millisecond)
	}
	// More passes in the same outage must not re-dump.
	m.Check()
	m.Check()

	out := dump.String()
	for _, want := range []string{
		"true deadlock",
		"channel watermarks",
		"ab",
		"ba",
		"readers-blocked",
		"read-wait",
		"goroutine profile",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "true deadlock:"); got != 1 {
		t.Fatalf("dumped %d times for one outage, want 1", got)
	}

	ab.Writer().Close()
	ba.Writer().Close()
	ab.Reader().Close()
	ba.Reader().Close()
	n.Wait()
}
