package deadlock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpn/internal/obs"
)

// This file implements the distributed half of the paper's buffer
// management, listed as future work in §6.2 ("Another problem to be
// addressed is that of distributed deadlock detection"): when a
// program graph spans several nodes, no single network's counters can
// see the whole picture, so a coordinator polls every node and decides
// globally.
//
// Detection is a conservative quiescence test. A node snapshot carries
// its scheduling generation counter (bumped by every channel event on
// that node) and its broker byte counters (bumped by every byte that
// enters or leaves the node). If two successive polls, separated by a
// settle delay, observe identical counters on every node, then no
// process ran, no channel moved data, and no byte was in flight on any
// link — the distributed graph is quiescent. If some channel is then
// full with a blocked writer, the deadlock is artificial and the
// globally smallest such channel is grown (Parks' rule); if not, a
// true deadlock is reported.
//
// The test is heuristic in one direction only: a compute-bound graph
// that touches no channel during the settle window looks quiescent.
// That can cause a spurious growth — which is harmless, since growing
// a bounded channel never changes what a Kahn network computes — or a
// spurious true-deadlock report, which is why the coordinator reports
// rather than kills.

// ChannelRef identifies one growable channel on a peer.
type ChannelRef struct {
	Name string
	Cap  int
}

// NodeStatus is one node's scheduling snapshot.
type NodeStatus struct {
	Live       int64
	Blocked    int64
	Generation uint64
	BytesIn    int64
	BytesOut   int64
	// WakePending reports that some blocked party on the node has been
	// signaled but not rescheduled — the node is still running.
	WakePending bool
	// FullChannels lists channels that are full with at least one
	// blocked writer.
	FullChannels []ChannelRef
}

// Peer is one node as seen by the coordinator. Implementations:
// wire.Node (in-process) and server.Client (remote, over the compute
// server RPC).
type Peer interface {
	// DeadlockStatus returns the node's snapshot.
	DeadlockStatus() (NodeStatus, error)
	// GrowChannel grows the named channel and returns the resulting
	// capacity.
	GrowChannel(name string, newCap int) (int, error)
}

// Coordinator performs distributed deadlock detection and resolution
// across a set of peers.
type Coordinator struct {
	Peers []Peer
	// Settle is the delay between the two quiescence polls.
	Settle time.Duration
	// Poll is the interval between detection rounds when running in the
	// background.
	Poll time.Duration
	// GrowthFactor multiplies a grown channel's capacity (default 2).
	GrowthFactor int
	// MaxCapacity bounds growth; 0 means unbounded.
	MaxCapacity int
	// PeerFailureLimit is how many consecutive failed polls of one peer
	// the coordinator tolerates before reporting StatusPeerLost
	// (default 5). Resilient links make transient unreachability
	// routine, so a single failed poll must not raise an alarm; a long
	// streak means the peer is gone and global detection is blind.
	PeerFailureLimit int
	// OnEvent, if set, observes resolutions and true-deadlock reports.
	OnEvent func(Event)
	// Obs, if set, receives the coordinator's own round counters and
	// deadlock events (typically the scope of the node hosting the
	// coordinator).
	Obs *obs.Scope

	stop chan struct{}
	done chan struct{}

	resolutions atomic.Int64

	// Per-peer consecutive poll-failure streaks, indexed like Peers.
	// peerLost marks streaks already reported, so a dead peer produces
	// one event per outage instead of one per poll.
	pmu       sync.Mutex
	peerFails []int
	peerLost  []bool
}

// NewCoordinator builds a coordinator over the given peers.
func NewCoordinator(peers ...Peer) *Coordinator {
	return &Coordinator{
		Peers:            peers,
		Settle:           2 * time.Millisecond,
		Poll:             5 * time.Millisecond,
		GrowthFactor:     2,
		PeerFailureLimit: 5,
		stop:             make(chan struct{}),
		done:             make(chan struct{}),
	}
}

// Subscribe adds f as an additional event observer, chaining after any
// hook already installed in OnEvent — so the elastic pool's peer-lost
// listener, a test probe, and an operator alert can all watch the same
// coordinator. Subscribe must be called before Start (the hook chain is
// not synchronized against a running detection loop).
func (c *Coordinator) Subscribe(f func(Event)) {
	prev := c.OnEvent
	c.OnEvent = func(ev Event) {
		if prev != nil {
			prev(ev)
		}
		f(ev)
	}
}

// Resolutions counts the artificial deadlocks resolved so far.
func (c *Coordinator) Resolutions() int { return int(c.resolutions.Load()) }

// Start launches background detection; Stop ends it.
func (c *Coordinator) Start() { go c.loop() }

// Stop terminates the background loop and waits for it.
func (c *Coordinator) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

func (c *Coordinator) loop() {
	defer close(c.done)
	t := time.NewTicker(c.Poll)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		st, err := c.Check()
		if err != nil {
			continue // a peer hiccup is not fatal; retry next round
		}
		if st == StatusTerminated {
			return
		}
	}
}

type peerSnapshot struct {
	status NodeStatus
	err    error
}

// snapshot polls every peer. Unlike a fail-fast poll, it asks all
// peers even after one errors, so one unreachable node cannot hide the
// health of the rest; the first error is returned alongside the
// partial results.
func (c *Coordinator) snapshot() ([]peerSnapshot, error) {
	out := make([]peerSnapshot, len(c.Peers))
	var firstErr error
	for i, p := range c.Peers {
		out[i].status, out[i].err = p.DeadlockStatus()
		if out[i].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("deadlock: peer %d: %w", i, out[i].err)
		}
	}
	return out, firstErr
}

// notePeerHealth updates the per-peer failure streaks from one poll.
// It returns true when some peer's streak has reached
// PeerFailureLimit; the StatusPeerLost event fires once per streak, on
// the poll that crosses the limit.
func (c *Coordinator) notePeerHealth(snaps []peerSnapshot) bool {
	limit := c.PeerFailureLimit
	if limit <= 0 {
		limit = 5
	}
	c.pmu.Lock()
	for len(c.peerFails) < len(snaps) {
		c.peerFails = append(c.peerFails, 0)
		c.peerLost = append(c.peerLost, false)
	}
	anyLost := false
	var report []int
	for i, s := range snaps {
		if s.err == nil {
			c.peerFails[i], c.peerLost[i] = 0, false
			continue
		}
		c.peerFails[i]++
		if c.peerFails[i] >= limit {
			anyLost = true
			if !c.peerLost[i] {
				c.peerLost[i] = true
				report = append(report, i)
			}
		}
	}
	c.pmu.Unlock()
	for _, i := range report {
		c.note(Event{Status: StatusPeerLost, Channel: fmt.Sprintf("peer[%d]", i), Time: time.Now()})
	}
	return anyLost
}

// note emits a coordinator-level event into the observability scope.
func (c *Coordinator) note(ev Event) {
	c.Obs.Counter("dpn_deadlock_coord_events_total", obs.L("status", ev.Status.String())).Inc()
	c.Obs.Record(obs.EvDeadlock, ev.Channel, "coord:"+ev.Status.String(), int64(ev.NewCap))
	if c.OnEvent != nil {
		c.OnEvent(ev)
	}
}

// MetricsSource is implemented by peers that can render their node's
// metrics as Prometheus text: wire.Node locally, server.Client over the
// compute-server RPC.
type MetricsSource interface {
	MetricsText() (string, error)
}

// GatherMetrics scrapes every peer that implements MetricsSource and
// merges the expositions into one multi-node Prometheus document. Peers
// without metrics support are skipped. A failing scrape (a lost peer
// mid-outage, say) does not abort the gather: its absence is recorded
// as a "# dpn:stale peer[i]: ..." comment line in the merged document,
// so a dashboard or dpntop keeps showing the healthy fleet while making
// the hole visible. Only when every scrapeable peer fails is an error
// returned — an all-stale document would be mistaken for a healthy one.
func (c *Coordinator) GatherMetrics() (string, error) {
	var texts []string
	var stale []string
	var firstErr error
	sources := 0
	for i, p := range c.Peers {
		ms, ok := p.(MetricsSource)
		if !ok {
			continue
		}
		sources++
		txt, err := ms.MetricsText()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("deadlock: scraping peer %d: %w", i, err)
			}
			stale = append(stale, fmt.Sprintf("# dpn:stale peer[%d]: %v", i, err))
			continue
		}
		texts = append(texts, txt)
	}
	if sources > 0 && len(texts) == 0 {
		return "", firstErr
	}
	var b strings.Builder
	for _, line := range stale {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if err := obs.MergeProm(&b, texts...); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Check performs one global detection round.
func (c *Coordinator) Check() (Status, error) {
	c.Obs.Counter("dpn_deadlock_coord_rounds_total").Inc()
	s1, err := c.snapshot()
	if lost := c.notePeerHealth(s1); err != nil {
		// A peer is unreachable, so the global quiescence test cannot
		// run this round — growing a channel on partial information
		// could mask a true deadlock. Detection resumes when the peer
		// answers again (its link may be healing under the covers).
		if lost {
			return StatusPeerLost, err
		}
		return StatusRunning, err
	}
	var live, blocked int64
	for _, s := range s1 {
		live += s.status.Live
		blocked += s.status.Blocked
	}
	if live == 0 {
		return StatusTerminated, nil
	}
	if blocked == 0 {
		return StatusRunning, nil
	}
	// Quiescence test: nothing may move during the settle window.
	time.Sleep(c.Settle)
	s2, err := c.snapshot()
	if lost := c.notePeerHealth(s2); err != nil {
		if lost {
			return StatusPeerLost, err
		}
		return StatusRunning, err
	}
	for i := range s1 {
		a, b := s1[i].status, s2[i].status
		if a.Generation != b.Generation || a.BytesIn != b.BytesIn || a.BytesOut != b.BytesOut ||
			a.Live != b.Live || a.Blocked != b.Blocked || b.WakePending {
			return StatusRunning, nil
		}
	}
	// Quiescent. Gather full write-blocked channels globally.
	type cand struct {
		peer int
		ref  ChannelRef
	}
	var full []cand
	for i, s := range s2 {
		for _, ref := range s.status.FullChannels {
			full = append(full, cand{peer: i, ref: ref})
		}
	}
	if len(full) == 0 {
		c.note(Event{Status: StatusTrueDeadlock, Time: time.Now()})
		return StatusTrueDeadlock, nil
	}
	sort.Slice(full, func(i, j int) bool { return full[i].ref.Cap < full[j].ref.Cap })
	for _, cd := range full {
		newCap := cd.ref.Cap * c.GrowthFactor
		if c.GrowthFactor <= 1 {
			newCap = cd.ref.Cap * 2
		}
		if c.MaxCapacity > 0 && newCap > c.MaxCapacity {
			newCap = c.MaxCapacity
		}
		if newCap <= cd.ref.Cap {
			continue
		}
		got, err := c.Peers[cd.peer].GrowChannel(cd.ref.Name, newCap)
		if err != nil || got <= cd.ref.Cap {
			continue
		}
		c.resolutions.Add(1)
		c.note(Event{Status: StatusResolved, Channel: cd.ref.Name, NewCap: got, Time: time.Now()})
		return StatusResolved, nil
	}
	c.note(Event{Status: StatusTrueDeadlock, Time: time.Now()})
	return StatusTrueDeadlock, nil
}
