package deadlock

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakePeer is a scriptable Peer for coordinator unit tests.
type fakePeer struct {
	mu     sync.Mutex
	status NodeStatus
	err    error
	grown  map[string]int
	growFn func(name string, newCap int) (int, error)
}

func (p *fakePeer) DeadlockStatus() (NodeStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status, p.err
}

func (p *fakePeer) GrowChannel(name string, newCap int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.growFn != nil {
		return p.growFn(name, newCap)
	}
	if p.grown == nil {
		p.grown = map[string]int{}
	}
	p.grown[name] = newCap
	return newCap, nil
}

func (p *fakePeer) set(st NodeStatus) {
	p.mu.Lock()
	p.status = st
	p.mu.Unlock()
}

func (p *fakePeer) setErr(err error) {
	p.mu.Lock()
	p.err = err
	p.mu.Unlock()
}

func quietCoordinator(peers ...Peer) *Coordinator {
	c := NewCoordinator(peers...)
	c.Settle = 100 * time.Microsecond
	return c
}

func TestCoordinatorTerminated(t *testing.T) {
	c := quietCoordinator(&fakePeer{}, &fakePeer{})
	st, err := c.Check()
	if err != nil || st != StatusTerminated {
		t.Fatalf("got %v, %v", st, err)
	}
}

func TestCoordinatorRunningWhenUnblocked(t *testing.T) {
	c := quietCoordinator(&fakePeer{status: NodeStatus{Live: 2, Blocked: 0}})
	st, err := c.Check()
	if err != nil || st != StatusRunning {
		t.Fatalf("got %v, %v", st, err)
	}
}

func TestCoordinatorRunningWhenCountersMove(t *testing.T) {
	p := &fakePeer{status: NodeStatus{Live: 1, Blocked: 1, Generation: 1}}
	c := quietCoordinator(p)
	c.Settle = 5 * time.Millisecond
	go func() {
		time.Sleep(time.Millisecond)
		p.set(NodeStatus{Live: 1, Blocked: 1, Generation: 2})
	}()
	st, err := c.Check()
	if err != nil || st != StatusRunning {
		t.Fatalf("got %v, %v", st, err)
	}
}

func TestCoordinatorRunningWhenWakePending(t *testing.T) {
	p := &fakePeer{status: NodeStatus{Live: 1, Blocked: 1, WakePending: true}}
	st, err := quietCoordinator(p).Check()
	if err != nil || st != StatusRunning {
		t.Fatalf("got %v, %v", st, err)
	}
}

func TestCoordinatorGrowsGloballySmallest(t *testing.T) {
	p1 := &fakePeer{status: NodeStatus{Live: 1, Blocked: 1,
		FullChannels: []ChannelRef{{Name: "big", Cap: 1024}}}}
	p2 := &fakePeer{status: NodeStatus{Live: 1, Blocked: 1,
		FullChannels: []ChannelRef{{Name: "small", Cap: 16}}}}
	var events []Event
	c := quietCoordinator(p1, p2)
	c.OnEvent = func(e Event) { events = append(events, e) }
	st, err := c.Check()
	if err != nil || st != StatusResolved {
		t.Fatalf("got %v, %v", st, err)
	}
	if p2.grown["small"] != 32 {
		t.Fatalf("grown = %v / %v", p1.grown, p2.grown)
	}
	if len(p1.grown) != 0 {
		t.Fatalf("grew the wrong peer: %v", p1.grown)
	}
	if c.Resolutions() != 1 || len(events) != 1 || events[0].Channel != "small" {
		t.Fatalf("events = %v", events)
	}
}

func TestCoordinatorTrueDeadlock(t *testing.T) {
	p := &fakePeer{status: NodeStatus{Live: 2, Blocked: 2}}
	var events []Event
	c := quietCoordinator(p)
	c.OnEvent = func(e Event) { events = append(events, e) }
	st, err := c.Check()
	if err != nil || st != StatusTrueDeadlock {
		t.Fatalf("got %v, %v", st, err)
	}
	if len(events) != 1 || events[0].Status != StatusTrueDeadlock {
		t.Fatalf("events = %v", events)
	}
}

func TestCoordinatorMaxCapacityExhausted(t *testing.T) {
	p := &fakePeer{status: NodeStatus{Live: 1, Blocked: 1,
		FullChannels: []ChannelRef{{Name: "c", Cap: 64}}}}
	c := quietCoordinator(p)
	c.MaxCapacity = 64 // cannot grow past current capacity
	st, err := c.Check()
	if err != nil || st != StatusTrueDeadlock {
		t.Fatalf("got %v, %v", st, err)
	}
}

func TestCoordinatorSkipsFailingGrowth(t *testing.T) {
	bad := &fakePeer{
		status: NodeStatus{Live: 1, Blocked: 1,
			FullChannels: []ChannelRef{{Name: "cursed", Cap: 8}}},
		growFn: func(string, int) (int, error) { return 0, errors.New("nope") },
	}
	ok := &fakePeer{status: NodeStatus{Live: 1, Blocked: 1,
		FullChannels: []ChannelRef{{Name: "fine", Cap: 16}}}}
	c := quietCoordinator(bad, ok)
	st, err := c.Check()
	if err != nil || st != StatusResolved {
		t.Fatalf("got %v, %v", st, err)
	}
	if ok.grown["fine"] != 32 {
		t.Fatalf("fallback growth missing: %v", ok.grown)
	}
}

func TestCoordinatorPeerErrorSurfaces(t *testing.T) {
	p := &fakePeer{err: errors.New("peer down")}
	if _, err := quietCoordinator(p).Check(); err == nil {
		t.Fatal("peer error swallowed")
	}
}

func TestCoordinatorPeerLostAfterStreak(t *testing.T) {
	ok := &fakePeer{status: NodeStatus{Live: 1, Blocked: 0}}
	down := &fakePeer{err: errors.New("peer down")}
	c := quietCoordinator(ok, down)
	c.PeerFailureLimit = 3
	var events []Event
	c.OnEvent = func(ev Event) { events = append(events, ev) }

	// Below the limit: the error surfaces but the status stays Running.
	for i := 0; i < 2; i++ {
		st, err := c.Check()
		if err == nil || st != StatusRunning {
			t.Fatalf("round %d: got %v, %v", i, st, err)
		}
	}
	// The third consecutive failure crosses the limit.
	if st, err := c.Check(); err == nil || st != StatusPeerLost {
		t.Fatalf("got %v, %v", st, err)
	}
	// Further rounds keep reporting the status but not the event: one
	// event per outage, not one per poll.
	c.Check()
	c.Check()
	lost := 0
	for _, ev := range events {
		if ev.Status == StatusPeerLost {
			lost++
		}
	}
	if lost != 1 {
		t.Fatalf("want exactly one peer-lost event per streak, got %d", lost)
	}

	// Recovery resets the streak and detection resumes normally.
	down.setErr(nil)
	down.set(NodeStatus{Live: 1, Blocked: 0})
	if st, err := c.Check(); err != nil || st != StatusRunning {
		t.Fatalf("after heal: got %v, %v", st, err)
	}
	// A fresh outage is a fresh streak: it reports once more.
	down.setErr(errors.New("peer down again"))
	for i := 0; i < 3; i++ {
		c.Check()
	}
	lost = 0
	for _, ev := range events {
		if ev.Status == StatusPeerLost {
			lost++
		}
	}
	if lost != 2 {
		t.Fatalf("want a second peer-lost event after re-outage, got %d", lost)
	}
}

func TestCoordinatorSkipsQuiescenceWhilePeerUnreachable(t *testing.T) {
	// The reachable peer looks deadlocked (blocked with a full channel),
	// but the coordinator must not grow anything while the other peer
	// cannot be polled — partial information could mask a true deadlock.
	blocked := &fakePeer{status: NodeStatus{Live: 1, Blocked: 1,
		FullChannels: []ChannelRef{{Name: "x", Cap: 4}}}}
	down := &fakePeer{err: errors.New("peer down")}
	c := quietCoordinator(blocked, down)
	for i := 0; i < 4; i++ {
		st, _ := c.Check()
		if st == StatusResolved || st == StatusTrueDeadlock {
			t.Fatalf("round %d: decided %v with a peer unreachable", i, st)
		}
	}
	if len(blocked.grown) != 0 {
		t.Fatalf("grew %v while a peer was unreachable", blocked.grown)
	}
	// Once the peer answers, the artificial deadlock resolves.
	down.setErr(nil)
	if st, err := c.Check(); err != nil || st != StatusResolved {
		t.Fatalf("after heal: got %v, %v", st, err)
	}
}

func TestCoordinatorBackgroundLoop(t *testing.T) {
	p := &fakePeer{status: NodeStatus{Live: 1, Blocked: 1,
		FullChannels: []ChannelRef{{Name: "x", Cap: 4}}}}
	c := quietCoordinator(p)
	c.Poll = time.Millisecond
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for c.Resolutions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loop never resolved")
		}
		time.Sleep(time.Millisecond)
	}
	// Simulate completion: the loop should exit on its own.
	p.set(NodeStatus{})
	c.Stop()
	c.Stop() // idempotent
}

func TestSubscribeChainsObservers(t *testing.T) {
	ok := &fakePeer{status: NodeStatus{Live: 1, Blocked: 0}}
	down := &fakePeer{err: errors.New("peer down")}
	c := quietCoordinator(ok, down)
	c.PeerFailureLimit = 2
	var mu sync.Mutex
	var order []string
	c.OnEvent = func(ev Event) {
		mu.Lock()
		order = append(order, "legacy:"+ev.Status.String())
		mu.Unlock()
	}
	c.Subscribe(func(ev Event) {
		mu.Lock()
		order = append(order, "pool:"+ev.Status.String())
		mu.Unlock()
	})
	c.Subscribe(func(ev Event) {
		mu.Lock()
		order = append(order, "alert:"+ev.Status.String())
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		c.Check()
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"legacy:peer-lost", "pool:peer-lost", "alert:peer-lost"}
	if len(order) != len(want) {
		t.Fatalf("observers saw %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("observers saw %v, want %v", order, want)
		}
	}
}

func TestSubscribeWithoutLegacyHook(t *testing.T) {
	down := &fakePeer{err: errors.New("peer down")}
	c := quietCoordinator(down)
	c.PeerFailureLimit = 1
	got := make(chan Event, 1)
	c.Subscribe(func(ev Event) {
		select {
		case got <- ev:
		default:
		}
	})
	c.Check()
	select {
	case ev := <-got:
		if ev.Status != StatusPeerLost {
			t.Fatalf("event = %v, want StatusPeerLost", ev.Status)
		}
	default:
		t.Fatal("subscriber saw no event")
	}
}
