package deadlock

import (
	"testing"
	"time"

	"dpn/internal/core"
	"dpn/internal/token"
)

// The processes below reconstruct Figure 13 of the paper: a source
// produces consecutive integers; a splitter sends every N-th value to
// its first output and the others to its second; an ordered merge reads
// one value from the first input then N-1 from the second. If the
// second channel's capacity is below (N-1) elements, the splitter blocks
// writing before the merge can make progress — an artificial deadlock in
// an acyclic graph that only buffer growth can resolve.

type source struct {
	core.Iterative
	Out *core.WritePort
	v   int64
}

func (s *source) Step(env *core.Env) error {
	s.v++
	return token.NewWriter(s.Out).WriteInt64(s.v)
}

type splitter struct {
	OutA *core.WritePort // multiples of N
	OutB *core.WritePort // everything else
	In   *core.ReadPort
	N    int64
}

func (m *splitter) Step(env *core.Env) error {
	v, err := token.NewReader(m.In).ReadInt64()
	if err != nil {
		return err
	}
	if v%m.N == 0 {
		return token.NewWriter(m.OutA).WriteInt64(v)
	}
	return token.NewWriter(m.OutB).WriteInt64(v)
}

type merger struct {
	core.Iterative
	InA *core.ReadPort
	InB *core.ReadPort
	N   int64
	got []int64
}

func (g *merger) Step(env *core.Env) error {
	// One full round: N-1 values from B, then the multiple from A, in
	// numeric order (B carries k..k+N-2, A carries k+N-1... actually A
	// carries the multiple; ordering is immaterial for the deadlock).
	ra := token.NewReader(g.InA)
	rb := token.NewReader(g.InB)
	v, err := ra.ReadInt64()
	if err != nil {
		return err
	}
	g.got = append(g.got, v)
	for i := int64(0); i < g.N-1; i++ {
		v, err := rb.ReadInt64()
		if err != nil {
			return err
		}
		g.got = append(g.got, v)
	}
	return nil
}

func buildFigure13(n *core.Network, chbCap int) *merger {
	const N = 8
	cha := n.NewChannel("a", 64)
	chb := n.NewChannel("b", chbCap)
	src := n.NewChannel("src", 64)
	s := &source{Out: src.Writer()}
	s.Iterations = 64
	n.Spawn(s)
	n.Spawn(&splitter{In: src.Reader(), OutA: cha.Writer(), OutB: chb.Writer(), N: N})
	g := &merger{InA: cha.Reader(), InB: chb.Reader(), N: N}
	g.Iterations = 8
	n.Spawn(g)
	return g
}

func TestArtificialDeadlockResolved(t *testing.T) {
	n := core.NewNetwork()
	// 8-byte capacity: holds one element; the splitter needs to buffer
	// seven before the merge reads any.
	g := buildFigure13(n, 8)
	m := New(n, time.Millisecond)
	m.Start()
	defer m.Stop()
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("network did not finish; deadlock not resolved")
	}
	if m.Resolutions() == 0 {
		t.Fatal("expected at least one resolution event")
	}
	if len(g.got) != 64 {
		t.Fatalf("merge consumed %d values, want 64", len(g.got))
	}
	// The first resolution grows the smallest full channel. Under most
	// schedules that is "b"; other interleavings can legitimately fill
	// other channels first, so only the rule — a resolution happened and
	// the network completed — is asserted strictly. Record the channels
	// for inspection.
	for _, ev := range m.Events() {
		if ev.Status == StatusResolved {
			t.Logf("grew %q to %d", ev.Channel, ev.NewCap)
		}
	}
}

func TestSufficientCapacityNeedsNoResolution(t *testing.T) {
	n := core.NewNetwork()
	buildFigure13(n, 1024)
	m := New(n, time.Millisecond)
	m.Start()
	defer m.Stop()
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := m.Resolutions(); got != 0 {
		t.Fatalf("unexpected resolutions: %d", got)
	}
}

// A cycle of two processes each blocked reading the other's output is a
// true deadlock: growth cannot help.
type readFirst struct {
	In  *core.ReadPort
	Out *core.WritePort
}

func (p *readFirst) Step(env *core.Env) error {
	v, err := token.NewReader(p.In).ReadInt64()
	if err != nil {
		return err
	}
	return token.NewWriter(p.Out).WriteInt64(v)
}

func TestTrueDeadlockReported(t *testing.T) {
	n := core.NewNetwork()
	ab := n.NewChannel("ab", 64)
	ba := n.NewChannel("ba", 64)
	n.Spawn(&readFirst{In: ab.Reader(), Out: ba.Writer()})
	n.Spawn(&readFirst{In: ba.Reader(), Out: ab.Writer()})
	m := New(n, time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := m.Check()
		if st == StatusTrueDeadlock {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("true deadlock not reported; last status %v", st)
		}
		time.Sleep(time.Millisecond)
	}
	// Unblock the network so the test can end.
	ab.Writer().Close()
	ba.Writer().Close()
	ab.Reader().Close()
	ba.Reader().Close()
	n.Wait()
}

func TestCheckStatuses(t *testing.T) {
	n := core.NewNetwork()
	m := New(n, 0)
	if st := m.Check(); st != StatusTerminated {
		t.Fatalf("empty network: %v", st)
	}
	// A running (non-blocked) process yields StatusRunning.
	busy := n.NewChannel("busy", 1024)
	s := &source{Out: busy.Writer()}
	s.Iterations = 1
	p := n.Spawn(s)
	st := m.Check()
	if st != StatusRunning && st != StatusTerminated {
		t.Fatalf("got %v", st)
	}
	p.Wait()
	n.Wait()
}

func TestMaxCapacityLimitsGrowth(t *testing.T) {
	n := core.NewNetwork()
	buildFigure13(n, 8)
	m := New(n, time.Millisecond)
	m.MaxCapacity = 16 // too small for 7 pending elements (56 bytes)
	var events []Event
	m.OnEvent = func(e Event) { events = append(events, e) }

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := m.Check()
		if st == StatusTrueDeadlock {
			break // growth exhausted, reported as unresolvable
		}
		if time.Now().After(deadline) {
			t.Fatal("bounded monitor never gave up")
		}
		time.Sleep(time.Millisecond)
	}
	// Tear down.
	for _, ch := range n.Channels() {
		ch.Writer().Close()
		ch.Reader().Close()
	}
	n.Wait()
	var resolved int
	for _, e := range events {
		if e.Status == StatusResolved {
			resolved++
			if e.NewCap > 16 {
				t.Fatalf("grew past MaxCapacity: %d", e.NewCap)
			}
		}
	}
	if resolved == 0 {
		t.Fatal("expected at least one capped growth before giving up")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusRunning:      "running",
		StatusResolved:     "resolved",
		StatusTrueDeadlock: "true-deadlock",
		StatusTerminated:   "terminated",
		Status(42):         "Status(42)",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(st), st, want)
		}
	}
}

func TestMonitorStopIdempotent(t *testing.T) {
	n := core.NewNetwork()
	m := New(n, time.Millisecond)
	m.Start()
	m.Stop()
	m.Stop()
}
