// Package deadlock implements run-time buffer management for bounded
// process-network channels, following the bounded-scheduling approach of
// Parks' thesis that the paper adopts (§3.5, §6.2): channels have finite
// capacity so writes block and scheduling stays fair, but finite
// capacity can introduce *artificial* deadlock — a cycle (or, as in
// Figure 13, even an acyclic graph) of processes blocked writing to full
// channels. Determining safe capacities statically is undecidable
// (equivalent to the halting problem), so a monitor watches the running
// network: when every live process is blocked and at least one is
// blocked writing to a full channel, the smallest such channel's buffer
// is grown and execution resumes. If every blocked process is waiting to
// read, the deadlock is real and is reported.
package deadlock

import (
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"dpn/internal/core"
	"dpn/internal/obs"
)

// Status classifies what the monitor observed.
type Status int

const (
	// StatusRunning means the network is making progress.
	StatusRunning Status = iota
	// StatusResolved means an artificial deadlock was detected and
	// resolved by growing a channel.
	StatusResolved
	// StatusTrueDeadlock means every live process is blocked reading —
	// no capacity increase can help.
	StatusTrueDeadlock
	// StatusTerminated means no live processes remain.
	StatusTerminated
	// StatusPeerLost means the distributed coordinator has failed to
	// reach a peer for PeerFailureLimit consecutive polls: the global
	// quiescence test cannot run, so detection is suspended until the
	// peer answers again (link-level resilience may still heal it).
	StatusPeerLost
)

func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusResolved:
		return "resolved"
	case StatusTrueDeadlock:
		return "true-deadlock"
	case StatusTerminated:
		return "terminated"
	case StatusPeerLost:
		return "peer-lost"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Event records one detection the monitor made.
type Event struct {
	Status  Status
	Channel string // grown channel, for StatusResolved
	NewCap  int    // capacity after growth
	Time    time.Time
}

// Monitor watches one network.
type Monitor struct {
	net *core.Network

	// Poll is the sampling interval. The generation counter makes
	// detection cheap, so a small interval is fine.
	Poll time.Duration
	// GrowthFactor multiplies a full channel's capacity on resolution
	// (must be > 1; default 2).
	GrowthFactor int
	// MaxCapacity bounds growth; 0 means unbounded. If growth is
	// impossible because every full channel is at MaxCapacity, the
	// deadlock is reported as true deadlock.
	MaxCapacity int
	// OnEvent, if set, is invoked for every resolution and for a true
	// deadlock.
	OnEvent func(Event)
	// DumpTo, if set, receives a diagnostic dump when the monitor first
	// reports a true deadlock: every channel's occupancy, blocked
	// parties, and accumulated blocked-time watermarks, followed by a
	// full goroutine profile. The commands point it at stderr so a
	// wedged run explains itself without a debugger attached.
	DumpTo io.Writer

	mu     sync.Mutex
	events []Event
	stop   chan struct{}
	done   chan struct{}

	scope   *obs.Scope
	cChecks *obs.Counter
	hCheck  *obs.Histogram
	cEvents map[Status]*obs.Counter
}

// New creates a monitor for n with the given poll interval.
func New(n *core.Network, poll time.Duration) *Monitor {
	if poll <= 0 {
		poll = time.Millisecond
	}
	m := &Monitor{
		net:          n,
		Poll:         poll,
		GrowthFactor: 2,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	m.scope = n.Obs()
	reg := m.scope.Registry()
	reg.Help("dpn_deadlock_checks_total", "Detection passes run by the deadlock monitor.")
	reg.Help("dpn_deadlock_check_seconds", "Latency of one detection pass.")
	reg.Help("dpn_deadlock_events_total", "Deadlocks observed, by status (resolved|true-deadlock).")
	m.cChecks = reg.Counter("dpn_deadlock_checks_total")
	m.hCheck = reg.Histogram("dpn_deadlock_check_seconds", nil)
	m.cEvents = map[Status]*obs.Counter{
		StatusResolved:     reg.Counter("dpn_deadlock_events_total", obs.L("status", "resolved")),
		StatusTrueDeadlock: reg.Counter("dpn_deadlock_events_total", obs.L("status", "true-deadlock")),
	}
	return m
}

// Events returns the events recorded so far.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Resolutions counts artificial deadlocks resolved so far.
func (m *Monitor) Resolutions() int {
	n := 0
	for _, e := range m.Events() {
		if e.Status == StatusResolved {
			n++
		}
	}
	return n
}

// Start launches the monitoring goroutine. Call Stop to end it; it also
// ends by itself when the network has no live processes left.
func (m *Monitor) Start() {
	go m.loop()
}

// Stop ends the monitoring goroutine and waits for it to exit.
func (m *Monitor) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}

func (m *Monitor) loop() {
	defer close(m.done)
	t := time.NewTicker(m.Poll)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		if st := m.Check(); st == StatusTerminated {
			return
		}
		// On StatusTrueDeadlock the monitor keeps watching: the report
		// lets the user act (tear the network down, close a channel),
		// after which progress or termination is observed normally.
	}
}

// Check performs one detection pass and, when it finds an artificial
// deadlock, resolves it. It is exported so tests and callers can drive
// detection synchronously.
func (m *Monitor) Check() Status {
	m.cChecks.Inc()
	t0 := time.Now()
	defer func() { m.hCheck.Observe(time.Since(t0).Seconds()) }()
	live := m.net.Live()
	if live == 0 {
		return StatusTerminated
	}
	// Candidate condition: every live process is blocked in a channel
	// operation.
	if m.net.Blocked() < live {
		return StatusRunning
	}
	// Confirm stability: no scheduling event may intervene between two
	// observations, otherwise we might have caught a transient state.
	gen := m.net.Generation()
	if m.net.Blocked() < m.net.Live() || m.net.Generation() != gen {
		return StatusRunning
	}

	// Deadlocked? Find full channels with blocked writers, and bail out
	// if any pipe has a signaled-but-not-yet-rescheduled party — the
	// scheduler just hasn't run it yet.
	type cand struct {
		ch  *core.Channel
		cap int
	}
	var full []cand
	for _, ch := range m.net.Channels() {
		p := ch.Pipe()
		if p.WakePending() {
			return StatusRunning
		}
		if p.WriteBlockedOnFull() {
			full = append(full, cand{ch, p.Cap()})
		}
	}
	if m.net.Generation() != gen {
		return StatusRunning // raced with progress; not a deadlock
	}
	if len(full) == 0 {
		ev := Event{Status: StatusTrueDeadlock, Time: time.Now()}
		m.recordEdge(ev)
		return StatusTrueDeadlock
	}
	// Parks' rule: grow the smallest full channel, keeping total buffer
	// memory as small as possible.
	sort.Slice(full, func(i, j int) bool { return full[i].cap < full[j].cap })
	for _, c := range full {
		newCap := c.cap * m.GrowthFactor
		if m.GrowthFactor <= 1 {
			newCap = c.cap * 2
		}
		if m.MaxCapacity > 0 && newCap > m.MaxCapacity {
			newCap = m.MaxCapacity
		}
		if newCap <= c.cap {
			continue // already at the bound; try the next channel
		}
		c.ch.Pipe().Grow(newCap)
		ev := Event{Status: StatusResolved, Channel: c.ch.Name(), NewCap: newCap, Time: time.Now()}
		m.record(ev)
		return StatusResolved
	}
	ev := Event{Status: StatusTrueDeadlock, Time: time.Now()}
	m.recordEdge(ev)
	return StatusTrueDeadlock
}

// recordEdge records a true-deadlock event only on the transition into
// the state, so a monitor loop does not spam events every poll.
func (m *Monitor) recordEdge(ev Event) {
	m.mu.Lock()
	if len(m.events) > 0 && m.events[len(m.events)-1].Status == StatusTrueDeadlock {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	m.record(ev)
	m.dump()
}

// dump writes the true-deadlock diagnostic to DumpTo: per-channel
// occupancy, blocked readers/writers, and the blocked-time watermark
// counters (dpn_conduit_wait_ns_total), then a goroutine profile. The
// watermarks tell the operator *which* edge the network starved on and
// for how long; the profile tells them where each process is parked.
func (m *Monitor) dump() {
	w := m.DumpTo
	if w == nil {
		return
	}
	waits := make(map[string][2]time.Duration)
	for _, s := range m.scope.Registry().Samples() {
		if s.Name != "dpn_conduit_wait_ns_total" {
			continue
		}
		ch := s.Label("channel")
		v := waits[ch]
		if s.Label("op") == "read" {
			v[0] = time.Duration(s.Value)
		} else {
			v[1] = time.Duration(s.Value)
		}
		waits[ch] = v
	}
	fmt.Fprintf(w, "dpn: true deadlock: every live process is blocked reading\n")
	fmt.Fprintf(w, "dpn: channel watermarks:\n")
	for _, ch := range m.net.Channels() {
		p := ch.Pipe()
		wt := waits[ch.Name()]
		fmt.Fprintf(w, "dpn:   %-28s %5d/%-5d bytes  readers-blocked %d  writers-blocked %d  read-wait %v  write-wait %v\n",
			ch.Name(), p.Len(), p.Cap(), p.BlockedReaders(), p.BlockedWriters(), wt[0], wt[1])
	}
	fmt.Fprintf(w, "dpn: goroutine profile:\n")
	if pr := pprof.Lookup("goroutine"); pr != nil {
		pr.WriteTo(w, 1)
	}
}

func (m *Monitor) record(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	cb := m.OnEvent
	m.mu.Unlock()
	m.cEvents[ev.Status].Inc()
	m.scope.Record(obs.EvDeadlock, ev.Channel, ev.Status.String(), int64(ev.NewCap))
	if cb != nil {
		cb(ev)
	}
}
