package proclib

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"dpn/internal/core"
)

func runFloats(t *testing.T, in []float64, build func(n *core.Network, src *core.ReadPort, dst *core.WritePort)) []float64 {
	t.Helper()
	n := core.NewNetwork()
	a := n.NewChannel("a", 0)
	b := n.NewChannel("b", 0)
	n.Spawn(&FloatSliceSource{Values: in, Out: a.Writer()})
	build(n, a.Reader(), b.Writer())
	sink := &CollectFloat{In: b.Reader()}
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	return sink.Values()
}

func TestFIRIdentity(t *testing.T) {
	in := []float64{1, 2, 3, 4}
	got := runFloats(t, in, func(n *core.Network, src *core.ReadPort, dst *core.WritePort) {
		n.Spawn(&FIR{Taps: []float64{1}, In: src, Out: dst})
	})
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %v", got)
	}
}

func TestFIRMovingAverage(t *testing.T) {
	got := runFloats(t, []float64{2, 4, 6, 8}, func(n *core.Network, src *core.ReadPort, dst *core.WritePort) {
		n.Spawn(&FIR{Taps: []float64{0.5, 0.5}, In: src, Out: dst})
	})
	want := []float64{1, 3, 5, 7} // history starts at silence
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Property: an FIR filter is linear: F(a·x) = a·F(x).
func TestFIRLinearityProperty(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		if len(raw) > 40 {
			raw = raw[:40]
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true // skip degenerate inputs
			}
		}
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e6 {
			return true
		}
		taps := []float64{0.25, 0.5, 0.25}
		base := runFloats(t, raw, func(n *core.Network, src *core.ReadPort, dst *core.WritePort) {
			n.Spawn(&FIR{Taps: taps, In: src, Out: dst})
		})
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			scaled[i] = v * scale
		}
		got := runFloats(t, scaled, func(n *core.Network, src *core.ReadPort, dst *core.WritePort) {
			n.Spawn(&FIR{Taps: taps, In: src, Out: dst})
		})
		for i := range base {
			want := base[i] * scale
			if math.Abs(got[i]-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayPrependsInitialSamples(t *testing.T) {
	got := runFloats(t, []float64{10, 20}, func(n *core.Network, src *core.ReadPort, dst *core.WritePort) {
		n.Spawn(&Delay{Initial: []float64{0, 0}, In: src, Out: dst})
	})
	want := []float64{0, 0, 10, 20}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestDecimate(t *testing.T) {
	got := runFloats(t, []float64{1, 2, 3, 4, 5, 6}, func(n *core.Network, src *core.ReadPort, dst *core.WritePort) {
		n.Spawn(&Decimate{Factor: 3, In: src, Out: dst})
	})
	if !reflect.DeepEqual(got, []float64{1, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestUpsample(t *testing.T) {
	got := runFloats(t, []float64{1, 2}, func(n *core.Network, src *core.ReadPort, dst *core.WritePort) {
		n.Spawn(&Upsample{Factor: 3, In: src, Out: dst})
	})
	if !reflect.DeepEqual(got, []float64{1, 0, 0, 2, 0, 0}) {
		t.Fatalf("got %v", got)
	}
}

// Decimate(k) ∘ Upsample(k) is the identity — a classic multirate
// sanity property, run through a real two-stage network.
func TestUpsampleDecimateIdentityProperty(t *testing.T) {
	f := func(raw []float64, kSeed uint8) bool {
		if len(raw) > 30 {
			raw = raw[:30]
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		k := int(kSeed)%4 + 1
		n := core.NewNetwork()
		a := n.NewChannel("a", 0)
		b := n.NewChannel("b", 0)
		c := n.NewChannel("c", 0)
		n.Spawn(&FloatSliceSource{Values: raw, Out: a.Writer()})
		n.Spawn(&Upsample{Factor: k, In: a.Reader(), Out: b.Writer()})
		n.Spawn(&Decimate{Factor: k, In: b.Reader(), Out: c.Writer()})
		sink := &CollectFloat{In: c.Reader()}
		n.Spawn(sink)
		if n.Wait() != nil {
			return false
		}
		got := sink.Values()
		if len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
