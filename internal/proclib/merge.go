package proclib

import (
	"errors"
	"io"

	"dpn/internal/core"
	"dpn/internal/token"
)

// OrderedMerge merges N ascending int64 streams into one ascending
// stream, eliminating duplicates — the Merge process of the Hamming
// network (Figure 12). An input that reaches end of stream simply drops
// out of the merge; the merge itself ends when every input has ended.
type OrderedMerge struct {
	core.Iterative
	Ins []*core.ReadPort
	Out *core.WritePort

	heads  []int64
	loaded []bool
	done   []bool
	init   bool
}

// Step implements core.Stepper. Each step emits one element.
func (m *OrderedMerge) Step(env *core.Env) error {
	if !m.init {
		m.heads = make([]int64, len(m.Ins))
		m.loaded = make([]bool, len(m.Ins))
		m.done = make([]bool, len(m.Ins))
		m.init = true
	}
	// Fill every head slot.
	for i := range m.Ins {
		if m.loaded[i] || m.done[i] {
			continue
		}
		v, err := token.NewReader(m.Ins[i]).ReadInt64()
		if err == io.EOF {
			m.done[i] = true
			continue
		}
		if err != nil {
			return err
		}
		m.heads[i] = v
		m.loaded[i] = true
	}
	// Find the minimum head.
	var minV int64
	found := false
	for i := range m.Ins {
		if m.loaded[i] && (!found || m.heads[i] < minV) {
			minV = m.heads[i]
			found = true
		}
	}
	if !found {
		return io.EOF // every input ended
	}
	// Consume the minimum from every input that carries it (dedup).
	for i := range m.Ins {
		if m.loaded[i] && m.heads[i] == minV {
			m.loaded[i] = false
		}
	}
	return token.NewWriter(m.Out).WriteInt64(minV)
}

// ModSplit is the "mod" process of Figure 13: values divisible by N go
// to OutMultiple, all other values go to OutOther. With a small
// OutOther buffer the downstream ordered merge deadlocks even though
// the graph is acyclic — the paper's demonstration that bounded
// channels need run-time buffer management.
type ModSplit struct {
	core.Iterative
	N           int64
	In          *core.ReadPort
	OutMultiple *core.WritePort
	OutOther    *core.WritePort
}

// Step implements core.Stepper.
func (m *ModSplit) Step(env *core.Env) error {
	v, err := token.NewReader(m.In).ReadInt64()
	if err != nil {
		return err
	}
	if v%m.N == 0 {
		return token.NewWriter(m.OutMultiple).WriteInt64(v)
	}
	return token.NewWriter(m.OutOther).WriteInt64(v)
}

// Scatter distributes length-prefixed blocks from In to its outputs in
// round-robin order — the static load-balancing distributor of
// Figure 16: every worker receives the same number of tasks.
//
// Two failure modes are handled without poisoning the fan-out. If the
// input closes mid-block (a torn block: the length prefix or payload is
// cut short), nothing at all is emitted for the partial block — every
// downstream sees only whole length-prefixed blocks, because
// token.ReadBlock refuses to surface a truncated element and
// token.WriteBlock emits header and payload as one atomic sink write.
// If one downstream closes early, that lane is retired from the
// rotation and its block is redelivered to the next live lane; Scatter
// terminates only when the input ends or every lane is gone.
type Scatter struct {
	core.Iterative
	In   *core.ReadPort
	Outs []*core.WritePort

	next int
	done []bool
	live int
	buf  []byte
	init bool
}

// Step implements core.Stepper.
func (s *Scatter) Step(env *core.Env) error {
	if !s.init {
		s.done = make([]bool, len(s.Outs))
		s.live = len(s.Outs)
		s.init = true
	}
	if s.live == 0 {
		return io.EOF
	}
	b, err := token.NewReader(s.In).ReadBlockBuf(s.buf)
	if err != nil {
		// Torn block (io.ErrUnexpectedEOF) or end of input: either way
		// no partial element was surfaced, so nothing is emitted and the
		// close cascades cleanly (§3.4).
		return err
	}
	s.buf = b[:0]
	for s.live > 0 {
		for s.done[s.next] {
			s.next = (s.next + 1) % len(s.Outs)
		}
		out := s.Outs[s.next]
		s.next = (s.next + 1) % len(s.Outs)
		err := token.NewWriter(out).WriteBlock(b)
		if err == nil {
			return nil
		}
		if !core.IsTermination(err) {
			return err
		}
		// This lane's consumer is gone: retire it and redeliver the
		// block to the next live lane.
		s.retire(out)
	}
	return io.EOF // every lane retired with a block in hand
}

func (s *Scatter) retire(out *core.WritePort) {
	for i, o := range s.Outs {
		if o == out && !s.done[i] {
			s.done[i] = true
			s.live--
			o.Close()
		}
	}
}

// Gather collects length-prefixed blocks from its inputs in round-robin
// order — the static load-balancing collector of Figure 16. Because it
// insists on reading from worker k before worker k+1, all workers
// proceed in lock-step with the slowest one, which is exactly the
// behaviour the paper's evaluation shows to be wasteful on heterogeneous
// clusters.
//
// An input that ends mid-round is retired from the rotation and the
// merge continues over the survivors; the close cascades downstream
// only when every input has ended. (Without this, one early-closing
// upstream used to tear down the whole merge, stranding the blocks the
// other lanes were still producing.) A corrupt input — torn mid-block —
// still fails the merge: retiring it would silently drop data.
type Gather struct {
	core.Iterative
	Ins []*core.ReadPort
	Out *core.WritePort

	next int
	done []bool
	live int
	init bool
}

// Step implements core.Stepper. Each step forwards one block.
func (g *Gather) Step(env *core.Env) error {
	if !g.init {
		g.done = make([]bool, len(g.Ins))
		g.live = len(g.Ins)
		g.init = true
	}
	for g.live > 0 {
		for g.done[g.next] {
			g.next = (g.next + 1) % len(g.Ins)
		}
		in := g.Ins[g.next]
		b, err := token.NewReader(in).ReadBlock()
		if err == nil {
			g.next = (g.next + 1) % len(g.Ins)
			return token.NewWriter(g.Out).WriteBlock(b)
		}
		if !errors.Is(err, io.EOF) {
			return err // torn block or transport fault: not a clean close
		}
		// This lane ended: retire it and keep rotating.
		g.done[g.next] = true
		g.live--
		in.Close()
		g.next = (g.next + 1) % len(g.Ins)
	}
	return io.EOF // all inputs ended; cascade the close
}
