package proclib

import (
	"io"

	"dpn/internal/core"
	"dpn/internal/token"
)

// OrderedMerge merges N ascending int64 streams into one ascending
// stream, eliminating duplicates — the Merge process of the Hamming
// network (Figure 12). An input that reaches end of stream simply drops
// out of the merge; the merge itself ends when every input has ended.
type OrderedMerge struct {
	core.Iterative
	Ins []*core.ReadPort
	Out *core.WritePort

	heads  []int64
	loaded []bool
	done   []bool
	init   bool
}

// Step implements core.Stepper. Each step emits one element.
func (m *OrderedMerge) Step(env *core.Env) error {
	if !m.init {
		m.heads = make([]int64, len(m.Ins))
		m.loaded = make([]bool, len(m.Ins))
		m.done = make([]bool, len(m.Ins))
		m.init = true
	}
	// Fill every head slot.
	for i := range m.Ins {
		if m.loaded[i] || m.done[i] {
			continue
		}
		v, err := token.NewReader(m.Ins[i]).ReadInt64()
		if err == io.EOF {
			m.done[i] = true
			continue
		}
		if err != nil {
			return err
		}
		m.heads[i] = v
		m.loaded[i] = true
	}
	// Find the minimum head.
	var minV int64
	found := false
	for i := range m.Ins {
		if m.loaded[i] && (!found || m.heads[i] < minV) {
			minV = m.heads[i]
			found = true
		}
	}
	if !found {
		return io.EOF // every input ended
	}
	// Consume the minimum from every input that carries it (dedup).
	for i := range m.Ins {
		if m.loaded[i] && m.heads[i] == minV {
			m.loaded[i] = false
		}
	}
	return token.NewWriter(m.Out).WriteInt64(minV)
}

// ModSplit is the "mod" process of Figure 13: values divisible by N go
// to OutMultiple, all other values go to OutOther. With a small
// OutOther buffer the downstream ordered merge deadlocks even though
// the graph is acyclic — the paper's demonstration that bounded
// channels need run-time buffer management.
type ModSplit struct {
	core.Iterative
	N           int64
	In          *core.ReadPort
	OutMultiple *core.WritePort
	OutOther    *core.WritePort
}

// Step implements core.Stepper.
func (m *ModSplit) Step(env *core.Env) error {
	v, err := token.NewReader(m.In).ReadInt64()
	if err != nil {
		return err
	}
	if v%m.N == 0 {
		return token.NewWriter(m.OutMultiple).WriteInt64(v)
	}
	return token.NewWriter(m.OutOther).WriteInt64(v)
}

// Scatter distributes length-prefixed blocks from In to its outputs in
// round-robin order — the static load-balancing distributor of
// Figure 16: every worker receives the same number of tasks.
type Scatter struct {
	core.Iterative
	In   *core.ReadPort
	Outs []*core.WritePort

	next int
}

// Step implements core.Stepper.
func (s *Scatter) Step(env *core.Env) error {
	b, err := token.NewReader(s.In).ReadBlock()
	if err != nil {
		return err
	}
	out := s.Outs[s.next]
	s.next = (s.next + 1) % len(s.Outs)
	return token.NewWriter(out).WriteBlock(b)
}

// Gather collects length-prefixed blocks from its inputs in round-robin
// order — the static load-balancing collector of Figure 16. Because it
// insists on reading from worker k before worker k+1, all workers
// proceed in lock-step with the slowest one, which is exactly the
// behaviour the paper's evaluation shows to be wasteful on heterogeneous
// clusters.
type Gather struct {
	core.Iterative
	Ins []*core.ReadPort
	Out *core.WritePort

	next int
}

// Step implements core.Stepper.
func (g *Gather) Step(env *core.Env) error {
	b, err := token.NewReader(g.Ins[g.next]).ReadBlock()
	if err != nil {
		return err
	}
	g.next = (g.next + 1) % len(g.Ins)
	return token.NewWriter(g.Out).WriteBlock(b)
}
