package proclib

import (
	"fmt"
	"io"

	"dpn/internal/core"
	"dpn/internal/token"
)

// Modulo filters multiples of P out of an int64 stream — the filter
// stage of the Sieve of Eratosthenes (Figure 7). Values divisible by P
// are discarded; everything else passes through.
type Modulo struct {
	core.Iterative
	P   int64
	In  *core.ReadPort
	Out *core.WritePort
}

// Step implements core.Stepper.
func (m *Modulo) Step(env *core.Env) error {
	v, err := token.NewReader(m.In).ReadInt64()
	if err != nil {
		return err
	}
	if v%m.P == 0 {
		return nil
	}
	return token.NewWriter(m.Out).WriteInt64(v)
}

// Sift is the iterative self-modifying sieve process of Figure 8: each
// step reads the next prime from its input, emits it, and inserts a new
// Modulo process *upstream of itself* to remove that prime's multiples.
// The Modulo process takes over Sift's previous input channel exactly
// where Sift left off, so no data element is lost or repeated (§3.3).
type Sift struct {
	core.Iterative
	In  *core.ReadPort
	Out *core.WritePort
	// ChannelCapacity sets the buffer size of inserted channels
	// (default: network default).
	ChannelCapacity int
}

// Step implements core.Stepper.
func (s *Sift) Step(env *core.Env) error {
	prime, err := token.NewReader(s.In).ReadInt64()
	if err != nil {
		return err
	}
	if err := token.NewWriter(s.Out).WriteInt64(prime); err != nil {
		return err
	}
	s.In = core.InsertUpstream(env, s.In, fmt.Sprintf("mod%d", prime), s.ChannelCapacity,
		func(handedOff *core.ReadPort, out *core.WritePort) {
			env.Spawn(&Modulo{P: prime, In: handedOff, Out: out})
		})
	return nil
}

// SiftRecursive is the recursive variant of Figure 7: the process reads
// one prime, emits it, then *replaces itself* in the program graph with
// a Modulo process (filtering that prime's multiples) feeding a fresh
// SiftRecursive, and terminates. Its ports are handed to the new
// processes, so the runtime must not close them — the fields are cleared
// before returning.
type SiftRecursive struct {
	core.Iterative
	In  *core.ReadPort
	Out *core.WritePort
	// ChannelCapacity sets the buffer size of the channel created
	// between the replacement Modulo and SiftRecursive processes.
	ChannelCapacity int
}

// Step implements core.Stepper.
func (s *SiftRecursive) Step(env *core.Env) error {
	prime, err := token.NewReader(s.In).ReadInt64()
	if err != nil {
		return err
	}
	if err := token.NewWriter(s.Out).WriteInt64(prime); err != nil {
		return err
	}
	ch := env.NewChannel(fmt.Sprintf("sift%d", prime), s.ChannelCapacity)
	env.Spawn(&Modulo{P: prime, In: s.In, Out: ch.Writer()})
	env.Spawn(&SiftRecursive{In: ch.Reader(), Out: s.Out, ChannelCapacity: s.ChannelCapacity})
	s.In, s.Out = nil, nil
	return io.EOF
}
