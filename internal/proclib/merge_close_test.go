package proclib

import (
	"errors"
	"io"
	"testing"

	"dpn/internal/core"
	"dpn/internal/token"
)

// writeBlocks writes the given blocks to w and closes it.
func writeBlocks(w *core.WritePort, blocks ...[]byte) {
	tw := token.NewWriter(w)
	for _, b := range blocks {
		if err := tw.WriteBlock(b); err != nil {
			break
		}
	}
	w.Close()
}

// readAllBlocks drains r, returning every whole block and the error
// that ended the stream.
func readAllBlocks(r *core.ReadPort) ([][]byte, error) {
	tr := token.NewReader(r)
	var out [][]byte
	for {
		b, err := tr.ReadBlock()
		if err != nil {
			return out, err
		}
		out = append(out, append([]byte(nil), b...))
	}
}

func eqBlocks(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d blocks %q, want %d %q", len(got), got, len(want), want)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("block %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestGatherStaggeredClose is the regression for the round-robin stall:
// inputs that close early mid-round must retire from the rotation while
// the survivors keep merging; the close cascades only when all inputs
// have ended. (Previously the first EOF mid-round tore down the whole
// merge, stranding every block the other lanes still had to deliver.)
func TestGatherStaggeredClose(t *testing.T) {
	n := core.NewNetwork()
	in0 := n.NewChannel("in0", 0)
	in1 := n.NewChannel("in1", 0)
	in2 := n.NewChannel("in2", 0)
	out := n.NewChannel("out", 0)
	go writeBlocks(in0.Writer(), []byte("a0"))
	go writeBlocks(in1.Writer(), []byte("b0"), []byte("b1"), []byte("b2"))
	go writeBlocks(in2.Writer(), []byte("c0"), []byte("c1"), []byte("c2"), []byte("c3"), []byte("c4"))
	n.Spawn(&Gather{
		Ins: []*core.ReadPort{in0.Reader(), in1.Reader(), in2.Reader()},
		Out: out.Writer(),
	})
	got, err := readAllBlocks(out.Reader())
	if err != io.EOF {
		t.Fatalf("merge ended with %v, want io.EOF", err)
	}
	// Round-robin with lanes dropping out as they close.
	eqBlocks(t, got, [][]byte{
		[]byte("a0"), []byte("b0"), []byte("c0"), // full round
		[]byte("b1"), []byte("c1"), // lane 0 retired
		[]byte("b2"), []byte("c2"),
		[]byte("c3"), []byte("c4"), // lane 1 retired
	})
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestGatherAllClosedCascades checks the all-inputs-ended case still
// cascades a clean close downstream.
func TestGatherAllClosedCascades(t *testing.T) {
	n := core.NewNetwork()
	in0 := n.NewChannel("in0", 0)
	in1 := n.NewChannel("in1", 0)
	out := n.NewChannel("out", 0)
	in0.Writer().Close()
	in1.Writer().Close()
	n.Spawn(&Gather{Ins: []*core.ReadPort{in0.Reader(), in1.Reader()}, Out: out.Writer()})
	got, err := readAllBlocks(out.Reader())
	if err != io.EOF || len(got) != 0 {
		t.Fatalf("got %q, %v; want clean empty EOF", got, err)
	}
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestGatherCorruptInputStopsMerge distinguishes a clean close from a
// torn block: a lane cut off mid-element is data loss, so the merge
// must stop rather than silently retire the lane and continue.
func TestGatherCorruptInputStopsMerge(t *testing.T) {
	n := core.NewNetwork()
	in0 := n.NewChannel("in0", 0)
	in1 := n.NewChannel("in1", 0)
	out := n.NewChannel("out", 0)
	go writeBlocks(in0.Writer(), []byte("a0"), []byte("a1"))
	go func() {
		w := in1.Writer()
		w.Write([]byte{0, 0, 0, 9}) // prefix promising 9 bytes...
		w.Write([]byte("abc"))      // ...but only 3 arrive
		w.Close()
	}()
	n.Spawn(&Gather{Ins: []*core.ReadPort{in0.Reader(), in1.Reader()}, Out: out.Writer()})
	got, err := readAllBlocks(out.Reader())
	if err != io.EOF {
		t.Fatalf("downstream ended with %v", err)
	}
	// Only the block read before the tear was forwarded; the corrupt
	// lane was not retired-and-skipped.
	eqBlocks(t, got, [][]byte{[]byte("a0")})
	if err := n.Wait(); err != nil {
		t.Fatal(err) // cascade shutdown, not a process failure
	}
}

// TestScatterTornBlockEmitsNothing is the torn-block regression: when
// the input closes mid-block, no downstream may see any fragment of the
// partial block — every output carries only whole length-prefixed
// blocks.
func TestScatterTornBlockEmitsNothing(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	out0 := n.NewChannel("out0", 0)
	out1 := n.NewChannel("out1", 0)
	go func() {
		w := in.Writer()
		token.NewWriter(w).WriteBlock([]byte("whole"))
		w.Write([]byte{0, 0, 0, 200}) // torn: prefix without its payload
		w.Write([]byte("partial"))
		w.Close()
	}()
	n.Spawn(&Scatter{In: in.Reader(), Outs: []*core.WritePort{out0.Writer(), out1.Writer()}})
	type res struct {
		blocks [][]byte
		err    error
	}
	results := make([]res, 2)
	done := make(chan int, 2)
	for i, r := range []*core.ReadPort{out0.Reader(), out1.Reader()} {
		go func(i int, r *core.ReadPort) {
			b, err := readAllBlocks(r)
			results[i] = res{b, err}
			done <- i
		}(i, r)
	}
	<-done
	<-done
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eqBlocks(t, results[0].blocks, [][]byte{[]byte("whole")})
	eqBlocks(t, results[1].blocks, nil)
	for i, r := range results {
		if !errors.Is(r.err, io.EOF) {
			t.Fatalf("downstream %d ended with %v, want clean io.EOF", i, r.err)
		}
	}
}

// TestScatterDeadLaneRedelivery checks that a downstream that closes
// early is retired from the rotation and its block is redelivered to
// the next live lane — no task is lost and the fan-out survives.
func TestScatterDeadLaneRedelivery(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	out0 := n.NewChannel("out0", 0)
	out1 := n.NewChannel("out1", 0)
	out2 := n.NewChannel("out2", 0)
	out1.Reader().Close() // lane 1's consumer is already gone
	go writeBlocks(in.Writer(),
		[]byte("t0"), []byte("t1"), []byte("t2"), []byte("t3"), []byte("t4"), []byte("t5"))
	n.Spawn(&Scatter{In: in.Reader(), Outs: []*core.WritePort{out0.Writer(), out1.Writer(), out2.Writer()}})
	var got0, got2 [][]byte
	done := make(chan struct{}, 2)
	go func() { got0, _ = readAllBlocks(out0.Reader()); done <- struct{}{} }()
	go func() { got2, _ = readAllBlocks(out2.Reader()); done <- struct{}{} }()
	<-done
	<-done
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	// t1 hits the dead lane and is redelivered to lane 2; thereafter the
	// rotation alternates over the two survivors.
	eqBlocks(t, got0, [][]byte{[]byte("t0"), []byte("t2"), []byte("t4")})
	eqBlocks(t, got2, [][]byte{[]byte("t1"), []byte("t3"), []byte("t5")})
}
