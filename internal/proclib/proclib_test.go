package proclib

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"dpn/internal/core"
	"dpn/internal/token"
)

// run builds a network, applies build, waits for completion, and fails
// the test on any process error.
func run(t *testing.T, build func(n *core.Network)) {
	t.Helper()
	n := core.NewNetwork()
	build(n)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
}

func eqInt64(t *testing.T, got, want []int64) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestConstant(t *testing.T) {
	n := core.NewNetwork()
	ch := n.NewChannel("c", 0)
	c := &Constant{Value: 7, Out: ch.Writer()}
	c.Iterations = 3
	n.Spawn(c)
	sink := &Collect{In: ch.Reader()}
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eqInt64(t, sink.Values(), []int64{7, 7, 7})
}

func TestSequenceStrideAndLimit(t *testing.T) {
	n := core.NewNetwork()
	ch := n.NewChannel("c", 0)
	s := &Sequence{From: 10, Stride: 5, Out: ch.Writer()}
	s.Iterations = 4
	n.Spawn(s)
	sink := &Collect{In: ch.Reader()}
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eqInt64(t, sink.Values(), []int64{10, 15, 20, 25})
}

func TestSequenceDefaultStride(t *testing.T) {
	n := core.NewNetwork()
	ch := n.NewChannel("c", 0)
	s := &Sequence{From: 2, Out: ch.Writer()}
	s.Iterations = 3
	n.Spawn(s)
	sink := &Collect{In: ch.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{2, 3, 4})
}

func TestSliceSourceAndCollect(t *testing.T) {
	n := core.NewNetwork()
	ch := n.NewChannel("c", 0)
	n.Spawn(&SliceSource{Values: []int64{5, -3, 0}, Out: ch.Writer()})
	sink := &Collect{In: ch.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{5, -3, 0})
}

func TestFloatSliceSourceAndCollectFloat(t *testing.T) {
	n := core.NewNetwork()
	ch := n.NewChannel("c", 0)
	n.Spawn(&FloatSliceSource{Values: []float64{1.5, math.Pi}, Out: ch.Writer()})
	sink := &CollectFloat{In: ch.Reader()}
	n.Spawn(sink)
	n.Wait()
	got := sink.Values()
	if len(got) != 2 || got[0] != 1.5 || got[1] != math.Pi {
		t.Fatalf("got %v", got)
	}
}

func TestPassThrough(t *testing.T) {
	n := core.NewNetwork()
	a := n.NewChannel("a", 0)
	b := n.NewChannel("b", 0)
	n.Spawn(&SliceSource{Values: []int64{1, 2, 3}, Out: a.Writer()})
	n.Spawn(&PassThrough{In: a.Reader(), Out: b.Writer()})
	sink := &Collect{In: b.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{1, 2, 3})
}

func TestDuplicateThreeWays(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	outs := []*core.Channel{n.NewChannel("o1", 0), n.NewChannel("o2", 0), n.NewChannel("o3", 0)}
	n.Spawn(&SliceSource{Values: []int64{4, 5, 6}, Out: in.Writer()})
	n.Spawn(&Duplicate{In: in.Reader(), Outs: []*core.WritePort{
		outs[0].Writer(), outs[1].Writer(), outs[2].Writer(),
	}})
	sinks := make([]*Collect, 3)
	for i, o := range outs {
		sinks[i] = &Collect{In: o.Reader()}
		n.Spawn(sinks[i])
	}
	n.Wait()
	for i := range sinks {
		eqInt64(t, sinks[i].Values(), []int64{4, 5, 6})
	}
}

func TestConsHeadBytes(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	out := n.NewChannel("out", 0)
	n.Spawn(&SliceSource{Values: []int64{2, 3}, Out: in.Writer()})
	n.Spawn(NewConsInt64(1, in.Reader(), out.Writer(), false))
	sink := &Collect{In: out.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{1, 2, 3})
}

func TestConsHeadStream(t *testing.T) {
	n := core.NewNetwork()
	head := n.NewChannel("head", 0)
	in := n.NewChannel("in", 0)
	out := n.NewChannel("out", 0)
	c := &Constant{Value: 9, Out: head.Writer()}
	c.Iterations = 2
	n.Spawn(c)
	n.Spawn(&SliceSource{Values: []int64{1}, Out: in.Writer()})
	n.Spawn(&Cons{HeadIn: head.Reader(), In: in.Reader(), Out: out.Writer()})
	sink := &Collect{In: out.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{9, 9, 1})
}

func TestConsSelfRemove(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	out := n.NewChannel("out", 0)
	vals := make([]int64, 50)
	for i := range vals {
		vals[i] = int64(i)
	}
	n.Spawn(&SliceSource{Values: vals, Out: in.Writer()})
	n.Spawn(NewConsInt64(-1, in.Reader(), out.Writer(), true))
	sink := &Collect{In: out.Reader()}
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	want := append([]int64{-1}, vals...)
	eqInt64(t, sink.Values(), want)
}

func TestNewConsFloat64(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	out := n.NewChannel("out", 0)
	n.Spawn(&FloatSliceSource{Values: []float64{2.5}, Out: in.Writer()})
	n.Spawn(NewConsFloat64(1.5, in.Reader(), out.Writer(), false))
	sink := &CollectFloat{In: out.Reader()}
	n.Spawn(sink)
	n.Wait()
	got := sink.Values()
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestTakeBoundsInfiniteStream(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	out := n.NewChannel("out", 0)
	n.Spawn(&Sequence{From: 0, Out: in.Writer()}) // unbounded
	n.Spawn(&Take{N: 4, In: in.Reader(), Out: out.Writer()})
	sink := &Collect{In: out.Reader()}
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eqInt64(t, sink.Values(), []int64{0, 1, 2, 3})
}

func TestDiscard(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	n.Spawn(&SliceSource{Values: []int64{1, 2, 3}, Out: in.Writer()})
	n.Spawn(&Discard{In: in.Reader()})
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAdd(t *testing.T) {
	n := core.NewNetwork()
	a := n.NewChannel("a", 0)
	b := n.NewChannel("b", 0)
	o := n.NewChannel("o", 0)
	n.Spawn(&SliceSource{Values: []int64{1, 2, 3}, Out: a.Writer()})
	n.Spawn(&SliceSource{Values: []int64{10, 20, 30}, Out: b.Writer()})
	n.Spawn(&Add{InA: a.Reader(), InB: b.Reader(), Out: o.Writer()})
	sink := &Collect{In: o.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{11, 22, 33})
}

func TestScale(t *testing.T) {
	n := core.NewNetwork()
	a := n.NewChannel("a", 0)
	o := n.NewChannel("o", 0)
	n.Spawn(&SliceSource{Values: []int64{1, -2, 3}, Out: a.Writer()})
	n.Spawn(&Scale{Factor: 5, In: a.Reader(), Out: o.Writer()})
	sink := &Collect{In: o.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{5, -10, 15})
}

func TestDivideAverageEqual(t *testing.T) {
	n := core.NewNetwork()
	a := n.NewChannel("a", 0)
	b := n.NewChannel("b", 0)
	q := n.NewChannel("q", 0)
	n.Spawn(&FloatSliceSource{Values: []float64{8, 9}, Out: a.Writer()})
	n.Spawn(&FloatSliceSource{Values: []float64{2, 3}, Out: b.Writer()})
	n.Spawn(&Divide{InA: a.Reader(), InB: b.Reader(), Out: q.Writer()})
	sink := &CollectFloat{In: q.Reader()}
	n.Spawn(sink)
	n.Wait()
	got := sink.Values()
	if len(got) != 2 || got[0] != 4 || got[1] != 3 {
		t.Fatalf("Divide got %v", got)
	}

	n2 := core.NewNetwork()
	a2 := n2.NewChannel("a", 0)
	b2 := n2.NewChannel("b", 0)
	o2 := n2.NewChannel("o", 0)
	n2.Spawn(&FloatSliceSource{Values: []float64{1, 10}, Out: a2.Writer()})
	n2.Spawn(&FloatSliceSource{Values: []float64{3, 30}, Out: b2.Writer()})
	n2.Spawn(&Average{InA: a2.Reader(), InB: b2.Reader(), Out: o2.Writer()})
	s2 := &CollectFloat{In: o2.Reader()}
	n2.Spawn(s2)
	n2.Wait()
	got2 := s2.Values()
	if len(got2) != 2 || got2[0] != 2 || got2[1] != 20 {
		t.Fatalf("Average got %v", got2)
	}
}

func TestEqualExactAndTolerance(t *testing.T) {
	check := func(tol float64, a, b []float64, want []bool) {
		t.Helper()
		n := core.NewNetwork()
		ca := n.NewChannel("a", 0)
		cb := n.NewChannel("b", 0)
		co := n.NewChannel("o", 0)
		n.Spawn(&FloatSliceSource{Values: a, Out: ca.Writer()})
		n.Spawn(&FloatSliceSource{Values: b, Out: cb.Writer()})
		n.Spawn(&Equal{InA: ca.Reader(), InB: cb.Reader(), Out: co.Writer(), Tolerance: tol})
		got := readBools(t, n, co.Reader(), len(want))
		n.Wait()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tol=%v: got %v, want %v", tol, got, want)
		}
	}
	check(0, []float64{1, 2}, []float64{1, 2.0001}, []bool{true, false})
	check(0.001, []float64{1, 2}, []float64{1.0005, 2.01}, []bool{true, false})
}

func readBools(t *testing.T, n *core.Network, in *core.ReadPort, count int) []bool {
	t.Helper()
	r := token.NewReader(in)
	out := make([]bool, 0, count)
	for i := 0; i < count; i++ {
		v, err := r.ReadBool()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	in.Close()
	return out
}

func TestGuardPassesAndDiscards(t *testing.T) {
	n := core.NewNetwork()
	data := n.NewChannel("data", 0)
	ctl := n.NewChannel("ctl", 0)
	out := n.NewChannel("out", 0)
	n.Spawn(&FloatSliceSource{Values: []float64{1, 2, 3, 4}, Out: data.Writer()})
	n.Spawn(&boolSource{vals: []bool{false, true, false, true}, Out: ctl.Writer()})
	n.Spawn(&Guard{In: data.Reader(), Control: ctl.Reader(), Out: out.Writer()})
	sink := &CollectFloat{In: out.Reader()}
	n.Spawn(sink)
	n.Wait()
	got := sink.Values()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestGuardStopAfterPass(t *testing.T) {
	n := core.NewNetwork()
	data := n.NewChannel("data", 0)
	ctl := n.NewChannel("ctl", 0)
	out := n.NewChannel("out", 0)
	// Unbounded inputs: only the guard's data-dependent stop ends them.
	n.Spawn(&ConstantFloat{Value: 42, Out: data.Writer()})
	n.Spawn(&boolSource{vals: []bool{false, false, true}, repeatLast: true, Out: ctl.Writer()})
	n.Spawn(&Guard{In: data.Reader(), Control: ctl.Reader(), Out: out.Writer(), StopAfterPass: true})
	sink := &CollectFloat{In: out.Reader()}
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	got := sink.Values()
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

// boolSource emits a fixed bool pattern, optionally repeating the last
// value forever.
type boolSource struct {
	vals       []bool
	repeatLast bool
	Out        *core.WritePort
	i          int
}

func (b *boolSource) Step(env *core.Env) error {
	var v bool
	switch {
	case b.i < len(b.vals):
		v = b.vals[b.i]
		b.i++
	case b.repeatLast && len(b.vals) > 0:
		v = b.vals[len(b.vals)-1]
	default:
		return io.EOF
	}
	return token.NewWriter(b.Out).WriteBool(v)
}

func TestModuloFilters(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	out := n.NewChannel("out", 0)
	n.Spawn(&SliceSource{Values: []int64{2, 3, 4, 5, 6, 7, 8, 9}, Out: in.Writer()})
	n.Spawn(&Modulo{P: 2, In: in.Reader(), Out: out.Writer()})
	sink := &Collect{In: out.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{3, 5, 7, 9})
}

// referencePrimes returns all primes < limit by trial division.
func referencePrimes(limit int64) []int64 {
	var out []int64
	for v := int64(2); v < limit; v++ {
		isP := true
		for d := int64(2); d*d <= v; d++ {
			if v%d == 0 {
				isP = false
				break
			}
		}
		if isP {
			out = append(out, v)
		}
	}
	return out
}

func TestSieveIterativeBounded(t *testing.T) {
	n := core.NewNetwork()
	src := n.NewChannel("src", 0)
	out := n.NewChannel("out", 0)
	seq := &Sequence{From: 2, Out: src.Writer()}
	seq.Iterations = 98 // 2..99
	n.Spawn(seq)
	n.Spawn(&Sift{In: src.Reader(), Out: out.Writer()})
	sink := &Collect{In: out.Reader()}
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eqInt64(t, sink.Values(), referencePrimes(100))
}

func TestSieveRecursiveBounded(t *testing.T) {
	n := core.NewNetwork()
	src := n.NewChannel("src", 0)
	out := n.NewChannel("out", 0)
	seq := &Sequence{From: 2, Out: src.Writer()}
	seq.Iterations = 98
	n.Spawn(seq)
	n.Spawn(&SiftRecursive{In: src.Reader(), Out: out.Writer()})
	sink := &Collect{In: out.Reader()}
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	eqInt64(t, sink.Values(), referencePrimes(100))
}

func TestSieveFirstNPrimesTerminatesUpstream(t *testing.T) {
	// Unbounded integer source; the sink's iteration limit poisons the
	// chain (§3.4 "compute the first 100 prime numbers").
	n := core.NewNetwork()
	src := n.NewChannel("src", 0)
	out := n.NewChannel("out", 0)
	n.Spawn(&Sequence{From: 2, Out: src.Writer()})
	n.Spawn(&Sift{In: src.Reader(), Out: out.Writer()})
	sink := &Collect{In: out.Reader()}
	sink.Iterations = 25
	n.Spawn(sink)
	if err := n.Wait(); err != nil {
		t.Fatal(err)
	}
	want := referencePrimes(100) // 25 primes below 100
	eqInt64(t, sink.Values(), want[:25])
}

func TestOrderedMergeDedup(t *testing.T) {
	n := core.NewNetwork()
	a := n.NewChannel("a", 0)
	b := n.NewChannel("b", 0)
	c := n.NewChannel("c", 0)
	o := n.NewChannel("o", 0)
	n.Spawn(&SliceSource{Values: []int64{1, 3, 5, 7}, Out: a.Writer()})
	n.Spawn(&SliceSource{Values: []int64{1, 2, 3}, Out: b.Writer()})
	n.Spawn(&SliceSource{Values: []int64{6}, Out: c.Writer()})
	n.Spawn(&OrderedMerge{Ins: []*core.ReadPort{a.Reader(), b.Reader(), c.Reader()}, Out: o.Writer()})
	sink := &Collect{In: o.Reader()}
	n.Spawn(sink)
	n.Wait()
	eqInt64(t, sink.Values(), []int64{1, 2, 3, 5, 6, 7})
}

func TestOrderedMergeProperty(t *testing.T) {
	f := func(xs, ys []int64) bool {
		sortInt64(xs)
		sortInt64(ys)
		xs = dedup(xs)
		ys = dedup(ys)
		n := core.NewNetwork()
		a := n.NewChannel("a", 0)
		b := n.NewChannel("b", 0)
		o := n.NewChannel("o", 0)
		n.Spawn(&SliceSource{Values: xs, Out: a.Writer()})
		n.Spawn(&SliceSource{Values: ys, Out: b.Writer()})
		n.Spawn(&OrderedMerge{Ins: []*core.ReadPort{a.Reader(), b.Reader()}, Out: o.Writer()})
		sink := &Collect{In: o.Reader()}
		n.Spawn(sink)
		if n.Wait() != nil {
			return false
		}
		want := dedup(mergeSorted(xs, ys))
		return reflect.DeepEqual(sink.Values(), want) ||
			(len(want) == 0 && len(sink.Values()) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sortInt64(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func dedup(xs []int64) []int64 {
	var out []int64
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func mergeSorted(a, b []int64) []int64 {
	out := append(append([]int64{}, a...), b...)
	sortInt64(out)
	return out
}

func TestModSplit(t *testing.T) {
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	mul := n.NewChannel("mul", 0)
	oth := n.NewChannel("oth", 0)
	n.Spawn(&SliceSource{Values: []int64{1, 2, 3, 4, 5, 6}, Out: in.Writer()})
	n.Spawn(&ModSplit{N: 3, In: in.Reader(), OutMultiple: mul.Writer(), OutOther: oth.Writer()})
	s1 := &Collect{In: mul.Reader()}
	s2 := &Collect{In: oth.Reader()}
	n.Spawn(s1)
	n.Spawn(s2)
	n.Wait()
	eqInt64(t, s1.Values(), []int64{3, 6})
	eqInt64(t, s2.Values(), []int64{1, 2, 4, 5})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	// Scatter blocks to 3 paths and gather them back: order preserved.
	n := core.NewNetwork()
	in := n.NewChannel("in", 0)
	out := n.NewChannel("out", 0)
	mids := make([]*core.Channel, 3)
	ins := make([]*core.ReadPort, 3)
	outs := make([]*core.WritePort, 3)
	for i := range mids {
		mids[i] = n.NewChannel("m", 0)
		outs[i] = mids[i].Writer()
		ins[i] = mids[i].Reader()
	}
	go func() {
		w := token.NewWriter(in.Writer())
		for i := 0; i < 10; i++ {
			w.WriteBlock([]byte{byte(i)})
		}
		in.Writer().Close()
	}()
	n.Spawn(&Scatter{In: in.Reader(), Outs: outs})
	n.Spawn(&Gather{Ins: ins, Out: out.Writer()})
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := token.NewReader(out.Reader())
		for {
			b, err := r.ReadBlock()
			if err != nil {
				return
			}
			got = append(got, b...)
		}
	}()
	n.Wait()
	<-done
	want := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestPrintFormats(t *testing.T) {
	var buf bytes.Buffer
	n := core.NewNetwork()
	ch := n.NewChannel("c", 0)
	n.Spawn(&SliceSource{Values: []int64{1, 2}, Out: ch.Writer()})
	p := &Print{In: ch.Reader(), Label: "x"}
	p.SetOutput(&buf)
	n.Spawn(p)
	n.Wait()
	if got := buf.String(); got != "x: 1\nx: 2\n" {
		t.Fatalf("got %q", got)
	}

	buf.Reset()
	n2 := core.NewNetwork()
	ch2 := n2.NewChannel("c", 0)
	n2.Spawn(&FloatSliceSource{Values: []float64{0.5}, Out: ch2.Writer()})
	p2 := &Print{In: ch2.Reader(), Format: "float64"}
	p2.SetOutput(&buf)
	n2.Spawn(p2)
	n2.Wait()
	if got := buf.String(); got != "0.5\n" {
		t.Fatalf("got %q", got)
	}
}

func TestPrintBadFormat(t *testing.T) {
	n := core.NewNetwork()
	ch := n.NewChannel("c", 0)
	n.Spawn(&SliceSource{Values: []int64{1}, Out: ch.Writer()})
	p := &Print{In: ch.Reader(), Format: "nope"}
	p.SetOutput(io.Discard)
	n.Spawn(p)
	if err := n.Wait(); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestCount(t *testing.T) {
	n := core.NewNetwork()
	ch := n.NewChannel("c", 0)
	n.Spawn(&SliceSource{Values: []int64{1, 2, 3, 4}, Out: ch.Writer()})
	c := &Count{In: ch.Reader()}
	n.Spawn(c)
	n.Wait()
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
}
