package proclib

import "encoding/gob"

// init registers every process type with gob so that graphs built from
// library processes can be serialized to remote compute servers. The
// registration mirrors the role of having class files available to the
// Java deserializer.
func init() {
	gob.Register(&Constant{})
	gob.Register(&ConstantFloat{})
	gob.Register(&Sequence{})
	gob.Register(&SliceSource{})
	gob.Register(&FloatSliceSource{})
	gob.Register(&PassThrough{})
	gob.Register(&Duplicate{})
	gob.Register(&Cons{})
	gob.Register(&Discard{})
	gob.Register(&Take{})
	gob.Register(&Add{})
	gob.Register(&Scale{})
	gob.Register(&Divide{})
	gob.Register(&Average{})
	gob.Register(&Equal{})
	gob.Register(&Guard{})
	gob.Register(&Modulo{})
	gob.Register(&Sift{})
	gob.Register(&SiftRecursive{})
	gob.Register(&OrderedMerge{})
	gob.Register(&ModSplit{})
	gob.Register(&Scatter{})
	gob.Register(&Gather{})
	gob.Register(&Print{})
	gob.Register(&Collect{})
	gob.Register(&CollectFloat{})
	gob.Register(&Count{})
	gob.Register(&FIR{})
	gob.Register(&Delay{})
	gob.Register(&Decimate{})
	gob.Register(&Upsample{})
}
