// Package proclib is the standard process library for the
// process-network runtime: the concrete process types used throughout
// the paper's examples — sources (Constant, Sequence), plumbing
// (Duplicate, Cons, PassThrough), arithmetic (Add, Scale, Divide,
// Average, Equal), the Sieve of Eratosthenes (Modulo, Sift,
// SiftRecursive), ordered merging for the Hamming network, the Figure 13
// splitter, static scatter/gather, and sinks (Print, Collect, Discard).
//
// Conventions:
//
//   - Channels carry bytes; these processes layer typed elements on top
//     with package token (int64 and float64 elements are 8 bytes,
//     variable-size elements are length-prefixed blocks).
//   - Every process type has exported fields only, is registered with
//     encoding/gob, and holds its ports in exported fields so the
//     runtime can discover and close them when the process stops — and
//     so graphs can be serialized to remote compute servers.
//   - Processes with a natural iteration count embed core.Iterative;
//     setting Iterations imposes the fixed iteration limit of §3.4.
package proclib
