package proclib

import (
	"dpn/internal/core"
	"dpn/internal/token"
)

// The paper motivates process networks with signal processing
// applications ("they are well suited to a variety of signal
// processing and scientific computation applications", §1). This file
// provides the basic streaming DSP blocks a sample-rate application
// needs: an FIR filter, a unit-delay line, a decimator, and an
// upsampler. All operate on float64 sample streams.

// FIR is a finite-impulse-response filter: each output sample is the
// dot product of the coefficient vector with the most recent input
// samples, y[n] = Σ Taps[k]·x[n−k]. The filter history starts at zero
// (the stream is treated as preceded by silence).
type FIR struct {
	core.Iterative
	Taps []float64
	In   *core.ReadPort
	Out  *core.WritePort

	history []float64 // ring of the last len(Taps) inputs
	pos     int
	primed  bool
}

// Step implements core.Stepper.
func (f *FIR) Step(env *core.Env) error {
	if !f.primed {
		f.history = make([]float64, len(f.Taps))
		f.primed = true
	}
	x, err := token.NewReader(f.In).ReadFloat64()
	if err != nil {
		return err
	}
	f.history[f.pos] = x
	acc := 0.0
	idx := f.pos
	for _, tap := range f.Taps {
		acc += tap * f.history[idx]
		idx--
		if idx < 0 {
			idx = len(f.history) - 1
		}
	}
	f.pos++
	if f.pos == len(f.history) {
		f.pos = 0
	}
	return token.NewWriter(f.Out).WriteFloat64(acc)
}

// Delay outputs Initial values first and then echoes its input — the
// z⁻ᵏ operator of dataflow diagrams, and exactly a float64 Cons. It is
// the standard way to break feedback loops in signal-processing
// graphs.
type Delay struct {
	core.Iterative
	Initial []float64
	In      *core.ReadPort
	Out     *core.WritePort

	emitted bool
}

// OnStart implements core.Starter: the initial samples are produced
// before any input is consumed.
func (d *Delay) OnStart(env *core.Env) error {
	w := token.NewWriter(d.Out)
	for _, v := range d.Initial {
		if err := w.WriteFloat64(v); err != nil {
			return err
		}
	}
	d.emitted = true
	return nil
}

// Step implements core.Stepper.
func (d *Delay) Step(env *core.Env) error {
	v, err := token.NewReader(d.In).ReadFloat64()
	if err != nil {
		return err
	}
	return token.NewWriter(d.Out).WriteFloat64(v)
}

// Decimate keeps one sample of every Factor input samples (the first
// of each group), reducing the sample rate.
type Decimate struct {
	core.Iterative
	Factor int
	In     *core.ReadPort
	Out    *core.WritePort
}

// Step implements core.Stepper.
func (d *Decimate) Step(env *core.Env) error {
	r := token.NewReader(d.In)
	keep, err := r.ReadFloat64()
	if err != nil {
		return err
	}
	n := d.Factor
	if n < 1 {
		n = 1
	}
	for i := 1; i < n; i++ {
		if _, err := r.ReadFloat64(); err != nil {
			return err
		}
	}
	return token.NewWriter(d.Out).WriteFloat64(keep)
}

// Upsample emits each input sample followed by Factor−1 zeros,
// raising the sample rate (zero-stuffing; follow with an FIR to
// interpolate).
type Upsample struct {
	core.Iterative
	Factor int
	In     *core.ReadPort
	Out    *core.WritePort
}

// Step implements core.Stepper.
func (u *Upsample) Step(env *core.Env) error {
	v, err := token.NewReader(u.In).ReadFloat64()
	if err != nil {
		return err
	}
	w := token.NewWriter(u.Out)
	if err := w.WriteFloat64(v); err != nil {
		return err
	}
	n := u.Factor
	for i := 1; i < n; i++ {
		if err := w.WriteFloat64(0); err != nil {
			return err
		}
	}
	return nil
}
