package proclib

import (
	"io"

	"dpn/internal/core"
	"dpn/internal/token"
)

// defaultChunk is the copy granularity for byte-oriented processes. The
// Java implementation copies one byte per step (Figure 5); copying in
// chunks preserves FIFO order per output while being far cheaper.
const defaultChunk = 1024

// PassThrough copies bytes from In to Out unchanged — an identity
// process, the behaviour of Cons after its head element is delivered.
type PassThrough struct {
	core.Iterative
	In  *core.ReadPort
	Out *core.WritePort

	buf []byte
}

// Step implements core.Stepper.
func (p *PassThrough) Step(env *core.Env) error {
	if p.buf == nil {
		p.buf = make([]byte, defaultChunk)
	}
	n, err := p.In.Read(p.buf)
	if err != nil {
		return err
	}
	_, err = p.Out.Write(p.buf[:n])
	return err
}

// Duplicate copies its input stream to every output stream — the stream
// copying process of Figures 2 and 5. It is type-independent: bytes are
// copied without interpretation, so the same process duplicates int64,
// float64, or block streams.
type Duplicate struct {
	core.Iterative
	In   *core.ReadPort
	Outs []*core.WritePort
	// Chunk is the per-step copy size in bytes (default 1024). Set it
	// to the element width if an iteration limit in elements is needed.
	Chunk int

	buf []byte
}

// Step implements core.Stepper.
func (d *Duplicate) Step(env *core.Env) error {
	if d.buf == nil {
		c := d.Chunk
		if c <= 0 {
			c = defaultChunk
		}
		d.buf = make([]byte, c)
	}
	n, err := d.In.Read(d.buf)
	if err != nil {
		return err
	}
	for _, o := range d.Outs {
		if _, err := o.Write(d.buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// Cons inserts pre-encoded head elements at the front of a stream and
// then behaves as an identity process (§3.3, Figure 2). If SelfRemove is
// set, the process splices itself out of the program graph immediately
// after delivering its head — the optimization of Figure 9 — and all
// subsequent bytes flow from its input directly to its consumer with no
// copying.
type Cons struct {
	core.Iterative
	// Head holds the encoded initial element(s), e.g. one int64 from
	// token encoding. Use NewConsInt64/NewConsFloat64 for convenience.
	Head []byte
	// HeadIn, if set, is a stream whose entire contents (until end of
	// stream) are delivered ahead of In — the two-input Cons of
	// Figure 6, whose head input is fed by a Constant process with an
	// iteration limit of 1.
	HeadIn     *core.ReadPort
	In         *core.ReadPort
	Out        *core.WritePort
	SelfRemove bool

	primed bool
	buf    []byte
}

// NewConsInt64 builds a Cons whose head is one encoded int64 element.
func NewConsInt64(head int64, in *core.ReadPort, out *core.WritePort, selfRemove bool) *Cons {
	return &Cons{Head: token.AppendInt64(nil, head), In: in, Out: out, SelfRemove: selfRemove}
}

// NewConsFloat64 builds a Cons whose head is one encoded float64
// element.
func NewConsFloat64(head float64, in *core.ReadPort, out *core.WritePort, selfRemove bool) *Cons {
	return &Cons{Head: token.AppendFloat64(nil, head), In: in, Out: out, SelfRemove: selfRemove}
}

// OnStart implements core.Starter: the head is delivered before any
// input is consumed, so cons(x, ⊥) = [x].
func (c *Cons) OnStart(env *core.Env) error {
	if len(c.Head) > 0 {
		if _, err := c.Out.Write(c.Head); err != nil {
			return err
		}
	}
	if c.HeadIn != nil {
		if _, err := io.Copy(writerOnly{c.Out}, c.HeadIn); err != nil {
			return err
		}
		c.HeadIn.Close()
		c.HeadIn = nil
	}
	c.primed = true
	return nil
}

// writerOnly hides WritePort's other methods so io.Copy cannot bypass
// Write via interface upgrades.
type writerOnly struct{ w *core.WritePort }

func (w writerOnly) Write(b []byte) (int, error) { return w.w.Write(b) }

// Step implements core.Stepper.
func (c *Cons) Step(env *core.Env) error {
	if c.SelfRemove {
		// Splice the input channel onto the consumer's pending input and
		// leave the graph (Figure 10). Detach the fields so the runtime
		// does not close the handed-off transport.
		err := core.SpliceOut(c.In, c.Out)
		c.In, c.Out = nil, nil
		if err != nil {
			return err
		}
		return io.EOF
	}
	if c.buf == nil {
		c.buf = make([]byte, defaultChunk)
	}
	n, err := c.In.Read(c.buf)
	if err != nil {
		return err
	}
	_, err = c.Out.Write(c.buf[:n])
	return err
}

// Discard consumes and drops its input — /dev/null for streams.
type Discard struct {
	core.Iterative
	In *core.ReadPort

	buf []byte
}

// Step implements core.Stepper.
func (d *Discard) Step(env *core.Env) error {
	if d.buf == nil {
		d.buf = make([]byte, defaultChunk)
	}
	_, err := d.In.Read(d.buf)
	return err
}

// Take copies exactly N elements of Width bytes from In to Out and then
// stops, closing both channels: a data-bounded window over an infinite
// stream.
type Take struct {
	N     int64
	Width int
	In    *core.ReadPort
	Out   *core.WritePort

	done int64
	buf  []byte
}

// Step implements core.Stepper.
func (t *Take) Step(env *core.Env) error {
	if t.done >= t.N {
		return io.EOF
	}
	w := t.Width
	if w <= 0 {
		w = token.Int64Size
	}
	if len(t.buf) != w {
		t.buf = make([]byte, w)
	}
	if _, err := io.ReadFull(t.In, t.buf); err != nil {
		return err
	}
	if _, err := t.Out.Write(t.buf); err != nil {
		return err
	}
	t.done++
	return nil
}
