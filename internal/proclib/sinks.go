package proclib

import (
	"fmt"
	"io"
	"os"
	"sync"

	"dpn/internal/core"
	"dpn/internal/token"
)

// Print reads elements from In and prints one per line — the Print
// process of Figures 2 and 7. Set Iterations to bound the output ("stop
// after printing 100 numbers", §3.4). Format selects the element type:
// "int64" (default), "float64", or "string" (length-prefixed).
type Print struct {
	core.Iterative
	In     *core.ReadPort
	Format string
	Label  string

	w io.Writer
}

// SetOutput redirects the printed output (default os.Stdout). The writer
// is not serialized; a migrated Print process reverts to stdout on the
// destination machine.
func (p *Print) SetOutput(w io.Writer) { p.w = w }

// Step implements core.Stepper.
func (p *Print) Step(env *core.Env) error {
	out := p.w
	if out == nil {
		out = os.Stdout
	}
	r := token.NewReader(p.In)
	var text string
	switch p.Format {
	case "", "int64":
		v, err := r.ReadInt64()
		if err != nil {
			return err
		}
		text = fmt.Sprintf("%d", v)
	case "float64":
		v, err := r.ReadFloat64()
		if err != nil {
			return err
		}
		text = fmt.Sprintf("%.17g", v)
	case "string":
		v, err := r.ReadString()
		if err != nil {
			return err
		}
		text = v
	default:
		return fmt.Errorf("proclib: unknown Print format %q", p.Format)
	}
	if p.Label != "" {
		_, err := fmt.Fprintf(out, "%s: %s\n", p.Label, text)
		return err
	}
	_, err := fmt.Fprintln(out, text)
	return err
}

// Collect reads int64 elements and records them in memory. It is the
// standard observable sink for tests and examples; Values is safe to
// call after the network has finished (or concurrently).
type Collect struct {
	core.Iterative
	In *core.ReadPort

	mu   sync.Mutex
	vals []int64
}

// Step implements core.Stepper.
func (c *Collect) Step(env *core.Env) error {
	v, err := token.NewReader(c.In).ReadInt64()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.vals = append(c.vals, v)
	c.mu.Unlock()
	return nil
}

// Values returns a snapshot of the collected elements.
func (c *Collect) Values() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.vals...)
}

// CollectFloat is Collect for float64 elements.
type CollectFloat struct {
	core.Iterative
	In *core.ReadPort

	mu   sync.Mutex
	vals []float64
}

// Step implements core.Stepper.
func (c *CollectFloat) Step(env *core.Env) error {
	v, err := token.NewReader(c.In).ReadFloat64()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.vals = append(c.vals, v)
	c.mu.Unlock()
	return nil
}

// Values returns a snapshot of the collected elements.
func (c *CollectFloat) Values() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.vals...)
}

// Count consumes int64 elements and counts them without storing values.
type Count struct {
	core.Iterative
	In *core.ReadPort

	mu sync.Mutex
	n  int64
}

// Step implements core.Stepper.
func (c *Count) Step(env *core.Env) error {
	if _, err := token.NewReader(c.In).ReadInt64(); err != nil {
		return err
	}
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return nil
}

// N returns the number of elements consumed so far.
func (c *Count) N() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
