package proclib

import (
	"io"

	"dpn/internal/core"
	"dpn/internal/token"
)

// Add reads one int64 from each input and writes their sum — the
// element-wise stream adder of the Fibonacci network (Figure 2).
type Add struct {
	core.Iterative
	InA *core.ReadPort
	InB *core.ReadPort
	Out *core.WritePort
}

// Step implements core.Stepper.
func (a *Add) Step(env *core.Env) error {
	x, err := token.NewReader(a.InA).ReadInt64()
	if err != nil {
		return err
	}
	y, err := token.NewReader(a.InB).ReadInt64()
	if err != nil {
		return err
	}
	return token.NewWriter(a.Out).WriteInt64(x + y)
}

// Scale multiplies each int64 element by Factor — the multiplier of the
// Hamming network (Figure 12).
type Scale struct {
	core.Iterative
	Factor int64
	In     *core.ReadPort
	Out    *core.WritePort
}

// Step implements core.Stepper.
func (s *Scale) Step(env *core.Env) error {
	v, err := token.NewReader(s.In).ReadInt64()
	if err != nil {
		return err
	}
	return token.NewWriter(s.Out).WriteInt64(v * s.Factor)
}

// Divide reads one float64 from each input and writes InA/InB — the
// Divide process of the Newton square-root network (Figure 11).
type Divide struct {
	core.Iterative
	InA *core.ReadPort
	InB *core.ReadPort
	Out *core.WritePort
}

// Step implements core.Stepper.
func (d *Divide) Step(env *core.Env) error {
	x, err := token.NewReader(d.InA).ReadFloat64()
	if err != nil {
		return err
	}
	y, err := token.NewReader(d.InB).ReadFloat64()
	if err != nil {
		return err
	}
	return token.NewWriter(d.Out).WriteFloat64(x / y)
}

// Average reads one float64 from each input and writes their mean
// (Figure 11).
type Average struct {
	core.Iterative
	InA *core.ReadPort
	InB *core.ReadPort
	Out *core.WritePort
}

// Step implements core.Stepper.
func (a *Average) Step(env *core.Env) error {
	x, err := token.NewReader(a.InA).ReadFloat64()
	if err != nil {
		return err
	}
	y, err := token.NewReader(a.InB).ReadFloat64()
	if err != nil {
		return err
	}
	return token.NewWriter(a.Out).WriteFloat64((x + y) / 2)
}

// Equal reads one float64 from each input and writes a bool element
// reporting equality of the two values (Figure 11: detecting that
// Newton iteration has converged to the precision limit). A nonzero
// Tolerance relaxes the test to |a−b| ≤ Tolerance, which guards against
// the last-bit oscillation floating-point fixed points can exhibit.
type Equal struct {
	core.Iterative
	InA       *core.ReadPort
	InB       *core.ReadPort
	Out       *core.WritePort
	Tolerance float64
}

// Step implements core.Stepper.
func (e *Equal) Step(env *core.Env) error {
	x, err := token.NewReader(e.InA).ReadFloat64()
	if err != nil {
		return err
	}
	y, err := token.NewReader(e.InB).ReadFloat64()
	if err != nil {
		return err
	}
	eq := x == y
	if !eq && e.Tolerance > 0 {
		d := x - y
		if d < 0 {
			d = -d
		}
		eq = d <= e.Tolerance
	}
	return token.NewWriter(e.Out).WriteBool(eq)
}

// Guard passes an element of Width bytes from In to Out when the
// corresponding Control element is true and discards it otherwise
// (§3.4, Figure 11). With StopAfterPass set, the process stops right
// after the first passed element — the data-dependent termination used
// by the square-root network.
type Guard struct {
	core.Iterative
	In            *core.ReadPort
	Control       *core.ReadPort
	Out           *core.WritePort
	Width         int // element width in bytes; default 8
	StopAfterPass bool

	buf []byte
}

// Step implements core.Stepper.
func (g *Guard) Step(env *core.Env) error {
	w := g.Width
	if w <= 0 {
		w = token.Float64Size
	}
	if len(g.buf) != w {
		g.buf = make([]byte, w)
	}
	if _, err := io.ReadFull(g.In, g.buf); err != nil {
		return err
	}
	pass, err := token.NewReader(g.Control).ReadBool()
	if err != nil {
		return err
	}
	if !pass {
		return nil
	}
	if _, err := g.Out.Write(g.buf); err != nil {
		return err
	}
	if g.StopAfterPass {
		return io.EOF
	}
	return nil
}
