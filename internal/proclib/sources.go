package proclib

import (
	"io"

	"dpn/internal/core"
	"dpn/internal/token"
)

// Constant writes Value to Out once per step. The paper's Fibonacci
// network uses Constant(1, out, 1) to inject a single seed element
// (Figure 6).
type Constant struct {
	core.Iterative
	Value int64
	Out   *core.WritePort
}

// Step implements core.Stepper.
func (c *Constant) Step(env *core.Env) error {
	return token.NewWriter(c.Out).WriteInt64(c.Value)
}

// ConstantFloat writes Value (a float64) to Out once per step.
type ConstantFloat struct {
	core.Iterative
	Value float64
	Out   *core.WritePort
}

// Step implements core.Stepper.
func (c *ConstantFloat) Step(env *core.Env) error {
	return token.NewWriter(c.Out).WriteFloat64(c.Value)
}

// Sequence writes From, From+Stride, From+2·Stride, … to Out. With an
// iteration limit it is the paper's bounded integer source ("produce the
// sequence of integers from 2 to 100 and then stop", §3.4). A zero
// Stride defaults to 1.
type Sequence struct {
	core.Iterative
	From   int64
	Stride int64
	Out    *core.WritePort

	started bool
	next    int64
}

// Step implements core.Stepper.
func (s *Sequence) Step(env *core.Env) error {
	if !s.started {
		s.next = s.From
		if s.Stride == 0 {
			s.Stride = 1
		}
		s.started = true
	}
	v := s.next
	s.next += s.Stride
	return token.NewWriter(s.Out).WriteInt64(v)
}

// SliceSource writes the elements of Values to Out and then stops.
type SliceSource struct {
	Values []int64
	Out    *core.WritePort

	i int
}

// Step implements core.Stepper.
func (s *SliceSource) Step(env *core.Env) error {
	if s.i >= len(s.Values) {
		return io.EOF
	}
	v := s.Values[s.i]
	s.i++
	return token.NewWriter(s.Out).WriteInt64(v)
}

// FloatSliceSource writes the elements of Values to Out and then stops.
type FloatSliceSource struct {
	Values []float64
	Out    *core.WritePort

	i int
}

// Step implements core.Stepper.
func (s *FloatSliceSource) Step(env *core.Env) error {
	if s.i >= len(s.Values) {
		return io.EOF
	}
	v := s.Values[s.i]
	s.i++
	return token.NewWriter(s.Out).WriteFloat64(v)
}
