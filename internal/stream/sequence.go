package stream

import (
	"io"
	"sync"
)

// SequenceReader concatenates a queue of io.ReadCloser sources into a
// single logical stream. It is the Go analog of the paper's
// SequenceInputStream: every channel read port contains one so that a
// process can splice itself out of the graph by appending its input
// stream to its consumer's sequence (§3.3, Figure 10). All bytes are
// delivered in order; the switch from one source to the next happens only
// after the earlier source reports io.EOF, preserving FIFO semantics.
//
// A SequenceReader with an empty queue whose Append side has not been
// sealed against further sources still reports io.EOF when the current
// source ends — callers performing a splice must Append the continuation
// before closing (or before EOF becomes observable on) the spliced-out
// source. SpliceOut in package core does this in the required order.
type SequenceReader struct {
	mu      sync.Mutex
	current io.ReadCloser
	queue   []io.ReadCloser
	closed  bool
}

// NewSequenceReader returns a sequence reader beginning with first.
func NewSequenceReader(first io.ReadCloser) *SequenceReader {
	return &SequenceReader{current: first}
}

// Append adds src to the end of the sequence. Bytes from src become
// visible only after every earlier source has been fully consumed.
func (s *SequenceReader) Append(src io.ReadCloser) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		src.Close()
		return
	}
	if s.current == nil {
		s.current = src
		return
	}
	s.queue = append(s.queue, src)
}

// Read reads from the current source, advancing through the queue as
// sources are exhausted. It returns io.EOF only when the last queued
// source has ended.
func (s *SequenceReader) Read(b []byte) (int, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return 0, ErrReadClosed
		}
		cur := s.current
		s.mu.Unlock()
		if cur == nil {
			return 0, io.EOF
		}
		n, err := cur.Read(b)
		if n > 0 {
			// Defer EOF handling to the next call so no bytes are lost.
			return n, nil
		}
		if err == io.EOF {
			s.mu.Lock()
			// Only advance if the source we read from is still current;
			// a concurrent Retarget may have swapped it already.
			if s.current == cur {
				cur.Close()
				if len(s.queue) > 0 {
					s.current = s.queue[0]
					s.queue = s.queue[1:]
				} else {
					s.current = nil
				}
			}
			s.mu.Unlock()
			continue
		}
		if err != nil {
			return 0, err
		}
		// A well-behaved source never returns (0, nil); guard anyway by
		// looping (the pipe's blocking read makes progress eventually).
	}
}

// Buffered reports how many bytes the current source can deliver
// without blocking, or 0 when the source does not expose that (network
// streams, spliced mid-sequence sources). Batch decoders treat 0 as
// "fall back to the blocking one-element path", so the conservative
// answer is always safe.
func (s *SequenceReader) Buffered() int {
	s.mu.Lock()
	cur := s.current
	s.mu.Unlock()
	// With further sources queued, the current source's count is still a
	// valid lower bound: those bytes are deliverable before any switch.
	if br, ok := cur.(BufferedReader); ok {
		return br.Buffered()
	}
	return 0
}

// TakeTraceMark claims the pending causal trace mark of the current
// source, or 0 when there is none (or the source is not trace-aware).
// It makes a conduit's exit — the reader an outbound link pumps —
// transparent to trace marks set on the underlying pipe.
func (s *SequenceReader) TakeTraceMark() uint64 {
	s.mu.Lock()
	cur := s.current
	s.mu.Unlock()
	if tt, ok := cur.(TraceTaker); ok {
		return tt.TakeTraceMark()
	}
	return 0
}

// ShapeHint reports the current source's advisory element-shape hint,
// or 0 when the source does not expose one. Like Buffered, it lets a
// conduit's exit stay transparent to hints stamped on the underlying
// pipe by token batch writers.
func (s *SequenceReader) ShapeHint() uint32 {
	s.mu.Lock()
	cur := s.current
	s.mu.Unlock()
	if ss, ok := cur.(ShapeSource); ok {
		return ss.ShapeHint()
	}
	return 0
}

// Retarget replaces the current source and clears the queue, closing the
// displaced sources. It is used when a channel's transport is swapped
// wholesale (local pipe replaced by a network stream during migration).
func (s *SequenceReader) Retarget(src io.ReadCloser) {
	s.mu.Lock()
	old := s.current
	oldQueue := s.queue
	s.current = src
	s.queue = nil
	closed := s.closed
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
	for _, q := range oldQueue {
		q.Close()
	}
	if closed && src != nil {
		src.Close()
	}
}

// Close closes the sequence and every remaining source. Subsequent reads
// return ErrReadClosed; subsequently appended sources are closed
// immediately (their writers observe the poison and terminate, §3.4).
func (s *SequenceReader) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	cur := s.current
	queue := s.queue
	s.current = nil
	s.queue = nil
	s.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
	for _, q := range queue {
		q.Close()
	}
	return nil
}

// Pending reports how many sources (including the current one) remain.
func (s *SequenceReader) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.queue)
	if s.current != nil {
		n++
	}
	return n
}

// Current returns the current underlying source, or nil. Intended for
// introspection by the migration machinery.
func (s *SequenceReader) Current() io.ReadCloser {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}
