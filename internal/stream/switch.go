package stream

import (
	"io"
	"sync"
)

// SwitchWriter is a retargetable io.WriteCloser: the underlying sink can
// be swapped while the stream is in use, with every byte delivered in
// order to exactly one sink. It is the Go analog of the paper's
// SequenceOutputStream, used when the transport under a channel changes
// (for example when the consuming process migrates to another machine and
// a local pipe must be replaced by a network stream).
type SwitchWriter struct {
	mu     sync.Mutex
	w      io.WriteCloser
	closed bool
}

// NewSwitchWriter returns a switch writer targeting w.
func NewSwitchWriter(w io.WriteCloser) *SwitchWriter {
	return &SwitchWriter{w: w}
}

// Write forwards to the current sink. The sink is held stable for the
// duration of the call: a concurrent Retarget takes effect on the next
// write, so no byte is ever split across sinks.
func (s *SwitchWriter) Write(b []byte) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrWriteClosed
	}
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return 0, ErrWriteClosed
	}
	return w.Write(b)
}

// WriteVec forwards a multi-part element to the current sink. When the
// sink implements VecWriter (the local pipe does) the parts land under
// one sink operation; otherwise they are written sequentially to the
// same sink — the sink is resolved once, so a concurrent Retarget can
// never split an element across transports.
func (s *SwitchWriter) WriteVec(bufs ...[]byte) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrWriteClosed
	}
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return 0, ErrWriteClosed
	}
	if vw, ok := w.(VecWriter); ok {
		return vw.WriteVec(bufs...)
	}
	// Non-vectored sink: join the parts so the element still reaches the
	// sink as a single operation (a mid-element failure must never leave
	// a torn element on a network transport). This path only runs for
	// multi-part elements on a migrated (non-pipe) transport.
	joined := 0
	for _, b := range bufs {
		joined += len(b)
	}
	tmp := make([]byte, 0, joined)
	for _, b := range bufs {
		tmp = append(tmp, b...)
	}
	return w.Write(tmp)
}

// HintShape forwards an advisory element-shape hint to the current
// sink when it carries one (the local pipe does). The sink is resolved
// under the same lock as Write, so a hint never lands on a sink the
// stamping writer has already been switched away from.
func (s *SwitchWriter) HintShape(shape uint32) {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if sh, ok := w.(ShapeHinter); ok {
		sh.HintShape(shape)
	}
}

// Retarget swaps the sink. The previous sink is returned (not closed):
// the migration machinery usually still needs it, for example to pump
// residual pipe contents to the network.
func (s *SwitchWriter) Retarget(w io.WriteCloser) io.WriteCloser {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.w
	s.w = w
	return old
}

// Current returns the current sink without changing it.
func (s *SwitchWriter) Current() io.WriteCloser {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w
}

// Close closes the switch writer and the current sink.
func (s *SwitchWriter) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	w := s.w
	s.w = nil
	s.mu.Unlock()
	if w != nil {
		return w.Close()
	}
	return nil
}

// Closed reports whether Close has been called.
func (s *SwitchWriter) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}
