package stream

import (
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestWakePendingIdlePipe(t *testing.T) {
	p := NewPipe(4)
	if p.WakePending() {
		t.Fatal("idle pipe reports pending wakeup")
	}
	p.Write([]byte{1})
	if p.WakePending() {
		t.Fatal("no blocked parties, nothing pending")
	}
}

func TestWakePendingBlockedReaderGetsData(t *testing.T) {
	p := NewPipe(4)
	go p.Read(make([]byte, 1))
	waitFor(t, "reader to block", func() bool { return p.BlockedReaders() == 1 })
	if p.WakePending() {
		t.Fatal("blocked reader on empty pipe is a genuine block")
	}
	// Data arrives: until the reader is rescheduled, the wakeup is
	// pending. (The reader may already have consumed it, in which case
	// BlockedReaders drops to 0 — both states are consistent.)
	p.Write([]byte{1})
	waitFor(t, "reader wake", func() bool {
		return p.BlockedReaders() == 0 || p.WakePending()
	})
}

func TestWakePendingBlockedWriterGetsSpace(t *testing.T) {
	p := NewPipe(1)
	p.Write([]byte{1})
	go p.Write([]byte{2})
	waitFor(t, "writer to block", func() bool { return p.BlockedWriters() == 1 })
	if p.WakePending() {
		t.Fatal("blocked writer on full pipe is a genuine block")
	}
	p.Read(make([]byte, 1))
	waitFor(t, "writer wake", func() bool {
		return p.BlockedWriters() == 0 || p.WakePending()
	})
}

func TestWakePendingOnClose(t *testing.T) {
	p := NewPipe(4)
	go p.Read(make([]byte, 1))
	waitFor(t, "reader to block", func() bool { return p.BlockedReaders() == 1 })
	p.CloseWrite()
	// Until the reader observes EOF, the wakeup is pending.
	waitFor(t, "reader EOF wake", func() bool {
		return p.BlockedReaders() == 0 || p.WakePending()
	})
}
