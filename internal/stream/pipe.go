// Package stream provides the byte-transport layer for process-network
// channels: a bounded in-memory FIFO pipe with blocking reads and writes,
// a sequence reader that can splice several sources end to end, and a
// retargetable writer.
//
// The semantics mirror the Java implementation described in "Distributed
// Process Networks in Java" (Parks, Roberts, Millman; IPPS 2003):
//
//   - Reads block until at least one byte is available (Kahn's blocking
//     read rule, required for determinacy).
//   - Writes block when the buffer is full (bounded channels, required for
//     fair scheduling, §3.5 of the paper).
//   - Closing the read end poisons the write end: the next write fails
//     with ErrReadClosed (the paper's "exception upon the next write").
//   - Closing the write end lets the reader drain all buffered bytes and
//     then observe io.EOF (the paper's graceful downstream termination).
//   - The capacity can be grown at run time, which is how artificial
//     deadlock introduced by bounded buffers is resolved (§3.5, §6.2).
package stream

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// ErrReadClosed is returned by Pipe.Write after the read end has been
// closed. A process receiving this error should stop and close its own
// channels, propagating termination upstream (§3.4 of the paper).
var ErrReadClosed = errors.New("stream: read end closed")

// ErrWriteClosed is returned by Pipe.Write if the write end itself has
// already been closed.
var ErrWriteClosed = errors.New("stream: write end closed")

// DefaultCapacity is the buffer capacity used when NewPipe is given a
// non-positive capacity. It matches the spirit of the default buffer size
// of java.io.PipedInputStream used by the paper's LocalInputStream.
const DefaultCapacity = 1024

// Observer receives notifications about pipe scheduling state. It is used
// by the deadlock monitor: every transition of a goroutine into or out of
// a blocked state, and every data movement, bumps a generation counter so
// the monitor can take stable snapshots.
type Observer interface {
	// PipeBlocked is called whenever a reader or writer blocks on the pipe.
	PipeBlocked(p *Pipe, write bool)
	// PipeUnblocked is called when the blocked operation resumes.
	PipeUnblocked(p *Pipe, write bool)
	// PipeEvent is called on any other state change (data moved, close,
	// capacity growth).
	PipeEvent(p *Pipe)
}

// Pipe is a bounded FIFO byte queue connecting one producer to one
// consumer. It is the Go analog of the paper's LocalOutputStream /
// LocalInputStream pair layered under a Channel.
//
// A Pipe must not be copied after first use.
type Pipe struct {
	mu      sync.Mutex
	canRead sync.Cond
	canWrit sync.Cond

	buf  []byte // ring buffer
	r    int    // next read index
	n    int    // bytes buffered
	name string

	readClosed  bool
	writeClosed bool

	blockedReaders int
	blockedWriters int

	observer Observer
	ins      *Instruments

	// trace is the pending causal trace mark (0 = none). It rides
	// outside the mutex and is never touched by Read/Write, so causal
	// tracing costs the data hot path nothing; only trace-aware taps
	// (outbound links, pool dispatch) look at it, at chunk/task
	// granularity.
	trace atomic.Uint64

	// shape is the advisory element-shape hint (see HintShape). Like
	// trace, it lives outside the mutex and is ignored by Read/Write:
	// only token batch writers store it and only outbound links load
	// it, so the hint costs the data plane nothing.
	shape atomic.Uint32
}

// NewPipe returns a pipe with the given buffer capacity. Non-positive
// capacities select DefaultCapacity.
func NewPipe(capacity int) *Pipe {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	p := &Pipe{buf: make([]byte, capacity)}
	p.canRead.L = &p.mu
	p.canWrit.L = &p.mu
	return p
}

// SetName attaches a diagnostic name used in error and deadlock reports.
func (p *Pipe) SetName(name string) {
	p.mu.Lock()
	p.name = name
	p.mu.Unlock()
}

// Name reports the diagnostic name set with SetName.
func (p *Pipe) Name() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.name
}

// SetObserver installs the scheduling observer. It must be called before
// the pipe is shared between goroutines.
func (p *Pipe) SetObserver(o Observer) {
	p.mu.Lock()
	p.observer = o
	p.mu.Unlock()
}

// SetInstruments installs the metrics hooks. Like SetObserver it must
// be called before the pipe is shared between goroutines.
func (p *Pipe) SetInstruments(ins *Instruments) {
	p.mu.Lock()
	p.ins = ins
	p.mu.Unlock()
	if ins != nil {
		ins.Capacity.Set(int64(p.Cap()))
	}
}

// Instruments returns the installed metrics hooks, or nil.
func (p *Pipe) Instruments() *Instruments {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ins
}

// Cap reports the current buffer capacity.
func (p *Pipe) Cap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// Len reports the number of buffered, unconsumed bytes.
func (p *Pipe) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Buffered reports the number of buffered, unconsumed bytes. It is the
// BufferedReader-facing alias of Len: batch decoders use it to size a
// drain that is guaranteed not to block and not to leave partially
// consumed state behind (migration safety: everything taken from the
// pipe in one call is fully converted before the call returns).
func (p *Pipe) Buffered() int { return p.Len() }

// Full reports whether the buffer is at capacity.
func (p *Pipe) Full() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n == len(p.buf)
}

// BlockedWriters reports how many goroutines are currently blocked in
// Write waiting for space.
func (p *Pipe) BlockedWriters() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blockedWriters
}

// BlockedReaders reports how many goroutines are currently blocked in
// Read waiting for data.
func (p *Pipe) BlockedReaders() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blockedReaders
}

// WriteBlockedOnFull reports whether some writer is blocked and the
// buffer is full — the signature of artificial deadlock that capacity
// growth can resolve.
func (p *Pipe) WriteBlockedOnFull() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blockedWriters > 0 && p.n == len(p.buf)
}

// WakePending reports whether some blocked reader or writer has
// already been signaled (its wake condition holds) but has not yet
// been rescheduled. A deadlock detector must treat such a pipe as
// "still running": the blocked counters alone cannot distinguish a
// goroutine waiting on a condition from one that is about to resume.
func (p *Pipe) WakePending() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.blockedWriters > 0 && (p.n < len(p.buf) || p.readClosed || p.writeClosed) {
		return true
	}
	if p.blockedReaders > 0 && (p.n > 0 || p.writeClosed || p.readClosed) {
		return true
	}
	return false
}

// Grow increases the buffer capacity to newCap and wakes blocked writers.
// Growing never discards data. Shrinking is not supported; a smaller
// newCap is ignored. It returns the resulting capacity.
func (p *Pipe) Grow(newCap int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if newCap <= len(p.buf) {
		return len(p.buf)
	}
	nb := make([]byte, newCap)
	p.copyOut(nb)
	p.buf = nb
	p.r = 0
	p.canWrit.Broadcast()
	p.ins.noteGrow(newCap)
	if p.observer != nil {
		p.observer.PipeEvent(p)
	}
	return newCap
}

// copyOut copies the buffered bytes, in FIFO order, into dst which must
// be at least p.n long. Caller holds p.mu.
func (p *Pipe) copyOut(dst []byte) {
	first := copy(dst, p.buf[p.r:min(p.r+p.n, len(p.buf))])
	if first < p.n {
		copy(dst[first:], p.buf[:p.n-first])
	}
}

// Snapshot returns a copy of the currently buffered bytes in FIFO order
// without consuming them. It is used when a channel is serialized and
// moved to another machine: unconsumed data must travel with the channel
// (§3.3 of the paper: "Care must be taken to preserve any unconsumed
// data").
func (p *Pipe) Snapshot() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]byte, p.n)
	p.copyOut(out)
	return out
}

// Drain atomically removes and returns all buffered bytes. Writers blocked
// on a full buffer are woken. It is used when migrating a channel.
func (p *Pipe) Drain() []byte {
	p.mu.Lock()
	out := make([]byte, p.n)
	p.copyOut(out)
	p.n = 0
	p.r = 0
	p.canWrit.Broadcast()
	ins := p.ins
	o := p.observer
	p.mu.Unlock()
	ins.noteRead(len(out), 0)
	if o != nil {
		o.PipeEvent(p)
	}
	return out
}

// Write appends the bytes of b to the pipe, blocking while the buffer is
// full. It returns len(b) on success. If the read end is closed it
// returns the number of bytes accepted and ErrReadClosed; if the write
// end is closed it returns ErrWriteClosed.
func (p *Pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	pending := 0
	written, err := p.writeOne(b, &pending)
	p.finishWrite(pending)
	return written, err
}

// WriteVec appends each buffer of bufs to the pipe in order under a
// single lock acquisition, blocking while the buffer is full exactly as
// Write does. A multi-part element (length header + payload) therefore
// costs one lock round trip and at most one reader wakeup instead of
// one per part. It returns the total number of bytes written.
func (p *Pipe) WriteVec(bufs ...[]byte) (int, error) {
	p.mu.Lock()
	pending := 0
	total := 0
	var err error
	for _, b := range bufs {
		var n int
		n, err = p.writeOne(b, &pending)
		total += n
		if err != nil {
			break
		}
	}
	p.finishWrite(pending)
	return total, err
}

// writeOne copies b into the ring buffer, blocking while full. The
// caller must hold p.mu. Bytes copied but not yet reported to the
// instruments/observer are accumulated into *pending; the caller
// reports them via finishWrite (or writeOne itself flushes before
// parking, so the deadlock monitor sees the data movement no later
// than the blocked transition).
func (p *Pipe) writeOne(b []byte, pending *int) (int, error) {
	written := 0
	for len(b) > 0 {
		if p.writeClosed {
			return written, ErrWriteClosed
		}
		if p.readClosed {
			return written, ErrReadClosed
		}
		for p.n == len(p.buf) {
			if *pending > 0 {
				p.ins.noteWrite(*pending, p.n)
				if p.observer != nil {
					p.observer.PipeEvent(p)
				}
				*pending = 0
			}
			p.blockedWriters++
			t0 := p.ins.noteBlock(true)
			if p.observer != nil {
				p.observer.PipeBlocked(p, true)
			}
			p.canWrit.Wait()
			p.blockedWriters--
			p.ins.noteUnblock(true, t0)
			if p.observer != nil {
				p.observer.PipeUnblocked(p, true)
			}
			if p.writeClosed {
				return written, ErrWriteClosed
			}
			if p.readClosed {
				return written, ErrReadClosed
			}
		}
		// Copy as much as fits.
		space := len(p.buf) - p.n
		chunk := b
		if len(chunk) > space {
			chunk = chunk[:space]
		}
		w := (p.r + p.n) % len(p.buf)
		first := copy(p.buf[w:], chunk)
		if first < len(chunk) {
			copy(p.buf, chunk[first:])
		}
		p.n += len(chunk)
		b = b[len(chunk):]
		written += len(chunk)
		*pending += len(chunk)
		// Wake-avoidance: a reader can only be parked when it found the
		// buffer empty, so the cond op is skipped entirely unless one is
		// actually waiting, and Signal (not Broadcast) suffices — a woken
		// reader drains whatever is available and hands the baton on.
		if p.blockedReaders > 0 {
			p.canRead.Signal()
		}
	}
	return written, nil
}

// finishWrite ends a Write/WriteVec: it hands the baton to another
// blocked writer if space remains (Signal wakes only one, so liveness
// with several producers needs the chain), captures the occupancy, and
// reports the accumulated bytes to the instruments and observer
// *after* releasing the lock — the observability calls are off the
// critical section of the data hot path.
func (p *Pipe) finishWrite(pending int) {
	if p.blockedWriters > 0 && p.n < len(p.buf) {
		p.canWrit.Signal()
	}
	occ := p.n
	ins := p.ins
	o := p.observer
	p.mu.Unlock()
	if pending > 0 {
		ins.noteWrite(pending, occ)
		if o != nil {
			o.PipeEvent(p)
		}
	}
}

// Read fills b with up to len(b) buffered bytes, blocking until at least
// one byte is available. When the write end has been closed and the
// buffer is empty it returns io.EOF. Reads never return (0, nil): the
// blocking-read rule of Kahn's model is enforced here.
func (p *Pipe) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	p.mu.Lock()
	for p.n == 0 {
		if p.writeClosed {
			p.mu.Unlock()
			return 0, io.EOF
		}
		if p.readClosed {
			p.mu.Unlock()
			return 0, ErrReadClosed
		}
		p.blockedReaders++
		t0 := p.ins.noteBlock(false)
		if p.observer != nil {
			p.observer.PipeBlocked(p, false)
		}
		p.canRead.Wait()
		p.blockedReaders--
		p.ins.noteUnblock(false, t0)
		if p.observer != nil {
			p.observer.PipeUnblocked(p, false)
		}
	}
	n := p.n
	if n > len(b) {
		n = len(b)
	}
	first := copy(b[:n], p.buf[p.r:min(p.r+p.n, len(p.buf))])
	if first < n {
		copy(b[first:n], p.buf)
	}
	p.r = (p.r + n) % len(p.buf)
	p.n -= n
	if p.n == 0 {
		p.r = 0
	}
	// Wake-avoidance: skip the cond op unless a writer is actually
	// parked; Signal one — it fills the freed space and finishWrite
	// chains the baton to the next writer if space remains.
	if p.blockedWriters > 0 {
		p.canWrit.Signal()
	}
	// Baton for additional readers: Signal wakes only one, so if bytes
	// remain and another reader is parked, pass the wake along.
	if p.n > 0 && p.blockedReaders > 0 {
		p.canRead.Signal()
	}
	occ := p.n
	ins := p.ins
	o := p.observer
	p.mu.Unlock()
	// Observability off the critical section: counters and tracer are
	// already lock-free, and the generation bump still happens before
	// this goroutine can possibly park again, which is the ordering the
	// deadlock monitor's stability test needs.
	ins.noteRead(n, occ)
	if o != nil {
		o.PipeEvent(p)
	}
	return n, nil
}

// CloseWrite closes the write end. Buffered data remains readable; after
// it drains, readers observe io.EOF. Closing twice is a no-op.
func (p *Pipe) CloseWrite() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.writeClosed {
		return nil
	}
	p.writeClosed = true
	p.canRead.Broadcast()
	p.canWrit.Broadcast()
	if p.observer != nil {
		p.observer.PipeEvent(p)
	}
	return nil
}

// CloseRead closes the read end. Subsequent and blocked writes fail with
// ErrReadClosed; buffered data is discarded. Closing twice is a no-op.
func (p *Pipe) CloseRead() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readClosed {
		return nil
	}
	p.readClosed = true
	p.n = 0
	p.r = 0
	p.canRead.Broadcast()
	p.canWrit.Broadcast()
	if p.observer != nil {
		p.observer.PipeEvent(p)
	}
	return nil
}

// ReadClosed reports whether the read end has been closed.
func (p *Pipe) ReadClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readClosed
}

// WriteClosed reports whether the write end has been closed.
func (p *Pipe) WriteClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writeClosed
}

// MarkTrace tags the data currently flowing through the pipe with a
// sampled causal trace ID (0 is ignored — "not sampled"). The mark is a
// best-effort single slot: a later mark overwrites an untaken earlier
// one, which is fine because sampling only needs *some* batches
// traced, not all.
func (p *Pipe) MarkTrace(id uint64) {
	if id != 0 {
		p.trace.Store(id)
	}
}

// TakeTraceMark removes and returns the pending trace mark, or 0. The
// unmarked case — virtually every call — is one atomic load.
func (p *Pipe) TakeTraceMark() uint64 {
	if p.trace.Load() == 0 {
		return 0
	}
	return p.trace.Swap(0)
}

// HintShape records an advisory hint about the shape of the elements
// currently flowing through the pipe (the values are the
// token/blocks Shape constants: 0 none, 1 int64 runs, 2 float64
// runs). The hint carries no correctness weight — it only steers the
// wire compressor toward the right trial encoding — so it is a plain
// last-writer-wins atomic with no relation to byte positions, and a
// stale or missing hint merely costs compression ratio, never data.
func (p *Pipe) HintShape(s uint32) { p.shape.Store(s) }

// ShapeHint returns the current advisory element-shape hint.
func (p *Pipe) ShapeHint() uint32 { return p.shape.Load() }

// ShapeHinter is implemented by sinks that can carry an advisory
// element-shape hint toward a transport binding.
type ShapeHinter interface {
	HintShape(s uint32)
}

// ShapeSource is implemented by sources that expose the pending
// element-shape hint to a transport binding.
type ShapeSource interface {
	ShapeHint() uint32
}

// TraceMarker is implemented by sinks that can carry a causal trace
// mark alongside the data written to them.
type TraceMarker interface {
	MarkTrace(id uint64)
}

// TraceTaker is implemented by sources whose pending trace mark can be
// claimed by a downstream tap (an outbound network link).
type TraceTaker interface {
	TakeTraceMark() uint64
}

// VecWriter is implemented by sinks that can accept a multi-part
// element (e.g. length header + payload) atomically with respect to
// interleaving and at the cost of a single sink operation. The token
// codec uses it to keep large elements one-write-per-element without
// staging them through an intermediate copy.
type VecWriter interface {
	WriteVec(bufs ...[]byte) (int, error)
}

// BufferedReader is implemented by sources that can report how many
// bytes are immediately readable without blocking. Batch decoders use
// it to bound a non-blocking drain.
type BufferedReader interface {
	Buffered() int
}

// writerEnd adapts the pipe's write half to io.WriteCloser.
type writerEnd struct{ p *Pipe }

func (w writerEnd) Write(b []byte) (int, error)          { return w.p.Write(b) }
func (w writerEnd) WriteVec(bufs ...[]byte) (int, error) { return w.p.WriteVec(bufs...) }
func (w writerEnd) MarkTrace(id uint64)                  { w.p.MarkTrace(id) }
func (w writerEnd) HintShape(s uint32)                   { w.p.HintShape(s) }
func (w writerEnd) Close() error                         { return w.p.CloseWrite() }

// readerEnd adapts the pipe's read half to io.ReadCloser.
type readerEnd struct{ p *Pipe }

func (r readerEnd) Read(b []byte) (int, error) { return r.p.Read(b) }
func (r readerEnd) Buffered() int              { return r.p.Buffered() }
func (r readerEnd) TakeTraceMark() uint64      { return r.p.TakeTraceMark() }
func (r readerEnd) ShapeHint() uint32          { return r.p.ShapeHint() }
func (r readerEnd) Close() error               { return r.p.CloseRead() }

// WriteEnd returns the pipe's write half as an io.WriteCloser whose Close
// maps to CloseWrite.
func (p *Pipe) WriteEnd() io.WriteCloser { return writerEnd{p} }

// ReadEnd returns the pipe's read half as an io.ReadCloser whose Close
// maps to CloseRead.
func (p *Pipe) ReadEnd() io.ReadCloser { return readerEnd{p} }
