package stream

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func pipeWith(data []byte, closed bool) *Pipe {
	p := NewPipe(len(data) + 1)
	if len(data) > 0 {
		p.Write(data)
	}
	if closed {
		p.CloseWrite()
	}
	return p
}

func TestSequenceReaderSingleSource(t *testing.T) {
	s := NewSequenceReader(pipeWith([]byte("abc"), true).ReadEnd())
	got, err := io.ReadAll(s)
	if err != nil || string(got) != "abc" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestSequenceReaderSplice(t *testing.T) {
	// The splice-out scenario of Figure 10: the consumer reads the rest of
	// channel 2, then continues seamlessly with channel 1.
	ch2 := pipeWith([]byte("rest-of-2."), true)
	ch1 := pipeWith([]byte("then-1"), true)
	s := NewSequenceReader(ch2.ReadEnd())
	s.Append(ch1.ReadEnd())
	got, err := io.ReadAll(s)
	if err != nil || string(got) != "rest-of-2.then-1" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestSequenceReaderAppendBeforeEOFNeverLosesData(t *testing.T) {
	// Append happens while the first source still has data; the boundary
	// must be invisible.
	ch2 := pipeWith([]byte("xy"), false)
	ch1 := pipeWith([]byte("z"), true)
	s := NewSequenceReader(ch2.ReadEnd())
	s.Append(ch1.ReadEnd())
	ch2.CloseWrite()
	got, err := io.ReadAll(s)
	if err != nil || string(got) != "xyz" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestSequenceReaderEmptySources(t *testing.T) {
	s := NewSequenceReader(pipeWith(nil, true).ReadEnd())
	s.Append(pipeWith(nil, true).ReadEnd())
	s.Append(pipeWith([]byte("end"), true).ReadEnd())
	got, err := io.ReadAll(s)
	if err != nil || string(got) != "end" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestSequenceReaderNilStart(t *testing.T) {
	s := NewSequenceReader(nil)
	if _, err := s.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("empty sequence Read = %v, want io.EOF", err)
	}
	s.Append(pipeWith([]byte("a"), true).ReadEnd())
	b := make([]byte, 4)
	n, err := s.Read(b)
	if err != nil || string(b[:n]) != "a" {
		t.Fatalf("got %q, %v", b[:n], err)
	}
}

func TestSequenceReaderCloseClosesSources(t *testing.T) {
	p1 := pipeWith([]byte("a"), false)
	p2 := pipeWith([]byte("b"), false)
	s := NewSequenceReader(p1.ReadEnd())
	s.Append(p2.ReadEnd())
	s.Close()
	if !p1.ReadClosed() || !p2.ReadClosed() {
		t.Fatal("Close did not close queued sources")
	}
	if _, err := s.Read(make([]byte, 1)); err != ErrReadClosed {
		t.Fatalf("Read after Close = %v", err)
	}
	// Appending after close closes the new source immediately.
	p3 := pipeWith(nil, false)
	s.Append(p3.ReadEnd())
	if !p3.ReadClosed() {
		t.Fatal("Append after Close did not poison source")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

func TestSequenceReaderRetarget(t *testing.T) {
	p1 := pipeWith([]byte("old"), false)
	p2 := pipeWith([]byte("new"), true)
	s := NewSequenceReader(p1.ReadEnd())
	s.Retarget(p2.ReadEnd())
	if !p1.ReadClosed() {
		t.Fatal("Retarget did not close displaced source")
	}
	got, err := io.ReadAll(s)
	if err != nil || string(got) != "new" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestSequenceReaderPendingAndCurrent(t *testing.T) {
	s := NewSequenceReader(nil)
	if s.Pending() != 0 || s.Current() != nil {
		t.Fatal("fresh nil sequence should be empty")
	}
	end := pipeWith(nil, true).ReadEnd()
	s.Append(end)
	if s.Pending() != 1 || s.Current() == nil {
		t.Fatal("Append to empty should set current")
	}
	s.Append(pipeWith(nil, true).ReadEnd())
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
}

// Property: splitting a byte string across any number of sources yields
// the concatenation.
func TestSequenceReaderConcatenationProperty(t *testing.T) {
	f := func(parts [][]byte) bool {
		var want []byte
		s := NewSequenceReader(nil)
		for _, part := range parts {
			want = append(want, part...)
			s.Append(pipeWith(part, true).ReadEnd())
		}
		got, err := io.ReadAll(s)
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchWriterBasics(t *testing.T) {
	p1 := NewPipe(16)
	p2 := NewPipe(16)
	sw := NewSwitchWriter(p1.WriteEnd())
	sw.Write([]byte("one"))
	old := sw.Retarget(p2.WriteEnd())
	if old == nil {
		t.Fatal("Retarget should return previous sink")
	}
	sw.Write([]byte("two"))
	if got := string(p1.Drain()); got != "one" {
		t.Fatalf("p1 got %q", got)
	}
	if got := string(p2.Drain()); got != "two" {
		t.Fatalf("p2 got %q", got)
	}
	if sw.Current() == nil {
		t.Fatal("Current is nil")
	}
	sw.Close()
	if !p2.WriteClosed() {
		t.Fatal("Close did not close current sink")
	}
	if !sw.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if _, err := sw.Write([]byte("x")); err != ErrWriteClosed {
		t.Fatalf("Write after Close = %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

func TestSwitchWriterNilSink(t *testing.T) {
	sw := NewSwitchWriter(nil)
	if _, err := sw.Write([]byte("x")); err != ErrWriteClosed {
		t.Fatalf("Write with nil sink = %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
}

// Stress: appends racing reads must never lose, duplicate, or reorder
// bytes — the splice-out operation happens while the consumer is
// actively reading.
func TestSequenceReaderConcurrentAppendStress(t *testing.T) {
	const sources = 50
	const perSource = 200
	s := NewSequenceReader(nil)
	var want []byte
	pipes := make([]*Pipe, sources)
	for i := range pipes {
		pipes[i] = NewPipe(64)
		for j := 0; j < perSource; j++ {
			want = append(want, byte(i), byte(j))
		}
	}
	// Appender: adds each source, then feeds it, racing the reader.
	go func() {
		for i, p := range pipes {
			s.Append(p.ReadEnd())
			go func(i int, p *Pipe) {
				for j := 0; j < perSource; j++ {
					p.Write([]byte{byte(i), byte(j)})
				}
				p.CloseWrite()
			}(i, p)
		}
	}()
	var got []byte
	buf := make([]byte, 7)
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < len(want) {
		if time.Now().After(deadline) {
			t.Fatalf("stalled at %d of %d bytes", len(got), len(want))
		}
		n, err := s.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			// EOF between appends is possible only if the reader outruns
			// the appender; keep polling until all bytes arrive.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent splice corrupted the stream")
	}
}
