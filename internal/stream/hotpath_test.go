package stream

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// TestGrowRacingReadWrite grows the pipe repeatedly while a producer
// and a consumer are moving a known byte sequence through it. Capacity
// growth mid-transfer must not drop, duplicate, or reorder bytes.
// Run under -race this also checks the lock discipline of Grow against
// the wake-avoidance fast paths.
func TestGrowRacingReadWrite(t *testing.T) {
	const total = 1 << 20
	p := NewPipe(64)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 997) // prime-ish, misaligned with capacities
		seq := byte(0)
		sent := 0
		for sent < total {
			n := len(buf)
			if total-sent < n {
				n = total - sent
			}
			for i := 0; i < n; i++ {
				buf[i] = seq
				seq++
			}
			if _, err := p.Write(buf[:n]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			sent += n
		}
		p.CloseWrite()
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		caps := []int{128, 256, 1024, 4096, 65536}
		for _, c := range caps {
			p.Grow(c)
		}
	}()

	got := make([]byte, 0, total)
	buf := make([]byte, 1031)
	for {
		n, err := p.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	wg.Wait()
	if len(got) != total {
		t.Fatalf("got %d bytes, want %d", len(got), total)
	}
	seq := byte(0)
	for i, b := range got {
		if b != seq {
			t.Fatalf("byte %d: got %d, want %d (stream corrupted by Grow)", i, b, seq)
		}
		seq++
	}
}

// TestWriteVecSingleElement checks that a multi-part element written
// with WriteVec arrives contiguously and in order, including when the
// element must block across a full buffer.
func TestWriteVecSingleElement(t *testing.T) {
	p := NewPipe(8) // smaller than the element: WriteVec must block mid-element
	hdr := []byte{0, 0, 0, 12}
	payload := []byte("hello, world")

	done := make(chan error, 1)
	go func() {
		n, err := p.WriteVec(hdr, payload)
		if err == nil && n != len(hdr)+len(payload) {
			t.Errorf("WriteVec wrote %d, want %d", n, len(hdr)+len(payload))
		}
		done <- err
	}()

	got := make([]byte, 0, 16)
	buf := make([]byte, 4)
	for len(got) < len(hdr)+len(payload) {
		n, err := p.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, buf[:n]...)
	}
	if err := <-done; err != nil {
		t.Fatalf("WriteVec: %v", err)
	}
	want := append(append([]byte{}, hdr...), payload...)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestWriteVecPoisoned checks the cascading-close rule holds on the
// vectored path: after CloseRead, WriteVec fails with ErrReadClosed.
func TestWriteVecPoisoned(t *testing.T) {
	p := NewPipe(16)
	p.CloseRead()
	if _, err := p.WriteVec([]byte{1}, []byte{2}); err != ErrReadClosed {
		t.Fatalf("got %v, want ErrReadClosed", err)
	}
}

// TestManyWritersManyReadersLiveness exercises the Signal-based wakeups
// with several producers and consumers on one pipe: the baton-passing
// chain (each woken party signals the next when work remains) must not
// strand a blocked goroutine. A lost wakeup shows up as a hang; the
// byte count checks no data is lost.
func TestManyWritersManyReadersLiveness(t *testing.T) {
	const (
		writers  = 4
		readers  = 4
		perWrite = 64
		rounds   = 500
	)
	p := NewPipe(128) // small: constant blocking on both sides

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, perWrite)
			for i := 0; i < rounds; i++ {
				if _, err := p.Write(buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		p.CloseWrite()
	}()

	var mu sync.Mutex
	received := 0
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			buf := make([]byte, 96)
			for {
				n, err := p.Read(buf)
				mu.Lock()
				received += n
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	rg.Wait()
	if want := writers * perWrite * rounds; received != want {
		t.Fatalf("received %d bytes, want %d", received, want)
	}
}

// countingWriteCloser counts underlying Write calls; it does not
// implement VecWriter, so SwitchWriter.WriteVec must fall back to a
// single joined write.
type countingWriteCloser struct {
	bytes.Buffer
	writes int
}

func (c *countingWriteCloser) Write(b []byte) (int, error) {
	c.writes++
	return c.Buffer.Write(b)
}

func (c *countingWriteCloser) Close() error { return nil }

// TestSwitchWriterVecFallbackIsOneWrite checks that a multi-part
// element forwarded to a non-vectored sink still reaches it as exactly
// one write — the property that prevents torn elements on migrated
// (network) transports.
func TestSwitchWriterVecFallbackIsOneWrite(t *testing.T) {
	sink := &countingWriteCloser{}
	sw := NewSwitchWriter(sink)
	if _, err := sw.WriteVec([]byte{0, 0, 0, 3}, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if sink.writes != 1 {
		t.Fatalf("non-vec sink saw %d writes for one element, want 1", sink.writes)
	}
	if got := sink.Buffer.Bytes(); !bytes.Equal(got, []byte{0, 0, 0, 3, 'a', 'b', 'c'}) {
		t.Fatalf("sink got %v", got)
	}
}

// TestSequenceReaderBuffered checks the batch-drain bound: a pipe
// source reports its buffered bytes, an opaque source reports zero.
func TestSequenceReaderBuffered(t *testing.T) {
	p := NewPipe(64)
	p.Write([]byte{1, 2, 3})
	s := NewSequenceReader(p.ReadEnd())
	if got := s.Buffered(); got != 3 {
		t.Fatalf("Buffered() = %d, want 3", got)
	}
	opaque := io.NopCloser(bytes.NewReader([]byte{9, 9}))
	s2 := NewSequenceReader(opaque)
	if got := s2.Buffered(); got != 0 {
		t.Fatalf("opaque source Buffered() = %d, want 0", got)
	}
}
