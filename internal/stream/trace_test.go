package stream

import (
	"testing"
	"time"

	"dpn/internal/obs"
)

func TestPipeTraceMarkTakeOnce(t *testing.T) {
	p := NewPipe(16)
	if got := p.TakeTraceMark(); got != 0 {
		t.Fatalf("fresh pipe mark = %d", got)
	}
	p.MarkTrace(42)
	if got := p.TakeTraceMark(); got != 42 {
		t.Fatalf("mark = %d, want 42", got)
	}
	if got := p.TakeTraceMark(); got != 0 {
		t.Fatalf("mark taken twice: %d", got)
	}
}

func TestPipeTraceMarkZeroIgnored(t *testing.T) {
	p := NewPipe(16)
	p.MarkTrace(7)
	p.MarkTrace(0) // 0 = "not sampled" and must not erase a pending mark
	if got := p.TakeTraceMark(); got != 7 {
		t.Fatalf("mark = %d, want 7", got)
	}
}

func TestPipeTraceMarkLatestWins(t *testing.T) {
	p := NewPipe(16)
	p.MarkTrace(1)
	p.MarkTrace(2)
	if got := p.TakeTraceMark(); got != 2 {
		t.Fatalf("mark = %d, want 2 (latest)", got)
	}
}

// The pipe's reader/writer end adapters and the SequenceReader forward
// the trace-mark interfaces, so a transport holding only an
// io.ReadCloser can still pick marks up.
func TestTraceMarkThroughEndsAndSequence(t *testing.T) {
	p := NewPipe(16)
	if _, ok := any(p.WriteEnd()).(TraceMarker); !ok {
		t.Fatal("writer end does not expose MarkTrace")
	}
	if _, ok := any(p.ReadEnd()).(TraceTaker); !ok {
		t.Fatal("reader end does not expose TakeTraceMark")
	}
	any(p.WriteEnd()).(TraceMarker).MarkTrace(11)

	sr := NewSequenceReader(p.ReadEnd())
	if got := sr.TakeTraceMark(); got != 11 {
		t.Fatalf("sequence reader mark = %d, want 11", got)
	}
	if got := sr.TakeTraceMark(); got != 0 {
		t.Fatalf("sequence reader mark taken twice: %d", got)
	}
}

// Blocking reads and writes must feed the wait-ns watermark counters
// that back dpntop's blocked-time percentages.
func TestWaitNanosCounters(t *testing.T) {
	p := NewPipe(4)
	reg := obs.NewRegistry()
	ins := &Instruments{
		ReadWaitNanos:  reg.Counter("wait", obs.L("op", "read")),
		WriteWaitNanos: reg.Counter("wait", obs.L("op", "write")),
	}
	p.SetInstruments(ins)

	// Blocked write: fill the pipe, then unblock from a reader.
	if _, err := p.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Write([]byte("x"))
	}()
	time.Sleep(20 * time.Millisecond)
	buf := make([]byte, 8)
	if _, err := p.Read(buf); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := ins.WriteWaitNanos.Value(); got < int64(10*time.Millisecond) {
		t.Fatalf("write wait = %dns, want >= 10ms", got)
	}

	// Blocked read: drain, then read against an empty pipe.
	for p.Len() > 0 {
		p.Read(buf)
	}
	done = make(chan struct{})
	go func() {
		defer close(done)
		p.Read(buf)
	}()
	time.Sleep(20 * time.Millisecond)
	p.Write([]byte("y"))
	<-done
	if got := ins.ReadWaitNanos.Value(); got < int64(10*time.Millisecond) {
		t.Fatalf("read wait = %dns, want >= 10ms", got)
	}
}
