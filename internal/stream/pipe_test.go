package stream

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeBasicWriteRead(t *testing.T) {
	p := NewPipe(8)
	if n, err := p.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	buf := make([]byte, 10)
	n, err := p.Read(buf)
	if err != nil || n != 5 || string(buf[:5]) != "hello" {
		t.Fatalf("Read = %d, %v, %q", n, err, buf[:n])
	}
}

func TestPipeDefaultCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		if got := NewPipe(c).Cap(); got != DefaultCapacity {
			t.Errorf("NewPipe(%d).Cap() = %d, want %d", c, got, DefaultCapacity)
		}
	}
	if got := NewPipe(7).Cap(); got != 7 {
		t.Errorf("NewPipe(7).Cap() = %d", got)
	}
}

func TestPipeBlockingWriteUnblocksOnRead(t *testing.T) {
	p := NewPipe(4)
	if _, err := p.Write([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Write([]byte{5, 6})
		done <- err
	}()
	// The writer must block: the buffer is full.
	select {
	case err := <-done:
		t.Fatalf("write completed on full pipe: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(p, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("unblocked write failed: %v", err)
	}
	if _, err := io.ReadFull(p, buf[:2]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 || buf[1] != 6 {
		t.Fatalf("got %v, want [5 6]", buf[:2])
	}
}

func TestPipeBlockingReadUnblocksOnWrite(t *testing.T) {
	p := NewPipe(4)
	got := make(chan byte, 1)
	go func() {
		b := make([]byte, 1)
		p.Read(b)
		got <- b[0]
	}()
	select {
	case <-got:
		t.Fatal("read completed on empty pipe")
	case <-time.After(20 * time.Millisecond):
	}
	p.Write([]byte{42})
	if b := <-got; b != 42 {
		t.Fatalf("got %d, want 42", b)
	}
}

func TestPipeEOFAfterCloseWriteDrains(t *testing.T) {
	p := NewPipe(8)
	p.Write([]byte("abc"))
	p.CloseWrite()
	buf := make([]byte, 8)
	n, err := p.Read(buf)
	if err != nil || string(buf[:n]) != "abc" {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if _, err := p.Read(buf); err != io.EOF {
		t.Fatalf("Read after drain = %v, want io.EOF", err)
	}
	// EOF is sticky.
	if _, err := p.Read(buf); err != io.EOF {
		t.Fatalf("second Read after drain = %v, want io.EOF", err)
	}
}

func TestPipeWriteAfterCloseRead(t *testing.T) {
	p := NewPipe(8)
	p.Write([]byte("abc"))
	p.CloseRead()
	if _, err := p.Write([]byte("d")); err != ErrReadClosed {
		t.Fatalf("Write after CloseRead = %v, want ErrReadClosed", err)
	}
	if p.Len() != 0 {
		t.Fatalf("Len after CloseRead = %d, want 0 (data discarded)", p.Len())
	}
}

func TestPipeCloseReadUnblocksWriter(t *testing.T) {
	p := NewPipe(2)
	p.Write([]byte{1, 2})
	done := make(chan error, 1)
	go func() {
		_, err := p.Write([]byte{3})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.CloseRead()
	if err := <-done; err != ErrReadClosed {
		t.Fatalf("blocked write after CloseRead = %v, want ErrReadClosed", err)
	}
}

func TestPipeCloseWriteUnblocksReader(t *testing.T) {
	p := NewPipe(2)
	done := make(chan error, 1)
	go func() {
		_, err := p.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.CloseWrite()
	if err := <-done; err != io.EOF {
		t.Fatalf("blocked read after CloseWrite = %v, want io.EOF", err)
	}
}

func TestPipeWriteAfterCloseWrite(t *testing.T) {
	p := NewPipe(8)
	p.CloseWrite()
	if _, err := p.Write([]byte{1}); err != ErrWriteClosed {
		t.Fatalf("got %v, want ErrWriteClosed", err)
	}
}

func TestPipeDoubleCloseIsNoop(t *testing.T) {
	p := NewPipe(8)
	if err := p.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseRead(); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseRead(); err != nil {
		t.Fatal(err)
	}
}

func TestPipeLargeWriteSpansBuffer(t *testing.T) {
	// A write larger than the capacity must complete incrementally as the
	// reader drains.
	p := NewPipe(16)
	src := make([]byte, 1000)
	for i := range src {
		src[i] = byte(i * 7)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var werr error
	go func() {
		defer wg.Done()
		_, werr = p.Write(src)
		p.CloseWrite()
	}()
	got, err := io.ReadAll(p.ReadEnd())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("data corrupted: got %d bytes", len(got))
	}
}

func TestPipeGrowPreservesFIFO(t *testing.T) {
	p := NewPipe(8)
	p.Write([]byte{1, 2, 3, 4, 5})
	b := make([]byte, 2)
	io.ReadFull(p, b) // consume 1,2 → ring offset moves
	p.Write([]byte{6, 7, 8, 9, 10})
	if got := p.Grow(32); got != 32 {
		t.Fatalf("Grow = %d", got)
	}
	p.CloseWrite()
	rest, err := io.ReadAll(p.ReadEnd())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{3, 4, 5, 6, 7, 8, 9, 10}
	if !bytes.Equal(rest, want) {
		t.Fatalf("after Grow got %v, want %v", rest, want)
	}
}

func TestPipeGrowIgnoresShrink(t *testing.T) {
	p := NewPipe(16)
	if got := p.Grow(8); got != 16 {
		t.Fatalf("Grow(8) on cap-16 pipe = %d, want 16", got)
	}
}

func TestPipeGrowUnblocksWriter(t *testing.T) {
	p := NewPipe(2)
	p.Write([]byte{1, 2})
	done := make(chan error, 1)
	go func() {
		_, err := p.Write([]byte{3, 4})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if !p.WriteBlockedOnFull() {
		t.Fatal("writer should be blocked on full pipe")
	}
	p.Grow(8)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	p.CloseWrite()
	got, _ := io.ReadAll(p.ReadEnd())
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestPipeSnapshotAndDrain(t *testing.T) {
	p := NewPipe(8)
	p.Write([]byte{9, 8, 7})
	snap := p.Snapshot()
	if !bytes.Equal(snap, []byte{9, 8, 7}) {
		t.Fatalf("Snapshot = %v", snap)
	}
	if p.Len() != 3 {
		t.Fatalf("Snapshot consumed data: Len = %d", p.Len())
	}
	got := p.Drain()
	if !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("Drain = %v", got)
	}
	if p.Len() != 0 {
		t.Fatalf("Len after Drain = %d", p.Len())
	}
}

func TestPipeBlockedCounts(t *testing.T) {
	p := NewPipe(1)
	go p.Read(make([]byte, 1))
	deadline := time.Now().Add(time.Second)
	for p.BlockedReaders() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("reader never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	p.Write([]byte{1}) // release reader
	p.Write([]byte{2}) // fill buffer
	go p.Write([]byte{3})
	deadline = time.Now().Add(time.Second)
	for p.BlockedWriters() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("writer never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	if !p.WriteBlockedOnFull() {
		t.Fatal("WriteBlockedOnFull should be true")
	}
	p.CloseRead()
}

func TestPipeName(t *testing.T) {
	p := NewPipe(1)
	p.SetName("ab")
	if p.Name() != "ab" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// countObserver counts observer callbacks.
type countObserver struct {
	mu                         sync.Mutex
	blocked, unblocked, events int
}

func (c *countObserver) PipeBlocked(*Pipe, bool) {
	c.mu.Lock()
	c.blocked++
	c.mu.Unlock()
}
func (c *countObserver) PipeUnblocked(*Pipe, bool) {
	c.mu.Lock()
	c.unblocked++
	c.mu.Unlock()
}
func (c *countObserver) PipeEvent(*Pipe) {
	c.mu.Lock()
	c.events++
	c.mu.Unlock()
}

func TestPipeObserverCallbacks(t *testing.T) {
	p := NewPipe(1)
	o := &countObserver{}
	p.SetObserver(o)
	p.Write([]byte{1})
	done := make(chan struct{})
	go func() {
		p.Write([]byte{2})
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	p.Read(make([]byte, 1))
	<-done
	p.CloseWrite()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.blocked == 0 || o.unblocked == 0 || o.events == 0 {
		t.Fatalf("observer not invoked: %+v", o)
	}
	if o.blocked != o.unblocked {
		t.Fatalf("blocked %d != unblocked %d", o.blocked, o.unblocked)
	}
}

// TestPipeFIFOProperty: for any sequence of chunk sizes, concurrent write
// and read preserve exact byte order (the defining channel property).
func TestPipeFIFOProperty(t *testing.T) {
	f := func(data []byte, capSeed uint8) bool {
		capacity := int(capSeed)%64 + 1
		p := NewPipe(capacity)
		go func() {
			rng := rand.New(rand.NewSource(int64(capSeed)))
			rest := data
			for len(rest) > 0 {
				n := rng.Intn(len(rest)) + 1
				p.Write(rest[:n])
				rest = rest[n:]
			}
			p.CloseWrite()
		}()
		got, err := io.ReadAll(p.ReadEnd())
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPipeInterleavedRandomOps drives a writer and reader with random
// chunk sizes over a small buffer and checks full content equality.
func TestPipeInterleavedRandomOps(t *testing.T) {
	const total = 1 << 16
	p := NewPipe(37)
	src := make([]byte, total)
	rand.New(rand.NewSource(1)).Read(src)
	go func() {
		rng := rand.New(rand.NewSource(2))
		rest := src
		for len(rest) > 0 {
			n := rng.Intn(97) + 1
			if n > len(rest) {
				n = len(rest)
			}
			p.Write(rest[:n])
			rest = rest[n:]
		}
		p.CloseWrite()
	}()
	var got []byte
	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, 128)
	for {
		n, err := p.Read(buf[:rng.Intn(127)+1])
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, src) {
		t.Fatal("interleaved transfer corrupted data")
	}
}

func TestPipeZeroLengthRead(t *testing.T) {
	p := NewPipe(4)
	n, err := p.Read(nil)
	if n != 0 || err != nil {
		t.Fatalf("Read(nil) = %d, %v", n, err)
	}
}

func TestPipeReadAfterCloseReadReturnsError(t *testing.T) {
	p := NewPipe(4)
	p.CloseRead()
	if _, err := p.Read(make([]byte, 1)); err != ErrReadClosed {
		t.Fatalf("got %v, want ErrReadClosed", err)
	}
}

func TestPipeEndsAdapters(t *testing.T) {
	p := NewPipe(4)
	w := p.WriteEnd()
	r := p.ReadEnd()
	w.Write([]byte{5})
	b := make([]byte, 1)
	if _, err := r.Read(b); err != nil || b[0] != 5 {
		t.Fatalf("adapter read failed: %v %v", b, err)
	}
	w.Close()
	if !p.WriteClosed() {
		t.Fatal("WriteEnd.Close did not close write side")
	}
	r.Close()
	if !p.ReadClosed() {
		t.Fatal("ReadEnd.Close did not close read side")
	}
}
