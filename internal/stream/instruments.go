package stream

import (
	"time"

	"dpn/internal/obs"
)

// Instruments aggregates the observability hooks of one pipe: byte and
// block counters, occupancy gauges, block-duration histograms, and the
// event tracer. Every field may be nil; a pipe with a nil *Instruments
// pays a single branch per operation. The instruments are created by
// whoever registers the pipe (core.Network.NewChannel) so this package
// stays free of naming policy.
type Instruments struct {
	BytesWritten *obs.Counter
	BytesRead    *obs.Counter
	Occupancy    *obs.Gauge // current buffered bytes
	HighWater    *obs.Gauge // peak buffered bytes
	Capacity     *obs.Gauge
	Grows        *obs.Counter
	ReadBlocks   *obs.Counter
	WriteBlocks  *obs.Counter
	// ReadBlockSeconds and WriteBlockSeconds observe how long each
	// blocked channel operation waited, in seconds.
	ReadBlockSeconds  *obs.Histogram
	WriteBlockSeconds *obs.Histogram
	// ReadWaitNanos and WriteWaitNanos accumulate the same stalls as
	// monotonic nanosecond totals — the backpressure watermarks: the
	// read counter grows while the consumer starves, the write counter
	// while the producer is throttled by a full buffer. Deltas over a
	// scrape interval yield the blocked-time % dpntop renders.
	ReadWaitNanos  *obs.Counter
	WriteWaitNanos *obs.Counter
	Tracer         *obs.Tracer
	Name           string // trace subject, normally the channel name
}

// noteWrite records nw bytes entering the pipe, with occ bytes now
// buffered. Called with the pipe lock held.
func (m *Instruments) noteWrite(nw, occ int) {
	if m == nil {
		return
	}
	m.BytesWritten.Add(int64(nw))
	m.Occupancy.Set(int64(occ))
	m.HighWater.Max(int64(occ))
	m.Tracer.Record(obs.EvWrite, m.Name, "", int64(nw))
}

// noteRead records nr bytes leaving the pipe.
func (m *Instruments) noteRead(nr, occ int) {
	if m == nil {
		return
	}
	m.BytesRead.Add(int64(nr))
	m.Occupancy.Set(int64(occ))
	m.Tracer.Record(obs.EvRead, m.Name, "", int64(nr))
}

// noteGrow records a capacity growth.
func (m *Instruments) noteGrow(newCap int) {
	if m == nil {
		return
	}
	m.Grows.Inc()
	m.Capacity.Set(int64(newCap))
	m.Tracer.Record(obs.EvGrow, m.Name, "", int64(newCap))
}

// noteBlock records a goroutine blocking on the pipe and returns the
// wall-clock start used to measure the stall. The zero time means "not
// instrumented" and makes noteUnblock a no-op.
func (m *Instruments) noteBlock(write bool) time.Time {
	if m == nil {
		return time.Time{}
	}
	if write {
		m.WriteBlocks.Inc()
		m.Tracer.Record(obs.EvBlock, m.Name, "write", 0)
	} else {
		m.ReadBlocks.Inc()
		m.Tracer.Record(obs.EvBlock, m.Name, "read", 0)
	}
	return time.Now()
}

// noteUnblock records the blocked operation resuming after the stall
// that began at t0.
func (m *Instruments) noteUnblock(write bool, t0 time.Time) {
	if m == nil || t0.IsZero() {
		return
	}
	d := time.Since(t0)
	if write {
		m.WriteBlockSeconds.Observe(d.Seconds())
		m.WriteWaitNanos.Add(d.Nanoseconds())
		m.Tracer.Record(obs.EvUnblock, m.Name, "write", d.Nanoseconds())
	} else {
		m.ReadBlockSeconds.Observe(d.Seconds())
		m.ReadWaitNanos.Add(d.Nanoseconds())
		m.Tracer.Record(obs.EvUnblock, m.Name, "read", d.Nanoseconds())
	}
}
