// Package blockcodec implements the paper's motivating example for
// embarrassingly parallel computing (§5): "an image can be divided
// into 16x16 blocks of pixels that are compressed independently with
// the results collected and written in order to an image file. In this
// example, a Producer breaks the image down into blocks of pixels, one
// or more Workers compress each block, and a Consumer writes each
// compressed block to an image file."
//
// The codec is deliberately simple — uniform quantization followed by
// run-length encoding — because the experiment is about the process
// network, not the compression: blocks are independent work units of
// meaningful size whose results must be reassembled in order. The
// package provides the image raster, block splitting/assembly, the
// codec, and the meta.Task types that drive the generic
// Producer/Worker/Consumer processes.
package blockcodec

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"dpn/internal/meta"
)

// Image is a simple grayscale raster.
type Image struct {
	W, H int
	Pix  []byte // row-major, len == W*H
}

// NewImage allocates a zeroed raster.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}
}

// Synthetic renders a deterministic grayscale test pattern (smooth
// gradients plus ripples), compressible but not trivial.
func Synthetic(w, h int, seed int64) *Image {
	img := NewImage(w, h)
	fs := float64(seed%251) + 3
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 96*math.Sin(float64(x)/fs) + 96*math.Cos(float64(y)/(fs/2)) + 64
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img.Pix[y*w+x] = byte(v)
		}
	}
	return img
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) byte { return im.Pix[y*im.W+x] }

// Block is one rectangular tile of an image.
type Block struct {
	Index int // position in row-major block order
	X, Y  int // top-left pixel
	W, H  int
	Pix   []byte // row-major within the block
}

// Split cuts an image into blockSize×blockSize tiles in row-major
// order; edge tiles are smaller when the dimensions do not divide
// evenly.
func Split(img *Image, blockSize int) []Block {
	if blockSize <= 0 {
		blockSize = 16
	}
	var out []Block
	idx := 0
	for y := 0; y < img.H; y += blockSize {
		for x := 0; x < img.W; x += blockSize {
			bw := min(blockSize, img.W-x)
			bh := min(blockSize, img.H-y)
			b := Block{Index: idx, X: x, Y: y, W: bw, H: bh, Pix: make([]byte, bw*bh)}
			for r := 0; r < bh; r++ {
				copy(b.Pix[r*bw:(r+1)*bw], img.Pix[(y+r)*img.W+x:(y+r)*img.W+x+bw])
			}
			out = append(out, b)
			idx++
		}
	}
	return out
}

// Assemble reconstructs an image of the given dimensions from blocks
// (any order; Index/X/Y position them).
func Assemble(w, h int, blocks []Block) (*Image, error) {
	img := NewImage(w, h)
	covered := 0
	for _, b := range blocks {
		if b.X < 0 || b.Y < 0 || b.X+b.W > w || b.Y+b.H > h {
			return nil, fmt.Errorf("blockcodec: block %d out of bounds", b.Index)
		}
		if len(b.Pix) != b.W*b.H {
			return nil, fmt.Errorf("blockcodec: block %d has %d pixels, want %d", b.Index, len(b.Pix), b.W*b.H)
		}
		for r := 0; r < b.H; r++ {
			copy(img.Pix[(b.Y+r)*w+b.X:(b.Y+r)*w+b.X+b.W], b.Pix[r*b.W:(r+1)*b.W])
		}
		covered += b.W * b.H
	}
	if covered != w*h {
		return nil, errors.New("blockcodec: blocks do not tile the image")
	}
	return img, nil
}

// Compressed is one run-length-encoded, quantized block.
type Compressed struct {
	Index int
	X, Y  int
	W, H  int
	Quant int
	Runs  []byte // pairs: count (1..255), value
}

// Quantize maps a pixel onto the q-level grid (q ≤ 1 disables
// quantization).
func Quantize(v byte, q int) byte {
	if q <= 1 {
		return v
	}
	step := 256 / q
	if step < 1 {
		step = 1
	}
	return byte(int(v) / step * step)
}

// Compress quantizes a block to q levels and run-length encodes it.
func Compress(b Block, q int) Compressed {
	c := Compressed{Index: b.Index, X: b.X, Y: b.Y, W: b.W, H: b.H, Quant: q}
	if len(b.Pix) == 0 {
		return c
	}
	cur := Quantize(b.Pix[0], q)
	count := 1
	flush := func() {
		c.Runs = append(c.Runs, byte(count), cur)
	}
	for _, raw := range b.Pix[1:] {
		v := Quantize(raw, q)
		if v == cur && count < 255 {
			count++
			continue
		}
		flush()
		cur, count = v, 1
	}
	flush()
	return c
}

// Decompress expands a compressed block back into pixels (quantized —
// the codec is lossy by the quantization step only).
func Decompress(c Compressed) (Block, error) {
	b := Block{Index: c.Index, X: c.X, Y: c.Y, W: c.W, H: c.H, Pix: make([]byte, 0, c.W*c.H)}
	if len(c.Runs)%2 != 0 {
		return b, errors.New("blockcodec: odd run data")
	}
	for i := 0; i < len(c.Runs); i += 2 {
		count := int(c.Runs[i])
		v := c.Runs[i+1]
		for j := 0; j < count; j++ {
			b.Pix = append(b.Pix, v)
		}
	}
	if len(b.Pix) != c.W*c.H {
		return b, fmt.Errorf("blockcodec: decoded %d pixels, want %d", len(b.Pix), c.W*c.H)
	}
	return b, nil
}

// CompressedSize returns the encoded byte count of a compressed block.
func (c Compressed) CompressedSize() int { return len(c.Runs) }

// ---------------------------------------------------------------------
// meta.Task plumbing: the producer/worker/consumer tasks of §5.
// ---------------------------------------------------------------------

// BlockSource is the producer task: each Run yields the next block's
// CompressTask until the image is exhausted.
type BlockSource struct {
	Blocks []Block
	Quant  int
	Next   int
}

// NewBlockSource splits an image and returns the producer task.
func NewBlockSource(img *Image, blockSize, quant int) *BlockSource {
	return &BlockSource{Blocks: Split(img, blockSize), Quant: quant}
}

// Run implements meta.Task.
func (s *BlockSource) Run() (meta.Task, error) {
	if s.Next >= len(s.Blocks) {
		return nil, nil
	}
	b := s.Blocks[s.Next]
	s.Next++
	return &CompressTask{B: b, Quant: s.Quant}, nil
}

// CompressTask is the worker task: compress one block.
type CompressTask struct {
	B     Block
	Quant int
}

// Run implements meta.Task.
func (t *CompressTask) Run() (meta.Task, error) {
	return &CompressedBlock{C: Compress(t.B, t.Quant)}, nil
}

// CompressedBlock is the consumer task carrying one result.
type CompressedBlock struct {
	C Compressed
}

// Run implements meta.Task.
func (r *CompressedBlock) Run() (meta.Task, error) { return nil, nil }

func init() {
	gob.Register(&BlockSource{})
	gob.Register(&CompressTask{})
	gob.Register(&CompressedBlock{})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
