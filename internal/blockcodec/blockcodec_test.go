package blockcodec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dpn/internal/core"
	"dpn/internal/meta"
)

func TestSplitAssembleRoundTrip(t *testing.T) {
	img := Synthetic(100, 70, 5) // not divisible by 16: edge blocks
	blocks := Split(img, 16)
	wantBlocks := ((100 + 15) / 16) * ((70 + 15) / 16)
	if len(blocks) != wantBlocks {
		t.Fatalf("got %d blocks, want %d", len(blocks), wantBlocks)
	}
	got, err := Assemble(100, 70, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, img.Pix) {
		t.Fatal("split/assemble corrupted the image")
	}
}

func TestSplitAssembleProperty(t *testing.T) {
	f := func(wSeed, hSeed, bSeed uint8, seed int64) bool {
		w := int(wSeed)%60 + 1
		h := int(hSeed)%60 + 1
		bs := int(bSeed)%20 + 1
		img := Synthetic(w, h, seed)
		out, err := Assemble(w, h, Split(img, bs))
		return err == nil && bytes.Equal(out.Pix, img.Pix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressDecompressIsQuantization(t *testing.T) {
	img := Synthetic(64, 64, 9)
	for _, q := range []int{1, 4, 16, 64} {
		for _, b := range Split(img, 16) {
			dec, err := Decompress(Compress(b, q))
			if err != nil {
				t.Fatal(err)
			}
			for i := range b.Pix {
				if dec.Pix[i] != Quantize(b.Pix[i], q) {
					t.Fatalf("q=%d block %d pixel %d: %d != quantize(%d)",
						q, b.Index, i, dec.Pix[i], b.Pix[i])
				}
			}
		}
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	img := Synthetic(128, 128, 3)
	raw, comp := 0, 0
	for _, b := range Split(img, 16) {
		c := Compress(b, 16)
		raw += len(b.Pix)
		comp += c.CompressedSize()
	}
	if comp >= raw {
		t.Fatalf("no compression: %d >= %d", comp, raw)
	}
	t.Logf("ratio: %.2fx (%d → %d bytes)", float64(raw)/float64(comp), raw, comp)
}

func TestCompressedRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(q8 uint8) bool {
		q := int(q8)%32 + 1
		b := Block{Index: 0, W: 16, H: 16, Pix: make([]byte, 256)}
		rng.Read(b.Pix)
		dec, err := Decompress(Compress(b, q))
		if err != nil {
			return false
		}
		for i := range b.Pix {
			if dec.Pix[i] != Quantize(b.Pix[i], q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress(Compressed{W: 2, H: 2, Runs: []byte{1}}); err == nil {
		t.Fatal("odd run data accepted")
	}
	if _, err := Decompress(Compressed{W: 2, H: 2, Runs: []byte{1, 7}}); err == nil {
		t.Fatal("short decode accepted")
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble(4, 4, []Block{{X: 3, Y: 0, W: 2, H: 2, Pix: make([]byte, 4)}}); err == nil {
		t.Fatal("out-of-bounds block accepted")
	}
	if _, err := Assemble(4, 4, []Block{{W: 2, H: 2, Pix: make([]byte, 3)}}); err == nil {
		t.Fatal("short block accepted")
	}
	if _, err := Assemble(4, 4, []Block{{W: 2, H: 2, Pix: make([]byte, 4)}}); err == nil {
		t.Fatal("non-tiling blocks accepted")
	}
}

// The §5 experiment end to end: the image compressed through the
// dynamic parallel composition equals the sequential reference, with
// results arriving in block order.
func TestImageThroughDynamicNetwork(t *testing.T) {
	img := Synthetic(96, 64, 13)
	const quant = 16

	// Sequential reference.
	var refBlocks []Block
	for _, b := range Split(img, 16) {
		dec, err := Decompress(Compress(b, quant))
		if err != nil {
			t.Fatal(err)
		}
		refBlocks = append(refBlocks, dec)
	}
	ref, err := Assemble(96, 64, refBlocks)
	if err != nil {
		t.Fatal(err)
	}

	// Parallel run.
	n := core.NewNetwork()
	dyn := meta.NewDynamic(n, NewBlockSource(img, 16, quant), 4, 0)
	var order []int
	var decoded []Block
	var decodeErr error
	dyn.Consumer.SetOnResult(func(ran, result meta.Task) {
		cb, ok := ran.(*CompressedBlock)
		if !ok {
			return
		}
		order = append(order, cb.C.Index)
		dec, err := Decompress(cb.C)
		if err != nil && decodeErr == nil {
			decodeErr = err
		}
		decoded = append(decoded, dec)
	})
	dyn.Spawn(n)
	done := make(chan error, 1)
	go func() { done <- n.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("image pipeline did not terminate")
	}
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	// Results in block order (the §5 "written in order" requirement).
	for i, idx := range order {
		if idx != i {
			t.Fatalf("result %d has block index %d (out of order)", i, idx)
		}
	}
	got, err := Assemble(96, 64, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, ref.Pix) {
		t.Fatal("parallel result differs from sequential reference")
	}
}
