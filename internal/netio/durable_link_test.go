package netio

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"dpn/internal/token/blocks"
)

// mkMonotone stages one outbound chunk of n monotone big-endian int64s
// in a pooled buffer with header headroom — maximally compressible, so
// the DATA-C path is guaranteed to engage.
func mkMonotone(n int, seed int64) outChunk {
	bp := getChunkBuf()
	data := (*bp)[frameHdrLen : frameHdrLen+n*8]
	v := seed
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(data[i*8:], uint64(v))
		v += 3
	}
	return outChunk{data: data, start: frameHdrLen, orig: bp}
}

// TestRebaseMidChunkCompressedReplay pins down the dropUnacked /
// trimUnacked compression audit: an ack or rebase landing mid-chunk
// (and therefore mid-sealed-block on the wire) must never make the
// receiver resume decode inside a sealed block. Blocks are sealed per
// frame at write time, so the replayed remainder is re-trialed — and a
// non-8-aligned remainder ships raw. The receiver decodes every frame
// strictly and must never see ErrBadFrame.
func TestRebaseMidChunkCompressedReplay(t *testing.T) {
	b := newTestBroker(t)
	b.SetResilience(Resilience{
		HeartbeatEvery: time.Second,
		MissDeadline:   10 * time.Second,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       50 * time.Millisecond,
		LinkDeadline:   10 * time.Second,
		Seed:           1,
	})
	h := newHandle(b, true)
	o := b.newOutbound(h, io.NopCloser(strings.NewReader("")), 0, true, "", "tok")
	if !o.comp {
		t.Fatal("compression should default on")
	}

	sender, receiver := net.Pipe()
	defer sender.Close()

	type recvResult struct {
		got  []byte
		err  error
		comp int // DATA-C frames seen
	}
	resCh := make(chan recvResult, 1)
	go func() {
		var r recvResult
		for {
			f, err := readFrame(receiver)
			if err != nil {
				resCh <- r // EOF/closed pipe ends the collection
				return
			}
			switch f.kind {
			case frameData:
				r.got = append(r.got, f.payload...)
			case frameDataC:
				out, derr := blocks.DecodeBE(nil, f.payload, coalesceMax)
				if derr != nil {
					r.err = ErrBadFrame
					resCh <- r
					return
				}
				r.comp++
				r.got = append(r.got, out...)
			default:
				r.err = errors.New("unexpected frame kind")
				resCh <- r
				return
			}
		}
	}()

	var want []byte
	send := func(c outChunk) {
		t.Helper()
		if err := o.writeData(sender, c); err != nil {
			t.Fatalf("writeData: %v", err)
		}
		o.unacked = append(o.unacked, sentChunk{off: o.sendOff, c: c})
		o.sendOff += uint64(len(c.data))
	}

	// A compressible chunk goes out sealed as one DATA-C block.
	first := mkMonotone(512, 5)
	want = append(want, first.data...)
	send(first)

	// The receiver acks PART of it, mid-block and non-8-aligned: the
	// retained remainder must not pretend it is still a sealed block.
	const midAck = 1003
	o.ackOff = midAck
	o.trimUnacked(o.ackOff)
	if len(o.unacked) != 1 || len(o.unacked[0].c.data)%8 == 0 {
		t.Fatalf("expected one non-aligned remainder chunk, have %d chunks", len(o.unacked))
	}

	// RESUME replay of the remainder (what resync does).
	for _, sc := range o.unacked {
		if err := o.writeData(sender, sc.c); err != nil {
			t.Fatalf("replay writeData: %v", err)
		}
	}
	want = append(want, first.data[midAck:]...)

	// MOVING-style rebase to offset zero, then a fresh compressible
	// chunk: decode must restart cleanly at the new epoch.
	o.dropUnacked()
	o.sendOff, o.ackOff = 0, 0
	second := mkMonotone(512, 999)
	want = append(want, second.data...)
	send(second)
	o.dropUnacked()

	sender.Close()
	r := <-resCh
	if r.err != nil {
		t.Fatalf("receiver decode failed: %v", r.err)
	}
	if r.comp == 0 {
		t.Fatal("no DATA-C frame observed; the test did not exercise the compressed path")
	}
	if string(r.got) != string(want) {
		t.Fatalf("stream diverged: got %d bytes, want %d", len(r.got), len(want))
	}
}

// TestBrokerCloseInterruptsReconnectBackoff pins the Broker.Close
// regression: a link mid-backoff in the reconnect dial loop (e.g.
// after a failed RESUME resync) must fail fast with ErrBrokerClosed
// when its broker shuts down, not keep dialing until LinkDeadline.
func TestBrokerCloseInterruptsReconnectBackoff(t *testing.T) {
	b := newTestBroker(t)
	res := Resilience{
		HeartbeatEvery: 20 * time.Millisecond,
		MissDeadline:   200 * time.Millisecond,
		RetryBase:      40 * time.Millisecond,
		RetryMax:       2 * time.Second,
		LinkDeadline:   time.Hour, // the old behavior would retry this long
		Seed:           1,
	}
	b.SetResilience(res)

	// A dead address that refuses connections instantly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		_, err := b.reconnect(&res, newLinkRNG(&res), false, deadAddr, "tok", time.Now())
		done <- err
	}()
	// Let a few dial attempts fail so the loop is inside a backoff sleep.
	time.Sleep(150 * time.Millisecond)
	start := time.Now()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrBrokerClosed) {
			t.Fatalf("reconnect returned %v, want ErrBrokerClosed", err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("reconnect took %v to observe Close", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reconnect still retrying after Broker.Close")
	}
}
