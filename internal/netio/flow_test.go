package netio

import (
	"bytes"
	"io"
	"testing"
	"time"

	"dpn/internal/stream"
)

// TestFlowControlBoundsInFlightBytes verifies that a sender with an
// undrained receiver stalls after roughly window + receiver-pipe bytes
// — the property that makes bounded channel capacity hold across the
// network even though kernel socket buffers are huge.
func TestFlowControlBoundsInFlightBytes(t *testing.T) {
	a := newTestBroker(t)
	b := newTestBroker(t)

	const window = 4096
	const dstCap = 2048
	src := stream.NewPipe(1 << 20)
	dst := stream.NewPipe(dstCap)
	tok := a.NewToken()
	if _, err := a.ServeOutbound(tok, src.ReadEnd(), window); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DialInbound(a.Addr(), tok, dst.WriteEnd()); err != nil {
		t.Fatal(err)
	}
	// Nobody reads dst. Fill the source far beyond window+dstCap.
	payload := bytes.Repeat([]byte("z"), 1<<20)
	go src.Write(payload)

	// Give the link time to move what it is allowed to move.
	time.Sleep(300 * time.Millisecond)
	moved := a.BytesOut()
	// Frame overhead is a few bytes per 32 KiB chunk; the bound is the
	// window plus one chunk of slack plus the receiver pipe.
	limit := int64(window + chunkSize + dstCap + 1024)
	if moved > limit {
		t.Fatalf("sender moved %d bytes with a stalled receiver; want ≤ %d", moved, limit)
	}
	if moved == 0 {
		t.Fatal("sender moved nothing")
	}
	// Draining the receiver releases the stream.
	go io.Copy(io.Discard, dst.ReadEnd())
	deadline := time.Now().Add(30 * time.Second)
	for a.BytesOut() < int64(len(payload)) {
		if time.Now().After(deadline) {
			t.Fatalf("stream stalled after drain: %d of %d", a.BytesOut(), len(payload))
		}
		time.Sleep(time.Millisecond)
	}
	src.CloseWrite()
}

// TestFlowControlStreamIntegrity pushes a large payload through a tiny
// window and checks every byte arrives in order.
func TestFlowControlStreamIntegrity(t *testing.T) {
	a := newTestBroker(t)
	b := newTestBroker(t)
	src := stream.NewPipe(1 << 16)
	dst := stream.NewPipe(512)
	tok := a.NewToken()
	a.ServeOutbound(tok, src.ReadEnd(), 256)
	b.DialInbound(a.Addr(), tok, dst.WriteEnd())
	payload := make([]byte, 300000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		src.Write(payload)
		src.CloseWrite()
	}()
	got, err := io.ReadAll(dst.ReadEnd())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("corrupted: got %d bytes", len(got))
	}
}

// TestConnDropPoisonsBothEnds kills the TCP connection under a live
// link: the writer-side source must be closed (poisoning the producer)
// and the reader side must observe end of stream, so the distributed
// cascade of §3.4 still terminates the graph after a network failure.
func TestConnDropPoisonsBothEnds(t *testing.T) {
	a := newTestBroker(t)
	b := newTestBroker(t)
	src := stream.NewPipe(64)
	dst := stream.NewPipe(64)
	tok := a.NewToken()
	hOut, err := a.ServeOutbound(tok, src.ReadEnd(), 0)
	if err != nil {
		t.Fatal(err)
	}
	hIn, err := b.DialInbound(a.Addr(), tok, dst.WriteEnd())
	if err != nil {
		t.Fatal(err)
	}
	// Move a byte to establish the conn, then sever it by closing B's
	// broker (closes its listener and pending conns; the live conn dies
	// when we close it through the handle side: simulate by closing the
	// underlying conn via the broker's counters being unreachable —
	// simplest reliable method: close the whole broker including conns).
	src.Write([]byte{1})
	buf := make([]byte, 1)
	if _, err := io.ReadFull(dst.ReadEnd(), buf); err != nil {
		t.Fatal(err)
	}
	// Abruptly sever the TCP connection under the link (the test lives
	// in package netio, so it can reach the inbound link's conn).
	hIn.in.mu.Lock()
	conn := hIn.in.conn
	hIn.in.mu.Unlock()
	conn.Close()

	// Writer side: next writes eventually fail.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := src.Write([]byte{9}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never poisoned after connection loss")
		}
		time.Sleep(time.Millisecond)
	}
	hOut.Wait()
	// Reader side: stream ends.
	if _, err := io.ReadAll(dst.ReadEnd()); err != nil && err != io.EOF {
		t.Fatalf("reader error: %v", err)
	}
	hIn.Wait()
}
