package netio

import (
	"net"
	"testing"
	"time"
)

// Regression tests for the dial/accept deadline audit: no handshake
// path may block unboundedly on a silent peer.

// A connection that never sends its HELLO frame must be dropped by the
// accept path's handshake deadline instead of pinning a goroutine (and
// the socket) forever.
func TestAcceptDropsSilentConnection(t *testing.T) {
	old := handshakeTimeout()
	setHandshakeTimeout(200 * time.Millisecond)
	defer setHandshakeTimeout(old)

	b := newTestBroker(t)
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The broker must close the connection once the handshake deadline
	// passes; a blocking read on our side then errors out.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("broker kept a silent connection open past the handshake deadline")
	}
}

// A connection that sends garbage instead of HELLO must be dropped
// immediately, not parked in the rendezvous table.
func TestAcceptDropsBadHello(t *testing.T) {
	b := newTestBroker(t)
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("broker kept a non-protocol connection open")
	}
}
