package netio

import (
	"dpn/internal/obs"
)

// frameKinds enumerates every protocol frame so the per-kind counters
// can be precreated and therefore appear (at zero) in the exposition
// before any traffic flows.
var frameKinds = []struct {
	kind byte
	name string
}{
	{frameHello, "hello"},
	{frameData, "data"},
	{frameEOF, "eof"},
	{frameRedirect, "redirect"},
	{frameCloseRead, "close-read"},
	{frameMoving, "moving"},
	{frameFence, "fence"},
	{frameAck, "ack"},
	{frameBeat, "beat"},
	{frameResume, "resume"},
	{frameBye, "bye"},
	{frameTrace, "trace"},
	{frameDataC, "data-c"},
}

func frameKindName(kind byte) string {
	for _, fk := range frameKinds {
		if fk.kind == kind {
			return fk.name
		}
	}
	return "unknown"
}

// brokerInstruments holds the broker's registry-backed counters. The
// whole bundle is swapped atomically by SetObs, so the hot paths load
// one pointer and never race with re-instrumentation.
type brokerInstruments struct {
	bytesIn         *obs.Counter
	bytesOut        *obs.Counter
	logicalIn       *obs.Counter
	logicalOut      *obs.Counter
	wireIn          *obs.Counter
	wireOut         *obs.Counter
	compRatio       *obs.Gauge
	framesIn        map[byte]*obs.Counter
	framesOut       map[byte]*obs.Counter
	frameUnknown    *obs.Counter
	creditStalls    *obs.Counter
	framesCoalesced *obs.Counter
	linkRetries     *obs.Counter
	heartbeatMiss   *obs.Counter
	partitionHeal   *obs.Counter
	linkFailures    *obs.Counter
	muxSessDial     *obs.Counter
	muxSessAccept   *obs.Counter
	muxSessionsLive *obs.Gauge
	muxStreamsLive  *obs.Gauge
	muxStreamsPer   *obs.Gauge
	muxCreditStalls *obs.Counter
	muxAuthFail     *obs.Counter
	tracer          *obs.Tracer
}

// newBrokerInstruments creates the broker metric family in the scope's
// registry, precreating the per-kind frame counters at zero.
func newBrokerInstruments(s *obs.Scope) *brokerInstruments {
	reg := s.Registry()
	reg.Help("dpn_broker_bytes_total", "Channel-link bytes through the broker, by dir (in|out).")
	reg.Help("dpn_broker_frames_total", "Protocol frames through the broker, by kind and dir (in|out).")
	reg.Help("dpn_broker_credit_stalls_total", "Times an outbound link waited for flow-control credit.")
	reg.Help("dpn_conduit_link_logical_bytes_total", "Uncompressed channel payload bytes carried by link DATA frames, by dir (in|out).")
	reg.Help("dpn_conduit_link_wire_bytes_total", "Channel payload bytes as actually framed on the wire (post-compression), by dir (in|out).")
	reg.Help("dpn_conduit_link_compressed_ratio", "Logical-to-wire payload ratio over this broker's links, in permille (1000 = uncompressed).")
	reg.Help("dpn_conduit_link_frames_coalesced_total", "Queued outbound data chunks merged into an earlier frame instead of sent separately.")
	reg.Help("dpn_conduit_link_retries_total", "Link reconnect attempts that failed and backed off.")
	reg.Help("dpn_conduit_link_heartbeat_miss_total", "Bounded link reads that timed out waiting for the peer.")
	reg.Help("dpn_conduit_link_partition_heal_total", "Successful link reconnects after an outage.")
	reg.Help("dpn_conduit_link_failures_total", "Links that exhausted their outage deadline and degraded.")
	reg.Help("dpn_mux_sessions_total", "Authenticated mux sessions established, by role (dial|accept).")
	reg.Help("dpn_mux_sessions_live", "Mux sessions currently open (one per connected peer pair).")
	reg.Help("dpn_mux_streams_live", "Virtual streams currently open across all mux sessions.")
	reg.Help("dpn_mux_streams_per_session", "Live virtual streams per live mux session (the multiplexing factor).")
	reg.Help("dpn_mux_credit_stalls_total", "Times a mux stream write waited for per-stream credit.")
	reg.Help("dpn_mux_auth_failures_total", "Mux session handshakes rejected by peer authentication.")
	// The link plane is the transport half of the conduit layer, so its
	// canonical metric names live under dpn_conduit_link_*; the pre-PR5
	// dpn_link_* names stay visible as exposition-time aliases.
	for _, m := range [][2]string{
		{"dpn_link_frames_coalesced_total", "dpn_conduit_link_frames_coalesced_total"},
		{"dpn_link_retries_total", "dpn_conduit_link_retries_total"},
		{"dpn_link_heartbeat_miss_total", "dpn_conduit_link_heartbeat_miss_total"},
		{"dpn_link_partition_heal_total", "dpn_conduit_link_partition_heal_total"},
		{"dpn_link_failures_total", "dpn_conduit_link_failures_total"},
	} {
		reg.Alias(m[0], m[1])
		reg.AliasHelp(m[0], "Deprecated alias of "+m[1]+".")
	}
	ins := &brokerInstruments{
		bytesIn:         reg.Counter("dpn_broker_bytes_total", obs.L("dir", "in")),
		bytesOut:        reg.Counter("dpn_broker_bytes_total", obs.L("dir", "out")),
		logicalIn:       reg.Counter("dpn_conduit_link_logical_bytes_total", obs.L("dir", "in")),
		logicalOut:      reg.Counter("dpn_conduit_link_logical_bytes_total", obs.L("dir", "out")),
		wireIn:          reg.Counter("dpn_conduit_link_wire_bytes_total", obs.L("dir", "in")),
		wireOut:         reg.Counter("dpn_conduit_link_wire_bytes_total", obs.L("dir", "out")),
		compRatio:       reg.Gauge("dpn_conduit_link_compressed_ratio"),
		framesIn:        make(map[byte]*obs.Counter, len(frameKinds)),
		framesOut:       make(map[byte]*obs.Counter, len(frameKinds)),
		creditStalls:    reg.Counter("dpn_broker_credit_stalls_total"),
		framesCoalesced: reg.Counter("dpn_conduit_link_frames_coalesced_total"),
		linkRetries:     reg.Counter("dpn_conduit_link_retries_total"),
		heartbeatMiss:   reg.Counter("dpn_conduit_link_heartbeat_miss_total"),
		partitionHeal:   reg.Counter("dpn_conduit_link_partition_heal_total"),
		linkFailures:    reg.Counter("dpn_conduit_link_failures_total"),
		muxSessDial:     reg.Counter("dpn_mux_sessions_total", obs.L("role", "dial")),
		muxSessAccept:   reg.Counter("dpn_mux_sessions_total", obs.L("role", "accept")),
		muxSessionsLive: reg.Gauge("dpn_mux_sessions_live"),
		muxStreamsLive:  reg.Gauge("dpn_mux_streams_live"),
		muxStreamsPer:   reg.Gauge("dpn_mux_streams_per_session"),
		muxCreditStalls: reg.Counter("dpn_mux_credit_stalls_total"),
		muxAuthFail:     reg.Counter("dpn_mux_auth_failures_total"),
		tracer:          s.Tracer(),
	}
	for _, fk := range frameKinds {
		ins.framesIn[fk.kind] = reg.Counter("dpn_broker_frames_total",
			obs.L("dir", "in"), obs.L("kind", fk.name))
		ins.framesOut[fk.kind] = reg.Counter("dpn_broker_frames_total",
			obs.L("dir", "out"), obs.L("kind", fk.name))
	}
	ins.frameUnknown = reg.Counter("dpn_broker_frames_total",
		obs.L("dir", "in"), obs.L("kind", "unknown"))
	return ins
}

// SetObs re-homes the broker's counters into the given observability
// scope. Call it before any links are created: counts accumulated under
// the previous scope stay there.
func (b *Broker) SetObs(s *obs.Scope) {
	if s == nil {
		return
	}
	b.ins.Store(newBrokerInstruments(s))
}

// noteFrame counts one protocol frame and traces it; dir is from this
// node's perspective. DATA-carrying kinds go through noteData instead,
// which also feeds the byte counters, so BytesIn/BytesOut report
// channel payload only — heartbeats and other control traffic never
// move them, which keeps the distributed deadlock detector's
// quiescence test meaningful on an idle graph.
func (b *Broker) noteFrame(kind byte, out bool, payload int) {
	ins := b.ins.Load()
	m := ins.framesIn
	dir := "in"
	if out {
		m = ins.framesOut
		dir = "out"
	}
	c, ok := m[kind]
	if !ok {
		c = ins.frameUnknown
	}
	c.Inc()
	ins.tracer.Record(obs.EvFrame, frameKindName(kind), dir, int64(payload))
}

// noteData counts one DATA or DATA-C frame. All flow-control-visible
// byte counters (dpn_broker_bytes_total and the logical family) move
// by the LOGICAL payload length — what the channel's processes see —
// while the wire family records the framed (possibly compressed)
// length, and the ratio gauge publishes their quotient in permille.
// Accounting logical bytes keeps every pre-compression consumer of
// BytesIn/BytesOut (deadlock quiescence, redirect tests) exact.
func (b *Broker) noteData(kind byte, out bool, wire, logical int) {
	ins := b.ins.Load()
	m := ins.framesIn
	dir := "in"
	if out {
		m = ins.framesOut
		dir = "out"
	}
	if c, ok := m[kind]; ok {
		c.Inc()
	} else {
		ins.frameUnknown.Inc()
	}
	if out {
		ins.bytesOut.Add(int64(logical))
		ins.logicalOut.Add(int64(logical))
		ins.wireOut.Add(int64(wire))
	} else {
		ins.bytesIn.Add(int64(logical))
		ins.logicalIn.Add(int64(logical))
		ins.wireIn.Add(int64(wire))
	}
	if kind == frameDataC {
		// Refresh the ratio gauge only when compression is actually
		// engaged; an all-raw broker reports the gauge's zero value
		// rather than a misleading 1000.
		lt := ins.logicalIn.Value() + ins.logicalOut.Value()
		wt := ins.wireIn.Value() + ins.wireOut.Value()
		if wt > 0 {
			ins.compRatio.Set(lt * 1000 / wt)
		}
	}
	ins.tracer.Record(obs.EvFrame, frameKindName(kind), dir, int64(logical))
}

// noteLink counts one link lifecycle event ("retry", "miss", "heal",
// or "fail") and traces it.
func (b *Broker) noteLink(event string) {
	ins := b.ins.Load()
	switch event {
	case "retry":
		ins.linkRetries.Inc()
	case "miss":
		ins.heartbeatMiss.Inc()
	case "heal":
		ins.partitionHeal.Inc()
	case "fail":
		ins.linkFailures.Inc()
	}
	ins.tracer.Record(obs.EvLink, "link", event, 0)
}

// noteSpan records one causal-trace span hop (detail "wire-out" or
// "wire-in") for the multi-node trace merge; subject is the link's
// rendezvous token, which names the same conduit edge on both peers.
func (b *Broker) noteSpan(subject, detail string, traceID uint64) {
	b.ins.Load().tracer.Record(obs.EvSpan, subject, detail, int64(traceID))
}

// noteCreditStall counts one flow-control wait on an outbound link.
func (b *Broker) noteCreditStall() {
	b.ins.Load().creditStalls.Inc()
}

// noteMuxStreams refreshes the live-stream gauge and the multiplexing
// factor (streams per live session) from the broker's atomics.
func (b *Broker) noteMuxStreams(streams int64) {
	ins := b.ins.Load()
	ins.muxStreamsLive.Set(streams)
	if sessions := b.muxLiveSessions.Load(); sessions > 0 {
		ins.muxStreamsPer.Set(streams / sessions)
	} else {
		ins.muxStreamsPer.Set(0)
	}
}

// noteCoalesced counts one queued data chunk merged into the frame
// ahead of it on an outbound link.
func (b *Broker) noteCoalesced() {
	b.ins.Load().framesCoalesced.Inc()
}
