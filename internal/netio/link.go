package netio

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// chunkSize is the outbound link's read granularity.
const chunkSize = 32 * 1024

// DefaultWindow is the flow-control window used when a link is created
// with a non-positive window: the sender keeps at most this many
// unacknowledged bytes in flight.
const DefaultWindow = 256 * 1024

// rendezvousTimeout bounds how long link setup waits for the peer.
const rendezvousTimeout = 60 * time.Second

// Handle tracks one cross-node channel link from this node's
// perspective: either the sending half (outbound: local bytes flow to a
// remote reader) or the receiving half (inbound: remote bytes flow into
// a local pipe). A handle is created immediately by the Dial*/Serve*
// calls; serve-mode handles become active when the peer connects.
type Handle struct {
	b        *Broker
	outbound bool

	mu       sync.Mutex
	active   bool
	peerAddr string
	ready    chan struct{}

	out *outboundLink
	in  *inboundLink

	done chan struct{}
	err  error
}

func newHandle(b *Broker, outbound bool) *Handle {
	return &Handle{
		b:        b,
		outbound: outbound,
		ready:    make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Outbound reports whether this is the sending half.
func (h *Handle) Outbound() bool { return h.outbound }

// WaitReady blocks until the link is connected (or the timeout
// elapses).
func (h *Handle) WaitReady() error {
	select {
	case <-h.ready:
		return nil
	case <-time.After(rendezvousTimeout):
		return errors.New("netio: rendezvous timed out")
	}
}

// Wait blocks until the link has fully shut down and returns its
// terminal error, if any.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// Done returns a channel closed when the link has shut down.
func (h *Handle) Done() <-chan struct{} { return h.done }

// PeerAddr returns the broker address of the other end (known once the
// link is ready).
func (h *Handle) PeerAddr() (string, error) {
	if err := h.WaitReady(); err != nil {
		return "", err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peerAddr, nil
}

func (h *Handle) finish(err error) {
	h.mu.Lock()
	if h.err == nil {
		h.err = err
	}
	h.mu.Unlock()
	close(h.done)
}

func (h *Handle) markReady(peerAddr string) {
	h.mu.Lock()
	if !h.active {
		h.active = true
		h.peerAddr = peerAddr
		close(h.ready)
	}
	h.mu.Unlock()
}

// DialOutbound connects to a waiting reader host and pumps src (the
// local byte source of the channel) to it. Used by the host that a
// writer process has just moved to (§4.2). window bounds the
// unacknowledged bytes in flight, preserving the channel's bounded-
// capacity semantics across the network — kernel socket buffers would
// otherwise add megabytes of invisible capacity (a non-positive window
// selects DefaultWindow; the migration machinery passes the channel's
// buffer capacity).
func (b *Broker) DialOutbound(addr, token string, src io.ReadCloser, window int) (*Handle, error) {
	conn, err := b.dial(addr, token)
	if err != nil {
		return nil, err
	}
	h := newHandle(b, true)
	h.markReady(addr)
	h.out = &outboundLink{h: h, src: src, window: normWindow(window)}
	go h.out.run(countConn{conn, b})
	return h, nil
}

// ServeOutbound waits for the reader host to connect (with the given
// token) and then pumps src to it. Used by the origin host when a
// reader process moves away (§4.2). See DialOutbound for window.
func (b *Broker) ServeOutbound(token string, src io.ReadCloser, window int) (*Handle, error) {
	h := newHandle(b, true)
	h.out = &outboundLink{h: h, src: src, window: normWindow(window)}
	err := b.expect(token, func(conn net.Conn, peerAddr string) {
		h.markReady(peerAddr)
		go h.out.run(countConn{conn, b})
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

func normWindow(w int) int {
	if w <= 0 {
		return DefaultWindow
	}
	return w
}

// DialInbound connects to a waiting writer host and pumps the received
// bytes into dst (the write end of the local pipe behind the moved
// reader port).
func (b *Broker) DialInbound(addr, token string, dst io.WriteCloser) (*Handle, error) {
	conn, err := b.dial(addr, token)
	if err != nil {
		return nil, err
	}
	h := newHandle(b, false)
	h.markReady(addr)
	h.in = &inboundLink{h: h, dst: dst}
	cc := countConn{conn, b}
	h.in.setConn(cc)
	go h.in.run(cc)
	return h, nil
}

// ServeInbound waits for the writer host to connect and then pumps the
// received bytes into dst. Used by the origin host when a writer
// process moves away, and by any host receiving a redirected writer
// (§4.3).
func (b *Broker) ServeInbound(token string, dst io.WriteCloser) (*Handle, error) {
	h := newHandle(b, false)
	h.in = &inboundLink{h: h, dst: dst}
	err := b.expect(token, func(conn net.Conn, peerAddr string) {
		cc := countConn{conn, b}
		h.in.setConn(cc)
		h.markReady(peerAddr)
		go h.in.run(cc)
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Redirect arranges the §4.3 writer-side redirection: once src is
// exhausted (the caller closes the local pipe's write end after
// detaching the moving writer port), the link's final frame is
// REDIRECT(token) instead of EOF, telling the reader host to await a
// direct connection from the writer's new host. It returns the reader
// host's broker address for the migration descriptor.
func (h *Handle) Redirect(token string) (peerAddr string, err error) {
	if !h.outbound {
		return "", errors.New("netio: Redirect requires an outbound link")
	}
	if err := h.WaitReady(); err != nil {
		return "", err
	}
	h.out.setRedirect(token)
	return h.peerAddr, nil
}

// Move arranges the reader-side redirection (the dual of Redirect):
// the writer host is told, over the control direction, to pause at a
// fence and reconnect directly to the reader's new host. Move returns
// after the fence has arrived and the link has shut down, at which
// point every byte the writer sent is either in the local pipe or will
// be delivered to the new host.
func (h *Handle) Move(addr, token string) error {
	if h.outbound {
		return errors.New("netio: Move requires an inbound link")
	}
	if err := h.WaitReady(); err != nil {
		return err
	}
	if err := h.in.sendMoving(addr, token); err != nil {
		return err
	}
	return h.Wait()
}

// outboundLink pumps a local byte source to the remote reader host,
// subject to a credit window: at most `window` bytes may be
// unacknowledged, so the receiver's bounded pipe governs the sender's
// progress end to end.
type outboundLink struct {
	h   *Handle
	src io.ReadCloser

	mu            sync.Mutex
	redirectToken string

	window   int
	inFlight int

	chunks     chan []byte
	srcErr     error
	readerOnce sync.Once
}

func (o *outboundLink) setRedirect(token string) {
	o.mu.Lock()
	o.redirectToken = token
	o.mu.Unlock()
}

func (o *outboundLink) finalFrame() frame {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.redirectToken != "" {
		return frame{kind: frameRedirect, token: o.redirectToken}
	}
	return frame{kind: frameEOF}
}

// startReader launches the goroutine that reads the source into the
// chunk channel. It survives connection swaps (MOVING).
func (o *outboundLink) startReader() {
	o.readerOnce.Do(func() {
		o.chunks = make(chan []byte)
		go func() {
			defer close(o.chunks)
			buf := make([]byte, chunkSize)
			for {
				n, err := o.src.Read(buf)
				if n > 0 {
					c := make([]byte, n)
					copy(c, buf[:n])
					o.chunks <- c
				}
				if err != nil {
					if err != io.EOF {
						o.srcErr = err
					}
					return
				}
			}
		}()
	})
}

type ctrlEvent struct {
	f   frame
	err error
}

// ctrlOutcome describes how a control event changes the sender's
// state.
type ctrlOutcome int

const (
	ctrlContinue ctrlOutcome = iota // credit absorbed; keep going
	ctrlStop                        // link is over (peer gone or reader closed)
	ctrlMoved                       // reconnected to a new host; restart loops
)

// handleCtrl processes one control event. On ctrlMoved the new
// connection (with a fresh control reader) is returned through *conn
// and *ctrl.
func (o *outboundLink) handleCtrl(ev ctrlEvent, conn *net.Conn, ctrl *chan ctrlEvent) ctrlOutcome {
	if ev.err == nil {
		o.h.b.noteFrame(ev.f.kind, false, 0)
	}
	switch {
	case ev.err != nil:
		// Peer vanished: poison the local writer so the process network
		// observes termination (§3.4 across machines).
		(*conn).Close()
		o.src.Close()
		o.h.finish(nil)
		return ctrlStop
	case ev.f.kind == frameAck:
		o.inFlight -= ev.f.ack
		if o.inFlight < 0 {
			o.inFlight = 0
		}
		return ctrlContinue
	case ev.f.kind == frameCloseRead:
		// Remote reader closed: cascade the exception upstream.
		(*conn).Close()
		o.src.Close()
		o.h.finish(nil)
		return ctrlStop
	case ev.f.kind == frameMoving:
		// Reader host is moving: fence this connection and reconnect
		// directly to the new host. Bytes on the old path land in the
		// old host's leftover buffer, so the in-flight count resets.
		writeFrame(*conn, frame{kind: frameFence})
		o.h.b.noteFrame(frameFence, true, 0)
		halfCloseWrite(*conn)
		(*conn).Close()
		newConn, err := o.h.b.dial(ev.f.addr, ev.f.token)
		if err != nil {
			o.src.Close()
			o.h.finish(fmt.Errorf("netio: reconnect after MOVING: %w", err))
			return ctrlStop
		}
		o.h.mu.Lock()
		o.h.peerAddr = ev.f.addr
		o.h.mu.Unlock()
		o.inFlight = 0
		cc := countConn{newConn, o.h.b}
		*conn = cc
		*ctrl = make(chan ctrlEvent, 16)
		go readCtrl(cc, *ctrl)
		return ctrlMoved
	default:
		return ctrlContinue
	}
}

func (o *outboundLink) run(conn net.Conn) {
	o.startReader()
	ctrl := make(chan ctrlEvent, 16)
	go readCtrl(conn, ctrl)
	for {
		select {
		case chunk, ok := <-o.chunks:
			if !ok {
				// Source exhausted (or poisoned): finish the stream.
				err := o.srcErr
				if err == nil {
					final := o.finalFrame()
					err = writeFrame(conn, final)
					if err == nil {
						o.h.b.noteFrame(final.kind, true, 0)
					}
				}
				halfCloseWrite(conn)
				drainCtrl(conn, ctrl)
				conn.Close()
				o.h.finish(err)
				return
			}
			// Flow control: wait for credit before sending, so the
			// receiving pipe's capacity bounds the channel end to end.
			if o.window > 0 && o.inFlight > 0 && o.inFlight+len(chunk) > o.window {
				o.h.b.noteCreditStall()
			}
			for o.window > 0 && o.inFlight > 0 && o.inFlight+len(chunk) > o.window {
				ev := <-ctrl
				switch o.handleCtrl(ev, &conn, &ctrl) {
				case ctrlStop:
					return
				default:
				}
			}
			if err := writeFrame(conn, frame{kind: frameData, payload: chunk}); err != nil {
				conn.Close()
				o.src.Close()
				o.h.finish(fmt.Errorf("netio: send failed: %w", err))
				return
			}
			o.h.b.noteFrame(frameData, true, len(chunk))
			o.inFlight += len(chunk)
		case ev := <-ctrl:
			if o.handleCtrl(ev, &conn, &ctrl) == ctrlStop {
				return
			}
		}
	}
}

// readCtrl forwards control frames from the reader host.
func readCtrl(conn net.Conn, ctrl chan<- ctrlEvent) {
	for {
		f, err := readFrame(conn)
		if err != nil {
			ctrl <- ctrlEvent{err: err}
			return
		}
		ctrl <- ctrlEvent{f: f}
		if f.kind == frameMoving {
			return // connection is being abandoned
		}
	}
}

// drainCtrl waits briefly for the peer to finish with the connection
// after the final frame, so buffered data is not reset.
func drainCtrl(conn net.Conn, ctrl <-chan ctrlEvent) {
	select {
	case <-ctrl:
	case <-time.After(5 * time.Second):
	}
}

// inboundLink pumps received bytes into the local pipe behind a reader
// port.
type inboundLink struct {
	h   *Handle
	dst io.WriteCloser

	mu     sync.Mutex
	conn   net.Conn
	moving bool
}

func (i *inboundLink) sendMoving(addr, token string) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.conn == nil {
		return errors.New("netio: link not connected")
	}
	i.moving = true
	err := writeFrame(i.conn, frame{kind: frameMoving, token: token, addr: addr})
	if err == nil {
		i.h.b.noteFrame(frameMoving, true, 0)
	}
	return err
}

func (i *inboundLink) setConn(conn net.Conn) {
	i.mu.Lock()
	i.conn = conn
	i.mu.Unlock()
}

func (i *inboundLink) run(conn net.Conn) {
	for {
		f, err := readFrame(conn)
		if err != nil {
			// Connection lost. If we initiated a move, the fence may
			// have raced the close; either way the remaining bytes (if
			// any) are gone only if the writer crashed — close the data
			// stream so the local reader terminates.
			i.mu.Lock()
			moving := i.moving
			i.mu.Unlock()
			conn.Close()
			if !moving {
				i.dst.Close()
			}
			i.h.finish(nil)
			return
		}
		i.h.b.noteFrame(f.kind, false, len(f.payload))
		switch f.kind {
		case frameData:
			if _, err := i.dst.Write(f.payload); err != nil {
				// Local reader closed: cascade upstream (§3.4).
				i.mu.Lock()
				writeFrame(conn, frame{kind: frameCloseRead})
				i.mu.Unlock()
				i.h.b.noteFrame(frameCloseRead, true, 0)
				conn.Close()
				i.h.finish(nil)
				return
			}
			// Grant the sender credit for the consumed bytes.
			i.mu.Lock()
			writeFrame(conn, frame{kind: frameAck, ack: len(f.payload)})
			i.mu.Unlock()
			i.h.b.noteFrame(frameAck, true, 0)
		case frameEOF:
			i.dst.Close()
			conn.Close()
			i.h.finish(nil)
			return
		case frameFence:
			// We asked the writer to move to a new host; the stream
			// pauses here and resumes there. Do not close dst: the
			// migration machinery drains it into the descriptor.
			conn.Close()
			i.h.finish(nil)
			return
		case frameRedirect:
			// Writer end is moving: re-arm the rendezvous on our broker
			// with the announced token; the writer's new host will
			// connect directly (§4.3).
			_, err := i.h.b.ServeInbound(f.token, i.dst)
			conn.Close()
			if err != nil {
				i.h.finish(fmt.Errorf("netio: redirect re-arm: %w", err))
				return
			}
			i.h.finish(nil)
			return
		default:
			conn.Close()
			i.dst.Close()
			i.h.finish(errBadFrame)
			return
		}
	}
}
